// perf_bench: the repo's performance trajectory harness.
//
// Runs the registered micro kernels (src/perf/kernels.cc) and writes a
// machine-readable BENCH_<label>.json report; optionally imports the
// sweep-end perf records of real sweep journals (--from-journal) and
// checks the fresh report against an older one (--compare), exiting
// non-zero past the regression threshold.
//
//   perf_bench --label=$(git rev-parse --short HEAD)
//              --timestamp="$(date -u +%FT%TZ)"
//   perf_bench --compare=BENCH_main.json --threshold=25
//   perf_bench --input=BENCH_new.json --compare=BENCH_old.json
//
// Exit codes: 0 ok, 1 regression past threshold, 2 usage error.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "perf/bench.h"
#include "perf/report.h"

namespace {

using rbx::perf::BenchOptions;
using rbx::perf::BenchReport;
using rbx::perf::CompareOutcome;
using rbx::perf::Kernel;
using rbx::perf::KernelRegistry;
using rbx::perf::KernelStats;

void usage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: perf_bench [options]\n"
      "  --list                 print kernel names and exit\n"
      "  --kernels=a,b,c        run only these kernels (default: all)\n"
      "  --reps=N               reps per interval (default: calibrate)\n"
      "  --intervals=N          timed intervals per kernel (default 12)\n"
      "  --interval-ms=F        calibration target per interval (default "
      "20)\n"
      "  --threads=N            concurrent closure instances (default 1)\n"
      "  --warmup=N             untimed warmup intervals (default 1)\n"
      "  --label=STR            report label (default \"dev\")\n"
      "  --timestamp=STR        stored verbatim in the report\n"
      "  --out=FILE             output path (default BENCH_<label>.json)\n"
      "  --from-journal=FILE    import sweep-end perf records (repeatable)\n"
      "  --input=FILE           load a report instead of running kernels\n"
      "  --compare=OLD.json     print deltas vs OLD; exit 1 past threshold\n"
      "  --threshold=PCT        regression threshold in percent (default "
      "25)\n");
}

[[noreturn]] void usage_error(const std::string& what) {
  std::fprintf(stderr, "perf_bench: %s\n", what.c_str());
  usage(stderr);
  std::exit(2);
}

bool consume(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *value = arg.substr(prefix.size());
  return true;
}

std::uint64_t parse_count(const std::string& value, const char* flag) {
  try {
    std::size_t end = 0;
    const unsigned long long v = std::stoull(value, &end);
    if (end != value.size()) {
      throw std::invalid_argument(value);
    }
    return v;
  } catch (const std::exception&) {
    usage_error(std::string(flag) + " wants a non-negative integer, got '" +
                value + "'");
  }
}

double parse_positive(const std::string& value, const char* flag) {
  try {
    std::size_t end = 0;
    const double v = std::stod(value, &end);
    if (end != value.size() || v <= 0.0) {
      throw std::invalid_argument(value);
    }
    return v;
  } catch (const std::exception&) {
    usage_error(std::string(flag) + " wants a positive number, got '" +
                value + "'");
  }
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::size_t end = comma == std::string::npos ? csv.size() : comma;
    if (end > start) {
      out.push_back(csv.substr(start, end - start));
    }
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  BenchOptions options;
  bool list = false;
  std::string label = "dev";
  std::string timestamp;
  std::string out_path;
  std::string input_path;
  std::string compare_path;
  double threshold_pct = 25.0;
  std::vector<std::string> kernel_names;
  std::vector<std::string> journals;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--list") {
      list = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (consume(arg, "--kernels", &value)) {
      kernel_names = split_csv(value);
      if (kernel_names.empty()) {
        usage_error("--kernels wants a comma-separated kernel list");
      }
    } else if (consume(arg, "--reps", &value)) {
      options.reps = parse_count(value, "--reps");
    } else if (consume(arg, "--intervals", &value)) {
      options.intervals =
          static_cast<std::size_t>(parse_count(value, "--intervals"));
      if (options.intervals == 0) {
        usage_error("--intervals must be at least 1");
      }
    } else if (consume(arg, "--interval-ms", &value)) {
      options.interval_ms = parse_positive(value, "--interval-ms");
    } else if (consume(arg, "--threads", &value)) {
      options.threads =
          static_cast<std::size_t>(parse_count(value, "--threads"));
      if (options.threads == 0) {
        usage_error("--threads must be at least 1");
      }
    } else if (consume(arg, "--warmup", &value)) {
      options.warmup_intervals =
          static_cast<std::size_t>(parse_count(value, "--warmup"));
    } else if (consume(arg, "--label", &value)) {
      label = value;
    } else if (consume(arg, "--timestamp", &value)) {
      timestamp = value;
    } else if (consume(arg, "--out", &value)) {
      out_path = value;
    } else if (consume(arg, "--from-journal", &value)) {
      journals.push_back(value);
    } else if (consume(arg, "--input", &value)) {
      input_path = value;
    } else if (consume(arg, "--compare", &value)) {
      compare_path = value;
    } else if (consume(arg, "--threshold", &value)) {
      threshold_pct = parse_positive(value, "--threshold");
    } else {
      usage_error("unknown flag '" + arg + "'");
    }
  }

  KernelRegistry registry;
  rbx::perf::register_default_kernels(registry);

  if (list) {
    for (const Kernel& k : registry.kernels()) {
      std::printf("%-26s %s\n", k.name.c_str(), k.layer.c_str());
    }
    return 0;
  }

  try {
    BenchReport report;
    if (!input_path.empty()) {
      report = BenchReport::load(input_path);
      std::printf("loaded %zu kernels from %s\n", report.kernels.size(),
                  input_path.c_str());
    } else {
      std::vector<const Kernel*> selected;
      if (kernel_names.empty()) {
        for (const Kernel& k : registry.kernels()) {
          selected.push_back(&k);
        }
      } else {
        for (const std::string& name : kernel_names) {
          const Kernel* k = registry.find(name);
          if (k == nullptr) {
            usage_error("unknown kernel '" + name +
                        "' (--list shows the registry)");
          }
          selected.push_back(k);
        }
      }

      report.label = label;
      report.timestamp = timestamp;
      report.build_flags = rbx::perf::build_flags_description();
      report.threads = options.threads;
      for (const Kernel* k : selected) {
        const KernelStats stats = rbx::perf::run_kernel(*k, options);
        std::printf("%-26s %10.1f ns/op  [p10 %.1f, p90 %.1f]  x%llu\n",
                    stats.name.c_str(), stats.ns_median, stats.ns_p10,
                    stats.ns_p90,
                    static_cast<unsigned long long>(stats.reps));
        std::fflush(stdout);
        report.kernels.push_back(stats);
      }
    }

    for (const std::string& journal : journals) {
      rbx::perf::import_journal(&report, journal);
    }

    if (input_path.empty()) {
      const std::string path =
          out_path.empty() ? "BENCH_" + label + ".json" : out_path;
      report.save(path);
      std::printf("wrote %s (%zu kernels, %zu sweeps)\n", path.c_str(),
                  report.kernels.size(), report.sweeps.size());
    }

    if (!compare_path.empty()) {
      const BenchReport old_report = BenchReport::load(compare_path);
      const CompareOutcome outcome =
          rbx::perf::compare_reports(old_report, report, threshold_pct);
      std::printf("\ncompare vs %s (threshold +%.0f%%):\n%s",
                  compare_path.c_str(), threshold_pct,
                  outcome.render().c_str());
      if (outcome.regressed) {
        std::fprintf(stderr, "perf_bench: regression past threshold\n");
        return 1;
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_bench: %s\n", e.what());
    return 2;
  }
  return 0;
}
