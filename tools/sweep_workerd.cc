// sweep_workerd - the worker daemon of the cluster transport.
//
// Run one per host, point any bench at them, and one sweep spans the
// fleet:
//
//   host A$ sweep_workerd --serve=4701
//   host B$ sweep_workerd --serve=4701
//   head $ fig5_mean_interval --connect=hostA:4701,hostB:4701
//
// The daemon is bench-agnostic: cells arrive as wire frames carrying a
// Scenario plus an EvalPlan (which registered backends to evaluate and
// how to merge their metrics), so the same daemon serves every bench and
// needs no redeploy when a bench changes its tables.  Per-cell seeds ride
// in the scenarios, making the daemon's answers bitwise identical to a
// local run.
//
// The daemon is long-running and serves coordinators *concurrently* -
// each connection is an independent session on its own thread, so two
// sweeps (or two users) can share one worker fleet without the second
// coordinator wedging in the accept backlog behind the first.  It is
// also safe to kill and restart a daemon while sweeps are running:
// coordinators roll the lost cells back to the surviving workers, retry
// the endpoint on a backoff timer, and *re-admit* the restarted daemon
// mid-sweep once it passes the handshake again - with byte-identical
// output either way.
//
// Flags (strict; anything malformed exits 2, like the bench flags):
//   --serve=PORT     listen on PORT (required; 0 = ephemeral, printed)
//   --max-coordinators=N
//                    serve up to N concurrent coordinator sessions
//                    (default 4); one beyond the cap is refused with an
//                    error frame, never silently backlogged
//   --once           exit after the first coordinator disconnects
//   --fail-after=N   drop a session instead of serving its batch N+1 and
//                    exit 1 - a deterministic "worker killed mid-sweep"
//                    for recovery tests and CI chaos runs
//   --delay-ms=N     stall N ms before evaluating each batch - a
//                    deterministic straggler for work-stealing tests and
//                    CI throttle runs
//   --cache-dir=DIR  remember every evaluated cell in DIR/cache.rbxj and
//                    answer repeated cells from the cache (bitwise
//                    identical to evaluating; only faster).  DIR must
//                    exist.  Coordinators opt out with --no-cache.
//   --cache-max-bytes=N
//                    cap the cache file at N bytes: at startup the oldest
//                    entries are dropped until the rest fit and the file
//                    is compacted in place (0 = unlimited, the default)
//   --quiet          no connection notes on stderr
#include <cstdio>
#include <cstring>

#include "core/experiment.h"
#include "net/worker.h"
#include "support/wire.h"

namespace {

[[noreturn]] void usage_error(const char* prog, const char* arg,
                              const char* why) {
  std::fprintf(stderr, "%s: bad argument '%s' (%s)\n", prog, arg, why);
  std::fprintf(stderr,
               "usage: %s --serve=PORT [--max-coordinators=N] [--once]\n"
               "       [--fail-after=N] [--delay-ms=N] [--cache-dir=DIR]\n"
               "       [--cache-max-bytes=N] [--quiet]\n",
               prog);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbx;
  net::WorkerOptions opts;
  const char* prog = argc > 0 ? argv[0] : "sweep_workerd";
  bool serve_given = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--serve=", 8) == 0) {
      std::uint64_t port = 0;
      if (!parse_strict_u64(arg + 8, &port) || port > 65535) {
        usage_error(prog, arg, "expected a port in 0..65535");
      }
      opts.port = static_cast<std::uint16_t>(port);
      serve_given = true;
    } else if (std::strncmp(arg, "--fail-after=", 13) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 13, &n)) {
        usage_error(prog, arg, "expected a non-negative integer");
      }
      opts.fail_after = static_cast<std::size_t>(n);
    } else if (std::strncmp(arg, "--max-coordinators=", 19) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 19, &n) || n == 0) {
        usage_error(prog, arg, "expected a positive integer");
      }
      opts.max_coordinators = static_cast<std::size_t>(n);
    } else if (std::strncmp(arg, "--delay-ms=", 11) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 11, &n)) {
        usage_error(prog, arg, "expected a non-negative integer");
      }
      opts.delay_ms = static_cast<std::size_t>(n);
    } else if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
      if (arg[12] == '\0') {
        usage_error(prog, arg, "expected a directory path");
      }
      opts.cache_dir = arg + 12;
    } else if (std::strncmp(arg, "--cache-max-bytes=", 18) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 18, &n)) {
        usage_error(prog, arg, "expected a non-negative byte count");
      }
      opts.cache_max_bytes = static_cast<std::size_t>(n);
    } else if (std::strcmp(arg, "--once") == 0) {
      opts.once = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      opts.quiet = true;
    } else {
      usage_error(prog, arg, "unknown flag");
    }
  }
  if (!serve_given) {
    usage_error(prog, "--serve", "required flag missing");
  }
  try {
    net::WorkerServer server(opts);
    std::printf("sweep_workerd: listening on port %u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    return server.serve() ? 0 : 1;
  } catch (const net::Error& e) {
    std::fprintf(stderr, "sweep_workerd: %s\n", e.what());
    return 1;
  } catch (const wire::Error& e) {
    // A bad --cache-dir (missing directory, unreadable cache file).
    std::fprintf(stderr, "sweep_workerd: %s\n", e.what());
    return 1;
  }
}
