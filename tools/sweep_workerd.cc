// sweep_workerd - the worker daemon of the cluster transport.
//
// Run one per host, point any bench at them, and one sweep spans the
// fleet:
//
//   host A$ sweep_workerd --serve=4701
//   host B$ sweep_workerd --serve=4701
//   head $ fig5_mean_interval --connect=hostA:4701,hostB:4701
//
// The daemon is bench-agnostic: cells arrive as wire frames carrying a
// Scenario plus an EvalPlan (which registered backends to evaluate and
// how to merge their metrics), so the same daemon serves every bench and
// needs no redeploy when a bench changes its tables.  Per-cell seeds ride
// in the scenarios, making the daemon's answers bitwise identical to a
// local run.
//
// The daemon is long-running and serves coordinators *concurrently* -
// each connection is an independent session on its own thread, so two
// sweeps (or two users) can share one worker fleet without the second
// coordinator wedging in the accept backlog behind the first.  It is
// also safe to kill and restart a daemon while sweeps are running:
// coordinators roll the lost cells back to the surviving workers, retry
// the endpoint on a backoff timer, and *re-admit* the restarted daemon
// mid-sweep once it passes the handshake again - with byte-identical
// output either way.
//
// Flags (strict; anything malformed exits 2, like the bench flags):
//   --serve=PORT     listen on PORT (required; 0 = ephemeral, printed)
//   --max-coordinators=N
//                    serve up to N concurrent coordinator sessions
//                    (default 4); one beyond the cap is refused with an
//                    error frame, never silently backlogged
//   --once           exit after the first coordinator disconnects
//   --fail-after=N   drop a session instead of serving its batch N+1 and
//                    exit 1 - a deterministic "worker killed mid-sweep"
//                    for recovery tests and CI chaos runs
//   --delay-ms=N     stall N ms before evaluating each batch - a
//                    deterministic straggler for work-stealing tests and
//                    CI throttle runs
//   --cache-dir=DIR  remember every evaluated cell in DIR/cache.rbxj and
//                    answer repeated cells from the cache (bitwise
//                    identical to evaluating; only faster).  DIR must
//                    exist.  Coordinators opt out with --no-cache.
//   --cache-max-bytes=N
//                    cap the cache file at N bytes: at startup the oldest
//                    entries are dropped until the rest fit and the file
//                    is compacted in place (0 = unlimited, the default)
//   --fleet=HOST:PORT
//                    join this fleet registry (tools/fleet_registryd) at
//                    startup and heartbeat it so coordinators can resolve
//                    this daemon with --fleet instead of naming it on a
//                    --connect list; leave on orderly shutdown.  A daemon
//                    that dies (or is killed) simply stops heartbeating
//                    and is evicted by the registry's timeout
//   --advertise=HOST the host coordinators should dial for this daemon
//                    (default 127.0.0.1; on a real fleet, this host's
//                    reachable name)
//   --weight=N       fair-share weight in the registry's scheduling
//                    (default 1; a daemon on a 2x machine advertises 2)
//   --heartbeat-ms=N heartbeat period (default 2000; keep it well under
//                    the registry's --evict-after-ms)
//   --auth-key-file=PATH
//                    pre-shared fleet key: every coordinator session must
//                    prove key possession in an HMAC challenge/response
//                    during the Hello handshake (a keyless or wrong-keyed
//                    coordinator is refused with an error frame), and the
//                    registry join authenticates with the same key
//   --quiet          no connection notes on stderr
#include <cstdio>
#include <cstring>
#include <memory>

#include "core/experiment.h"
#include "fleet/auth.h"
#include "fleet/client.h"
#include "net/worker.h"
#include "support/wire.h"

namespace {

[[noreturn]] void usage_error(const char* prog, const char* arg,
                              const char* why) {
  std::fprintf(stderr, "%s: bad argument '%s' (%s)\n", prog, arg, why);
  std::fprintf(stderr,
               "usage: %s --serve=PORT [--max-coordinators=N] [--once]\n"
               "       [--fail-after=N] [--delay-ms=N] [--cache-dir=DIR]\n"
               "       [--cache-max-bytes=N] [--fleet=HOST:PORT]\n"
               "       [--advertise=HOST] [--weight=N] [--heartbeat-ms=N]\n"
               "       [--auth-key-file=PATH] [--eval-threads=N] [--quiet]\n",
               prog);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbx;
  net::WorkerOptions opts;
  const char* prog = argc > 0 ? argv[0] : "sweep_workerd";
  bool serve_given = false;
  bool fleet_given = false;
  net::Endpoint fleet_registry;
  std::string advertise = "127.0.0.1";
  std::uint32_t weight = 1;
  int heartbeat_ms = 2000;
  std::string auth_key_file;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--serve=", 8) == 0) {
      std::uint64_t port = 0;
      if (!parse_strict_u64(arg + 8, &port) || port > 65535) {
        usage_error(prog, arg, "expected a port in 0..65535");
      }
      opts.port = static_cast<std::uint16_t>(port);
      serve_given = true;
    } else if (std::strncmp(arg, "--fail-after=", 13) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 13, &n)) {
        usage_error(prog, arg, "expected a non-negative integer");
      }
      opts.fail_after = static_cast<std::size_t>(n);
    } else if (std::strncmp(arg, "--max-coordinators=", 19) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 19, &n) || n == 0) {
        usage_error(prog, arg, "expected a positive integer");
      }
      opts.max_coordinators = static_cast<std::size_t>(n);
    } else if (std::strncmp(arg, "--eval-threads=", 15) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 15, &n) || n == 0) {
        usage_error(prog, arg, "expected a positive thread count");
      }
      opts.eval_threads = static_cast<std::size_t>(n);
    } else if (std::strncmp(arg, "--delay-ms=", 11) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 11, &n)) {
        usage_error(prog, arg, "expected a non-negative integer");
      }
      opts.delay_ms = static_cast<std::size_t>(n);
    } else if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
      if (arg[12] == '\0') {
        usage_error(prog, arg, "expected a directory path");
      }
      opts.cache_dir = arg + 12;
    } else if (std::strncmp(arg, "--cache-max-bytes=", 18) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 18, &n)) {
        usage_error(prog, arg, "expected a non-negative byte count");
      }
      opts.cache_max_bytes = static_cast<std::size_t>(n);
    } else if (std::strncmp(arg, "--fleet=", 8) == 0) {
      std::string why;
      if (!net::parse_endpoint(arg + 8, &fleet_registry, &why)) {
        usage_error(prog, arg, why.c_str());
      }
      fleet_given = true;
    } else if (std::strncmp(arg, "--advertise=", 12) == 0) {
      if (arg[12] == '\0') {
        usage_error(prog, arg, "expected a host name");
      }
      advertise = arg + 12;
    } else if (std::strncmp(arg, "--weight=", 9) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 9, &n) || n == 0 || n > 0xffffffffull) {
        usage_error(prog, arg, "expected a positive 32-bit weight");
      }
      weight = static_cast<std::uint32_t>(n);
    } else if (std::strncmp(arg, "--heartbeat-ms=", 15) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 15, &n) || n == 0 || n > 2147483647ull) {
        usage_error(prog, arg, "expected a positive millisecond count");
      }
      heartbeat_ms = static_cast<int>(n);
    } else if (std::strncmp(arg, "--auth-key-file=", 16) == 0) {
      if (arg[16] == '\0') {
        usage_error(prog, arg, "expected a key file path");
      }
      auth_key_file = arg + 16;
    } else if (std::strcmp(arg, "--once") == 0) {
      opts.once = true;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      opts.quiet = true;
    } else {
      usage_error(prog, arg, "unknown flag");
    }
  }
  if (!serve_given) {
    usage_error(prog, "--serve", "required flag missing");
  }
  try {
    if (!auth_key_file.empty()) {
      opts.auth_key = fleet::load_auth_key(auth_key_file);
    }
    net::WorkerServer server(opts);
    std::printf("sweep_workerd: listening on port %u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    // Registry membership starts after the listener is up (the advertised
    // port must be dialable - and with --serve=0, known - before any
    // coordinator can be granted it).
    std::unique_ptr<fleet::FleetMembership> membership;
    if (fleet_given) {
      fleet::MembershipOptions mopts;
      mopts.registry = fleet_registry;
      mopts.self = fleet::JoinInfo{advertise, server.port(), weight};
      mopts.auth_key = opts.auth_key;
      mopts.heartbeat_ms = heartbeat_ms;
      mopts.quiet = opts.quiet;
      membership = std::make_unique<fleet::FleetMembership>(mopts);
      membership->start();  // throws if the registry is unreachable or
                            // refuses the key: fail loudly at startup
    }
    const bool ok = server.serve();
    if (membership != nullptr) {
      if (ok) {
        membership->stop();  // orderly departure: Leave the registry
      } else {
        // Simulated kill (--fail-after): no Leave, no heartbeats - the
        // registry must evict this daemon by timeout, exactly as after a
        // real SIGKILL.
        membership->abandon();
      }
    }
    return ok ? 0 : 1;
  } catch (const net::Error& e) {
    std::fprintf(stderr, "sweep_workerd: %s\n", e.what());
    return 1;
  } catch (const wire::Error& e) {
    // A bad --cache-dir (missing directory, unreadable cache file).
    std::fprintf(stderr, "sweep_workerd: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // An unreadable --auth-key-file, or a refused registry join.
    std::fprintf(stderr, "sweep_workerd: %s\n", e.what());
    return 1;
  }
}
