// fleet_registryd - the membership registry of an elastic worker fleet.
//
// Run one per fleet; daemons join it and coordinators resolve it:
//
//   head  $ fleet_registryd --serve=4700
//   hostA $ sweep_workerd --serve=4701 --fleet=head:4700 --advertise=hostA
//   hostB $ sweep_workerd --serve=4701 --fleet=head:4700 --advertise=hostB
//   user  $ fig5_mean_interval --fleet=head:4700
//
// The registry holds soft membership state: daemons heartbeat it
// (sweep_workerd --heartbeat-ms) and anything silent for
// --evict-after-ms is evicted, so a killed daemon disappears from the
// pool without operator action - and a coordinator resolving mid-sweep
// is handed whatever is live *now*, which is how a fresh daemon joined
// seconds ago can backfill a dead worker in a running sweep.  When
// several coordinators contend, each resolve() is granted a fair
// weighted share of the fleet, signed as per-member lease tokens the
// daemons themselves verify.
//
// Flags (strict; anything malformed exits 2, like the bench flags):
//   --serve=PORT       listen on PORT (required; 0 = ephemeral, printed)
//   --evict-after-ms=N evict a member after N ms without a heartbeat
//                      (default 10000)
//   --lease-ttl-ms=N   how long a coordinator's grant counts toward the
//                      fair-share split (default 60000)
//   --auth-key-file=PATH
//                      pre-shared fleet key: joins and resolves must pass
//                      the HMAC challenge/response, and granted leases
//                      are signed under this key
//   --quiet            no membership notes on stderr
#include <cstdio>
#include <cstring>

#include "core/experiment.h"
#include "fleet/auth.h"
#include "fleet/registry.h"
#include "support/wire.h"

namespace {

[[noreturn]] void usage_error(const char* prog, const char* arg,
                              const char* why) {
  std::fprintf(stderr, "%s: bad argument '%s' (%s)\n", prog, arg, why);
  std::fprintf(stderr,
               "usage: %s --serve=PORT [--evict-after-ms=N]\n"
               "       [--lease-ttl-ms=N] [--auth-key-file=PATH] [--quiet]\n",
               prog);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbx;
  fleet::RegistryOptions opts;
  const char* prog = argc > 0 ? argv[0] : "fleet_registryd";
  bool serve_given = false;
  std::string auth_key_file;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--serve=", 8) == 0) {
      std::uint64_t port = 0;
      if (!parse_strict_u64(arg + 8, &port) || port > 65535) {
        usage_error(prog, arg, "expected a port in 0..65535");
      }
      opts.port = static_cast<std::uint16_t>(port);
      serve_given = true;
    } else if (std::strncmp(arg, "--evict-after-ms=", 17) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 17, &n) || n == 0 || n > 2147483647ull) {
        usage_error(prog, arg, "expected a positive millisecond count");
      }
      opts.table.evict_after_ms = static_cast<std::int64_t>(n);
    } else if (std::strncmp(arg, "--lease-ttl-ms=", 15) == 0) {
      std::uint64_t n = 0;
      if (!parse_strict_u64(arg + 15, &n) || n == 0 || n > 2147483647ull) {
        usage_error(prog, arg, "expected a positive millisecond count");
      }
      opts.table.lease_ttl_ms = static_cast<std::int64_t>(n);
    } else if (std::strncmp(arg, "--auth-key-file=", 16) == 0) {
      if (arg[16] == '\0') {
        usage_error(prog, arg, "expected a key file path");
      }
      auth_key_file = arg + 16;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      opts.quiet = true;
    } else {
      usage_error(prog, arg, "unknown flag");
    }
  }
  if (!serve_given) {
    usage_error(prog, "--serve", "required flag missing");
  }
  try {
    if (!auth_key_file.empty()) {
      opts.table.auth_key = fleet::load_auth_key(auth_key_file);
    }
    fleet::RegistryServer server(opts);
    std::printf("fleet_registryd: listening on port %u\n",
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    return server.serve() ? 0 : 1;
  } catch (const net::Error& e) {
    std::fprintf(stderr, "fleet_registryd: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    // An unreadable --auth-key-file.
    std::fprintf(stderr, "fleet_registryd: %s\n", e.what());
    return 1;
  }
}
