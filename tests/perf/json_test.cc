// The bench harness JSON value type: exact double round-trips, ordered
// object keys, strict parsing with byte-offset errors.
#include "perf/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace rbx {
namespace perf {
namespace {

TEST(JsonTest, ScalarRoundTrips) {
  EXPECT_EQ(Json::null().dump(-1), "null");
  EXPECT_EQ(Json::boolean(true).dump(-1), "true");
  EXPECT_EQ(Json::boolean(false).dump(-1), "false");
  EXPECT_EQ(Json::number(42).dump(-1), "42");
  EXPECT_EQ(Json::string("hi").dump(-1), "\"hi\"");

  EXPECT_TRUE(Json::parse("null").kind() == Json::Kind::kNull);
  EXPECT_TRUE(Json::parse("true").as_bool());
  EXPECT_EQ(Json::parse("-3.5e2").as_number(), -350.0);
  EXPECT_EQ(Json::parse("\"a b\"").as_string(), "a b");
}

TEST(JsonTest, DoublesRoundTripBitwise) {
  const double values[] = {0.0,
                           -0.0,
                           1.0 / 3.0,
                           6225.8437,
                           std::numeric_limits<double>::min(),
                           std::numeric_limits<double>::max(),
                           std::numeric_limits<double>::epsilon(),
                           1e-308};
  for (double v : values) {
    const std::string text = Json::number(v).dump(-1);
    const double back = Json::parse(text).as_number();
    EXPECT_EQ(back, v) << text;
  }
  // Non-finite doubles have no JSON spelling; they serialize as null
  // rather than emitting an unparseable token.
  EXPECT_EQ(Json::number(std::nan("")).dump(-1), "null");
  EXPECT_EQ(Json::number(std::numeric_limits<double>::infinity()).dump(-1),
            "null");
}

TEST(JsonTest, ObjectKeepsInsertionOrder) {
  Json o = Json::object();
  o.set("zeta", Json::number(1));
  o.set("alpha", Json::number(2));
  o.set("mid", Json::number(3));
  EXPECT_EQ(o.dump(-1), "{\"zeta\":1,\"alpha\":2,\"mid\":3}");
  // set() on an existing key overwrites in place, keeping its position.
  o.set("alpha", Json::number(9));
  EXPECT_EQ(o.dump(-1), "{\"zeta\":1,\"alpha\":9,\"mid\":3}");
}

TEST(JsonTest, NestedDumpParseRoundTrip) {
  Json root = Json::object();
  root.set("schema", Json::string("rbx-bench-v1"));
  Json arr = Json::array();
  Json k = Json::object();
  k.set("name", Json::string("spmv"));
  k.set("ns_median", Json::number(6225.8437));
  arr.push_back(k);
  root.set("kernels", arr);

  const Json back = Json::parse(root.dump());
  EXPECT_EQ(back.string_at("schema"), "rbx-bench-v1");
  const Json* kernels = back.find("kernels");
  ASSERT_NE(kernels, nullptr);
  ASSERT_EQ(kernels->items().size(), 1u);
  EXPECT_EQ(kernels->items()[0].number_at("ns_median"), 6225.8437);
  // Re-dumping the parse is byte-identical: ordering and numbers are
  // stable through a full round trip.
  EXPECT_EQ(back.dump(), root.dump());
}

TEST(JsonTest, StringEscapes) {
  const std::string raw = "a\"b\\c\nd\te\x01f";
  const std::string text = Json::string(raw).dump(-1);
  EXPECT_EQ(Json::parse(text).as_string(), raw);
  EXPECT_EQ(Json::parse("\"\\u0041\\u00e9\"").as_string(), "A\xc3\xa9");
}

TEST(JsonTest, StrictParseRejects) {
  EXPECT_THROW(Json::parse(""), json::Error);
  EXPECT_THROW(Json::parse("{"), json::Error);
  EXPECT_THROW(Json::parse("[1,]"), json::Error);
  EXPECT_THROW(Json::parse("{\"a\": 1,}"), json::Error);
  EXPECT_THROW(Json::parse("nul"), json::Error);
  EXPECT_THROW(Json::parse("1 2"), json::Error);  // trailing garbage
  EXPECT_THROW(Json::parse("\"\\x\""), json::Error);
  EXPECT_THROW(Json::parse("'single'"), json::Error);
}

TEST(JsonTest, TypedAccessorsThrowOnMismatch) {
  const Json n = Json::number(1);
  EXPECT_THROW(n.as_string(), json::Error);
  EXPECT_THROW(n.items(), json::Error);
  EXPECT_THROW(n.number_at("x"), json::Error);
  Json o = Json::object();
  EXPECT_EQ(o.find("missing"), nullptr);
  EXPECT_THROW(o.number_at("missing"), json::Error);
  o.set("s", Json::string("x"));
  EXPECT_THROW(o.number_at("s"), json::Error);
}

}  // namespace
}  // namespace perf
}  // namespace rbx
