// BenchReport: the BENCH_*.json schema round-trips, journal sweep-end
// records import as synthetic kernels, and compare_reports flags exactly
// the kernels that slowed past the threshold.
#include "perf/report.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/result.h"
#include "perf/json.h"
#include "recov/journal.h"

namespace rbx {
namespace perf {
namespace {

KernelStats stats(const std::string& name, double ns) {
  KernelStats s;
  s.name = name;
  s.layer = "test";
  s.ns_median = ns;
  s.ns_p10 = ns * 0.9;
  s.ns_p90 = ns * 1.1;
  s.reps = 100;
  s.intervals = 5;
  s.threads = 1;
  return s;
}

TEST(BenchReportTest, JsonRoundTrip) {
  BenchReport r;
  r.label = "pr7";
  r.timestamp = "2026-08-08T00:00:00Z";
  r.build_flags = build_flags_description();
  r.threads = 2;
  r.kernels.push_back(stats("sparse_spmv_left", 6225.8437));
  r.kernels.push_back(stats("wire_encode_scenario", 208.5));
  SweepRecord sweep;
  sweep.source = "fig5.rbxj";
  sweep.sweep = 1;
  sweep.committed_cells = 96;
  sweep.evaluated_cells = 96;
  sweep.wall_ms = 1200;
  sweep.cells_per_sec = 80.0;
  r.sweeps.push_back(sweep);

  const BenchReport back = BenchReport::from_json(r.to_json());
  EXPECT_EQ(back.label, r.label);
  EXPECT_EQ(back.timestamp, r.timestamp);
  EXPECT_EQ(back.build_flags, r.build_flags);
  EXPECT_EQ(back.threads, r.threads);
  ASSERT_EQ(back.kernels.size(), 2u);
  EXPECT_EQ(back.kernels[0].name, "sparse_spmv_left");
  EXPECT_EQ(back.kernels[0].ns_median, 6225.8437);  // bitwise via %.17g
  EXPECT_EQ(back.kernels[0].reps, 100u);
  ASSERT_EQ(back.sweeps.size(), 1u);
  EXPECT_EQ(back.sweeps[0].source, "fig5.rbxj");
  EXPECT_EQ(back.sweeps[0].wall_ms, 1200u);
  EXPECT_EQ(back.sweeps[0].cells_per_sec, 80.0);
}

TEST(BenchReportTest, WrongSchemaRejected) {
  EXPECT_THROW(BenchReport::from_json("{\"schema\": \"other\"}"),
               json::Error);
  EXPECT_THROW(BenchReport::from_json("[]"), json::Error);
  EXPECT_THROW(BenchReport::from_json("not json"), json::Error);
}

TEST(BenchReportTest, SaveLoad) {
  const std::string path = testing::TempDir() + "bench_report_test.json";
  BenchReport r;
  r.label = "disk";
  r.kernels.push_back(stats("k", 10.0));
  r.save(path);
  const BenchReport back = BenchReport::load(path);
  EXPECT_EQ(back.label, "disk");
  ASSERT_EQ(back.kernels.size(), 1u);
  EXPECT_EQ(back.kernels[0].ns_median, 10.0);
  std::remove(path.c_str());
}

TEST(BenchReportTest, ImportJournalSweepEnds) {
  const std::string path = testing::TempDir() + "bench_import_test.rbxj";
  std::remove(path.c_str());
  {
    recov::JournalWriter::Options jopts;
    jopts.truncate = true;
    recov::JournalWriter w(path, jopts);
    w.sweep_begin(0, 0xabc, 4, "test sweep");
    ResultSet cell("analytic", "cell");
    cell.set("m", 1.0);
    for (std::uint64_t i = 0; i < 4; ++i) {
      w.cell_committed(0, i, cell);
    }
    recov::SweepEndStats stats;
    stats.committed_cells = 4;
    stats.evaluated_cells = 4;
    stats.wall_ms = 20;
    stats.cells_per_sec = 200.0;
    w.sweep_end(0, stats);
    // A second sweep that never ends must not import (its counters were
    // lost with the crash).
    w.sweep_begin(1, 0xdef, 8, "unfinished");
  }

  BenchReport r;
  import_journal(&r, path, "trial");
  ASSERT_EQ(r.sweeps.size(), 1u);
  EXPECT_EQ(r.sweeps[0].source, "trial");
  EXPECT_EQ(r.sweeps[0].sweep, 0u);
  EXPECT_EQ(r.sweeps[0].evaluated_cells, 4u);
  EXPECT_EQ(r.sweeps[0].wall_ms, 20u);
  // The synthetic kernel rides the compare machinery: per-evaluated-cell
  // wall time in ns.
  ASSERT_EQ(r.kernels.size(), 1u);
  EXPECT_EQ(r.kernels[0].name, "journal:trial:sweep0");
  EXPECT_EQ(r.kernels[0].layer, "sweep");
  EXPECT_EQ(r.kernels[0].ns_median, 20.0 * 1e6 / 4.0);
  std::remove(path.c_str());
}

TEST(CompareReportsTest, FlagsOnlyPastThreshold) {
  BenchReport old_report;
  old_report.kernels.push_back(stats("steady", 100.0));
  old_report.kernels.push_back(stats("slower", 100.0));
  old_report.kernels.push_back(stats("faster", 100.0));
  old_report.kernels.push_back(stats("dropped", 100.0));
  BenchReport new_report;
  new_report.kernels.push_back(stats("steady", 104.0));
  new_report.kernels.push_back(stats("slower", 140.0));
  new_report.kernels.push_back(stats("faster", 40.0));
  new_report.kernels.push_back(stats("added", 1.0));

  const CompareOutcome outcome =
      compare_reports(old_report, new_report, 25.0);
  EXPECT_TRUE(outcome.regressed);
  ASSERT_EQ(outcome.rows.size(), 3u);
  // Worst ratio first.
  EXPECT_EQ(outcome.rows[0].name, "slower");
  EXPECT_TRUE(outcome.rows[0].regression);
  EXPECT_NEAR(outcome.rows[0].ratio, 1.4, 1e-12);
  EXPECT_EQ(outcome.rows[1].name, "steady");
  EXPECT_FALSE(outcome.rows[1].regression);
  EXPECT_EQ(outcome.rows[2].name, "faster");
  EXPECT_FALSE(outcome.rows[2].regression);
  ASSERT_EQ(outcome.only_old.size(), 1u);
  EXPECT_EQ(outcome.only_old[0], "dropped");
  ASSERT_EQ(outcome.only_new.size(), 1u);
  EXPECT_EQ(outcome.only_new[0], "added");
  EXPECT_NE(outcome.render().find("REGRESSION"), std::string::npos);

  // Within threshold: no regression flag, exit stays clean.
  const CompareOutcome ok = compare_reports(old_report, old_report, 25.0);
  EXPECT_FALSE(ok.regressed);
}

}  // namespace
}  // namespace perf
}  // namespace rbx
