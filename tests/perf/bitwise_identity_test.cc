// Bitwise pins for the hot-path optimizations that must be invisible in
// the output: scratch-buffer SpMV, the DES simulators' reused per-run
// buffers, and the in-place wire framing behind CellBatch/ResultBatch
// seal().  (Cross-mode ResultSet identity - 1 vs N threads, --workers,
// --connect - is pinned by the sweep/dispatch/cluster tests; these cover
// the buffer-reuse seams directly.)
#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/scenario.h"
#include "des/async_sim.h"
#include "des/prp_sim.h"
#include "des/sync_sim.h"
#include "model/params.h"
#include "numerics/sparse.h"
#include "support/wire.h"

namespace rbx {
namespace {

SparseMatrix test_matrix() {
  SparseMatrixBuilder b(8, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    b.add(i, i, 2.0 + static_cast<double>(i));
    if (i + 1 < 8) {
      b.add(i, i + 1, -0.5);
      b.add(i + 1, i, -0.25);
    }
  }
  // Duplicates must still sum after the in-place build.
  b.add(3, 3, 0.125);
  return b.build();
}

TEST(BitwiseIdentityTest, SpmvIntoDirtyBufferMatchesFresh) {
  const SparseMatrix m = test_matrix();
  std::vector<double> x(8);
  for (std::size_t i = 0; i < 8; ++i) {
    x[i] = 0.1 * static_cast<double>(i) - 0.3;
  }

  std::vector<double> fresh_left, fresh_right;
  m.left_multiply(x, fresh_left);
  m.right_multiply(x, fresh_right);

  // A caller-owned buffer full of garbage (wrong size, poison values)
  // must produce the same bytes: left_multiply owns the zero-fill,
  // right_multiply overwrites every row.
  std::vector<double> dirty(17, 1e300);
  m.left_multiply(x, dirty);
  EXPECT_EQ(dirty, fresh_left);
  dirty.assign(3, -1e300);
  m.right_multiply(x, dirty);
  EXPECT_EQ(dirty, fresh_right);
}

TEST(BitwiseIdentityTest, BuilderBuildSumsDuplicates) {
  const SparseMatrix m = test_matrix();
  EXPECT_EQ(m.rows(), 8u);
  EXPECT_EQ(m.at(3, 3), 2.0 + 3.0 + 0.125);
  EXPECT_EQ(m.at(4, 3), -0.25);
  EXPECT_EQ(m.at(0, 5), 0.0);
}

TEST(BitwiseIdentityTest, AsyncSimulatorScratchReuseAcrossRuns) {
  // One simulator running twice must retrace two fresh simulators whose
  // RNG streams are advanced identically: the reused per-line counters
  // carry no state between runs.
  ProcessSetParams p = ProcessSetParams::symmetric(4, 1.0, 0.5);
  AsyncRbSimulator reused(p, 0x5eed);
  const AsyncSimResult first = reused.run_lines(24, 0.25);
  const AsyncSimResult second = reused.run_lines(24, 0.25);

  AsyncRbSimulator paired(p, 0x5eed);
  const AsyncSimResult paired_first = paired.run_lines(24, 0.25);
  const AsyncSimResult paired_second = paired.run_lines(24, 0.25);

  EXPECT_EQ(first.interval.samples(), paired_first.interval.samples());
  EXPECT_EQ(second.interval.samples(), paired_second.interval.samples());
  EXPECT_EQ(first.line_age.samples(), paired_first.line_age.samples());
  ASSERT_EQ(second.rp_incl_final.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(second.rp_incl_final[i].mean(),
              paired_second.rp_incl_final[i].mean());
    EXPECT_EQ(second.rp_state_changing[i].mean(),
              paired_second.rp_state_changing[i].mean());
  }
}

TEST(BitwiseIdentityTest, SyncSimulatorScratchReuseAcrossRuns) {
  SyncSimParams params;
  params.mu = {1.0, 1.2, 0.8, 1.1};
  params.strategy = SyncStrategy::kElapsedTime;
  params.error_rate = 0.5;
  SyncRbSimulator reused(params, 42);
  const SyncSimResult first = reused.run(32);
  const SyncSimResult second = reused.run(32);

  SyncRbSimulator paired(params, 42);
  const SyncSimResult paired_first = paired.run(32);
  const SyncSimResult paired_second = paired.run(32);

  EXPECT_EQ(first.max_wait.samples(), paired_first.max_wait.samples());
  EXPECT_EQ(second.max_wait.samples(), paired_second.max_wait.samples());
  EXPECT_EQ(second.loss.samples(), paired_second.loss.samples());
  EXPECT_EQ(second.loss_rate, paired_second.loss_rate);
}

TEST(BitwiseIdentityTest, PrpSimulatorPrebuiltTablesAcrossRuns) {
  ProcessSetParams p = ProcessSetParams::symmetric(4, 1.0, 0.5);
  PrpSimParams sim;
  sim.t_record = 1e-3;
  sim.error_rate = 0.5;
  PrpSimulator reused(p, sim, 7);
  const PrpSimResult first = reused.run(6);
  const PrpSimResult second = reused.run(6);

  PrpSimulator paired(p, sim, 7);
  const PrpSimResult paired_first = paired.run(6);
  const PrpSimResult paired_second = paired.run(6);

  EXPECT_EQ(first.horizon, paired_first.horizon);
  EXPECT_EQ(second.horizon, paired_second.horizon);
  EXPECT_EQ(second.prp_distance.samples(),
            paired_second.prp_distance.samples());
  EXPECT_EQ(second.async_distance.samples(),
            paired_second.async_distance.samples());
}

TEST(BitwiseIdentityTest, SealMatchesSealFrameBytes) {
  // CellBatch::seal() now frames in place (Writer::begin_frame/end_frame)
  // instead of encoding to a payload and copying through seal_frame; the
  // bytes on the wire must not change.
  Scenario base = Scenario::symmetric(3, 1.0, 0.5).samples(100);
  EvalPlan plan;
  plan.steps.push_back({"analytic", ""});
  CellBatch batch;
  for (std::size_t i = 0; i < 5; ++i) {
    batch.cells.push_back(
        BatchCell{i, Scenario(base).seed(100 + i), true, plan});
  }

  wire::Writer payload;
  batch.encode(payload);
  const std::vector<std::byte> expected =
      wire::seal_frame(kFrameCellBatch, payload.data());
  EXPECT_EQ(batch.seal(), expected);
}

}  // namespace
}  // namespace rbx
