// The AnalyticBackend solution cache (core/analytic_backend.h) must be
// invisible in the output: a cache hit replays the solved metrics with
// the doubles bit-preserved, so cached and from-scratch evaluations are
// byte-identical on the wire - across schemes, across cells that share a
// parameter point, and across labels.
#include "core/analytic_backend.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "core/result.h"
#include "core/scenario.h"
#include "support/wire.h"

namespace rbx {
namespace {

std::vector<std::byte> encoded(const ResultSet& r) {
  wire::Writer w;
  r.encode(w);
  return w.data();
}

std::vector<Scenario> scheme_scenarios() {
  return {
      // Async, full chain + exact lumped promotion.
      Scenario::symmetric(3, 1.5, 0.7),
      // Async, lumped-only (n past the symmetric full-chain cutoff).
      Scenario::symmetric(9, 1.0, 0.5),
      // Synchronized and PRP.
      Scenario::symmetric(5, 1.0, 0.0).scheme(SchemeKind::kSynchronized),
      Scenario::symmetric(4, 1.0, 0.5)
          .scheme(SchemeKind::kPseudoRecoveryPoints)
          .t_record(1e-3),
  };
}

TEST(AnalyticCacheTest, HitIsByteIdenticalToFromScratch) {
  const AnalyticBackend uncached(false);
  const AnalyticBackend cached(true);
  for (const Scenario& s : scheme_scenarios()) {
    const std::vector<std::byte> truth = encoded(uncached.evaluate(s));
    // First evaluation populates the cache (miss path)...
    EXPECT_EQ(encoded(cached.evaluate(s)), truth) << s.label();
    // ...the second replays it (hit path).  Bytes, not values: NaN
    // payloads, signed zeros and metric order all must survive.
    EXPECT_EQ(encoded(cached.evaluate(s)), truth) << s.label();
  }
  EXPECT_EQ(cached.cached_models(), scheme_scenarios().size());
  EXPECT_EQ(uncached.cached_models(), 0u);
}

TEST(AnalyticCacheTest, SeedAxisSharesOneEntryButKeepsLabels) {
  // A fig5-style sweep varies the seed; the analytic solution is the same
  // point, so the cache must collapse the axis to one solve while every
  // cell still gets its own label.
  const AnalyticBackend uncached(false);
  const AnalyticBackend cached(true);
  const Scenario base = Scenario::symmetric(4, 1.0, 0.5);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Scenario cell = Scenario(base).seed(seed).samples(100 * seed);
    const ResultSet fresh = uncached.evaluate(cell);
    const ResultSet hit = cached.evaluate(cell);
    EXPECT_EQ(encoded(hit), encoded(fresh)) << "seed=" << seed;
    EXPECT_EQ(hit.scenario(), cell.label());
  }
  EXPECT_EQ(cached.cached_models(), 1u);

  // Any knob the evaluators read is part of the key: a different rate
  // point is a second entry, not a stale hit.
  cached.evaluate(Scenario::symmetric(4, 2.0, 0.5));
  EXPECT_EQ(cached.cached_models(), 2u);
}

TEST(AnalyticCacheTest, SchemeIsPartOfTheKey) {
  // Identical rates under different schemes produce different metrics;
  // the scheme byte in the key keeps them apart.
  const AnalyticBackend cached(true);
  const Scenario async_s = Scenario::symmetric(4, 1.0, 0.0);
  const Scenario sync_s =
      Scenario::symmetric(4, 1.0, 0.0).scheme(SchemeKind::kSynchronized);
  const ResultSet a = cached.evaluate(async_s);
  const ResultSet b = cached.evaluate(sync_s);
  EXPECT_EQ(cached.cached_models(), 2u);
  EXPECT_NE(encoded(a), encoded(b));
}

}  // namespace
}  // namespace rbx
