// The micro harness itself: the default registry spans every layer, stats
// are ordered (p10 <= median <= p90), pinned reps are honored, and the
// threaded path produces per-thread closures.
#include "perf/bench.h"

#include <atomic>
#include <set>
#include <string>

#include <gtest/gtest.h>

namespace rbx {
namespace perf {
namespace {

BenchOptions tiny() {
  BenchOptions o;
  o.reps = 8;
  o.intervals = 3;
  o.warmup_intervals = 1;
  return o;
}

TEST(BenchTest, DefaultRegistrySpansLayers) {
  KernelRegistry registry;
  register_default_kernels(registry);
  EXPECT_GE(registry.kernels().size(), 8u);
  std::set<std::string> layers;
  std::set<std::string> names;
  for (const Kernel& k : registry.kernels()) {
    layers.insert(k.layer);
    EXPECT_TRUE(names.insert(k.name).second) << "duplicate " << k.name;
  }
  // The trajectory must cover numerics, the simulators and the wire path
  // at minimum (ISSUE acceptance: kernels across numerics/DES/wire).
  EXPECT_TRUE(layers.count("numerics"));
  EXPECT_TRUE(layers.count("des"));
  EXPECT_TRUE(layers.count("wire"));
  EXPECT_TRUE(layers.count("fleet"));
  EXPECT_NE(registry.find("sparse_spmv_left"), nullptr);
  EXPECT_NE(registry.find("fleet_resolve_fair_share"), nullptr);
  EXPECT_EQ(registry.find("no_such_kernel"), nullptr);
}

TEST(BenchTest, RunKernelProducesOrderedStats) {
  Kernel k;
  k.name = "busy";
  k.layer = "test";
  k.make = [] {
    return [] {
      double acc = 0.0;
      for (int i = 0; i < 100; ++i) {
        acc += static_cast<double>(i) * 1.0000001;
      }
      return acc;
    };
  };
  const KernelStats s = run_kernel(k, tiny());
  EXPECT_EQ(s.name, "busy");
  EXPECT_EQ(s.layer, "test");
  EXPECT_EQ(s.reps, 8u);
  EXPECT_EQ(s.intervals, 3u);
  EXPECT_GT(s.ns_median, 0.0);
  EXPECT_LE(s.ns_p10, s.ns_median);
  EXPECT_LE(s.ns_median, s.ns_p90);
}

TEST(BenchTest, CalibrationPicksNonZeroReps) {
  Kernel k;
  k.name = "tiny_op";
  k.layer = "test";
  k.make = [] {
    return [] { return 1.0; };
  };
  BenchOptions o;
  o.reps = 0;  // calibrate
  o.intervals = 2;
  o.interval_ms = 1.0;
  o.warmup_intervals = 0;
  const KernelStats s = run_kernel(k, o);
  // A near-free op needs many reps to fill 1 ms.
  EXPECT_GT(s.reps, 100u);
}

TEST(BenchTest, ThreadsGetTheirOwnClosure) {
  std::atomic<int> makes{0};
  Kernel k;
  k.name = "counted";
  k.layer = "test";
  k.make = [&makes] {
    ++makes;
    return [] { return 1.0; };
  };
  BenchOptions o = tiny();
  o.threads = 3;
  const KernelStats s = run_kernel(k, o);
  EXPECT_EQ(makes.load(), 3);
  EXPECT_EQ(s.threads, 3u);
  EXPECT_GT(s.ns_median, 0.0);
}

TEST(BenchTest, KernelPinnedThreadsOverrideOptions) {
  // Contention kernels pin their own concurrency (e.g. the _t4/_t8
  // variants); the per-kernel value must beat the harness-wide default.
  std::atomic<int> makes{0};
  Kernel k;
  k.name = "pinned";
  k.layer = "test";
  k.threads = 2;
  k.make = [&makes] {
    ++makes;
    return [] { return 1.0; };
  };
  BenchOptions o = tiny();
  o.threads = 1;  // kernel override must win
  const KernelStats s = run_kernel(k, o);
  EXPECT_EQ(makes.load(), 2);
  EXPECT_EQ(s.threads, 2u);
}

TEST(BenchTest, KernelWithoutPinInheritsOptionThreads) {
  Kernel k;
  k.name = "unpinned";
  k.layer = "test";
  ASSERT_EQ(k.threads, 0u);
  k.make = [] {
    return [] { return 1.0; };
  };
  BenchOptions o = tiny();
  o.threads = 2;
  const KernelStats s = run_kernel(k, o);
  EXPECT_EQ(s.threads, 2u);
}

}  // namespace
}  // namespace perf
}  // namespace rbx
