// The fleet's trust anchor: the self-contained SHA-256/HMAC pinned to
// the published test vectors (a home-grown digest that silently diverges
// from FIPS 180-4 would "authenticate" nothing), plus the key-file
// loader and lease-signature contracts the handshake builds on.
#include "fleet/auth.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace rbx {
namespace fleet {
namespace {

std::string hex(const std::array<std::uint8_t, 32>& digest) {
  std::string out;
  char buf[3];
  for (std::uint8_t byte : digest) {
    std::snprintf(buf, sizeof buf, "%02x", byte);
    out += buf;
  }
  return out;
}

TEST(Sha256Test, MatchesFips180Vectors) {
  // FIPS 180-4 / NIST CAVP single-block and empty-message vectors.
  EXPECT_EQ(hex(sha256("", 0)),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex(sha256("abc", 3)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  const std::string two_blocks =
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
  EXPECT_EQ(hex(sha256(two_blocks.data(), two_blocks.size())),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, PaddingBoundaries) {
  // 55/56/64 bytes straddle the length-field padding edge where naive
  // implementations break.
  const std::string a(55, 'a');
  const std::string b(56, 'a');
  const std::string c(64, 'a');
  EXPECT_EQ(hex(sha256(a.data(), a.size())),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(hex(sha256(b.data(), b.size())),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
  EXPECT_EQ(hex(sha256(c.data(), c.size())),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

TEST(HmacSha256Test, MatchesRfc4231Vectors) {
  // RFC 4231 test case 2: short key, short data.
  EXPECT_EQ(hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  // RFC 4231 test case 1: 20 bytes of 0x0b.
  EXPECT_EQ(hex(hmac_sha256(std::string(20, '\x0b'), "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  // RFC 4231 test case 6: a key longer than one block must be hashed
  // first - the branch a short-key-only HMAC never exercises.
  EXPECT_EQ(hex(hmac_sha256(std::string(131, '\xaa'),
                            "Test Using Larger Than Block-Size Key - Hash "
                            "Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(AuthMacTest, BindsKeyAndChallenge) {
  const std::string mac = auth_mac("fleet-key", "nonce-1");
  EXPECT_EQ(mac.size(), 32u);
  EXPECT_EQ(mac, auth_mac("fleet-key", "nonce-1"));
  EXPECT_NE(mac, auth_mac("fleet-key", "nonce-2"));
  EXPECT_NE(mac, auth_mac("other-key", "nonce-1"));
}

TEST(MacEqualTest, EqualityAndLengthMismatch) {
  EXPECT_TRUE(mac_equal("", ""));
  EXPECT_TRUE(mac_equal("abcd", "abcd"));
  EXPECT_FALSE(mac_equal("abcd", "abce"));
  EXPECT_FALSE(mac_equal("abcd", "abc"));
  EXPECT_FALSE(mac_equal("", "a"));
}

TEST(LeaseSigTest, SignsTokensUnderKey) {
  const std::uint64_t sig = lease_sig("fleet-key", 42);
  EXPECT_NE(sig, 0u);
  EXPECT_EQ(sig, lease_sig("fleet-key", 42));  // deterministic
  EXPECT_NE(sig, lease_sig("fleet-key", 43));  // binds the token
  EXPECT_NE(sig, lease_sig("other-key", 42));  // binds the key
  // Open fleet: no key, no signature - both sides compute 0 and agree.
  EXPECT_EQ(lease_sig("", 42), 0u);
}

TEST(MakeChallengeTest, FreshSixteenByteNonces) {
  const std::string a = make_challenge();
  const std::string b = make_challenge();
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_NE(a, b);
}

TEST(LoadAuthKeyTest, StripsOneTrailingNewline) {
  const std::string path = ::testing::TempDir() + "/rbx_fleet_key";
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << "s3kr1t\n";
  }
  EXPECT_EQ(load_auth_key(path), "s3kr1t");
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << "s3kr1t\r\n";  // an editor on the other platform
  }
  EXPECT_EQ(load_auth_key(path), "s3kr1t");
  std::remove(path.c_str());
}

TEST(LoadAuthKeyTest, RefusesMissingAndEmptyFiles) {
  EXPECT_THROW(load_auth_key("/no/such/key/file"), std::runtime_error);
  const std::string path = ::testing::TempDir() + "/rbx_fleet_key_empty";
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
  }
  // An empty key would authenticate everyone - refuse it loudly.
  EXPECT_THROW(load_auth_key(path), std::runtime_error);
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << "\n";  // newline-only is still an empty key
  }
  EXPECT_THROW(load_auth_key(path), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace fleet
}  // namespace rbx
