// The registry contract: membership is soft state (heartbeat or be
// evicted; an expired member is never granted), fair-share leasing splits
// a contended fleet without double-counting re-resolves, and the wire
// server refuses mis-keyed peers loudly.  MemberTable takes explicit
// now_ms everywhere, so expiry and lease ageing run deterministically -
// no sleeps in the unit half of this file.
#include "fleet/registry.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/auth.h"
#include "fleet/client.h"
#include "fleet/proto.h"
#include "net/frame.h"
#include "net/socket.h"

namespace rbx {
namespace fleet {
namespace {

JoinInfo daemon(const std::string& host, std::uint16_t port,
                std::uint32_t weight = 1) {
  return JoinInfo{host, port, weight};
}

ResolveRequest ask(std::uint64_t coordinator_id,
                   std::uint32_t max_workers = 0) {
  return ResolveRequest{coordinator_id, max_workers};
}

std::set<std::string> endpoints(const GrantResponse& grant) {
  std::set<std::string> out;
  for (const GrantedMember& m : grant.members) {
    out.insert(m.endpoint());
  }
  return out;
}

MemberTableOptions fast_table() {
  MemberTableOptions opt;
  opt.evict_after_ms = 1000;
  opt.lease_ttl_ms = 5000;
  return opt;
}

TEST(MemberTableTest, JoinThenResolveGrantsTheMember) {
  MemberTable table(fast_table());
  table.join(daemon("hostA", 4701), /*now_ms=*/0);
  const GrantResponse grant = table.resolve(ask(1), /*now_ms=*/10);
  ASSERT_EQ(grant.members.size(), 1u);
  EXPECT_EQ(grant.members[0].endpoint(), "hostA:4701");
  EXPECT_EQ(grant.live_members, 1u);
  EXPECT_NE(grant.members[0].lease_token, 0u);
}

TEST(MemberTableTest, SilentMemberIsEvictedAndNeverGranted) {
  MemberTable table(fast_table());
  table.join(daemon("hostA", 4701), /*now_ms=*/0);
  // One heartbeat inside the window keeps it alive...
  table.heartbeat(daemon("hostA", 4701), /*now_ms=*/900);
  EXPECT_EQ(table.live(/*now_ms=*/1800), 1u);
  // ...then silence past evict_after_ms: gone, and a resolve at that
  // instant must not hand it out (lazy eviction runs before granting).
  const GrantResponse grant = table.resolve(ask(1), /*now_ms=*/1901);
  EXPECT_TRUE(grant.members.empty());
  EXPECT_EQ(grant.live_members, 0u);
  EXPECT_EQ(table.live(/*now_ms=*/1901), 0u);
}

TEST(MemberTableTest, LeaveRemovesImmediately) {
  MemberTable table(fast_table());
  table.join(daemon("hostA", 4701), 0);
  table.join(daemon("hostB", 4701), 0);
  table.leave("hostA:4701");
  const GrantResponse grant = table.resolve(ask(1), 1);
  EXPECT_EQ(endpoints(grant), std::set<std::string>{"hostB:4701"});
  table.leave("no-such:1");  // unknown endpoints are ignored
}

TEST(MemberTableTest, RejoinRefreshesInsteadOfDuplicating) {
  MemberTable table(fast_table());
  table.join(daemon("hostA", 4701), 0);
  // A restarted daemon re-joins its old endpoint: same entry, fresh
  // liveness - not a phantom second worker.
  table.join(daemon("hostA", 4701), 800);
  EXPECT_EQ(table.live(900), 1u);
  const GrantResponse grant = table.resolve(ask(1), 1700);
  ASSERT_EQ(grant.members.size(), 1u);  // refreshed at 800, alive at 1700
}

TEST(MemberTableTest, ContendingCoordinatorsGetDisjointFairShares) {
  MemberTable table(fast_table());
  table.join(daemon("hostA", 1), 0);
  table.join(daemon("hostB", 1), 0);
  table.join(daemon("hostC", 1), 0);
  table.join(daemon("hostD", 1), 0);

  // Work-conserving: a lone sweep gets the whole fleet...
  const GrantResponse first = table.resolve(ask(1), 10);
  EXPECT_EQ(first.members.size(), 4u);
  // ...a second contender gets its half (least-leased first)...
  const GrantResponse second = table.resolve(ask(2), 20);
  EXPECT_EQ(second.members.size(), 2u);
  EXPECT_EQ(second.live_members, 4u);
  // ...and when coordinator 1 re-resolves under contention, its fresh
  // half must be exactly the members coordinator 2 does not hold: the
  // least-leased-first policy spreads the fleet before anyone doubles up.
  const GrantResponse readjusted = table.resolve(ask(1), 30);
  EXPECT_EQ(readjusted.members.size(), 2u);
  std::set<std::string> overlap;
  const std::set<std::string> a = endpoints(readjusted);
  const std::set<std::string> b = endpoints(second);
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(overlap, overlap.begin()));
  EXPECT_TRUE(overlap.empty());
}

TEST(MemberTableTest, ReResolveSupersedesOldLeases) {
  MemberTable table(fast_table());
  table.join(daemon("hostA", 1), 0);
  table.join(daemon("hostB", 1), 0);

  // The same coordinator resolving twice is one contender, not two: its
  // second grant is a full single-contender share again.
  const GrantResponse first = table.resolve(ask(7), 10);
  EXPECT_EQ(first.members.size(), 2u);
  const GrantResponse again = table.resolve(ask(7), 20);
  EXPECT_EQ(again.members.size(), 2u);

  // And a genuinely new contender still gets a clean half - coordinator
  // 7's stale first grant must not count against the split.
  const GrantResponse other = table.resolve(ask(8), 30);
  EXPECT_EQ(other.members.size(), 1u);
}

TEST(MemberTableTest, ExpiredCoordinatorLeasesStopContending) {
  MemberTable table(fast_table());  // lease_ttl_ms = 5000
  table.join(daemon("hostA", 1), 0);
  table.join(daemon("hostB", 1), 0);

  EXPECT_EQ(table.resolve(ask(1), 10).members.size(), 2u);
  table.join(daemon("hostA", 1), 4000);  // keep members alive
  table.join(daemon("hostB", 1), 4000);
  // Within the lease TTL coordinator 1 still contends: half each.
  EXPECT_EQ(table.resolve(ask(2), 4100).members.size(), 1u);
  table.join(daemon("hostA", 1), 9000);
  table.join(daemon("hostB", 1), 9000);
  // Past the TTL both old grants have aged out; a fresh coordinator is
  // alone again and gets the whole fleet.
  EXPECT_EQ(table.resolve(ask(3), 9500).members.size(), 2u);
}

TEST(MemberTableTest, WeightBiasesTheShareSplit) {
  MemberTable table(fast_table());
  table.join(daemon("big", 1, /*weight=*/3), 0);
  table.join(daemon("small", 1, /*weight=*/1), 0);
  // Total weight 4 over two contenders = share 2: the grant fills it
  // with the single weight-3 member (least-leased first, then capacity).
  const GrantResponse first = table.resolve(ask(1), 10);
  EXPECT_EQ(first.members.size(), 2u);  // lone: everything
  // The second contender's share of 2 weight-units is filled by the
  // weight-3 member alone - weight counts toward capacity, not headcount.
  const GrantResponse second = table.resolve(ask(2), 20);
  ASSERT_EQ(second.members.size(), 1u);
  EXPECT_EQ(second.members[0].host, "big");
}

TEST(MemberTableTest, MaxWorkersCapsTheGrant) {
  MemberTable table(fast_table());
  table.join(daemon("hostA", 1), 0);
  table.join(daemon("hostB", 1), 0);
  table.join(daemon("hostC", 1), 0);
  const GrantResponse grant = table.resolve(ask(1, /*max_workers=*/2), 10);
  EXPECT_EQ(grant.members.size(), 2u);
  EXPECT_EQ(grant.live_members, 3u);
}

TEST(MemberTableTest, LeasesAreSignedUnderTheFleetKey) {
  MemberTableOptions opt = fast_table();
  opt.auth_key = "fleet-key";
  MemberTable table(opt);
  table.join(daemon("hostA", 4701), 0);
  const GrantResponse grant = table.resolve(ask(1), 10);
  ASSERT_EQ(grant.members.size(), 1u);
  // The signature a worker recomputes offline must match the grant's.
  EXPECT_EQ(grant.members[0].lease_sig,
            lease_sig("fleet-key", grant.members[0].lease_token));
  EXPECT_NE(grant.members[0].lease_sig, 0u);
}

TEST(MemberTableTest, OpenFleetGrantsUnsignedLeases) {
  MemberTable table(fast_table());  // no auth_key
  table.join(daemon("hostA", 4701), 0);
  const GrantResponse grant = table.resolve(ask(1), 10);
  ASSERT_EQ(grant.members.size(), 1u);
  EXPECT_EQ(grant.members[0].lease_sig, 0u);  // = lease_sig("", token)
}

// --- RegistryServer over loopback ------------------------------------------

struct TestRegistry {
  explicit TestRegistry(MemberTableOptions table = {}) {
    RegistryOptions opts;
    opts.port = 0;
    opts.quiet = true;
    opts.table = table;
    server = std::make_unique<RegistryServer>(opts);
    thread = std::thread([this]() { server->serve(); });
  }
  ~TestRegistry() {
    server->stop();
    thread.join();
  }

  net::Endpoint endpoint() const { return {"127.0.0.1", server->port()}; }

  std::unique_ptr<RegistryServer> server;
  std::thread thread;
};

RegistryClientOptions client_options(const net::Endpoint& registry,
                                     std::string auth_key = {}) {
  RegistryClientOptions opts;
  opts.registry = registry;
  opts.auth_key = std::move(auth_key);
  opts.connect_retries = 5;
  return opts;
}

TEST(RegistryServerTest, JoinHeartbeatResolveLeaveOverTheWire) {
  TestRegistry registry;
  RegistryClient worker(client_options(registry.endpoint()));
  RegistryClient coordinator(client_options(registry.endpoint()));

  worker.join(daemon("127.0.0.1", 4701));
  worker.heartbeat(daemon("127.0.0.1", 4701));
  GrantResponse grant = coordinator.resolve(ask(1));
  ASSERT_EQ(grant.members.size(), 1u);
  EXPECT_EQ(grant.members[0].endpoint(), "127.0.0.1:4701");

  worker.leave(daemon("127.0.0.1", 4701));
  grant = coordinator.resolve(ask(1));
  EXPECT_TRUE(grant.members.empty());
}

TEST(RegistryServerTest, KeyedRegistryAdmitsTheRightKey) {
  MemberTableOptions table;
  table.auth_key = "fleet-key";
  TestRegistry registry(table);
  RegistryClient client(client_options(registry.endpoint(), "fleet-key"));
  client.join(daemon("127.0.0.1", 4701));
  const GrantResponse grant = client.resolve(ask(1));
  ASSERT_EQ(grant.members.size(), 1u);
  EXPECT_EQ(grant.members[0].lease_sig,
            lease_sig("fleet-key", grant.members[0].lease_token));
}

TEST(RegistryServerTest, WrongKeyIsRefusedLoudly) {
  MemberTableOptions table;
  table.auth_key = "fleet-key";
  TestRegistry registry(table);
  RegistryClient client(client_options(registry.endpoint(), "wrong-key"));
  try {
    client.join(daemon("127.0.0.1", 4701));
    FAIL() << "a wrong-keyed join must throw";
  } catch (const net::Error& e) {
    EXPECT_NE(std::string(e.what()).find("authentication"),
              std::string::npos)
        << e.what();
  }
}

TEST(RegistryServerTest, KeylessPeerAgainstKeyedRegistryIsRefused) {
  MemberTableOptions table;
  table.auth_key = "fleet-key";
  TestRegistry registry(table);
  RegistryClient client(client_options(registry.endpoint()));  // no key
  try {
    client.join(daemon("127.0.0.1", 4701));
    FAIL() << "a keyless join against a keyed registry must throw";
  } catch (const net::Error& e) {
    EXPECT_NE(std::string(e.what()).find("auth"), std::string::npos)
        << e.what();
  }
}

TEST(RegistryServerTest, MembershipJoinsHeartbeatsAndLeaves) {
  // The daemon-side loop end to end: start() joins, stop() leaves; with a
  // fast heartbeat the registry sees refreshes in between.
  TestRegistry registry;
  MembershipOptions mopts;
  mopts.registry = registry.endpoint();
  mopts.self = daemon("127.0.0.1", 4777);
  mopts.heartbeat_ms = 20;
  mopts.quiet = true;
  RegistryClient coordinator(client_options(registry.endpoint()));
  {
    FleetMembership membership(mopts);
    membership.start();
    EXPECT_EQ(coordinator.resolve(ask(1)).live_members, 1u);
    membership.stop();  // orderly: Leave, not eviction
  }
  EXPECT_EQ(coordinator.resolve(ask(2)).live_members, 0u);
}

TEST(RegistryServerTest, AbandonedMembershipAgesOutByEviction) {
  // abandon() is the crash path: no Leave, so the entry lingers until the
  // eviction timer fires - exactly what a SIGKILLed daemon looks like.
  MemberTableOptions table;
  table.evict_after_ms = 400;
  TestRegistry registry(table);
  MembershipOptions mopts;
  mopts.registry = registry.endpoint();
  mopts.self = daemon("127.0.0.1", 4778);
  mopts.heartbeat_ms = 50;
  mopts.quiet = true;
  RegistryClient coordinator(client_options(registry.endpoint()));
  FleetMembership membership(mopts);
  membership.start();
  EXPECT_EQ(coordinator.resolve(ask(1)).live_members, 1u);
  membership.abandon();
  // Gone once the heartbeat silence crosses evict_after_ms - the same
  // eviction a real SIGKILL earns.
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  EXPECT_EQ(coordinator.resolve(ask(1)).live_members, 0u);
}

}  // namespace
}  // namespace fleet
}  // namespace rbx
