// The fleet lane contract: a sweep resolved through the registry is
// bitwise identical to the same sweep with the daemons named on a
// --connect list; a daemon killed mid-sweep is backfilled by a member
// that joined the registry *after* the sweep started; and a keyed worker
// refuses keyless, wrong-keyed and forged-lease coordinators with an
// error frame - loudly, never a hang.  Workers and registry are the real
// servers on loopback sockets inside threads.
#include "fleet/lane.h"

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/dispatch.h"
#include "core/executor.h"
#include "core/lane.h"
#include "core/sweep.h"
#include "fleet/auth.h"
#include "fleet/client.h"
#include "fleet/registry.h"
#include "net/cluster.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/worker.h"

namespace rbx {
namespace {

std::vector<Scenario> mc_grid(std::uint64_t master_seed) {
  const auto apply_n = [](Scenario& s, double n) {
    s.params(ProcessSetParams::symmetric(static_cast<std::size_t>(n), 1.0,
                                         1.0));
  };
  return SweepGrid(Scenario::symmetric(2, 1.0, 1.0).samples(200))
      .axis({2, 3, 4}, apply_n)
      .schemes({SchemeKind::kAsynchronous, SchemeKind::kSynchronized})
      .expand(master_seed);
}

PlanFn mc_plan() {
  return [](const Scenario&, std::size_t) {
    return EvalPlan{{EvalStep{"monte-carlo", ""}}};
  };
}

CellFn local_fn_for(const PlanFn& plan) {
  return [&plan](const Scenario& s, std::size_t i) {
    return evaluate_plan(plan(s, i), s);
  };
}

net::WorkerOptions worker_options(bool once, std::size_t fail_after,
                                  std::string auth_key = {}) {
  net::WorkerOptions opts;
  opts.port = 0;
  opts.once = once;
  opts.fail_after = fail_after;
  opts.quiet = true;
  opts.auth_key = std::move(auth_key);
  return opts;
}

// A worker daemon on an ephemeral loopback port (once=false is the
// long-running pool mode; stop() unblocks it, the destructor joins).
struct TestWorker {
  explicit TestWorker(net::WorkerOptions opts)
      : once(opts.once),
        server(std::move(opts)),
        thread([this]() { server.serve(); }) {}
  ~TestWorker() {
    if (!once) {
      server.stop();
    }
    thread.join();
  }

  net::Endpoint endpoint() const { return {"127.0.0.1", server.port()}; }
  fleet::JoinInfo join_info() const {
    return fleet::JoinInfo{"127.0.0.1", server.port(), 1};
  }

  bool once;
  net::WorkerServer server;
  std::thread thread;
};

struct TestRegistry {
  explicit TestRegistry(fleet::MemberTableOptions table = {}) {
    fleet::RegistryOptions opts;
    opts.port = 0;
    opts.quiet = true;
    opts.table = table;
    server = std::make_unique<fleet::RegistryServer>(opts);
    thread = std::thread([this]() { server->serve(); });
  }
  ~TestRegistry() {
    server->stop();
    thread.join();
  }

  net::Endpoint endpoint() const { return {"127.0.0.1", server->port()}; }

  // Registers a daemon the way sweep_workerd --fleet does, minus the
  // heartbeat thread (tests finish well inside the eviction window).
  void admit(const TestWorker& worker, const std::string& auth_key = {}) {
    fleet::RegistryClientOptions copts;
    copts.registry = endpoint();
    copts.auth_key = auth_key;
    fleet::RegistryClient client(copts);
    client.join(worker.join_info());
  }

  std::unique_ptr<fleet::RegistryServer> server;
  std::thread thread;
};

fleet::FleetLaneOptions fleet_options(const net::Endpoint& registry,
                                      std::string auth_key = {}) {
  fleet::FleetLaneOptions opts;
  opts.registry = registry;
  opts.auth_key = std::move(auth_key);
  opts.coordinator_id = 1;  // pinned: fair-share grants are exact
  opts.quiet = true;
  return opts;
}

std::vector<CellOutcome> run_fleet_sweep(
    std::unique_ptr<fleet::FleetLane> lane,
    const std::vector<Scenario>& cells, const PlanFn& plan,
    DispatchOptions options = {}) {
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.push_back(std::move(lane));
  options.quiet = true;
  HybridExecutor executor(std::move(lanes), options);
  executor.set_plan_fn(plan);
  return executor.run(cells, CellFn());
}

TEST(FleetLaneTest, RegistryResolvedSweepMatchesConnectBitwise) {
  const std::vector<Scenario> cells = mc_grid(211);
  const PlanFn plan = mc_plan();
  const auto reference =
      InProcessExecutor({1}).run(cells, local_fn_for(plan));

  TestWorker w1(worker_options(/*once=*/false, 0));
  TestWorker w2(worker_options(/*once=*/false, 0));
  TestRegistry registry;
  registry.admit(w1);
  registry.admit(w2);

  // The same daemons, named explicitly: the --connect baseline.
  std::vector<CellOutcome> connect_run;
  {
    net::ClusterOptions copts;
    copts.endpoints = {w1.endpoint(), w2.endpoint()};
    copts.quiet = true;
    net::ClusterExecutor cluster(std::move(copts));
    cluster.set_plan_fn(plan);
    connect_run = cluster.run(cells, CellFn());
  }

  // Resolved through the registry instead: same bytes.
  const auto fleet_run = run_fleet_sweep(
      std::make_unique<fleet::FleetLane>(fleet_options(registry.endpoint())),
      cells, plan);

  ASSERT_EQ(fleet_run.size(), cells.size());
  ASSERT_EQ(connect_run.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(fleet_run[i].ok()) << "cell " << i << ": "
                                   << fleet_run[i].error;
    ASSERT_TRUE(connect_run[i].ok()) << connect_run[i].error;
    EXPECT_EQ(fleet_run[i].result, reference[i].result) << "cell " << i;
    EXPECT_EQ(fleet_run[i].result, connect_run[i].result) << "cell " << i;
  }
}

TEST(FleetLaneTest, KeyedFleetSweepsEndToEnd) {
  // Registry, daemons and coordinator all hold the key: the HMAC
  // handshake and the registry-signed lease verify on every hop, and the
  // bytes still match the local reference.
  const std::string key = "fleet-key";
  const std::vector<Scenario> cells = mc_grid(223);
  const PlanFn plan = mc_plan();
  const auto reference =
      InProcessExecutor({1}).run(cells, local_fn_for(plan));

  fleet::MemberTableOptions table;
  table.auth_key = key;
  TestRegistry registry(table);
  TestWorker w1(worker_options(/*once=*/false, 0, key));
  registry.admit(w1, key);

  const auto fleet_run = run_fleet_sweep(
      std::make_unique<fleet::FleetLane>(
          fleet_options(registry.endpoint(), key)),
      cells, plan);
  ASSERT_EQ(fleet_run.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(fleet_run[i].ok()) << fleet_run[i].error;
    EXPECT_EQ(fleet_run[i].result, reference[i].result) << "cell " << i;
  }
}

TEST(FleetLaneTest, FreshJoinerBackfillsAWorkerKilledMidSweep) {
  const std::vector<Scenario> cells = mc_grid(227);
  const PlanFn plan = mc_plan();
  const auto reference =
      InProcessExecutor({1}).run(cells, local_fn_for(plan));

  // The only registered daemon answers one single-cell batch, then drops
  // the session - a deterministic mid-sweep kill.
  TestWorker dying(worker_options(/*once=*/true, /*fail_after=*/1));
  // The replacement is running but NOT yet in the registry: it joins
  // after the sweep is underway, like an operator adding capacity.
  TestWorker fresh(worker_options(/*once=*/false, 0));
  TestRegistry registry;
  registry.admit(dying);

  auto lane_options = fleet_options(registry.endpoint());
  lane_options.readmit_delay_ms = 400;  // first revive lands after the
                                        // membership change below
  auto lane = std::make_unique<fleet::FleetLane>(lane_options);
  fleet::FleetLane* lane_ptr = lane.get();

  std::thread operator_thread([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    fleet::RegistryClientOptions copts;
    copts.registry = registry.endpoint();
    fleet::RegistryClient client(copts);
    client.leave(dying.join_info());  // the kill noticed registry-side
    client.join(fresh.join_info());   // capacity added mid-sweep
  });

  DispatchOptions dopts;
  dopts.batch_size = 1;  // the kill triggers on the second cell
  dopts.handshake_timeout_ms = 2000;
  const auto outcomes = run_fleet_sweep(std::move(lane), cells, plan, dopts);
  operator_thread.join();

  ASSERT_EQ(outcomes.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << "cell " << i << ": "
                                  << outcomes[i].error;
    EXPECT_EQ(outcomes[i].result, reference[i].result) << "cell " << i;
  }
  // The loss was healed by a *different* member, not a reconnect.
  EXPECT_GE(lane_ptr->backfills(), 1u);
}

TEST(FleetLaneTest, RequiredLaneFailsLoudlyOnAnEmptyRegistry) {
  TestRegistry registry;  // no members
  fleet::FleetLane lane(fleet_options(registry.endpoint()));
  std::vector<LaneWorker*> workers;
  EXPECT_THROW(lane.start(10, CellFn(), 0, &workers), net::Error);
}

TEST(FleetLaneTest, OptionalLaneSurvivesAnUnreachableRegistry) {
  // Find a dead port by binding an ephemeral listener and closing it.
  std::uint16_t dead_port = 0;
  {
    net::Listener probe(0);
    dead_port = probe.port();
  }
  auto options = fleet_options({"127.0.0.1", dead_port});
  options.required = false;  // a hybrid run falls back to local lanes
  options.connect_retries = 0;
  fleet::FleetLane lane(options);
  std::vector<LaneWorker*> workers;
  lane.start(10, CellFn(), 0, &workers);
  EXPECT_TRUE(workers.empty());
}

// --- Worker-side refusals (the loud-failure contract) -----------------------

wire::Frame handshake_reply(net::FrameConn& conn, const net::Hello& hello) {
  wire::Writer w;
  hello.encode(w);
  EXPECT_TRUE(conn.send(net::kFrameHello, w.data()));
  wire::Frame reply;
  EXPECT_TRUE(conn.recv(&reply));
  return reply;
}

TEST(WorkerAuthTest, KeylessCoordinatorIsRefusedWithAnErrorFrame) {
  TestWorker worker(worker_options(/*once=*/true, 0, "fleet-key"));
  net::FrameConn conn(net::connect_to(worker.endpoint(), /*retries=*/5));
  const wire::Frame reply = handshake_reply(conn, net::Hello{});
  ASSERT_EQ(reply.type, net::kFrameError);
  wire::Reader r(reply.payload);
  EXPECT_NE(r.str().find("authentication"), std::string::npos);
}

TEST(WorkerAuthTest, WrongKeyFailsTheChallenge) {
  TestWorker worker(worker_options(/*once=*/true, 0, "fleet-key"));
  net::FrameConn conn(net::connect_to(worker.endpoint(), /*retries=*/5));
  net::Hello hello;
  hello.flags |= kHelloFlagAuth;
  wire::Frame challenge = handshake_reply(conn, hello);
  ASSERT_EQ(challenge.type, kFrameAuthChallenge);
  wire::Reader cr(challenge.payload);
  wire::Writer response;
  response.str(fleet::auth_mac("wrong-key", cr.str()));
  ASSERT_TRUE(conn.send(kFrameAuthResponse, response.data()));
  wire::Frame reply;
  ASSERT_TRUE(conn.recv(&reply));
  ASSERT_EQ(reply.type, net::kFrameError);
  wire::Reader r(reply.payload);
  EXPECT_NE(r.str().find("authentication failed"), std::string::npos);
}

TEST(WorkerAuthTest, RightKeyPassesTheChallenge) {
  TestWorker worker(worker_options(/*once=*/true, 0, "fleet-key"));
  net::FrameConn conn(net::connect_to(worker.endpoint(), /*retries=*/5));
  net::Hello hello;
  hello.flags |= kHelloFlagAuth;
  wire::Frame challenge = handshake_reply(conn, hello);
  ASSERT_EQ(challenge.type, kFrameAuthChallenge);
  wire::Reader cr(challenge.payload);
  wire::Writer response;
  response.str(fleet::auth_mac("fleet-key", cr.str()));
  ASSERT_TRUE(conn.send(kFrameAuthResponse, response.data()));
  wire::Frame reply;
  ASSERT_TRUE(conn.recv(&reply));
  EXPECT_EQ(reply.type, net::kFrameHelloAck);
}

TEST(WorkerAuthTest, ForgedLeaseSignatureIsRefused) {
  // The coordinator holds the key (it passes the challenge) but presents
  // a lease the registry never signed: the worker verifies the signature
  // offline and refuses.
  TestWorker worker(worker_options(/*once=*/true, 0, "fleet-key"));
  net::FrameConn conn(net::connect_to(worker.endpoint(), /*retries=*/5));
  net::Hello hello;
  hello.flags |= kHelloFlagAuth | kHelloFlagLease;
  hello.lease_token = 42;
  hello.lease_sig = 7;  // not lease_sig("fleet-key", 42)
  wire::Frame challenge = handshake_reply(conn, hello);
  ASSERT_EQ(challenge.type, kFrameAuthChallenge);
  wire::Reader cr(challenge.payload);
  wire::Writer response;
  response.str(fleet::auth_mac("fleet-key", cr.str()));
  ASSERT_TRUE(conn.send(kFrameAuthResponse, response.data()));
  wire::Frame reply;
  ASSERT_TRUE(conn.recv(&reply));
  ASSERT_EQ(reply.type, net::kFrameError);
  wire::Reader r(reply.payload);
  EXPECT_NE(r.str().find("lease"), std::string::npos);
}

}  // namespace
}  // namespace rbx
