#include "markov/phase_type.h"

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "numerics/quadrature.h"

namespace rbx {
namespace {

PhaseType make_erlang(std::size_t stages, double rate) {
  auto chain = std::make_shared<Ctmc>(stages + 1);
  for (std::size_t s = 0; s < stages; ++s) {
    chain->add_rate(s, s + 1, rate);
  }
  chain->finalize();
  std::vector<double> alpha(stages + 1, 0.0);
  alpha[0] = 1.0;
  return PhaseType(chain, {stages}, alpha);
}

PhaseType make_hyperexponential(double p, double r1, double r2) {
  // Mixture of Exp(r1) w.p. p and Exp(r2) w.p. 1-p.
  auto chain = std::make_shared<Ctmc>(3);
  chain->add_rate(0, 2, r1);
  chain->add_rate(1, 2, r2);
  chain->finalize();
  return PhaseType(chain, {2}, {p, 1.0 - p, 0.0});
}

TEST(PhaseType, ExponentialSpecialCase) {
  PhaseType ph = make_erlang(1, 2.5);
  EXPECT_NEAR(ph.mean(), 0.4, 1e-12);
  EXPECT_NEAR(ph.variance(), 0.16, 1e-10);
  EXPECT_NEAR(ph.pdf(0.0), 2.5, 1e-9);
  EXPECT_NEAR(ph.pdf(1.0), 2.5 * std::exp(-2.5), 1e-9);
  EXPECT_NEAR(ph.cdf(1.0), 1.0 - std::exp(-2.5), 1e-9);
}

TEST(PhaseType, ErlangMoments) {
  for (std::size_t k : {2u, 3u, 5u}) {
    const double rate = 1.5;
    PhaseType ph = make_erlang(k, rate);
    EXPECT_NEAR(ph.mean(), static_cast<double>(k) / rate, 1e-10);
    EXPECT_NEAR(ph.variance(), static_cast<double>(k) / (rate * rate), 1e-9);
  }
}

TEST(PhaseType, ErlangDensity) {
  const double rate = 2.0;
  PhaseType ph = make_erlang(3, rate);
  for (double t : {0.2, 0.7, 1.5}) {
    const double expected = rate * rate * rate * t * t / 2.0 *
                            std::exp(-rate * t);
    EXPECT_NEAR(ph.pdf(t), expected, 1e-9);
  }
  EXPECT_NEAR(ph.pdf(0.0), 0.0, 1e-12);
}

TEST(PhaseType, HyperexponentialMomentsAndDensity) {
  const double p = 0.3, r1 = 4.0, r2 = 0.5;
  PhaseType ph = make_hyperexponential(p, r1, r2);
  const double mean = p / r1 + (1.0 - p) / r2;
  const double m2 = 2.0 * p / (r1 * r1) + 2.0 * (1.0 - p) / (r2 * r2);
  EXPECT_NEAR(ph.mean(), mean, 1e-10);
  EXPECT_NEAR(ph.second_moment(), m2, 1e-9);
  for (double t : {0.1, 1.0, 4.0}) {
    const double f =
        p * r1 * std::exp(-r1 * t) + (1.0 - p) * r2 * std::exp(-r2 * t);
    EXPECT_NEAR(ph.pdf(t), f, 1e-9);
  }
}

TEST(PhaseType, PdfIntegratesToOne) {
  PhaseType ph = make_hyperexponential(0.6, 3.0, 0.8);
  const auto r = integrate_to_infinity([&ph](double t) { return ph.pdf(t); },
                                       0.0, 1.0, 1e-9);
  EXPECT_NEAR(r.value, 1.0, 1e-6);
}

TEST(PhaseType, CdfIsMonotoneAndMatchesPdfDerivative) {
  PhaseType ph = make_erlang(2, 1.0);
  double prev = -1.0;
  for (double t = 0.0; t <= 5.0; t += 0.25) {
    const double c = ph.cdf(t);
    EXPECT_GE(c, prev);
    prev = c;
  }
  // Central difference of the cdf approximates the pdf.
  const double h = 1e-4;
  const double deriv = (ph.cdf(1.0 + h) - ph.cdf(1.0 - h)) / (2.0 * h);
  EXPECT_NEAR(deriv, ph.pdf(1.0), 1e-6);
}

TEST(PhaseType, QuantileInvertsCdf) {
  PhaseType ph = make_erlang(3, 2.0);
  for (double q : {0.1, 0.5, 0.9}) {
    const double t = ph.quantile(q);
    EXPECT_NEAR(ph.cdf(t), q, 1e-6);
  }
}

TEST(PhaseType, PdfGridMatchesPointwise) {
  PhaseType ph = make_erlang(2, 1.3);
  const auto grid = ph.pdf_grid(2.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_NEAR(grid[0], ph.pdf(0.0), 1e-9);
  EXPECT_NEAR(grid[2], ph.pdf(1.0), 1e-9);
  EXPECT_NEAR(grid[4], ph.pdf(2.0), 1e-9);
}

TEST(PhaseType, InitialMassOnTargetGivesAtomAtZero) {
  auto chain = std::make_shared<Ctmc>(2);
  chain->add_rate(0, 1, 1.0);
  chain->finalize();
  PhaseType ph(chain, {1}, {0.5, 0.5});
  EXPECT_NEAR(ph.mean(), 0.5, 1e-12);
  EXPECT_NEAR(ph.cdf(0.0), 0.5, 1e-12);
}

}  // namespace
}  // namespace rbx
