#include "markov/dtmc.h"

#include <cmath>

#include <gtest/gtest.h>

#include "numerics/sparse.h"

namespace rbx {
namespace {

SparseMatrix make_matrix(
    std::size_t n,
    const std::vector<std::tuple<std::size_t, std::size_t, double>>& entries) {
  SparseMatrixBuilder b(n, n);
  for (const auto& [r, c, v] : entries) {
    b.add(r, c, v);
  }
  return b.build();
}

TEST(Dtmc, StepPropagatesDistribution) {
  Dtmc p(make_matrix(2, {{0, 1, 1.0}, {1, 0, 1.0}}));
  std::vector<double> out;
  p.step({0.25, 0.75}, out);
  EXPECT_DOUBLE_EQ(out[0], 0.75);
  EXPECT_DOUBLE_EQ(out[1], 0.25);
}

// Symmetric random walk on 0..2 absorbed at both ends, started at 1:
// expected visits to 1 before absorption is 1 (start) and the chain leaves
// immediately, absorbing equally.
TEST(Dtmc, GamblersRuinVisitsAndAbsorption) {
  Dtmc p(make_matrix(3, {{0, 0, 1.0}, {1, 0, 0.5}, {1, 2, 0.5}, {2, 2, 1.0}}));
  const std::vector<double> alpha = {0.0, 1.0, 0.0};
  const std::vector<bool> absorbing = {true, false, true};
  const auto visits = p.expected_visits(alpha, absorbing);
  EXPECT_DOUBLE_EQ(visits[1], 1.0);
  EXPECT_DOUBLE_EQ(visits[0], 0.0);
  const auto dist = p.absorption_distribution(alpha, absorbing);
  EXPECT_NEAR(dist[0], 0.5, 1e-12);
  EXPECT_NEAR(dist[2], 0.5, 1e-12);
}

// A state with a self-loop q has expected visits 1/(1-q) (geometric).
TEST(Dtmc, SelfLoopGeometricVisits) {
  const double q = 0.75;
  Dtmc p(make_matrix(2, {{0, 0, q}, {0, 1, 1.0 - q}, {1, 1, 1.0}}));
  const auto visits =
      p.expected_visits({1.0, 0.0}, std::vector<bool>{false, true});
  EXPECT_NEAR(visits[0], 1.0 / (1.0 - q), 1e-12);
}

// Longer chain: 5-state symmetric walk with absorbing barriers; expected
// visits from the middle match the classic formula N = (I-Q)^{-1}.
TEST(Dtmc, FiveStateWalkVisits) {
  Dtmc p(make_matrix(5, {{0, 0, 1.0},
                         {1, 0, 0.5},
                         {1, 2, 0.5},
                         {2, 1, 0.5},
                         {2, 3, 0.5},
                         {3, 2, 0.5},
                         {3, 4, 0.5},
                         {4, 4, 1.0}}));
  const std::vector<double> alpha = {0.0, 0.0, 1.0, 0.0, 0.0};
  const std::vector<bool> absorbing = {true, false, false, false, true};
  const auto visits = p.expected_visits(alpha, absorbing);
  // Known fundamental matrix for the 3-transient-state symmetric walk:
  // from the center, visits are (1, 2, 1).
  EXPECT_NEAR(visits[1], 1.0, 1e-12);
  EXPECT_NEAR(visits[2], 2.0, 1e-12);
  EXPECT_NEAR(visits[3], 1.0, 1e-12);

  const auto dist = p.absorption_distribution(alpha, absorbing);
  EXPECT_NEAR(dist[0], 0.5, 1e-12);
  EXPECT_NEAR(dist[4], 0.5, 1e-12);
}

TEST(Dtmc, BiasedWalkAbsorption) {
  // Right bias 0.8: absorption probabilities follow the gambler's ruin
  // formula with ratio q/p = 0.25.
  const double pr = 0.8, pl = 0.2;
  Dtmc p(make_matrix(4, {{0, 0, 1.0},
                         {1, 0, pl},
                         {1, 2, pr},
                         {2, 1, pl},
                         {2, 3, pr},
                         {3, 3, 1.0}}));
  const std::vector<double> alpha = {0.0, 1.0, 0.0, 0.0};
  const std::vector<bool> absorbing = {true, false, false, true};
  const auto dist = p.absorption_distribution(alpha, absorbing);
  const double ratio = pl / pr;
  // P(ruin from state 1 of 2 interior states) = (r^1 - r^3)/(1 - r^3) with
  // r = q/p... use the standard formula with N=3 boundaries at 0 and 3.
  const double p_ruin = (std::pow(ratio, 1.0) - std::pow(ratio, 3.0)) /
                        (1.0 - std::pow(ratio, 3.0));
  EXPECT_NEAR(dist[0], p_ruin, 1e-12);
  EXPECT_NEAR(dist[3], 1.0 - p_ruin, 1e-12);
}

TEST(Dtmc, InitialMassOnAbsorbingStateStays) {
  Dtmc p(make_matrix(2, {{0, 1, 1.0}, {1, 1, 1.0}}));
  const auto dist = p.absorption_distribution(
      {0.3, 0.7}, std::vector<bool>{false, true});
  EXPECT_NEAR(dist[1], 1.0, 1e-12);
}

TEST(DtmcDeathTest, RejectsSuperStochasticRow) {
  EXPECT_DEATH(Dtmc(make_matrix(1, {{0, 0, 1.5}})), "super-stochastic");
}

}  // namespace
}  // namespace rbx
