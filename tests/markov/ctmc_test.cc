#include "markov/ctmc.h"

#include <cmath>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace rbx {
namespace {

// Two-state chain 0 <-> 1 with rates a and b has the classic closed-form
// transient solution.
TEST(Ctmc, TwoStateTransientClosedForm) {
  const double a = 2.0, b = 0.5;
  Ctmc chain(2);
  chain.add_rate(0, 1, a);
  chain.add_rate(1, 0, b);
  chain.finalize();

  for (double t : {0.0, 0.1, 0.5, 1.0, 3.0, 10.0}) {
    const auto pi = chain.transient({1.0, 0.0}, t);
    const double expected1 =
        a / (a + b) * (1.0 - std::exp(-(a + b) * t));
    EXPECT_NEAR(pi[1], expected1, 1e-10) << "t=" << t;
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-10);
  }
}

TEST(Ctmc, GeneratorRowsSumToZero) {
  Ctmc chain(4);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(0, 2, 2.0);
  chain.add_rate(1, 3, 0.5);
  chain.add_rate(2, 1, 1.5);
  chain.finalize();
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(chain.generator().row_sum(r), 0.0, 1e-12);
  }
  // State 3 is absorbing: empty row.
  EXPECT_DOUBLE_EQ(chain.generator().row_sum(3), 0.0);
  EXPECT_DOUBLE_EQ(chain.exit_rate(3), 0.0);
}

TEST(Ctmc, DuplicateRatesAccumulate) {
  Ctmc chain(2);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(0, 1, 2.0);
  chain.finalize();
  EXPECT_DOUBLE_EQ(chain.rate(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(chain.exit_rate(0), 3.0);
}

TEST(Ctmc, TransientConservesProbability) {
  Rng rng(8);
  Ctmc chain(6);
  for (std::size_t u = 0; u < 6; ++u) {
    for (std::size_t v = 0; v < 6; ++v) {
      if (u != v && rng.bernoulli(0.5)) {
        chain.add_rate(u, v, rng.uniform(0.1, 3.0));
      }
    }
  }
  chain.finalize();
  std::vector<double> pi0(6, 0.0);
  pi0[2] = 1.0;
  for (double t : {0.3, 1.7, 9.0}) {
    const auto pi = chain.transient(pi0, t);
    double sum = 0.0;
    for (double p : pi) {
      EXPECT_GE(p, -1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(Ctmc, UniformizationMatchesRk4) {
  Rng rng(17);
  Ctmc chain(5);
  for (std::size_t u = 0; u < 5; ++u) {
    for (std::size_t v = 0; v < 5; ++v) {
      if (u != v && rng.bernoulli(0.6)) {
        chain.add_rate(u, v, rng.uniform(0.1, 2.0));
      }
    }
  }
  chain.finalize();
  const std::vector<double> pi0 = {0.2, 0.2, 0.2, 0.2, 0.2};
  const auto a = chain.transient(pi0, 1.3);
  const auto b = chain.transient_rk4(pi0, 1.3, 20000);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(a[i], b[i], 1e-8);
  }
}

TEST(Ctmc, UniformizedDtmcIsStochastic) {
  Ctmc chain(3);
  chain.add_rate(0, 1, 2.0);
  chain.add_rate(1, 2, 1.0);
  chain.add_rate(1, 0, 0.5);
  chain.finalize();
  const Dtmc p = chain.uniformized_dtmc();
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_NEAR(p.transition().row_sum(r), 1.0, 1e-12);
  }
  // Transition structure: P = I + Q/lambda.
  const double lambda = chain.uniformization_rate();
  EXPECT_NEAR(p.probability(0, 1), 2.0 / lambda, 1e-12);
  EXPECT_NEAR(p.probability(0, 0), 1.0 - 2.0 / lambda, 1e-12);
}

// Pure-birth chain 0 -> 1 -> 2 with rate r: absorption at 2 is Erlang(2, r).
TEST(FirstPassage, ErlangAbsorption) {
  const double r = 1.7;
  Ctmc chain(3);
  chain.add_rate(0, 1, r);
  chain.add_rate(1, 2, r);
  chain.finalize();
  FirstPassage fp(chain, {2});
  const std::vector<double> alpha = {1.0, 0.0, 0.0};

  EXPECT_NEAR(fp.mean_hitting_time(alpha), 2.0 / r, 1e-12);
  EXPECT_NEAR(fp.variance(alpha), 2.0 / (r * r), 1e-10);

  for (double t : {0.1, 0.5, 1.0, 2.5}) {
    const double pdf = fp.density(alpha, t);
    const double expected = r * r * t * std::exp(-r * t);
    EXPECT_NEAR(pdf, expected, 1e-9) << "t=" << t;
    const double cdf = fp.cdf(alpha, t);
    const double expected_cdf =
        1.0 - std::exp(-r * t) * (1.0 + r * t);
    EXPECT_NEAR(cdf, expected_cdf, 1e-9);
  }
}

TEST(FirstPassage, SojournTimes) {
  const double r = 2.0;
  Ctmc chain(3);
  chain.add_rate(0, 1, r);
  chain.add_rate(1, 2, r);
  chain.finalize();
  FirstPassage fp(chain, {2});
  const auto nu = fp.expected_sojourn({1.0, 0.0, 0.0});
  EXPECT_NEAR(nu[0], 1.0 / r, 1e-12);
  EXPECT_NEAR(nu[1], 1.0 / r, 1e-12);
  EXPECT_DOUBLE_EQ(nu[2], 0.0);
}

TEST(FirstPassage, CompetingAbsorptionSojourn) {
  // 0 -> A at rate a, 0 -> B at rate b; P(absorb A) = a/(a+b) recovered
  // from sojourn * rate.
  const double a = 3.0, b = 1.0;
  Ctmc chain(3);
  chain.add_rate(0, 1, a);
  chain.add_rate(0, 2, b);
  chain.finalize();
  FirstPassage fp(chain, {1, 2});
  const auto nu = fp.expected_sojourn({1.0, 0.0, 0.0});
  EXPECT_NEAR(nu[0] * a, a / (a + b), 1e-12);
  EXPECT_NEAR(nu[0] * b, b / (a + b), 1e-12);
  EXPECT_NEAR(fp.mean_hitting_time({1.0, 0.0, 0.0}), 1.0 / (a + b), 1e-12);
}

TEST(FirstPassage, MeanFromMiddleState) {
  const double r = 1.0;
  Ctmc chain(3);
  chain.add_rate(0, 1, r);
  chain.add_rate(1, 2, r);
  chain.finalize();
  FirstPassage fp(chain, {2});
  EXPECT_NEAR(fp.mean_hitting_time({0.0, 1.0, 0.0}), 1.0, 1e-12);
  // Mixture initial distribution.
  EXPECT_NEAR(fp.mean_hitting_time({0.5, 0.5, 0.0}), 1.5, 1e-12);
}

TEST(FirstPassage, DensityIntegratesToOne) {
  Ctmc chain(4);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 0, 0.7);
  chain.add_rate(1, 2, 0.9);
  chain.add_rate(2, 3, 2.0);
  chain.add_rate(2, 0, 0.3);
  chain.finalize();
  FirstPassage fp(chain, {3});
  const std::vector<double> alpha = {1.0, 0.0, 0.0, 0.0};
  // Riemann sum of the density (coarse but sufficient at this tolerance).
  double integral = 0.0;
  const double dt = 0.01;
  for (double t = dt / 2; t < 120.0; t += dt) {
    integral += fp.density(alpha, t) * dt;
  }
  EXPECT_NEAR(integral, 1.0, 1e-3);
}

}  // namespace
}  // namespace rbx
