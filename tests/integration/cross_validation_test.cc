// Integration tests: the analytic models (model/), the Markov engine
// (markov/) and the Monte-Carlo simulators (des/) validate one another
// through independent computations of the same quantities.
#include <cmath>

#include <gtest/gtest.h>

#include "core/api.h"
#include "markov/dtmc.h"
#include "numerics/quadrature.h"
#include "support/rng.h"

namespace rbx {
namespace {

// E[X] computed through a *different* engine path: the expected number of
// steps of the uniformized DTMC before absorption, divided by the
// uniformization rate.  (Mean sojourn identity: E[X] = E[steps] / Lambda.)
TEST(CrossValidation, MeanIntervalViaUniformizedStepCounts) {
  const ProcessSetParams cases[] = {
      ProcessSetParams::three(1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
      ProcessSetParams::three(1.5, 1.0, 0.5, 1.5, 0.5, 1.0),
      ProcessSetParams::three(0.6, 0.45, 0.45, 0.75, 0.75, 0.75),
  };
  for (const auto& params : cases) {
    AsyncRbModel model(params);
    const Dtmc dtmc = model.chain().uniformized_dtmc();
    std::vector<double> alpha(model.num_states(), 0.0);
    alpha[model.entry_state()] = 1.0;
    std::vector<bool> absorbing(model.num_states(), false);
    absorbing[model.absorbing_state()] = true;
    const auto visits = dtmc.expected_visits(alpha, absorbing);
    double steps = 0.0;
    for (double v : visits) {
      steps += v;
    }
    EXPECT_NEAR(steps / model.chain().uniformization_rate(),
                model.mean_interval(), 1e-8)
        << params.describe();
  }
}

// P(line-forming RP belongs to P_i) validated by direct simulation of the
// mask process - an implementation independent of the sojourn-based
// formula in AsyncRbModel.
TEST(CrossValidation, AbsorbingRpProbabilityBySimulation) {
  const auto params = ProcessSetParams::three(1.5, 1.0, 0.5, 1.0, 0.5, 1.5);
  AsyncRbModel model(params);

  Rng rng(314159);
  const std::size_t n = 3;
  std::vector<double> weights;
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    weights.push_back(params.mu(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      weights.push_back(params.lambda(i, j));
      pairs.push_back({i, j});
    }
  }
  std::vector<std::size_t> final_by(n, 0);
  const std::size_t kLines = 60000;
  const std::size_t full = (1u << n) - 1;
  bool at_entry = true;
  std::size_t mask = full;
  std::size_t formed = 0;
  while (formed < kLines) {
    const std::size_t k = rng.categorical(weights.data(), weights.size());
    if (k < n) {
      const std::size_t bit = std::size_t{1} << k;
      if (at_entry || (!(mask & bit) && (mask | bit) == full)) {
        ++final_by[k];
        ++formed;
        at_entry = true;
        mask = full;
      } else if (!(mask & bit)) {
        mask |= bit;
      }
    } else {
      const auto [a, b] = pairs[k - n];
      const std::size_t bits = (std::size_t{1} << a) | (std::size_t{1} << b);
      mask = (at_entry ? full : mask) & ~bits;
      at_entry = false;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const double p_mc =
        static_cast<double>(final_by[i]) / static_cast<double>(kLines);
    EXPECT_NEAR(p_mc, model.absorbing_rp_probability(i), 0.01) << "i=" << i;
  }
}

// Phase-type mean and variance vs. numeric integrals of the density.
TEST(CrossValidation, IntervalMomentsViaQuadrature) {
  const auto params = ProcessSetParams::three(1.0, 1.0, 1.0, 0.5, 0.5, 0.5);
  AsyncRbModel model(params);
  const auto mean = integrate_to_infinity(
      [&model](double t) { return t * model.interval_pdf(t); }, 0.0, 1.0,
      1e-9);
  EXPECT_NEAR(mean.value, model.mean_interval(), 1e-5);
  const auto m2 = integrate_to_infinity(
      [&model](double t) { return t * t * model.interval_pdf(t); }, 0.0, 1.0,
      1e-9);
  EXPECT_NEAR(m2.value - mean.value * mean.value, model.variance_interval(),
              1e-4);
}

// The sync simulator and the closed form across random rate sets.
class SyncCrossTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(SyncCrossTest, LossAgreesWithClosedForm) {
  Rng rng(GetParam() * 2654435761u);
  const std::size_t n = 2 + rng.uniform_index(4);
  std::vector<double> mu(n);
  for (auto& m : mu) {
    m = rng.uniform(0.2, 3.0);
  }
  SyncRbModel model(mu);
  SyncSimParams sp;
  sp.mu = mu;
  sp.strategy = SyncStrategy::kElapsedTime;
  sp.elapsed_threshold = 1.0;
  SyncRbSimulator sim(sp, GetParam());
  const SyncSimResult r = sim.run(20000);
  EXPECT_NEAR(r.loss.mean(), model.mean_loss(),
              5.0 * r.loss.ci_half_width() / 1.96 + 1e-3)
      << "n=" << n;
  EXPECT_NEAR(r.max_wait.mean(), model.mean_max_wait(),
              5.0 * r.max_wait.ci_half_width() / 1.96 + 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyncCrossTest, ::testing::Range(1u, 9u));

// The DES and the analytic model across a grid of (mu-spread, rho).
struct GridCase {
  double mu_hi;
  double rho;
};

class AsyncGridTest : public ::testing::TestWithParam<GridCase> {};

TEST_P(AsyncGridTest, SimulatorTracksModel) {
  const GridCase& g = GetParam();
  // Three processes with geometric mu spread and uniform lambda at the
  // requested rho.
  const double mu2 = 1.0;
  const double mu1 = g.mu_hi;
  const double mu3 = 1.0 / g.mu_hi;
  const double total_mu = mu1 + mu2 + mu3;
  const double lambda = g.rho * total_mu / 3.0;
  const auto params =
      ProcessSetParams::three(mu1, mu2, mu3, lambda, lambda, lambda);
  AsyncRbModel model(params);
  AsyncRbSimulator sim(params, 1234 + static_cast<std::uint64_t>(
                                          g.mu_hi * 100 + g.rho * 10));
  const AsyncSimResult r = sim.run_lines(30000);
  EXPECT_NEAR(r.interval.mean(), model.mean_interval(),
              5.0 * r.interval.ci_half_width() / 1.96)
      << params.describe();
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(r.rp_incl_final[i].mean(),
                model.expected_rp_count(i).wald,
                5.0 * r.rp_incl_final[i].ci_half_width() / 1.96)
        << params.describe() << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AsyncGridTest,
    ::testing::Values(GridCase{1.0, 0.25}, GridCase{1.0, 1.0},
                      GridCase{2.0, 0.5}, GridCase{2.0, 1.5},
                      GridCase{4.0, 1.0}));

// PRP model bound vs simulator: the mean PRP rollback distance stays
// within a small factor of E[sup y_i] across parameter regimes.
TEST(CrossValidation, PrpDistanceTracksBound) {
  for (double lambda : {0.5, 1.0, 2.0}) {
    const auto params = ProcessSetParams::symmetric(3, 1.0, lambda);
    PrpModel model(params, 1e-4);
    PrpSimParams sp;
    sp.error_rate = 0.2;
    PrpSimulator sim(params, sp, 99);
    const PrpSimResult r = sim.run(1500);
    EXPECT_GT(r.prp_distance.mean(), 0.25 * model.mean_rollback_bound());
    EXPECT_LT(r.prp_distance.mean(), 3.0 * model.mean_rollback_bound());
    EXPECT_EQ(r.contaminated_restarts, 0u);
  }
}

}  // namespace
}  // namespace rbx
