#include "model/params.h"

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(Params, SymmetricFactory) {
  const auto p = ProcessSetParams::symmetric(4, 2.0, 0.5);
  EXPECT_EQ(p.n(), 4u);
  EXPECT_DOUBLE_EQ(p.mu(3), 2.0);
  EXPECT_DOUBLE_EQ(p.lambda(0, 3), 0.5);
  EXPECT_DOUBLE_EQ(p.lambda(3, 0), 0.5);
  EXPECT_DOUBLE_EQ(p.lambda(2, 2), 0.0);
  EXPECT_TRUE(p.is_symmetric_rates());
}

TEST(Params, ThreeProcessFactoryUsesPaperOrdering) {
  // Table 1 ordering: (lambda12, lambda23, lambda13).
  const auto p = ProcessSetParams::three(1.5, 1.0, 0.5, 0.1, 0.2, 0.3);
  EXPECT_DOUBLE_EQ(p.mu(0), 1.5);
  EXPECT_DOUBLE_EQ(p.mu(2), 0.5);
  EXPECT_DOUBLE_EQ(p.lambda(0, 1), 0.1);
  EXPECT_DOUBLE_EQ(p.lambda(1, 2), 0.2);
  EXPECT_DOUBLE_EQ(p.lambda(0, 2), 0.3);
  EXPECT_FALSE(p.is_symmetric_rates());
}

TEST(Params, Totals) {
  const auto p = ProcessSetParams::three(1.0, 2.0, 3.0, 0.5, 1.5, 2.5);
  EXPECT_DOUBLE_EQ(p.total_mu(), 6.0);
  EXPECT_DOUBLE_EQ(p.total_lambda(), 4.5);
  EXPECT_DOUBLE_EQ(p.total_event_rate(), 10.5);
  EXPECT_DOUBLE_EQ(p.rho(), 0.75);
  EXPECT_DOUBLE_EQ(p.interaction_rate(0), 3.0);   // 0.5 + 2.5
  EXPECT_DOUBLE_EQ(p.interaction_rate(1), 2.0);   // 0.5 + 1.5
  EXPECT_DOUBLE_EQ(p.interaction_rate(2), 4.0);   // 1.5 + 2.5
}

TEST(Params, AllTableOneCasesHaveUnitRho) {
  // The five (mu, lambda) triples of Table 1 (see DESIGN.md).
  const ProcessSetParams cases[] = {
      ProcessSetParams::three(1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
      ProcessSetParams::three(1.5, 1.0, 0.5, 1.0, 1.0, 1.0),
      ProcessSetParams::three(1.0, 1.0, 1.0, 1.5, 0.5, 1.0),
      ProcessSetParams::three(1.5, 1.0, 0.5, 1.5, 0.5, 1.0),
      ProcessSetParams::three(1.5, 1.0, 0.5, 0.5, 1.5, 1.0),
  };
  for (const auto& p : cases) {
    EXPECT_DOUBLE_EQ(p.rho(), 1.0) << p.describe();
  }
}

TEST(Params, SingleProcessAllowed) {
  const auto p = ProcessSetParams::symmetric(1, 1.0, 0.0);
  EXPECT_EQ(p.n(), 1u);
  EXPECT_DOUBLE_EQ(p.total_lambda(), 0.0);
  EXPECT_DOUBLE_EQ(p.interaction_rate(0), 0.0);
}

TEST(Params, DescribeMentionsKeyNumbers) {
  const auto p = ProcessSetParams::symmetric(2, 1.0, 3.0);
  const std::string d = p.describe();
  EXPECT_NE(d.find("n=2"), std::string::npos);
  EXPECT_NE(d.find("rho="), std::string::npos);
}

TEST(ParamsDeathTest, RejectsBadInputs) {
  EXPECT_DEATH(ProcessSetParams({1.0, -1.0}, {0, 0, 0, 0}), "positive");
  EXPECT_DEATH(ProcessSetParams({1.0}, {0, 0}), "n x n");
  // Asymmetric lambda.
  EXPECT_DEATH(ProcessSetParams({1.0, 1.0}, {0.0, 1.0, 2.0, 0.0}),
               "symmetric");
  // Nonzero diagonal.
  EXPECT_DEATH(ProcessSetParams({1.0, 1.0}, {1.0, 0.0, 0.0, 0.0}),
               "diagonal");
}

TEST(ParamsDeathTest, RejectsNonPositiveMu) {
  // mu = 0 is as invalid as negative: assumption A5 needs a proper Poisson
  // process per participant.
  EXPECT_DEATH(ProcessSetParams({1.0, 0.0}, {0, 0, 0, 0}), "positive");
  EXPECT_DEATH(ProcessSetParams({}, {}), "at least one process");
}

TEST(ParamsDeathTest, RejectsNegativeLambda) {
  EXPECT_DEATH(ProcessSetParams({1.0, 1.0}, {0.0, -0.5, -0.5, 0.0}),
               "non-negative");
}

TEST(ParamsDeathTest, RejectsOutOfRangeAccess) {
  const auto p = ProcessSetParams::symmetric(2, 1.0, 1.0);
  EXPECT_DEATH(p.mu(2), "");
  EXPECT_DEATH(p.lambda(0, 2), "");
}

}  // namespace
}  // namespace rbx
