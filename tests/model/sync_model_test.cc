#include "model/sync_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(MaxExponential, SingleRate) {
  EXPECT_NEAR(expected_max_exponential({2.0}), 0.5, 1e-12);
}

TEST(MaxExponential, TwoEqualRates) {
  // E[max(Exp(1), Exp(1))] = 1 + 1/2.
  EXPECT_NEAR(expected_max_exponential({1.0, 1.0}), 1.5, 1e-12);
}

TEST(MaxExponential, HarmonicNumbersForEqualRates) {
  // E[max of n iid Exp(mu)] = H_n / mu.
  for (std::size_t n : {1u, 2u, 3u, 5u, 10u}) {
    std::vector<double> rates(n, 2.0);
    double h = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
      h += 1.0 / static_cast<double>(k);
    }
    EXPECT_NEAR(expected_max_exponential(rates), h / 2.0, 1e-10) << n;
  }
}

TEST(MaxExponential, TwoRateClosedForm) {
  const double a = 1.5, b = 0.3;
  EXPECT_NEAR(expected_max_exponential({a, b}),
              1.0 / a + 1.0 / b - 1.0 / (a + b), 1e-12);
}

TEST(MaxExponential, QuadratureMatchesInclusionExclusion) {
  const std::vector<std::vector<double>> cases = {
      {1.0}, {1.0, 2.0}, {0.5, 0.5, 3.0}, {1.0, 1.0, 1.0, 1.0},
      {0.1, 1.0, 10.0}};
  for (const auto& rates : cases) {
    EXPECT_NEAR(expected_max_exponential(rates),
                expected_max_exponential_quadrature(rates), 1e-7);
  }
}

TEST(SyncModel, SingleProcessHasNoLoss) {
  SyncRbModel m({1.7});
  EXPECT_NEAR(m.mean_loss(), 0.0, 1e-12);
  EXPECT_NEAR(m.mean_wait(0), 0.0, 1e-12);
}

TEST(SyncModel, HomogeneousLossClosedForm) {
  // CL = n H_n / mu - n / mu.
  const double mu = 2.0;
  for (std::size_t n : {2u, 3u, 6u}) {
    std::vector<double> rates(n, mu);
    SyncRbModel m(rates);
    double h = 0.0;
    for (std::size_t k = 1; k <= n; ++k) {
      h += 1.0 / static_cast<double>(k);
    }
    const double expected =
        static_cast<double>(n) * (h - 1.0) / mu;
    EXPECT_NEAR(m.mean_loss(), expected, 1e-10) << "n=" << n;
  }
}

TEST(SyncModel, ZCdfIsProperDistribution) {
  SyncRbModel m({1.0, 0.5, 2.0});
  EXPECT_DOUBLE_EQ(m.z_cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.z_cdf(-1.0), 0.0);
  double prev = 0.0;
  for (double t = 0.1; t < 20.0; t += 0.5) {
    const double g = m.z_cdf(t);
    EXPECT_GE(g, prev);
    prev = g;
  }
  EXPECT_GT(m.z_cdf(50.0), 0.999);
}

TEST(SyncModel, MeanWaitIsNonNegativeAndConsistent) {
  SyncRbModel m({1.5, 1.0, 0.5});
  double total = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double w = m.mean_wait(i);
    EXPECT_GE(w, 0.0);
    total += w;
  }
  EXPECT_NEAR(total, m.mean_loss(), 1e-10);
  // The slowest process (smallest mu) waits least.
  EXPECT_LT(m.mean_wait(2), m.mean_wait(0));
}

TEST(SyncModel, QuadraturePathMatchesClosedForm) {
  SyncRbModel m({0.6, 0.45, 0.45});
  EXPECT_NEAR(m.mean_max_wait(), m.mean_max_wait_quadrature(), 1e-7);
}

TEST(SyncModel, LossRateScalesLinearly) {
  SyncRbModel m({1.0, 1.0});
  EXPECT_NEAR(m.loss_rate(2.0), 2.0 * m.mean_loss(), 1e-12);
}

TEST(SyncModel, SlowestProcessDominatesLoss) {
  // Slowing one process (smaller mu) increases everyone's wait.
  SyncRbModel fast({2.0, 2.0, 2.0});
  SyncRbModel slow({2.0, 2.0, 0.2});
  EXPECT_GT(slow.mean_loss(), fast.mean_loss());
  EXPECT_GT(slow.mean_max_wait(), fast.mean_max_wait());
}

// Property sweep: the inclusion-exclusion value always lies between
// max_i 1/mu_i (Z >= every y_i) and sum_i 1/mu_i (union bound).
class SyncBoundsTest
    : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(SyncBoundsTest, MaxWaitWithinElementaryBounds) {
  const auto rates = GetParam();
  SyncRbModel m(rates);
  double max_inv = 0.0, sum_inv = 0.0;
  for (double r : rates) {
    max_inv = std::max(max_inv, 1.0 / r);
    sum_inv += 1.0 / r;
  }
  EXPECT_GE(m.mean_max_wait(), max_inv - 1e-12);
  EXPECT_LE(m.mean_max_wait(), sum_inv + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    RateSets, SyncBoundsTest,
    ::testing::Values(std::vector<double>{1.0},
                      std::vector<double>{1.0, 1.0},
                      std::vector<double>{1.5, 1.0, 0.5},
                      std::vector<double>{0.6, 0.45, 0.45},
                      std::vector<double>{5.0, 0.1},
                      std::vector<double>{1, 2, 3, 4, 5, 6, 7}));

}  // namespace
}  // namespace rbx
