#include "model/async_symmetric.h"

#include <cmath>

#include <gtest/gtest.h>

#include "numerics/quadrature.h"

namespace rbx {
namespace {

TEST(SymmetricModel, StateLayout) {
  SymmetricAsyncModel m(4, 1.0, 1.0);
  EXPECT_EQ(m.num_states(), 6u);
  EXPECT_EQ(m.entry_state(), 0u);
  EXPECT_EQ(m.lumped_state(0), 1u);
  EXPECT_EQ(m.lumped_state(3), 4u);
  EXPECT_EQ(m.absorbing_state(), 5u);
}

TEST(SymmetricModel, NoInteractionLimit) {
  // lambda = 0: X ~ Exp(n mu).
  for (std::size_t n : {1u, 2u, 5u, 20u}) {
    SymmetricAsyncModel m(n, 2.0, 0.0);
    EXPECT_NEAR(m.mean_interval(), 1.0 / (2.0 * static_cast<double>(n)),
                1e-12);
  }
}

TEST(SymmetricModel, RhoDefinition) {
  SymmetricAsyncModel m(4, 2.0, 1.0);
  // rho = (6 pairs * 1.0) / (4 * 2.0).
  EXPECT_DOUBLE_EQ(m.rho(), 0.75);
}

TEST(SymmetricModel, TransitionRatesFollowPrimedRules) {
  const std::size_t n = 5;
  const double mu = 1.3, lambda = 0.7;
  SymmetricAsyncModel m(n, mu, lambda);
  const auto& chain = m.chain();
  // R4': entry -> absorbing at n mu.
  EXPECT_NEAR(chain.rate(m.entry_state(), m.absorbing_state()), 5.0 * mu,
              1e-12);
  // Entry -> S~_{n-2} at C(n,2) lambda.
  EXPECT_NEAR(chain.rate(m.entry_state(), m.lumped_state(3)), 10.0 * lambda,
              1e-12);
  // R1' from u=2: rate (n-u) mu.
  EXPECT_NEAR(chain.rate(m.lumped_state(2), m.lumped_state(3)), 3.0 * mu,
              1e-12);
  // R2' from u=3: rate u(u-1)/2 lambda.
  EXPECT_NEAR(chain.rate(m.lumped_state(3), m.lumped_state(1)), 3.0 * lambda,
              1e-12);
  // R3' from u=3: rate u(n-u) lambda.
  EXPECT_NEAR(chain.rate(m.lumped_state(3), m.lumped_state(2)), 6.0 * lambda,
              1e-12);
  // S~_{n-1} -> absorbing at mu.
  EXPECT_NEAR(chain.rate(m.lumped_state(4), m.absorbing_state()), mu, 1e-12);
}

TEST(SymmetricModel, ScalesToManyProcesses) {
  // The lumped chain is linear in n; this must be instant even at n = 100.
  // (rho is kept below ~0.1 here: at high rho the mean interval grows
  // beyond what dense hitting-time solves can condition, and the library
  // aborts rather than return garbage - see the death test below.)
  SymmetricAsyncModel m(100, 1.0, 0.002);
  EXPECT_GT(m.mean_interval(), 0.0);
  EXPECT_EQ(m.num_states(), 102u);
}

TEST(SymmetricModelDeathTest, AstronomicalMeansAbortLoudly) {
  EXPECT_DEATH(SymmetricAsyncModel(100, 1.0, 0.05), "ill-conditioned");
}

TEST(SymmetricModel, MeanGrowsWithProcessCount) {
  // Figure 5's qualitative shape: at fixed per-pair interaction rate the
  // mean interval grows sharply with n.
  double prev = 0.0;
  for (std::size_t n = 2; n <= 8; ++n) {
    SymmetricAsyncModel m(n, 1.0, 1.0);
    EXPECT_GT(m.mean_interval(), prev) << "n=" << n;
    prev = m.mean_interval();
  }
}

TEST(SymmetricModel, DensityIntegratesToOne) {
  SymmetricAsyncModel m(5, 1.0, 0.3);
  const auto r = integrate_to_infinity(
      [&m](double t) { return m.interval_pdf(t); }, 0.0, 1.0, 1e-9);
  EXPECT_NEAR(r.value, 1.0, 1e-6);
}

TEST(SymmetricModel, RpCountConventions) {
  SymmetricAsyncModel m(3, 1.0, 1.0);
  EXPECT_NEAR(m.expected_rp_count_wald(), m.mean_interval(), 1e-12);
  EXPECT_NEAR(m.expected_rp_count_excluding_final(),
              m.mean_interval() - 1.0 / 3.0, 1e-12);
}

// Scaling property: multiplying all rates by c divides times by c.
class SymmetricScalingTest : public ::testing::TestWithParam<double> {};

TEST_P(SymmetricScalingTest, TimeRescaling) {
  const double c = GetParam();
  SymmetricAsyncModel base(4, 1.0, 0.5);
  SymmetricAsyncModel scaled(4, c * 1.0, c * 0.5);
  EXPECT_NEAR(scaled.mean_interval(), base.mean_interval() / c, 1e-10);
  EXPECT_NEAR(scaled.variance_interval(), base.variance_interval() / (c * c),
              1e-9);
  // Densities transform as f_c(t) = c f(ct).
  EXPECT_NEAR(scaled.interval_pdf(0.4 / c), c * base.interval_pdf(0.4), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Scales, SymmetricScalingTest,
                         ::testing::Values(0.5, 2.0, 4.0, 10.0));

}  // namespace
}  // namespace rbx
