#include "model/async_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "model/async_symmetric.h"
#include "numerics/quadrature.h"
#include "support/stats.h"

namespace rbx {
namespace {

// Closed form for n = 2 derived by first-step analysis (see the comment in
// DESIGN.md "Interpretation decisions"):
//   tau(00)  = (3 mu + lambda) / (2 mu^2)
//   E[X]     = 1/(2mu + lambda) + lambda * tau(00) / (2mu + lambda).
double two_process_mean(double mu, double lambda) {
  const double tau00 = (3.0 * mu + lambda) / (2.0 * mu * mu);
  return (1.0 + lambda * tau00) / (2.0 * mu + lambda);
}

TEST(AsyncModel, TwoProcessClosedForm) {
  for (double mu : {0.5, 1.0, 2.0}) {
    for (double lambda : {0.0, 0.5, 1.0, 3.0}) {
      AsyncRbModel model(ProcessSetParams::symmetric(2, mu, lambda));
      EXPECT_NEAR(model.mean_interval(), two_process_mean(mu, lambda), 1e-10)
          << "mu=" << mu << " lambda=" << lambda;
    }
  }
}

TEST(AsyncModel, UnitRatesTwoProcessesGiveMeanOne) {
  AsyncRbModel model(ProcessSetParams::symmetric(2, 1.0, 1.0));
  EXPECT_NEAR(model.mean_interval(), 1.0, 1e-12);
}

TEST(AsyncModel, StateNumberingFollowsPaper) {
  AsyncRbModel model(ProcessSetParams::symmetric(3, 1.0, 1.0));
  EXPECT_EQ(model.num_states(), 9u);
  EXPECT_EQ(model.entry_state(), 0u);
  EXPECT_EQ(model.absorbing_state(), 8u);
  // (x1, x2, x3) -> sum x_i 2^{i-1} + 1.
  EXPECT_EQ(model.state_of_mask(0b000), 1u);
  EXPECT_EQ(model.state_of_mask(0b101), 6u);
  // All-ones maps to the absorbing state m.
  EXPECT_EQ(model.state_of_mask(0b111), 8u);
  EXPECT_EQ(model.mask_of_state(6), 0b101u);
}

TEST(AsyncModel, NoInteractionsDegenerateToImmediateLines)
{
  // With lambda = 0 rule R4 always fires first: X ~ Exp(sum mu).
  AsyncRbModel model(ProcessSetParams::three(1.0, 2.0, 3.0, 0, 0, 0));
  EXPECT_NEAR(model.mean_interval(), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(model.variance_interval(), 1.0 / 36.0, 1e-10);
  // The line-forming RP is P_i's with probability mu_i / sum mu.
  EXPECT_NEAR(model.absorbing_rp_probability(0), 1.0 / 6.0, 1e-12);
  EXPECT_NEAR(model.absorbing_rp_probability(2), 0.5, 1e-12);
}

TEST(AsyncModel, GeneratorRowsSumToZero) {
  AsyncRbModel model(ProcessSetParams::three(1.5, 1.0, 0.5, 1.5, 0.5, 1.0));
  const auto& gen = model.chain().generator();
  for (std::size_t s = 0; s < model.num_states() - 1; ++s) {
    EXPECT_NEAR(gen.row_sum(s), 0.0, 1e-12) << "state " << s;
  }
  EXPECT_DOUBLE_EQ(gen.row_sum(model.absorbing_state()), 0.0);
}

TEST(AsyncModel, AbsorbingRpProbabilitiesSumToOne) {
  AsyncRbModel model(ProcessSetParams::three(1.5, 1.0, 0.5, 0.5, 1.5, 1.0));
  double total = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    total += model.absorbing_rp_probability(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(AsyncModel, MeanEqualsTotalSojourn) {
  AsyncRbModel model(ProcessSetParams::three(1.0, 1.0, 1.0, 1.5, 0.5, 1.0));
  double total = 0.0;
  for (double nu : model.sojourn()) {
    total += nu;
  }
  EXPECT_NEAR(total, model.mean_interval(), 1e-10);
}

TEST(AsyncModel, DensityIntegratesToOne) {
  AsyncRbModel model(ProcessSetParams::symmetric(3, 1.0, 1.0));
  const auto r = integrate_to_infinity(
      [&model](double t) { return model.interval_pdf(t); }, 0.0, 1.0, 1e-9);
  EXPECT_NEAR(r.value, 1.0, 1e-6);
}

TEST(AsyncModel, DensityHasAtomAtZeroFromDirectTransition) {
  // f_X(0) = rate of R4 = sum mu (the paper's "sharp impulse near t = 0").
  AsyncRbModel model(ProcessSetParams::three(1.0, 1.0, 1.0, 1.0, 1.0, 1.0));
  EXPECT_NEAR(model.interval_pdf(0.0), 3.0, 1e-9);
}

TEST(AsyncModel, MeanMatchesNumericIntegralOfTailDistribution) {
  AsyncRbModel model(ProcessSetParams::three(0.6, 0.45, 0.45, 0.5, 0.5, 0.5));
  const auto r = integrate_to_infinity(
      [&model](double t) { return 1.0 - model.interval_cdf(t); }, 0.0, 2.0,
      1e-9);
  EXPECT_NEAR(r.value, model.mean_interval(), 1e-5);
}

TEST(AsyncModel, RpCountConventionsAreOrderedAndConsistent) {
  AsyncRbModel model(ProcessSetParams::three(1.5, 1.0, 0.5, 1.0, 1.0, 1.0));
  for (std::size_t i = 0; i < 3; ++i) {
    const auto counts = model.expected_rp_count(i);
    EXPECT_NEAR(counts.wald, model.params().mu(i) * model.mean_interval(),
                1e-10);
    EXPECT_LT(counts.excluding_final, counts.wald);
    EXPECT_GT(counts.excluding_final,
              counts.wald - 1.0);  // at most one final RP
    EXPECT_LE(counts.state_changing, counts.wald + 1e-12);
    EXPECT_GT(counts.state_changing, 0.0);
  }
}

TEST(AsyncModel, SplitChainMatchesExcludingFinalConvention) {
  // The literal reconstruction of the paper's Y_d split chain must agree
  // with the sojourn-based formula mu_i E[X] - P(final by i).
  const ProcessSetParams cases[] = {
      ProcessSetParams::three(1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
      ProcessSetParams::three(1.5, 1.0, 0.5, 1.0, 1.0, 1.0),
      ProcessSetParams::three(1.5, 1.0, 0.5, 0.5, 1.5, 1.0),
  };
  for (const auto& params : cases) {
    AsyncRbModel model(params);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(model.expected_rp_count_split_chain(i),
                  model.expected_rp_count(i).excluding_final, 1e-8)
          << params.describe() << " i=" << i;
    }
  }
}

TEST(AsyncModel, MoreInteractionsLengthenTheInterval) {
  double prev = 0.0;
  for (double lambda : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    AsyncRbModel model(ProcessSetParams::symmetric(3, 1.0, lambda));
    EXPECT_GT(model.mean_interval(), prev);
    prev = model.mean_interval();
  }
}

TEST(AsyncModel, FourAndFiveProcessChainsAreWellFormed) {
  for (std::size_t n : {4u, 5u}) {
    AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, 1.0));
    EXPECT_EQ(model.num_states(), (std::size_t{1} << n) + 1);
    EXPECT_GT(model.mean_interval(), 0.0);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += model.absorbing_rp_probability(i);
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

// Lumping check: the full model under homogeneous rates must agree exactly
// with the simplified R1'-R4' chain (this pins down the OCR-damaged R2'
// rate u(u-1)lambda/2).
TEST(AsyncModel, FullModelMatchesSymmetricLumping) {
  for (std::size_t n : {2u, 3u, 4u, 5u, 6u}) {
    for (double lambda : {0.25, 1.0, 2.0}) {
      AsyncRbModel full(ProcessSetParams::symmetric(n, 1.0, lambda));
      SymmetricAsyncModel lumped(n, 1.0, lambda);
      // Relative tolerances: at high rho the mean interval reaches 1e4+.
      EXPECT_LT(relative_error(full.mean_interval(), lumped.mean_interval()),
                1e-9)
          << "n=" << n << " lambda=" << lambda;
      EXPECT_LT(relative_error(full.variance_interval(),
                               lumped.variance_interval()),
                1e-8);
      for (double t : {0.1, 0.5, 1.5}) {
        EXPECT_NEAR(full.interval_pdf(t), lumped.interval_pdf(t), 1e-8);
      }
    }
  }
}

struct RateCase {
  double mu1, mu2, mu3;
  double l12, l23, l13;
};

class AsyncModelPropertyTest : public ::testing::TestWithParam<RateCase> {};

TEST_P(AsyncModelPropertyTest, StructuralInvariants) {
  const RateCase& c = GetParam();
  AsyncRbModel model(
      ProcessSetParams::three(c.mu1, c.mu2, c.mu3, c.l12, c.l23, c.l13));

  // Mean is positive and at least the no-interaction lower bound
  // 1/(sum mu) (interactions can only delay the next line).
  const double lower = 1.0 / model.params().total_mu();
  EXPECT_GE(model.mean_interval(), lower - 1e-12);

  // Variance positive.
  EXPECT_GT(model.variance_interval(), 0.0);

  // Absorbing-RP probabilities form a distribution.
  double total = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double p = model.absorbing_rp_probability(i);
    EXPECT_GT(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);

  // Wald counts sum to total_mu * E[X].
  double wald_sum = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    wald_sum += model.expected_rp_count(i).wald;
  }
  EXPECT_NEAR(wald_sum, model.params().total_mu() * model.mean_interval(),
              1e-9);

  // cdf is a proper distribution function.
  EXPECT_NEAR(model.interval_cdf(0.0), 0.0, 1e-12);
  EXPECT_GT(model.interval_cdf(5.0 * model.mean_interval()), 0.9);
}

// Ported from the retired Analyzer shim's density test: the uniform grid
// of the phase-type density equals pointwise interval_pdf evaluation
// (fig6's analytic column).
TEST(AsyncModel, DensityGridMatchesPointwisePdf) {
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  AsyncRbModel model(params);
  const std::vector<double> grid = model.interval().pdf_grid(2.0, 5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_NEAR(grid[0], model.interval_pdf(0.0), 1e-9);
  EXPECT_NEAR(grid[2], model.interval_pdf(1.0), 1e-9);
  EXPECT_NEAR(grid[4], model.interval_pdf(2.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    RateSweep, AsyncModelPropertyTest,
    ::testing::Values(RateCase{1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
                      RateCase{1.5, 1.0, 0.5, 1.0, 1.0, 1.0},
                      RateCase{1.0, 1.0, 1.0, 1.5, 0.5, 1.0},
                      RateCase{1.5, 1.0, 0.5, 1.5, 0.5, 1.0},
                      RateCase{1.5, 1.0, 0.5, 0.5, 1.5, 1.0},
                      RateCase{0.6, 0.45, 0.45, 0.5, 0.5, 0.5},
                      RateCase{0.6, 0.45, 0.45, 0.75, 0.75, 0.75},
                      RateCase{2.0, 0.1, 0.1, 3.0, 0.2, 0.1},
                      RateCase{0.2, 0.3, 0.4, 0.0, 2.0, 0.0}));

}  // namespace
}  // namespace rbx
