#include "model/prp_model.h"

#include <gtest/gtest.h>

#include "model/sync_model.h"

namespace rbx {
namespace {

TEST(PrpModel, SnapshotAccounting) {
  PrpModel m(ProcessSetParams::three(1.5, 1.0, 0.5, 1, 1, 1), 0.01);
  EXPECT_EQ(m.snapshots_per_rp(), 3u);
  // Every process snapshots at the system RP rate (own RPs + implants).
  EXPECT_DOUBLE_EQ(m.snapshot_rate(0), 3.0);
  EXPECT_DOUBLE_EQ(m.snapshot_rate(2), 3.0);
  EXPECT_DOUBLE_EQ(m.system_snapshot_rate(), 9.0);
  EXPECT_EQ(m.retained_snapshots_per_process(), 3u);
}

TEST(PrpModel, TimeOverheadPerRp) {
  PrpModel m(ProcessSetParams::symmetric(5, 1.0, 0.5), 0.02);
  EXPECT_NEAR(m.time_overhead_per_rp(), 4 * 0.02, 1e-12);
}

TEST(PrpModel, RecordingFractionWithinBounds) {
  PrpModel m(ProcessSetParams::symmetric(4, 2.0, 1.0), 0.05);
  for (std::size_t i = 0; i < 4; ++i) {
    const double f = m.recording_fraction(i);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);
  }
}

TEST(PrpModel, ZeroRecordTimeMeansZeroOverhead) {
  PrpModel m(ProcessSetParams::symmetric(3, 1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(m.time_overhead_per_rp(), 0.0);
  EXPECT_DOUBLE_EQ(m.recording_fraction(0), 0.0);
}

TEST(PrpModel, RollbackBoundMatchesMaxExponential) {
  const auto params = ProcessSetParams::three(1.5, 1.0, 0.5, 1, 1, 1);
  PrpModel m(params, 0.01);
  EXPECT_NEAR(m.mean_rollback_bound(),
              expected_max_exponential({1.5, 1.0, 0.5}), 1e-12);
}

TEST(PrpModel, LocalRollbackIsMemorylessAge) {
  PrpModel m(ProcessSetParams::three(2.0, 1.0, 0.25, 1, 1, 1), 0.01);
  EXPECT_DOUBLE_EQ(m.mean_local_rollback(0), 0.5);
  EXPECT_DOUBLE_EQ(m.mean_local_rollback(2), 4.0);
}

TEST(PrpModel, LocalRollbackNeverExceedsBound) {
  PrpModel m(ProcessSetParams::three(1.5, 1.0, 0.5, 1, 1, 1), 0.01);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_LE(m.mean_local_rollback(i), m.mean_rollback_bound() + 1e-12);
  }
}

// Overhead trade-off highlighted in the paper's conclusion: frequent RPs
// with rare communication make PRP implantation expensive.
TEST(PrpModel, OverheadGrowsWithRpRateAndProcessCount) {
  PrpModel sparse(ProcessSetParams::symmetric(3, 0.5, 1.0), 0.01);
  PrpModel dense(ProcessSetParams::symmetric(3, 5.0, 1.0), 0.01);
  EXPECT_GT(dense.recording_fraction(0), sparse.recording_fraction(0));

  PrpModel small(ProcessSetParams::symmetric(2, 1.0, 1.0), 0.01);
  PrpModel large(ProcessSetParams::symmetric(10, 1.0, 1.0), 0.01);
  EXPECT_GT(large.time_overhead_per_rp(), small.time_overhead_per_rp());
  EXPECT_GT(large.system_snapshot_rate(), small.system_snapshot_rate());
}

}  // namespace
}  // namespace rbx
