// The result cache's contract: a hit returns the exact bytes an
// evaluation would produce, a 64-bit key collision degrades to a miss
// (full-encoding verification), entries survive a daemon restart through
// the journal-format file, and a torn final record costs only itself.
#include "recov/cache.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/result.h"
#include "core/scenario.h"
#include "recov/journal.h"
#include "support/wire.h"

namespace rbx {
namespace recov {
namespace {

Scenario cell_scenario(std::size_t n, std::uint64_t seed) {
  return Scenario::symmetric(n, 1.0, 1.0).seed(seed).samples(500);
}

EvalPlan mc_plan() {
  EvalPlan plan;
  plan.steps.push_back({"monte-carlo", ""});
  return plan;
}

ResultSet make_result(double v) {
  ResultSet r("monte-carlo", "cached-cell");
  r.set("mean_interval_x", v, 0.001, 500);
  return r;
}

// A fresh empty directory under the test tmpdir.
std::string fresh_dir(const char* name) {
  const std::string dir = testing::TempDir() + name;
  std::remove((dir + "/cache.rbxj").c_str());
  ::rmdir(dir.c_str());
  EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0);
  return dir;
}

TEST(ResultCacheTest, MissThenInsertThenHit) {
  const std::string dir = fresh_dir("cache_basic");
  ResultCache cache(dir);
  const Scenario s = cell_scenario(3, 42);
  const EvalPlan plan = mc_plan();

  ResultSet out("x", "y");
  EXPECT_FALSE(cache.lookup(s, plan, &out));
  EXPECT_EQ(cache.misses(), 1u);

  cache.insert(s, plan, make_result(1.25));
  EXPECT_EQ(cache.entries(), 1u);
  ASSERT_TRUE(cache.lookup(s, plan, &out));
  EXPECT_EQ(out, make_result(1.25));
  EXPECT_EQ(cache.hits(), 1u);

  // A different seed is a different cell: the per-cell seed is part of the
  // scenario encoding, so nearby cells can never alias.
  EXPECT_FALSE(cache.lookup(cell_scenario(3, 43), plan, &out));
  // So is a different plan over the same scenario.
  EvalPlan other = mc_plan();
  other.steps.push_back({"analytic", "an_"});
  EXPECT_FALSE(cache.lookup(s, other, &out));
}

TEST(ResultCacheTest, DuplicateInsertIsIgnored) {
  const std::string dir = fresh_dir("cache_dup");
  ResultCache cache(dir);
  const Scenario s = cell_scenario(2, 7);
  cache.insert(s, mc_plan(), make_result(2.0));
  cache.insert(s, mc_plan(), make_result(2.0));
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(ResultCacheTest, EntriesSurviveRestart) {
  const std::string dir = fresh_dir("cache_restart");
  {
    ResultCache cache(dir);
    for (std::size_t n = 2; n <= 5; ++n) {
      cache.insert(cell_scenario(n, n), mc_plan(),
                   make_result(static_cast<double>(n)));
    }
  }
  ResultCache reloaded(dir);
  EXPECT_EQ(reloaded.entries(), 4u);
  ResultSet out("x", "y");
  for (std::size_t n = 2; n <= 5; ++n) {
    ASSERT_TRUE(reloaded.lookup(cell_scenario(n, n), mc_plan(), &out))
        << "n=" << n;
    EXPECT_EQ(out, make_result(static_cast<double>(n)));
  }
}

TEST(ResultCacheTest, TornTailCostsOnlyTheTornEntry) {
  const std::string dir = fresh_dir("cache_torn");
  {
    ResultCache cache(dir);
    cache.insert(cell_scenario(2, 1), mc_plan(), make_result(1.0));
    cache.insert(cell_scenario(3, 2), mc_plan(), make_result(2.0));
  }
  const std::string file = dir + "/cache.rbxj";
  const auto bytes = read_file_bytes(file, "cache");
  // Chop into the middle of the second record (a daemon killed
  // mid-append).
  ASSERT_EQ(truncate(file.c_str(), static_cast<off_t>(bytes.size() - 10)),
            0);

  ResultCache cache(dir);
  EXPECT_EQ(cache.entries(), 1u);
  ResultSet out("x", "y");
  EXPECT_TRUE(cache.lookup(cell_scenario(2, 1), mc_plan(), &out));
  EXPECT_EQ(out, make_result(1.0));
  EXPECT_FALSE(cache.lookup(cell_scenario(3, 2), mc_plan(), &out));
  // And the file is append-able again: the torn tail was logically
  // dropped, a new insert round-trips.
  cache.insert(cell_scenario(4, 3), mc_plan(), make_result(3.0));
  ResultCache again(dir);
  EXPECT_GE(again.entries(), 2u);
  EXPECT_TRUE(again.lookup(cell_scenario(4, 3), mc_plan(), &out));
  EXPECT_EQ(out, make_result(3.0));
}

TEST(ResultCacheTest, MissingDirectoryRefuses) {
  EXPECT_THROW(ResultCache(testing::TempDir() + "no_such_cache_dir_xyz"),
               wire::Error);
}

TEST(ResultCacheTest, ForeignRecordTypeRefuses) {
  // A journal (or any non-cache record stream) handed as a cache file is
  // rejected by record type, not silently half-loaded.
  const std::string dir = fresh_dir("cache_foreign");
  wire::Writer w;
  w.u64(0);
  w.u64(0xfeedu);
  w.u64(1);
  w.str("x");
  const auto rec = seal_record(kRecordSweepBegin, w.data());
  wire::write_file(dir + "/cache.rbxj",
                   std::vector<std::byte>(rec.begin(), rec.end()));
  EXPECT_THROW(ResultCache{dir}, wire::Error);
}

TEST(ResultCacheTest, KeyIsStableAcrossProcessesByConstruction) {
  // cell_key must depend only on the wire encodings (FNV-1a over bytes),
  // so equal scenarios/plans built independently key identically...
  const std::uint64_t a = cell_key(cell_scenario(4, 9), mc_plan());
  const std::uint64_t b = cell_key(cell_scenario(4, 9), mc_plan());
  EXPECT_EQ(a, b);
  // ...and any knob that changes the encoding changes the key.
  EXPECT_NE(a, cell_key(cell_scenario(4, 10), mc_plan()));
  EXPECT_NE(a, cell_key(cell_scenario(5, 9), mc_plan()));
}

}  // namespace
}  // namespace recov
}  // namespace rbx
