// The journal's durability contract: a log cut at ANY byte boundary yields
// the longest valid record prefix - a torn final record is dropped, never
// mis-decoded and never an exception - while semantic corruption inside a
// CRC-valid record (a foreign record type, an impossible cell index, a
// begin that contradicts an earlier begin) throws instead of producing a
// plausible-but-wrong recovery.
#include "recov/journal.h"

#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/result.h"
#include "support/wire.h"

namespace rbx {
namespace recov {
namespace {

ResultSet make_result(std::size_t cell) {
  ResultSet r("test", "cell-" + std::to_string(cell));
  r.set("mean_interval_x", 1.0 + static_cast<double>(cell), 0.01, 1000);
  r.set("index", static_cast<double>(cell));
  return r;
}

std::vector<std::byte> begin_payload(std::uint64_t sweep,
                                     std::uint64_t fingerprint,
                                     std::uint64_t total,
                                     const std::string& options) {
  wire::Writer w;
  w.u64(sweep);
  w.u64(fingerprint);
  w.u64(total);
  w.str(options);
  return w.data();
}

std::vector<std::byte> cell_payload(std::uint64_t sweep, std::uint64_t cell,
                                    const ResultSet& result) {
  wire::Writer w;
  w.u64(sweep);
  w.u64(cell);
  result.encode(w);
  return w.data();
}

// A well-formed two-sweep journal built record by record in memory.
std::vector<std::byte> sample_journal() {
  std::vector<std::byte> bytes;
  const auto append = [&bytes](std::uint16_t type,
                               const std::vector<std::byte>& payload) {
    const auto rec = seal_record(type, payload);
    bytes.insert(bytes.end(), rec.begin(), rec.end());
  };
  append(kRecordSweepBegin, begin_payload(0, 0xfeedu, 3, "samples=100"));
  for (std::uint64_t c = 0; c < 3; ++c) {
    append(kRecordCellCommitted, cell_payload(0, c, make_result(c)));
  }
  {
    wire::Writer w;
    w.u64(0);   // sweep
    w.u64(3);   // committed
    w.u64(3);   // evaluated
    w.u64(250); // wall_ms
    w.f64(12.0);
    append(kRecordSweepEnd, w.data());
  }
  append(kRecordSweepBegin, begin_payload(1, 0xbeefu, 2, "samples=100"));
  append(kRecordCellCommitted, cell_payload(1, 1, make_result(7)));
  return bytes;
}

TEST(JournalScanTest, FullJournalRecoversEverySweep) {
  const auto bytes = sample_journal();
  const JournalAnalysis a = analyze_journal_bytes(bytes.data(), bytes.size());
  EXPECT_FALSE(a.torn_tail);
  EXPECT_EQ(a.valid_bytes, bytes.size());
  EXPECT_EQ(a.dropped_bytes, 0u);
  ASSERT_EQ(a.sweeps.size(), 2u);

  const SweepState& s0 = a.sweeps[0];
  EXPECT_EQ(s0.fingerprint, 0xfeedu);
  EXPECT_EQ(s0.total_cells, 3u);
  EXPECT_EQ(s0.options, "samples=100");
  EXPECT_TRUE(s0.ended);
  EXPECT_EQ(s0.end_stats.committed_cells, 3u);
  EXPECT_EQ(s0.end_stats.evaluated_cells, 3u);
  EXPECT_EQ(s0.end_stats.wall_ms, 250u);
  EXPECT_DOUBLE_EQ(s0.end_stats.cells_per_sec, 12.0);
  ASSERT_EQ(s0.committed.size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_TRUE(s0.has_cell(c));
    EXPECT_EQ(s0.committed[c].second, make_result(c));
  }

  const SweepState& s1 = a.sweeps[1];
  EXPECT_EQ(s1.fingerprint, 0xbeefu);
  EXPECT_FALSE(s1.ended);
  ASSERT_EQ(s1.committed.size(), 1u);
  EXPECT_TRUE(s1.has_cell(1));
  EXPECT_FALSE(s1.has_cell(0));
  EXPECT_EQ(a.committed_cells(), 4u);
}

TEST(JournalScanTest, TruncationAtEveryByteYieldsLongestValidPrefix) {
  // The central robustness claim: cut the journal at EVERY byte boundary.
  // The analysis must (a) never throw, (b) never invent a record - the
  // recovered commit count only steps up when a cut reveals one more
  // complete record - and (c) flag a torn tail whenever bytes remain.
  const auto bytes = sample_journal();
  const JournalAnalysis whole =
      analyze_journal_bytes(bytes.data(), bytes.size());
  const std::size_t total_committed = whole.committed_cells();

  std::size_t prev_committed = 0;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    JournalAnalysis a;
    ASSERT_NO_THROW(a = analyze_journal_bytes(bytes.data(), cut))
        << "cut at byte " << cut;
    EXPECT_LE(a.valid_bytes, cut);
    EXPECT_EQ(a.dropped_bytes, cut - a.valid_bytes);
    EXPECT_EQ(a.torn_tail, a.valid_bytes != cut) << "cut at byte " << cut;
    const std::size_t committed = a.committed_cells();
    // Monotone: losing tail bytes can only lose records.
    EXPECT_GE(committed, prev_committed) << "cut at byte " << cut;
    EXPECT_LE(committed, total_committed);
    // Every record the cut DID recover must decode to the exact results
    // the full journal holds - a torn record is dropped, never garbled.
    for (const SweepState& s : a.sweeps) {
      for (const auto& [cell, result] : s.committed) {
        EXPECT_EQ(result, make_result(s.fingerprint == 0xbeefu ? 7 : cell))
            << "cut at byte " << cut << " cell " << cell;
      }
    }
    prev_committed = committed;
  }
  EXPECT_EQ(prev_committed, total_committed - 1)
      << "the last cut (one byte short) must drop exactly the final record";
}

TEST(JournalScanTest, BitFlipStopsTheScanAtTheDamagedRecord) {
  // Corrupt one payload byte of the second cell record: its CRC no longer
  // matches, so the scan keeps the records before it and drops everything
  // from the damaged record on (a conservative prefix, not a skip).
  auto bytes = sample_journal();
  const auto clean = analyze_journal_bytes(bytes.data(), bytes.size());
  const auto first_cell = seal_record(
      kRecordCellCommitted, cell_payload(0, 0, make_result(0)));
  const auto begin = seal_record(
      kRecordSweepBegin, begin_payload(0, 0xfeedu, 3, "samples=100"));
  const std::size_t victim =
      begin.size() + first_cell.size() + wire::kFrameHeaderSize + 4;
  bytes[victim] ^= std::byte{0x20};

  const JournalAnalysis a = analyze_journal_bytes(bytes.data(), bytes.size());
  EXPECT_TRUE(a.torn_tail);
  EXPECT_EQ(a.valid_bytes, begin.size() + first_cell.size());
  ASSERT_EQ(a.sweeps.size(), 1u);
  EXPECT_EQ(a.committed_cells(), 1u);
  EXPECT_LT(a.committed_cells(), clean.committed_cells());
  EXPECT_EQ(a.sweeps[0].committed[0].second, make_result(0));
}

TEST(JournalScanTest, ForeignRecordTypeIsSemanticCorruption) {
  // A CRC-valid record of a type no journal writer emits (e.g. an executor
  // data frame, type 1) is not tail damage - the file is not a journal.
  wire::Writer w;
  w.u64(0);
  const auto rec = seal_record(/*type=*/1, w.data());
  EXPECT_THROW(analyze_journal_bytes(rec.data(), rec.size()), wire::Error);
}

TEST(JournalScanTest, CellBeyondSweepTotalIsSemanticCorruption) {
  std::vector<std::byte> bytes;
  const auto b = seal_record(kRecordSweepBegin,
                             begin_payload(0, 0xfeedu, 3, "x"));
  const auto c = seal_record(kRecordCellCommitted,
                             cell_payload(0, 9, make_result(9)));
  bytes.insert(bytes.end(), b.begin(), b.end());
  bytes.insert(bytes.end(), c.begin(), c.end());
  EXPECT_THROW(analyze_journal_bytes(bytes.data(), bytes.size()),
               wire::Error);
}

TEST(JournalScanTest, ContradictoryReBeginIsSemanticCorruption) {
  // A resumed run re-appends its sweep-begin; the analysis accepts it only
  // when it agrees with the first one.  A different fingerprint for the
  // same sweep index means two different experiments wrote one file.
  std::vector<std::byte> bytes;
  const auto b1 = seal_record(kRecordSweepBegin,
                              begin_payload(0, 0xfeedu, 3, "x"));
  const auto b2 = seal_record(kRecordSweepBegin,
                              begin_payload(0, 0xdeadu, 3, "x"));
  bytes.insert(bytes.end(), b1.begin(), b1.end());
  bytes.insert(bytes.end(), b2.begin(), b2.end());
  EXPECT_THROW(analyze_journal_bytes(bytes.data(), bytes.size()),
               wire::Error);

  // The idempotent re-begin (same fingerprint, same total) is fine.
  std::vector<std::byte> ok;
  ok.insert(ok.end(), b1.begin(), b1.end());
  ok.insert(ok.end(), b1.begin(), b1.end());
  const JournalAnalysis a = analyze_journal_bytes(ok.data(), ok.size());
  ASSERT_EQ(a.sweeps.size(), 1u);
  EXPECT_EQ(a.sweeps[0].fingerprint, 0xfeedu);
}

TEST(JournalScanTest, DuplicateCommitKeepsTheFirstOccurrence) {
  // Crash/resume overlap can journal one cell twice (the fsync batch that
  // was lost gets re-evaluated).  The analysis keeps the first copy.
  std::vector<std::byte> bytes;
  const auto append = [&bytes](const std::vector<std::byte>& rec) {
    bytes.insert(bytes.end(), rec.begin(), rec.end());
  };
  append(seal_record(kRecordSweepBegin, begin_payload(0, 0xfeedu, 2, "x")));
  append(seal_record(kRecordCellCommitted,
                     cell_payload(0, 1, make_result(1))));
  append(seal_record(kRecordCellCommitted,
                     cell_payload(0, 1, make_result(1))));
  const JournalAnalysis a = analyze_journal_bytes(bytes.data(), bytes.size());
  ASSERT_EQ(a.sweeps.size(), 1u);
  EXPECT_EQ(a.sweeps[0].committed.size(), 1u);
  EXPECT_EQ(a.committed_cells(), 1u);
}

TEST(JournalWriterTest, FileRoundTripThroughWriterAndAnalysis) {
  const std::string path =
      testing::TempDir() + "journal_writer_roundtrip.rbxj";
  std::remove(path.c_str());
  {
    JournalWriter::Options opts;
    opts.sync_every = 2;
    JournalWriter w(path, opts);
    w.sweep_begin(0, 0xabcu, 4, "samples=100 nmax=4 seed=1");
    for (std::uint64_t c = 0; c < 4; ++c) {
      w.cell_committed(0, c, make_result(c));
    }
    SweepEndStats stats;
    stats.committed_cells = 4;
    stats.evaluated_cells = 4;
    stats.wall_ms = 12;
    stats.cells_per_sec = 333.25;
    w.sweep_end(0, stats);
  }
  const JournalAnalysis a = analyze_journal(path);
  EXPECT_FALSE(a.torn_tail);
  ASSERT_EQ(a.sweeps.size(), 1u);
  const SweepState& s = a.sweeps[0];
  EXPECT_EQ(s.fingerprint, 0xabcu);
  EXPECT_EQ(s.options, "samples=100 nmax=4 seed=1");
  EXPECT_TRUE(s.ended);
  EXPECT_DOUBLE_EQ(s.end_stats.cells_per_sec, 333.25);
  ASSERT_EQ(s.committed.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(s.committed[c].second, make_result(c));
  }

  // Reopening without truncate appends (the --resume path): the second
  // run's re-begin and its re-evaluated cells extend the same file.
  {
    JournalWriter w(path, JournalWriter::Options());
    w.sweep_begin(0, 0xabcu, 4, "samples=100 nmax=4 seed=1");
    w.cell_committed(0, 2, make_result(2));
  }
  const JournalAnalysis b = analyze_journal(path);
  ASSERT_EQ(b.sweeps.size(), 1u);
  EXPECT_EQ(b.sweeps[0].committed.size(), 4u);  // duplicate kept first

  // Truncate mode starts over (the --journal path).
  {
    JournalWriter::Options opts;
    opts.truncate = true;
    JournalWriter w(path, opts);
    w.sweep_begin(0, 0x123u, 1, "fresh");
  }
  const JournalAnalysis c = analyze_journal(path);
  ASSERT_EQ(c.sweeps.size(), 1u);
  EXPECT_EQ(c.sweeps[0].fingerprint, 0x123u);
  EXPECT_TRUE(c.sweeps[0].committed.empty());
  std::remove(path.c_str());
}

TEST(JournalWriterTest, TruncatedWriterFileRecoversThePrefix)
{
  // Write a journal, chop the file mid-record with truncate(2), re-analyze:
  // exactly the surviving whole records come back.
  const std::string path = testing::TempDir() + "journal_chopped.rbxj";
  std::remove(path.c_str());
  {
    JournalWriter w(path, JournalWriter::Options());
    w.sweep_begin(0, 0x77u, 2, "x");
    w.cell_committed(0, 0, make_result(0));
    w.cell_committed(0, 1, make_result(1));
  }
  const auto bytes = read_file_bytes(path, "journal");
  const auto last =
      seal_record(kRecordCellCommitted, cell_payload(0, 1, make_result(1)));
  ASSERT_EQ(truncate(path.c_str(),
                     static_cast<off_t>(bytes.size() - last.size() + 5)),
            0);
  const JournalAnalysis a = analyze_journal(path);
  EXPECT_TRUE(a.torn_tail);
  ASSERT_EQ(a.sweeps.size(), 1u);
  ASSERT_EQ(a.sweeps[0].committed.size(), 1u);
  EXPECT_EQ(a.sweeps[0].committed[0].second, make_result(0));

  // The resume path: reopen with truncate_at = the analysis' valid prefix
  // so the torn bytes are dropped and the re-evaluated cell's record is
  // reachable by the next scan (O_APPEND behind torn bytes would hide it).
  {
    JournalWriter::Options opts;
    opts.truncate_at = a.valid_bytes;
    JournalWriter w(path, opts);
    w.sweep_begin(0, 0x77u, 2, "x");
    w.cell_committed(0, 1, make_result(1));
  }
  const JournalAnalysis b = analyze_journal(path);
  EXPECT_FALSE(b.torn_tail);
  ASSERT_EQ(b.sweeps.size(), 1u);
  ASSERT_EQ(b.sweeps[0].committed.size(), 2u);
  EXPECT_EQ(b.sweeps[0].committed[1].second, make_result(1));
  std::remove(path.c_str());
}

TEST(JournalScanTest, MissingFileThrows) {
  EXPECT_THROW(analyze_journal(testing::TempDir() + "no_such_journal.rbxj"),
               wire::Error);
}

}  // namespace
}  // namespace recov
}  // namespace rbx
