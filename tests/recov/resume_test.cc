// Resume planning and the dispatch pre-committed seam: a journal's
// recovered state partitions the grid into winners and losers, the
// scheduler evaluates only the losers, and the merged output is bitwise
// identical to an uninterrupted run; a journal from a different grid
// refuses instead of mixing experiments.
#include "recov/resume.h"

#include <algorithm>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/dispatch.h"
#include "core/executor.h"
#include "core/lane.h"
#include "core/result.h"
#include "core/scenario.h"
#include "recov/journal.h"
#include "support/wire.h"

namespace rbx {
namespace recov {
namespace {

ResultSet make_result(std::size_t cell) {
  ResultSet r("test", "cell-" + std::to_string(cell));
  r.set("value", 10.0 * static_cast<double>(cell), 0.0, 1);
  return r;
}

SweepState make_state(std::uint64_t fingerprint, std::uint64_t total,
                      const std::vector<std::size_t>& committed) {
  SweepState s;
  s.fingerprint = fingerprint;
  s.total_cells = total;
  s.options = "samples=100 nmax=4 seed=1";
  for (std::size_t c : committed) {
    s.committed.emplace_back(c, make_result(c));
  }
  return s;
}

TEST(ResumePlanTest, PartitionsDoneAndLostCells) {
  const SweepState state = make_state(0xfeedu, 5, {0, 3});
  const ResumePlan plan = plan_resume(state, 5, 0xfeedu);
  ASSERT_EQ(plan.committed.size(), 5u);
  ASSERT_EQ(plan.results.size(), 5u);
  EXPECT_EQ(plan.committed_cells(), 2u);
  EXPECT_FALSE(plan.complete());
  EXPECT_EQ(plan.lost, (std::vector<std::size_t>{1, 2, 4}));
  EXPECT_TRUE(plan.committed[0]);
  EXPECT_FALSE(plan.committed[1]);
  EXPECT_TRUE(plan.committed[3]);
  EXPECT_EQ(plan.results[0], make_result(0));
  EXPECT_EQ(plan.results[3], make_result(3));
}

TEST(ResumePlanTest, CompleteSweepHasNoLosers) {
  const SweepState state = make_state(0xfeedu, 3, {0, 1, 2});
  const ResumePlan plan = plan_resume(state, 3, 0xfeedu);
  EXPECT_TRUE(plan.complete());
  EXPECT_EQ(plan.committed_cells(), 3u);
}

TEST(ResumePlanTest, FingerprintMismatchRefuses) {
  // A journal written by a different grid (--samples, --seed, --nmax or a
  // different bench changed) must throw, and the message must carry the
  // journal's own options digest so the user can see what it was.
  const SweepState state = make_state(0xfeedu, 5, {0});
  try {
    plan_resume(state, 5, 0xbad0u);
    FAIL() << "fingerprint mismatch did not throw";
  } catch (const wire::Error& e) {
    EXPECT_NE(std::string(e.what()).find("samples=100 nmax=4 seed=1"),
              std::string::npos)
        << e.what();
  }
}

TEST(ResumePlanTest, CellCountMismatchRefuses) {
  const SweepState state = make_state(0xfeedu, 5, {0});
  EXPECT_THROW(plan_resume(state, 7, 0xfeedu), wire::Error);
}

// --- the dispatch seam ---------------------------------------------------

CellFn indexed_fn(std::vector<std::size_t>* evaluated) {
  return [evaluated](const Scenario& s, std::size_t i) {
    if (evaluated != nullptr) {
      evaluated->push_back(i);
    }
    ResultSet out("test", s.label());
    out.set("value", 10.0 * static_cast<double>(i), 0.0, 1);
    return out;
  };
}

TEST(DispatchResumeTest, PrecommittedCellsAreNotReEvaluated) {
  // Simulate a crash-resume: run a full sweep journaling through the
  // commit hook, seed a second run with half the outcomes pre-committed,
  // and require (a) only the losers were evaluated, (b) the merged
  // outcomes are identical to the uninterrupted run, (c) the hook fired
  // only for the losers.
  const std::vector<Scenario> cells(6, Scenario::symmetric(2, 1.0, 1.0));

  std::vector<std::unique_ptr<Lane>> lanes1;
  lanes1.push_back(std::make_unique<ThreadLane>(2));
  DispatchOptions opts;
  opts.quiet = true;
  HybridExecutor full(std::move(lanes1), opts);
  std::vector<std::size_t> full_commits;
  full.set_commit_hook([&full_commits](std::size_t i, const CellOutcome&) {
    full_commits.push_back(i);
  });
  const auto reference = full.run(cells, indexed_fn(nullptr));
  ASSERT_EQ(reference.size(), cells.size());
  EXPECT_EQ(full_commits.size(), cells.size());

  // The "journal": cells 0, 2, 4 survived the crash.
  std::vector<std::uint8_t> mask(cells.size(), 0);
  std::vector<CellOutcome> seed(cells.size());
  for (std::size_t i : {0u, 2u, 4u}) {
    mask[i] = 1;
    seed[i] = reference[i];
  }

  std::vector<std::unique_ptr<Lane>> lanes2;
  lanes2.push_back(std::make_unique<ThreadLane>(2));
  HybridExecutor resumed(std::move(lanes2), opts);
  resumed.set_precommitted(mask, seed);
  std::vector<std::size_t> resumed_commits;
  resumed.set_commit_hook(
      [&resumed_commits](std::size_t i, const CellOutcome&) {
        resumed_commits.push_back(i);
      });
  std::vector<std::size_t> evaluated;
  const auto outcomes = resumed.run(cells, indexed_fn(&evaluated));

  ASSERT_EQ(outcomes.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].result, reference[i].result) << "cell " << i;
  }
  // Only the losers were evaluated and only they fired the hook.
  std::sort(evaluated.begin(), evaluated.end());
  EXPECT_EQ(evaluated, (std::vector<std::size_t>{1, 3, 5}));
  std::sort(resumed_commits.begin(), resumed_commits.end());
  EXPECT_EQ(resumed_commits, (std::vector<std::size_t>{1, 3, 5}));

  // The seam is one-shot: a further run starts clean and evaluates all.
  std::vector<std::size_t> again;
  const auto rerun = resumed.run(cells, indexed_fn(&again));
  ASSERT_EQ(rerun.size(), cells.size());
  EXPECT_EQ(again.size(), cells.size());
}

TEST(DispatchResumeTest, FullyPrecommittedSweepTouchesNoWorker) {
  const std::vector<Scenario> cells(3, Scenario::symmetric(2, 1.0, 1.0));
  std::vector<std::uint8_t> mask(cells.size(), 1);
  std::vector<CellOutcome> seed(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    seed[i].result = make_result(i);
  }
  // No lanes at all: with every cell pre-committed nothing needs a worker,
  // so the usual "no lanes" infrastructure error must not fire.
  HybridExecutor hybrid({}, DispatchOptions());
  hybrid.set_precommitted(mask, seed);
  std::vector<std::size_t> evaluated;
  const auto outcomes = hybrid.run(cells, indexed_fn(&evaluated));
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(evaluated.empty());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(outcomes[i].result, make_result(i));
  }
}

TEST(DispatchResumeTest, MismatchedPrecommitSizesThrow) {
  const std::vector<Scenario> cells(4, Scenario::symmetric(2, 1.0, 1.0));
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.push_back(std::make_unique<ThreadLane>(1));
  DispatchOptions opts;
  opts.quiet = true;
  HybridExecutor hybrid(std::move(lanes), opts);
  hybrid.set_precommitted(std::vector<std::uint8_t>(3, 0),
                          std::vector<CellOutcome>(3));
  EXPECT_THROW(hybrid.run(cells, indexed_fn(nullptr)), std::runtime_error);
}

}  // namespace
}  // namespace recov
}  // namespace rbx
