// Startup compaction of the worker result cache (Options::max_bytes,
// sweep_workerd --cache-max-bytes): the append-only file is bounded at
// load by dropping the oldest entries and rewriting, and every entry that
// survives still hits with the exact bytes it was inserted with.
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/result.h"
#include "core/scenario.h"
#include "recov/cache.h"
#include "recov/journal.h"
#include "support/wire.h"

namespace rbx {
namespace recov {
namespace {

Scenario cell_scenario(std::uint64_t seed) {
  return Scenario::symmetric(3, 1.0, 1.0).seed(seed).samples(500);
}

EvalPlan mc_plan() {
  EvalPlan plan;
  plan.steps.push_back({"monte-carlo", ""});
  return plan;
}

ResultSet make_result(double v) {
  ResultSet r("monte-carlo", "cached-cell");
  r.set("mean_interval_x", v, 0.001, 500);
  return r;
}

std::string fresh_dir(const char* name) {
  const std::string dir = testing::TempDir() + name;
  std::remove((dir + "/cache.rbxj").c_str());
  ::rmdir(dir.c_str());
  EXPECT_EQ(::mkdir(dir.c_str(), 0755), 0);
  return dir;
}

std::size_t file_size(const std::string& path) {
  struct stat st {};
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<std::size_t>(st.st_size);
}

constexpr std::size_t kCells = 12;

// Fill a cache with kCells distinct cells (seed = value = index).
void populate(const std::string& dir) {
  ResultCache cache(dir);
  for (std::size_t i = 0; i < kCells; ++i) {
    cache.insert(cell_scenario(i), mc_plan(),
                 make_result(static_cast<double>(i)));
  }
  EXPECT_EQ(cache.entries(), kCells);
}

TEST(CacheCompactionTest, OldestDroppedNewestStillHit) {
  const std::string dir = fresh_dir("cache_compact_basic");
  populate(dir);
  const std::string file = dir + "/cache.rbxj";
  const std::size_t full = file_size(file);

  ResultCache::Options opts;
  opts.max_bytes = full / 2;
  ResultCache cache(dir, opts);

  // The file shrank under the cap and some (but not all) entries remain.
  EXPECT_LE(file_size(file), opts.max_bytes);
  EXPECT_GT(cache.entries(), 0u);
  EXPECT_LT(cache.entries(), kCells);

  // Exactly the newest entries survive: misses form a prefix, hits a
  // suffix, and every hit returns the inserted bytes.
  bool hit_seen = false;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < kCells; ++i) {
    ResultSet out("x", "y");
    if (cache.lookup(cell_scenario(i), mc_plan(), &out)) {
      hit_seen = true;
      ++hits;
      EXPECT_EQ(out, make_result(static_cast<double>(i))) << "i=" << i;
    } else {
      EXPECT_FALSE(hit_seen) << "entry " << i
                             << " missing after a newer one survived";
    }
  }
  EXPECT_EQ(hits, cache.entries());
}

TEST(CacheCompactionTest, CapAboveFileSizeIsANoop) {
  const std::string dir = fresh_dir("cache_compact_noop");
  populate(dir);
  const std::string file = dir + "/cache.rbxj";
  const std::size_t full = file_size(file);

  ResultCache::Options opts;
  opts.max_bytes = full + 1;
  ResultCache cache(dir, opts);
  EXPECT_EQ(cache.entries(), kCells);
  EXPECT_EQ(file_size(file), full);
}

TEST(CacheCompactionTest, DuplicateRecordsShedWithoutLosingEntries) {
  // Crash-overlap can append the same cell twice (two daemons, or a
  // re-run after fsync loss).  Doubling the file simulates the worst
  // case; a cap at the original size must recover every unique entry
  // while shrinking the file back.
  const std::string dir = fresh_dir("cache_compact_dup");
  populate(dir);
  const std::string file = dir + "/cache.rbxj";
  const auto bytes = read_file_bytes(file, "cache");
  std::vector<std::byte> doubled(bytes);
  doubled.insert(doubled.end(), bytes.begin(), bytes.end());
  wire::write_file_atomic(file, doubled);

  ResultCache::Options opts;
  opts.max_bytes = bytes.size();
  ResultCache cache(dir, opts);
  EXPECT_EQ(cache.entries(), kCells);
  EXPECT_LE(file_size(file), opts.max_bytes);
  ResultSet out("x", "y");
  for (std::size_t i = 0; i < kCells; ++i) {
    ASSERT_TRUE(cache.lookup(cell_scenario(i), mc_plan(), &out)) << i;
    EXPECT_EQ(out, make_result(static_cast<double>(i)));
  }
}

TEST(CacheCompactionTest, AppendsAfterCompactionSurviveRestart) {
  const std::string dir = fresh_dir("cache_compact_append");
  populate(dir);
  const std::string file = dir + "/cache.rbxj";
  const std::size_t full = file_size(file);

  ResultCache::Options opts;
  opts.max_bytes = full / 2;
  std::size_t retained = 0;
  {
    ResultCache cache(dir, opts);
    retained = cache.entries();
    cache.insert(cell_scenario(1000), mc_plan(), make_result(1000.0));
  }
  // Reload without a cap: the compacted records plus the new append all
  // replay.
  ResultCache reloaded(dir);
  EXPECT_EQ(reloaded.entries(), retained + 1);
  ResultSet out("x", "y");
  ASSERT_TRUE(reloaded.lookup(cell_scenario(1000), mc_plan(), &out));
  EXPECT_EQ(out, make_result(1000.0));
  ASSERT_TRUE(
      reloaded.lookup(cell_scenario(kCells - 1), mc_plan(), &out));
  EXPECT_EQ(out, make_result(static_cast<double>(kCells - 1)));
}

TEST(CacheCompactionTest, TornTailDroppedDuringCompaction) {
  const std::string dir = fresh_dir("cache_compact_torn");
  populate(dir);
  const std::string file = dir + "/cache.rbxj";
  const auto bytes = read_file_bytes(file, "cache");
  ASSERT_EQ(truncate(file.c_str(), static_cast<off_t>(bytes.size() - 7)),
            0);

  ResultCache::Options opts;
  opts.max_bytes = bytes.size() / 2;
  ResultCache cache(dir, opts);
  EXPECT_GT(cache.entries(), 0u);
  EXPECT_LE(file_size(file), opts.max_bytes);
  // The rewritten file is whole records only: an uncapped reload agrees.
  const std::size_t after = cache.entries();
  ResultCache reloaded(dir);
  EXPECT_EQ(reloaded.entries(), after);
}

}  // namespace
}  // namespace recov
}  // namespace rbx
