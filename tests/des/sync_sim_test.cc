#include "des/sync_sim.h"

#include <gtest/gtest.h>

#include "model/sync_model.h"

namespace rbx {
namespace {

SyncSimParams base_params() {
  SyncSimParams p;
  p.mu = {1.5, 1.0, 0.5};
  p.strategy = SyncStrategy::kElapsedTime;
  p.elapsed_threshold = 2.0;
  return p;
}

TEST(SyncSim, MaxWaitMatchesClosedForm) {
  SyncRbModel model({1.5, 1.0, 0.5});
  SyncRbSimulator sim(base_params(), 11);
  const SyncSimResult r = sim.run(40000);
  EXPECT_NEAR(r.max_wait.mean(), model.mean_max_wait(),
              4.0 * r.max_wait.ci_half_width() / 1.96);
}

TEST(SyncSim, LossMatchesClosedForm) {
  SyncRbModel model({1.5, 1.0, 0.5});
  SyncRbSimulator sim(base_params(), 13);
  const SyncSimResult r = sim.run(40000);
  EXPECT_NEAR(r.loss.mean(), model.mean_loss(),
              4.0 * r.loss.ci_half_width() / 1.96);
}

TEST(SyncSim, HomogeneousHarmonicLaw) {
  SyncSimParams p;
  p.mu = std::vector<double>(4, 2.0);
  p.strategy = SyncStrategy::kElapsedTime;
  p.elapsed_threshold = 1.0;
  SyncRbSimulator sim(p, 3);
  const SyncSimResult r = sim.run(30000);
  const double h4 = 1.0 + 0.5 + 1.0 / 3.0 + 0.25;
  EXPECT_NEAR(r.max_wait.mean(), h4 / 2.0, 0.02);
}

TEST(SyncSim, ElapsedTimeStrategySpacing) {
  SyncSimParams p = base_params();
  p.elapsed_threshold = 3.0;
  SyncRbSimulator sim(p, 21);
  const SyncSimResult r = sim.run(20000);
  // Spacing = threshold + Z.
  SyncRbModel model(p.mu);
  EXPECT_NEAR(r.line_spacing.mean(), 3.0 + model.mean_max_wait(),
              4.0 * r.line_spacing.ci_half_width() / 1.96);
  EXPECT_GE(r.line_spacing.min(), 3.0);
}

TEST(SyncSim, ConstantIntervalStrategyKeepsTimerGrid) {
  SyncSimParams p = base_params();
  p.strategy = SyncStrategy::kConstantInterval;
  p.interval = 5.0;
  SyncRbSimulator sim(p, 23);
  const SyncSimResult r = sim.run(20000);
  // Requests land on the 5-unit grid; when a commit window crosses a tick
  // the next request skips to the following tick, so the mean spacing sits
  // between the period and period + E[Z].
  SyncRbModel model(p.mu);
  EXPECT_GE(r.line_spacing.mean(), 5.0 - 1e-9);
  EXPECT_LE(r.line_spacing.mean(), 5.0 + model.mean_max_wait());
  // The skip probability is P(Z > period): spacing mean ~ 5 (1 + P).
  const double p_skip = 1.0 - model.z_cdf(5.0);
  EXPECT_NEAR(r.line_spacing.mean(), 5.0 * (1.0 + p_skip), 0.15);
}

TEST(SyncSim, SavedStatesStrategyCountsStates) {
  SyncSimParams p = base_params();
  p.strategy = SyncStrategy::kSavedStates;
  p.saved_threshold = 6;
  SyncRbSimulator sim(p, 29);
  const SyncSimResult r = sim.run(20000);
  // Exactly threshold RPs between lines plus n at the line itself.
  EXPECT_DOUBLE_EQ(r.states_per_line.min(), 9.0);
  EXPECT_DOUBLE_EQ(r.states_per_line.max(), 9.0);
  // Request fires at the 6th RP: Erlang(6, total_mu=3) has mean 2.
  SyncRbModel model(p.mu);
  EXPECT_NEAR(r.line_spacing.mean(), 2.0 + model.mean_max_wait(), 0.05);
}

TEST(SyncSim, RollbackDistanceUnderErrors) {
  SyncSimParams p = base_params();
  p.elapsed_threshold = 2.0;
  p.error_rate = 0.5;
  SyncRbSimulator sim(p, 41);
  const SyncSimResult r = sim.run(30000);
  ASSERT_GT(r.rollback_distance.count(), 1000u);
  // Distances are bounded by the line spacing and non-negative.
  EXPECT_GE(r.rollback_distance.min(), 0.0);
  EXPECT_LE(r.rollback_distance.max(), r.line_spacing.max());
  // Errors arrive uniformly over the cycle: mean distance is below the
  // mean spacing.
  EXPECT_LT(r.rollback_distance.mean(), r.line_spacing.mean());
}

TEST(SyncSim, LossRateDecreasesWithLongerPeriods) {
  SyncSimParams slow = base_params();
  slow.elapsed_threshold = 8.0;
  SyncSimParams fast = base_params();
  fast.elapsed_threshold = 0.5;
  const SyncSimResult r_slow = SyncRbSimulator(slow, 5).run(10000);
  const SyncSimResult r_fast = SyncRbSimulator(fast, 5).run(10000);
  EXPECT_LT(r_slow.loss_rate, r_fast.loss_rate);
}

TEST(SyncSim, DeterministicUnderSeed) {
  SyncRbSimulator a(base_params(), 9), b(base_params(), 9);
  EXPECT_DOUBLE_EQ(a.run(1000).loss.mean(), b.run(1000).loss.mean());
}

// Property: for every strategy the loss per sync matches the closed form
// (the strategies change *when* syncs happen, not the commit cost).
class SyncStrategyTest : public ::testing::TestWithParam<SyncStrategy> {};

TEST_P(SyncStrategyTest, CommitCostIndependentOfStrategy) {
  SyncSimParams p = base_params();
  p.strategy = GetParam();
  SyncRbSimulator sim(p, 63);
  const SyncSimResult r = sim.run(30000);
  SyncRbModel model(p.mu);
  EXPECT_NEAR(r.loss.mean(), model.mean_loss(),
              5.0 * r.loss.ci_half_width() / 1.96);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SyncStrategyTest,
                         ::testing::Values(SyncStrategy::kConstantInterval,
                                           SyncStrategy::kElapsedTime,
                                           SyncStrategy::kSavedStates));

}  // namespace
}  // namespace rbx
