#include "des/prp_sim.h"

#include <gtest/gtest.h>

#include "model/prp_model.h"
#include "model/sync_model.h"

namespace rbx {
namespace {

ProcessSetParams table_params() {
  return ProcessSetParams::three(1.0, 1.0, 1.0, 1.0, 1.0, 1.0);
}

PrpSimParams sim_params() {
  PrpSimParams p;
  p.t_record = 1e-4;
  p.error_rate = 0.2;
  return p;
}

TEST(PrpSim, RunsToRequestedFailureCount) {
  PrpSimulator sim(table_params(), sim_params(), 3);
  const PrpSimResult r = sim.run(500);
  EXPECT_EQ(r.failures, 500u);
  EXPECT_EQ(r.prp_distance.count(), 500u);
  EXPECT_EQ(r.async_distance.count(), 500u);
  EXPECT_GT(r.horizon, 0.0);
}

TEST(PrpSim, RestartsAreCleanAgainstGroundTruth) {
  PrpSimulator sim(table_params(), sim_params(), 5);
  const PrpSimResult r = sim.run(1500);
  // The Section 4 algorithm must never restore a contaminated state (up to
  // the measure-zero implant race, which the tiny t_record makes rare).
  EXPECT_EQ(r.contaminated_restarts, 0u);
}

TEST(PrpSim, PrpBoundsRollbackWhereAsyncDoesNot) {
  // With rho >= 1 the asynchronous scheme suffers long propagations while
  // PRP rollback stays within about one RP interval.
  PrpSimulator sim(table_params(), sim_params(), 11);
  const PrpSimResult r = sim.run(2000);
  EXPECT_LT(r.prp_distance.mean(), r.async_distance.mean());
  // Tail behaviour: the async 95th percentile dwarfs the PRP one.
  EXPECT_LT(r.prp_distance.quantile(0.95), r.async_distance.quantile(0.95));
}

TEST(PrpSim, MeanPrpDistanceNearTheory) {
  // For a locally detected error the rollback distance is roughly the age
  // of the failing process's last RP plus the detection delay, both
  // Exp(mu_i)-distributed; the paper bounds the line-wide distance by
  // E[sup y_i].  The measured mean must sit in that ballpark: between the
  // one-process mean (1/mu) and a few multiples of the sup bound.
  const auto params = table_params();
  PrpModel model(params, 1e-4);
  PrpSimulator sim(params, sim_params(), 13);
  const PrpSimResult r = sim.run(4000);
  EXPECT_GT(r.prp_distance.mean(), 0.3 / params.mu(0));
  EXPECT_LT(r.prp_distance.mean(), 4.0 * model.mean_rollback_bound());
}

TEST(PrpSim, SnapshotAccountingMatchesModel) {
  const auto params = table_params();
  PrpModel model(params, 1e-4);
  PrpSimulator sim(params, sim_params(), 17);
  const PrpSimResult r = sim.run(2000);
  // Empirical snapshot rate ~ n * sum(mu), reduced slightly because failed
  // ATs do not record states.
  EXPECT_NEAR(r.snapshots_per_unit_time, model.system_snapshot_rate(),
              0.1 * model.system_snapshot_rate());
  EXPECT_NEAR(r.snapshots_per_unit_time, 3.0 * r.rp_per_unit_time, 1e-9);
  EXPECT_GT(r.recording_time_fraction, 0.0);
  EXPECT_LT(r.recording_time_fraction, 0.01);
}

TEST(PrpSim, AsyncDominoAppearsUnderHeavyInteraction) {
  // Crank interactions up and make errors frequent: early failures strike
  // before any consistent line has formed, so asynchronous rollback
  // unravels to the start while PRP stays bounded.  (Late failures rarely
  // domino to t = 0 - some ancient line exists - but their distances stay
  // large; both effects are asserted.)
  const auto params = ProcessSetParams::symmetric(3, 0.5, 3.0);
  PrpSimParams sp = sim_params();
  sp.error_rate = 2.0;
  PrpSimulator sim(params, sp, 23);
  const PrpSimResult r = sim.run(800);
  EXPECT_GT(r.async_domino_count, 0u);
  EXPECT_EQ(r.contaminated_restarts, 0u);
  EXPECT_LT(r.prp_distance.mean(), r.async_distance.mean());
}

TEST(PrpSim, IterationsStayWithinProcessCount) {
  PrpSimulator sim(table_params(), sim_params(), 29);
  const PrpSimResult r = sim.run(2000);
  EXPECT_LE(r.prp_iterations.max(), 3.0);
  EXPECT_GE(r.prp_iterations.min(), 1.0);
}

TEST(PrpSim, ScopedVariantAffectsFewerProcesses) {
  PrpSimParams everyone = sim_params();
  PrpSimParams scoped = sim_params();
  scoped.affects_everyone = false;
  const PrpSimResult r_all =
      PrpSimulator(table_params(), everyone, 31).run(1500);
  const PrpSimResult r_scoped =
      PrpSimulator(table_params(), scoped, 31).run(1500);
  EXPECT_LE(r_scoped.prp_affected.mean(), r_all.prp_affected.mean());
  EXPECT_EQ(r_scoped.contaminated_restarts, 0u);
}

TEST(PrpSim, DeterministicUnderSeed) {
  PrpSimulator a(table_params(), sim_params(), 7);
  PrpSimulator b(table_params(), sim_params(), 7);
  EXPECT_DOUBLE_EQ(a.run(300).prp_distance.mean(),
                   b.run(300).prp_distance.mean());
}

}  // namespace
}  // namespace rbx
