#include "des/async_sim.h"

#include <gtest/gtest.h>

#include "model/async_model.h"

namespace rbx {
namespace {

// The Monte-Carlo estimate of E[X] must agree with the analytic chain
// within a few standard errors.  This is the central cross-validation of
// the reproduction: the simulator implements the paper's assumptions
// directly, the model implements rules R1-R4.
TEST(AsyncSim, MeanIntervalMatchesModelSymmetricCase) {
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  AsyncRbModel model(params);
  AsyncRbSimulator sim(params, 42);
  const AsyncSimResult r = sim.run_lines(40000);
  EXPECT_NEAR(r.interval.mean(), model.mean_interval(),
              4.0 * r.interval.ci_half_width() / 1.96);
  EXPECT_NEAR(r.interval.variance(), model.variance_interval(),
              0.05 * model.variance_interval() + 0.05);
}

TEST(AsyncSim, MeanIntervalMatchesModelAsymmetricCase) {
  const auto params = ProcessSetParams::three(1.5, 1.0, 0.5, 1.5, 0.5, 1.0);
  AsyncRbModel model(params);
  AsyncRbSimulator sim(params, 7);
  const AsyncSimResult r = sim.run_lines(40000);
  EXPECT_NEAR(r.interval.mean(), model.mean_interval(),
              4.0 * r.interval.ci_half_width() / 1.96);
}

TEST(AsyncSim, RpCountsMatchAllThreeConventions) {
  const auto params = ProcessSetParams::three(1.5, 1.0, 0.5, 1.0, 1.0, 1.0);
  AsyncRbModel model(params);
  AsyncRbSimulator sim(params, 99);
  const AsyncSimResult r = sim.run_lines(40000);
  for (std::size_t i = 0; i < 3; ++i) {
    const auto counts = model.expected_rp_count(i);
    EXPECT_NEAR(r.rp_incl_final[i].mean(), counts.wald,
                4.0 * r.rp_incl_final[i].ci_half_width() / 1.96)
        << "i=" << i;
    EXPECT_NEAR(r.rp_excl_final[i].mean(), counts.excluding_final,
                4.0 * r.rp_excl_final[i].ci_half_width() / 1.96)
        << "i=" << i;
    EXPECT_NEAR(r.rp_state_changing[i].mean(), counts.state_changing,
                4.0 * r.rp_state_changing[i].ci_half_width() / 1.96)
        << "i=" << i;
  }
}

TEST(AsyncSim, NoInteractionsGivesExponentialInterval) {
  const auto params = ProcessSetParams::three(1.0, 2.0, 3.0, 0, 0, 0);
  AsyncRbSimulator sim(params, 5);
  const AsyncSimResult r = sim.run_lines(20000);
  EXPECT_NEAR(r.interval.mean(), 1.0 / 6.0, 0.005);
  // Exponential: cv = 1.
  EXPECT_NEAR(r.interval.stddev() / r.interval.mean(), 1.0, 0.05);
}

TEST(AsyncSim, DeterministicUnderSeed) {
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  AsyncRbSimulator a(params, 123), b(params, 123);
  const AsyncSimResult ra = a.run_lines(500);
  const AsyncSimResult rb = b.run_lines(500);
  EXPECT_DOUBLE_EQ(ra.interval.mean(), rb.interval.mean());
  EXPECT_DOUBLE_EQ(ra.interval.max(), rb.interval.max());
}

TEST(AsyncSim, SeedSensitivity) {
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  AsyncRbSimulator a(params, 1), b(params, 2);
  EXPECT_NE(a.run_lines(200).interval.mean(),
            b.run_lines(200).interval.mean());
}

TEST(AsyncSim, ExactObserverAdvancesAtLeastAsOftenAsModel) {
  // The model's all-ones criterion is conservative: the true maximal line
  // advances at least as frequently, so its inter-advance interval is
  // stochastically smaller.
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  AsyncRbSimulator sim(params, 31);
  const ExactLineResult r = sim.run_exact(60000);
  ASSERT_GT(r.any_advance.count(), 100u);
  ASSERT_GT(r.model_interval.count(), 100u);
  EXPECT_LT(r.any_advance.mean(), r.model_interval.mean());
  // Full refreshes require every component to advance: rarer than single
  // advances.
  EXPECT_GT(r.full_refresh.mean(), r.any_advance.mean());
}

TEST(AsyncSim, ExactObserverModelStreamStillMatchesAnalyticMean) {
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  AsyncRbModel model(params);
  AsyncRbSimulator sim(params, 17);
  const ExactLineResult r = sim.run_exact(80000);
  EXPECT_NEAR(r.model_interval.mean(), model.mean_interval(),
              5.0 * r.model_interval.ci_half_width() / 1.96);
}

TEST(AsyncSim, TwoProcessModelIsExact) {
  // For n = 2 the Markov model's all-ones criterion coincides with the
  // pairwise definition: a third party is needed for a "mixed" line (an
  // old RP of one process with a new RP of another across an unrelated
  // interaction).  The exact and model inter-advance intervals therefore
  // agree, and both match the closed form E[X] = 1 at unit rates.
  const auto params = ProcessSetParams::symmetric(2, 1.0, 1.0);
  AsyncRbSimulator sim(params, 77);
  const ExactLineResult r = sim.run_exact(50000);
  EXPECT_NEAR(r.model_interval.mean(), 1.0, 0.05);
  EXPECT_NEAR(r.any_advance.mean(), r.model_interval.mean(), 0.05);
}

}  // namespace
}  // namespace rbx
