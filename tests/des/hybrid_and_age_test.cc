// Tests for the two model extensions beyond the paper's core results:
// the stationary recovery-line age (renewal inspection paradox) and the
// hybrid PRP + periodic-synchronization scheme suggested by the paper's
// conclusion.
#include <gtest/gtest.h>

#include "des/async_sim.h"
#include "des/prp_sim.h"
#include "model/async_model.h"
#include "model/async_symmetric.h"

namespace rbx {
namespace {

TEST(LineAge, ClosedFormForExponentialIntervals) {
  // With lambda = 0, X ~ Exp(n mu) and the stationary age is 1/(n mu)
  // (memorylessness).
  AsyncRbModel model(ProcessSetParams::three(1.0, 2.0, 3.0, 0, 0, 0));
  EXPECT_NEAR(model.mean_line_age(), 1.0 / 6.0, 1e-10);
}

TEST(LineAge, InspectionParadoxExceedsHalfMean) {
  // For any non-degenerate X, E[age] = E[X^2]/(2E[X]) >= E[X]/2 with
  // equality iff X is deterministic; for these heavy-tailed intervals the
  // age even exceeds the full mean.
  AsyncRbModel model(ProcessSetParams::symmetric(3, 1.0, 1.0));
  EXPECT_GT(model.mean_line_age(), 0.5 * model.mean_interval());
  EXPECT_GT(model.mean_line_age(), model.mean_interval());
}

TEST(LineAge, SymmetricModelAgrees) {
  AsyncRbModel full(ProcessSetParams::symmetric(4, 1.0, 0.5));
  SymmetricAsyncModel lumped(4, 1.0, 0.5);
  EXPECT_NEAR(full.mean_line_age(), lumped.mean_line_age(), 1e-8);
}

TEST(LineAge, MonteCarloSamplingConvergesToRenewalFormula) {
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  AsyncRbModel model(params);
  AsyncRbSimulator sim(params, 2718);
  const AsyncSimResult r = sim.run_lines(40000, /*error_rate=*/0.3);
  ASSERT_GT(r.line_age.count(), 5000u);
  EXPECT_NEAR(r.line_age.mean(), model.mean_line_age(),
              5.0 * r.line_age.ci_half_width() / 1.96);
}

TEST(LineAge, NoErrorRateMeansNoSamples) {
  AsyncRbSimulator sim(ProcessSetParams::symmetric(2, 1.0, 1.0), 3);
  const AsyncSimResult r = sim.run_lines(500);
  EXPECT_EQ(r.line_age.count(), 0u);
}

// --- hybrid scheme ---

PrpSimParams hybrid_params(double period) {
  PrpSimParams p;
  p.error_rate = 0.2;
  p.sync_period = period;
  return p;
}

TEST(Hybrid, DistanceNeverExceedsPurePrp) {
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  PrpSimulator sim(params, hybrid_params(3.0), 11);
  const PrpSimResult r = sim.run(1500);
  ASSERT_EQ(r.hybrid_distance.count(), r.prp_distance.count());
  EXPECT_LE(r.hybrid_distance.mean(), r.prp_distance.mean() + 1e-12);
  EXPECT_LE(r.hybrid_distance.max(), r.prp_distance.max() + 1e-12);
}

TEST(Hybrid, SyncFloorEngagesUnderHeavyInteraction) {
  // Dense interactions push the pointer loop deep; the sync line caps it.
  const auto params = ProcessSetParams::symmetric(3, 0.4, 3.0);
  PrpSimulator sim(params, hybrid_params(2.0), 13);
  const PrpSimResult r = sim.run(1200);
  EXPECT_GT(r.hybrid_sync_restores, 0u);
  EXPECT_GT(r.sync_lines_established, 0u);
  EXPECT_LT(r.hybrid_distance.mean(), r.prp_distance.mean());
}

TEST(Hybrid, TighterPeriodTightensTheCap) {
  const auto params = ProcessSetParams::symmetric(3, 0.4, 3.0);
  const PrpSimResult coarse =
      PrpSimulator(params, hybrid_params(8.0), 17).run(1200);
  const PrpSimResult fine =
      PrpSimulator(params, hybrid_params(1.0), 17).run(1200);
  EXPECT_LT(fine.hybrid_distance.mean(), coarse.hybrid_distance.mean());
  // More lines established per unit time at the finer period.
  EXPECT_GT(static_cast<double>(fine.sync_lines_established) / fine.horizon,
            static_cast<double>(coarse.sync_lines_established) /
                coarse.horizon);
}

TEST(Hybrid, DisabledByDefault) {
  PrpSimParams p;
  p.error_rate = 0.2;
  PrpSimulator sim(ProcessSetParams::symmetric(3, 1.0, 1.0), p, 19);
  const PrpSimResult r = sim.run(300);
  EXPECT_EQ(r.hybrid_distance.count(), 0u);
  EXPECT_EQ(r.sync_lines_established, 0u);
}

TEST(Hybrid, SkippedSyncsUnderLatentErrorsKeepLinesClean) {
  // With a high error rate many sync instants fall inside latency windows
  // and are skipped; the established count must reflect that.
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  PrpSimParams p = hybrid_params(0.5);
  p.error_rate = 1.0;
  PrpSimulator sim(params, p, 23);
  const PrpSimResult r = sim.run(800);
  const auto instants = static_cast<std::size_t>(r.horizon / 0.5);
  EXPECT_LT(r.sync_lines_established, instants);
  EXPECT_EQ(r.contaminated_restarts, 0u);
}

}  // namespace
}  // namespace rbx
