#include "core/analyzer.h"

#include <gtest/gtest.h>

#include "model/async_model.h"
#include "model/prp_model.h"
#include "model/sync_model.h"

namespace rbx {
namespace {

TEST(Analyzer, CompareMatchesUnderlyingModels) {
  const auto params = ProcessSetParams::three(1.5, 1.0, 0.5, 1, 1, 1);
  Analyzer analyzer(params, 0.01);
  const SchemeComparison cmp = analyzer.compare();

  AsyncRbModel async(params);
  EXPECT_DOUBLE_EQ(cmp.mean_interval_x, async.mean_interval());
  ASSERT_EQ(cmp.rp_counts.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(cmp.rp_counts[i], async.expected_rp_count(i).wald);
  }

  SyncRbModel sync(params.mu());
  EXPECT_DOUBLE_EQ(cmp.sync_mean_max_wait, sync.mean_max_wait());
  EXPECT_DOUBLE_EQ(cmp.sync_mean_loss, sync.mean_loss());

  PrpModel prp(params, 0.01);
  EXPECT_DOUBLE_EQ(cmp.prp_snapshots_per_rp, 3.0);
  EXPECT_DOUBLE_EQ(cmp.prp_time_overhead_per_rp, prp.time_overhead_per_rp());
  EXPECT_DOUBLE_EQ(cmp.prp_mean_rollback_bound, prp.mean_rollback_bound());
}

TEST(Analyzer, SummaryMentionsAllSchemes) {
  Analyzer analyzer(ProcessSetParams::symmetric(3, 1.0, 1.0));
  const std::string s = analyzer.compare().summary();
  EXPECT_NE(s.find("asynchronous"), std::string::npos);
  EXPECT_NE(s.find("synchronized"), std::string::npos);
  EXPECT_NE(s.find("pseudo RPs"), std::string::npos);
  EXPECT_NE(s.find("E[X]"), std::string::npos);
}

TEST(Analyzer, DensityGridMatchesModel) {
  const auto params = ProcessSetParams::symmetric(3, 1.0, 1.0);
  Analyzer analyzer(params);
  const auto grid = analyzer.interval_density_grid(2.0, 5);
  AsyncRbModel model(params);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_NEAR(grid[0], model.interval_pdf(0.0), 1e-9);
  EXPECT_NEAR(grid[4], model.interval_pdf(2.0), 1e-9);
}

}  // namespace
}  // namespace rbx
