#include "core/scenario.h"

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(Scenario, DefaultsAreTheLibraryDefaults) {
  const Scenario s = Scenario::symmetric(3, 1.0, 1.0);
  EXPECT_EQ(s.n(), 3u);
  EXPECT_EQ(s.scheme(), SchemeKind::kAsynchronous);
  EXPECT_EQ(s.samples(), 20000u);
  EXPECT_DOUBLE_EQ(s.error_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.t_record(), 0.01);
  EXPECT_FALSE(s.scoped_prp());
}

TEST(Scenario, FluentSettersChain) {
  const Scenario s = Scenario::symmetric(4, 2.0, 0.5)
                         .scheme(SchemeKind::kSynchronized)
                         .seed(99)
                         .samples(123)
                         .error_rate(0.25)
                         .t_record(0.002);
  EXPECT_EQ(s.scheme(), SchemeKind::kSynchronized);
  EXPECT_EQ(s.seed(), 99u);
  EXPECT_EQ(s.samples(), 123u);
  EXPECT_DOUBLE_EQ(s.error_rate(), 0.25);
  EXPECT_DOUBLE_EQ(s.t_record(), 0.002);
}

TEST(Scenario, FromMuBuildsZeroInteractionMatrix) {
  const Scenario s = Scenario::from_mu({1.5, 1.0, 0.5});
  EXPECT_EQ(s.n(), 3u);
  EXPECT_DOUBLE_EQ(s.params().mu(0), 1.5);
  EXPECT_DOUBLE_EQ(s.params().total_lambda(), 0.0);
}

TEST(Scenario, RuntimeConfigProjection) {
  RuntimeWorkload w;
  w.steps = 777;
  w.message_probability = 0.5;
  w.rp_probability = 0.125;
  w.rb_alternates = 3;
  w.sync_period_steps = 42;
  const Scenario s = Scenario::symmetric(5, 1.0, 1.0)
                         .scheme(SchemeKind::kPseudoRecoveryPoints)
                         .seed(7)
                         .at_failure_probability(0.125)
                         .scoped_prp(true)
                         .workload(w);
  const RuntimeConfig cfg = s.runtime_config();
  EXPECT_EQ(cfg.num_processes, 5u);
  EXPECT_EQ(cfg.scheme, SchemeKind::kPseudoRecoveryPoints);
  EXPECT_EQ(cfg.seed, 7u);
  EXPECT_EQ(cfg.steps, 777u);
  EXPECT_DOUBLE_EQ(cfg.message_probability, 0.5);
  EXPECT_DOUBLE_EQ(cfg.rp_probability, 0.125);
  EXPECT_DOUBLE_EQ(cfg.at_failure_probability, 0.125);
  EXPECT_EQ(cfg.rb_alternates, 3u);
  EXPECT_EQ(cfg.sync_period_steps, 42u);
  EXPECT_TRUE(cfg.scoped_prp);
}

TEST(Scenario, SyncSimParamsProjection) {
  SyncPolicy policy;
  policy.strategy = SyncStrategy::kSavedStates;
  policy.saved_threshold = 17;
  const Scenario s = Scenario::from_mu({2.0, 1.0})
                         .scheme(SchemeKind::kSynchronized)
                         .sync_policy(policy)
                         .error_rate(0.3);
  const SyncSimParams sp = s.sync_sim_params();
  ASSERT_EQ(sp.mu.size(), 2u);
  EXPECT_DOUBLE_EQ(sp.mu[0], 2.0);
  EXPECT_EQ(sp.strategy, SyncStrategy::kSavedStates);
  EXPECT_EQ(sp.saved_threshold, 17u);
  EXPECT_DOUBLE_EQ(sp.error_rate, 0.3);
}

TEST(Scenario, PrpSimParamsProjection) {
  const Scenario s = Scenario::symmetric(3, 1.0, 1.0)
                         .scheme(SchemeKind::kPseudoRecoveryPoints)
                         .t_record(1e-4)
                         .error_rate(0.25)
                         .scoped_prp(true)
                         .prp_sync_period(4.0);
  const PrpSimParams sp = s.prp_sim_params();
  EXPECT_DOUBLE_EQ(sp.t_record, 1e-4);
  EXPECT_DOUBLE_EQ(sp.error_rate, 0.25);
  EXPECT_FALSE(sp.affects_everyone);
  EXPECT_DOUBLE_EQ(sp.sync_period, 4.0);
}

TEST(Scenario, LabelNamesSchemeRatesAndSeed) {
  const std::string label = Scenario::symmetric(3, 1.0, 1.0)
                                .scheme(SchemeKind::kSynchronized)
                                .seed(42)
                                .label();
  EXPECT_NE(label.find("sync"), std::string::npos);
  EXPECT_NE(label.find("n=3"), std::string::npos);
  EXPECT_NE(label.find("seed=42"), std::string::npos);
}

TEST(Scenario, StreamsDefaultToOneAndStayOutOfTheLabel) {
  const Scenario base = Scenario::symmetric(3, 1.0, 1.0).seed(42);
  EXPECT_EQ(base.streams(), 1u);
  // streams=1 must keep the exact pre-stream label (golden output pins
  // these strings); only K > 1 may appear.
  EXPECT_EQ(base.label().find("streams"), std::string::npos);
  const Scenario streamed = Scenario(base).streams(4);
  EXPECT_NE(streamed.label().find("streams=4"), std::string::npos);
}

TEST(ScenarioDeathTest, LoudMisuse) {
  EXPECT_DEATH(Scenario::symmetric(3, 1.0, 1.0).error_rate(-0.1),
               "non-negative");
  EXPECT_DEATH(Scenario::symmetric(3, 1.0, 1.0).samples(0), "positive");
  EXPECT_DEATH(Scenario::symmetric(3, 1.0, 1.0).streams(0), "positive");
  // The PRP simulator runs to a failure count; a zero error rate would
  // never terminate, so the projection refuses it.
  EXPECT_DEATH(Scenario::symmetric(3, 1.0, 1.0)
                   .scheme(SchemeKind::kPseudoRecoveryPoints)
                   .prp_sim_params(),
               "error rate");
}

}  // namespace
}  // namespace rbx
