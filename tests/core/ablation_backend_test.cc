#include "core/ablation_backend.h"

#include <gtest/gtest.h>

#include "core/backend.h"
#include "des/async_sim.h"
#include "des/prp_sim.h"
#include "model/async_model.h"
#include "model/async_symmetric.h"
#include "model/prp_model.h"
#include "model/sync_model.h"

namespace rbx {
namespace {

Scenario line_scenario() {
  return Scenario::symmetric(3, 1.0, 1.0).seed(42).samples(400);
}

Scenario hybrid_scenario() {
  return Scenario::symmetric(3, 0.4, 3.0)
      .scheme(SchemeKind::kPseudoRecoveryPoints)
      .t_record(1e-4)
      .error_rate(0.25)
      .prp_sync_period(2.0)
      .seed(11)
      .samples(60);
}

TEST(ExactLineBackendTest, SupportsGating) {
  const EvalBackend& b = exact_line_backend();
  EXPECT_TRUE(b.supports(line_scenario()));
  // Wrong scheme: the exact observer is defined on the async event stream.
  EXPECT_FALSE(
      b.supports(Scenario(line_scenario()).scheme(SchemeKind::kSynchronized)));
  // Heterogeneous rates: the paired analytic column needs the lumped chain.
  EXPECT_FALSE(b.supports(Scenario::from_mu({1.5, 1.0, 0.5})));
  // A single process has no recovery lines to detect.
  EXPECT_FALSE(b.supports(Scenario::symmetric(1, 1.0, 1.0)));
}

TEST(ExactLineBackendTest, MatchesDirectSimulatorBitwise) {
  const Scenario s = line_scenario();
  const ResultSet r = exact_line_backend().evaluate(s);

  // The paired analytic column is the LUMPED chain's E[X] even at sizes
  // where the full chain exists (the analytic backend would promote the
  // full-chain number at n = 3, which is close but not the comparison the
  // ablation makes).
  SymmetricAsyncModel model(3, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.value("model_interval_analytic"), model.mean_interval());

  AsyncRbSimulator sim(s.params(), s.seed());
  const ExactLineResult direct = sim.run_exact(s.samples());
  EXPECT_DOUBLE_EQ(r.value("model_interval"), direct.model_interval.mean());
  EXPECT_DOUBLE_EQ(r.value("any_advance"), direct.any_advance.mean());
  EXPECT_DOUBLE_EQ(r.value("full_refresh"), direct.full_refresh.mean());
  EXPECT_EQ(r.metric("any_advance").count, direct.any_advance.count());
  EXPECT_DOUBLE_EQ(
      r.value("line_conservatism"),
      direct.model_interval.mean() / direct.any_advance.mean());

  // All-ones absorption waits for every process; any pairwise advance can
  // only come sooner, so the conservatism ratio is >= 1.
  EXPECT_GE(r.value("line_conservatism"), 1.0);
  EXPECT_EQ(exact_line_backend().evaluate(s), r);
}

TEST(HybridSchemeBackendTest, SupportsGating) {
  const EvalBackend& b = hybrid_scheme_backend();
  EXPECT_TRUE(b.supports(hybrid_scenario()));
  // No sync period -> no hybrid cap to measure.
  EXPECT_FALSE(b.supports(Scenario(hybrid_scenario()).prp_sync_period(0.0)));
  // The PRP simulator runs to a failure count; errors must be injected.
  EXPECT_FALSE(b.supports(Scenario(hybrid_scenario()).error_rate(0.0)));
  EXPECT_FALSE(
      b.supports(Scenario(hybrid_scenario()).scheme(SchemeKind::kAsynchronous)));
}

TEST(HybridSchemeBackendTest, MatchesDirectModelsAndSimulatorBitwise) {
  const Scenario s = hybrid_scenario();
  const ResultSet r = hybrid_scheme_backend().evaluate(s);

  AsyncRbModel async(s.params());
  SyncRbModel sync(s.params().mu());
  PrpModel prp(s.params(), s.t_record());
  EXPECT_DOUBLE_EQ(r.value("async_mean_interval"), async.mean_interval());
  EXPECT_DOUBLE_EQ(r.value("async_mean_line_age"), async.mean_line_age());
  EXPECT_DOUBLE_EQ(r.value("prp_mean_rollback_bound"),
                   prp.mean_rollback_bound());
  EXPECT_DOUBLE_EQ(r.value("sync_commit_loss"), sync.mean_loss());

  PrpSimulator sim(s.params(), s.prp_sim_params(), s.seed());
  const PrpSimResult direct = sim.run(s.samples());
  EXPECT_DOUBLE_EQ(r.value("hybrid_distance"), direct.hybrid_distance.mean());
  EXPECT_DOUBLE_EQ(r.value("hybrid_distance_p95"),
                   direct.hybrid_distance.quantile(0.95));
  EXPECT_DOUBLE_EQ(r.value("hybrid_distance_max"),
                   direct.hybrid_distance.max());
  EXPECT_EQ(r.value("failures"), static_cast<double>(direct.failures));
  EXPECT_EQ(r.value("hybrid_sync_restores"),
            static_cast<double>(direct.hybrid_sync_restores));
  EXPECT_EQ(r.value("sync_lines_established"),
            static_cast<double>(direct.sync_lines_established));
  EXPECT_DOUBLE_EQ(r.value("hybrid_sync_loss_rate"),
                   static_cast<double>(direct.sync_lines_established) /
                       direct.horizon * sync.mean_loss());
  EXPECT_DOUBLE_EQ(r.value("prp_distance"), direct.prp_distance.mean());
  EXPECT_DOUBLE_EQ(r.value("horizon"), direct.horizon);

  // The sync cap can only shorten rollback relative to pure PRP chasing.
  EXPECT_LE(r.value("hybrid_distance"), r.value("prp_distance"));
  EXPECT_EQ(hybrid_scheme_backend().evaluate(s), r);
}

TEST(AblationBackendsTest, RunThroughEvalPlans) {
  // The whole point of registering them: a serialized plan can carry the
  // ablation evaluations to a worker with no access to bench closures.
  wire::Writer w;
  plan_for(exact_line_backend()).encode(w);
  wire::Reader rd(w.data());
  const EvalPlan plan = EvalPlan::decode(rd);
  const ResultSet via_plan = evaluate_plan(plan, line_scenario());
  EXPECT_EQ(via_plan, exact_line_backend().evaluate(line_scenario()));

  const ResultSet hybrid = evaluate_plan(
      EvalPlan{{EvalStep{"hybrid", ""}}}, hybrid_scenario());
  EXPECT_TRUE(hybrid.has("hybrid_distance"));
}

}  // namespace
}  // namespace rbx
