#include "core/experiment.h"

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(ExperimentOptions, Defaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const auto opts = ExperimentOptions::parse(1, argv, 5000, 7);
  EXPECT_EQ(opts.samples, 5000u);
  EXPECT_EQ(opts.nmax, 7u);
  EXPECT_EQ(opts.threads, 0u);  // 0 = hardware concurrency in SweepEngine
}

TEST(ExperimentOptions, ParsesFlags) {
  char prog[] = "bench";
  char a1[] = "--samples=123";
  char a2[] = "--nmax=4";
  char a3[] = "--seed=99";
  char a4[] = "--threads=16";
  char* argv[] = {prog, a1, a2, a3, a4};
  const auto opts = ExperimentOptions::parse(5, argv, 5000, 7);
  EXPECT_EQ(opts.samples, 123u);
  EXPECT_EQ(opts.nmax, 4u);
  EXPECT_EQ(opts.seed, 99u);
  EXPECT_EQ(opts.threads, 16u);
}

TEST(ExperimentOptions, ZeroValuesFallBackToDefaults) {
  char prog[] = "bench";
  char a1[] = "--samples=0";
  char* argv[] = {prog, a1};
  const auto opts = ExperimentOptions::parse(2, argv, 5000, 7);
  EXPECT_EQ(opts.samples, 5000u);
}

TEST(ExperimentOptionsDeathTest, RejectsUnknownFlag) {
  char prog[] = "bench";
  char a1[] = "--whatever=3";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(ExperimentOptionsDeathTest, RejectsMalformedNumber) {
  char prog[] = "bench";
  char a1[] = "--samples=12abc";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsNegativeValue) {
  char prog[] = "bench";
  char a1[] = "--nmax=-4";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsWhitespacePaddedNegative) {
  // strtoull would skip the space and wrap -5 to a huge uint64; the parser
  // must not let it.
  char prog[] = "bench";
  char a1[] = "--samples= -5";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsEmptyValue) {
  char prog[] = "bench";
  char a1[] = "--seed=";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsZeroThreads) {
  char prog[] = "bench";
  char a1[] = "--threads=0";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "thread count");
}

TEST(ExperimentOptions, ParsesWorkersShardAndMerge) {
  char prog[] = "bench";
  char a1[] = "--workers=4";
  char a2[] = "--shard=1/3";
  char a3[] = "--shard-out=partial.rbxw";
  char* argv[] = {prog, a1, a2, a3};
  const auto opts = ExperimentOptions::parse(4, argv, 5000, 7);
  EXPECT_EQ(opts.workers, 4u);
  EXPECT_EQ(opts.shard.index, 1u);
  EXPECT_EQ(opts.shard.count, 3u);
  EXPECT_TRUE(opts.shard.active());
  EXPECT_EQ(opts.shard_out, "partial.rbxw");
  EXPECT_TRUE(opts.merge_inputs.empty());
}

TEST(ExperimentOptions, ShardOutDefaultsFromShardSpec) {
  char prog[] = "bench";
  char a1[] = "--shard=0/2";
  char* argv[] = {prog, a1};
  const auto opts = ExperimentOptions::parse(2, argv, 5000, 7);
  EXPECT_EQ(opts.shard_out, "shard-0-of-2.rbxw");
}

TEST(ExperimentOptions, AcceptsDegenerateOneWayShard) {
  // --shard=0/1 is a valid (if trivial) split: one shard owning every
  // cell.  It must still get a partial file path so the bench writes a
  // partial instead of silently running in normal mode.
  char prog[] = "bench";
  char a1[] = "--shard=0/1";
  char* argv[] = {prog, a1};
  const auto opts = ExperimentOptions::parse(2, argv, 5000, 7);
  EXPECT_EQ(opts.shard.index, 0u);
  EXPECT_EQ(opts.shard.count, 1u);
  EXPECT_EQ(opts.shard_out, "shard-0-of-1.rbxw");
}

TEST(ExperimentOptions, ParsesMergeFileList) {
  char prog[] = "bench";
  char a1[] = "--merge=a.rbxw,b.rbxw,c.rbxw";
  char* argv[] = {prog, a1};
  const auto opts = ExperimentOptions::parse(2, argv, 5000, 7);
  ASSERT_EQ(opts.merge_inputs.size(), 3u);
  EXPECT_EQ(opts.merge_inputs[0], "a.rbxw");
  EXPECT_EQ(opts.merge_inputs[1], "b.rbxw");
  EXPECT_EQ(opts.merge_inputs[2], "c.rbxw");
}

TEST(ExperimentOptionsDeathTest, RejectsZeroWorkers) {
  char prog[] = "bench";
  char a1[] = "--workers=0";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "worker count");
}

TEST(ExperimentOptionsDeathTest, RejectsNegativeWorkers) {
  char prog[] = "bench";
  char a1[] = "--workers=-1";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsShardIndexNotBelowCount) {
  char prog[] = "bench";
  char a1[] = "--shard=3/2";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "shard index must be < shard");
  char a2[] = "--shard=2/2";
  char* argv2[] = {prog, a2};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv2, 100, 2),
              ::testing::ExitedWithCode(2), "shard index must be < shard");
}

TEST(ExperimentOptionsDeathTest, RejectsMalformedShard) {
  char prog[] = "bench";
  const char* cases[] = {"--shard=0", "--shard=/2", "--shard=1/",
                         "--shard=a/2", "--shard=1/b", "--shard=-1/2",
                         "--shard=0/0", "--shard="};
  for (const char* bad : cases) {
    std::string owned(bad);
    char* argv[] = {prog, owned.data()};
    EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
                ::testing::ExitedWithCode(2), "bad argument")
        << bad;
  }
}

TEST(ExperimentOptionsDeathTest, RejectsMergeCombinedWithShard) {
  char prog[] = "bench";
  char a1[] = "--merge=a.rbxw,b.rbxw";
  char a2[] = "--shard=0/2";
  char* argv[] = {prog, a1, a2};
  EXPECT_EXIT(ExperimentOptions::parse(3, argv, 100, 2),
              ::testing::ExitedWithCode(2), "cannot combine");
}

TEST(ExperimentOptionsDeathTest, RejectsShardOutWithoutShard) {
  char prog[] = "bench";
  char a1[] = "--shard-out=f.rbxw";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "requires --shard");
}

TEST(ExperimentOptionsDeathTest, RejectsEmptyMergeEntries) {
  char prog[] = "bench";
  const char* cases[] = {"--merge=", "--merge=a,,b", "--merge=a,"};
  for (const char* bad : cases) {
    std::string owned(bad);
    char* argv[] = {prog, owned.data()};
    EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
                ::testing::ExitedWithCode(2), "bad argument")
        << bad;
  }
}

TEST(ExperimentOptions, ParsesBatchAndConnect) {
  char prog[] = "bench";
  char a1[] = "--batch=16";
  char a2[] = "--connect=hostA:4701,127.0.0.1:4702";
  char* argv[] = {prog, a1, a2};
  const auto opts = ExperimentOptions::parse(3, argv, 100, 2);
  EXPECT_EQ(opts.batch, 16u);
  ASSERT_EQ(opts.connect.size(), 2u);
  EXPECT_EQ(opts.connect[0].host, "hostA");
  EXPECT_EQ(opts.connect[0].port, 4701);
  EXPECT_EQ(opts.connect[1].host, "127.0.0.1");
  EXPECT_EQ(opts.connect[1].port, 4702);
}

TEST(ExperimentOptions, BatchZeroMeansAdaptive) {
  char prog[] = "bench";
  char a1[] = "--batch=0";
  char a2[] = "--workers=2";
  char* argv[] = {prog, a1, a2};
  const auto opts = ExperimentOptions::parse(3, argv, 100, 2);
  EXPECT_EQ(opts.batch, 0u);
}

TEST(ExperimentOptionsDeathTest, RejectsBatchWithoutWorkersOrConnect) {
  // --batch silently doing nothing on a threads-only run is exactly the
  // "typo'd flag" trap the strict parser exists to prevent.
  char prog[] = "bench";
  char a1[] = "--batch=16";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "only applies");
}

TEST(ExperimentOptionsDeathTest, RejectsNegativeBatch) {
  char prog[] = "bench";
  char a1[] = "--batch=-2";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsMalformedBatch) {
  char prog[] = "bench";
  char a1[] = "--batch=8x";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsConnectWithoutPort) {
  char prog[] = "bench";
  char a1[] = "--connect=hostA";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "host:port");
}

TEST(ExperimentOptionsDeathTest, RejectsConnectWithBadPort) {
  char prog[] = "bench";
  char a1[] = "--connect=hostA:0";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "1..65535");
}

TEST(ExperimentOptionsDeathTest, RejectsEmptyConnectEntry) {
  char prog[] = "bench";
  char a1[] = "--connect=hostA:1,";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "empty endpoint");
}

TEST(ExperimentOptions, ThreadsWorkersAndConnectComposeIntoOneHybridRun) {
  // The lane flags compose: one sweep can span in-process threads, forked
  // workers and remote daemons at once.
  char prog[] = "bench";
  char a1[] = "--threads=8";
  char a2[] = "--workers=4";
  char a3[] = "--connect=hostA:4701,hostB:4701";
  char a4[] = "--steal";
  char a5[] = "--batch=2";
  char* argv[] = {prog, a1, a2, a3, a4, a5};
  const auto opts = ExperimentOptions::parse(6, argv, 100, 2);
  EXPECT_EQ(opts.threads, 8u);
  EXPECT_TRUE(opts.threads_given);
  EXPECT_EQ(opts.workers, 4u);
  ASSERT_EQ(opts.connect.size(), 2u);
  EXPECT_TRUE(opts.steal);
  EXPECT_EQ(opts.batch, 2u);
}

TEST(ExperimentOptions, ThreadLaneOnlyWhenNamedAlongsideWorkerLanes) {
  // Without --threads, a --workers/--connect run gets no thread lane (the
  // pre-hybrid behavior); threads_given is how SweepRunner knows.
  char prog[] = "bench";
  char a1[] = "--workers=4";
  char* argv[] = {prog, a1};
  const auto opts = ExperimentOptions::parse(2, argv, 100, 2);
  EXPECT_FALSE(opts.threads_given);
  EXPECT_EQ(opts.threads, 0u);
}

TEST(ExperimentOptions, StealComposesWithWorkersAlone) {
  // --steal was once --connect-only; any worker lane now qualifies.
  char prog[] = "bench";
  char a1[] = "--workers=2";
  char a2[] = "--steal";
  char* argv[] = {prog, a1, a2};
  const auto opts = ExperimentOptions::parse(3, argv, 100, 2);
  EXPECT_TRUE(opts.steal);
}

TEST(ExperimentOptionsDeathTest, RejectsStealOnPureThreadsRun) {
  char prog[] = "bench";
  char a1[] = "--steal";
  char a2[] = "--threads=8";
  char* argv[] = {prog, a1, a2};
  EXPECT_EXIT(ExperimentOptions::parse(3, argv, 100, 2),
              ::testing::ExitedWithCode(2), "only applies");
}

TEST(ExperimentOptions, ParsesShardServe) {
  char prog[] = "bench";
  char a1[] = "--shard=0/2";
  char a2[] = "--shard-serve=4711";
  char* argv[] = {prog, a1, a2};
  const auto opts = ExperimentOptions::parse(3, argv, 100, 2);
  EXPECT_TRUE(opts.shard_mode);
  EXPECT_TRUE(opts.shard_serve);
  EXPECT_EQ(opts.shard_serve_port, 4711);
  // Serving replaces the partial file; no default path is invented.
  EXPECT_TRUE(opts.shard_out.empty());
}

TEST(ExperimentOptionsDeathTest, RejectsShardServeWithoutShard) {
  char prog[] = "bench";
  char a1[] = "--shard-serve=4711";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "requires --shard");
}

TEST(ExperimentOptionsDeathTest, RejectsShardServeCombinedWithShardOut) {
  char prog[] = "bench";
  char a1[] = "--shard=0/2";
  char a2[] = "--shard-out=f.rbxw";
  char a3[] = "--shard-serve=4711";
  char* argv[] = {prog, a1, a2, a3};
  EXPECT_EXIT(ExperimentOptions::parse(4, argv, 100, 2),
              ::testing::ExitedWithCode(2), "cannot combine");
}

TEST(ExperimentOptions, MergeAcceptsSocketSourcesAlongsideFiles) {
  // A merge source that parses as HOST:PORT is a socket to a
  // --shard-serve run; anything else stays a file path.
  char prog[] = "bench";
  char a1[] = "--merge=shard0.rbxw,127.0.0.1:4712";
  char* argv[] = {prog, a1};
  const auto opts = ExperimentOptions::parse(2, argv, 100, 2);
  ASSERT_EQ(opts.merge_inputs.size(), 2u);
  EXPECT_EQ(opts.merge_inputs[0], "shard0.rbxw");
  EXPECT_EQ(opts.merge_inputs[1], "127.0.0.1:4712");
}

TEST(ExperimentOptions, JournalFlagsParse) {
  char prog[] = "bench";
  char a1[] = "--journal=sweep.rbxj";
  char* argv[] = {prog, a1};
  const auto opts = ExperimentOptions::parse(2, argv, 100, 2);
  EXPECT_EQ(opts.journal, "sweep.rbxj");
  EXPECT_TRUE(opts.resume.empty());
  EXPECT_FALSE(opts.no_cache);
}

TEST(ExperimentOptions, JournalAndResumeAreMutuallyExclusive) {
  char prog[] = "bench";
  char a1[] = "--journal=a.rbxj";
  char a2[] = "--resume=b.rbxj";
  char* argv[] = {prog, a1, a2};
  EXPECT_EXIT(ExperimentOptions::parse(3, argv, 100, 2),
              ::testing::ExitedWithCode(2), "pick one");
}

TEST(ExperimentOptions, ResumeRejectsMerge) {
  // --merge evaluates nothing, so journaling or resuming it is a user
  // error, refused up front with exit 2.
  char prog[] = "bench";
  char a1[] = "--resume=a.rbxj";
  char a2[] = "--merge=x.rbxw";
  char* argv[] = {prog, a1, a2};
  EXPECT_EXIT(ExperimentOptions::parse(3, argv, 100, 2),
              ::testing::ExitedWithCode(2), "nothing to");
}

TEST(ExperimentOptions, JournalRejectsShard) {
  char prog[] = "bench";
  char a1[] = "--journal=a.rbxj";
  char a2[] = "--shard=0/2";
  char* argv[] = {prog, a1, a2};
  EXPECT_EXIT(ExperimentOptions::parse(3, argv, 100, 2),
              ::testing::ExitedWithCode(2), "whole sweeps");
}

TEST(ExperimentOptions, NoCacheRequiresConnect) {
  char prog[] = "bench";
  char a1[] = "--no-cache";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "--connect or --fleet runs");
}

TEST(ExperimentOptions, EmptyJournalPathRefused) {
  char prog[] = "bench";
  char a1[] = "--resume=";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "journal file path");
}

TEST(Formatting, CiString) {
  EXPECT_EQ(fmt_ci(1.2345, 0.01, 2), "1.23 +- 0.01");
}

TEST(Formatting, Deviation) {
  EXPECT_EQ(fmt_dev(110.0, 100.0), "+10.00%");
  EXPECT_EQ(fmt_dev(95.0, 100.0), "-5.00%");
  EXPECT_EQ(fmt_dev(1.0, 0.0), "n/a");
}

}  // namespace
}  // namespace rbx
