#include "core/experiment.h"

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(ExperimentOptions, Defaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const auto opts = ExperimentOptions::parse(1, argv, 5000, 7);
  EXPECT_EQ(opts.samples, 5000u);
  EXPECT_EQ(opts.nmax, 7u);
}

TEST(ExperimentOptions, ParsesFlags) {
  char prog[] = "bench";
  char a1[] = "--samples=123";
  char a2[] = "--nmax=4";
  char a3[] = "--seed=99";
  char* argv[] = {prog, a1, a2, a3};
  const auto opts = ExperimentOptions::parse(4, argv, 5000, 7);
  EXPECT_EQ(opts.samples, 123u);
  EXPECT_EQ(opts.nmax, 4u);
  EXPECT_EQ(opts.seed, 99u);
}

TEST(ExperimentOptions, ZeroValuesFallBackToDefaults) {
  char prog[] = "bench";
  char a1[] = "--samples=0";
  char* argv[] = {prog, a1};
  const auto opts = ExperimentOptions::parse(2, argv, 5000, 7);
  EXPECT_EQ(opts.samples, 5000u);
}

TEST(ExperimentOptions, IgnoresUnknownFlags) {
  char prog[] = "bench";
  char a1[] = "--whatever=3";
  char* argv[] = {prog, a1};
  const auto opts = ExperimentOptions::parse(2, argv, 100, 2);
  EXPECT_EQ(opts.samples, 100u);
}

TEST(Formatting, CiString) {
  EXPECT_EQ(fmt_ci(1.2345, 0.01, 2), "1.23 +- 0.01");
}

TEST(Formatting, Deviation) {
  EXPECT_EQ(fmt_dev(110.0, 100.0), "+10.00%");
  EXPECT_EQ(fmt_dev(95.0, 100.0), "-5.00%");
  EXPECT_EQ(fmt_dev(1.0, 0.0), "n/a");
}

}  // namespace
}  // namespace rbx
