#include "core/experiment.h"

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(ExperimentOptions, Defaults) {
  char prog[] = "bench";
  char* argv[] = {prog};
  const auto opts = ExperimentOptions::parse(1, argv, 5000, 7);
  EXPECT_EQ(opts.samples, 5000u);
  EXPECT_EQ(opts.nmax, 7u);
  EXPECT_EQ(opts.threads, 0u);  // 0 = hardware concurrency in SweepEngine
}

TEST(ExperimentOptions, ParsesFlags) {
  char prog[] = "bench";
  char a1[] = "--samples=123";
  char a2[] = "--nmax=4";
  char a3[] = "--seed=99";
  char a4[] = "--threads=16";
  char* argv[] = {prog, a1, a2, a3, a4};
  const auto opts = ExperimentOptions::parse(5, argv, 5000, 7);
  EXPECT_EQ(opts.samples, 123u);
  EXPECT_EQ(opts.nmax, 4u);
  EXPECT_EQ(opts.seed, 99u);
  EXPECT_EQ(opts.threads, 16u);
}

TEST(ExperimentOptions, ZeroValuesFallBackToDefaults) {
  char prog[] = "bench";
  char a1[] = "--samples=0";
  char* argv[] = {prog, a1};
  const auto opts = ExperimentOptions::parse(2, argv, 5000, 7);
  EXPECT_EQ(opts.samples, 5000u);
}

TEST(ExperimentOptionsDeathTest, RejectsUnknownFlag) {
  char prog[] = "bench";
  char a1[] = "--whatever=3";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(ExperimentOptionsDeathTest, RejectsMalformedNumber) {
  char prog[] = "bench";
  char a1[] = "--samples=12abc";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsNegativeValue) {
  char prog[] = "bench";
  char a1[] = "--nmax=-4";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsWhitespacePaddedNegative) {
  // strtoull would skip the space and wrap -5 to a huge uint64; the parser
  // must not let it.
  char prog[] = "bench";
  char a1[] = "--samples= -5";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsEmptyValue) {
  char prog[] = "bench";
  char a1[] = "--seed=";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "non-negative integer");
}

TEST(ExperimentOptionsDeathTest, RejectsZeroThreads) {
  char prog[] = "bench";
  char a1[] = "--threads=0";
  char* argv[] = {prog, a1};
  EXPECT_EXIT(ExperimentOptions::parse(2, argv, 100, 2),
              ::testing::ExitedWithCode(2), "thread count");
}

TEST(Formatting, CiString) {
  EXPECT_EQ(fmt_ci(1.2345, 0.01, 2), "1.23 +- 0.01");
}

TEST(Formatting, Deviation) {
  EXPECT_EQ(fmt_dev(110.0, 100.0), "+10.00%");
  EXPECT_EQ(fmt_dev(95.0, 100.0), "-5.00%");
  EXPECT_EQ(fmt_dev(1.0, 0.0), "n/a");
}

}  // namespace
}  // namespace rbx
