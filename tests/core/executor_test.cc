// The executor determinism contract: the same expanded grid produces
// bitwise-identical results on 1 thread, N threads, M forked worker
// processes, and a sharded-then-merged split - plus the failure semantics
// (throwing cell_fn -> per-cell error; crashed worker -> per-cell error,
// not a hung sweep).
#include "core/executor.h"

#include <unistd.h>

#include <stdexcept>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/sweep.h"

namespace rbx {
namespace {

std::vector<Scenario> mc_grid(std::uint64_t master_seed) {
  const auto apply_n = [](Scenario& s, double n) {
    s.params(ProcessSetParams::symmetric(static_cast<std::size_t>(n), 1.0,
                                         1.0));
  };
  return SweepGrid(Scenario::symmetric(2, 1.0, 1.0).samples(300))
      .axis({2, 3, 4}, apply_n)
      .schemes({SchemeKind::kAsynchronous, SchemeKind::kSynchronized})
      .expand(master_seed);
}

CellFn backend_fn() {
  return [](const Scenario& s, std::size_t) {
    return monte_carlo_backend().evaluate(s);
  };
}

std::vector<ResultSet> results_of(const std::vector<CellOutcome>& outcomes) {
  std::vector<ResultSet> out;
  for (const CellOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok()) << outcome.error;
    out.push_back(outcome.result);
  }
  return out;
}

TEST(ExecutorDeterminism, AllExecutionModesAreBitwiseIdentical) {
  const std::vector<Scenario> cells = mc_grid(17);
  const CellFn fn = backend_fn();

  const auto serial = results_of(InProcessExecutor({1}).run(cells, fn));
  const auto threaded = results_of(InProcessExecutor({8}).run(cells, fn));
  const auto forked =
      results_of(MultiProcessExecutor({4, 1}).run(cells, fn));

  // Sharded: evaluate each half independently, then merge.
  std::vector<ShardPartial> partials;
  for (std::size_t shard_index = 0; shard_index < 2; ++shard_index) {
    const ShardSpec spec{shard_index, 2};
    const std::vector<std::size_t> owned =
        shard_cell_indices(cells.size(), spec);
    std::vector<Scenario> owned_cells;
    for (std::size_t index : owned) {
      owned_cells.push_back(cells[index]);
    }
    const auto outcomes = InProcessExecutor({2}).run(
        owned_cells, [&](const Scenario& cell, std::size_t local) {
          return fn(cell, owned[local]);
        });
    ShardPartial partial;
    partial.shard = spec;
    partial.total_cells = cells.size();
    for (std::size_t k = 0; k < owned.size(); ++k) {
      EXPECT_TRUE(outcomes[k].ok());
      partial.results.emplace_back(owned[k], outcomes[k].result);
    }
    partials.push_back(std::move(partial));
  }
  const std::vector<ResultSet> merged = merge_shard_partials(partials);

  ASSERT_EQ(serial.size(), cells.size());
  ASSERT_EQ(threaded.size(), cells.size());
  ASSERT_EQ(forked.size(), cells.size());
  ASSERT_EQ(merged.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "threaded cell " << i;
    EXPECT_EQ(serial[i], forked[i]) << "forked cell " << i;
    EXPECT_EQ(serial[i], merged[i]) << "merged cell " << i;
  }
}

TEST(ExecutorDeterminism, ShardPartialSurvivesTheWire) {
  // The partial actually exchanged between hosts goes through encode() ->
  // frame -> decode(); pin that path, not just the in-memory merge.
  const std::vector<Scenario> cells = mc_grid(23);
  const CellFn fn = backend_fn();
  const auto reference = results_of(InProcessExecutor({1}).run(cells, fn));

  std::vector<ShardPartial> partials;
  for (std::size_t shard_index = 0; shard_index < 3; ++shard_index) {
    const ShardSpec spec{shard_index, 3};
    ShardPartial partial;
    partial.shard = spec;
    partial.total_cells = cells.size();
    for (std::size_t index : shard_cell_indices(cells.size(), spec)) {
      partial.results.emplace_back(index, reference[index]);
    }
    wire::Writer w;
    partial.encode(w);
    const std::vector<std::byte> frame =
        wire::seal_frame(kFrameShardPartial, w.data());
    wire::Frame parsed;
    std::size_t consumed = 0;
    ASSERT_TRUE(
        wire::parse_frame(frame.data(), frame.size(), &parsed, &consumed));
    ASSERT_EQ(parsed.type, kFrameShardPartial);
    wire::Reader r(parsed.payload);
    partials.push_back(ShardPartial::decode(r));
    r.expect_done();
  }
  const std::vector<ResultSet> merged = merge_shard_partials(partials);
  ASSERT_EQ(merged.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(merged[i], reference[i]) << "cell " << i;
  }
}

TEST(InProcessExecutorTest, EmptyCellsAndThreadsExceedingCells) {
  const CellFn fn = [](const Scenario& s, std::size_t i) {
    ResultSet out("test", s.label());
    out.set("index", static_cast<double>(i));
    return out;
  };
  EXPECT_TRUE(InProcessExecutor({4}).run({}, fn).empty());

  // Far more threads than cells: must not spawn idle threads or lose
  // cells; outcomes stay in input order.
  const std::vector<Scenario> cells(3, Scenario::symmetric(2, 1.0, 1.0));
  const auto outcomes = InProcessExecutor({64}).run(cells, fn);
  ASSERT_EQ(outcomes.size(), 3u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok());
    EXPECT_DOUBLE_EQ(outcomes[i].result.value("index"),
                     static_cast<double>(i));
  }
}

TEST(InProcessExecutorTest, ThrowingCellBecomesPerCellError) {
  const std::vector<Scenario> cells(4, Scenario::symmetric(2, 1.0, 1.0));
  const auto outcomes = InProcessExecutor({2}).run(
      cells, [](const Scenario& s, std::size_t i) {
        if (i == 2) {
          throw std::runtime_error("synthetic cell failure");
        }
        ResultSet out("test", s.label());
        out.set("ok", 1.0);
        return out;
      });
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i == 2) {
      EXPECT_FALSE(outcomes[i].ok());
      EXPECT_EQ(outcomes[i].error, "synthetic cell failure");
    } else {
      EXPECT_TRUE(outcomes[i].ok());
    }
  }
}

TEST(SweepEngineTest, ThrowingCellFnRethrowsOnCaller) {
  // Pre-refactor, a throw on a pool thread called std::terminate; now the
  // first failing cell's error is rethrown on the calling thread.
  const std::vector<Scenario> cells(6, Scenario::symmetric(2, 1.0, 1.0));
  try {
    SweepEngine({3}).run(cells, [](const Scenario&, std::size_t i) {
      if (i == 4) {
        throw std::runtime_error("boom");
      }
      return ResultSet("test", "cell");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cell 4"), std::string::npos) << what;
    EXPECT_NE(what.find("boom"), std::string::npos) << what;
  }
}

TEST(MultiProcessExecutorTest, ThrowingCellBecomesPerCellError) {
  const std::vector<Scenario> cells(4, Scenario::symmetric(2, 1.0, 1.0));
  const auto outcomes = MultiProcessExecutor({2, 1}).run(
      cells, [](const Scenario& s, std::size_t i) {
        if (i == 1) {
          throw std::runtime_error("worker-side failure");
        }
        ResultSet out("test", s.label());
        out.set("index", static_cast<double>(i));
        return out;
      });
  ASSERT_EQ(outcomes.size(), 4u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i == 1) {
      EXPECT_FALSE(outcomes[i].ok());
      EXPECT_EQ(outcomes[i].error, "worker-side failure");
    } else {
      EXPECT_TRUE(outcomes[i].ok()) << outcomes[i].error;
      EXPECT_DOUBLE_EQ(outcomes[i].result.value("index"),
                       static_cast<double>(i));
    }
  }
}

TEST(MultiProcessExecutorTest, PoisonousCellFailsAfterKillingTwoWorkers) {
  // A cell that kills its worker process outright (not an exception).
  // The dispatch core respawns the crashed worker and re-runs the cell
  // once; when the rerun kills a worker too, the cell is declared
  // poisonous and becomes a per-cell error.  Every other cell still
  // evaluates - the sweep never hangs, never dies, and the pool never
  // shrinks.
  const std::vector<Scenario> cells(8, Scenario::symmetric(2, 1.0, 1.0));
  const auto outcomes = MultiProcessExecutor({2, 1}).run(
      cells, [](const Scenario& s, std::size_t i) {
        if (i == 3) {
          ::_exit(42);  // simulated crash (e.g. a fatal RBX_CHECK)
        }
        ResultSet out("test", s.label());
        out.set("index", static_cast<double>(i));
        return out;
      });
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_FALSE(outcomes[3].ok());
  EXPECT_NE(outcomes[3].error.find("two lost workers"), std::string::npos)
      << outcomes[3].error;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i == 3) {
      continue;
    }
    EXPECT_TRUE(outcomes[i].ok()) << "cell " << i << ": "
                                  << outcomes[i].error;
    EXPECT_DOUBLE_EQ(outcomes[i].result.value("index"),
                     static_cast<double>(i));
  }
}

TEST(MultiProcessExecutorTest, EmptyCellsAndWorkerClamp) {
  const CellFn fn = backend_fn();
  EXPECT_TRUE(MultiProcessExecutor({4, 2}).run({}, fn).empty());
  // One cell, many workers: clamps to one batch/one worker.
  const std::vector<Scenario> cells(1, Scenario::symmetric(2, 1.0, 1.0));
  const auto outcomes = MultiProcessExecutor({8, 0}).run(
      cells, [](const Scenario& s, std::size_t) {
        ResultSet out("test", s.label());
        out.set("x", 1.0);
        return out;
      });
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_TRUE(outcomes[0].ok());
}

TEST(ApplyResultBatchTest, CommittedMaskIgnoresLateDuplicates) {
  // Work stealing can put one cell in flight on two workers; the first
  // answer must win and the loser's duplicate must be ignored without
  // tripping the strict batch checks.
  const auto entry = [](std::uint64_t index, double value) {
    ResultSet r("test", "cell");
    r.set("x", value);
    CellOutcome outcome;
    outcome.result = std::move(r);
    return ResultBatch::Entry{index, std::move(outcome)};
  };

  std::vector<CellOutcome> outcomes(3);
  std::vector<std::uint8_t> committed(3, 0);

  ResultBatch first;  // the thief answers cells 1 and 2
  first.entries.push_back(entry(1, 10.0));
  first.entries.push_back(entry(2, 20.0));
  EXPECT_EQ(apply_result_batch(first, {1, 2}, outcomes, &committed), 2u);
  EXPECT_EQ(outcomes[1].result.value("x"), 10.0);

  ResultBatch late;  // the straggler answers its whole batch {0, 1} later
  late.entries.push_back(entry(0, 5.0));
  late.entries.push_back(entry(1, 99.0));  // duplicate of a stolen cell
  EXPECT_EQ(apply_result_batch(late, {0, 1}, outcomes, &committed), 1u);
  EXPECT_EQ(outcomes[0].result.value("x"), 5.0);
  // The first answer stuck (in reality both are bitwise identical; the
  // sentinel value just proves the duplicate was dropped, not applied).
  EXPECT_EQ(outcomes[1].result.value("x"), 10.0);

  // The strict contract still holds under the mask: a short or foreign
  // answer is a protocol violation even when some cells are committed.
  ResultBatch shorting;
  shorting.entries.push_back(entry(1, 1.0));
  EXPECT_THROW(apply_result_batch(shorting, {1, 2}, outcomes, &committed),
               wire::Error);
  ResultBatch foreign;
  foreign.entries.push_back(entry(7, 1.0));
  EXPECT_THROW(apply_result_batch(foreign, {1}, outcomes, &committed),
               wire::Error);
}

TEST(ShardSpecTest, PartitionIsDisjointAndComplete) {
  const std::size_t total = 23;
  for (std::size_t count : {1u, 2u, 3u, 5u, 23u, 31u}) {
    std::vector<bool> seen(total, false);
    for (std::size_t index = 0; index < count; ++index) {
      for (std::size_t cell :
           shard_cell_indices(total, ShardSpec{index, count})) {
        ASSERT_LT(cell, total);
        EXPECT_FALSE(seen[cell]) << "cell " << cell << " owned twice";
        seen[cell] = true;
        EXPECT_TRUE((ShardSpec{index, count}.owns(cell)));
      }
    }
    for (std::size_t cell = 0; cell < total; ++cell) {
      EXPECT_TRUE(seen[cell]) << "cell " << cell << " unowned at k = "
                              << count;
    }
  }
}

TEST(ShardMergeTest, RejectsInconsistentPartials) {
  ResultSet r("test", "cell");
  r.set("x", 1.0);
  const auto make_partial = [&](std::size_t index, std::size_t count,
                                std::size_t total) {
    ShardPartial p;
    p.shard = ShardSpec{index, count};
    p.total_cells = total;
    for (std::size_t cell : shard_cell_indices(total, p.shard)) {
      p.results.emplace_back(cell, r);
    }
    return p;
  };

  // Missing shard.
  EXPECT_THROW(merge_shard_partials({make_partial(0, 2, 4)}), wire::Error);
  // Duplicate shard.
  EXPECT_THROW(
      merge_shard_partials({make_partial(0, 2, 4), make_partial(0, 2, 4)}),
      wire::Error);
  // Disagreeing grid sizes.
  EXPECT_THROW(
      merge_shard_partials({make_partial(0, 2, 4), make_partial(1, 2, 6)}),
      wire::Error);
  // Missing cell inside an otherwise consistent split.
  ShardPartial incomplete = make_partial(1, 2, 4);
  incomplete.results.pop_back();
  EXPECT_THROW(merge_shard_partials({make_partial(0, 2, 4), incomplete}),
               wire::Error);
  // Partials from differently-parameterized runs (e.g. mismatched
  // --samples or --seed) carry different grid fingerprints and must not
  // merge into silently wrong tables.
  ShardPartial foreign = make_partial(1, 2, 4);
  foreign.fingerprint = 0xdeadbeefULL;
  try {
    merge_shard_partials({make_partial(0, 2, 4), foreign});
    FAIL() << "expected wire::Error";
  } catch (const wire::Error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos);
  }
  // The happy path for contrast.
  const auto merged =
      merge_shard_partials({make_partial(0, 2, 4), make_partial(1, 2, 4)});
  EXPECT_EQ(merged.size(), 4u);
}

TEST(PartialMergerTest, StreamsPartialsInAnyOrderAndRejectsStragglers) {
  ResultSet r("test", "cell");
  r.set("x", 2.0);
  const auto make_partial = [&](std::size_t index, std::size_t count,
                                std::size_t total) {
    ShardPartial p;
    p.shard = ShardSpec{index, count};
    p.total_cells = total;
    p.fingerprint = 99;
    for (std::size_t cell : shard_cell_indices(total, p.shard)) {
      p.results.emplace_back(cell, r);
    }
    return p;
  };

  PartialMerger merger(7, 3, 99);
  EXPECT_FALSE(merger.complete());
  // Arrival order is whatever the network gives us, not shard order.
  merger.apply(make_partial(2, 3, 7));
  EXPECT_EQ(merger.applied_shards(), 1u);
  EXPECT_THROW(merger.take(), wire::Error);  // cells still missing
  merger.apply(make_partial(0, 3, 7));
  // A duplicate or foreign partial is rejected without corrupting the
  // merge already accumulated.
  EXPECT_THROW(merger.apply(make_partial(0, 3, 7)), wire::Error);
  EXPECT_THROW(merger.apply(make_partial(1, 2, 7)), wire::Error);
  ShardPartial wrong_fingerprint = make_partial(1, 3, 7);
  wrong_fingerprint.fingerprint = 100;
  EXPECT_THROW(merger.apply(wrong_fingerprint), wire::Error);
  EXPECT_FALSE(merger.complete());
  merger.apply(make_partial(1, 3, 7));
  EXPECT_TRUE(merger.complete());
  const std::vector<ResultSet> merged = merger.take();
  ASSERT_EQ(merged.size(), 7u);
  for (const ResultSet& cell : merged) {
    EXPECT_EQ(cell, r);
  }
}

TEST(ShardPartialTest, CorruptTotalCellsRejectedAtDecode) {
  // A flipped byte in the total_cells field must fail in decode with a
  // wire::Error, not as a gigantic allocation inside the merge.
  ResultSet r0("test", "cell");
  r0.set("x", 1.0);
  ShardPartial partial;
  partial.shard = ShardSpec{0, 2};
  partial.total_cells = 4;
  partial.results.emplace_back(0, r0);
  partial.results.emplace_back(2, r0);
  wire::Writer w;
  partial.encode(w);
  std::vector<std::byte> bytes = w.data();
  // total_cells is the third u64 of the payload (after index and count).
  bytes[16] = static_cast<std::byte>(0xff);
  bytes[22] = static_cast<std::byte>(0x7f);
  wire::Reader reader(bytes);
  try {
    ShardPartial::decode(reader);
    FAIL() << "expected wire::Error";
  } catch (const wire::Error& e) {
    EXPECT_NE(std::string(e.what()).find("do not match the declared grid"),
              std::string::npos)
        << e.what();
  }
}

TEST(GridFingerprintTest, SensitiveToEveryExperimentKnob) {
  const std::vector<Scenario> base = mc_grid(17);
  const std::uint64_t reference = grid_fingerprint(base);
  EXPECT_EQ(grid_fingerprint(mc_grid(17)), reference);  // deterministic
  // A different master seed, sample budget or grid size must all change
  // the fingerprint - that is what stops mismatched shards merging.
  EXPECT_NE(grid_fingerprint(mc_grid(18)), reference);
  std::vector<Scenario> fewer_samples = mc_grid(17);
  for (Scenario& cell : fewer_samples) {
    cell.samples(cell.samples() / 2);
  }
  EXPECT_NE(grid_fingerprint(fewer_samples), reference);
  std::vector<Scenario> shorter(base.begin(), base.end() - 1);
  EXPECT_NE(grid_fingerprint(shorter), reference);
}

}  // namespace
}  // namespace rbx
