// Cross-mode identity for the newly registered ablation backends: the
// same EvalPlans the ported benches ship must come back bitwise equal
// whether the cells run on the calling thread, on an 8-thread lane, or
// in forked worker processes (a full wire round-trip per cell).  The
// fork lane is the load-bearing case - it proves prp_sync_period,
// scoped_prp and the SyncPolicy fields survive the Scenario codec, which
// is exactly what --workers/--connect rely on.
#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/dispatch.h"
#include "core/executor.h"
#include "core/lane.h"

namespace rbx {
namespace {

// The ported benches' cell shapes, scaled down for test budgets.
std::vector<Scenario> ablation_cells() {
  std::vector<Scenario> cells;
  for (std::size_t n = 2; n <= 4; ++n) {
    cells.push_back(
        Scenario::symmetric(n, 1.0, 1.0).seed(100 + n).samples(300));
  }
  cells.push_back(Scenario::symmetric(3, 0.4, 3.0)
                      .scheme(SchemeKind::kPseudoRecoveryPoints)
                      .t_record(1e-4)
                      .error_rate(0.25)
                      .prp_sync_period(2.0)
                      .seed(20260610)
                      .samples(40));
  cells.push_back(Scenario::symmetric(5, 1.0, 1.0).seed(7));
  return cells;
}

// Per-cell plans: exact-line for the async cells, hybrid for the PRP
// cell, the structure inventory for the last (a plan mix in one sweep,
// like table1's analytic+mc plan).
EvalPlan plan_for_cell(const Scenario& s) {
  if (s.scheme() == SchemeKind::kPseudoRecoveryPoints) {
    return EvalPlan{{EvalStep{"hybrid", ""}}};
  }
  if (s.samples() == 0 || s.n() == 5) {
    return EvalPlan{{EvalStep{"markov-structure", ""}}};
  }
  return EvalPlan{{EvalStep{"line-exact", ""}}};
}

CellFn plan_fn() {
  return [](const Scenario& s, std::size_t) {
    return evaluate_plan(plan_for_cell(s), s);
  };
}

std::vector<ResultSet> direct_reference(const std::vector<Scenario>& cells) {
  std::vector<ResultSet> out;
  const CellFn fn = plan_fn();
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out.push_back(fn(cells[i], i));
  }
  return out;
}

void run_and_compare(std::vector<std::unique_ptr<Lane>> lanes) {
  const std::vector<Scenario> cells = ablation_cells();
  const std::vector<ResultSet> reference = direct_reference(cells);
  DispatchOptions options;
  options.quiet = true;
  HybridExecutor executor(std::move(lanes), options);
  const auto outcomes = executor.run(cells, plan_fn());
  ASSERT_EQ(outcomes.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << "cell " << i << ": "
                                  << outcomes[i].error;
    EXPECT_EQ(outcomes[i].result, reference[i]) << "cell " << i;
  }
}

TEST(AblationCrossModeTest, EightThreadsMatchDirectEvaluation) {
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.push_back(std::make_unique<ThreadLane>(8));
  run_and_compare(std::move(lanes));
}

TEST(AblationCrossModeTest, ForkedWorkersMatchDirectEvaluation) {
  // Four forked workers: every cell and result crosses the wire format,
  // so a lossy Scenario codec (e.g. a dropped prp_sync_period) would
  // break bitwise identity here before it broke a cluster run.
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.push_back(std::make_unique<ForkLane>(4));
  run_and_compare(std::move(lanes));
}

}  // namespace
}  // namespace rbx
