#include "core/backend.h"

#include <cmath>

#include <gtest/gtest.h>

#include "model/async_model.h"
#include "model/prp_model.h"
#include "model/sync_model.h"
#include "support/stats.h"

namespace rbx {
namespace {

TEST(BackendRegistry, NamesAndLookup) {
  EXPECT_EQ(analytic_backend().name(), "analytic");
  EXPECT_EQ(monte_carlo_backend().name(), "monte-carlo");
  EXPECT_EQ(runtime_backend().name(), "runtime");
  EXPECT_EQ(all_backends().size(), 9u);
  EXPECT_EQ(find_backend("analytic"), &analytic_backend());
  EXPECT_EQ(find_backend("monte-carlo"), &monte_carlo_backend());
  EXPECT_EQ(find_backend("runtime"), &runtime_backend());
  EXPECT_EQ(find_backend("density-analytic"), &density_analytic_backend());
  EXPECT_EQ(find_backend("density-mc"), &density_monte_carlo_backend());
  EXPECT_EQ(find_backend("line-exact"), &exact_line_backend());
  EXPECT_EQ(find_backend("hybrid"), &hybrid_scheme_backend());
  EXPECT_EQ(find_backend("markov-structure"), &markov_structure_backend());
  EXPECT_EQ(find_backend("micro-markov"), &markov_micro_backend());
  EXPECT_EQ(find_backend("no-such-backend"), nullptr);
  // Every registered name round-trips through the lookup.
  for (const EvalBackend* b : all_backends()) {
    EXPECT_EQ(find_backend(b->name()), b);
  }
}

TEST(AnalyticBackendTest, AsyncMatchesUnderlyingModel) {
  const auto params = ProcessSetParams::three(1.5, 1.0, 0.5, 1, 1, 1);
  const ResultSet r = analytic_backend().evaluate(Scenario(params));

  AsyncRbModel model(params);
  EXPECT_DOUBLE_EQ(r.value("mean_interval_x"), model.mean_interval());
  EXPECT_DOUBLE_EQ(r.value("stddev_interval_x"),
                   std::sqrt(model.variance_interval()));
  EXPECT_DOUBLE_EQ(r.value("mean_line_age"), model.mean_line_age());
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(r.value("rp_count_" + std::to_string(i + 1)),
                     model.expected_rp_count(i).wald);
  }
  // Analytic results carry no statistical uncertainty.
  EXPECT_TRUE(r.metric("mean_interval_x").exact());
}

// Ported from the retired Analyzer shim's test: the sync and PRP schemes
// report exactly the underlying Section 3 / Section 4 model quantities
// (the async scheme is pinned against AsyncRbModel above).
TEST(AnalyticBackendTest, SyncAndPrpMatchUnderlyingModels) {
  const auto params = ProcessSetParams::three(1.5, 1.0, 0.5, 1, 1, 1);
  const Scenario base = Scenario(params).t_record(0.01);
  const ResultSet s = analytic_backend().evaluate(
      Scenario(base).scheme(SchemeKind::kSynchronized));
  const ResultSet p = analytic_backend().evaluate(
      Scenario(base).scheme(SchemeKind::kPseudoRecoveryPoints));

  SyncRbModel sync(params.mu());
  EXPECT_DOUBLE_EQ(s.value("sync_mean_max_wait"), sync.mean_max_wait());
  EXPECT_DOUBLE_EQ(s.value("sync_mean_loss"), sync.mean_loss());

  PrpModel prp(params, 0.01);
  EXPECT_DOUBLE_EQ(p.value("prp_snapshots_per_rp"), 3.0);
  EXPECT_DOUBLE_EQ(p.value("prp_time_overhead_per_rp"),
                   prp.time_overhead_per_rp());
  EXPECT_DOUBLE_EQ(p.value("prp_mean_rollback_bound"),
                   prp.mean_rollback_bound());
}

TEST(AnalyticBackendTest, LumpedChainCoversLargeHomogeneousSystems) {
  // n = 20 is far beyond the 2^n + 1 state full chain; the lumped R1'-R4'
  // model covers it and promotes its numbers to the shared metric names.
  const Scenario s = Scenario::symmetric(20, 1.0, 0.1);
  EXPECT_TRUE(analytic_backend().supports(s));
  const ResultSet r = analytic_backend().evaluate(s);
  EXPECT_GT(r.value("mean_interval_x"), 0.0);
  EXPECT_DOUBLE_EQ(r.value("mean_interval_x"),
                   r.value("mean_interval_x_lumped"));

  // Homogeneous n in (7, 12] takes the same lumped-only path (the exact
  // lumping makes the O(8^n) full chain redundant there).
  const ResultSet mid =
      analytic_backend().evaluate(Scenario::symmetric(10, 1.0, 0.5));
  EXPECT_DOUBLE_EQ(mid.value("mean_interval_x"),
                   mid.value("mean_interval_x_lumped"));
  EXPECT_GT(mid.value("rp_count_10"), 0.0);

  // Heterogeneous rates at that size have no analytic representation.
  std::vector<double> mu(20, 1.0);
  mu[0] = 2.0;
  EXPECT_FALSE(analytic_backend().supports(Scenario::from_mu(mu)));
}

TEST(MonteCarloBackendTest, DeterministicForFixedSeed) {
  const Scenario s = Scenario::symmetric(3, 1.0, 1.0).samples(500).seed(7);
  const ResultSet a = monte_carlo_backend().evaluate(s);
  const ResultSet b = monte_carlo_backend().evaluate(s);
  EXPECT_EQ(a, b);
  const ResultSet c =
      monte_carlo_backend().evaluate(Scenario(s).seed(8));
  EXPECT_NE(a.value("mean_interval_x"), c.value("mean_interval_x"));
}

TEST(MonteCarloBackendTest, AgreesWithAnalyticOnSharedMetrics) {
  const Scenario s = Scenario::symmetric(3, 1.0, 1.0).samples(20000).seed(3);
  const ResultSet exact = analytic_backend().evaluate(s);
  const ResultSet mc = monte_carlo_backend().evaluate(s);
  EXPECT_LT(relative_error(mc.value("mean_interval_x"),
                           exact.value("mean_interval_x")),
            0.05);
  const Metric& m = mc.metric("mean_interval_x");
  EXPECT_EQ(m.count, 20000u);
  EXPECT_GT(m.half_width, 0.0);
}

TEST(MonteCarloBackendTest, SyncSchemeAgreesWithClosedForm) {
  const Scenario s = Scenario::from_mu({1.5, 1.0, 0.5})
                         .scheme(SchemeKind::kSynchronized)
                         .samples(20000)
                         .seed(5);
  const ResultSet exact = analytic_backend().evaluate(s);
  const ResultSet mc = monte_carlo_backend().evaluate(s);
  EXPECT_LT(relative_error(mc.value("sync_mean_max_wait"),
                           exact.value("sync_mean_max_wait")),
            0.05);
  EXPECT_LT(relative_error(mc.value("sync_mean_loss"),
                           exact.value("sync_mean_loss")),
            0.05);
}

TEST(MonteCarloBackendTest, PrpSchemeReportsPairedComparison) {
  const Scenario s = Scenario::symmetric(3, 1.0, 1.0)
                         .scheme(SchemeKind::kPseudoRecoveryPoints)
                         .t_record(1e-4)
                         .error_rate(0.25)
                         .samples(200)
                         .seed(5);
  EXPECT_TRUE(monte_carlo_backend().supports(s));
  EXPECT_FALSE(monte_carlo_backend().supports(Scenario(s).error_rate(0.0)));
  const ResultSet r = monte_carlo_backend().evaluate(s);
  EXPECT_EQ(r.value("failures"), 200.0);
  EXPECT_EQ(r.value("contaminated_restarts"), 0.0);
  EXPECT_GT(r.value("prp_distance"), 0.0);
  // PRPs bound rollback; plain asynchronous RBs pay at least as much on
  // the same failure histories.
  EXPECT_LE(r.value("prp_distance"), r.value("async_distance"));
}

TEST(RuntimeBackendTest, RunsAllSchemesWithVerifiedInvariants) {
  RuntimeWorkload w;
  w.steps = 120;
  for (SchemeKind scheme :
       {SchemeKind::kAsynchronous, SchemeKind::kSynchronized,
        SchemeKind::kPseudoRecoveryPoints}) {
    const ResultSet r = runtime_backend().evaluate(
        Scenario::symmetric(3, 1.0, 1.0)
            .scheme(scheme)
            .seed(9)
            .at_failure_probability(0.05)
            .workload(w));
    EXPECT_EQ(r.value("completed"), 1.0) << r.scenario();
    EXPECT_EQ(r.value("restore_verified"), 1.0) << r.scenario();
    EXPECT_EQ(r.value("line_consistency_verified"), 1.0) << r.scenario();
    EXPECT_EQ(r.value("fifo_violations"), 0.0) << r.scenario();
    EXPECT_GT(r.value("messages_sent"), 0.0) << r.scenario();
  }
}

TEST(ResultSetTest, MergeAndAccessors) {
  ResultSet a("analytic", "s");
  a.set("x", 1.0);
  ResultSet b("monte-carlo", "s");
  b.set("x", 1.1, 0.05, 100);
  a.merge(b, "mc_");
  EXPECT_TRUE(a.has("mc_x"));
  EXPECT_DOUBLE_EQ(a.value("mc_x"), 1.1);
  EXPECT_DOUBLE_EQ(a.value_or("missing", -1.0), -1.0);
  EXPECT_EQ(a.metric("mc_x").count, 100u);
  EXPECT_NE(a.to_string().find("mc_x"), std::string::npos);
}

}  // namespace
}  // namespace rbx
