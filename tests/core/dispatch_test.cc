// The dispatch-core contract: any mix of lanes produces bitwise the same
// outcomes as evaluating the cells directly in a serial loop, worker
// crashes are recovered by respawn + re-admission instead of shrinking
// the pool, and the scheduler's counters expose what recovery did.
#include "core/dispatch.h"

#include <unistd.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/executor.h"
#include "core/lane.h"
#include "core/sweep.h"

namespace rbx {
namespace {

std::vector<Scenario> mc_grid(std::uint64_t master_seed) {
  const auto apply_n = [](Scenario& s, double n) {
    s.params(ProcessSetParams::symmetric(static_cast<std::size_t>(n), 1.0,
                                         1.0));
  };
  return SweepGrid(Scenario::symmetric(2, 1.0, 1.0).samples(300))
      .axis({2, 3, 4}, apply_n)
      .schemes({SchemeKind::kAsynchronous, SchemeKind::kSynchronized})
      .expand(master_seed);
}

CellFn backend_fn() {
  return [](const Scenario& s, std::size_t) {
    return monte_carlo_backend().evaluate(s);
  };
}

// The ground truth no scheduler may deviate from: the cells evaluated one
// by one on the calling thread, no wire round-trip, no batching.
std::vector<ResultSet> direct_reference(const std::vector<Scenario>& cells,
                                        const CellFn& fn) {
  std::vector<ResultSet> out;
  out.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out.push_back(fn(cells[i], i));
  }
  return out;
}

TEST(DispatchCoreTest, ThreadAndForkLanesTogetherMatchDirectEvaluation) {
  const std::vector<Scenario> cells = mc_grid(17);
  const CellFn fn = backend_fn();
  const std::vector<ResultSet> reference = direct_reference(cells, fn);

  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.push_back(std::make_unique<ForkLane>(2));
  lanes.push_back(std::make_unique<ThreadLane>(2));
  DispatchOptions options;
  options.batch_size = 1;
  options.steal = true;  // legal on any multi-worker run now
  options.quiet = true;
  HybridExecutor hybrid(std::move(lanes), options);

  const auto outcomes = hybrid.run(cells, fn);
  ASSERT_EQ(outcomes.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << "cell " << i << ": "
                                  << outcomes[i].error;
    EXPECT_EQ(outcomes[i].result, reference[i]) << "cell " << i;
  }
}

TEST(DispatchCoreTest, SingleThreadLaneMatchesDirectEvaluation) {
  // The executor every sweep defaults to must reproduce the direct loop
  // bit for bit even though cells now round-trip the wire format.
  const std::vector<Scenario> cells = mc_grid(29);
  const CellFn fn = backend_fn();
  const std::vector<ResultSet> reference = direct_reference(cells, fn);

  const auto outcomes = InProcessExecutor({1}).run(cells, fn);
  ASSERT_EQ(outcomes.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << outcomes[i].error;
    EXPECT_EQ(outcomes[i].result, reference[i]) << "cell " << i;
  }
}

TEST(DispatchCoreTest, ForkWorkerRespawnCountsAsReadmission) {
  // One fork worker, one poisonous cell: the crash kills the whole pool,
  // the respawn (a revival, counted as re-admission) restores it, the
  // rerun kills it again, and only then is the cell failed.  Everything
  // else still evaluates on the respawned workers.
  const std::vector<Scenario> cells(6, Scenario::symmetric(2, 1.0, 1.0));
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.push_back(std::make_unique<ForkLane>(1));
  DispatchOptions options;
  options.batch_size = 1;
  options.quiet = true;
  HybridExecutor hybrid(std::move(lanes), options);

  const auto outcomes =
      hybrid.run(cells, [](const Scenario& s, std::size_t i) {
        if (i == 2) {
          ::_exit(77);
        }
        ResultSet out("test", s.label());
        out.set("index", static_cast<double>(i));
        return out;
      });
  ASSERT_EQ(outcomes.size(), 6u);
  EXPECT_FALSE(outcomes[2].ok());
  EXPECT_NE(outcomes[2].error.find("two lost workers"), std::string::npos)
      << outcomes[2].error;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (i == 2) {
      continue;
    }
    EXPECT_TRUE(outcomes[i].ok()) << "cell " << i << ": "
                                  << outcomes[i].error;
  }
  // The pool was revived at least twice (once per kill).
  EXPECT_GE(hybrid.readmitted_workers(), 2u);
  EXPECT_EQ(hybrid.readmitted_workers_last_run(),
            hybrid.readmitted_workers());
}

TEST(DispatchCoreTest, QuietRunWithoutFailuresLeavesCountersAtZero) {
  const std::vector<Scenario> cells = mc_grid(31);
  const CellFn fn = backend_fn();
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.push_back(std::make_unique<ThreadLane>(4));
  HybridExecutor hybrid(std::move(lanes), DispatchOptions());
  const auto outcomes = hybrid.run(cells, fn);
  for (const CellOutcome& outcome : outcomes) {
    EXPECT_TRUE(outcome.ok()) << outcome.error;
  }
  EXPECT_EQ(hybrid.stolen_cells(), 0u);
  EXPECT_EQ(hybrid.readmitted_workers(), 0u);
}

TEST(DispatchCoreTest, NoLanesIsAnInfrastructureError) {
  const std::vector<Scenario> cells(2, Scenario::symmetric(2, 1.0, 1.0));
  HybridExecutor hybrid({}, DispatchOptions());
  EXPECT_THROW(hybrid.run(cells, backend_fn()), std::runtime_error);
  // Empty input short-circuits before the lanes matter.
  EXPECT_TRUE(hybrid.run({}, backend_fn()).empty());
}

}  // namespace
}  // namespace rbx
