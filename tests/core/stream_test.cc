// The sample-parallel stream axis (Scenario::streams) and its
// determinism contract: for a fixed stream count the Monte-Carlo
// backends must produce bitwise identical ResultSets under any intra-cell
// thread budget and on any lane, because work is partitioned by RNG
// sub-stream - never by thread - and partials merge in fixed stream
// order.  The adaptive lane budget (Lane::start eval_threads = 0) is
// pinned here too: a lane clamped to fewer workers than its configured
// parallelism hands the freed threads to the survivors' stream pools.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/eval_context.h"
#include "core/executor.h"
#include "core/scenario.h"
#include "support/stats.h"
#include "support/wire.h"

namespace rbx {
namespace {

std::vector<std::byte> encode_result(const ResultSet& r) {
  wire::Writer w;
  r.encode(w);
  return w.data();
}

ResultSet evaluate_with_budget(const EvalBackend& backend, const Scenario& s,
                               std::size_t budget) {
  EvalContextScope scope(EvalContext{budget});
  return backend.evaluate(s);
}

// One streamed cell per scheme, small budgets (the contract is bitwise,
// not statistical - sample counts only need to exercise every stream).
std::vector<Scenario> streamed_cells() {
  return {
      Scenario::symmetric(3, 1.0, 0.5)
          .scheme(SchemeKind::kAsynchronous)
          .error_rate(0.25)
          .seed(0x5eed)
          .samples(40)
          .streams(4),
      Scenario::symmetric(3, 1.0, 0.0)
          .scheme(SchemeKind::kSynchronized)
          .error_rate(0.5)
          .seed(0x5eed)
          .samples(40)
          .streams(4),
      Scenario::symmetric(3, 1.0, 0.5)
          .scheme(SchemeKind::kPseudoRecoveryPoints)
          .error_rate(0.5)
          .t_record(1e-3)
          .seed(0x5eed)
          .samples(12)
          .streams(4),
  };
}

TEST(StreamDeterminism, ThreadBudgetNeverChangesTheBytes) {
  for (const Scenario& cell : streamed_cells()) {
    const std::vector<std::byte> sequential =
        encode_result(evaluate_with_budget(monte_carlo_backend(), cell, 1));
    for (std::size_t budget : {3u, 8u}) {
      EXPECT_EQ(encode_result(evaluate_with_budget(monte_carlo_backend(),
                                                   cell, budget)),
                sequential)
          << cell.label() << " budget=" << budget;
    }
  }
}

TEST(StreamDeterminism, DensityBackendIsThreadBudgetInvariant) {
  const Scenario cell = Scenario::symmetric(3, 1.0, 0.5)
                            .scheme(SchemeKind::kAsynchronous)
                            .seed(0x5eed)
                            .samples(60)
                            .streams(5);
  const std::vector<std::byte> sequential = encode_result(
      evaluate_with_budget(density_monte_carlo_backend(), cell, 1));
  for (std::size_t budget : {2u, 7u}) {
    EXPECT_EQ(encode_result(evaluate_with_budget(
                  density_monte_carlo_backend(), cell, budget)),
              sequential);
  }
}

TEST(StreamDeterminism, MoreStreamsThanSamplesStillDeterministic) {
  // Empty stream chunks (K > samples) must merge harmlessly and stay
  // budget-invariant.
  const Scenario cell = Scenario::symmetric(3, 1.0, 0.5)
                            .scheme(SchemeKind::kAsynchronous)
                            .error_rate(0.25)
                            .seed(0x5eed)
                            .samples(3)
                            .streams(8);
  EXPECT_EQ(encode_result(evaluate_with_budget(monte_carlo_backend(), cell, 6)),
            encode_result(evaluate_with_budget(monte_carlo_backend(), cell, 1)));
}

TEST(StreamDeterminism, StreamsOneIgnoresTheThreadBudget) {
  // K=1 is the historical sequential path; a thread budget must not be
  // able to touch it.
  const Scenario cell = Scenario::symmetric(3, 1.0, 0.5)
                            .scheme(SchemeKind::kAsynchronous)
                            .error_rate(0.25)
                            .seed(0x5eed)
                            .samples(40);
  ASSERT_EQ(cell.streams(), 1u);
  EXPECT_EQ(encode_result(evaluate_with_budget(monte_carlo_backend(), cell, 8)),
            encode_result(monte_carlo_backend().evaluate(cell)));
}

TEST(StreamAccuracy, StreamedMeanAgreesWithSequentialMean) {
  // Different K are different (equally valid) partitions of the sample
  // budget: the estimates must agree statistically even though the bytes
  // legitimately differ.
  const Scenario sequential = Scenario::symmetric(3, 1.0, 0.5)
                                  .scheme(SchemeKind::kAsynchronous)
                                  .seed(0x5eed)
                                  .samples(20000);
  const Scenario streamed = Scenario(sequential).streams(8);
  const double seq_mean =
      monte_carlo_backend().evaluate(sequential).value("mean_interval_x");
  const double str_mean =
      monte_carlo_backend().evaluate(streamed).value("mean_interval_x");
  EXPECT_LT(relative_error(seq_mean, str_mean), 0.05);
}

TEST(StreamLanes, ForkLaneMatchesThreadLaneBitwise) {
  // The stream axis must survive the Scenario wire codec: forked workers
  // decode their cells from frames, so byte-equality across executors
  // proves the stream seed derivation happens after the codec, not
  // before it.
  const std::vector<Scenario> cells = streamed_cells();
  const CellFn fn = [](const Scenario& s, std::size_t) {
    return monte_carlo_backend().evaluate(s);
  };
  const auto reference = InProcessExecutor({1}).run(cells, fn);
  const auto forked = MultiProcessExecutor({2, 1}).run(cells, fn);
  ASSERT_EQ(reference.size(), forked.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    ASSERT_TRUE(reference[i].ok()) << reference[i].error;
    ASSERT_TRUE(forked[i].ok()) << forked[i].error;
    EXPECT_EQ(encode_result(reference[i].result),
              encode_result(forked[i].result))
        << cells[i].label();
  }
}

TEST(StreamLanes, AdaptiveBudgetGivesClampedLanesThreadsBack) {
  // A CellFn that reports the ambient budget it ran under.
  const CellFn probe = [](const Scenario& s, std::size_t) {
    ResultSet out("probe", s.label());
    out.set("budget",
            static_cast<double>(current_eval_context().thread_budget));
    return out;
  };
  const Scenario cell = Scenario::symmetric(2, 1.0, 0.5).seed(1);

  // 4 configured threads, 1 cell: the lane raises one worker and the
  // adaptive budget hands it all 4 threads.
  {
    const auto outcomes =
        InProcessExecutor({4}).run({cell}, probe);
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].ok()) << outcomes[0].error;
    EXPECT_EQ(outcomes[0].result.value("budget"), 4.0);
  }

  // 4 configured threads, 8 cells: four workers, budget 1 each.
  {
    std::vector<Scenario> cells;
    for (std::size_t i = 0; i < 8; ++i) {
      cells.push_back(Scenario(cell).seed(i + 1));
    }
    const auto outcomes = InProcessExecutor({4}).run(cells, probe);
    for (const CellOutcome& outcome : outcomes) {
      ASSERT_TRUE(outcome.ok()) << outcome.error;
      EXPECT_EQ(outcome.result.value("budget"), 1.0);
    }
  }
}

}  // namespace
}  // namespace rbx
