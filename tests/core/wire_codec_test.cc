// Round-trip coverage for the Scenario and ResultSet wire codecs - the
// bit-exactness these guarantee is what lets a sweep shard across
// processes and hosts without changing a single printed digit.
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/result.h"
#include "core/scenario.h"
#include "support/wire.h"

namespace rbx {
namespace {

Scenario full_knob_scenario(SchemeKind scheme) {
  SyncPolicy policy;
  policy.strategy = SyncStrategy::kSavedStates;
  policy.interval = 0.75;
  policy.elapsed_threshold = 1.25;
  policy.saved_threshold = 13;
  RuntimeWorkload workload;
  workload.steps = 777;
  workload.message_probability = 0.31;
  workload.rp_probability = 0.07;
  workload.alternate_failure_probability = 0.02;
  workload.rb_alternates = 3;
  workload.sync_period_steps = 41;
  return Scenario(ProcessSetParams::three(1.5, 1.0, 0.5, 1.0, 0.25, 2.0))
      .scheme(scheme)
      .seed(0xfeedfacecafebeefULL)
      .error_rate(0.125)
      .at_failure_probability(0.05)
      .t_record(0.0042)
      .sync_policy(policy)
      .scoped_prp(true)
      .prp_sync_period(2.5)
      .samples(12345)
      .streams(6)
      .workload(workload);
}

std::vector<std::byte> encode_scenario(const Scenario& s) {
  wire::Writer w;
  s.encode(w);
  return w.data();
}

TEST(ScenarioCodec, EveryKnobRoundTripsForEveryScheme) {
  for (SchemeKind scheme :
       {SchemeKind::kAsynchronous, SchemeKind::kSynchronized,
        SchemeKind::kPseudoRecoveryPoints}) {
    const Scenario original = full_knob_scenario(scheme);
    const std::vector<std::byte> bytes = encode_scenario(original);
    wire::Reader r(bytes);
    const Scenario back = Scenario::decode(r);
    r.expect_done();

    EXPECT_EQ(back.scheme(), original.scheme());
    EXPECT_EQ(back.seed(), original.seed());
    EXPECT_EQ(back.n(), original.n());
    EXPECT_EQ(back.params().mu(), original.params().mu());
    EXPECT_EQ(back.params().lambda_flat(), original.params().lambda_flat());
    EXPECT_EQ(back.error_rate(), original.error_rate());
    EXPECT_EQ(back.at_failure_probability(),
              original.at_failure_probability());
    EXPECT_EQ(back.t_record(), original.t_record());
    EXPECT_EQ(back.sync_policy().strategy, original.sync_policy().strategy);
    EXPECT_EQ(back.sync_policy().interval, original.sync_policy().interval);
    EXPECT_EQ(back.sync_policy().elapsed_threshold,
              original.sync_policy().elapsed_threshold);
    EXPECT_EQ(back.sync_policy().saved_threshold,
              original.sync_policy().saved_threshold);
    EXPECT_EQ(back.scoped_prp(), original.scoped_prp());
    EXPECT_EQ(back.prp_sync_period(), original.prp_sync_period());
    EXPECT_EQ(back.samples(), original.samples());
    EXPECT_EQ(back.streams(), original.streams());
    EXPECT_EQ(back.workload().steps, original.workload().steps);
    EXPECT_EQ(back.workload().message_probability,
              original.workload().message_probability);
    EXPECT_EQ(back.workload().rp_probability,
              original.workload().rp_probability);
    EXPECT_EQ(back.workload().alternate_failure_probability,
              original.workload().alternate_failure_probability);
    EXPECT_EQ(back.workload().rb_alternates,
              original.workload().rb_alternates);
    EXPECT_EQ(back.workload().sync_period_steps,
              original.workload().sync_period_steps);
    // The label (used as the ResultSet scenario key) must survive too.
    EXPECT_EQ(back.label(), original.label());
  }
}

TEST(ScenarioCodec, TruncationThrowsAtEveryPrefixLength) {
  const std::vector<std::byte> bytes =
      encode_scenario(full_knob_scenario(SchemeKind::kAsynchronous));
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    wire::Reader r(bytes.data(), keep);
    EXPECT_THROW(Scenario::decode(r), wire::Error) << "prefix " << keep;
  }
}

TEST(ScenarioCodec, CorruptEnumAndRateFieldsRejected) {
  const Scenario original = full_knob_scenario(SchemeKind::kSynchronized);
  // Scheme tag is the first byte after the two rate vectors.
  {
    std::vector<std::byte> bytes = encode_scenario(original);
    const std::size_t scheme_pos = (4 + 3 * 8) + (4 + 9 * 8);
    bytes[scheme_pos] = static_cast<std::byte>(0x7f);
    wire::Reader r(bytes);
    EXPECT_THROW(Scenario::decode(r), wire::Error);
  }
  // A negative mu must throw (not abort through ProcessSetParams checks).
  {
    wire::Writer w;
    w.f64_vec({-1.0});
    w.f64_vec({0.0});
    wire::Reader r(w.data());
    EXPECT_THROW(Scenario::decode(r), wire::Error);
  }
  // Asymmetric lambda must throw.
  {
    wire::Writer w;
    w.f64_vec({1.0, 1.0});
    w.f64_vec({0.0, 0.5, 0.25, 0.0});
    wire::Reader r(w.data());
    EXPECT_THROW(Scenario::decode(r), wire::Error);
  }
  // A zero sample budget must throw.
  {
    Scenario ok = full_knob_scenario(SchemeKind::kAsynchronous);
    std::vector<std::byte> bytes = encode_scenario(ok);
    // samples is followed by the 6 workload fields and the stream count,
    // all 8 bytes wide, so its u64 starts 8 * 8 bytes from the end.
    const std::size_t samples_pos = bytes.size() - 8 * 8;
    for (std::size_t b = 0; b < 8; ++b) {
      bytes[samples_pos + b] = static_cast<std::byte>(0);
    }
    wire::Reader r(bytes);
    EXPECT_THROW(Scenario::decode(r), wire::Error);
  }
  // A zero stream count must throw (the trailing u64).
  {
    Scenario ok = full_knob_scenario(SchemeKind::kAsynchronous);
    std::vector<std::byte> bytes = encode_scenario(ok);
    for (std::size_t b = 0; b < 8; ++b) {
      bytes[bytes.size() - 8 + b] = static_cast<std::byte>(0);
    }
    wire::Reader r(bytes);
    EXPECT_THROW(Scenario::decode(r), wire::Error);
  }
}

TEST(ResultSetCodec, MetricsRoundTripBitExactIncludingNonFinite) {
  ResultSet original("monte-carlo", "async n=3 rho=1 seed=42");
  original.set("mean_interval_x", 2.598437219, 0.0123, 20000);
  original.set("nan_metric", std::numeric_limits<double>::quiet_NaN());
  original.set("inf_metric", std::numeric_limits<double>::infinity(), 0.5,
               7);
  original.set("neg_inf_metric", -std::numeric_limits<double>::infinity());
  original.set("denormal_metric", std::numeric_limits<double>::denorm_min());
  original.set("neg_zero_metric", -0.0);
  // The analytic backend's marker metric named in the sharding contract.
  original.set("async_full_chain", 1.0);

  wire::Writer w;
  original.encode(w);
  wire::Reader r(w.data());
  const ResultSet back = ResultSet::decode(r);
  r.expect_done();

  EXPECT_EQ(back.backend(), original.backend());
  EXPECT_EQ(back.scenario(), original.scenario());
  ASSERT_EQ(back.metrics().size(), original.metrics().size());
  for (std::size_t i = 0; i < original.metrics().size(); ++i) {
    const Metric& a = original.metrics()[i];
    const Metric& b = back.metrics()[i];
    EXPECT_EQ(a.name, b.name);
    // Bitwise comparison: NaN != NaN under operator==, so compare the
    // representation - that is the actual wire contract.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.value),
              std::bit_cast<std::uint64_t>(b.value))
        << a.name;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.half_width),
              std::bit_cast<std::uint64_t>(b.half_width));
    EXPECT_EQ(a.count, b.count);
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(back.value("neg_zero_metric")),
            std::bit_cast<std::uint64_t>(-0.0));
}

TEST(ResultSetCodec, EmptyResultSetRoundTrips) {
  ResultSet original;
  wire::Writer w;
  original.encode(w);
  wire::Reader r(w.data());
  const ResultSet back = ResultSet::decode(r);
  EXPECT_TRUE(back == original);
}

TEST(ResultSetCodec, TruncatedAndCorruptFramesRejected) {
  ResultSet original("analytic", "s");
  original.set("x", 1.0);
  wire::Writer w;
  original.encode(w);
  const std::vector<std::byte>& bytes = w.data();
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    wire::Reader r(bytes.data(), keep);
    EXPECT_THROW(ResultSet::decode(r), wire::Error) << "prefix " << keep;
  }
  // Corrupt metric count claiming more metrics than bytes remain.
  wire::Writer wc;
  wc.str("analytic");
  wc.str("s");
  wc.u32(1000000);
  wire::Reader rc(wc.data());
  EXPECT_THROW(ResultSet::decode(rc), wire::Error);
}

TEST(ShardPartialCodec, TruncationThrowsAtEveryPrefixLength) {
  // The payload actually exchanged between hosts: a partial with two
  // cells, truncated at every byte boundary, must always throw - never
  // crash, never hand back a partial object.
  ResultSet r0("analytic", "cell");
  r0.set("x", 1.25);
  r0.set("y", -3.5, 0.25, 100);
  ShardPartial partial;
  partial.shard = ShardSpec{0, 2};
  partial.total_cells = 4;
  partial.fingerprint = 0x1234abcdu;
  partial.results.emplace_back(0, r0);
  partial.results.emplace_back(2, r0);
  wire::Writer w;
  partial.encode(w);
  const std::vector<std::byte>& bytes = w.data();
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    wire::Reader r(bytes.data(), keep);
    EXPECT_THROW(ShardPartial::decode(r), wire::Error) << "prefix " << keep;
  }
}

TEST(BatchCodec, CellAndResultBatchTruncationThrowsAtEveryPrefixLength) {
  CellBatch cell_batch;
  cell_batch.cells.push_back(BatchCell{
      7, Scenario::symmetric(3, 1.0, 0.5).samples(100).seed(42), true,
      EvalPlan{{EvalStep{"analytic", ""}, EvalStep{"monte-carlo", "mc_"}}}});
  wire::Writer cw;
  cell_batch.encode(cw);
  for (std::size_t keep = 0; keep < cw.data().size(); ++keep) {
    wire::Reader r(cw.data().data(), keep);
    EXPECT_THROW(CellBatch::decode(r), wire::Error) << "prefix " << keep;
  }

  ResultBatch result_batch;
  ResultSet res("monte-carlo", "cell");
  res.set("m", 9.75, 0.5, 200);
  CellOutcome ok_outcome;
  ok_outcome.result = res;
  CellOutcome err_outcome;
  err_outcome.error = "synthetic failure";
  result_batch.entries.push_back({7, ok_outcome});
  result_batch.entries.push_back({9, err_outcome});
  wire::Writer rw;
  result_batch.encode(rw);
  for (std::size_t keep = 0; keep < rw.data().size(); ++keep) {
    wire::Reader r(rw.data().data(), keep);
    EXPECT_THROW(ResultBatch::decode(r), wire::Error) << "prefix " << keep;
  }
}

TEST(FrameTruncation, IncompleteFramesAskForMoreBytesInsteadOfThrowing) {
  // A stream reader facing a frame cut at any byte boundary must report
  // "incomplete" (false) so the transport keeps reading - truncation is a
  // normal socket condition, unlike corrupt payloads.
  ResultSet res("analytic", "cell");
  res.set("x", 2.5);
  wire::Writer w;
  res.encode(w);
  const std::vector<std::byte> frame = wire::seal_frame(42, w.data());
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    wire::Frame out;
    std::size_t consumed = 0;
    EXPECT_FALSE(wire::parse_frame(frame.data(), keep, &out, &consumed))
        << "prefix " << keep;
  }
  wire::Frame out;
  std::size_t consumed = 0;
  ASSERT_TRUE(wire::parse_frame(frame.data(), frame.size(), &out, &consumed));
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(out.type, 42);
}

}  // namespace
}  // namespace rbx
