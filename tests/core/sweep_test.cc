#include "core/sweep.h"

#include <set>

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(DeriveCellSeed, DeterministicAndDecorrelated) {
  EXPECT_EQ(derive_cell_seed(42, 0), derive_cell_seed(42, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t cell = 0; cell < 1000; ++cell) {
    seeds.insert(derive_cell_seed(42, cell));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // no collisions across cells
  EXPECT_NE(derive_cell_seed(42, 0), derive_cell_seed(43, 0));
}

TEST(SweepGridTest, ExpandsCartesianProductRowMajor) {
  const auto apply_samples = [](Scenario& s, double v) {
    s.samples(static_cast<std::size_t>(v));
  };
  const auto apply_error = [](Scenario& s, double v) { s.error_rate(v); };
  SweepGrid grid(Scenario::symmetric(3, 1.0, 1.0));
  grid.axis({100, 200}, apply_samples)
      .axis({0.0, 0.1, 0.2}, apply_error)
      .schemes({SchemeKind::kAsynchronous, SchemeKind::kSynchronized});
  EXPECT_EQ(grid.cells(), 12u);

  const std::vector<Scenario> cells = grid.expand(7);
  ASSERT_EQ(cells.size(), 12u);
  // First axis slowest, schemes fastest.
  EXPECT_EQ(cells[0].samples(), 100u);
  EXPECT_EQ(cells[0].scheme(), SchemeKind::kAsynchronous);
  EXPECT_EQ(cells[1].scheme(), SchemeKind::kSynchronized);
  EXPECT_DOUBLE_EQ(cells[2].error_rate(), 0.1);
  EXPECT_EQ(cells[6].samples(), 200u);
  // Per-cell seeds follow the documented derivation.
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].seed(), derive_cell_seed(7, i));
  }
}

TEST(SweepGridTest, NoAxesExpandsToSingleCell) {
  const std::vector<Scenario> cells =
      SweepGrid(Scenario::symmetric(2, 1.0, 1.0)).expand(3);
  ASSERT_EQ(cells.size(), 1u);
  EXPECT_EQ(cells[0].seed(), derive_cell_seed(3, 0));
}

std::vector<Scenario> mc_grid(std::uint64_t master_seed) {
  const auto apply_n = [](Scenario& s, double n) {
    s.params(ProcessSetParams::symmetric(static_cast<std::size_t>(n), 1.0,
                                         1.0));
  };
  return SweepGrid(Scenario::symmetric(2, 1.0, 1.0).samples(400))
      .axis({2, 3, 4}, apply_n)
      .schemes({SchemeKind::kAsynchronous, SchemeKind::kSynchronized})
      .expand(master_seed);
}

TEST(SweepEngineTest, SameGridAndSeedIsBitwiseIdentical) {
  const SweepEngine engine({2});
  const auto a = engine.run(mc_grid(11), monte_carlo_backend());
  const auto b = engine.run(mc_grid(11), monte_carlo_backend());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "cell " << i;
  }
  // A different master seed changes every Monte-Carlo cell.
  const auto c = engine.run(mc_grid(12), monte_carlo_backend());
  EXPECT_NE(a[0].value("mean_interval_x"), c[0].value("mean_interval_x"));
}

TEST(SweepEngineTest, ThreadCountDoesNotChangeResults) {
  const auto cells = mc_grid(17);
  const auto serial = SweepEngine({1}).run(cells, monte_carlo_backend());
  const auto parallel = SweepEngine({8}).run(cells, monte_carlo_backend());
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "cell " << i;
  }
}

TEST(SweepEngineTest, CellFnReceivesIndexAndOrderIsPreserved) {
  std::vector<Scenario> cells(5, Scenario::symmetric(2, 1.0, 1.0));
  const auto results = SweepEngine({4}).run(
      cells, [](const Scenario& s, std::size_t index) {
        ResultSet out("test", s.label());
        out.set("index", static_cast<double>(index));
        return out;
      });
  ASSERT_EQ(results.size(), 5u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_DOUBLE_EQ(results[i].value("index"), static_cast<double>(i));
  }
}

TEST(SweepEngineTest, DefaultsToHardwareConcurrency) {
  EXPECT_GE(SweepEngine().threads(), 1u);
  EXPECT_EQ(SweepEngine({3}).threads(), 3u);
  EXPECT_TRUE(SweepEngine({2}).run({}, monte_carlo_backend()).empty());
}

}  // namespace
}  // namespace rbx
