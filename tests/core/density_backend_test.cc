// The Figure 6 density port onto the Scenario/EvalBackend seam: the
// registered backends reproduce the model and simulator layers exactly,
// and a density sweep is bitwise identical across execution modes - the
// property that lets fig6_density run on --threads/--workers/--fleet.
#include "core/density_backend.h"

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/executor.h"
#include "des/async_sim.h"
#include "model/async_model.h"
#include "net/cluster.h"
#include "net/worker.h"
#include "support/stats.h"

namespace rbx {
namespace {

Scenario fig6_case(double mu1, double mu2, double mu3, double l) {
  return Scenario::symmetric(3, 1.0, 1.0)
      .params(ProcessSetParams::three(mu1, mu2, mu3, l, l, l))
      .seed(99)
      .samples(2000);
}

TEST(DensityBackendTest, BackendsAreRegistered) {
  EXPECT_EQ(find_backend("density-analytic"), &density_analytic_backend());
  EXPECT_EQ(find_backend("density-mc"), &density_monte_carlo_backend());
}

TEST(DensityBackendTest, AnalyticMatchesTheModelLayerBitwise) {
  const Scenario s = fig6_case(0.6, 0.45, 0.45, 0.5);
  const ResultSet r = density_analytic_backend().evaluate(s);

  AsyncRbModel model(s.params());
  const std::vector<double> grid =
      model.interval().pdf_grid(kDensityTMax, kDensityPoints);
  ASSERT_EQ(grid.size(), kDensityPoints);
  for (std::size_t i = 0; i < kDensityPoints; ++i) {
    EXPECT_EQ(r.value("density_f_" + std::to_string(i)), grid[i]) << i;
  }
  // The paper's impulse: f_X(0) = sum mu.
  EXPECT_NEAR(r.value("density_f0"), s.params().total_mu(), 1e-9);
  EXPECT_EQ(r.value("mean_interval_x"), model.mean_interval());
}

TEST(DensityBackendTest, MonteCarloMatchesTheSimulatorLayerBitwise) {
  const Scenario s = fig6_case(1.0, 1.0, 1.0, 1.0);
  const ResultSet r = density_monte_carlo_backend().evaluate(s);

  AsyncRbSimulator sim(s.params(), s.seed());
  const AsyncSimResult ref = sim.run_lines(s.samples());
  Histogram h(0.0, kDensityTMax, kDensityPoints - 1);
  for (double x : ref.interval.samples()) {
    h.add(x);
  }
  for (std::size_t i = 0; i < h.bins(); ++i) {
    const Metric& m = r.metric("density_bin_" + std::to_string(i));
    EXPECT_EQ(m.value, h.density(i)) << "bin " << i;
    EXPECT_EQ(m.count, h.bin_count(i)) << "bin " << i;
  }
  EXPECT_EQ(r.value("density_samples"), static_cast<double>(h.total()));
}

TEST(DensityBackendTest, SupportsOnlyWhatItCanEvaluate)
{
  const Scenario async = fig6_case(1.0, 1.0, 1.0, 1.0);
  EXPECT_TRUE(density_analytic_backend().supports(async));
  EXPECT_TRUE(density_monte_carlo_backend().supports(async));
  const Scenario sync =
      Scenario::symmetric(3, 1.0, 1.0).scheme(SchemeKind::kSynchronized);
  EXPECT_FALSE(density_analytic_backend().supports(sync));
  EXPECT_FALSE(density_monte_carlo_backend().supports(sync));
  // The full phase-type chain caps n.
  EXPECT_FALSE(
      density_analytic_backend().supports(Scenario::symmetric(13, 1.0, 1.0)));
}

TEST(DensityBackendTest, SweepIsBitwiseIdenticalAcrossExecutionModes) {
  // The fig6 plan (analytic + mc under a prefix), on the fig6 grid,
  // serial vs 4 threads vs a loopback TCP worker: per-cell seeds make
  // every mode print the same bytes.
  const EvalPlan plan{{EvalStep{"density-analytic", ""},
                       EvalStep{"density-mc", "mc_"}}};
  const PlanFn plan_fn = [&plan](const Scenario&, std::size_t) {
    return plan;
  };
  std::vector<Scenario> cells = {fig6_case(1.0, 1.0, 1.0, 1.0),
                                 fig6_case(0.6, 0.45, 0.45, 0.5),
                                 fig6_case(0.6, 0.45, 0.45, 0.75)};

  const CellFn local = [&plan](const Scenario& s, std::size_t) {
    return evaluate_plan(plan, s);
  };
  const auto serial = InProcessExecutor({1}).run(cells, local);
  const auto threaded = InProcessExecutor({4}).run(cells, local);

  net::WorkerOptions wopts;
  wopts.port = 0;
  wopts.once = true;
  wopts.quiet = true;
  net::WorkerServer worker(wopts);
  std::thread worker_thread([&worker]() { worker.serve(); });
  std::vector<CellOutcome> remote;
  {
    net::ClusterOptions copts;
    copts.endpoints = {{"127.0.0.1", worker.port()}};
    copts.quiet = true;
    net::ClusterExecutor cluster(std::move(copts));
    cluster.set_plan_fn(plan_fn);
    remote = cluster.run(cells, CellFn());
  }
  worker_thread.join();

  ASSERT_EQ(serial.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_TRUE(serial[i].ok());
    ASSERT_TRUE(threaded[i].ok());
    ASSERT_TRUE(remote[i].ok()) << remote[i].error;
    EXPECT_EQ(serial[i].result, threaded[i].result) << "cell " << i;
    EXPECT_EQ(serial[i].result, remote[i].result) << "cell " << i;
  }
}

}  // namespace
}  // namespace rbx
