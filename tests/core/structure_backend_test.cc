#include "core/structure_backend.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "model/async_model.h"
#include "model/async_symmetric.h"

namespace rbx {
namespace {

TEST(MarkovStructureBackendTest, SupportsGating) {
  const EvalBackend& b = markov_structure_backend();
  EXPECT_TRUE(b.supports(Scenario::symmetric(2, 1.0, 1.0)));
  EXPECT_TRUE(b.supports(Scenario::symmetric(7, 1.0, 1.0)));
  // The full chain is 2^n + 1 states; the inventory caps at n = 7.
  EXPECT_FALSE(b.supports(Scenario::symmetric(8, 1.0, 1.0)));
  EXPECT_FALSE(b.supports(Scenario::symmetric(1, 1.0, 1.0)));
  EXPECT_FALSE(b.supports(Scenario::from_mu({1.5, 1.0, 0.5})));
  EXPECT_FALSE(b.supports(
      Scenario::symmetric(3, 1.0, 1.0).scheme(SchemeKind::kSynchronized)));
}

TEST(MarkovStructureBackendTest, InventoryMatchesModels) {
  const Scenario s = Scenario::symmetric(4, 1.0, 0.5);
  const ResultSet r = markov_structure_backend().evaluate(s);

  AsyncRbModel full(s.params());
  SymmetricAsyncModel lumped(4, 1.0, 0.5);
  EXPECT_EQ(r.value("full_states"), static_cast<double>(full.num_states()));
  EXPECT_EQ(r.value("full_transitions"),
            static_cast<double>(full.transition_count()));
  EXPECT_EQ(r.value("lumped_states"),
            static_cast<double>(lumped.num_states()));
  EXPECT_EQ(r.value("lumped_transitions"),
            static_cast<double>(lumped.chain().generator().nonzeros() -
                                (lumped.num_states() - 1)));
  // 2^4 + 1 vs n + 2: the state-count collapse Figure 3 is about.
  EXPECT_EQ(r.value("full_states"), 17.0);
  EXPECT_EQ(r.value("lumped_states"), 6.0);
  EXPECT_DOUBLE_EQ(r.value("mean_interval_full"), full.mean_interval());
  EXPECT_DOUBLE_EQ(r.value("mean_interval_lumped"), lumped.mean_interval());
  // Lumping is exact for homogeneous rates.
  EXPECT_NEAR(r.value("mean_interval_full"), r.value("mean_interval_lumped"),
              1e-9 * r.value("mean_interval_full"));
}

TEST(MarkovStructureDotTest, LabelsAndDeterminism) {
  const std::string simplified = simplified_chain_dot(3, 1.0, 1.0);
  EXPECT_NE(simplified.find("figure3_simplified_n3"), std::string::npos);
  EXPECT_NE(simplified.find("S_r"), std::string::npos);
  EXPECT_NE(simplified.find("S_r+1"), std::string::npos);
  EXPECT_NE(simplified.find("S~1"), std::string::npos);

  const std::string full = full_chain_dot(3, 1.0, 1.0);
  EXPECT_NE(full.find("figure2_full_n3"), std::string::npos);
  EXPECT_NE(full.find("(0,0,0)"), std::string::npos);
  EXPECT_NE(full.find("(1,1,0)"), std::string::npos);
  EXPECT_NE(full.find("S_r+1"), std::string::npos);

  // Pure functions of (n, mu, lambda): regenerating is byte-identical,
  // which is what lets CI diff the emitted DOT against the golden file.
  EXPECT_EQ(simplified, simplified_chain_dot(3, 1.0, 1.0));
  EXPECT_EQ(full, full_chain_dot(3, 1.0, 1.0));
}

TEST(MarkovStructureDotTest, WriteChainDotRoundTrips) {
  const std::string path = testing::TempDir() + "structure_backend_test.dot";
  const std::string dot = simplified_chain_dot(4, 1.0, 2.0);
  write_chain_dot(path, dot);

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::ostringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(), dot);
}

}  // namespace
}  // namespace rbx
