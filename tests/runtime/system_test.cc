#include "runtime/system.h"

#include <gtest/gtest.h>

namespace rbx {
namespace {

RuntimeConfig base(SchemeKind scheme, std::uint64_t seed = 1) {
  RuntimeConfig cfg;
  cfg.num_processes = 3;
  cfg.scheme = scheme;
  cfg.seed = seed;
  cfg.steps = 300;
  cfg.message_probability = 0.3;
  cfg.rp_probability = 0.1;
  cfg.sync_period_steps = 40;
  return cfg;
}

TEST(RuntimeSystem, AsyncFaultFreeRun) {
  RuntimeConfig cfg = base(SchemeKind::kAsynchronous);
  RecoverySystem system(cfg);
  const RuntimeReport r = system.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.restore_verified);
  EXPECT_TRUE(r.line_consistency_verified);
  EXPECT_EQ(r.recoveries, 0u);
  EXPECT_EQ(r.fifo_violations, 0u);
  EXPECT_GT(r.rps, 0u);
  EXPECT_EQ(r.prps, 0u);
  EXPECT_GT(r.messages_sent, 0u);
  EXPECT_GT(r.rb_executions, 0u);
  // Without failure injection every message eventually lands.
  EXPECT_EQ(r.messages_applied, r.messages_sent);
}

TEST(RuntimeSystem, AsyncWithInjectedFailuresRecovers) {
  RuntimeConfig cfg = base(SchemeKind::kAsynchronous, 7);
  cfg.at_failure_probability = 0.08;
  RecoverySystem system(cfg);
  const RuntimeReport r = system.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.restore_verified);
  EXPECT_TRUE(r.line_consistency_verified);
  EXPECT_GT(r.at_failures, 0u);
  EXPECT_GT(r.recoveries, 0u);
  EXPECT_GT(r.affected_processes.count(), 0u);
  // Rollback propagation: on average more than just the failing process.
  EXPECT_GE(r.affected_processes.max(), 2.0);
}

TEST(RuntimeSystem, PrpImplantsAndRecovers) {
  RuntimeConfig cfg = base(SchemeKind::kPseudoRecoveryPoints, 11);
  cfg.at_failure_probability = 0.08;
  RecoverySystem system(cfg);
  const RuntimeReport r = system.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.restore_verified);
  EXPECT_GT(r.rps, 0u);
  EXPECT_GT(r.prps, 0u);
  EXPECT_GT(r.implant_commits, 0u);
  EXPECT_GT(r.recoveries, 0u);
  // Purging keeps per-process storage bounded: at most two own RPs plus
  // two PRPs per peer = 2 + 2*(n-1) snapshots per process.
  EXPECT_LE(r.snapshots_retained, 3u * (2u + 2u * 2u));
  EXPECT_GT(r.purged_snapshots, 0u);
}

TEST(RuntimeSystem, PrpImplantCountsAreConsistent) {
  RuntimeConfig cfg = base(SchemeKind::kPseudoRecoveryPoints, 13);
  RecoverySystem system(cfg);
  const RuntimeReport r = system.run();
  EXPECT_TRUE(r.completed);
  // Every RP requests n-1 implants; shutdown may cut the tail short.
  EXPECT_LE(r.prps, r.rps * 2);
  EXPECT_GE(r.prps + 2 * 2, r.rps);  // all but the last RPs got implanted
  EXPECT_EQ(r.recoveries, 0u);
}

TEST(RuntimeSystem, SyncEstablishesLinesWithoutFailures) {
  RuntimeConfig cfg = base(SchemeKind::kSynchronized, 17);
  RecoverySystem system(cfg);
  const RuntimeReport r = system.run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.sync_lines, 0u);
  EXPECT_EQ(r.sync_aborts, 0u);
  EXPECT_EQ(r.recoveries, 0u);
  EXPECT_TRUE(r.restore_verified);
  // Every line records one RP per process.
  EXPECT_EQ(r.rps, r.sync_lines * 3);
  EXPECT_GT(r.sync_wait_polls.count(), 0u);
}

TEST(RuntimeSystem, SyncAbortsAndRestoresOnFailure) {
  RuntimeConfig cfg = base(SchemeKind::kSynchronized, 19);
  // Enough lines that P(no acceptance test ever fails) is negligible.
  cfg.steps = 600;
  cfg.sync_period_steps = 30;
  cfg.at_failure_probability = 0.15;
  RecoverySystem system(cfg);
  const RuntimeReport r = system.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.restore_verified);
  EXPECT_GT(r.recoveries, 0u);
  EXPECT_GT(r.sync_aborts, 0u);
}

TEST(RuntimeSystem, LocalRecoveryBlockAlternatesMaskFaults) {
  // Alternate-level faults are absorbed by the sequential RB (no global
  // recovery needed) as long as one alternative survives.
  RuntimeConfig cfg = base(SchemeKind::kAsynchronous, 23);
  cfg.alternate_failure_probability = 0.3;
  cfg.rb_alternates = 4;  // P(all four fail) = 0.81%
  RecoverySystem system(cfg);
  const RuntimeReport r = system.run();
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.rb_local_rollbacks, 0u);
  // Local masking means far fewer global recoveries than RB executions.
  EXPECT_LT(r.recoveries, r.rb_executions / 4 + 1);
}

TEST(RuntimeSystem, FourProcessRuns) {
  for (SchemeKind scheme :
       {SchemeKind::kAsynchronous, SchemeKind::kSynchronized,
        SchemeKind::kPseudoRecoveryPoints}) {
    RuntimeConfig cfg = base(scheme, 29);
    cfg.num_processes = 4;
    cfg.at_failure_probability = 0.05;
    RecoverySystem system(cfg);
    const RuntimeReport r = system.run();
    EXPECT_TRUE(r.completed) << static_cast<int>(scheme);
    EXPECT_TRUE(r.restore_verified);
  }
}

// Fault-injection sweep across schemes and seeds: the runtime must always
// terminate, never violate FIFO beyond rollback resets, and keep its
// verified invariants.
struct SweepCase {
  SchemeKind scheme;
  std::uint64_t seed;
  double failure_p;
};

class RuntimeSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RuntimeSweepTest, InvariantsHoldUnderFaults) {
  const SweepCase& c = GetParam();
  RuntimeConfig cfg = base(c.scheme, c.seed);
  cfg.steps = 200;
  cfg.at_failure_probability = c.failure_p;
  RecoverySystem system(cfg);
  const RuntimeReport r = system.run();
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.restore_verified);
  EXPECT_TRUE(r.line_consistency_verified);
  EXPECT_EQ(r.fifo_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    FaultSweep, RuntimeSweepTest,
    ::testing::Values(
        SweepCase{SchemeKind::kAsynchronous, 101, 0.0},
        SweepCase{SchemeKind::kAsynchronous, 102, 0.1},
        SweepCase{SchemeKind::kAsynchronous, 103, 0.25},
        SweepCase{SchemeKind::kSynchronized, 104, 0.0},
        SweepCase{SchemeKind::kSynchronized, 105, 0.1},
        SweepCase{SchemeKind::kSynchronized, 106, 0.25},
        SweepCase{SchemeKind::kPseudoRecoveryPoints, 107, 0.0},
        SweepCase{SchemeKind::kPseudoRecoveryPoints, 108, 0.1},
        SweepCase{SchemeKind::kPseudoRecoveryPoints, 109, 0.25}));

}  // namespace
}  // namespace rbx
