#include "runtime/channel.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace rbx {
namespace {

Message app(ProcessId sender, std::uint64_t seq, std::int64_t payload = 0,
            std::uint64_t ticket = 0) {
  Message m;
  m.type = MessageType::kApp;
  m.sender = sender;
  m.seq = seq;
  m.payload = payload;
  m.send_ticket = ticket;
  return m;
}

TEST(Mailbox, FifoOrder) {
  Mailbox box;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    box.push(app(0, i));
  }
  for (std::uint64_t i = 1; i <= 5; ++i) {
    const auto m = box.try_pop();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->seq, i);
  }
  EXPECT_FALSE(box.try_pop().has_value());
}

TEST(Mailbox, PopWaitTimesOutWhenEmpty) {
  Mailbox box;
  const auto m = box.pop_wait(std::chrono::milliseconds(5));
  EXPECT_FALSE(m.has_value());
}

TEST(Mailbox, PopWaitWakesOnPush) {
  Mailbox box;
  std::thread producer([&box] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    box.push(app(1, 7));
  });
  const auto m = box.pop_wait(std::chrono::milliseconds(2000));
  producer.join();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->seq, 7u);
}

TEST(Mailbox, FilterDropsMatching) {
  Mailbox box;
  box.push(app(0, 1, 0, /*ticket=*/10));
  box.push(app(0, 2, 0, /*ticket=*/20));
  box.push(app(1, 1, 0, /*ticket=*/30));
  const std::size_t dropped =
      box.filter([](const Message& m) { return m.send_ticket > 15; });
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(box.size(), 1u);
  EXPECT_EQ(box.try_pop()->send_ticket, 10u);
}

TEST(Mailbox, DrainAllPreservesOrder) {
  Mailbox box;
  box.push(app(0, 1));
  box.push(app(0, 2));
  const auto all = box.drain_all();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].seq, 1u);
  EXPECT_EQ(all[1].seq, 2u);
  EXPECT_EQ(box.size(), 0u);
}

TEST(Mailbox, PushFrontBatchReplaysAheadOfNewerTraffic) {
  Mailbox box;
  box.push(app(0, 5));
  box.push_front_batch({app(0, 1), app(0, 2)});
  EXPECT_EQ(box.try_pop()->seq, 1u);
  EXPECT_EQ(box.try_pop()->seq, 2u);
  EXPECT_EQ(box.try_pop()->seq, 5u);
}

TEST(Mailbox, ConcurrentProducersDeliverEverythingFifoPerSender) {
  Mailbox box;
  constexpr int kSenders = 4;
  constexpr std::uint64_t kPerSender = 2000;
  std::vector<std::thread> producers;
  for (int s = 0; s < kSenders; ++s) {
    producers.emplace_back([&box, s] {
      for (std::uint64_t i = 1; i <= kPerSender; ++i) {
        box.push(app(static_cast<ProcessId>(s), i));
      }
    });
  }
  std::vector<std::uint64_t> last(kSenders, 0);
  std::size_t received = 0;
  while (received < kSenders * kPerSender) {
    const auto m = box.pop_wait(std::chrono::milliseconds(1000));
    ASSERT_TRUE(m.has_value()) << "lost messages";
    ++received;
    // Per-sender FIFO: sequence numbers strictly increase.
    EXPECT_EQ(m->seq, last[m->sender] + 1);
    last[m->sender] = m->seq;
  }
  for (auto& p : producers) {
    p.join();
  }
  for (int s = 0; s < kSenders; ++s) {
    EXPECT_EQ(last[s], kPerSender);
  }
}

}  // namespace
}  // namespace rbx
