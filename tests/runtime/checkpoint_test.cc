#include "runtime/checkpoint.h"

#include <gtest/gtest.h>

#include "runtime/serializable.h"

namespace rbx {
namespace {

Snapshot rp(std::uint64_t ticket, std::uint64_t seq, ProcessId owner = 0) {
  Snapshot s;
  s.kind = SnapshotKind::kRecoveryPoint;
  s.rp_owner = owner;
  s.rp_seq = seq;
  s.ticket = ticket;
  s.state = {std::byte{1}, std::byte{2}};
  return s;
}

Snapshot prp(std::uint64_t ticket, ProcessId owner, std::uint64_t seq) {
  Snapshot s;
  s.kind = SnapshotKind::kPseudoRecoveryPoint;
  s.rp_owner = owner;
  s.rp_seq = seq;
  s.ticket = ticket;
  s.state = {std::byte{3}};
  return s;
}

TEST(CheckpointStore, LatestRpAndRpBefore) {
  CheckpointStore store(0);
  store.save(rp(10, 1));
  store.save(prp(15, 1, 1));
  store.save(rp(20, 2));

  ASSERT_NE(store.latest_rp(), nullptr);
  EXPECT_EQ(store.latest_rp()->ticket, 20u);
  ASSERT_NE(store.rp_before(20), nullptr);
  EXPECT_EQ(store.rp_before(20)->ticket, 10u);
  EXPECT_EQ(store.rp_before(10), nullptr);
}

TEST(CheckpointStore, PrpLookupFindsNewestMatching) {
  CheckpointStore store(0);
  store.save(prp(5, 2, 1));
  store.save(prp(9, 2, 2));
  store.save(prp(12, 1, 2));

  ASSERT_NE(store.prp_for(2, 2), nullptr);
  EXPECT_EQ(store.prp_for(2, 2)->ticket, 9u);
  EXPECT_EQ(store.prp_for(2, 3), nullptr);
  EXPECT_EQ(store.prp_for(0, 1), nullptr);
}

TEST(CheckpointStore, ByTicket) {
  CheckpointStore store(0);
  store.save(rp(7, 1));
  store.save(prp(8, 1, 1));
  EXPECT_EQ(store.by_ticket(7)->rp_seq, 1u);
  EXPECT_EQ(store.by_ticket(8)->kind, SnapshotKind::kPseudoRecoveryPoint);
  EXPECT_EQ(store.by_ticket(99), nullptr);
}

TEST(CheckpointStore, PurgeKeepsTwoGenerations) {
  CheckpointStore store(0);
  store.save(rp(10, 1));
  store.save(prp(11, 1, 1));
  store.save(prp(12, 2, 1));
  store.save(rp(20, 2));
  store.save(prp(21, 1, 2));
  store.save(rp(30, 3));
  store.save(prp(31, 1, 3));
  store.save(prp(32, 2, 3));

  const std::size_t purged = store.purge();
  // RPs: keep tickets 30 and 20 (newest two); drop 10.
  EXPECT_EQ(store.by_ticket(10), nullptr);
  ASSERT_NE(store.by_ticket(20), nullptr);
  ASSERT_NE(store.by_ticket(30), nullptr);
  // PRPs from owner 1: keep seq 3 and 2, drop seq 1.
  EXPECT_NE(store.prp_for(1, 3), nullptr);
  EXPECT_NE(store.prp_for(1, 2), nullptr);
  EXPECT_EQ(store.prp_for(1, 1), nullptr);
  // PRPs from owner 2: both kept (only two exist).
  EXPECT_NE(store.prp_for(2, 3), nullptr);
  EXPECT_NE(store.prp_for(2, 1), nullptr);
  EXPECT_EQ(purged, 2u);
}

TEST(CheckpointStore, PurgeIdempotent) {
  CheckpointStore store(0);
  store.save(rp(10, 1));
  store.save(rp(20, 2));
  EXPECT_EQ(store.purge(), 0u);
  EXPECT_EQ(store.purge(), 0u);
  EXPECT_EQ(store.count(), 2u);
}

TEST(CheckpointStore, TotalBytesAccountsStateAndRetainedMessages) {
  CheckpointStore store(0);
  Snapshot s = rp(5, 1);
  s.retained_inbox.resize(3);
  const std::size_t state_bytes = s.state.size();
  store.save(std::move(s));
  EXPECT_EQ(store.total_bytes(), state_bytes + 3 * sizeof(Message));
}

TEST(CheckpointStoreDeathTest, RejectsOutOfOrderTickets) {
  CheckpointStore store(0);
  store.save(rp(10, 1));
  EXPECT_DEATH(store.save(rp(5, 2)), "ticket order");
}

TEST(WorkState, SerializationRoundTrip) {
  WorkState a;
  a.step(3);
  a.step(3);
  a.apply_message(12345);
  WorkState b;
  b.deserialize(a.serialize());
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(WorkState, DeterministicEvolution) {
  WorkState a, b;
  for (int i = 0; i < 10; ++i) {
    a.step(1);
    b.step(1);
  }
  EXPECT_TRUE(a == b);
  b.step(1);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace rbx
