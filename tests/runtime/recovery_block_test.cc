#include "runtime/recovery_block.h"

#include <cstring>

#include <gtest/gtest.h>

namespace rbx {
namespace {

// A state whose acceptance depends on a controllable flag.
struct FlagState final : Serializable {
  std::int64_t value = 0;
  bool bad = false;

  std::vector<std::byte> serialize() const override {
    std::vector<std::byte> out(sizeof(value) + 1);
    std::memcpy(out.data(), &value, sizeof(value));
    out[sizeof(value)] = static_cast<std::byte>(bad ? 1 : 0);
    return out;
  }
  void deserialize(const std::vector<std::byte>& bytes) override {
    std::memcpy(&value, bytes.data(), sizeof(value));
    bad = bytes[sizeof(value)] == std::byte{1};
  }
};

RecoveryBlock::AcceptanceTest not_bad() {
  return [](const Serializable& s) {
    return !static_cast<const FlagState&>(s).bad;
  };
}

TEST(RecoveryBlock, PrimarySucceeds) {
  RecoveryBlock rb(not_bad());
  rb.add_alternative([](Serializable& s) {
    static_cast<FlagState&>(s).value = 42;
  });
  FlagState state;
  const auto outcome = rb.execute(state);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->accepted_alternative, 0u);
  EXPECT_EQ(outcome->rollbacks, 0u);
  EXPECT_EQ(state.value, 42);
}

TEST(RecoveryBlock, FallsBackToAlternate) {
  RecoveryBlock rb(not_bad());
  rb.add_alternative([](Serializable& s) {
    auto& fs = static_cast<FlagState&>(s);
    fs.value = 1;
    fs.bad = true;  // rejected by the acceptance test
  });
  rb.add_alternative([](Serializable& s) {
    static_cast<FlagState&>(s).value = 2;
  });
  FlagState state;
  const auto outcome = rb.execute(state);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->accepted_alternative, 1u);
  EXPECT_EQ(outcome->rollbacks, 1u);
  EXPECT_EQ(state.value, 2);
  EXPECT_FALSE(state.bad);
}

TEST(RecoveryBlock, FailedAttemptIsRolledBackBeforeNextAlternative) {
  // The second alternative must see the recovery-point state, not the
  // first alternative's leftovers.
  RecoveryBlock rb(not_bad());
  rb.add_alternative([](Serializable& s) {
    auto& fs = static_cast<FlagState&>(s);
    fs.value += 100;
    fs.bad = true;
  });
  rb.add_alternative([](Serializable& s) {
    auto& fs = static_cast<FlagState&>(s);
    fs.value += 1;  // applied to the original value, not +101
  });
  FlagState state;
  state.value = 5;
  const auto outcome = rb.execute(state);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(state.value, 6);
}

TEST(RecoveryBlock, AllAlternativesFailRestoresEntryState) {
  RecoveryBlock rb(not_bad());
  for (int i = 0; i < 3; ++i) {
    rb.add_alternative([](Serializable& s) {
      auto& fs = static_cast<FlagState&>(s);
      fs.value = 999;
      fs.bad = true;
    });
  }
  FlagState state;
  state.value = 7;
  const auto outcome = rb.execute(state);
  EXPECT_FALSE(outcome.has_value());
  EXPECT_EQ(state.value, 7);   // restored to the recovery point
  EXPECT_FALSE(state.bad);
}

TEST(RecoveryBlock, AlternativesTriedInOrder) {
  RecoveryBlock rb(not_bad());
  std::vector<int> order;
  rb.add_alternative([&order](Serializable& s) {
    order.push_back(1);
    static_cast<FlagState&>(s).bad = true;
  });
  rb.add_alternative([&order](Serializable& s) {
    order.push_back(2);
    static_cast<FlagState&>(s).bad = true;
  });
  rb.add_alternative([&order](Serializable& s) {
    order.push_back(3);
    static_cast<FlagState&>(s).bad = false;
  });
  FlagState state;
  const auto outcome = rb.execute(state);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(outcome->accepted_alternative, 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(RecoveryBlockDeathTest, RequiresAcceptanceTestAndAlternative) {
  EXPECT_DEATH(RecoveryBlock(nullptr), "acceptance test");
  RecoveryBlock rb(not_bad());
  FlagState state;
  EXPECT_DEATH(static_cast<void>(rb.execute(state)), "primary");
}

}  // namespace
}  // namespace rbx
