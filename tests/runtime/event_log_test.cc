#include "runtime/event_log.h"

#include <thread>

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(EventLog, TicketsAreStrictlyMonotone) {
  EventLog log(2);
  std::uint64_t seq = 0;
  const auto t1 = log.log_recovery_point(0, &seq);
  const auto t2 = log.log_interaction(0, 1);
  const auto t3 = log.now();
  const auto t4 = log.log_prp(1, 0, seq);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t3);
  EXPECT_LT(t3, t4);
  EXPECT_EQ(log.last_ticket(), t4);
}

TEST(EventLog, RpSequenceNumbersPerProcess) {
  EventLog log(2);
  std::uint64_t s1 = 0, s2 = 0, s3 = 0;
  log.log_recovery_point(0, &s1);
  log.log_recovery_point(1, &s2);
  log.log_recovery_point(0, &s3);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(s2, 1u);
  EXPECT_EQ(s3, 2u);
}

TEST(EventLog, SnapshotMaterializesHistory) {
  EventLog log(3);
  std::uint64_t seq = 0;
  const auto t_rp = log.log_recovery_point(2, &seq);
  log.log_prp(0, 2, seq);
  log.log_interaction(0, 1);

  const History h = log.snapshot();
  EXPECT_EQ(h.rp_count(2), 1u);
  EXPECT_EQ(h.rp_times(2)[0], static_cast<double>(t_rp));
  EXPECT_TRUE(h.prp_for(0, 2, seq).has_value());
  EXPECT_EQ(h.interaction_times(0, 1).size(), 1u);
}

TEST(EventLog, SnapshotIsPrefixStable) {
  EventLog log(2);
  std::uint64_t seq = 0;
  log.log_recovery_point(0, &seq);
  const History h1 = log.snapshot();
  log.log_interaction(0, 1);
  const History h2 = log.snapshot();
  EXPECT_EQ(h1.rp_count(0), 1u);
  EXPECT_EQ(h2.rp_count(0), 1u);
  EXPECT_EQ(h1.interaction_times(0, 1).size(), 0u);
  EXPECT_EQ(h2.interaction_times(0, 1).size(), 1u);
}

TEST(EventLog, ConcurrentAppendsProduceUniqueOrderedTickets) {
  EventLog log(4);
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  std::vector<std::vector<std::uint64_t>> tickets(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&log, &tickets, t] {
      tickets[t].reserve(kPerThread);
      for (int i = 0; i < kPerThread; ++i) {
        tickets[t].push_back(
            log.log_interaction(static_cast<ProcessId>(t), (t + 1) % 4));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  // Per-thread tickets strictly increase; all tickets globally unique.
  std::vector<std::uint64_t> all;
  for (const auto& v : tickets) {
    for (std::size_t i = 1; i < v.size(); ++i) {
      EXPECT_LT(v[i - 1], v[i]);
    }
    all.insert(all.end(), v.begin(), v.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
  // And the snapshot is a valid, time-ordered history.
  const History h = log.snapshot();
  EXPECT_EQ(h.events().size(), all.size());
}

}  // namespace
}  // namespace rbx
