// The connect path of the cluster transport, including the two ways a
// connect() can finish asynchronously: interrupted by a signal (EINTR)
// and started non-blocking (EINPROGRESS).  POSIX keeps establishing the
// connection in both cases, so the old "retry connect() after EINTR"
// strategy reported EALREADY/EISCONN - a *successful* connect - as a
// failure; finish_connect (poll for writability + SO_ERROR) is the fix,
// and these tests drive it through the EINPROGRESS path, which exercises
// the identical kernel state deterministically.
#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace rbx {
namespace {

int nonblocking_socket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  EXPECT_EQ(::fcntl(fd, F_SETFL, O_NONBLOCK), 0);
  return fd;
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

TEST(FinishConnectTest, CompletesAsyncConnectAsSuccess) {
  net::Listener listener(0);
  const int fd = nonblocking_socket();
  const sockaddr_in addr = loopback(listener.port());
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0) {
    ASSERT_EQ(errno, EINPROGRESS);  // same kernel state as EINTR
    std::string err;
    EXPECT_TRUE(net::finish_connect(fd, &err)) << err;
  }
  // The connection really is established: the listener sees it, and a
  // re-issued connect() - what the old EINTR retry loop did - reports
  // EISCONN, the errno that used to be misread as a failed connect.
  net::Socket peer = listener.accept_client();
  EXPECT_TRUE(peer.valid());
  rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                 sizeof(addr));
  EXPECT_TRUE(rc == 0 || errno == EISCONN);
  ::close(fd);
}

TEST(FinishConnectTest, ReportsRefusedConnectionAsFailure) {
  // A dead port: bind an ephemeral listener, note the port, close it.
  std::uint16_t dead_port = 0;
  {
    net::Listener probe(0);
    dead_port = probe.port();
  }
  const int fd = nonblocking_socket();
  const sockaddr_in addr = loopback(dead_port);
  const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno == EINPROGRESS) {
    std::string err;
    EXPECT_FALSE(net::finish_connect(fd, &err));
    EXPECT_FALSE(err.empty());
  } else {
    // Loopback may refuse synchronously; that path needs no finishing.
    EXPECT_NE(rc, 0);
  }
  ::close(fd);
}

TEST(ConnectTest, SurvivesEintrStorm) {
  // A SIGALRM handler installed without SA_RESTART makes every blocking
  // syscall in connect_to/accept_client eligible to fail with EINTR, and
  // a fast interval timer fires it continuously.  Every one of these
  // connects must still succeed - under the old retry-connect() bug an
  // interrupted-but-successful connect came back as a failure.
  struct sigaction action {};
  struct sigaction previous {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // deliberately no SA_RESTART
  ASSERT_EQ(::sigaction(SIGALRM, &action, &previous), 0);
  itimerval storm{};
  storm.it_interval.tv_usec = 500;
  storm.it_value.tv_usec = 500;
  ASSERT_EQ(::setitimer(ITIMER_REAL, &storm, nullptr), 0);

  constexpr int kConnects = 50;
  {
    net::Listener listener(0);
    std::thread acceptor([&listener]() {
      for (int i = 0; i < kConnects; ++i) {
        net::Socket peer = listener.accept_client();
        EXPECT_TRUE(peer.valid());
      }
    });
    const net::Endpoint endpoint{"127.0.0.1", listener.port()};
    for (int i = 0; i < kConnects; ++i) {
      net::Socket sock = net::connect_to(endpoint, /*retries=*/0);
      EXPECT_TRUE(sock.valid());
    }
    acceptor.join();
  }

  itimerval off{};
  ASSERT_EQ(::setitimer(ITIMER_REAL, &off, nullptr), 0);
  ASSERT_EQ(::sigaction(SIGALRM, &previous, nullptr), 0);
}

}  // namespace
}  // namespace rbx
