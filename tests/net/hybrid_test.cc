// The hybrid contract: one sweep spanning threads + forked workers + TCP
// daemons is bitwise identical to a serial run; losing every TCP worker
// degrades to the local lanes instead of failing; and a daemon killed
// mid-sweep that comes back is re-admitted - reconnected, re-handshaken
// against the same grid fingerprint - without changing a byte of output.
// Plus the merge-from-sockets path: --merge consuming a ShardPartial
// stream from a socket next to a partial file.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/dispatch.h"
#include "core/executor.h"
#include "core/experiment.h"
#include "core/lane.h"
#include "core/sweep.h"
#include "net/cluster.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/worker.h"

namespace rbx {
namespace {

std::vector<Scenario> mc_grid(std::uint64_t master_seed,
                              std::size_t samples = 200) {
  const auto apply_n = [](Scenario& s, double n) {
    s.params(ProcessSetParams::symmetric(static_cast<std::size_t>(n), 1.0,
                                         1.0));
  };
  return SweepGrid(Scenario::symmetric(2, 1.0, 1.0).samples(samples))
      .axis({2, 3, 4, 5}, apply_n)
      .schemes({SchemeKind::kAsynchronous, SchemeKind::kSynchronized})
      .expand(master_seed);
}

PlanFn mc_plan() {
  return [](const Scenario&, std::size_t) {
    return EvalPlan{{EvalStep{"monte-carlo", ""}}};
  };
}

CellFn local_fn_for(const PlanFn& plan) {
  return [&plan](const Scenario& s, std::size_t i) {
    return evaluate_plan(plan(s, i), s);
  };
}

std::vector<ResultSet> direct_reference(const std::vector<Scenario>& cells,
                                        const CellFn& fn) {
  std::vector<ResultSet> out;
  out.reserve(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out.push_back(fn(cells[i], i));
  }
  return out;
}

// A worker daemon on an ephemeral loopback port serving one connection on
// its own thread (the tools/sweep_workerd --once mode).
struct TestWorker {
  explicit TestWorker(std::size_t fail_after = 0, std::size_t delay_ms = 0)
      : server(net::WorkerOptions{/*port=*/0, /*once=*/true, fail_after,
                                  /*quiet=*/true, /*max_coordinators=*/4,
                                  delay_ms, /*cache_dir=*/{}}),
        thread([this]() { server.serve(); }) {}
  ~TestWorker() { thread.join(); }

  net::Endpoint endpoint() const { return {"127.0.0.1", server.port()}; }

  net::WorkerServer server;
  std::thread thread;
};

net::TcpLaneOptions tcp_options(std::vector<net::Endpoint> endpoints) {
  net::TcpLaneOptions options;
  options.endpoints = std::move(endpoints);
  options.quiet = true;
  return options;
}

TEST(HybridExecutorTest, ThreadsForksAndTcpWorkersMatchSerialBitwise) {
  const std::vector<Scenario> cells = mc_grid(101);
  const PlanFn plan = mc_plan();
  const CellFn fn = local_fn_for(plan);
  const std::vector<ResultSet> reference = direct_reference(cells, fn);

  TestWorker w1;
  TestWorker w2;
  {
    std::vector<std::unique_ptr<Lane>> lanes;
    lanes.push_back(std::make_unique<ForkLane>(2));
    lanes.push_back(std::make_unique<ThreadLane>(2));
    lanes.push_back(std::make_unique<net::TcpLane>(
        tcp_options({w1.endpoint(), w2.endpoint()})));
    DispatchOptions options;
    options.steal = true;
    options.quiet = true;
    HybridExecutor hybrid(std::move(lanes), options);
    hybrid.set_plan_fn(plan);

    const auto outcomes = hybrid.run(cells, fn);
    ASSERT_EQ(outcomes.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ASSERT_TRUE(outcomes[i].ok()) << "cell " << i << ": "
                                    << outcomes[i].error;
      EXPECT_EQ(outcomes[i].result, reference[i]) << "cell " << i;
    }
  }
}

TEST(HybridExecutorTest, AllTcpWorkersLostFallsBackToLocalLanes) {
  // Every TCP worker dies mid-sweep; the thread lane absorbs the rolled
  // back cells and the sweep completes bitwise clean instead of failing.
  const std::vector<Scenario> cells = mc_grid(103);
  const PlanFn plan = mc_plan();
  const CellFn fn = local_fn_for(plan);
  const std::vector<ResultSet> reference = direct_reference(cells, fn);

  TestWorker dying(/*fail_after=*/1);
  {
    std::vector<std::unique_ptr<Lane>> lanes;
    lanes.push_back(std::make_unique<ThreadLane>(2));
    lanes.push_back(
        std::make_unique<net::TcpLane>(tcp_options({dying.endpoint()})));
    DispatchOptions options;
    options.batch_size = 1;
    options.quiet = true;
    options.readmit = false;  // the daemon stays dead: pure fallback
    HybridExecutor hybrid(std::move(lanes), options);
    hybrid.set_plan_fn(plan);

    const auto outcomes = hybrid.run(cells, fn);
    ASSERT_EQ(outcomes.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ASSERT_TRUE(outcomes[i].ok()) << "cell " << i << ": "
                                    << outcomes[i].error;
      EXPECT_EQ(outcomes[i].result, reference[i]) << "cell " << i;
    }
    EXPECT_EQ(hybrid.readmitted_workers(), 0u);
  }
}

TEST(HybridExecutorTest, RestartedDaemonIsReadmittedMidSweep) {
  // The backward-error-recovery loop applied to the pool itself: a daemon
  // dies with a batch in flight, its cells roll back to the steady
  // worker, the daemon restarts on the same port, and the dispatch core
  // reconnects + re-handshakes it against the same grid fingerprint and
  // hands it work again - with byte-identical output.
  const std::vector<Scenario> cells = mc_grid(107, /*samples=*/100);
  const PlanFn plan = mc_plan();
  const CellFn fn = local_fn_for(plan);
  const std::vector<ResultSet> reference = direct_reference(cells, fn);

  // Steady worker: 60 ms per batch keeps the sweep alive long enough for
  // the restart and the re-admission backoff to land deterministically.
  net::WorkerServer steady(net::WorkerOptions{/*port=*/0, /*once=*/false,
                                              /*fail_after=*/0,
                                              /*quiet=*/true,
                                              /*max_coordinators=*/2,
                                              /*delay_ms=*/60, /*cache_dir=*/{}});
  std::thread steady_thread([&]() { steady.serve(); });

  // Dying worker: answers one batch, then drops its session and exits.
  auto first = std::make_unique<net::WorkerServer>(
      net::WorkerOptions{/*port=*/0, /*once=*/true, /*fail_after=*/1,
                         /*quiet=*/true, /*max_coordinators=*/4,
                         /*delay_ms=*/0, /*cache_dir=*/{}});
  const std::uint16_t port = first->port();
  std::thread first_thread([&]() { first->serve(); });

  // The restart: the moment the first daemon is gone, bind the same port
  // again - the sweep is still running on the steady worker meanwhile.
  std::unique_ptr<net::WorkerServer> second;
  std::atomic<bool> second_up{false};
  std::thread restart([&]() {
    first_thread.join();
    first.reset();  // release the port
    for (int attempt = 0; second == nullptr; ++attempt) {
      try {
        second = std::make_unique<net::WorkerServer>(
            net::WorkerOptions{port, /*once=*/true, /*fail_after=*/0,
                               /*quiet=*/true, /*max_coordinators=*/4,
                               /*delay_ms=*/0, /*cache_dir=*/{}});
      } catch (const net::Error&) {
        // The kernel may hold the port for a moment; the re-admission
        // backoff gives us plenty of retries.
        if (attempt > 200) {
          throw;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    second_up.store(true);
    second->serve();
  });

  {
    net::TcpLaneOptions tcp = tcp_options(
        {net::Endpoint{"127.0.0.1", steady.port()},
         net::Endpoint{"127.0.0.1", port}});
    tcp.readmit_delay_ms = 50;
    std::vector<std::unique_ptr<Lane>> lanes;
    lanes.push_back(std::make_unique<net::TcpLane>(std::move(tcp)));
    DispatchOptions options;
    options.batch_size = 1;
    options.quiet = true;
    HybridExecutor hybrid(std::move(lanes), options);
    hybrid.set_plan_fn(plan);

    const auto outcomes = hybrid.run(cells, CellFn());
    ASSERT_EQ(outcomes.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ASSERT_TRUE(outcomes[i].ok()) << "cell " << i << ": "
                                    << outcomes[i].error;
      EXPECT_EQ(outcomes[i].result, reference[i]) << "cell " << i;
    }
    EXPECT_GE(hybrid.readmitted_workers(), 1u);
  }

  // Unblock the restarted daemon if it is still waiting in accept (it
  // normally exits when the executor above hangs up on it).
  while (!second_up.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  second->stop();
  restart.join();
  steady.stop();
  steady_thread.join();
}

TEST(MergeFromSocketsTest, SocketAndFileSourcesMergeBitwise) {
  // One shard arrives as a partial file, the other streams in over TCP
  // from a (simulated) --shard-serve run; the merged tables match the
  // unsharded reference bit for bit.
  const std::vector<Scenario> cells = mc_grid(113);
  const PlanFn plan = mc_plan();
  const CellFn fn = local_fn_for(plan);
  const std::vector<ResultSet> reference = direct_reference(cells, fn);
  const std::uint64_t fingerprint = grid_fingerprint(cells);

  const auto make_partial = [&](std::size_t index) {
    ShardPartial partial;
    partial.shard = ShardSpec{index, 2};
    partial.total_cells = cells.size();
    partial.fingerprint = fingerprint;
    for (std::size_t cell : shard_cell_indices(cells.size(), partial.shard)) {
      partial.results.emplace_back(cell, reference[cell]);
    }
    wire::Writer w;
    partial.encode(w);
    return wire::seal_frame(kFrameShardPartial, w.data());
  };

  // Shard 1 as a file.
  const std::string path = "hybrid_merge_shard1.rbxw";
  wire::write_file(path, make_partial(1));

  // Shard 0 served over a socket, exactly one frame.
  net::Listener listener(0);
  std::thread server([&]() {
    net::FrameConn conn(listener.accept_client());
    conn.send_frame(make_partial(0));
    wire::Frame sink;
    conn.recv(&sink);  // hold the stream open until the merger hangs up
  });

  const std::string merge_arg = "--merge=127.0.0.1:" +
                                std::to_string(listener.port()) + "," + path;
  std::string prog = "bench";
  std::string arg = merge_arg;
  char* argv[] = {prog.data(), arg.data()};
  const ExperimentOptions opts = ExperimentOptions::parse(2, argv, 200, 5);

  {
    SweepRunner runner(opts);
    const auto merged = runner.run(cells, plan);
    ASSERT_TRUE(merged.has_value());
    ASSERT_EQ(merged->size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ((*merged)[i], reference[i]) << "cell " << i;
    }
  }
  server.join();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rbx
