// The cluster transport contract: a sweep spanning TCP workers is
// bitwise identical to an in-process run of the same plans - including a
// run where a worker dies mid-sweep and its in-flight cells roll back to
// the survivors (the distributed analogue of backward error recovery).
// Workers here are real WorkerServer instances on loopback sockets inside
// threads - the same code tools/sweep_workerd.cc runs.
#include "net/cluster.h"

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/backend.h"
#include "core/executor.h"
#include "core/sweep.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/worker.h"

namespace rbx {
namespace {

std::vector<Scenario> mc_grid(std::uint64_t master_seed) {
  const auto apply_n = [](Scenario& s, double n) {
    s.params(ProcessSetParams::symmetric(static_cast<std::size_t>(n), 1.0,
                                         1.0));
  };
  return SweepGrid(Scenario::symmetric(2, 1.0, 1.0).samples(200))
      .axis({2, 3, 4}, apply_n)
      .schemes({SchemeKind::kAsynchronous, SchemeKind::kSynchronized})
      .expand(master_seed);
}

PlanFn mc_plan() {
  return [](const Scenario&, std::size_t) {
    return EvalPlan{{EvalStep{"monte-carlo", ""}}};
  };
}

CellFn local_fn_for(const PlanFn& plan) {
  return [&plan](const Scenario& s, std::size_t i) {
    return evaluate_plan(plan(s, i), s);
  };
}

// A worker on an ephemeral loopback port, serving one connection on its
// own thread (joined on destruction - destroy the executor, which closes
// its connections, before the worker leaves scope).
struct TestWorker {
  explicit TestWorker(std::size_t fail_after = 0, std::size_t delay_ms = 0)
      : server(net::WorkerOptions{/*port=*/0, /*once=*/true, fail_after,
                                  /*quiet=*/true, /*max_coordinators=*/4,
                                  delay_ms, /*cache_dir=*/{}}),
        thread([this]() { server.serve(); }) {}
  ~TestWorker() { thread.join(); }

  net::Endpoint endpoint() const { return {"127.0.0.1", server.port()}; }

  net::WorkerServer server;
  std::thread thread;
};

// A long-running daemon serving up to `max_coordinators` concurrent
// sessions - the tools/sweep_workerd --serve mode.  stop() unblocks the
// serve loop; the destructor joins it.
struct PoolWorker {
  explicit PoolWorker(std::size_t max_coordinators, std::size_t delay_ms = 0)
      : server(net::WorkerOptions{/*port=*/0, /*once=*/false,
                                  /*fail_after=*/0, /*quiet=*/true,
                                  max_coordinators, delay_ms, /*cache_dir=*/{}}),
        thread([this]() { server.serve(); }) {}
  ~PoolWorker() {
    server.stop();
    thread.join();
  }

  net::Endpoint endpoint() const { return {"127.0.0.1", server.port()}; }

  net::WorkerServer server;
  std::thread thread;
};

net::ClusterOptions cluster_options(std::vector<net::Endpoint> endpoints,
                                    std::size_t batch = 0) {
  net::ClusterOptions options;
  options.endpoints = std::move(endpoints);
  options.batch_size = batch;
  options.quiet = true;
  return options;
}

TEST(ClusterExecutorTest, MatchesInProcessBitwise) {
  const std::vector<Scenario> cells = mc_grid(17);
  const PlanFn plan = mc_plan();
  const auto reference =
      InProcessExecutor({1}).run(cells, local_fn_for(plan));

  TestWorker w1;
  TestWorker w2;
  {
    net::ClusterExecutor cluster(
        cluster_options({w1.endpoint(), w2.endpoint()}));
    cluster.set_plan_fn(plan);
    const auto remote = cluster.run(cells, CellFn());
    ASSERT_EQ(remote.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ASSERT_TRUE(remote[i].ok()) << "cell " << i << ": " << remote[i].error;
      EXPECT_EQ(remote[i].result, reference[i].result) << "cell " << i;
    }
  }
}

TEST(ClusterExecutorTest, WorkerLossMidSweepRequeuesAndStaysBitwise) {
  const std::vector<Scenario> cells = mc_grid(23);
  const PlanFn plan = mc_plan();
  const auto reference =
      InProcessExecutor({1}).run(cells, local_fn_for(plan));

  // The healthy worker is throttled slightly so it cannot drain the whole
  // queue before the dying worker's handshake settles - without the
  // barrier of the old per-sweep handshake phase, an unthrottled survivor
  // could finish everything first and the kill below would never trigger.
  TestWorker healthy(/*fail_after=*/0, /*delay_ms=*/25);
  // Answers one single-cell batch, then drops the connection with its
  // next batch in flight: a deterministic mid-sweep kill.
  TestWorker dying(/*fail_after=*/1);
  {
    net::ClusterExecutor cluster(
        cluster_options({healthy.endpoint(), dying.endpoint()},
                        /*batch=*/1));
    cluster.set_plan_fn(plan);
    const auto remote = cluster.run(cells, CellFn());
    ASSERT_EQ(remote.size(), cells.size());
    // Every cell completed (the lost worker's cells re-ran on the
    // survivor) and the rerun is bitwise identical: per-cell seeds make
    // rollback recovery invisible in the output.
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ASSERT_TRUE(remote[i].ok()) << "cell " << i << ": " << remote[i].error;
      EXPECT_EQ(remote[i].result, reference[i].result) << "cell " << i;
    }
    EXPECT_EQ(cluster.live_workers(), 1u);
  }
}

TEST(ClusterExecutorTest, AllWorkersLostFailsRemainingCellsWithoutHanging) {
  const std::vector<Scenario> cells = mc_grid(31);
  const PlanFn plan = mc_plan();

  TestWorker dying(/*fail_after=*/1);
  {
    auto options = cluster_options({dying.endpoint()}, /*batch=*/1);
    // Without re-admission: the dead worker's listener is still bound (the
    // test object is in scope), so each revival attempt would connect and
    // then burn a full handshake timeout - the pre-refactor semantics of
    // "everyone is gone" are what this test pins.
    options.readmit = false;
    net::ClusterExecutor cluster(std::move(options));
    cluster.set_plan_fn(plan);
    const auto remote = cluster.run(cells, CellFn());
    ASSERT_EQ(remote.size(), cells.size());
    std::size_t completed = 0;
    std::size_t failed = 0;
    for (const CellOutcome& outcome : remote) {
      if (outcome.ok()) {
        ++completed;
      } else {
        EXPECT_FALSE(outcome.error.empty());
        ++failed;
      }
    }
    // One batch was answered before the worker died; everything else
    // must come back as per-cell errors, never a hang.
    EXPECT_EQ(completed, 1u);
    EXPECT_EQ(failed, cells.size() - 1);
    EXPECT_EQ(cluster.live_workers(), 0u);
  }
}

TEST(ClusterExecutorTest, SkipsUnreachableEndpointAndStillCompletes) {
  const std::vector<Scenario> cells = mc_grid(41);
  const PlanFn plan = mc_plan();
  const auto reference =
      InProcessExecutor({1}).run(cells, local_fn_for(plan));

  // Find a dead port by binding an ephemeral listener and closing it.
  std::uint16_t dead_port = 0;
  {
    net::Listener probe(0);
    dead_port = probe.port();
  }

  TestWorker alive;
  {
    auto options = cluster_options(
        {net::Endpoint{"127.0.0.1", dead_port}, alive.endpoint()});
    options.connect_retries = 0;  // fail the dead endpoint fast
    net::ClusterExecutor cluster(std::move(options));
    cluster.set_plan_fn(plan);
    const auto remote = cluster.run(cells, CellFn());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ASSERT_TRUE(remote[i].ok()) << remote[i].error;
      EXPECT_EQ(remote[i].result, reference[i].result);
    }
    EXPECT_EQ(cluster.live_workers(), 1u);
  }
}

TEST(ClusterExecutorTest, TwoCoordinatorsShareOneDaemonPoolConcurrently) {
  // The accept-backlog fix: a daemon pool serves two sweeps at once, each
  // coordinator on its own session, and both print the reference bytes.
  PoolWorker w1(/*max_coordinators=*/2);
  PoolWorker w2(/*max_coordinators=*/2);

  const auto sweep_matches_reference = [&](std::uint64_t master_seed) {
    const std::vector<Scenario> cells = mc_grid(master_seed);
    const PlanFn plan = mc_plan();
    const auto reference =
        InProcessExecutor({1}).run(cells, local_fn_for(plan));
    net::ClusterExecutor cluster(
        cluster_options({w1.endpoint(), w2.endpoint()}));
    cluster.set_plan_fn(plan);
    const auto remote = cluster.run(cells, CellFn());
    if (remote.size() != cells.size()) {
      return false;
    }
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!remote[i].ok() || remote[i].result != reference[i].result) {
        return false;
      }
    }
    return true;
  };

  bool first_ok = false;
  bool second_ok = false;
  std::thread first([&]() { first_ok = sweep_matches_reference(61); });
  std::thread second([&]() { second_ok = sweep_matches_reference(67); });
  first.join();
  second.join();
  EXPECT_TRUE(first_ok);
  EXPECT_TRUE(second_ok);
}

TEST(ClusterExecutorTest, CoordinatorBeyondCapacityIsRefusedNotBacklogged) {
  PoolWorker worker(/*max_coordinators=*/1);

  net::FrameConn first(net::connect_to(worker.endpoint(), /*retries=*/5));
  net::Hello hello;
  wire::Writer w;
  hello.encode(w);
  ASSERT_TRUE(first.send(net::kFrameHello, w.data()));
  wire::Frame ack;
  ASSERT_TRUE(first.recv(&ack));
  ASSERT_EQ(ack.type, net::kFrameHelloAck);

  // The session above is still open, so a second coordinator must get a
  // loud refusal instead of sitting in the accept backlog forever.
  net::FrameConn second(net::connect_to(worker.endpoint(), /*retries=*/5));
  wire::Frame reply;
  ASSERT_TRUE(second.recv(&reply));
  EXPECT_EQ(reply.type, net::kFrameError);
  wire::Reader r(reply.payload);
  EXPECT_NE(r.str().find("max-coordinators"), std::string::npos);
}

TEST(ClusterExecutorTest, StealsStragglerTailAndStaysBitwise) {
  const std::vector<Scenario> cells = mc_grid(53);
  const PlanFn plan = mc_plan();
  const auto reference =
      InProcessExecutor({1}).run(cells, local_fn_for(plan));

  TestWorker fast;
  // Holds every batch for 800 ms - far longer than the rest of the grid
  // takes - so its cells are still in flight when the queue drains and
  // the fast worker must steal them to finish.
  TestWorker slow(/*fail_after=*/0, /*delay_ms=*/800);
  {
    auto options = cluster_options({fast.endpoint(), slow.endpoint()},
                                   /*batch=*/1);
    options.steal = true;
    net::ClusterExecutor cluster(std::move(options));
    cluster.set_plan_fn(plan);

    // Sweep 1: the straggler holds its batch, the fast worker drains the
    // queue and must steal the tail to finish.
    const auto first = cluster.run(cells, CellFn());
    ASSERT_EQ(first.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ASSERT_TRUE(first[i].ok()) << "cell " << i << ": " << first[i].error;
      EXPECT_EQ(first[i].result, reference[i].result) << "cell " << i;
    }
    EXPECT_GE(cluster.stolen_cells_last_run(), 1u);
    EXPECT_EQ(cluster.stolen_cells_last_run(), cluster.stolen_cells());
    const std::size_t after_first = cluster.stolen_cells();

    // Sweep 2 over the same connections: the straggler still owes its
    // stolen-from batch, so its stale answer must be flushed ahead of the
    // new HelloAck (and if it is still asleep when the fast worker
    // finishes everything, it is simply not waited on - there is no
    // handshake barrier).  Either way the bytes cannot change, and the
    // per-run counter reports this sweep alone - asserting the lifetime
    // counter across runs was the accumulation bug the split fixed.
    const auto second = cluster.run(cells, CellFn());
    ASSERT_EQ(second.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ASSERT_TRUE(second[i].ok()) << "cell " << i << ": " << second[i].error;
      EXPECT_EQ(second[i].result, reference[i].result) << "cell " << i;
    }
    EXPECT_GE(cluster.stolen_cells(), after_first);  // lifetime: monotone
    EXPECT_LE(cluster.stolen_cells_last_run(), cluster.stolen_cells());
  }
}

TEST(ClusterExecutorTest, HungHandshakeWorkerIsDemotedNotWaitedOn) {
  const std::vector<Scenario> cells = mc_grid(59);
  const PlanFn plan = mc_plan();
  const auto reference =
      InProcessExecutor({1}).run(cells, local_fn_for(plan));

  // A listener that is never accepted: TCP connects fine (backlog), but
  // no Hello is ever answered - the "accepts TCP, never speaks" stall.
  net::Listener hung(0);

  TestWorker alive;
  {
    auto options = cluster_options(
        {net::Endpoint{"127.0.0.1", hung.port()}, alive.endpoint()});
    options.handshake_timeout_ms = 300;
    net::ClusterExecutor cluster(std::move(options));
    cluster.set_plan_fn(plan);
    const auto remote = cluster.run(cells, CellFn());
    ASSERT_EQ(remote.size(), cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
      ASSERT_TRUE(remote[i].ok()) << remote[i].error;
      EXPECT_EQ(remote[i].result, reference[i].result);
    }
    EXPECT_EQ(cluster.live_workers(), 1u);
  }
}

TEST(WorkerHandshakeTest, RefusesWireVersionMismatch) {
  TestWorker worker;
  {
    net::FrameConn conn(
        net::connect_to(worker.endpoint(), /*retries=*/5));
    net::Hello hello;
    hello.wire_version = wire::kVersion + 1;
    wire::Writer w;
    hello.encode(w);
    ASSERT_TRUE(conn.send(net::kFrameHello, w.data()));
    wire::Frame reply;
    ASSERT_TRUE(conn.recv(&reply));
    EXPECT_EQ(reply.type, net::kFrameError);
    wire::Reader r(reply.payload);
    EXPECT_NE(r.str().find("wire version"), std::string::npos);
  }
}

TEST(WorkerHandshakeTest, RefusesProtocolMismatch) {
  TestWorker worker;
  {
    net::FrameConn conn(
        net::connect_to(worker.endpoint(), /*retries=*/5));
    net::Hello hello;
    hello.protocol = net::kProtocolVersion + 7;
    wire::Writer w;
    hello.encode(w);
    ASSERT_TRUE(conn.send(net::kFrameHello, w.data()));
    wire::Frame reply;
    ASSERT_TRUE(conn.recv(&reply));
    EXPECT_EQ(reply.type, net::kFrameError);
    wire::Reader r(reply.payload);
    EXPECT_NE(r.str().find("protocol"), std::string::npos);
  }
}

TEST(WorkerTest, RejectsCellBatchBeforeHandshake) {
  // Work sent before the Hello would bypass the protocol/wire-version/
  // fingerprint checks entirely; the worker must refuse and hang up.
  // A pool-mode worker, because its sessions outlive their threads: the
  // hang-up must come from the session ending, not from daemon teardown.
  PoolWorker worker(/*max_coordinators=*/2);
  {
    net::FrameConn conn(
        net::connect_to(worker.endpoint(), /*retries=*/5));
    CellBatch batch;
    batch.cells.push_back(BatchCell{
        0, Scenario::symmetric(2, 1.0, 1.0), true,
        EvalPlan{{EvalStep{"analytic", ""}}}});
    wire::Writer bw;
    batch.encode(bw);
    ASSERT_TRUE(conn.send(kFrameCellBatch, bw.data()));
    wire::Frame reply;
    ASSERT_TRUE(conn.recv(&reply));
    EXPECT_EQ(reply.type, net::kFrameError);
    wire::Reader r(reply.payload);
    EXPECT_NE(r.str().find("handshake"), std::string::npos);
    // The worker hung up: the next recv sees EOF, not an answer.
    wire::Frame extra;
    EXPECT_FALSE(conn.recv(&extra));
  }
}

TEST(WorkerTest, CellWithoutPlanBecomesPerCellError) {
  // A coordinator bug (local-only cell_fn leaking into a cluster run)
  // must surface as a clear per-cell error, not garbage results.
  TestWorker worker;
  {
    net::FrameConn conn(
        net::connect_to(worker.endpoint(), /*retries=*/5));
    net::Hello hello;
    wire::Writer hw;
    hello.encode(hw);
    ASSERT_TRUE(conn.send(net::kFrameHello, hw.data()));
    wire::Frame ack;
    ASSERT_TRUE(conn.recv(&ack));
    ASSERT_EQ(ack.type, net::kFrameHelloAck);

    CellBatch batch;
    batch.cells.push_back(
        BatchCell{0, Scenario::symmetric(2, 1.0, 1.0), false, EvalPlan{}});
    wire::Writer bw;
    batch.encode(bw);
    ASSERT_TRUE(conn.send(kFrameCellBatch, bw.data()));
    wire::Frame reply;
    ASSERT_TRUE(conn.recv(&reply));
    ASSERT_EQ(reply.type, kFrameResultBatch);
    wire::Reader r(reply.payload);
    const ResultBatch results = ResultBatch::decode(r);
    ASSERT_EQ(results.entries.size(), 1u);
    EXPECT_FALSE(results.entries[0].outcome.ok());
    EXPECT_NE(results.entries[0].outcome.error.find("no evaluation plan"),
              std::string::npos);
  }
}

TEST(EndpointParseTest, StrictHostPortParsing) {
  net::Endpoint endpoint;
  std::string why;
  EXPECT_TRUE(net::parse_endpoint("host-a:4701", &endpoint, &why));
  EXPECT_EQ(endpoint.host, "host-a");
  EXPECT_EQ(endpoint.port, 4701);
  EXPECT_TRUE(net::parse_endpoint("127.0.0.1:1", &endpoint, &why));

  EXPECT_FALSE(net::parse_endpoint("hostonly", &endpoint, &why));
  EXPECT_FALSE(net::parse_endpoint(":4701", &endpoint, &why));
  EXPECT_FALSE(net::parse_endpoint("host:", &endpoint, &why));
  EXPECT_FALSE(net::parse_endpoint("host:0", &endpoint, &why));
  EXPECT_FALSE(net::parse_endpoint("host:65536", &endpoint, &why));
  EXPECT_FALSE(net::parse_endpoint("host:47x1", &endpoint, &why));
  EXPECT_FALSE(net::parse_endpoint("host:-1", &endpoint, &why));
}

TEST(EvalPlanTest, RoundTripsAndMatchesHandComposedEvaluation) {
  EvalPlan plan{{EvalStep{"analytic", ""},
                 EvalStep{"monte-carlo", "mc_"}}};
  wire::Writer w;
  plan.encode(w);
  wire::Reader r(w.data());
  const EvalPlan decoded = EvalPlan::decode(r);
  r.expect_done();
  ASSERT_EQ(decoded.steps.size(), 2u);
  EXPECT_EQ(decoded.steps[0].backend, "analytic");
  EXPECT_EQ(decoded.steps[1].prefix, "mc_");

  const Scenario s = Scenario::symmetric(3, 1.0, 1.0).samples(100).seed(7);
  ResultSet by_hand = analytic_backend().evaluate(s);
  by_hand.merge(monte_carlo_backend().evaluate(s), "mc_");
  EXPECT_EQ(evaluate_plan(decoded, s), by_hand);
}

TEST(EvalPlanTest, RejectsEmptyAndUnknown) {
  wire::Writer empty;
  empty.u32(0);
  wire::Reader r(empty.data());
  EXPECT_THROW(EvalPlan::decode(r), wire::Error);

  const Scenario s = Scenario::symmetric(2, 1.0, 1.0);
  EXPECT_THROW(evaluate_plan(EvalPlan{}, s), std::runtime_error);
  EXPECT_THROW(
      evaluate_plan(EvalPlan{{EvalStep{"no-such-backend", ""}}}, s),
      std::runtime_error);
}

}  // namespace
}  // namespace rbx
