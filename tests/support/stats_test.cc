#include "support/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(RunningStats, MeanAndVarianceOfKnownData) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci_half_width(), 0.0);
}

TEST(RunningStats, EmptyMeanIsZero) {
  RunningStats s;
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0 + i * 0.01;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  RunningStats a_copy = a;
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(RunningStats, CiShrinksWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 100; ++i) {
    small.add(i % 7);
  }
  for (int i = 0; i < 10000; ++i) {
    large.add(i % 7);
  }
  EXPECT_LT(large.ci_half_width(), small.ci_half_width());
}

TEST(SampleSet, QuantilesOfUniformGrid) {
  SampleSet s;
  for (int i = 100; i >= 0; --i) {  // inserted unsorted on purpose
    s.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.quantile(0.5), 50.0, 1e-12);
  EXPECT_NEAR(s.quantile(0.25), 25.0, 1e-12);
  EXPECT_NEAR(s.quantile(0.95), 95.0, 1e-12);
}

TEST(SampleSet, QuantileInterpolates) {
  SampleSet s;
  s.add(0.0);
  s.add(1.0);
  EXPECT_NEAR(s.quantile(0.5), 0.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.75), 0.75, 1e-12);
}

TEST(SampleSet, StatsMatchRunningStats) {
  SampleSet s;
  RunningStats r;
  for (int i = 0; i < 1000; ++i) {
    const double x = (i * 37 % 101) * 0.13;
    s.add(x);
    r.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), r.mean());
  EXPECT_DOUBLE_EQ(s.variance(), r.variance());
}

TEST(SampleSet, MergeMatchesOneShotAccumulation) {
  // The sample-parallel contract: K partial SampleSets merged in order
  // must agree with one accumulator fed the same values in the same
  // concatenated order - counts and extrema exactly, moments to the Chan
  // et al. combine's tight error.
  SampleSet all, a, b, c;
  for (int i = 0; i < 3000; ++i) {
    const double x = std::sin(i * 0.37) * 25.0 + 1e6 + i * 0.001;
    (i < 1000 ? a : i < 2000 ? b : c).add(x);
  }
  for (const SampleSet* part : {&a, &b, &c}) {
    for (double x : part->samples()) {
      all.add(x);
    }
  }
  SampleSet merged = a;
  merged.merge(b);
  merged.merge(c);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
  EXPECT_LT(relative_error(merged.mean(), all.mean()), 1e-13);
  EXPECT_LT(relative_error(merged.variance(), all.variance()), 1e-10);
  // The raw samples concatenate in merge order, so order statistics (the
  // quantile path) see the identical multiset.
  ASSERT_EQ(merged.samples().size(), all.samples().size());
  EXPECT_DOUBLE_EQ(merged.quantile(0.5), all.quantile(0.5));
  EXPECT_DOUBLE_EQ(merged.quantile(0.95), all.quantile(0.95));
}

TEST(SampleSet, MergeWithEmptySides) {
  SampleSet a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);  // empty rhs: no change
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.merge(a);  // empty lhs adopts rhs
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.quantile(0.5), 2.0);
}

TEST(SampleSet, MergeAfterQuantileSortKeepsMomentsExact) {
  // quantile() sorts the sample buffer lazily; a merge after that must
  // still produce moments identical to a merge before it (the stats
  // accumulator is add-time state, not recomputed from the buffer).
  SampleSet sorted_first, untouched, rhs;
  for (int i = 0; i < 100; ++i) {
    const double x = std::cos(i * 0.9) * 5.0;
    sorted_first.add(x);
    untouched.add(x);
    rhs.add(x * 0.5 + 1.0);
  }
  (void)sorted_first.quantile(0.5);  // forces the sort
  sorted_first.merge(rhs);
  untouched.merge(rhs);
  EXPECT_DOUBLE_EQ(sorted_first.mean(), untouched.mean());
  EXPECT_DOUBLE_EQ(sorted_first.variance(), untouched.variance());
  EXPECT_DOUBLE_EQ(sorted_first.quantile(0.25), untouched.quantile(0.25));
}

TEST(Histogram, MergeSumsBinsAndTails) {
  Histogram a(0.0, 1.0, 4), b(0.0, 1.0, 4);
  a.add(-0.5);
  a.add(0.1);
  a.add(0.6);
  b.add(0.15);
  b.add(0.9);
  b.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.total(), 6u);
  EXPECT_EQ(a.underflow(), 1u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.bin_count(0), 2u);  // 0.1 and 0.15
  EXPECT_EQ(a.bin_count(2), 1u);  // 0.6
  EXPECT_EQ(a.bin_count(3), 1u);  // 0.9
}

TEST(HistogramDeathTest, MergeRefusesMismatchedRanges) {
  Histogram a(0.0, 1.0, 4), wider(0.0, 2.0, 4), finer(0.0, 1.0, 8);
  EXPECT_DEATH(a.merge(wider), "identical ranges");
  EXPECT_DEATH(a.merge(finer), "identical ranges");
}

TEST(Histogram, BinningAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 1000; ++i) {
    h.add(static_cast<double>(i % 10) + 0.5);
  }
  EXPECT_EQ(h.total(), 1000u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
  double density_integral = 0.0;
  for (std::size_t i = 0; i < h.bins(); ++i) {
    EXPECT_EQ(h.bin_count(i), 100u);
    density_integral += h.density(i) * h.bin_width();
  }
  EXPECT_NEAR(density_integral, 1.0, 1e-12);
}

TEST(Histogram, OverflowAndUnderflowCounted) {
  Histogram h(0.0, 1.0, 4);
  h.add(-0.1);
  h.add(1.0);   // hi is exclusive
  h.add(2.0);
  h.add(0.5);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_NEAR(h.bin_center(0), 0.125, 1e-12);
  EXPECT_NEAR(h.bin_center(3), 0.875, 1e-12);
}

TEST(RelativeError, BasicBehaviour) {
  EXPECT_NEAR(relative_error(10.0, 11.0), 1.0 / 11.0, 1e-12);
  EXPECT_DOUBLE_EQ(relative_error(0.0, 0.0), 0.0);
  EXPECT_GT(relative_error(1e-15, 2e-15), 0.0);
}

}  // namespace
}  // namespace rbx
