#include "support/table.h"

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"n", "E[X]"});
  t.add_row({"2", "1.25"});
  t.add_row({"10", "3.5"});
  const std::string out = t.render("demo");
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("E[X]"), std::string::npos);
  EXPECT_NE(out.find("1.25"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::fmt(2.0, 3), "2.000");
  EXPECT_EQ(TextTable::fmt_int(42), "42");
  EXPECT_EQ(TextTable::fmt_int(-7), "-7");
}

TEST(TextTable, RowCount) {
  TextTable t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTableDeathTest, RejectsRaggedRow) {
  TextTable t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only-one"}), "row width");
}

}  // namespace
}  // namespace rbx
