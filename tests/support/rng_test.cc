#include "support/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "support/stats.h"

namespace rbx {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, DeterministicAndSeedSensitive) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  Xoshiro256StarStar c(8);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) {
      diverged = true;
    }
  }
  EXPECT_TRUE(diverged);
}

TEST(Xoshiro, LongJumpChangesStream) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  b.long_jump();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.uniform());
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(7, 0);
  const int trials = 70000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.uniform_index(7)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), trials / 7.0, 500.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(77);
  for (double rate : {0.25, 1.0, 4.0}) {
    RunningStats stats;
    for (int i = 0; i < 100000; ++i) {
      stats.add(rng.exponential(rate));
    }
    EXPECT_NEAR(stats.mean(), 1.0 / rate, 3.0 * stats.ci_half_width() + 0.01);
    // Exponential: stddev == mean.
    EXPECT_NEAR(stats.stddev(), 1.0 / rate, 0.05 / rate);
  }
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(rng.exponential(2.0), 0.0);
  }
}

TEST(Rng, ExponentialMemorylessProperty) {
  // P(X > s + t | X > s) == P(X > t): compare tail frequencies.
  Rng rng(101);
  const double rate = 1.3, s = 0.5, t = 0.7;
  int beyond_s = 0, beyond_st = 0, beyond_t = 0;
  const int trials = 400000;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.exponential(rate);
    if (x > s) {
      ++beyond_s;
      if (x > s + t) {
        ++beyond_st;
      }
    }
    if (x > t) {
      ++beyond_t;
    }
  }
  const double conditional =
      static_cast<double>(beyond_st) / static_cast<double>(beyond_s);
  const double unconditional =
      static_cast<double>(beyond_t) / static_cast<double>(trials);
  EXPECT_NEAR(conditional, unconditional, 0.01);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(21);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateCases) {
  Rng rng(22);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, CategoricalMatchesWeights) {
  Rng rng(31);
  const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.categorical(w.data(), w.size())];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 0.6, 0.01);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(55);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

// The exponential race property underlies every simulator in this repo:
// min of Exp(a), Exp(b) is Exp(a+b) and the first to fire is i w.p.
// rate_i / total.
TEST(Rng, ExponentialRaceWinnerDistribution) {
  Rng rng(202);
  const double a = 2.0, b = 0.5;
  int a_wins = 0;
  const int trials = 200000;
  RunningStats min_stats;
  for (int i = 0; i < trials; ++i) {
    const double xa = rng.exponential(a);
    const double xb = rng.exponential(b);
    min_stats.add(std::min(xa, xb));
    if (xa < xb) {
      ++a_wins;
    }
  }
  EXPECT_NEAR(a_wins / static_cast<double>(trials), a / (a + b), 0.005);
  EXPECT_NEAR(min_stats.mean(), 1.0 / (a + b), 0.01);
}

}  // namespace
}  // namespace rbx
