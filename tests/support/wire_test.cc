#include "support/wire.h"

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(WireWriter, PrimitivesRoundTrip) {
  wire::Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-2.5);
  w.str("hello");
  w.f64_vec({1.0, 2.0, 3.0});

  wire::Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f64(), -2.5);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.f64_vec(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(r.done());
}

TEST(WireWriter, EncodingIsLittleEndianByDefinition) {
  // The byte layout is part of the format: pinned so a future refactor
  // cannot silently flip it (partials are exchanged between hosts).
  wire::Writer w;
  w.u32(0x04030201u);
  const auto& b = w.data();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<std::uint8_t>(b[0]), 0x01);
  EXPECT_EQ(static_cast<std::uint8_t>(b[1]), 0x02);
  EXPECT_EQ(static_cast<std::uint8_t>(b[2]), 0x03);
  EXPECT_EQ(static_cast<std::uint8_t>(b[3]), 0x04);
}

TEST(WireWriter, DoublesBitPreserved) {
  const double cases[] = {
      0.0,
      -0.0,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
      std::numeric_limits<double>::signaling_NaN(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::nextafter(1.0, 2.0),
  };
  for (double v : cases) {
    wire::Writer w;
    w.f64(v);
    wire::Reader r(w.data());
    const double back = r.f64();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(WireWriter, StringWithEmbeddedNulRoundTrips) {
  const std::string s("a\0b", 3);
  wire::Writer w;
  w.str(s);
  wire::Reader r(w.data());
  EXPECT_EQ(r.str(), s);
}

TEST(WireReader, TruncationThrowsNotUb) {
  wire::Writer w;
  w.u64(42);
  for (std::size_t keep = 0; keep < 8; ++keep) {
    std::vector<std::byte> cut(w.data().begin(),
                               w.data().begin() + static_cast<long>(keep));
    wire::Reader r(cut);
    EXPECT_THROW(r.u64(), wire::Error);
  }
  // A string whose length prefix claims more bytes than exist.
  wire::Writer ws;
  ws.u32(1000);  // length prefix only, no payload
  wire::Reader rs(ws.data());
  EXPECT_THROW(rs.str(), wire::Error);
  // A vector whose count field claims more doubles than could fit.
  wire::Writer wv;
  wv.u32(0xffffffffu);
  wire::Reader rv(wv.data());
  EXPECT_THROW(rv.f64_vec(), wire::Error);
}

TEST(WireReader, ExpectDoneCatchesTrailingGarbage) {
  wire::Writer w;
  w.u8(1);
  w.u8(2);
  wire::Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), wire::Error);
  r.u8();
  EXPECT_NO_THROW(r.expect_done());
}

TEST(WireFrame, SealAndParse) {
  wire::Writer payload;
  payload.str("payload");
  const std::vector<std::byte> frame = wire::seal_frame(7, payload.data());

  wire::Frame parsed;
  std::size_t consumed = 0;
  ASSERT_TRUE(
      wire::parse_frame(frame.data(), frame.size(), &parsed, &consumed));
  EXPECT_EQ(consumed, frame.size());
  EXPECT_EQ(parsed.type, 7);
  EXPECT_EQ(parsed.payload, payload.data());
}

TEST(WireFrame, IncompleteFrameAsksForMoreBytes) {
  wire::Writer payload;
  payload.u64(1);
  const std::vector<std::byte> frame = wire::seal_frame(1, payload.data());
  wire::Frame parsed;
  std::size_t consumed = 0;
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    EXPECT_FALSE(wire::parse_frame(frame.data(), keep, &parsed, &consumed))
        << "prefix of " << keep << " bytes should be incomplete";
  }
}

TEST(WireFrame, BadMagicRejected) {
  wire::Writer payload;
  const std::vector<std::byte> good = wire::seal_frame(1, payload.data());
  std::vector<std::byte> bad = good;
  bad[0] = static_cast<std::byte>(0x00);
  wire::Frame parsed;
  std::size_t consumed = 0;
  EXPECT_THROW(wire::parse_frame(bad.data(), bad.size(), &parsed, &consumed),
               wire::Error);
}

TEST(WireFrame, VersionMismatchRejected) {
  wire::Writer payload;
  const std::vector<std::byte> good = wire::seal_frame(1, payload.data());
  std::vector<std::byte> bad = good;
  // Version lives in bytes 4..5 (little-endian u16 after the magic).
  bad[4] = static_cast<std::byte>(wire::kVersion + 1);
  wire::Frame parsed;
  std::size_t consumed = 0;
  try {
    wire::parse_frame(bad.data(), bad.size(), &parsed, &consumed);
    FAIL() << "expected wire::Error";
  } catch (const wire::Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(WireFrame, InsaneLengthFieldRejected) {
  wire::Writer header;
  header.u32(wire::kMagic);
  header.u16(wire::kVersion);
  header.u16(1);
  header.u64(wire::kMaxFramePayload + 1);
  wire::Frame parsed;
  std::size_t consumed = 0;
  EXPECT_THROW(wire::parse_frame(header.data().data(), header.size(),
                                 &parsed, &consumed),
               wire::Error);
}

TEST(WireFile, WriteReadRoundTripAndTruncationError) {
  const std::string path = ::testing::TempDir() + "wire_test_frames.rbxw";
  wire::Writer p1;
  p1.str("one");
  wire::Writer p2;
  p2.str("two");
  std::vector<std::byte> data = wire::seal_frame(1, p1.data());
  const std::vector<std::byte> second = wire::seal_frame(2, p2.data());
  data.insert(data.end(), second.begin(), second.end());
  wire::write_file(path, data);

  const std::vector<wire::Frame> frames = wire::read_frames(path);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, 1);
  EXPECT_EQ(frames[1].type, 2);

  // Truncate the file mid-frame: loading must throw, not misparse.
  data.pop_back();
  wire::write_file(path, data);
  EXPECT_THROW(wire::read_frames(path), wire::Error);

  EXPECT_THROW(wire::read_frames(path + ".does-not-exist"), wire::Error);
}

}  // namespace
}  // namespace rbx
