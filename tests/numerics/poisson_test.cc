#include "numerics/poisson.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(PoissonPmf, SmallMeanValues) {
  EXPECT_NEAR(poisson_pmf(0, 1.0), std::exp(-1.0), 1e-14);
  EXPECT_NEAR(poisson_pmf(1, 1.0), std::exp(-1.0), 1e-14);
  EXPECT_NEAR(poisson_pmf(2, 1.0), std::exp(-1.0) / 2.0, 1e-14);
  EXPECT_NEAR(poisson_pmf(3, 2.0), std::exp(-2.0) * 8.0 / 6.0, 1e-14);
}

TEST(PoissonPmf, ZeroMeanIsDegenerate) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(3, 0.0), 0.0);
}

TEST(PoissonWindow, CoversRequestedMass) {
  for (double mean : {0.1, 1.0, 10.0, 100.0, 5000.0}) {
    const PoissonWindow w = poisson_window(mean, 1e-10);
    EXPECT_LT(std::fabs(w.tail_mass), 1e-9) << "mean=" << mean;
    double total = 0.0;
    for (double v : w.weights) {
      total += v;
    }
    EXPECT_NEAR(total, 1.0, 1e-12) << "mean=" << mean;  // renormalized
  }
}

TEST(PoissonWindow, WeightsMatchPmf) {
  const double mean = 37.5;
  const PoissonWindow w = poisson_window(mean, 1e-12);
  for (std::size_t i = 0; i < w.weights.size(); i += 7) {
    const std::size_t k = w.k_lo + i;
    EXPECT_NEAR(w.weights[i], poisson_pmf(k, mean), 1e-12);
  }
}

TEST(PoissonWindow, WindowIsAroundMode) {
  const double mean = 1000.0;
  const PoissonWindow w = poisson_window(mean, 1e-12);
  EXPECT_LT(w.k_lo, 1000u);
  EXPECT_GT(w.k_lo + w.weights.size(), 1000u);
  // Window width for Poisson(1000) should be O(sqrt(mean) * z): well under
  // the naive 0..2*mean span.
  EXPECT_LT(w.weights.size(), 600u);
}

TEST(PoissonWindow, MeanRecovered) {
  const double mean = 250.0;
  const PoissonWindow w = poisson_window(mean, 1e-13);
  double m = 0.0;
  for (std::size_t i = 0; i < w.weights.size(); ++i) {
    m += static_cast<double>(w.k_lo + i) * w.weights[i];
  }
  EXPECT_NEAR(m, mean, 1e-6);
}

TEST(PoissonWindow, DegenerateZeroMean) {
  const PoissonWindow w = poisson_window(0.0, 1e-10);
  EXPECT_EQ(w.k_lo, 0u);
  ASSERT_EQ(w.weights.size(), 1u);
  EXPECT_DOUBLE_EQ(w.weights[0], 1.0);
}

}  // namespace
}  // namespace rbx
