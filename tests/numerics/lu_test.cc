#include "numerics/lu.h"

#include <cmath>

#include <gtest/gtest.h>

#include "support/rng.h"

namespace rbx {
namespace {

TEST(Lu, SolvesSmallSystem) {
  Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  const std::vector<double> x = solve_linear(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolvesSystemRequiringPivoting) {
  // Zero on the leading diagonal forces a row swap.
  Matrix a = {{0.0, 1.0}, {1.0, 0.0}};
  const std::vector<double> x = solve_linear(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, DetectsSingularMatrix) {
  Matrix a = {{1.0, 2.0}, {2.0, 4.0}};
  LuDecomposition lu(a);
  EXPECT_TRUE(lu.singular());
  EXPECT_DOUBLE_EQ(lu.determinant(), 0.0);
}

TEST(Lu, Determinant) {
  Matrix a = {{2.0, 0.0, 0.0}, {0.0, 3.0, 0.0}, {0.0, 0.0, 4.0}};
  LuDecomposition lu(a);
  EXPECT_NEAR(lu.determinant(), 24.0, 1e-12);

  Matrix swapped = {{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(LuDecomposition(swapped).determinant(), -1.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(30);
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) = rng.uniform(-1.0, 1.0);
      }
      a(r, r) += 2.0;  // keep well-conditioned
    }
    std::vector<double> x_true(n);
    for (auto& v : x_true) {
      v = rng.uniform(-5.0, 5.0);
    }
    std::vector<double> b;
    mat_vec(a, x_true, b);
    const std::vector<double> x = solve_linear(a, b);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], x_true[i], 1e-8);
    }
  }
}

TEST(Lu, TransposedSolveMatchesExplicitTranspose) {
  Rng rng(505);
  const std::size_t n = 12;
  Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = rng.uniform(-1.0, 1.0);
    }
    a(r, r) += 3.0;
  }
  std::vector<double> b(n);
  for (auto& v : b) {
    v = rng.uniform(-1.0, 1.0);
  }
  LuDecomposition lu(a);
  const std::vector<double> x1 = lu.solve_transposed(b);
  const std::vector<double> x2 = solve_linear(a.transposed(), b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-9);
  }
}

TEST(Lu, InvertRoundTrip) {
  Matrix a = {{4.0, 7.0}, {2.0, 6.0}};
  const Matrix inv = invert(a);
  const Matrix prod = a.multiply(inv);
  EXPECT_LT(prod.max_abs_diff(Matrix::identity(2)), 1e-12);
}

TEST(Lu, SolveMatchesInverseApplication) {
  Matrix a = {{1.0, 2.0, 0.0}, {0.0, 1.0, 3.0}, {4.0, 0.0, 1.0}};
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const std::vector<double> x = solve_linear(a, b);
  const Matrix inv = invert(a);
  std::vector<double> x2;
  mat_vec(inv, b, x2);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(x[i], x2[i], 1e-10);
  }
}

}  // namespace
}  // namespace rbx
