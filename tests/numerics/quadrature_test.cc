#include "numerics/quadrature.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(Quadrature, Polynomial) {
  // Simpson is exact for cubics.
  const auto r = integrate([](double x) { return x * x * x - 2.0 * x; }, 0.0,
                           2.0);
  EXPECT_NEAR(r.value, 0.0, 1e-12);
}

TEST(Quadrature, SinePeriod) {
  const auto r = integrate([](double x) { return std::sin(x); }, 0.0, M_PI);
  EXPECT_NEAR(r.value, 2.0, 1e-10);
}

TEST(Quadrature, SharpPeak) {
  // Narrow Gaussian needs adaptivity.
  const auto r = integrate(
      [](double x) { return std::exp(-1000.0 * (x - 0.5) * (x - 0.5)); }, 0.0,
      1.0, 1e-12);
  EXPECT_NEAR(r.value, std::sqrt(M_PI / 1000.0), 1e-9);
}

TEST(Quadrature, EmptyInterval) {
  const auto r = integrate([](double) { return 123.0; }, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(QuadratureToInfinity, ExponentialTail) {
  const auto r =
      integrate_to_infinity([](double x) { return std::exp(-x); }, 0.0);
  EXPECT_NEAR(r.value, 1.0, 1e-9);
}

TEST(QuadratureToInfinity, ShiftedStart) {
  const auto r = integrate_to_infinity(
      [](double x) { return 2.0 * std::exp(-2.0 * x); }, 1.0, 0.5);
  EXPECT_NEAR(r.value, std::exp(-2.0), 1e-9);
}

TEST(QuadratureToInfinity, MaxOfExponentialsSurvival) {
  // E[max(Exp(1), Exp(1))] = 1.5 via survival function integration.
  const auto r = integrate_to_infinity(
      [](double t) {
        const double g = (1.0 - std::exp(-t)) * (1.0 - std::exp(-t));
        return 1.0 - g;
      },
      0.0);
  EXPECT_NEAR(r.value, 1.5, 1e-9);
}

}  // namespace
}  // namespace rbx
