#include "numerics/sparse.h"

#include <gtest/gtest.h>

#include "numerics/matrix.h"
#include "support/rng.h"

namespace rbx {
namespace {

TEST(Sparse, BuildAndLookup) {
  SparseMatrixBuilder b(3, 3);
  b.add(0, 1, 2.0);
  b.add(1, 2, 3.0);
  b.add(2, 0, 4.0);
  const SparseMatrix m = b.build();
  EXPECT_EQ(m.nonzeros(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
}

TEST(Sparse, DuplicatesSum) {
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 1.0);
  b.add(0, 1, 2.5);
  const SparseMatrix m = b.build();
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 3.5);
}

TEST(Sparse, ZeroValuesDropped) {
  SparseMatrixBuilder b(2, 2);
  b.add(0, 0, 0.0);
  b.add(1, 1, 1.0);
  b.add(1, 0, 1.0);
  b.add(1, 0, -1.0);  // cancels to zero
  const SparseMatrix m = b.build();
  EXPECT_EQ(m.nonzeros(), 1u);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
}

TEST(Sparse, RowSum) {
  SparseMatrixBuilder b(2, 3);
  b.add(0, 0, 1.0);
  b.add(0, 2, 4.0);
  const SparseMatrix m = b.build();
  EXPECT_DOUBLE_EQ(m.row_sum(0), 5.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 0.0);
}

TEST(Sparse, MultiplicationMatchesDense) {
  Rng rng(99);
  const std::size_t rows = 17, cols = 23;
  SparseMatrixBuilder b(rows, cols);
  Matrix dense(rows, cols);
  for (int k = 0; k < 80; ++k) {
    const std::size_t r = rng.uniform_index(rows);
    const std::size_t c = rng.uniform_index(cols);
    const double v = rng.uniform(-2.0, 2.0);
    b.add(r, c, v);
    dense(r, c) += v;
  }
  const SparseMatrix sparse = b.build();

  std::vector<double> x(rows), y_sparse, y_dense;
  for (auto& v : x) {
    v = rng.uniform(-1.0, 1.0);
  }
  sparse.left_multiply(x, y_sparse);
  vec_mat(x, dense, y_dense);
  ASSERT_EQ(y_sparse.size(), cols);
  for (std::size_t i = 0; i < cols; ++i) {
    EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-12);
  }

  std::vector<double> z(cols), r_sparse, r_dense;
  for (auto& v : z) {
    v = rng.uniform(-1.0, 1.0);
  }
  sparse.right_multiply(z, r_sparse);
  mat_vec(dense, z, r_dense);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_NEAR(r_sparse[i], r_dense[i], 1e-12);
  }
}

TEST(Sparse, DenseConversion) {
  SparseMatrixBuilder b(2, 2);
  b.add(0, 1, 7.0);
  const auto dense = b.build().to_dense();
  EXPECT_DOUBLE_EQ(dense[0][1], 7.0);
  EXPECT_DOUBLE_EQ(dense[1][0], 0.0);
}

TEST(Sparse, RowIteration) {
  SparseMatrixBuilder b(3, 4);
  b.add(1, 0, 1.0);
  b.add(1, 3, 2.0);
  const SparseMatrix m = b.build();
  EXPECT_EQ(m.row_end(0), m.row_begin(0));
  double sum = 0.0;
  for (std::size_t k = m.row_begin(1); k < m.row_end(1); ++k) {
    sum += m.entry_value(k);
  }
  EXPECT_DOUBLE_EQ(sum, 3.0);
}

}  // namespace
}  // namespace rbx
