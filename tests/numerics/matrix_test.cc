#include "numerics/matrix.h"

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_TRUE(m.square());
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(t.transposed().max_abs_diff(m), 0.0);
}

TEST(Matrix, Multiply) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = {{0.0, 1.0}, {1.0, 0.0}};
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  Matrix a = {{1.0, -2.0}, {0.5, 4.0}};
  EXPECT_DOUBLE_EQ(a.multiply(Matrix::identity(2)).max_abs_diff(a), 0.0);
  EXPECT_DOUBLE_EQ(Matrix::identity(2).multiply(a).max_abs_diff(a), 0.0);
}

TEST(Matrix, Norms) {
  Matrix m = {{3.0, -4.0}, {0.0, 0.0}};
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(m.inf_norm(), 7.0);
}

TEST(VectorOps, MatVecAndVecMat) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  std::vector<double> x = {1.0, -1.0};
  std::vector<double> y;
  mat_vec(a, x, y);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);

  std::vector<double> row = {1.0, 0.0, 2.0};
  std::vector<double> z;
  vec_mat(row, a, z);
  ASSERT_EQ(z.size(), 2u);
  EXPECT_DOUBLE_EQ(z[0], 11.0);
  EXPECT_DOUBLE_EQ(z[1], 14.0);
}

TEST(VectorOps, DotAxpySumNorm) {
  std::vector<double> a = {1.0, 2.0, 3.0};
  std::vector<double> b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  axpy(2.0, a, b);
  EXPECT_DOUBLE_EQ(b[0], 6.0);
  EXPECT_DOUBLE_EQ(b[2], 12.0);
  EXPECT_DOUBLE_EQ(vec_sum(a), 6.0);
  EXPECT_DOUBLE_EQ(vec_inf_norm(std::vector<double>{-9.0, 2.0}), 9.0);
}

}  // namespace
}  // namespace rbx
