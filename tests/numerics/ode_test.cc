#include "numerics/ode.h"

#include <cmath>

#include <gtest/gtest.h>

namespace rbx {
namespace {

// dy/dt = -y has solution y0 * exp(-t).
TEST(Rk4, ExponentialDecay) {
  OdeRhs rhs = [](double, const std::vector<double>& y,
                  std::vector<double>& dy) { dy[0] = -y[0]; };
  std::vector<double> y = {1.0};
  rk4_integrate(rhs, 0.0, 2.0, 2000, y);
  EXPECT_NEAR(y[0], std::exp(-2.0), 1e-10);
}

// Harmonic oscillator preserves energy reasonably over a few periods.
TEST(Rk4, HarmonicOscillator) {
  OdeRhs rhs = [](double, const std::vector<double>& y,
                  std::vector<double>& dy) {
    dy[0] = y[1];
    dy[1] = -y[0];
  };
  std::vector<double> y = {1.0, 0.0};
  rk4_integrate(rhs, 0.0, 2.0 * M_PI, 10000, y);
  EXPECT_NEAR(y[0], 1.0, 1e-8);
  EXPECT_NEAR(y[1], 0.0, 1e-8);
}

TEST(Rk4, FourthOrderConvergence) {
  OdeRhs rhs = [](double t, const std::vector<double>&,
                  std::vector<double>& dy) { dy[0] = std::cos(t); };
  auto run = [&](std::size_t steps) {
    std::vector<double> y = {0.0};
    rk4_integrate(rhs, 0.0, 1.0, steps, y);
    return std::fabs(y[0] - std::sin(1.0));
  };
  const double e1 = run(10);
  const double e2 = run(20);
  // Halving the step should cut the error ~16x; allow slack.
  EXPECT_GT(e1 / e2, 10.0);
}

TEST(Rkf45, ExponentialDecay) {
  OdeRhs rhs = [](double, const std::vector<double>& y,
                  std::vector<double>& dy) { dy[0] = -3.0 * y[0]; };
  std::vector<double> y = {2.0};
  const AdaptiveResult r = rkf45_integrate(rhs, 0.0, 1.5, y);
  EXPECT_NEAR(y[0], 2.0 * std::exp(-4.5), 1e-7);
  EXPECT_GT(r.steps_taken, 0u);
}

TEST(Rkf45, StiffnessAdaptsStepCount) {
  // A fast then slow system: adaptive integration should spend far fewer
  // steps than fixed-step at comparable accuracy.
  OdeRhs rhs = [](double, const std::vector<double>& y,
                  std::vector<double>& dy) { dy[0] = -50.0 * y[0]; };
  std::vector<double> y = {1.0};
  const AdaptiveResult r = rkf45_integrate(rhs, 0.0, 10.0, y);
  EXPECT_NEAR(y[0], std::exp(-500.0), 1e-9);  // ~0
  EXPECT_LT(r.steps_taken, 20000u);
}

TEST(Rkf45, ZeroLengthIntervalIsIdentity) {
  OdeRhs rhs = [](double, const std::vector<double>& y,
                  std::vector<double>& dy) { dy[0] = -y[0]; };
  std::vector<double> y = {5.0};
  rkf45_integrate(rhs, 1.0, 1.0, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(Rkf45, CoupledLinearSystemMatchesMatrixExponential) {
  // y' = A y with A = [[0, 1], [-2, -3]]; eigenvalues -1, -2.
  OdeRhs rhs = [](double, const std::vector<double>& y,
                  std::vector<double>& dy) {
    dy[0] = y[1];
    dy[1] = -2.0 * y[0] - 3.0 * y[1];
  };
  std::vector<double> y = {1.0, 0.0};
  rkf45_integrate(rhs, 0.0, 1.0, y);
  // Exact: y(t) = 2 e^-t - e^-2t, y'(t) = -2 e^-t + 2 e^-2t.
  EXPECT_NEAR(y[0], 2.0 * std::exp(-1.0) - std::exp(-2.0), 1e-7);
  EXPECT_NEAR(y[1], -2.0 * std::exp(-1.0) + 2.0 * std::exp(-2.0), 1e-7);
}

}  // namespace
}  // namespace rbx
