#include "trace/prp_plan.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace rbx {
namespace {

// Builds a history in which every RP of every process is followed by PRP
// implants in all other processes (the paper's implantation algorithm),
// with a small recording delay.
History implanted_history(std::size_t n,
                          const std::vector<std::pair<ProcessId, double>>& rps,
                          const std::vector<std::tuple<ProcessId, ProcessId,
                                                       double>>& interactions,
                          double implant_delay = 0.001) {
  struct Ev {
    double t;
    int type;  // 0 = rp, 1 = interaction
    ProcessId a, b;
  };
  std::vector<Ev> evs;
  for (const auto& [p, t] : rps) {
    evs.push_back({t, 0, p, p});
  }
  for (const auto& [a, b, t] : interactions) {
    evs.push_back({t, 1, a, b});
  }
  std::sort(evs.begin(), evs.end(),
            [](const Ev& x, const Ev& y) { return x.t < y.t; });
  History h(n);
  std::vector<std::size_t> seq(n, 0);
  double cursor = 0.0;  // keeps emission monotone even for tight event gaps
  auto clamp = [&cursor](double t) {
    cursor = std::max(cursor, t);
    return cursor;
  };
  for (const Ev& e : evs) {
    if (e.type == 0) {
      h.add_recovery_point(e.a, clamp(e.t));
      ++seq[e.a];
      for (ProcessId q = 0; q < n; ++q) {
        if (q != e.a) {
          h.add_pseudo_recovery_point(q, clamp(e.t + implant_delay), e.a,
                                      seq[e.a]);
        }
      }
    } else {
      h.add_interaction(e.a, e.b, clamp(e.t));
    }
  }
  return h;
}

TEST(PrpPlanner, LocalErrorRollsToPseudoRecoveryLine) {
  // P0 establishes RP2 at t=2; PRPs implanted in P1 and P2 right after.
  // A local error in P0 detected at t=3 restarts everyone from the pseudo
  // recovery line of RP2^0.
  const History h = implanted_history(
      3, {{0, 1.0}, {1, 1.2}, {2, 1.4}, {0, 2.0}}, {{0, 1, 2.5}});

  const PrpRollbackResult r =
      PrpRollbackPlanner(h).plan(0, 3.0, ErrorScope::kLocal);
  EXPECT_EQ(r.iterations, 1u);
  EXPECT_DOUBLE_EQ(r.restart[0].time, 2.0);
  EXPECT_FALSE(r.restart[0].is_pseudo);
  EXPECT_DOUBLE_EQ(r.restart[1].time, 2.001);
  EXPECT_TRUE(r.restart[1].is_pseudo);
  EXPECT_DOUBLE_EQ(r.restart[2].time, 2.001);
  EXPECT_EQ(r.affected_count, 3u);
  EXPECT_NEAR(r.rollback_distance, 1.0, 1e-9);
}

TEST(PrpPlanner, RollbackDistanceIsBoundedByOwnRpGap) {
  // Unlike asynchronous RBs, the PRP restart stays within one RP of the
  // failing process even under heavy interaction.
  const History h = implanted_history(
      2, {{0, 1.0}, {1, 1.1}, {0, 2.0}, {1, 2.1}, {0, 3.0}},
      {{0, 1, 1.5}, {0, 1, 2.5}, {0, 1, 3.5}});
  const PrpRollbackResult r =
      PrpRollbackPlanner(h).plan(0, 4.0, ErrorScope::kLocal);
  // P0 restarts from RP@3.0; P1 from PRP@3.001.
  EXPECT_DOUBLE_EQ(r.restart[0].time, 3.0);
  EXPECT_NEAR(r.restart[1].time, 3.001, 1e-12);
  EXPECT_NEAR(r.rollback_distance, 1.0, 1e-9);
}

TEST(PrpPlanner, ContaminatedPrpTriggersSecondIteration) {
  // Propagated error: P1's restored PRP (implanted at 2.001, after P1's own
  // last acceptance test at 1.2) may hold contaminated state, so step 3
  // moves the pointer to P1, pushing the line back to P1's RP and the PRPs
  // implanted for it.
  const History h = implanted_history(
      3, {{0, 1.0}, {1, 1.2}, {2, 1.4}, {0, 2.0}}, {{0, 1, 2.5}});
  const PrpRollbackResult r =
      PrpRollbackPlanner(h).plan(0, 3.0, ErrorScope::kPropagated);
  EXPECT_GE(r.iterations, 2u);
  EXPECT_DOUBLE_EQ(r.restart[1].time, 1.2);
  EXPECT_FALSE(r.restart[1].is_pseudo);
  // P0 now restores the PRP for P1's RP1 at 1.201 (older than its RP@2.0).
  EXPECT_NEAR(r.restart[0].time, 1.201, 1e-12);
  EXPECT_TRUE(r.restart[0].is_pseudo);
}

TEST(PrpPlanner, TerminatesWithinNIterations) {
  const History h = implanted_history(
      4,
      {{0, 1.0}, {1, 1.5}, {2, 2.0}, {3, 2.5}, {0, 3.0}, {1, 3.5}},
      {{0, 1, 3.2}, {1, 2, 3.3}, {2, 3, 3.4}});
  const PrpRollbackResult r = PrpRollbackPlanner(h).plan(0, 4.0);
  EXPECT_LE(r.iterations, 4u);
  EXPECT_EQ(r.affected_count, 4u);
}

TEST(PrpPlanner, RestartNeverMovesForward) {
  const History h = implanted_history(
      3, {{0, 1.0}, {1, 1.5}, {2, 2.0}, {0, 2.5}, {1, 3.0}}, {{0, 1, 2.7}});
  const PrpRollbackResult r = PrpRollbackPlanner(h).plan(1, 3.5);
  for (ProcessId q = 0; q < 3; ++q) {
    EXPECT_LE(r.restart[q].time, 3.5);
  }
}

TEST(PrpPlanner, NoRecoveryPointsFallsBackToStart) {
  History h(2);
  h.add_interaction(0, 1, 1.0);
  const PrpRollbackResult r = PrpRollbackPlanner(h).plan(0, 2.0);
  EXPECT_TRUE(r.domino_to_start);
  EXPECT_TRUE(r.restart[0].is_initial);
  EXPECT_TRUE(r.restart[1].is_initial);
}

TEST(PrpPlanner, ScopedVariantLimitsAffectedSet) {
  // With affects_everyone = false, a process that never interacted with the
  // pointer keeps running.
  const History h = implanted_history(
      3, {{0, 1.0}, {1, 1.2}, {2, 1.4}, {0, 2.0}}, {{0, 1, 2.5}});
  const PrpRollbackResult r =
      PrpRollbackPlanner(h, /*affects_everyone=*/false).plan(0, 3.0);
  EXPECT_TRUE(r.affected[0]);
  EXPECT_TRUE(r.affected[1]);   // interacted at 2.5 in (2.0, 3.0]
  EXPECT_FALSE(r.affected[2]);  // never touched P0
  EXPECT_EQ(r.affected_count, 2u);
}

// Property: PRP rollback distance <= async rollback distance is NOT a
// theorem (different restart semantics), but PRP never falls back to the
// initial state when every process has an RP, and the pointer loop
// terminates within n iterations.
class PrpRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(PrpRandomTest, TerminationAndBoundedness) {
  Rng rng(GetParam() * 104729u);
  const std::size_t n = 2 + rng.uniform_index(3);
  std::vector<std::pair<ProcessId, double>> rps;
  std::vector<std::tuple<ProcessId, ProcessId, double>> interactions;
  double t = 0.5;
  for (ProcessId p = 0; p < n; ++p) {
    rps.push_back({p, t});
    t += 0.01;
  }
  for (int e = 0; e < 120; ++e) {
    t += rng.exponential(2.0);
    if (rng.bernoulli(0.4)) {
      rps.push_back({rng.uniform_index(n), t});
    } else {
      const ProcessId a = rng.uniform_index(n);
      ProcessId b = rng.uniform_index(n - 1);
      if (b >= a) {
        ++b;
      }
      interactions.push_back({a, b, t});
    }
  }
  const History h = implanted_history(n, rps, interactions);
  const double t_f = t + 1.0;
  const ProcessId failed = rng.uniform_index(n);

  const PrpRollbackResult r = PrpRollbackPlanner(h).plan(failed, t_f);
  EXPECT_LE(r.iterations, n);
  EXPECT_FALSE(r.domino_to_start);
  EXPECT_TRUE(r.affected[failed]);
  for (ProcessId q = 0; q < n; ++q) {
    EXPECT_LE(r.restart[q].time, t_f);
    EXPECT_GE(r.restart[q].time, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrpRandomTest, ::testing::Range(1u, 16u));

}  // namespace
}  // namespace rbx
