#include "trace/recovery_line.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace rbx {
namespace {

TEST(RecoveryLineFinder, NoInteractionsMeansLatestRps) {
  History h(3);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 2.0);
  h.add_recovery_point(2, 3.0);
  h.add_recovery_point(0, 4.0);

  RecoveryLineFinder finder(h);
  const RecoveryLine line = finder.latest_line();
  EXPECT_DOUBLE_EQ(line.points[0].time, 4.0);
  EXPECT_DOUBLE_EQ(line.points[1].time, 2.0);
  EXPECT_DOUBLE_EQ(line.points[2].time, 3.0);
  EXPECT_TRUE(finder.is_consistent(line));
}

TEST(RecoveryLineFinder, SandwichedInteractionForcesDemotion) {
  // P0: RP at 1, RP at 5.  P1: RP at 2.  Interaction at 3 sits between
  // P1's RP (2) and P0's later RP (5), so P0 must fall back to RP at 1.
  History h(2);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 2.0);
  h.add_interaction(0, 1, 3.0);
  h.add_recovery_point(0, 5.0);

  RecoveryLineFinder finder(h);
  const RecoveryLine line = finder.latest_line();
  EXPECT_DOUBLE_EQ(line.points[0].time, 1.0);
  EXPECT_DOUBLE_EQ(line.points[1].time, 2.0);
  EXPECT_TRUE(finder.is_consistent(line));
}

TEST(RecoveryLineFinder, InteractionAfterBothRpsIsHarmless) {
  History h(2);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 2.0);
  h.add_interaction(0, 1, 3.0);

  const RecoveryLine line = RecoveryLineFinder(h).latest_line();
  EXPECT_DOUBLE_EQ(line.points[0].time, 1.0);
  EXPECT_DOUBLE_EQ(line.points[1].time, 2.0);
}

TEST(RecoveryLineFinder, InteractionBeforeBothRpsIsHarmless) {
  History h(2);
  h.add_interaction(0, 1, 0.5);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 2.0);

  const RecoveryLine line = RecoveryLineFinder(h).latest_line();
  EXPECT_DOUBLE_EQ(line.points[0].time, 1.0);
  EXPECT_DOUBLE_EQ(line.points[1].time, 2.0);
}

TEST(RecoveryLineFinder, CascadingDemotionAcrossThreeProcesses) {
  // Chain of dependencies: demoting P2 (twice) exposes a violation with P1,
  // whose demotion exposes one with P0 - a three-stage cascade.
  History h(3);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 1.5);
  h.add_recovery_point(2, 2.0);
  h.add_interaction(0, 1, 3.0);
  h.add_recovery_point(0, 3.5);
  h.add_interaction(1, 2, 4.0);
  h.add_recovery_point(1, 4.5);
  h.add_interaction(1, 2, 5.0);
  h.add_recovery_point(2, 6.0);
  h.add_interaction(0, 2, 7.0);
  h.add_recovery_point(2, 8.0);

  RecoveryLineFinder finder(h);
  const RecoveryLine line = finder.latest_line();
  EXPECT_TRUE(finder.is_consistent(line));
  // Fixpoint trace: (3.5, 4.5, 8.0) -> P2 demotes past 7.0 to 6.0 -> past
  // 5.0 to 2.0 -> P1 straddles 4.0, demotes to 1.5 -> P0 straddles 3.0,
  // demotes to 1.0.
  EXPECT_DOUBLE_EQ(line.points[0].time, 1.0);
  EXPECT_DOUBLE_EQ(line.points[1].time, 1.5);
  EXPECT_DOUBLE_EQ(line.points[2].time, 2.0);
}

TEST(RecoveryLineFinder, DominoToTheBeginning) {
  // Alternating interactions with no safe combination push both processes
  // to their initial states - the paper's domino effect.
  History h(2);
  h.add_interaction(0, 1, 0.5);
  h.add_recovery_point(0, 1.0);
  h.add_interaction(0, 1, 1.5);
  h.add_recovery_point(1, 2.0);
  h.add_interaction(0, 1, 2.5);
  h.add_recovery_point(0, 3.0);
  h.add_interaction(0, 1, 3.5);

  // Any pair (RP0@t0, RP1@2.0) straddles an interaction: (1.0, 2.0) holds
  // 1.5; (3.0, 2.0) holds 2.5.
  const RecoveryLine line = RecoveryLineFinder(h).latest_line();
  EXPECT_TRUE(line.points[0].is_initial || line.points[1].is_initial);
  EXPECT_TRUE(RecoveryLineFinder(h).is_consistent(line));
}

// The paper's Figure 1 scenario (qualitative reconstruction): P1 fails its
// acceptance test and the whole system must restart from recovery line RL2,
// discarding everything after it.
TEST(RecoveryLineFinder, PaperFigureOneShape) {
  History h(3);
  // RL1: all three establish RPs early.
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 1.2);
  h.add_recovery_point(2, 1.4);
  // Some separated communication, then RL2 forms.
  h.add_interaction(0, 1, 2.0);
  h.add_recovery_point(0, 3.0);
  h.add_recovery_point(1, 3.2);
  h.add_interaction(1, 2, 3.5);  // sandwiched between P1@3.2 and P2@4.0?
  h.add_recovery_point(2, 4.0);
  // After RL2-ish points, heavy communication without new RPs.
  h.add_interaction(0, 1, 5.0);
  h.add_interaction(1, 2, 5.5);
  h.add_interaction(0, 2, 6.0);

  const RecoveryLine line = RecoveryLineFinder(h).latest_line();
  EXPECT_TRUE(RecoveryLineFinder(h).is_consistent(line));
  // P2's RP@4.0 straddles the 3.5 interaction against P1@3.2 -> demoted
  // to 1.4; then P1@3.2 vs P2@1.4 straddles 2.0? (1,2) pair interactions:
  // 3.5 and 5.5 only; [1.4, 3.2] holds none -> P1 stays at 3.2.
  EXPECT_DOUBLE_EQ(line.points[0].time, 3.0);
  EXPECT_DOUBLE_EQ(line.points[1].time, 3.2);
  EXPECT_DOUBLE_EQ(line.points[2].time, 1.4);
}

TEST(RecoveryLineFinder, LatestLineAtEarlierCutoff) {
  History h(2);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 2.0);
  h.add_recovery_point(0, 3.0);

  const RecoveryLine early = RecoveryLineFinder(h).latest_line(1.5);
  EXPECT_DOUBLE_EQ(early.points[0].time, 1.0);
  EXPECT_TRUE(early.points[1].is_initial);
}

TEST(RecoveryLineFinder, ConstrainedLineRespectsCeilings) {
  History h(2);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 2.0);
  h.add_recovery_point(0, 3.0);

  std::vector<RestartPoint> ceiling = {RestartPoint{1.0, false, false, 1},
                                       RestartPoint{2.0, false, false, 1}};
  const RecoveryLine line =
      RecoveryLineFinder(h).constrained_line(std::move(ceiling));
  EXPECT_DOUBLE_EQ(line.points[0].time, 1.0);
  EXPECT_DOUBLE_EQ(line.points[1].time, 2.0);
}

TEST(RecoveryLineFinder, ClosedIntervalEdgeCase) {
  // Interaction exactly at an RP time counts as sandwiched (the paper uses
  // closed intervals).
  History h(2);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 2.0);
  h.add_interaction(0, 1, 3.0);
  h.add_recovery_point(0, 3.0);  // same instant as the interaction

  const RecoveryLine line = RecoveryLineFinder(h).latest_line();
  EXPECT_DOUBLE_EQ(line.points[0].time, 1.0);
}

// Property test: on random histories the found line is always consistent,
// maximal lines dominate any earlier cut-off's line, and consistency
// verification agrees with a brute-force scan.
class RecoveryLineRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RecoveryLineRandomTest, ConsistentAndMonotone) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.uniform_index(3);
  History h(n);
  double t = 0.0;
  for (int e = 0; e < 200; ++e) {
    t += rng.exponential(1.0);
    if (rng.bernoulli(0.5)) {
      h.add_recovery_point(rng.uniform_index(n), t);
    } else {
      const ProcessId a = rng.uniform_index(n);
      ProcessId b = rng.uniform_index(n - 1);
      if (b >= a) {
        ++b;
      }
      h.add_interaction(a, b, t);
    }
  }

  RecoveryLineFinder finder(h);
  const RecoveryLine full = finder.latest_line();
  EXPECT_TRUE(finder.is_consistent(full));

  // Monotonicity in the cut-off.
  const RecoveryLine half = finder.latest_line(t / 2.0);
  EXPECT_TRUE(finder.is_consistent(half));
  for (ProcessId p = 0; p < n; ++p) {
    EXPECT_LE(half.points[p].time, full.points[p].time + 1e-12);
  }

  // Maximality spot check: promoting any single component to its next RP
  // breaks consistency (otherwise the fixpoint was not maximal).
  for (ProcessId p = 0; p < n; ++p) {
    const auto& times = h.rp_times(p);
    // Find the next RP strictly after the line's point.
    double next = -1.0;
    for (double rp : times) {
      if (rp > full.points[p].time) {
        next = rp;
        break;
      }
    }
    if (next < 0.0) {
      continue;
    }
    RecoveryLine promoted = full;
    promoted.points[p] = RestartPoint{next, false, false, 0};
    EXPECT_FALSE(finder.is_consistent(promoted))
        << "line was not maximal in component " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryLineRandomTest,
                         ::testing::Range(1u, 21u));

}  // namespace
}  // namespace rbx
