#include "trace/rollback.h"

#include <gtest/gtest.h>

#include "support/rng.h"

namespace rbx {
namespace {

TEST(RollbackAnalyzer, IsolatedFailureRollsOnlyTheFailingProcess) {
  History h(3);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 1.0);
  h.add_recovery_point(2, 1.0);
  h.add_recovery_point(0, 2.0);

  const RollbackResult r = RollbackAnalyzer(h).analyze_failure(0, 3.0);
  EXPECT_TRUE(r.affected[0]);
  EXPECT_FALSE(r.affected[1]);
  EXPECT_FALSE(r.affected[2]);
  EXPECT_EQ(r.affected_count, 1u);
  EXPECT_DOUBLE_EQ(r.line.points[0].time, 2.0);
  EXPECT_DOUBLE_EQ(r.rollback_distance, 1.0);
  EXPECT_FALSE(r.domino_to_start);
}

TEST(RollbackAnalyzer, PropagatesThroughInteraction) {
  // P0 interacts with P1 after P0's RP; P0's rollback undoes the
  // interaction and drags P1 back to its own RP.
  History h(2);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 1.5);
  h.add_interaction(0, 1, 2.0);

  const RollbackResult r = RollbackAnalyzer(h).analyze_failure(0, 3.0);
  EXPECT_TRUE(r.affected[0]);
  EXPECT_TRUE(r.affected[1]);
  EXPECT_DOUBLE_EQ(r.line.points[0].time, 1.0);
  EXPECT_DOUBLE_EQ(r.line.points[1].time, 1.5);
  EXPECT_DOUBLE_EQ(r.rollback_distance, 2.0);
}

TEST(RollbackAnalyzer, PeerWithLaterRpIsNotAffected) {
  // The interaction happened before P0's restored RP: nothing to undo.
  History h(2);
  h.add_interaction(0, 1, 0.5);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 1.5);

  const RollbackResult r = RollbackAnalyzer(h).analyze_failure(0, 2.0);
  EXPECT_TRUE(r.affected[0]);
  EXPECT_FALSE(r.affected[1]);
  EXPECT_DOUBLE_EQ(r.line.points[0].time, 1.0);
}

TEST(RollbackAnalyzer, TransitivePropagation) {
  // P0 -> P1 -> P2 chain of interactions; P0's failure cascades to P2.
  History h(3);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 1.2);
  h.add_recovery_point(2, 1.4);
  h.add_interaction(0, 1, 2.0);
  h.add_recovery_point(1, 2.5);  // after the (0,1) interaction
  h.add_interaction(1, 2, 3.0);
  h.add_recovery_point(2, 3.5);  // after the (1,2) interaction

  const RollbackResult r = RollbackAnalyzer(h).analyze_failure(0, 4.0);
  EXPECT_EQ(r.affected_count, 3u);
  EXPECT_DOUBLE_EQ(r.line.points[0].time, 1.0);
  // P1 cannot use RP@2.5 (straddles 2.0 against P0@1.0) -> 1.2.
  EXPECT_DOUBLE_EQ(r.line.points[1].time, 1.2);
  // P2 cannot use RP@3.5 (straddles 3.0 against P1@1.2) -> 1.4.
  EXPECT_DOUBLE_EQ(r.line.points[2].time, 1.4);
}

TEST(RollbackAnalyzer, DominoToTheStart) {
  History h(2);
  h.add_interaction(0, 1, 1.0);
  h.add_recovery_point(0, 2.0);
  h.add_interaction(0, 1, 3.0);
  h.add_recovery_point(1, 4.0);
  h.add_interaction(0, 1, 5.0);

  // P1's only RP@4.0 straddles 3.0 against P0's RP@2.0 and straddles 5.0
  // against "now"; with P0 forced behind 2.0 the system unravels.
  const RollbackResult r = RollbackAnalyzer(h).analyze_failure(0, 6.0);
  EXPECT_TRUE(r.domino_to_start);
  EXPECT_EQ(r.affected_count, 2u);
  EXPECT_DOUBLE_EQ(r.rollback_distance, 6.0);
}

TEST(RollbackAnalyzer, FailureWithoutAnyRpRestartsFromScratch) {
  History h(2);
  h.add_interaction(0, 1, 1.0);
  const RollbackResult r = RollbackAnalyzer(h).analyze_failure(0, 2.0);
  EXPECT_TRUE(r.line.points[0].is_initial);
  EXPECT_TRUE(r.domino_to_start);
}

TEST(RollbackAnalyzer, DistancesPerProcess) {
  History h(2);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 3.0);
  h.add_interaction(0, 1, 4.0);

  const RollbackResult r = RollbackAnalyzer(h).analyze_failure(0, 5.0);
  EXPECT_DOUBLE_EQ(r.distance[0], 4.0);
  EXPECT_DOUBLE_EQ(r.distance[1], 2.0);
  EXPECT_DOUBLE_EQ(r.rollback_distance, 4.0);
}

// Property: the restart line is always consistent, never newer than the
// failing process's last RP, and unaffected processes have zero distance.
class RollbackRandomTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(RollbackRandomTest, InvariantsOnRandomHistories) {
  Rng rng(GetParam() * 7919u);
  const std::size_t n = 2 + rng.uniform_index(3);
  History h(n);
  double t = 0.0;
  for (int e = 0; e < 150; ++e) {
    t += rng.exponential(1.0);
    if (rng.bernoulli(0.45)) {
      h.add_recovery_point(rng.uniform_index(n), t);
    } else {
      const ProcessId a = rng.uniform_index(n);
      ProcessId b = rng.uniform_index(n - 1);
      if (b >= a) {
        ++b;
      }
      h.add_interaction(a, b, t);
    }
  }
  const double t_f = t + 1.0;
  const ProcessId failed = rng.uniform_index(n);

  const RollbackResult r = RollbackAnalyzer(h).analyze_failure(failed, t_f);
  EXPECT_TRUE(r.affected[failed]);
  EXPECT_TRUE(RecoveryLineFinder(h).is_consistent(r.line));
  const auto last_rp = h.latest_rp_before(failed, t_f);
  const double cap = last_rp ? last_rp->time : 0.0;
  EXPECT_LE(r.line.points[failed].time, cap + 1e-12);
  for (ProcessId q = 0; q < n; ++q) {
    if (!r.affected[q]) {
      EXPECT_DOUBLE_EQ(r.distance[q], 0.0);
      EXPECT_DOUBLE_EQ(r.line.points[q].time, t_f);
    } else {
      EXPECT_GE(r.distance[q], 0.0);
      EXPECT_LE(r.distance[q], t_f + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RollbackRandomTest,
                         ::testing::Range(1u, 16u));

}  // namespace
}  // namespace rbx
