#include "trace/history.h"

#include <gtest/gtest.h>

namespace rbx {
namespace {

TEST(History, RecordsRecoveryPointsInOrder) {
  History h(2);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(1, 2.0);
  h.add_recovery_point(0, 3.0);
  EXPECT_EQ(h.rp_count(0), 2u);
  EXPECT_EQ(h.rp_count(1), 1u);
  EXPECT_EQ(h.rp_times(0), (std::vector<double>{1.0, 3.0}));
  EXPECT_DOUBLE_EQ(h.last_time(), 3.0);
  EXPECT_EQ(h.events().size(), 3u);
}

TEST(History, LatestRpQueries) {
  History h(1);
  h.add_recovery_point(0, 1.0);
  h.add_recovery_point(0, 2.0);
  h.add_recovery_point(0, 3.0);

  const auto at2 = h.latest_rp_at_or_before(0, 2.0);
  ASSERT_TRUE(at2.has_value());
  EXPECT_DOUBLE_EQ(at2->time, 2.0);
  EXPECT_EQ(at2->rp_seq, 2u);
  EXPECT_FALSE(at2->is_initial);
  EXPECT_FALSE(at2->is_pseudo);

  const auto before2 = h.latest_rp_before(0, 2.0);
  ASSERT_TRUE(before2.has_value());
  EXPECT_DOUBLE_EQ(before2->time, 1.0);
  EXPECT_EQ(before2->rp_seq, 1u);

  EXPECT_FALSE(h.latest_rp_before(0, 1.0).has_value());
  EXPECT_FALSE(h.latest_rp_at_or_before(0, 0.5).has_value());
}

TEST(History, InteractionQueriesAreSymmetricAndOrdered) {
  History h(3);
  h.add_interaction(0, 1, 1.0);
  h.add_interaction(1, 0, 2.0);  // reversed order, same pair
  h.add_interaction(1, 2, 3.0);

  EXPECT_EQ(h.interaction_times(0, 1), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(h.interaction_times(1, 0), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(h.interaction_times(0, 2).size(), 0u);

  EXPECT_TRUE(h.has_interaction_in(0, 1, 0.5, 1.5));
  EXPECT_TRUE(h.has_interaction_in(0, 1, 1.0, 1.0));  // closed interval
  EXPECT_FALSE(h.has_interaction_in(0, 1, 2.5, 9.0));
  // Bounds swap transparently.
  EXPECT_TRUE(h.has_interaction_in(0, 1, 1.5, 0.5));

  const auto first = h.first_interaction_in(0, 1, 0.0, 10.0);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(*first, 1.0);
}

TEST(History, PrpLookup) {
  History h(3);
  h.add_recovery_point(0, 1.0);
  h.add_pseudo_recovery_point(1, 1.01, 0, 1);
  h.add_pseudo_recovery_point(2, 1.02, 0, 1);
  h.add_recovery_point(0, 2.0);
  h.add_pseudo_recovery_point(1, 2.01, 0, 2);

  const auto prp = h.prp_for(1, 0, 1);
  ASSERT_TRUE(prp.has_value());
  EXPECT_DOUBLE_EQ(prp->time, 1.01);
  EXPECT_TRUE(prp->is_pseudo);

  const auto prp2 = h.prp_for(1, 0, 2);
  ASSERT_TRUE(prp2.has_value());
  EXPECT_DOUBLE_EQ(prp2->time, 2.01);

  EXPECT_FALSE(h.prp_for(2, 0, 2).has_value());
  EXPECT_FALSE(h.prp_for(1, 0, 9).has_value());
}

TEST(History, RecoveryLineTimeSpan) {
  RecoveryLine line;
  line.points = {RestartPoint{1.0, false, false, 1},
                 RestartPoint{3.0, false, false, 2},
                 RestartPoint{2.0, false, false, 1}};
  EXPECT_DOUBLE_EQ(line.min_time(), 1.0);
  EXPECT_DOUBLE_EQ(line.max_time(), 3.0);
}

TEST(HistoryDeathTest, RejectsOutOfOrderEvents) {
  History h(2);
  h.add_recovery_point(0, 5.0);
  EXPECT_DEATH(h.add_recovery_point(1, 4.0), "time-ordered");
}

TEST(HistoryDeathTest, RejectsSelfInteraction) {
  History h(2);
  EXPECT_DEATH(h.add_interaction(1, 1, 1.0), "");
}

}  // namespace
}  // namespace rbx
