#include "trace/dot.h"

#include <gtest/gtest.h>

#include "model/async_symmetric.h"

namespace rbx {
namespace {

TEST(Dot, HistoryExportContainsAllEvents) {
  History h(2);
  h.add_recovery_point(0, 1.0);
  h.add_pseudo_recovery_point(1, 1.01, 0, 1);
  h.add_interaction(0, 1, 2.0);

  const std::string dot = history_to_dot(h, "fig1");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("fig1"), std::string::npos);
  EXPECT_NE(dot.find("rp_0_1"), std::string::npos);
  EXPECT_NE(dot.find("prp_1_0_1"), std::string::npos);
  EXPECT_NE(dot.find("ix_0"), std::string::npos);
  EXPECT_NE(dot.find("P1"), std::string::npos);
  EXPECT_NE(dot.find("P2"), std::string::npos);
}

TEST(Dot, CtmcExportHasStatesAndRates) {
  SymmetricAsyncModel m(3, 1.0, 1.0);
  const std::string dot = ctmc_to_dot(
      m.chain(),
      [&m](std::size_t s) {
        if (s == m.entry_state()) return std::string("Sr");
        if (s == m.absorbing_state()) return std::string("Sr+1");
        return "S~" + std::to_string(s - 1);
      },
      "fig3");
  EXPECT_NE(dot.find("Sr"), std::string::npos);
  EXPECT_NE(dot.find("S~0"), std::string::npos);
  // R4' rate n*mu = 3.
  EXPECT_NE(dot.find("label=\"3\""), std::string::npos);
  // No self-loop edges.
  EXPECT_EQ(dot.find("s0 -> s0"), std::string::npos);
}

TEST(Dot, DeterministicOutput) {
  History h(2);
  h.add_recovery_point(0, 1.0);
  h.add_interaction(0, 1, 2.0);
  EXPECT_EQ(history_to_dot(h), history_to_dot(h));
}

}  // namespace
}  // namespace rbx
