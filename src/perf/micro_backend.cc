#include "perf/micro_backend.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "des/async_sim.h"
#include "model/async_model.h"
#include "model/async_symmetric.h"
#include "support/check.h"

namespace rbx {

namespace {

volatile double g_sink = 0.0;

}  // namespace

double micro_time_ns(std::size_t reps, const std::function<double()>& fn) {
  g_sink = g_sink + fn();
  const auto t0 = std::chrono::steady_clock::now();
  double acc = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    acc += fn();
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  g_sink = g_sink + acc;
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                 .count()) /
         static_cast<double>(reps);
}

bool MarkovMicroBackend::supports(const Scenario& scenario) const {
  // The full model holds 2^n + 1 states; past 9 the dense solves stop
  // being "micro".
  return scenario.n() >= 2 && scenario.n() <= 9;
}

ResultSet MarkovMicroBackend::evaluate(const Scenario& scenario) const {
  RBX_CHECK_MSG(supports(scenario), "micro-markov needs 2 <= n <= 9");
  const std::size_t n = scenario.n();
  ResultSet out(name(), scenario.label());
  const auto set_ns = [&out](const char* metric, std::size_t reps,
                             const std::function<double()>& fn) {
    out.set(metric, micro_time_ns(reps, fn), 0.0, reps);
  };
  // Budgets shrink with the state count so every n finishes promptly.
  const std::size_t budget = scenario.samples();
  const std::size_t heavy =
      std::max<std::size_t>(1, budget >> std::min<std::size_t>(n, 12));

  set_ns("build_full_ns", heavy, [n] {
    AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, 0.5));
    return model.mean_interval();
  });
  {
    // Hold rho at 0.05 so E[X] stays well-conditioned at every size.
    const double lambda = 2.0 * 0.05 / (static_cast<double>(n) - 1.0);
    set_ns("build_lumped_ns", std::max<std::size_t>(1, budget / 4),
           [n, lambda] {
             SymmetricAsyncModel model(n, 1.0, lambda);
             return model.mean_interval();
           });
  }
  if (n <= 8) {
    AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, 1.0));
    std::vector<double> pi0(model.num_states(), 0.0);
    pi0[0] = 1.0;
    set_ns("transient_uniformization_ns", heavy,
           [&model, &pi0] { return model.chain().transient(pi0, 1.0)[0]; });
    set_ns("transient_rk4_ns", heavy, [&model, &pi0] {
      return model.chain().transient_rk4(pi0, 1.0, 500)[0];
    });
  }
  if (n <= 7) {
    AsyncRbModel model(ProcessSetParams::symmetric(n, 1.0, 1.0));
    double t = 0.1;
    set_ns("phase_pdf_ns", heavy, [&model, &t] {
      const double v = model.interval_pdf(t);
      t = t < 2.0 ? t + 0.1 : 0.1;
      return v;
    });
    set_ns("expected_visits_ns", heavy, [&model] {
      return model.expected_rp_count_split_chain(0);
    });
  }
  {
    AsyncRbSimulator sim(ProcessSetParams::symmetric(n, 1.0, 1.0),
                         scenario.seed());
    set_ns("mc_lines_ns", std::max<std::size_t>(1, budget / 256),
           [&sim] { return sim.run_lines(100).interval.mean(); });
  }
  return out;
}

}  // namespace rbx
