#include "perf/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "perf/json.h"
#include "recov/journal.h"

namespace rbx {
namespace perf {

namespace {

constexpr const char* kSchema = "rbx-bench-v1";

Json kernel_to_json(const KernelStats& k) {
  Json j = Json::object();
  j.set("name", Json::string(k.name));
  j.set("layer", Json::string(k.layer));
  j.set("ns_median", Json::number(k.ns_median));
  j.set("ns_p10", Json::number(k.ns_p10));
  j.set("ns_p90", Json::number(k.ns_p90));
  j.set("reps", Json::number(static_cast<double>(k.reps)));
  j.set("intervals", Json::number(static_cast<double>(k.intervals)));
  j.set("threads", Json::number(static_cast<double>(k.threads)));
  return j;
}

KernelStats kernel_from_json(const Json& j) {
  KernelStats k;
  k.name = j.string_at("name");
  k.layer = j.string_at("layer");
  k.ns_median = j.number_at("ns_median");
  k.ns_p10 = j.number_at("ns_p10");
  k.ns_p90 = j.number_at("ns_p90");
  k.reps = static_cast<std::uint64_t>(j.number_at("reps"));
  k.intervals = static_cast<std::size_t>(j.number_at("intervals"));
  k.threads = static_cast<std::size_t>(j.number_at("threads"));
  return k;
}

Json sweep_to_json(const SweepRecord& s) {
  Json j = Json::object();
  j.set("source", Json::string(s.source));
  j.set("sweep", Json::number(static_cast<double>(s.sweep)));
  j.set("committed_cells",
        Json::number(static_cast<double>(s.committed_cells)));
  j.set("evaluated_cells",
        Json::number(static_cast<double>(s.evaluated_cells)));
  j.set("wall_ms", Json::number(static_cast<double>(s.wall_ms)));
  j.set("cells_per_sec", Json::number(s.cells_per_sec));
  return j;
}

SweepRecord sweep_from_json(const Json& j) {
  SweepRecord s;
  s.source = j.string_at("source");
  s.sweep = static_cast<std::uint64_t>(j.number_at("sweep"));
  s.committed_cells =
      static_cast<std::uint64_t>(j.number_at("committed_cells"));
  s.evaluated_cells =
      static_cast<std::uint64_t>(j.number_at("evaluated_cells"));
  s.wall_ms = static_cast<std::uint64_t>(j.number_at("wall_ms"));
  s.cells_per_sec = j.number_at("cells_per_sec");
  return s;
}

}  // namespace

std::string build_flags_description() {
  std::string out;
#ifdef NDEBUG
  out += "Release";
#else
  out += "Debug";
#endif
#ifdef __OPTIMIZE__
  out += " -O";
#endif
#ifdef __VERSION__
  out += " | ";
  out += __VERSION__;
#endif
  return out;
}

std::string BenchReport::to_json() const {
  Json j = Json::object();
  j.set("schema", Json::string(kSchema));
  j.set("label", Json::string(label));
  j.set("timestamp", Json::string(timestamp));
  j.set("build_flags", Json::string(build_flags));
  j.set("threads", Json::number(static_cast<double>(threads)));
  Json ks = Json::array();
  for (const KernelStats& k : kernels) {
    ks.push_back(kernel_to_json(k));
  }
  j.set("kernels", std::move(ks));
  Json ss = Json::array();
  for (const SweepRecord& s : sweeps) {
    ss.push_back(sweep_to_json(s));
  }
  j.set("sweeps", std::move(ss));
  return j.dump();
}

BenchReport BenchReport::from_json(const std::string& text) {
  const Json j = Json::parse(text);
  if (j.string_at("schema") != kSchema) {
    throw json::Error("bench report: unknown schema '" +
                      j.string_at("schema") + "' (this build reads " +
                      kSchema + ")");
  }
  BenchReport r;
  r.label = j.string_at("label");
  r.timestamp = j.string_at("timestamp");
  r.build_flags = j.string_at("build_flags");
  r.threads = static_cast<std::size_t>(j.number_at("threads"));
  const Json* ks = j.find("kernels");
  if (ks == nullptr || !ks->is_array()) {
    throw json::Error("bench report: missing 'kernels' array");
  }
  for (const Json& k : ks->items()) {
    r.kernels.push_back(kernel_from_json(k));
  }
  if (const Json* ss = j.find("sweeps"); ss != nullptr && ss->is_array()) {
    for (const Json& s : ss->items()) {
      r.sweeps.push_back(sweep_from_json(s));
    }
  }
  return r;
}

void BenchReport::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw json::Error("bench report: cannot open '" + path +
                      "' for writing");
  }
  out << to_json();
  out.flush();
  if (!out) {
    throw json::Error("bench report: short write to '" + path + "'");
  }
}

BenchReport BenchReport::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw json::Error("bench report: cannot open '" + path +
                      "' for reading");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

void import_journal(BenchReport* report, const std::string& journal_path,
                    const std::string& source) {
  std::string name = source;
  if (name.empty()) {
    const std::size_t slash = journal_path.find_last_of('/');
    name = slash == std::string::npos ? journal_path
                                      : journal_path.substr(slash + 1);
  }
  const recov::JournalAnalysis analysis =
      recov::analyze_journal(journal_path);
  for (std::size_t i = 0; i < analysis.sweeps.size(); ++i) {
    const recov::SweepState& sweep = analysis.sweeps[i];
    if (!sweep.ended) {
      continue;  // no end record, no perf counters to import
    }
    SweepRecord rec;
    rec.source = name;
    rec.sweep = i;
    rec.committed_cells = sweep.end_stats.committed_cells;
    rec.evaluated_cells = sweep.end_stats.evaluated_cells;
    rec.wall_ms = sweep.end_stats.wall_ms;
    rec.cells_per_sec = sweep.end_stats.cells_per_sec;
    report->sweeps.push_back(rec);

    if (rec.evaluated_cells > 0) {
      // Per-evaluated-cell wall time as a synthetic kernel, so
      // compare_reports() tracks sweep throughput like any other kernel.
      KernelStats k;
      k.name = "journal:" + name + ":sweep" + std::to_string(i);
      k.layer = "sweep";
      k.ns_median = static_cast<double>(rec.wall_ms) * 1e6 /
                    static_cast<double>(rec.evaluated_cells);
      k.ns_p10 = k.ns_median;
      k.ns_p90 = k.ns_median;
      k.reps = rec.evaluated_cells;
      k.intervals = 1;
      k.threads = 1;
      report->kernels.push_back(std::move(k));
    }
  }
}

std::string CompareOutcome::render() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-34s %12s %12s %8s\n", "kernel",
                "old ns/op", "new ns/op", "ratio");
  out += line;
  for (const CompareRow& row : rows) {
    std::snprintf(line, sizeof(line), "%-34s %12.1f %12.1f %7.3fx%s\n",
                  row.name.c_str(), row.old_ns, row.new_ns, row.ratio,
                  row.regression ? "  REGRESSION" : "");
    out += line;
  }
  for (const std::string& name : only_old) {
    out += "  (only in old report: " + name + ")\n";
  }
  for (const std::string& name : only_new) {
    out += "  (only in new report: " + name + ")\n";
  }
  return out;
}

CompareOutcome compare_reports(const BenchReport& old_report,
                               const BenchReport& new_report,
                               double threshold_pct) {
  CompareOutcome outcome;
  const double limit = 1.0 + threshold_pct / 100.0;
  for (const KernelStats& old_k : old_report.kernels) {
    const KernelStats* new_k = nullptr;
    for (const KernelStats& k : new_report.kernels) {
      if (k.name == old_k.name) {
        new_k = &k;
        break;
      }
    }
    if (new_k == nullptr) {
      outcome.only_old.push_back(old_k.name);
      continue;
    }
    CompareRow row;
    row.name = old_k.name;
    row.old_ns = old_k.ns_median;
    row.new_ns = new_k->ns_median;
    row.ratio = old_k.ns_median > 0.0 ? new_k->ns_median / old_k.ns_median
                                      : 0.0;
    row.regression = row.ratio > limit;
    outcome.regressed = outcome.regressed || row.regression;
    outcome.rows.push_back(std::move(row));
  }
  for (const KernelStats& new_k : new_report.kernels) {
    bool found = false;
    for (const KernelStats& k : old_report.kernels) {
      if (k.name == new_k.name) {
        found = true;
        break;
      }
    }
    if (!found) {
      outcome.only_new.push_back(new_k.name);
    }
  }
  std::sort(outcome.rows.begin(), outcome.rows.end(),
            [](const CompareRow& a, const CompareRow& b) {
              return a.ratio > b.ratio;
            });
  return outcome;
}

}  // namespace perf
}  // namespace rbx
