// The Markov-engine microbenchmark as a registered EvalBackend.
//
// MICRO-MARKOV historically defined this backend inside its bench TU,
// which meant the timing cells could not ship to --connect/--fleet worker
// daemons (an unregistered backend has no name a plan can carry).  Moved
// here and registered as "micro-markov", the kernels run wherever any
// other cell runs: scenario.n() picks the chain size, scenario.samples()
// the repetition budget, and every kernel valid at that size reports one
// "<kernel>_ns" metric (value = ns/op, count = repetitions timed).
//
// Timing numbers are wall-clock and so *not* deterministic across runs or
// hosts - this backend is for trajectory tracking (perf/bench.h), not for
// the bitwise cross-mode pins the science backends carry.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "core/backend.h"

namespace rbx {

// ns/op of fn over a repetition budget (one untimed warm-up call); the
// result of every call is folded into a volatile sink so the optimizer
// cannot elide the kernel.
double micro_time_ns(std::size_t reps, const std::function<double()>& fn);

class MarkovMicroBackend : public EvalBackend {
 public:
  std::string name() const override { return "micro-markov"; }
  bool supports(const Scenario& scenario) const override;
  ResultSet evaluate(const Scenario& scenario) const override;
};

}  // namespace rbx
