// Micro-benchmark harness: named kernels, calibrated repetition counts,
// and robust ns/op statistics.
//
// A Kernel is a named factory: `make()` runs the setup (building matrices,
// scenarios, simulators - excluded from timing) and returns the timed
// closure.  The closure returns a double that the harness folds into a
// volatile sink, so the optimizer cannot delete the work.
//
// Measurement protocol (the shape of Montage's GlobalTestConfig interval
// runs, adapted to ns/op statistics):
//
//   1. calibrate: double the per-interval repetition count until one
//      interval takes at least ~interval_ms, then scale to the target
//      (skipped when reps is pinned explicitly);
//   2. run `warmup_intervals` untimed intervals (caches, branch
//      predictors, lazy allocations);
//   3. run `intervals` timed intervals, each yielding one ns/op sample =
//      interval wall time / reps;
//   4. report the median, p10 and p90 of those samples - the median is
//      robust against a descheduled interval, and the p10/p90 spread is
//      the noise bar a regression check needs.
//
// With threads > 1 every thread runs its own closure instance (from its
// own make() call) for the same reps; the interval sample is the wall
// time from the start barrier to the last finisher, so ns/op measures
// *concurrent* per-op latency - flat scaling keeps it constant, contention
// shows up as growth.  The registry is the names --kernels= selects from;
// layers group kernels for reporting ("numerics", "markov", "des",
// "core", "wire").
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rbx {
namespace perf {

struct BenchOptions {
  std::uint64_t reps = 0;         // per interval; 0 = calibrate
  std::size_t intervals = 12;     // timed intervals (ns/op samples)
  double interval_ms = 20.0;      // calibration target per interval
  std::size_t threads = 1;        // concurrent closure instances
  std::size_t warmup_intervals = 1;
};

struct KernelStats {
  std::string name;
  std::string layer;
  double ns_median = 0.0;
  double ns_p10 = 0.0;
  double ns_p90 = 0.0;
  std::uint64_t reps = 0;      // per interval (per thread)
  std::size_t intervals = 0;
  std::size_t threads = 1;
};

struct Kernel {
  std::string name;
  std::string layer;
  // Setup (untimed) returning the timed closure.  Called once per thread.
  std::function<std::function<double()>()> make;
  // Pinned concurrency: 0 runs at BenchOptions.threads; a non-zero value
  // overrides it for this kernel only.  How the registry carries
  // contention kernels (e.g. analytic_cache_hits_t8, des_*_t4) whose
  // whole point is a specific thread count, regardless of the harness's
  // --threads flag.
  std::size_t threads = 0;
};

class KernelRegistry {
 public:
  void add(Kernel kernel);

  const std::vector<Kernel>& kernels() const { return kernels_; }
  // nullptr when unknown.
  const Kernel* find(const std::string& name) const;

 private:
  std::vector<Kernel> kernels_;
};

// Registers the default kernel set spanning every layer (perf/kernels.cc).
void register_default_kernels(KernelRegistry& registry);

// Runs one kernel under the protocol above.
KernelStats run_kernel(const Kernel& kernel, const BenchOptions& options);

}  // namespace perf
}  // namespace rbx
