#include "perf/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rbx {
namespace perf {

Json Json::boolean(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}

Json Json::number(double v) {
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) {
    throw json::Error("json: value is not a boolean");
  }
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) {
    throw json::Error("json: value is not a number");
  }
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) {
    throw json::Error("json: value is not a string");
  }
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) {
    throw json::Error("json: value is not an array");
  }
  return items_;
}

const std::vector<std::pair<std::string, Json>>& Json::fields() const {
  if (kind_ != Kind::kObject) {
    throw json::Error("json: value is not an object");
  }
  return fields_;
}

void Json::push_back(Json v) {
  if (kind_ != Kind::kArray) {
    throw json::Error("json: push_back on a non-array");
  }
  items_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
  if (kind_ != Kind::kObject) {
    throw json::Error("json: set on a non-object");
  }
  for (auto& [k, value] : fields_) {
    if (k == key) {
      value = std::move(v);
      return;
    }
  }
  fields_.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [k, value] : fields_) {
    if (k == key) {
      return &value;
    }
  }
  return nullptr;
}

double Json::number_at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr || !v->is_number()) {
    throw json::Error("json: missing or non-numeric field '" + key + "'");
  }
  return v->as_number();
}

const std::string& Json::string_at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr || !v->is_string()) {
    throw json::Error("json: missing or non-string field '" + key + "'");
  }
  return v->as_string();
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; the bench schema never produces them, but a
    // defensive null beats emitting an unparsable token.
    out += "null";
    return;
  }
  // Integral values (interval counts, reps) print without an exponent or
  // trailing zeros; everything else uses the round-trip form.
  if (v == std::floor(v) && std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void dump_value(const Json& j, std::string& out, int indent, int depth);

void append_indent(std::string& out, int indent, int depth) {
  if (indent >= 0) {
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) *
                   static_cast<std::size_t>(depth),
               ' ');
  }
}

void dump_value(const Json& j, std::string& out, int indent, int depth) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      out += "null";
      break;
    case Json::Kind::kBool:
      out += j.as_bool() ? "true" : "false";
      break;
    case Json::Kind::kNumber:
      append_number(out, j.as_number());
      break;
    case Json::Kind::kString:
      append_escaped(out, j.as_string());
      break;
    case Json::Kind::kArray: {
      const auto& items = j.items();
      if (items.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        append_indent(out, indent, depth + 1);
        dump_value(items[i], out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out.push_back(']');
      break;
    }
    case Json::Kind::kObject: {
      const auto& fields = j.fields();
      if (fields.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        append_indent(out, indent, depth + 1);
        append_escaped(out, fields[i].first);
        out += indent >= 0 ? ": " : ":";
        dump_value(fields[i].second, out, indent, depth + 1);
      }
      append_indent(out, indent, depth);
      out.push_back('}');
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after document");
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw json::Error("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool try_consume(const char* literal) {
    const std::size_t len = std::char_traits<char>::length(literal);
    if (text_.compare(pos_, len, literal) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      return parse_object();
    }
    if (c == '[') {
      return parse_array();
    }
    if (c == '"') {
      return Json::string(parse_string());
    }
    if (try_consume("null")) {
      return Json::null();
    }
    if (try_consume("true")) {
      return Json::boolean(true);
    }
    if (try_consume("false")) {
      return Json::boolean(false);
    }
    return parse_number();
  }

  Json parse_number() {
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) {
      fail("invalid value");
    }
    pos_ += static_cast<std::size_t>(end - start);
    return Json::number(v);
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // by the bench schema; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json out = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return out;
      }
      fail("expected ',' or ']'");
    }
  }

  Json parse_object() {
    expect('{');
    Json out = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out.set(key, parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return out;
      }
      fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_value(*this, out, indent, 0);
  if (indent >= 0) {
    out.push_back('\n');
  }
  return out;
}

Json Json::parse(const std::string& text) {
  Parser p(text);
  return p.parse_document();
}

}  // namespace perf
}  // namespace rbx
