// The default kernel set: one named kernel per hot loop the evaluation
// stack actually runs, spanning every layer.
//
//   numerics  sparse builder freeze, CSR SpMV (both directions), dense LU
//             factor+solve, RK4 transient integration
//   markov    uniformization transient, first-passage moment solves
//   core      one full analytic cell evaluation (async and sync schemes)
//             and one hybrid PRP+sync cell through the registered
//             "hybrid" backend - the units every sweep, shard and
//             cluster run multiplies
//   des       the three simulators' inner event loops, plus the exact
//             pairwise recovery-line observer behind ABL-LINE
//   wire      encode/decode of Scenario and ResultSet, seal/parse of a
//             plan-carrying CellBatch frame - the bytes every worker
//             round-trip moves
//   fleet     the registry conversation: Join/Grant codecs, the
//             fair-share resolve over a populated member table, and the
//             HMAC lease signature every keyed handshake computes
//
// Setup (matrix assembly, scenario construction) happens in make() and is
// excluded from timing; closures reuse their captured state across reps
// exactly like the production call sites do (e.g. one simulator instance
// across replications, one scratch vector across SpMV calls).
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/analytic_backend.h"
#include "core/backend.h"
#include "core/eval_context.h"
#include "core/executor.h"
#include "core/result.h"
#include "core/scenario.h"
#include "des/async_sim.h"
#include "des/prp_sim.h"
#include "des/sync_sim.h"
#include "fleet/auth.h"
#include "fleet/proto.h"
#include "fleet/registry.h"
#include "markov/ctmc.h"
#include "model/async_model.h"
#include "numerics/lu.h"
#include "numerics/matrix.h"
#include "numerics/sparse.h"
#include "perf/bench.h"
#include "support/wire.h"

namespace rbx {
namespace perf {

namespace {

// Deterministic sparse test pattern: a banded "generator-shaped" matrix
// (short and long couplings plus a diagonal), the same shape class as the
// asynchronous-RB chain the production solvers run on.
struct TripletPattern {
  std::size_t n = 0;
  std::vector<std::size_t> rows;
  std::vector<std::size_t> cols;
  std::vector<double> values;
};

TripletPattern banded_pattern(std::size_t n) {
  TripletPattern p;
  p.n = n;
  const std::ptrdiff_t offsets[] = {-49, -7, -1, 1, 7, 49};
  for (std::size_t r = 0; r < n; ++r) {
    double out_rate = 0.0;
    for (std::ptrdiff_t d : offsets) {
      const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(r) + d;
      if (c < 0 || c >= static_cast<std::ptrdiff_t>(n)) {
        continue;
      }
      const double v = 0.25 + static_cast<double>((r * 7 + d + 49) % 13) / 13.0;
      p.rows.push_back(r);
      p.cols.push_back(static_cast<std::size_t>(c));
      p.values.push_back(v);
      out_rate += v;
    }
    p.rows.push_back(r);
    p.cols.push_back(r);
    p.values.push_back(-out_rate);
  }
  return p;
}

SparseMatrix build_banded(std::size_t n) {
  const TripletPattern p = banded_pattern(n);
  SparseMatrixBuilder b(n, n);
  for (std::size_t i = 0; i < p.rows.size(); ++i) {
    b.add(p.rows[i], p.cols[i], p.values[i]);
  }
  return b.build();
}

// A deterministic CTMC of the same shape (off-diagonal rates only; the
// engine derives the diagonal).
Ctmc banded_chain(std::size_t n) {
  Ctmc chain(n);
  const std::ptrdiff_t offsets[] = {-49, -7, -1, 1, 7, 49};
  for (std::size_t r = 0; r < n; ++r) {
    for (std::ptrdiff_t d : offsets) {
      const std::ptrdiff_t c = static_cast<std::ptrdiff_t>(r) + d;
      if (c < 0 || c >= static_cast<std::ptrdiff_t>(n) ||
          c == static_cast<std::ptrdiff_t>(r)) {
        continue;
      }
      chain.add_rate(r, static_cast<std::size_t>(c),
                     0.25 + static_cast<double>((r * 7 + d + 49) % 13) / 13.0);
    }
  }
  chain.finalize();
  return chain;
}

std::vector<double> uniform_distribution(std::size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

// Diagonally dominant dense system (always non-singular).
Matrix dense_system(std::size_t n) {
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t d = i > j ? i - j : j - i;
      a(i, j) = 1.0 / static_cast<double>(1 + d);
    }
    a(i, i) += static_cast<double>(n);
  }
  return a;
}

Scenario wire_scenario() {
  return Scenario::symmetric(6, 1.0, 0.5)
      .scheme(SchemeKind::kAsynchronous)
      .samples(20000)
      .seed(0x5eed);
}

ResultSet wire_result_set() {
  ResultSet r("bench", "wire kernel payload");
  for (std::size_t i = 0; i < 40; ++i) {
    r.set(indexed_metric("metric_", i), 1.0 / static_cast<double>(i + 1),
          1e-3, 1000 + i);
  }
  return r;
}

// A realistic fleet population: spread hosts, mixed weights.
fleet::JoinInfo fleet_member(std::size_t i) {
  fleet::JoinInfo info;
  info.host = "10.0.0." + std::to_string(i % 250 + 1);
  info.port = static_cast<std::uint16_t>(9000 + i);
  info.weight = static_cast<std::uint32_t>(i % 3 + 1);
  return info;
}

fleet::GrantResponse fleet_grant(std::size_t members) {
  fleet::GrantResponse g;
  g.live_members = static_cast<std::uint32_t>(members);
  for (std::size_t i = 0; i < members; ++i) {
    const fleet::JoinInfo info = fleet_member(i);
    fleet::GrantedMember m;
    m.host = info.host;
    m.port = info.port;
    m.lease_token = i + 1;
    m.lease_sig = fleet::lease_sig("bench-key", i + 1);
    g.members.push_back(m);
  }
  return g;
}

std::shared_ptr<fleet::MemberTable> fleet_table(std::size_t members) {
  fleet::MemberTableOptions opt;
  opt.auth_key = "bench-key";
  auto table = std::make_shared<fleet::MemberTable>(opt);
  for (std::size_t i = 0; i < members; ++i) {
    table->join(fleet_member(i), 0);
  }
  return table;
}

CellBatch wire_cell_batch() {
  CellBatch batch;
  const Scenario base = wire_scenario();
  const EvalPlan plan = plan_for(analytic_backend());
  for (std::size_t i = 0; i < 32; ++i) {
    batch.cells.push_back(
        BatchCell{i, Scenario(base).seed(1000 + i), true, plan});
  }
  return batch;
}

}  // namespace

void register_default_kernels(KernelRegistry& registry) {
  // --- numerics ---------------------------------------------------------
  registry.add({"sparse_build", "numerics", [] {
                  const TripletPattern p = banded_pattern(512);
                  return [p]() -> double {
                    SparseMatrixBuilder b(p.n, p.n);
                    for (std::size_t i = 0; i < p.rows.size(); ++i) {
                      b.add(p.rows[i], p.cols[i], p.values[i]);
                    }
                    const SparseMatrix m = b.build();
                    return static_cast<double>(m.nonzeros());
                  };
                }});

  registry.add({"sparse_spmv_left", "numerics", [] {
                  const SparseMatrix m = build_banded(1024);
                  const std::vector<double> x = uniform_distribution(1024);
                  std::vector<double> y;
                  return [m, x, y]() mutable -> double {
                    m.left_multiply(x, y);
                    return y[0];
                  };
                }});

  registry.add({"sparse_spmv_right", "numerics", [] {
                  const SparseMatrix m = build_banded(1024);
                  const std::vector<double> x = uniform_distribution(1024);
                  std::vector<double> y;
                  return [m, x, y]() mutable -> double {
                    m.right_multiply(x, y);
                    return y[0];
                  };
                }});

  registry.add({"lu_factor_solve", "numerics", [] {
                  const Matrix a = dense_system(96);
                  const std::vector<double> b(96, 1.0);
                  return [a, b]() -> double {
                    const LuDecomposition lu(a);
                    const std::vector<double> x = lu.solve(b);
                    return x[0];
                  };
                }});

  registry.add({"ode_rk4_transient", "numerics", [] {
                  const Ctmc chain = banded_chain(128);
                  const std::vector<double> pi0 = uniform_distribution(128);
                  return [chain, pi0]() -> double {
                    const std::vector<double> pi =
                        chain.transient_rk4(pi0, 0.5, 64);
                    return pi[0];
                  };
                }});

  // --- markov -----------------------------------------------------------
  registry.add({"markov_full_chain_n7", "markov", [] {
                  // The 2^7 + 1 state asynchronous-RB chain: build plus
                  // the absorption solve, the dominant cost of every
                  // full-chain analytic cell the structure and ablation
                  // sweeps evaluate at their size cap.
                  const ProcessSetParams p =
                      ProcessSetParams::symmetric(7, 1.0, 0.5);
                  return [p]() -> double {
                    AsyncRbModel model(p);
                    return model.mean_interval();
                  };
                }});

  registry.add({"ctmc_uniformization", "markov", [] {
                  const Ctmc chain = banded_chain(256);
                  const std::vector<double> pi0 = uniform_distribution(256);
                  return [chain, pi0]() -> double {
                    const std::vector<double> pi = chain.transient(pi0, 1.0);
                    return pi[0];
                  };
                }});

  registry.add({"ctmc_first_passage", "markov", [] {
                  const Ctmc chain = banded_chain(96);
                  const std::vector<double> alpha = uniform_distribution(96);
                  return [chain, alpha]() -> double {
                    const FirstPassage fp(chain, {0});
                    return fp.mean_hitting_time(alpha);
                  };
                }});

  // --- core (one full analytic cell) ------------------------------------
  registry.add({"analytic_async_cell", "core", [] {
                  const Scenario s = Scenario::symmetric(6, 1.0, 0.5)
                                         .scheme(SchemeKind::kAsynchronous);
                  return [s]() -> double {
                    const ResultSet r = analytic_backend().evaluate(s);
                    return r.value("mean_interval_x");
                  };
                }});

  registry.add({"analytic_sync_cell", "core", [] {
                  const Scenario s = Scenario::symmetric(8, 1.0, 0.0)
                                         .scheme(SchemeKind::kSynchronized);
                  return [s]() -> double {
                    const ResultSet r = analytic_backend().evaluate(s);
                    return r.value("sync_mean_max_wait");
                  };
                }});

  registry.add({"analytic_cache_hits_t8", "core",
                [] {
                  // Pure cache-hit replay under contention: 64 distinct
                  // solved models (varying lambda), warmed here so the
                  // timed loop never solves.  All 8 threads hammer the
                  // shared backend singleton; before the cache was
                  // striped across shards one global mutex serialized
                  // every replay.  Distinct keys spread across shards,
                  // so flat ns/op vs a 1-thread run is the win.
                  auto cells = std::make_shared<std::vector<Scenario>>();
                  for (std::size_t i = 0; i < 64; ++i) {
                    cells->push_back(
                        Scenario::symmetric(5, 1.0,
                                            0.1 + 0.05 * static_cast<double>(i))
                            .scheme(SchemeKind::kAsynchronous));
                    analytic_backend().evaluate(cells->back());
                  }
                  return [cells, i = std::size_t{0}]() mutable -> double {
                    const ResultSet r =
                        analytic_backend().evaluate((*cells)[i]);
                    i = (i + 1) % cells->size();
                    return r.value("mean_interval_x");
                  };
                },
                /*threads=*/8});

  registry.add({"hybrid_cell", "core", [] {
                  // One ABL-HYBRID cell at a small failure budget: three
                  // analytic models plus a PRP simulation through the
                  // registered "hybrid" backend, exactly the unit a
                  // hybrid-scheme sweep ships per grid point.
                  const Scenario s =
                      Scenario::symmetric(3, 0.4, 3.0)
                          .scheme(SchemeKind::kPseudoRecoveryPoints)
                          .t_record(1e-4)
                          .error_rate(0.25)
                          .prp_sync_period(2.0)
                          .seed(0x5eed)
                          .samples(8);
                  const EvalPlan plan{{EvalStep{"hybrid", ""}}};
                  return [s, plan]() -> double {
                    const ResultSet r = evaluate_plan(plan, s);
                    return r.value("hybrid_distance");
                  };
                }});

  // --- des --------------------------------------------------------------
  registry.add({"des_async_lines", "des", [] {
                  auto sim = std::make_shared<AsyncRbSimulator>(
                      ProcessSetParams::symmetric(4, 1.0, 0.5), 0x5eed);
                  return [sim]() -> double {
                    const AsyncSimResult r = sim->run_lines(32, 0.25);
                    return r.interval.mean();
                  };
                }});

  registry.add({"des_sync_lines", "des", [] {
                  SyncSimParams params;
                  params.mu = {1.0, 1.2, 0.8, 1.1};
                  params.strategy = SyncStrategy::kElapsedTime;
                  params.elapsed_threshold = 1.0;
                  params.error_rate = 0.5;
                  auto sim =
                      std::make_shared<SyncRbSimulator>(params, 0x5eed);
                  return [sim]() -> double {
                    const SyncSimResult r = sim->run(64);
                    return r.loss_rate;
                  };
                }});

  registry.add({"des_exact_lines", "des", [] {
                  // The exact pairwise recovery-line observer (ABL-LINE's
                  // inner loop): per-event interaction tracking plus the
                  // any-advance / full-refresh line tests.
                  auto sim = std::make_shared<AsyncRbSimulator>(
                      ProcessSetParams::symmetric(4, 1.0, 1.0), 0x5eed);
                  return [sim]() -> double {
                    const ExactLineResult r = sim->run_exact(16);
                    return r.any_advance.mean();
                  };
                }});

  registry.add({"des_prp_failures", "des", [] {
                  PrpSimParams sim_params;
                  sim_params.t_record = 1e-3;
                  sim_params.error_rate = 0.5;
                  auto sim = std::make_shared<PrpSimulator>(
                      ProcessSetParams::symmetric(4, 1.0, 0.5), sim_params,
                      0x5eed);
                  return [sim]() -> double {
                    const PrpSimResult r = sim->run(8);
                    return r.prp_distance.mean();
                  };
                }});

  // Contention variants: the same three DES bodies at a pinned 4 threads.
  // The simulators share no state, so flat ns/op against the 1-thread
  // kernels is the pass condition - growth is scheduler or allocator
  // contention, exactly what CI's --compare gate should catch.
  registry.add({"des_async_lines_t4", "des",
                [] {
                  auto sim = std::make_shared<AsyncRbSimulator>(
                      ProcessSetParams::symmetric(4, 1.0, 0.5), 0x5eed);
                  return [sim]() -> double {
                    const AsyncSimResult r = sim->run_lines(32, 0.25);
                    return r.interval.mean();
                  };
                },
                /*threads=*/4});

  registry.add({"des_sync_lines_t4", "des",
                [] {
                  SyncSimParams params;
                  params.mu = {1.0, 1.2, 0.8, 1.1};
                  params.strategy = SyncStrategy::kElapsedTime;
                  params.elapsed_threshold = 1.0;
                  params.error_rate = 0.5;
                  auto sim =
                      std::make_shared<SyncRbSimulator>(params, 0x5eed);
                  return [sim]() -> double {
                    const SyncSimResult r = sim->run(64);
                    return r.loss_rate;
                  };
                },
                /*threads=*/4});

  registry.add({"des_prp_failures_t4", "des",
                [] {
                  PrpSimParams sim_params;
                  sim_params.t_record = 1e-3;
                  sim_params.error_rate = 0.5;
                  auto sim = std::make_shared<PrpSimulator>(
                      ProcessSetParams::symmetric(4, 1.0, 0.5), sim_params,
                      0x5eed);
                  return [sim]() -> double {
                    const PrpSimResult r = sim->run(8);
                    return r.prp_distance.mean();
                  };
                },
                /*threads=*/4});

  // --- sample-parallel Monte-Carlo cells --------------------------------
  // One representative async MC cell under the stream axis.  The _seq
  // twin runs the identical scenario on a thread budget of 1; the pair is
  // the honest intra-cell speedup measurement (mc_async_cell /
  // mc_async_cell_seq), and their ResultSets are bitwise identical by the
  // stream determinism contract.
  registry.add({"mc_async_cell", "core", [] {
                  const Scenario s = Scenario::symmetric(4, 1.0, 0.5)
                                         .scheme(SchemeKind::kAsynchronous)
                                         .error_rate(0.25)
                                         .seed(0x5eed)
                                         .samples(512)
                                         .streams(4);
                  return [s]() -> double {
                    EvalContextScope scope(EvalContext{4});
                    const ResultSet r = monte_carlo_backend().evaluate(s);
                    return r.value("mean_interval_x");
                  };
                },
                // Pinned to one closure: the cell spawns its own 4-thread
                // stream pool, so harness-level concurrency would only
                // oversubscribe and blur the _seq comparison.
                /*threads=*/1});

  registry.add({"mc_async_cell_seq", "core", [] {
                  const Scenario s = Scenario::symmetric(4, 1.0, 0.5)
                                         .scheme(SchemeKind::kAsynchronous)
                                         .error_rate(0.25)
                                         .seed(0x5eed)
                                         .samples(512)
                                         .streams(4);
                  return [s]() -> double {
                    EvalContextScope scope(EvalContext{1});
                    const ResultSet r = monte_carlo_backend().evaluate(s);
                    return r.value("mean_interval_x");
                  };
                },
                /*threads=*/1});

  registry.add({"mc_stream_merge", "core", [] {
                  // The merge tax alone: combine 8 pre-simulated stream
                  // partials (Chan et al. on every accumulator) without
                  // any simulation in the timed loop.
                  auto parts = std::make_shared<std::vector<AsyncSimResult>>();
                  AsyncRbSimulator sim(
                      ProcessSetParams::symmetric(4, 1.0, 0.5), 0x5eed);
                  for (std::size_t k = 0; k < 8; ++k) {
                    sim.reseed(derive_stream_seed(0x5eed, k));
                    parts->push_back(sim.run_lines(64, 0.25));
                  }
                  return [parts]() -> double {
                    AsyncSimResult merged = (*parts)[0];
                    for (std::size_t k = 1; k < parts->size(); ++k) {
                      merged.merge((*parts)[k]);
                    }
                    return merged.interval.mean();
                  };
                }});

  // --- wire -------------------------------------------------------------
  registry.add({"wire_encode_scenario", "wire", [] {
                  const Scenario s = wire_scenario();
                  return [s]() -> double {
                    wire::Writer w;
                    s.encode(w);
                    return static_cast<double>(w.size());
                  };
                }});

  registry.add({"wire_decode_scenario", "wire", [] {
                  wire::Writer w;
                  wire_scenario().encode(w);
                  const std::vector<std::byte> bytes = w.data();
                  return [bytes]() -> double {
                    wire::Reader r(bytes);
                    const Scenario s = Scenario::decode(r);
                    return static_cast<double>(s.n());
                  };
                }});

  registry.add({"wire_encode_resultset", "wire", [] {
                  const ResultSet rs = wire_result_set();
                  return [rs]() -> double {
                    wire::Writer w;
                    rs.encode(w);
                    return static_cast<double>(w.size());
                  };
                }});

  registry.add({"wire_decode_resultset", "wire", [] {
                  wire::Writer w;
                  wire_result_set().encode(w);
                  const std::vector<std::byte> bytes = w.data();
                  return [bytes]() -> double {
                    wire::Reader r(bytes);
                    const ResultSet rs = ResultSet::decode(r);
                    return static_cast<double>(rs.metrics().size());
                  };
                }});

  registry.add({"wire_seal_cellbatch", "wire", [] {
                  const CellBatch batch = wire_cell_batch();
                  return [batch]() -> double {
                    const std::vector<std::byte> frame = batch.seal();
                    return static_cast<double>(frame.size());
                  };
                }});

  registry.add({"wire_parse_cellbatch", "wire", [] {
                  const std::vector<std::byte> frame =
                      wire_cell_batch().seal();
                  return [frame]() -> double {
                    wire::Frame parsed;
                    std::size_t consumed = 0;
                    parse_frame(frame.data(), frame.size(), &parsed,
                                &consumed);
                    wire::Reader r(parsed.payload);
                    const CellBatch batch = CellBatch::decode(r);
                    return static_cast<double>(batch.cells.size());
                  };
                }});

  // --- fleet ------------------------------------------------------------
  registry.add({"fleet_encode_join", "fleet", [] {
                  const fleet::JoinInfo info = fleet_member(7);
                  return [info]() -> double {
                    wire::Writer w;
                    info.encode(w);
                    return static_cast<double>(w.size());
                  };
                }});

  registry.add({"fleet_decode_join", "fleet", [] {
                  wire::Writer w;
                  fleet_member(7).encode(w);
                  const std::vector<std::byte> bytes = w.data();
                  return [bytes]() -> double {
                    wire::Reader r(bytes);
                    const fleet::JoinInfo info = fleet::JoinInfo::decode(r);
                    return static_cast<double>(info.port);
                  };
                }});

  registry.add({"fleet_encode_grant", "fleet", [] {
                  const fleet::GrantResponse g = fleet_grant(16);
                  return [g]() -> double {
                    wire::Writer w;
                    g.encode(w);
                    return static_cast<double>(w.size());
                  };
                }});

  registry.add({"fleet_decode_grant", "fleet", [] {
                  wire::Writer w;
                  fleet_grant(16).encode(w);
                  const std::vector<std::byte> bytes = w.data();
                  return [bytes]() -> double {
                    wire::Reader r(bytes);
                    const fleet::GrantResponse g =
                        fleet::GrantResponse::decode(r);
                    return static_cast<double>(g.members.size());
                  };
                }});

  registry.add({"fleet_heartbeat_refresh", "fleet", [] {
                  auto table = fleet_table(32);
                  const fleet::JoinInfo info = fleet_member(5);
                  return [table, info]() -> double {
                    // Fixed now: every rep takes the register-or-refresh
                    // path, never the eviction cliff.
                    table->heartbeat(info, 1);
                    return static_cast<double>(table->live(1));
                  };
                }});

  registry.add({"fleet_resolve_fair_share", "fleet", [] {
                  auto table = fleet_table(32);
                  fleet::ResolveRequest req;
                  req.coordinator_id = 1;
                  return [table, req]() -> double {
                    // A re-resolve supersedes the previous leases, so each
                    // rep runs the full release + fair-share + HMAC-signed
                    // grant path over all 32 members.
                    const fleet::GrantResponse g = table->resolve(req, 1);
                    return static_cast<double>(g.members.size());
                  };
                }});

  registry.add({"fleet_lease_hmac", "fleet", [] {
                  std::uint64_t token = 1;
                  return [token]() mutable -> double {
                    return static_cast<double>(
                        fleet::lease_sig("bench-key", token++));
                  };
                }});
}

}  // namespace perf
}  // namespace rbx
