// BENCH_*.json: the repo's machine-readable perf trajectory.
//
// Every harness run serializes a BenchReport to `BENCH_<label>.json` at
// the repo root.  The schema ("rbx-bench-v1"):
//
//   {
//     "schema": "rbx-bench-v1",
//     "label": "...",            // git rev or a human label (passed in)
//     "timestamp": "...",        // passed in by the caller; "" if not
//     "build_flags": "...",      // compiler + build type of the binary
//     "threads": 1,
//     "kernels": [ { "name", "layer", "ns_median", "ns_p10", "ns_p90",
//                    "reps", "intervals", "threads" }, ... ],
//     "sweeps":  [ { "source", "sweep", "committed_cells",
//                    "evaluated_cells", "wall_ms", "cells_per_sec" }, ... ]
//   }
//
// `kernels` comes from the micro harness (perf/bench.h); `sweeps` imports
// the kRecordSweepEnd perf counters of real sweep journals
// (--from-journal=LOG), so macro sweep throughput rides the same
// trajectory as micro ns/op.  Each imported sweep also appears as a
// synthetic kernel "journal:<source>:sweep<k>" whose ns/op is the
// per-evaluated-cell wall time - which is exactly what makes
// compare_reports() track sweep regressions with no extra machinery.
//
// compare_reports() joins two reports by kernel name and flags any kernel
// whose median slowed beyond the threshold; the harness exits non-zero on
// a regression, which is what CI's bench-smoke job drives.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perf/bench.h"

namespace rbx {
namespace perf {

// One imported sweep-end record (recov/journal.h SweepEndStats + origin).
struct SweepRecord {
  std::string source;  // journal basename the record came from
  std::uint64_t sweep = 0;
  std::uint64_t committed_cells = 0;
  std::uint64_t evaluated_cells = 0;
  std::uint64_t wall_ms = 0;
  double cells_per_sec = 0.0;
};

struct BenchReport {
  std::string label;
  std::string timestamp;
  std::string build_flags;
  std::size_t threads = 1;
  std::vector<KernelStats> kernels;
  std::vector<SweepRecord> sweeps;

  std::string to_json() const;
  // Throws json::Error on malformed or wrong-schema input.
  static BenchReport from_json(const std::string& text);

  void save(const std::string& path) const;
  static BenchReport load(const std::string& path);
};

// Compiler and build-type description baked into the report.
std::string build_flags_description();

// Imports every ended sweep of a journal into report->sweeps and the
// synthetic "journal:..." kernels.  `source` names the journal in the
// records (defaults to the path's basename when empty).  Throws
// wire::Error when the journal cannot be read.
void import_journal(BenchReport* report, const std::string& journal_path,
                    const std::string& source = "");

struct CompareRow {
  std::string name;
  double old_ns = 0.0;
  double new_ns = 0.0;
  double ratio = 0.0;  // new / old; < 1 is a speedup
  bool regression = false;
};

struct CompareOutcome {
  std::vector<CompareRow> rows;        // kernels present in both reports
  std::vector<std::string> only_old;   // dropped kernels (informational)
  std::vector<std::string> only_new;   // added kernels (informational)
  bool regressed = false;

  // Human-readable delta table, worst ratio first.
  std::string render() const;
};

// Joins by kernel name; a row regresses when new/old exceeds
// 1 + threshold_pct/100.
CompareOutcome compare_reports(const BenchReport& old_report,
                               const BenchReport& new_report,
                               double threshold_pct);

}  // namespace perf
}  // namespace rbx
