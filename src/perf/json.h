// Minimal JSON value type for the bench harness (src/perf/).
//
// BENCH_*.json files must be readable by any off-the-shelf tooling (CI
// validates them with python3), so the harness writes real JSON - but the
// repo takes no external dependencies, so this is a small self-contained
// value type with a strict recursive-descent parser and a pretty-printing
// serializer.  It covers exactly what the bench schema needs: objects with
// ordered keys, arrays, strings, doubles and booleans.  Numbers round-trip
// doubles exactly (shortest form via %.17g on the way out, strtod on the
// way in).  Parse errors throw json::Error with a byte offset.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rbx {
namespace perf {

namespace json {
// Malformed JSON text (truncated input, bad escape, trailing garbage).
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};
}  // namespace json

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json null() { return Json(); }
  static Json boolean(bool b);
  static Json number(double v);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  // Typed accessors; throw json::Error when the kind does not match (a
  // schema violation in a hand-edited file should be a clear error, not UB).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Json>& items() const;
  const std::vector<std::pair<std::string, Json>>& fields() const;

  // Array append / object insert (keeps insertion order).
  void push_back(Json v);
  void set(const std::string& key, Json v);

  // Object lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;
  // Schema helpers: lookup + type check in one call, throwing json::Error
  // naming the key when absent or mistyped.
  double number_at(const std::string& key) const;
  const std::string& string_at(const std::string& key) const;

  // Serializes with two-space indentation (indent < 0: compact one-liner).
  std::string dump(int indent = 2) const;

  // Strict parse of a complete JSON document (trailing garbage rejected).
  static Json parse(const std::string& text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> fields_;
};

}  // namespace perf
}  // namespace rbx
