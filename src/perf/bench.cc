#include "perf/bench.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "support/check.h"

namespace rbx {
namespace perf {

namespace {

// The optimizer must believe every kernel's result is needed.
volatile double g_sink = 0.0;

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// One timed interval on one closure; returns wall nanoseconds.
std::uint64_t time_interval(const std::function<double()>& fn,
                            std::uint64_t reps) {
  double acc = 0.0;
  const std::uint64_t t0 = now_ns();
  for (std::uint64_t i = 0; i < reps; ++i) {
    acc += fn();
  }
  const std::uint64_t t1 = now_ns();
  g_sink = g_sink + acc;
  return t1 - t0;
}

// Percentile by nearest-rank interpolation over a sorted sample vector.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) {
    return 0.0;
  }
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

std::uint64_t calibrate(const std::function<double()>& fn,
                        double interval_ms) {
  const double target_ns = interval_ms * 1e6;
  std::uint64_t reps = 1;
  for (;;) {
    const std::uint64_t elapsed = time_interval(fn, reps);
    if (static_cast<double>(elapsed) >= target_ns) {
      return reps;
    }
    // Close enough to scale directly to the target (growing further first
    // would only make calibration itself cost several intervals).
    if (static_cast<double>(elapsed) >= target_ns / 8.0) {
      const double per_op =
          static_cast<double>(elapsed) / static_cast<double>(reps);
      const double want = target_ns / std::max(per_op, 1e-3);
      return std::max<std::uint64_t>(reps, static_cast<std::uint64_t>(want));
    }
    if (reps >= (std::uint64_t{1} << 40)) {
      return reps;  // fn is immeasurably fast; cap the loop
    }
    reps *= 2;
  }
}

// One multi-thread interval: all threads spin on a start flag, run `reps`
// each, and the sample is release-to-last-finisher wall time.
std::uint64_t time_interval_threads(
    std::vector<std::function<double()>>& fns, std::uint64_t reps) {
  const std::size_t threads = fns.size();
  std::atomic<bool> go{false};
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  std::vector<double> accs(threads, 0.0);
  for (std::size_t t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
      }
      double acc = 0.0;
      for (std::uint64_t i = 0; i < reps; ++i) {
        acc += fns[t]();
      }
      accs[t] = acc;
    });
  }
  while (ready.load(std::memory_order_acquire) != threads) {
  }
  const std::uint64_t t0 = now_ns();
  go.store(true, std::memory_order_release);
  for (std::thread& th : pool) {
    th.join();
  }
  const std::uint64_t t1 = now_ns();
  for (double a : accs) {
    g_sink = g_sink + a;
  }
  return t1 - t0;
}

}  // namespace

void KernelRegistry::add(Kernel kernel) {
  RBX_CHECK_MSG(find(kernel.name) == nullptr,
                "duplicate kernel name registered");
  kernels_.push_back(std::move(kernel));
}

const Kernel* KernelRegistry::find(const std::string& name) const {
  for (const Kernel& k : kernels_) {
    if (k.name == name) {
      return &k;
    }
  }
  return nullptr;
}

KernelStats run_kernel(const Kernel& kernel, const BenchOptions& options) {
  RBX_CHECK(options.threads >= 1);
  RBX_CHECK(options.intervals >= 1);

  // A kernel with a pinned thread count runs at it no matter what the
  // harness-wide --threads says (contention kernels are meaningless at
  // any other width).
  BenchOptions effective = options;
  if (kernel.threads != 0) {
    effective.threads = kernel.threads;
  }
  const BenchOptions& opts = effective;

  std::vector<std::function<double()>> fns;
  fns.reserve(opts.threads);
  for (std::size_t t = 0; t < opts.threads; ++t) {
    fns.push_back(kernel.make());
  }

  std::uint64_t reps = opts.reps;
  if (reps == 0) {
    reps = calibrate(fns[0], opts.interval_ms);
  }

  auto run_interval = [&]() -> std::uint64_t {
    if (opts.threads == 1) {
      return time_interval(fns[0], reps);
    }
    return time_interval_threads(fns, reps);
  };

  for (std::size_t i = 0; i < opts.warmup_intervals; ++i) {
    run_interval();
  }

  std::vector<double> samples;
  samples.reserve(opts.intervals);
  for (std::size_t i = 0; i < opts.intervals; ++i) {
    const std::uint64_t wall = run_interval();
    samples.push_back(static_cast<double>(wall) /
                      static_cast<double>(reps));
  }
  std::sort(samples.begin(), samples.end());

  KernelStats stats;
  stats.name = kernel.name;
  stats.layer = kernel.layer;
  stats.ns_median = percentile(samples, 0.5);
  stats.ns_p10 = percentile(samples, 0.1);
  stats.ns_p90 = percentile(samples, 0.9);
  stats.reps = reps;
  stats.intervals = opts.intervals;
  stats.threads = opts.threads;
  return stats;
}

}  // namespace perf
}  // namespace rbx
