#include "markov/ctmc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "numerics/lu.h"
#include "numerics/matrix.h"
#include "numerics/ode.h"
#include "numerics/poisson.h"
#include "support/check.h"

namespace rbx {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

Ctmc::Ctmc(std::size_t num_states) : n_(num_states), exit_rate_(num_states) {
  RBX_CHECK(num_states > 0);
}

void Ctmc::add_rate(std::size_t from, std::size_t to, double rate) {
  RBX_CHECK(!finalized_);
  RBX_CHECK(from < n_ && to < n_);
  RBX_CHECK_MSG(from != to, "diagonal entries are derived, not specified");
  RBX_CHECK(rate >= 0.0);
  if (rate == 0.0) {
    return;
  }
  arcs_.push_back({from, to, rate});
  exit_rate_[from] += rate;
}

void Ctmc::finalize() {
  RBX_CHECK(!finalized_);
  SparseMatrixBuilder builder(n_, n_);
  for (const Arc& arc : arcs_) {
    builder.add(arc.from, arc.to, arc.rate);
  }
  for (std::size_t u = 0; u < n_; ++u) {
    if (exit_rate_[u] > 0.0) {
      builder.add(u, u, -exit_rate_[u]);
    }
  }
  generator_ = builder.build();

  double max_exit = 0.0;
  for (double r : exit_rate_) {
    max_exit = std::max(max_exit, r);
  }
  // A small headroom factor keeps the uniformized DTMC's self-loops positive
  // everywhere, which improves the conditioning of visit-count solves.
  lambda_ = max_exit > 0.0 ? 1.02 * max_exit : 1.0;
  finalized_ = true;
}

double Ctmc::rate(std::size_t u, std::size_t v) const {
  RBX_CHECK(finalized_);
  RBX_CHECK(u != v);
  return generator_.at(u, v);
}

double Ctmc::exit_rate(std::size_t u) const {
  RBX_CHECK(u < n_);
  return exit_rate_[u];
}

const SparseMatrix& Ctmc::generator() const {
  RBX_CHECK(finalized_);
  return generator_;
}

std::vector<double> Ctmc::transient(const std::vector<double>& pi0, double t,
                                    double epsilon) const {
  RBX_CHECK(finalized_);
  RBX_CHECK(pi0.size() == n_);
  RBX_CHECK(t >= 0.0);
  if (t == 0.0) {
    return pi0;
  }

  const PoissonWindow window = poisson_window(lambda_ * t, epsilon);

  // Accumulate sum_k w_k * pi0 P^k, where P v is computed through the
  // generator: x P = x + (x Q) / lambda.
  std::vector<double> power = pi0;     // pi0 P^k
  std::vector<double> result(n_, 0.0);
  std::vector<double> scratch(n_);
  const std::size_t k_hi = window.k_lo + window.weights.size() - 1;
  for (std::size_t k = 0; k <= k_hi; ++k) {
    if (k >= window.k_lo) {
      axpy(window.weights[k - window.k_lo], power, result);
    }
    if (k == k_hi) {
      break;
    }
    generator_.left_multiply(power, scratch);
    for (std::size_t i = 0; i < n_; ++i) {
      power[i] += scratch[i] / lambda_;
      // Clamp the tiny negative values uniformization round-off can create.
      if (power[i] < 0.0 && power[i] > -1e-15) {
        power[i] = 0.0;
      }
    }
  }
  return result;
}

std::vector<double> Ctmc::transient_rk4(const std::vector<double>& pi0,
                                        double t, std::size_t steps) const {
  RBX_CHECK(finalized_);
  RBX_CHECK(pi0.size() == n_);
  std::vector<double> pi = pi0;
  const SparseMatrix& q = generator_;
  OdeRhs rhs = [&q](double /*t*/, const std::vector<double>& y,
                    std::vector<double>& dy) { q.left_multiply(y, dy); };
  rk4_integrate(rhs, 0.0, t, steps, pi);
  return pi;
}

Dtmc Ctmc::uniformized_dtmc(double lambda) const {
  RBX_CHECK(finalized_);
  if (lambda <= 0.0) {
    lambda = lambda_;
  }
  RBX_CHECK_MSG(lambda + 1e-12 >= *std::max_element(exit_rate_.begin(),
                                                    exit_rate_.end()),
                "uniformization rate below max exit rate");
  SparseMatrixBuilder builder(n_, n_);
  for (const Arc& arc : arcs_) {
    builder.add(arc.from, arc.to, arc.rate / lambda);
  }
  for (std::size_t u = 0; u < n_; ++u) {
    const double self = 1.0 - exit_rate_[u] / lambda;
    if (self != 0.0) {
      builder.add(u, u, self);
    }
  }
  return Dtmc(builder.build());
}

FirstPassage::FirstPassage(const Ctmc& chain, std::vector<std::size_t> targets)
    : chain_(chain), target_mask_(chain.num_states(), false),
      transient_index_(chain.num_states(), kNpos) {
  RBX_CHECK(chain.finalized());
  RBX_CHECK(!targets.empty());
  for (std::size_t s : targets) {
    RBX_CHECK(s < chain.num_states());
    target_mask_[s] = true;
  }
  for (std::size_t s = 0; s < chain.num_states(); ++s) {
    if (!target_mask_[s]) {
      transient_index_[s] = transient_.size();
      transient_.push_back(s);
    }
  }

  // Assemble the dense transient submatrix Q_TT once; both moment systems
  // reuse the factorization.
  const std::size_t m = transient_.size();
  Matrix qtt(m, m);
  const SparseMatrix& q = chain.generator();
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t u = transient_[i];
    for (std::size_t k = q.row_begin(u); k < q.row_end(u); ++k) {
      const std::size_t v = q.entry_col(k);
      if (!target_mask_[v]) {
        qtt(i, transient_index_[v]) = q.entry_value(k);
      }
    }
  }
  // Solve (-Q_TT) tau = 1 for mean hitting times.
  Matrix neg = qtt;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      neg(i, j) = -neg(i, j);
    }
  }
  LuDecomposition lu(neg);
  RBX_CHECK_MSG(!lu.singular(),
                "target set unreachable from part of the chain");
  tau_ = lu.solve(std::vector<double>(m, 1.0));
  for (double t : tau_) {
    // Mean hitting times are strictly positive; a negative solution means
    // the system was too ill-conditioned for dense LU (hitting times beyond
    // ~1e14 time units), which silently corrupts every downstream quantity.
    RBX_CHECK_MSG(t > 0.0,
                  "hitting-time solve ill-conditioned (astronomical mean); "
                  "rescale the model rates");
  }
  // Second moments: (-Q_TT) tau2 = 2 tau.
  std::vector<double> rhs(m);
  for (std::size_t i = 0; i < m; ++i) {
    rhs[i] = 2.0 * tau_[i];
  }
  tau2_ = lu.solve(rhs);
}

double FirstPassage::mean_hitting_time(const std::vector<double>& alpha) const {
  RBX_CHECK(alpha.size() == chain_.num_states());
  double mean = 0.0;
  for (std::size_t i = 0; i < transient_.size(); ++i) {
    mean += alpha[transient_[i]] * tau_[i];
  }
  return mean;
}

double FirstPassage::second_moment(const std::vector<double>& alpha) const {
  RBX_CHECK(alpha.size() == chain_.num_states());
  double m2 = 0.0;
  for (std::size_t i = 0; i < transient_.size(); ++i) {
    m2 += alpha[transient_[i]] * tau2_[i];
  }
  return m2;
}

double FirstPassage::variance(const std::vector<double>& alpha) const {
  const double mean = mean_hitting_time(alpha);
  return second_moment(alpha) - mean * mean;
}

std::vector<double> FirstPassage::expected_sojourn(
    const std::vector<double>& alpha) const {
  RBX_CHECK(alpha.size() == chain_.num_states());
  const std::size_t m = transient_.size();
  // nu (-Q_TT) = alpha_T  <=>  (-Q_TT)^T nu = alpha_T.
  Matrix negt(m, m);
  const SparseMatrix& q = chain_.generator();
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t u = transient_[i];
    for (std::size_t k = q.row_begin(u); k < q.row_end(u); ++k) {
      const std::size_t v = q.entry_col(k);
      if (!target_mask_[v]) {
        negt(transient_index_[v], i) = -q.entry_value(k);
      }
    }
  }
  std::vector<double> alpha_t(m);
  for (std::size_t i = 0; i < m; ++i) {
    alpha_t[i] = alpha[transient_[i]];
  }
  const std::vector<double> nu_t = solve_linear(negt, alpha_t);
  std::vector<double> nu(chain_.num_states(), 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    nu[transient_[i]] = nu_t[i];
  }
  return nu;
}

double FirstPassage::density(const std::vector<double>& alpha, double t,
                             double epsilon) const {
  const std::vector<double> pi = chain_.transient(alpha, t, epsilon);
  // f(t) = sum over transient u of pi_u(t) * rate(u -> target set).
  double f = 0.0;
  const SparseMatrix& q = chain_.generator();
  for (std::size_t u : transient_) {
    if (pi[u] == 0.0) {
      continue;
    }
    double into_target = 0.0;
    for (std::size_t k = q.row_begin(u); k < q.row_end(u); ++k) {
      if (target_mask_[q.entry_col(k)]) {
        into_target += q.entry_value(k);
      }
    }
    f += pi[u] * into_target;
  }
  return f;
}

double FirstPassage::cdf(const std::vector<double>& alpha, double t,
                         double epsilon) const {
  const std::vector<double> pi = chain_.transient(alpha, t, epsilon);
  double mass = 0.0;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    if (target_mask_[s]) {
      mass += pi[s];
    }
  }
  return mass;
}

}  // namespace rbx
