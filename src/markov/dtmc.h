// Discrete-time Markov chains.
//
// The paper's E[L_i] derivation converts the CTMC to a discrete chain Y_d
// with normalization factor G, splits each state with x_i = 1 into an
// "arrived by an RP of P_i" copy and an "arrived otherwise" copy, and reads
// E[L_i] off the expected visit counts.  This class provides the visit-count
// machinery: for an absorbing DTMC, expected visits to each transient state
// solve x (I - P_TT) = alpha.
#pragma once

#include <cstddef>
#include <vector>

#include "numerics/sparse.h"

namespace rbx {

class Dtmc {
 public:
  // Rows must sum to <= 1 + tiny slack; strictly substochastic rows are
  // treated as having implicit absorption mass.
  explicit Dtmc(SparseMatrix transition);

  std::size_t num_states() const { return p_.rows(); }

  double probability(std::size_t u, std::size_t v) const { return p_.at(u, v); }
  const SparseMatrix& transition() const { return p_; }

  // One step: out = in * P.
  void step(const std::vector<double>& in, std::vector<double>& out) const;

  // Expected number of visits to every state before hitting the absorbing
  // set, starting from distribution alpha.  Visits count the initial
  // placement (a chain starting in u has visited u once).  Absorbing states
  // report 0.
  std::vector<double> expected_visits(const std::vector<double>& alpha,
                                      const std::vector<bool>& absorbing) const;

  // Probability of eventually being absorbed in each absorbing state,
  // starting from alpha.  States not in the absorbing set report 0.
  std::vector<double> absorption_distribution(
      const std::vector<double>& alpha,
      const std::vector<bool>& absorbing) const;

 private:
  SparseMatrix p_;
};

}  // namespace rbx
