// Continuous phase-type distributions.
//
// The interval X between successive recovery lines in the asynchronous-RB
// model (paper Section 2.3) is the absorption time of a finite CTMC, i.e. a
// phase-type random variable PH(alpha, S).  This class wraps a chain plus an
// absorbing set and exposes the distribution-level interface used by the
// Figure 6 bench (density curve), the Figure 5 bench (mean), and moment
// cross-checks.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "markov/ctmc.h"

namespace rbx {

class PhaseType {
 public:
  // Takes ownership of the chain; `targets` is the absorbing set, `alpha`
  // the initial distribution over all states (mass on targets is allowed
  // and contributes an atom at zero).
  PhaseType(std::shared_ptr<const Ctmc> chain, std::vector<std::size_t> targets,
            std::vector<double> alpha);

  double mean() const;
  double second_moment() const;
  double variance() const;

  // Density f(t) and distribution F(t); epsilon controls the uniformization
  // truncation error.
  double pdf(double t, double epsilon = 1e-12) const;
  double cdf(double t, double epsilon = 1e-12) const;

  // Samples the density on a uniform grid [0, t_max] (t_max inclusive;
  // points >= 2); used to regenerate Figure 6.
  std::vector<double> pdf_grid(double t_max, std::size_t points,
                               double epsilon = 1e-10) const;

  // Quantile via bisection on the cdf.
  double quantile(double q, double tol = 1e-8) const;

  const Ctmc& chain() const { return *chain_; }
  const FirstPassage& first_passage() const { return fp_; }

 private:
  std::shared_ptr<const Ctmc> chain_;
  std::vector<double> alpha_;
  FirstPassage fp_;
};

}  // namespace rbx
