// Continuous-time Markov chains.
//
// A Ctmc is assembled from off-diagonal transition rates, then frozen.  The
// engine offers the two transient solvers the reproduction needs:
//
//  * uniformization (the production path): pi(t) = sum_k Poi(k; Lambda t)
//    pi(0) P^k with P = I + Q / Lambda, numerically robust for the stiff
//    chains that arise when interaction rates dwarf recovery-point rates;
//  * direct integration of the Chapman-Kolmogorov equations d/dt pi = pi Q
//    with RK4/RKF45 (the formulation the paper states), used for
//    cross-validation.
//
// First-passage analysis to an absorbing set underpins everything in
// Section 2 of the paper: the interval X between successive recovery lines
// is exactly the absorption time of the rule R1-R4 chain.
#pragma once

#include <cstddef>
#include <vector>

#include "markov/dtmc.h"
#include "numerics/sparse.h"

namespace rbx {

class Ctmc {
 public:
  explicit Ctmc(std::size_t num_states);

  // Adds an off-diagonal rate (from != to, rate >= 0).  Duplicate pairs sum.
  void add_rate(std::size_t from, std::size_t to, double rate);

  // Freezes the chain: builds the CSR generator (including the diagonal) and
  // computes the uniformization rate.  No add_rate afterwards.
  void finalize();
  bool finalized() const { return finalized_; }

  std::size_t num_states() const { return n_; }

  // Off-diagonal rate from u to v (0 when absent).
  double rate(std::size_t u, std::size_t v) const;

  // Total exit rate of u (= -Q(u,u)).
  double exit_rate(std::size_t u) const;

  // Uniformization constant Lambda (>= max exit rate; strictly positive).
  double uniformization_rate() const { return lambda_; }

  // The full generator Q as a sparse matrix (diagonal included).
  const SparseMatrix& generator() const;

  // pi(t) from initial distribution pi0 via uniformization; epsilon bounds
  // the truncated Poisson tail mass.
  std::vector<double> transient(const std::vector<double>& pi0, double t,
                                double epsilon = 1e-12) const;

  // pi(t) via fixed-step RK4 on d/dt pi = pi Q (validation path).
  std::vector<double> transient_rk4(const std::vector<double>& pi0, double t,
                                    std::size_t steps) const;

  // Embedded uniformized DTMC P = I + Q / lambda.  If lambda <= 0 the
  // chain's own uniformization rate is used.  This is precisely the paper's
  // "conversion to a discrete model" with normalization factor G.
  Dtmc uniformized_dtmc(double lambda = 0.0) const;

 private:
  struct Arc {
    std::size_t from;
    std::size_t to;
    double rate;
  };

  std::size_t n_;
  std::vector<Arc> arcs_;
  std::vector<double> exit_rate_;
  SparseMatrix generator_;
  double lambda_ = 0.0;
  bool finalized_ = false;
};

// First-passage (absorption) analysis of a finalized CTMC with respect to a
// target state set.  All quantities assume the target is reachable from
// every state that carries initial probability mass; this is validated by
// the linear solves themselves (a singular transient system aborts with a
// model diagnostic).
class FirstPassage {
 public:
  FirstPassage(const Ctmc& chain, std::vector<std::size_t> targets);

  // Mean hitting time of the target set from initial distribution alpha.
  double mean_hitting_time(const std::vector<double>& alpha) const;

  // Second moment and variance of the hitting time.
  double second_moment(const std::vector<double>& alpha) const;
  double variance(const std::vector<double>& alpha) const;

  // Expected total time spent in each state before absorption, starting
  // from alpha ("sojourn vector" nu; zero at targets).
  std::vector<double> expected_sojourn(const std::vector<double>& alpha) const;

  // Probability density of the hitting time at time t (phase-type density),
  // evaluated via uniformization.
  double density(const std::vector<double>& alpha, double t,
                 double epsilon = 1e-12) const;

  // P(hitting time <= t).
  double cdf(const std::vector<double>& alpha, double t,
             double epsilon = 1e-12) const;

  const std::vector<std::size_t>& transient_states() const {
    return transient_;
  }
  bool is_target(std::size_t state) const { return target_mask_[state]; }

 private:
  const Ctmc& chain_;
  std::vector<bool> target_mask_;
  std::vector<std::size_t> transient_;           // transient state ids
  std::vector<std::size_t> transient_index_;     // state id -> index or npos
  // Mean hitting times per transient state (solved once).
  std::vector<double> tau_;
  // Second moments per transient state.
  std::vector<double> tau2_;
};

}  // namespace rbx
