#include "markov/phase_type.h"

#include <cmath>

#include "support/check.h"

namespace rbx {

PhaseType::PhaseType(std::shared_ptr<const Ctmc> chain,
                     std::vector<std::size_t> targets,
                     std::vector<double> alpha)
    : chain_(std::move(chain)), alpha_(std::move(alpha)),
      fp_(*chain_, std::move(targets)) {
  RBX_CHECK(alpha_.size() == chain_->num_states());
  double mass = 0.0;
  for (double a : alpha_) {
    RBX_CHECK(a >= 0.0);
    mass += a;
  }
  RBX_CHECK_MSG(std::fabs(mass - 1.0) < 1e-9,
                "initial distribution must sum to 1");
}

double PhaseType::mean() const { return fp_.mean_hitting_time(alpha_); }

double PhaseType::second_moment() const { return fp_.second_moment(alpha_); }

double PhaseType::variance() const { return fp_.variance(alpha_); }

double PhaseType::pdf(double t, double epsilon) const {
  RBX_CHECK(t >= 0.0);
  return fp_.density(alpha_, t, epsilon);
}

double PhaseType::cdf(double t, double epsilon) const {
  RBX_CHECK(t >= 0.0);
  return fp_.cdf(alpha_, t, epsilon);
}

std::vector<double> PhaseType::pdf_grid(double t_max, std::size_t points,
                                        double epsilon) const {
  RBX_CHECK(points >= 2);
  RBX_CHECK(t_max > 0.0);
  std::vector<double> out(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double t =
        t_max * static_cast<double>(i) / static_cast<double>(points - 1);
    out[i] = pdf(t, epsilon);
  }
  return out;
}

double PhaseType::quantile(double q, double tol) const {
  RBX_CHECK(q > 0.0 && q < 1.0);
  // Bracket: expand until cdf(hi) >= q.
  double hi = mean() + 1.0;
  while (cdf(hi) < q) {
    hi *= 2.0;
    RBX_CHECK_MSG(hi < 1e12, "quantile bracket failed");
  }
  double lo = 0.0;
  while (hi - lo > tol) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < q) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace rbx
