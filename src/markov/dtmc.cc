#include "markov/dtmc.h"

#include <limits>

#include "numerics/lu.h"
#include "numerics/matrix.h"
#include "support/check.h"

namespace rbx {

namespace {
constexpr std::size_t kNpos = std::numeric_limits<std::size_t>::max();
}  // namespace

Dtmc::Dtmc(SparseMatrix transition) : p_(std::move(transition)) {
  RBX_CHECK(p_.rows() == p_.cols());
  for (std::size_t r = 0; r < p_.rows(); ++r) {
    RBX_CHECK_MSG(p_.row_sum(r) <= 1.0 + 1e-9, "super-stochastic row");
  }
}

void Dtmc::step(const std::vector<double>& in, std::vector<double>& out) const {
  p_.left_multiply(in, out);
}

std::vector<double> Dtmc::expected_visits(
    const std::vector<double>& alpha, const std::vector<bool>& absorbing) const {
  const std::size_t n = num_states();
  RBX_CHECK(alpha.size() == n);
  RBX_CHECK(absorbing.size() == n);

  std::vector<std::size_t> transient;
  std::vector<std::size_t> index(n, kNpos);
  for (std::size_t s = 0; s < n; ++s) {
    if (!absorbing[s]) {
      index[s] = transient.size();
      transient.push_back(s);
    }
  }
  const std::size_t m = transient.size();

  // Solve x (I - P_TT) = alpha_T, i.e. (I - P_TT)^T x = alpha_T.
  Matrix a(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t u = transient[i];
    a(i, i) = 1.0;
    for (std::size_t k = p_.row_begin(u); k < p_.row_end(u); ++k) {
      const std::size_t v = p_.entry_col(k);
      if (!absorbing[v]) {
        a(index[v], i) -= p_.entry_value(k);
      }
    }
  }
  std::vector<double> alpha_t(m);
  for (std::size_t i = 0; i < m; ++i) {
    alpha_t[i] = alpha[transient[i]];
  }
  const std::vector<double> x = solve_linear(a, alpha_t);

  std::vector<double> visits(n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    visits[transient[i]] = x[i];
  }
  return visits;
}

std::vector<double> Dtmc::absorption_distribution(
    const std::vector<double>& alpha, const std::vector<bool>& absorbing) const {
  const std::size_t n = num_states();
  const std::vector<double> visits = expected_visits(alpha, absorbing);
  // P(absorb in a) = alpha_a + sum_u visits(u) * P(u, a).
  std::vector<double> out(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    if (absorbing[s]) {
      out[s] = alpha[s];
    }
  }
  for (std::size_t u = 0; u < n; ++u) {
    if (absorbing[u] || visits[u] == 0.0) {
      continue;
    }
    for (std::size_t k = p_.row_begin(u); k < p_.row_end(u); ++k) {
      const std::size_t v = p_.entry_col(k);
      if (absorbing[v]) {
        out[v] += visits[u] * p_.entry_value(k);
      }
    }
  }
  return out;
}

}  // namespace rbx
