// Synchronized recovery blocks (paper Section 3).
//
// Upon a synchronization request every process P_i runs to its next
// acceptance test (time y_i ~ Exp(mu_i) by the memorylessness of assumption
// A5), broadcasts "P_ii-ready", and waits for the commitments of all other
// processes; the recovery line is established at Z = max_i y_i.  The lost
// computation power is CL = sum_i (Z - y_i), with mean
//
//   CL = n * Int_0^inf (1 - G(t)) dt - sum_i 1 / mu_i,
//   G(t) = prod_i (1 - e^{-mu_i t}).
//
// E[Z] = Int (1 - G) dt has the exact inclusion-exclusion closed form
// sum_{S != empty} (-1)^{|S|+1} / (sum_{i in S} mu_i), which this class
// evaluates alongside an adaptive-quadrature evaluation of the integral (the
// form printed in the paper) as a numerical cross-check.
#pragma once

#include <cstddef>
#include <vector>

namespace rbx {

// E[max of independent Exp(rates)] by inclusion-exclusion; exact.
// Exponential in the number of rates; capped at 25 to keep misuse loud.
double expected_max_exponential(const std::vector<double>& rates);

// Same expectation via numeric integration of the survival function; usable
// for any n (used to validate the closed form and for n > 25).
double expected_max_exponential_quadrature(const std::vector<double>& rates);

class SyncRbModel {
 public:
  explicit SyncRbModel(std::vector<double> mu);

  std::size_t n() const { return mu_.size(); }
  const std::vector<double>& mu() const { return mu_; }

  // Distribution function of Z = max_i y_i.
  double z_cdf(double t) const;

  // E[Z]; closed form when n <= 25, quadrature otherwise.
  double mean_max_wait() const;
  // E[Z] via quadrature regardless of n.
  double mean_max_wait_quadrature() const;

  // Mean total loss in computation power per synchronization:
  // CL = n E[Z] - sum_i 1/mu_i.
  double mean_loss() const;

  // Mean wait of process i: E[Z - y_i] = E[Z] - 1/mu_i.
  double mean_wait(std::size_t i) const;

  // Loss per unit time if synchronizations are requested at rate f
  // (strategy 1 of Section 3 with constant interval 1/f): f * CL, valid
  // while 1/f >> E[Z].
  double loss_rate(double sync_rate) const;

 private:
  std::vector<double> mu_;
};

}  // namespace rbx
