#include "model/prp_model.h"

#include "model/sync_model.h"
#include "support/check.h"

namespace rbx {

PrpModel::PrpModel(ProcessSetParams params, double t_record)
    : params_(std::move(params)), t_record_(t_record) {
  RBX_CHECK(t_record >= 0.0);
}

double PrpModel::snapshot_rate(std::size_t i) const {
  RBX_CHECK(i < n());
  // Own RPs at mu_i plus a PRP for every other process's RP.
  return params_.total_mu();
}

double PrpModel::system_snapshot_rate() const {
  return static_cast<double>(n()) * params_.total_mu();
}

double PrpModel::time_overhead_per_rp() const {
  return static_cast<double>(n() - 1) * t_record_;
}

double PrpModel::recording_fraction(std::size_t i) const {
  RBX_CHECK(i < n());
  const double rate = snapshot_rate(i);
  const double busy = rate * t_record_;
  // Fraction of wall time spent recording assuming recording does not
  // overlap with itself (t_r << 1/rate in any sane configuration).
  return busy / (1.0 + busy);
}

double PrpModel::mean_rollback_bound() const {
  if (n() <= 25) {
    return expected_max_exponential(params_.mu());
  }
  return expected_max_exponential_quadrature(params_.mu());
}

double PrpModel::mean_local_rollback(std::size_t i) const {
  RBX_CHECK(i < n());
  return 1.0 / params_.mu(i);
}

}  // namespace rbx
