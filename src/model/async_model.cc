#include "model/async_model.h"

#include <limits>

#include "markov/dtmc.h"
#include "numerics/sparse.h"
#include "support/check.h"

namespace rbx {

namespace {
constexpr std::size_t kMaxProcesses = 12;
}  // namespace

AsyncRbModel::AsyncRbModel(ProcessSetParams params)
    : params_(std::move(params)) {
  RBX_CHECK_MSG(params_.n() <= kMaxProcesses,
                "full model limited to 12 processes (use the symmetric "
                "model for larger homogeneous systems)");
  build_chain();
}

std::size_t AsyncRbModel::state_of_mask(std::size_t mask) const {
  const std::size_t full = (std::size_t{1} << n()) - 1;
  RBX_CHECK(mask <= full);
  // The all-ones mask is S_{r+1} itself (paper numbering maps it to m).
  if (mask == full) {
    return absorbing_state();
  }
  return mask + 1;
}

std::size_t AsyncRbModel::mask_of_state(std::size_t state) const {
  RBX_CHECK(state >= 1 && state < absorbing_state());
  return state - 1;
}

void AsyncRbModel::build_chain() {
  const std::size_t nproc = n();
  const std::size_t full = (std::size_t{1} << nproc) - 1;
  chain_ = std::make_shared<Ctmc>(num_states());

  // Entry state S_r: logically all-ones.
  // R4: any recovery point re-forms a line immediately.
  for (std::size_t k = 0; k < nproc; ++k) {
    chain_->add_rate(entry_state(), absorbing_state(), params_.mu(k));
  }
  // R2 from S_r: an interaction of (i, j) clears both bits.
  for (std::size_t i = 0; i < nproc; ++i) {
    for (std::size_t j = i + 1; j < nproc; ++j) {
      const double rate = params_.lambda(i, j);
      if (rate == 0.0) {
        continue;
      }
      const std::size_t dest = full & ~(std::size_t{1} << i) &
                               ~(std::size_t{1} << j);
      chain_->add_rate(entry_state(), state_of_mask(dest), rate);
    }
  }

  // Intermediate states: every mask except all-ones.
  for (std::size_t mask = 0; mask < full; ++mask) {
    const std::size_t src = state_of_mask(mask);
    // R1: recovery point of a process whose last action was an interaction.
    for (std::size_t k = 0; k < nproc; ++k) {
      const std::size_t bit = std::size_t{1} << k;
      if (mask & bit) {
        continue;  // an RP of P_k with x_k = 1 does not change the state
      }
      chain_->add_rate(src, state_of_mask(mask | bit), params_.mu(k));
    }
    // R2/R3: interactions clear the set bits of the participating pair.
    for (std::size_t i = 0; i < nproc; ++i) {
      for (std::size_t j = i + 1; j < nproc; ++j) {
        const double rate = params_.lambda(i, j);
        if (rate == 0.0) {
          continue;
        }
        const std::size_t bits =
            (std::size_t{1} << i) | (std::size_t{1} << j);
        const std::size_t dest_mask = mask & ~bits;
        if (dest_mask == mask) {
          continue;  // both bits already clear: the state does not change
        }
        chain_->add_rate(src, state_of_mask(dest_mask), rate);
      }
    }
  }
  chain_->finalize();

  alpha_.assign(num_states(), 0.0);
  alpha_[entry_state()] = 1.0;
  interval_ = std::make_unique<PhaseType>(
      chain_, std::vector<std::size_t>{absorbing_state()}, alpha_);
  sojourn_ = interval_->first_passage().expected_sojourn(alpha_);
}

double AsyncRbModel::mean_interval() const { return interval_->mean(); }

double AsyncRbModel::variance_interval() const { return interval_->variance(); }

double AsyncRbModel::interval_pdf(double t) const { return interval_->pdf(t); }

double AsyncRbModel::interval_cdf(double t) const { return interval_->cdf(t); }

double AsyncRbModel::mean_line_age() const {
  return interval_->second_moment() / (2.0 * interval_->mean());
}

double AsyncRbModel::absorbing_rp_probability(std::size_t i) const {
  RBX_CHECK(i < n());
  const std::size_t full = (std::size_t{1} << n()) - 1;
  const std::size_t bit = std::size_t{1} << i;
  // The line-forming RP of P_i fires either from S_r (rule R4) or from the
  // unique intermediate state missing only bit i (rule R1 into all-ones).
  double p = sojourn_[entry_state()] * params_.mu(i);
  p += sojourn_[state_of_mask(full & ~bit)] * params_.mu(i);
  return p;
}

AsyncRbModel::RpCounts AsyncRbModel::expected_rp_count(std::size_t i) const {
  RBX_CHECK(i < n());
  const double mu_i = params_.mu(i);
  const double ex = mean_interval();
  RpCounts counts;
  counts.wald = mu_i * ex;
  counts.excluding_final = counts.wald - absorbing_rp_probability(i);
  // State-changing RPs occur while x_i = 0 (rule R1) and, from the entry
  // state, as the immediate line re-formation (rule R4).
  const std::size_t bit = std::size_t{1} << i;
  double t_zero = sojourn_[entry_state()];
  const std::size_t full = (std::size_t{1} << n()) - 1;
  for (std::size_t mask = 0; mask < full; ++mask) {
    if (!(mask & bit)) {
      t_zero += sojourn_[state_of_mask(mask)];
    }
  }
  counts.state_changing = mu_i * t_zero;
  return counts;
}

double AsyncRbModel::expected_rp_count_split_chain(std::size_t i) const {
  RBX_CHECK(i < n());
  const std::size_t nproc = n();
  const std::size_t full = (std::size_t{1} << nproc) - 1;
  const std::size_t bit_i = std::size_t{1} << i;
  const double big_g = params_.total_event_rate();  // the paper's G

  // --- expanded state numbering ---
  // entry -> 0, absorbing -> 1; each intermediate mask maps to either one
  // unsplit id (x_i = 0) or a (primed, double-primed) pair (x_i = 1).
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> plain_id(full, kNone);
  std::vector<std::size_t> primed_id(full, kNone);
  std::vector<std::size_t> dprimed_id(full, kNone);
  std::size_t next = 2;
  for (std::size_t mask = 0; mask < full; ++mask) {
    if (mask & bit_i) {
      primed_id[mask] = next++;
      dprimed_id[mask] = next++;
    } else {
      plain_id[mask] = next++;
    }
  }
  const std::size_t expanded = next;

  // Destination id for an arrival at `mask` caused (or not) by an RP of P_i.
  auto arrival_id = [&](std::size_t mask, bool by_rp_of_i) -> std::size_t {
    if (mask == full) {
      return 1;  // S_{r+1}; the absorbing state is not split
    }
    if (mask & bit_i) {
      return by_rp_of_i ? primed_id[mask] : dprimed_id[mask];
    }
    RBX_CHECK(!by_rp_of_i);  // an RP of P_i always leaves bit i set
    return plain_id[mask];
  };

  SparseMatrixBuilder builder(expanded, expanded);

  // Emits the outgoing distribution of one macro state into row `row`.
  // `mask` is the logical bit vector (the entry state passes the all-ones
  // mask with is_entry = true, where every RP absorbs by rule R4).
  auto emit_rows = [&](std::size_t row, std::size_t mask, bool is_entry) {
    // RP events.
    for (std::size_t k = 0; k < nproc; ++k) {
      const std::size_t bit_k = std::size_t{1} << k;
      const double p = params_.mu(k) / big_g;
      if (is_entry) {
        builder.add(row, 1, p);  // R4: immediate re-formation
        continue;
      }
      const std::size_t dest = mask | bit_k;
      // An RP with x_k = 1 is a self event; it still re-enters the state and
      // is routed by cause (this is exactly the paper's "all arrivals due to
      // RPs of P_i enter S'").
      builder.add(row, arrival_id(dest, k == i), p);
    }
    // Interaction events.
    for (std::size_t a = 0; a < nproc; ++a) {
      for (std::size_t b = a + 1; b < nproc; ++b) {
        const double rate = params_.lambda(a, b);
        if (rate == 0.0) {
          continue;
        }
        const double p = rate / big_g;
        const std::size_t bits = (std::size_t{1} << a) | (std::size_t{1} << b);
        const std::size_t dest = mask & ~bits;
        builder.add(row, arrival_id(dest, false), p);
      }
    }
  };

  emit_rows(0, full, /*is_entry=*/true);
  for (std::size_t mask = 0; mask < full; ++mask) {
    if (mask & bit_i) {
      emit_rows(primed_id[mask], mask, false);
      emit_rows(dprimed_id[mask], mask, false);
    } else {
      emit_rows(plain_id[mask], mask, false);
    }
  }
  // Absorbing self-loop keeps the matrix stochastic.
  builder.add(1, 1, 1.0);

  Dtmc yd(builder.build());
  std::vector<double> alpha(expanded, 0.0);
  alpha[0] = 1.0;
  std::vector<bool> absorbing(expanded, false);
  absorbing[1] = true;
  const std::vector<double> visits = yd.expected_visits(alpha, absorbing);

  double total = 0.0;
  for (std::size_t mask = 0; mask < full; ++mask) {
    if (mask & bit_i) {
      total += visits[primed_id[mask]];
    }
  }
  return total;
}

std::size_t AsyncRbModel::transition_count() const {
  return chain_->generator().nonzeros() - /*diagonal entries*/ num_states() + 1;
}

}  // namespace rbx
