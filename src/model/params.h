// Parameters of a set of cooperating concurrent processes, following the
// modeling assumptions of paper Section 2.1:
//
//  * recovery points of process P_i form a Poisson process with rate mu_i
//    (assumption 5);
//  * the interval between successive interactions of the pair (P_i, P_j) is
//    exponential with rate lambda_ij = lambda_ji (assumption 3);
//  * processes are otherwise autonomous (assumption 1), acceptance tests are
//    perfect for local errors (assumption 2), and communication is
//    consistent, i.e. reliable and FIFO per pair (assumption 4).
//
// rho = (sum_{i<j} lambda_ij) / (sum_k mu_k) is the paper's relative density
// of interprocess communication vs. recovery-point establishment (Figure 5
// caption, Table 1 "constant rho").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rbx {

class ProcessSetParams {
 public:
  // mu[i] > 0 for all i; lambda must be a symmetric n x n matrix with zero
  // diagonal and non-negative entries, flattened row-major.
  ProcessSetParams(std::vector<double> mu, std::vector<double> lambda_flat);

  // Homogeneous system: mu_i = mu, lambda_ij = lambda for all pairs.
  static ProcessSetParams symmetric(std::size_t n, double mu, double lambda);

  // Three-process system in the paper's Table 1 ordering
  // (lambda12, lambda23, lambda13).
  static ProcessSetParams three(double mu1, double mu2, double mu3,
                                double l12, double l23, double l13);

  std::size_t n() const { return mu_.size(); }
  double mu(std::size_t i) const;
  double lambda(std::size_t i, std::size_t j) const;

  const std::vector<double>& mu() const { return mu_; }
  // Full n x n rate matrix, row-major - the exact form the wire codec
  // round-trips (support/wire.h).
  const std::vector<double>& lambda_flat() const { return lambda_; }

  double total_mu() const;              // sum_k mu_k
  double total_lambda() const;          // sum_{i<j} lambda_ij
  // Total interaction rate seen by process i: sum_{j != i} lambda_ij.
  double interaction_rate(std::size_t i) const;
  // Total event rate G = sum_{i<j} lambda_ij + sum_k mu_k, the paper's
  // normalization factor for the embedded discrete chain Y_d.
  double total_event_rate() const;

  double rho() const;

  bool is_symmetric_rates() const;      // all mu equal and all lambda equal

  std::string describe() const;

 private:
  std::vector<double> mu_;
  std::vector<double> lambda_;  // n x n row-major, symmetric, zero diagonal
};

}  // namespace rbx
