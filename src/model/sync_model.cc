#include "model/sync_model.h"

#include <cmath>

#include "numerics/quadrature.h"
#include "support/check.h"

namespace rbx {

double expected_max_exponential(const std::vector<double>& rates) {
  const std::size_t n = rates.size();
  RBX_CHECK(n >= 1);
  RBX_CHECK_MSG(n <= 25, "inclusion-exclusion limited to 25 rates");
  for (double r : rates) {
    RBX_CHECK(r > 0.0);
  }
  double mean = 0.0;
  const std::size_t subsets = std::size_t{1} << n;
  for (std::size_t s = 1; s < subsets; ++s) {
    double rate_sum = 0.0;
    int bits = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (s & (std::size_t{1} << i)) {
        rate_sum += rates[i];
        ++bits;
      }
    }
    mean += ((bits % 2 == 1) ? 1.0 : -1.0) / rate_sum;
  }
  return mean;
}

double expected_max_exponential_quadrature(const std::vector<double>& rates) {
  RBX_CHECK(!rates.empty());
  for (double r : rates) {
    RBX_CHECK(r > 0.0);
  }
  // E[Z] = Int_0^inf (1 - prod_i (1 - e^{-r_i t})) dt.  The integrand decays
  // like e^{-r_min t}; panels are scaled to the slowest rate.
  double r_min = rates[0];
  for (double r : rates) {
    r_min = std::min(r_min, r);
  }
  auto survival = [&rates](double t) {
    double g = 1.0;
    for (double r : rates) {
      g *= 1.0 - std::exp(-r * t);
    }
    return 1.0 - g;
  };
  return integrate_to_infinity(survival, 0.0, 1.0 / r_min).value;
}

SyncRbModel::SyncRbModel(std::vector<double> mu) : mu_(std::move(mu)) {
  RBX_CHECK(!mu_.empty());
  for (double m : mu_) {
    RBX_CHECK_MSG(m > 0.0, "acceptance-test rates must be positive");
  }
}

double SyncRbModel::z_cdf(double t) const {
  if (t <= 0.0) {
    return 0.0;
  }
  double g = 1.0;
  for (double m : mu_) {
    g *= 1.0 - std::exp(-m * t);
  }
  return g;
}

double SyncRbModel::mean_max_wait() const {
  if (n() <= 25) {
    return expected_max_exponential(mu_);
  }
  return expected_max_exponential_quadrature(mu_);
}

double SyncRbModel::mean_max_wait_quadrature() const {
  return expected_max_exponential_quadrature(mu_);
}

double SyncRbModel::mean_loss() const {
  double sum_inv = 0.0;
  for (double m : mu_) {
    sum_inv += 1.0 / m;
  }
  return static_cast<double>(n()) * mean_max_wait() - sum_inv;
}

double SyncRbModel::mean_wait(std::size_t i) const {
  RBX_CHECK(i < n());
  return mean_max_wait() - 1.0 / mu_[i];
}

double SyncRbModel::loss_rate(double sync_rate) const {
  RBX_CHECK(sync_rate > 0.0);
  return sync_rate * mean_loss();
}

}  // namespace rbx
