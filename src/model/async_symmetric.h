// The simplified asynchronous-RB chain for homogeneous rates (paper rules
// R1'-R4', Figure 3).
//
// When mu_i = mu and lambda_ij = lambda for all processes/pairs, every
// intermediate state with exactly u ones collapses into a single lumped
// state S~_u.  The chain has n + 2 states:
//   index 0      : S_r (entry)
//   index u + 1  : S~_u, u = 0..n-1 ones among the last actions
//   index n + 1  : S_{r+1} (absorbing)
// with rates
//   R1': S~_u -> S~_{u+1} at (n - u) mu   (S~_{n-1} -> absorbing at mu)
//   R2': S~_u -> S~_{u-2} at u (u - 1) lambda / 2        (u >= 2)
//   R3': S~_u -> S~_{u-1} at u (n - u) lambda            (u >= 1)
//   R4': S_r  -> S_{r+1}  at n mu
//   and from S_r an interaction (n (n-1) lambda / 2 total) drops to S~_{n-2}.
//
// The OCR of the paper garbles the R2' rate ("u u - 1 x .2"); u(u-1)lambda/2
// is the unique reading that makes the lumping of the full model exact,
// which tests/model/async_symmetric_test.cc verifies state-by-state.
#pragma once

#include <cstddef>
#include <memory>

#include "markov/ctmc.h"
#include "markov/phase_type.h"

namespace rbx {

class SymmetricAsyncModel {
 public:
  SymmetricAsyncModel(std::size_t n, double mu, double lambda);

  std::size_t n() const { return n_; }
  double mu() const { return mu_; }
  double lambda() const { return lambda_; }
  double rho() const;

  std::size_t num_states() const { return n_ + 2; }
  std::size_t entry_state() const { return 0; }
  std::size_t lumped_state(std::size_t ones) const;
  std::size_t absorbing_state() const { return n_ + 1; }

  const Ctmc& chain() const { return *chain_; }
  const PhaseType& interval() const { return *interval_; }

  double mean_interval() const;
  double variance_interval() const;
  double interval_pdf(double t) const;
  double interval_cdf(double t) const;

  // Stationary age E[X^2] / (2 E[X]) of the newest recovery line at a
  // random error time (see AsyncRbModel::mean_line_age).
  double mean_line_age() const;

  // E[L_i] by symmetry: every process saves the same expected number of
  // states; the Wald identity gives mu * E[X] (convention (a)); the
  // line-forming RP belongs to each process with probability 1/n, giving
  // convention (b) = mu E[X] - 1/n.
  double expected_rp_count_wald() const;
  double expected_rp_count_excluding_final() const;

 private:
  std::size_t n_;
  double mu_;
  double lambda_;
  std::shared_ptr<Ctmc> chain_;
  std::unique_ptr<PhaseType> interval_;
};

}  // namespace rbx
