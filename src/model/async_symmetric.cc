#include "model/async_symmetric.h"

#include "support/check.h"

namespace rbx {

SymmetricAsyncModel::SymmetricAsyncModel(std::size_t n, double mu,
                                         double lambda)
    : n_(n), mu_(mu), lambda_(lambda) {
  RBX_CHECK(n >= 1);
  RBX_CHECK(mu > 0.0);
  RBX_CHECK(lambda >= 0.0);

  chain_ = std::make_shared<Ctmc>(num_states());
  const double nd = static_cast<double>(n);

  // R4': immediate re-formation from the entry state.
  chain_->add_rate(entry_state(), absorbing_state(), nd * mu);
  // From S_r an interaction clears two bits (all pairs are "both ones").
  if (n >= 2 && lambda > 0.0) {
    chain_->add_rate(entry_state(), lumped_state(n - 2),
                     nd * (nd - 1.0) / 2.0 * lambda);
  }

  for (std::size_t u = 0; u < n; ++u) {
    const double ud = static_cast<double>(u);
    const std::size_t src = lumped_state(u);
    // R1': one of the (n - u) zero processes establishes an RP.
    const std::size_t dest =
        (u + 1 == n) ? absorbing_state() : lumped_state(u + 1);
    chain_->add_rate(src, dest, (nd - ud) * mu);
    // R2': interaction between two "one" processes.
    if (u >= 2 && lambda > 0.0) {
      chain_->add_rate(src, lumped_state(u - 2),
                       ud * (ud - 1.0) / 2.0 * lambda);
    }
    // R3': interaction between a "one" and a "zero" process.
    if (u >= 1 && lambda > 0.0 && u < n) {
      chain_->add_rate(src, lumped_state(u - 1), ud * (nd - ud) * lambda);
    }
  }
  chain_->finalize();

  std::vector<double> alpha(num_states(), 0.0);
  alpha[entry_state()] = 1.0;
  interval_ = std::make_unique<PhaseType>(
      chain_, std::vector<std::size_t>{absorbing_state()}, std::move(alpha));
}

double SymmetricAsyncModel::rho() const {
  const double nd = static_cast<double>(n_);
  return (nd * (nd - 1.0) / 2.0 * lambda_) / (nd * mu_);
}

std::size_t SymmetricAsyncModel::lumped_state(std::size_t ones) const {
  RBX_CHECK(ones < n_);
  return ones + 1;
}

double SymmetricAsyncModel::mean_interval() const { return interval_->mean(); }

double SymmetricAsyncModel::variance_interval() const {
  return interval_->variance();
}

double SymmetricAsyncModel::interval_pdf(double t) const {
  return interval_->pdf(t);
}

double SymmetricAsyncModel::interval_cdf(double t) const {
  return interval_->cdf(t);
}

double SymmetricAsyncModel::mean_line_age() const {
  return interval_->second_moment() / (2.0 * interval_->mean());
}

double SymmetricAsyncModel::expected_rp_count_wald() const {
  return mu_ * mean_interval();
}

double SymmetricAsyncModel::expected_rp_count_excluding_final() const {
  return expected_rp_count_wald() - 1.0 / static_cast<double>(n_);
}

}  // namespace rbx
