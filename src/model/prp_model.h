// Pseudo recovery points (paper Section 4).
//
// When P_j establishes a recovery point it broadcasts an implantation
// request; every other process records its state as a PRP (no acceptance
// test) and answers with a commitment.  The RP together with the n-1 PRPs
// forms a pseudo recovery line that bounds rollback without synchronizing
// normal execution.  The overheads quantified by the paper:
//
//  * n states saved per recovery point (one RP + n-1 PRPs);
//  * additional time overhead (n-1) * t_r per RP, t_r the state-recording
//    time;
//  * with purging, each process retains its most recent RP plus one PRP per
//    other process (members of the newest pseudo recovery lines), i.e. n
//    snapshots per process;
//  * the rollback distance for a locally detected error is bounded by
//    sup{y_1..y_n}, y_i the inter-RP interval of P_i - the same
//    max-of-exponentials expectation as the synchronized scheme's Z.
#pragma once

#include <cstddef>
#include <vector>

#include "model/params.h"

namespace rbx {

class PrpModel {
 public:
  // t_record: time to record one process state (the paper's t_r).
  PrpModel(ProcessSetParams params, double t_record);

  const ProcessSetParams& params() const { return params_; }
  double t_record() const { return t_record_; }
  std::size_t n() const { return params_.n(); }

  // --- storage ---
  // States saved per recovery point across the system: n.
  std::size_t snapshots_per_rp() const { return n(); }
  // Rate at which process i records snapshots (its own RPs plus implanted
  // PRPs for every other process's RPs): sum_k mu_k.
  double snapshot_rate(std::size_t i) const;
  // System-wide snapshot rate: n * sum_k mu_k.
  double system_snapshot_rate() const;
  // Live snapshots per process under the purge rule (most recent RP plus
  // one PRP per peer): n.
  std::size_t retained_snapshots_per_process() const { return n(); }

  // --- time ---
  // Extra recording time the system spends per RP: (n-1) t_r.
  double time_overhead_per_rp() const;
  // Fraction of process i's time spent recording states.
  double recording_fraction(std::size_t i) const;

  // --- rollback ---
  // Expected bound on the rollback distance (restart from the newest pseudo
  // recovery line past one RP): E[sup y_i] with y_i ~ Exp(mu_i).
  double mean_rollback_bound() const;
  // Rollback distance for an error local to P_i detected at its next
  // acceptance test: the age of P_i's last RP, mean 1/mu_i.
  double mean_local_rollback(std::size_t i) const;

 private:
  ProcessSetParams params_;
  double t_record_;
};

}  // namespace rbx
