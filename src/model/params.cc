#include "model/params.h"

#include <cmath>
#include <sstream>

#include "support/check.h"

namespace rbx {

ProcessSetParams::ProcessSetParams(std::vector<double> mu,
                                   std::vector<double> lambda_flat)
    : mu_(std::move(mu)), lambda_(std::move(lambda_flat)) {
  const std::size_t n = mu_.size();
  RBX_CHECK_MSG(n >= 1, "at least one process");
  RBX_CHECK_MSG(lambda_.size() == n * n, "lambda must be n x n");
  for (double m : mu_) {
    RBX_CHECK_MSG(m > 0.0, "recovery point rates must be positive");
  }
  for (std::size_t i = 0; i < n; ++i) {
    RBX_CHECK_MSG(lambda_[i * n + i] == 0.0, "lambda diagonal must be zero");
    for (std::size_t j = 0; j < n; ++j) {
      RBX_CHECK_MSG(lambda_[i * n + j] >= 0.0, "lambda must be non-negative");
      RBX_CHECK_MSG(lambda_[i * n + j] == lambda_[j * n + i],
                    "lambda must be symmetric");
    }
  }
}

ProcessSetParams ProcessSetParams::symmetric(std::size_t n, double mu,
                                             double lambda) {
  std::vector<double> mus(n, mu);
  std::vector<double> lam(n * n, lambda);
  for (std::size_t i = 0; i < n; ++i) {
    lam[i * n + i] = 0.0;
  }
  return ProcessSetParams(std::move(mus), std::move(lam));
}

ProcessSetParams ProcessSetParams::three(double mu1, double mu2, double mu3,
                                         double l12, double l23, double l13) {
  std::vector<double> mus = {mu1, mu2, mu3};
  std::vector<double> lam(9, 0.0);
  auto set = [&lam](std::size_t i, std::size_t j, double v) {
    lam[i * 3 + j] = v;
    lam[j * 3 + i] = v;
  };
  set(0, 1, l12);
  set(1, 2, l23);
  set(0, 2, l13);
  return ProcessSetParams(std::move(mus), std::move(lam));
}

double ProcessSetParams::mu(std::size_t i) const {
  RBX_CHECK(i < mu_.size());
  return mu_[i];
}

double ProcessSetParams::lambda(std::size_t i, std::size_t j) const {
  RBX_CHECK(i < mu_.size() && j < mu_.size());
  return lambda_[i * mu_.size() + j];
}

double ProcessSetParams::total_mu() const {
  double sum = 0.0;
  for (double m : mu_) {
    sum += m;
  }
  return sum;
}

double ProcessSetParams::total_lambda() const {
  const std::size_t n = mu_.size();
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      sum += lambda_[i * n + j];
    }
  }
  return sum;
}

double ProcessSetParams::interaction_rate(std::size_t i) const {
  RBX_CHECK(i < mu_.size());
  const std::size_t n = mu_.size();
  double sum = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    sum += lambda_[i * n + j];
  }
  return sum;
}

double ProcessSetParams::total_event_rate() const {
  return total_lambda() + total_mu();
}

double ProcessSetParams::rho() const { return total_lambda() / total_mu(); }

bool ProcessSetParams::is_symmetric_rates() const {
  const std::size_t n = mu_.size();
  for (std::size_t i = 1; i < n; ++i) {
    if (mu_[i] != mu_[0]) {
      return false;
    }
  }
  if (n < 2) {
    return true;
  }
  const double l0 = lambda_[1];  // lambda(0, 1)
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j && lambda_[i * n + j] != l0) {
        return false;
      }
    }
  }
  return true;
}

std::string ProcessSetParams::describe() const {
  std::ostringstream os;
  os << "n=" << n() << " mu=(";
  for (std::size_t i = 0; i < n(); ++i) {
    os << (i ? "," : "") << mu_[i];
  }
  os << ") lambda=(";
  bool first = true;
  for (std::size_t i = 0; i < n(); ++i) {
    for (std::size_t j = i + 1; j < n(); ++j) {
      os << (first ? "" : ",") << lambda(i, j);
      first = false;
    }
  }
  os << ") rho=" << rho();
  return os.str();
}

}  // namespace rbx
