// The full Markov model of asynchronous recovery blocks (paper Section 2.2).
//
// State space (paper Section 2.3 numbering):
//   state 0        : S_r, the entry state right after the r-th recovery line;
//   state mask + 1 : intermediate state (x_1..x_n), mask = sum x_i 2^{i-1},
//                    for every mask except the all-ones mask, where x_i = 1
//                    iff the previous action of P_i was a recovery point and
//                    x_i = 0 iff it was an interaction;
//   state m = 2^n  : S_{r+1}, entered when the (r+1)-th recovery line forms
//                    (the all-ones mask maps here).
//
// Transition rules (paper R1-R4):
//   R1: x_i 0 -> 1 at rate mu_i (P_i establishes a recovery point); if this
//       makes the mask all-ones the chain is absorbed in S_{r+1}.
//   R2: an interaction of pair (i, j) with x_i = x_j = 1 clears both bits at
//       rate lambda_ij.
//   R3: an interaction of pair (i, j) with exactly one bit set clears that
//       bit at rate lambda_ij.
//   R4: from S_r a recovery point of any P_k immediately re-forms a recovery
//       line (rate mu_k each, total sum_k mu_k) - the new RP of P_k together
//       with the other processes' previous-line RPs is already consistent.
//
// The interval X between successive recovery lines is the absorption time,
// a phase-type random variable.  L_i, the number of states saved by P_i
// during X, is derived from the embedded discrete chain Y_d; see RpCounts
// for the three counting conventions (DESIGN.md "Interpretation decisions").
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "markov/ctmc.h"
#include "markov/phase_type.h"
#include "model/params.h"

namespace rbx {

class AsyncRbModel {
 public:
  // Full model size is 2^n + 1 states and mean/variance solves are dense
  // O(8^n); n is capped at 12 (4097 states) to keep misuse loud.
  explicit AsyncRbModel(ProcessSetParams params);

  const ProcessSetParams& params() const { return params_; }
  std::size_t n() const { return params_.n(); }

  // --- state-space helpers (exposed for tests and the DOT exporter) ---
  std::size_t num_states() const { return (std::size_t{1} << n()) + 1; }
  std::size_t entry_state() const { return 0; }
  std::size_t absorbing_state() const { return std::size_t{1} << n(); }
  // Maps an intermediate bit mask (not all-ones) to its state id.
  std::size_t state_of_mask(std::size_t mask) const;
  // Inverse of state_of_mask; requires 1 <= state < absorbing.
  std::size_t mask_of_state(std::size_t state) const;

  const Ctmc& chain() const { return *chain_; }

  // --- the interval X between successive recovery lines ---
  const PhaseType& interval() const { return *interval_; }
  double mean_interval() const;          // E[X]
  double variance_interval() const;      // Var[X]
  double interval_pdf(double t) const;   // f_X(t)
  double interval_cdf(double t) const;

  // Stationary age of the newest recovery line when an error strikes at a
  // random time: by renewal theory the expected age of the current
  // X-interval is E[X^2] / (2 E[X]) (the inspection paradox - long
  // intervals are likelier to be hit).  The paper's conclusion notes that
  // the real rollback distance depends on when errors occur; this is the
  // corresponding closed form for errors arriving uniformly in time, and a
  // lower bound on the expected asynchronous rollback distance.
  double mean_line_age() const;

  // Expected sojourn time per state before absorption (entry start).
  const std::vector<double>& sojourn() const { return sojourn_; }

  // Probability that the RP completing the next recovery line belongs to
  // process i (the "final" RP of the interval).
  double absorbing_rp_probability(std::size_t i) const;

  // --- E[L_i]: expected number of recovery points established by P_i ---
  struct RpCounts {
    // (a) every RP of P_i during X, including the line-forming one.  By
    //     Wald's identity on the uniformized event stream this equals
    //     mu_i * E[X] exactly.
    double wald;
    // (b) excluding the line-forming RP: mu_i * E[X] - P(final RP by P_i).
    //     This is what the literal split-state construction of the paper's
    //     Y_d chain counts (arrivals into the primed states).
    double excluding_final;
    // (c) only RPs that change the model state (an RP of P_i while x_i = 1
    //     is invisible to the chain and not counted).
    double state_changing;
  };
  RpCounts expected_rp_count(std::size_t i) const;

  // Literal reconstruction of the paper's split-state discrete chain Y_d
  // (Section 2.3 II, Figure 4): builds the expanded DTMC in which every
  // state with x_i = 1 is split into S' (entered by RPs of P_i) and S''
  // (entered otherwise) and returns the expected total visits to the primed
  // states.  Equals RpCounts::excluding_final up to solver tolerance; kept
  // as an independent path for validation.
  double expected_rp_count_split_chain(std::size_t i) const;

  // Structure accessors used by the Figure 2/3 regeneration bench.
  std::size_t transition_count() const;

 private:
  void build_chain();

  ProcessSetParams params_;
  std::shared_ptr<Ctmc> chain_;
  std::unique_ptr<PhaseType> interval_;
  std::vector<double> sojourn_;
  std::vector<double> alpha_;
};

}  // namespace rbx
