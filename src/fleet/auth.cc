#include "fleet/auth.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <random>
#include <stdexcept>

namespace rbx {
namespace fleet {

namespace {

// FIPS 180-4 section 4.2.2 round constants.
constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline std::uint32_t rotr(std::uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

struct Sha256 {
  std::uint32_t h[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  std::uint8_t block[64];
  std::size_t block_len = 0;
  std::uint64_t total_len = 0;

  void compress(const std::uint8_t* p) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t(p[4 * i]) << 24) |
             (std::uint32_t(p[4 * i + 1]) << 16) |
             (std::uint32_t(p[4 * i + 2]) << 8) | std::uint32_t(p[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
    std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t S1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = hh + S1 + ch + kK[i] + w[i];
      const std::uint32_t S0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = S0 + maj;
      hh = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    h[0] += a;
    h[1] += b;
    h[2] += c;
    h[3] += d;
    h[4] += e;
    h[5] += f;
    h[6] += g;
    h[7] += hh;
  }

  void update(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    total_len += size;
    while (size > 0) {
      if (block_len == 0 && size >= 64) {
        compress(p);
        p += 64;
        size -= 64;
        continue;
      }
      const std::size_t take = std::min<std::size_t>(64 - block_len, size);
      std::memcpy(block + block_len, p, take);
      block_len += take;
      p += take;
      size -= take;
      if (block_len == 64) {
        compress(block);
        block_len = 0;
      }
    }
  }

  std::array<std::uint8_t, 32> finish() {
    const std::uint64_t bits = total_len * 8;
    const std::uint8_t pad = 0x80;
    update(&pad, 1);
    const std::uint8_t zero = 0;
    while (block_len != 56) update(&zero, 1);
    std::uint8_t len_be[8];
    for (int i = 0; i < 8; ++i) {
      len_be[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
    }
    update(len_be, 8);
    std::array<std::uint8_t, 32> out;
    for (int i = 0; i < 8; ++i) {
      out[4 * i] = static_cast<std::uint8_t>(h[i] >> 24);
      out[4 * i + 1] = static_cast<std::uint8_t>(h[i] >> 16);
      out[4 * i + 2] = static_cast<std::uint8_t>(h[i] >> 8);
      out[4 * i + 3] = static_cast<std::uint8_t>(h[i]);
    }
    return out;
  }
};

}  // namespace

std::array<std::uint8_t, 32> sha256(const void* data, std::size_t size) {
  Sha256 s;
  s.update(data, size);
  return s.finish();
}

std::array<std::uint8_t, 32> hmac_sha256(const std::string& key,
                                         const std::string& message) {
  std::uint8_t k[64] = {0};
  if (key.size() > 64) {
    const auto digest = sha256(key.data(), key.size());
    std::memcpy(k, digest.data(), digest.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  std::uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.update(ipad, 64);
  inner.update(message.data(), message.size());
  const auto inner_digest = inner.finish();
  Sha256 outer;
  outer.update(opad, 64);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

std::string auth_mac(const std::string& key, const std::string& challenge) {
  const auto mac = hmac_sha256(key, challenge);
  return std::string(reinterpret_cast<const char*>(mac.data()), mac.size());
}

bool mac_equal(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<unsigned char>(a[i]) ^ static_cast<unsigned char>(b[i]);
  }
  return diff == 0;
}

std::uint64_t lease_sig(const std::string& key, std::uint64_t token) {
  if (key.empty()) return 0;
  std::string msg = "rbx-fleet-lease";
  for (int i = 0; i < 8; ++i) {
    msg.push_back(static_cast<char>(token >> (8 * i)));
  }
  const auto mac = hmac_sha256(key, msg);
  std::uint64_t sig = 0;
  for (int i = 0; i < 8; ++i) {
    sig |= std::uint64_t(mac[i]) << (8 * i);
  }
  return sig;
}

std::string load_auth_key(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw std::runtime_error("cannot read auth key file: " + path);
  }
  std::string key;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    key.append(buf, n);
  }
  std::fclose(f);
  if (!key.empty() && key.back() == '\n') key.pop_back();
  if (!key.empty() && key.back() == '\r') key.pop_back();
  if (key.empty()) {
    throw std::runtime_error("auth key file is empty: " + path);
  }
  return key;
}

std::string make_challenge() {
  std::random_device rd;
  std::string nonce;
  nonce.reserve(16);
  for (int i = 0; i < 4; ++i) {
    const std::uint32_t r = rd();
    for (int j = 0; j < 4; ++j) {
      nonce.push_back(static_cast<char>(r >> (8 * j)));
    }
  }
  return nonce;
}

}  // namespace fleet
}  // namespace rbx
