#include "fleet/proto.h"

namespace rbx {
namespace fleet {

std::string JoinInfo::endpoint() const {
  return host + ":" + std::to_string(port);
}

void JoinInfo::encode(wire::Writer& w) const {
  w.str(host);
  w.u16(port);
  w.u32(weight);
}

JoinInfo JoinInfo::decode(wire::Reader& r) {
  JoinInfo info;
  info.host = r.str();
  info.port = r.u16();
  info.weight = r.u32();
  if (info.weight == 0) {
    throw wire::Error("fleet join: weight must be positive");
  }
  return info;
}

void ResolveRequest::encode(wire::Writer& w) const {
  w.u64(coordinator_id);
  w.u32(max_workers);
}

ResolveRequest ResolveRequest::decode(wire::Reader& r) {
  ResolveRequest req;
  req.coordinator_id = r.u64();
  req.max_workers = r.u32();
  return req;
}

std::string GrantedMember::endpoint() const {
  return host + ":" + std::to_string(port);
}

void GrantResponse::encode(wire::Writer& w) const {
  w.u32(static_cast<std::uint32_t>(members.size()));
  for (const GrantedMember& m : members) {
    w.str(m.host);
    w.u16(m.port);
    w.u64(m.lease_token);
    w.u64(m.lease_sig);
  }
  w.u32(live_members);
}

GrantResponse GrantResponse::decode(wire::Reader& r) {
  GrantResponse resp;
  const std::uint32_t count = r.u32();
  resp.members.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    GrantedMember m;
    m.host = r.str();
    m.port = r.u16();
    m.lease_token = r.u64();
    m.lease_sig = r.u64();
    resp.members.push_back(std::move(m));
  }
  resp.live_members = r.u32();
  return resp;
}

}  // namespace fleet
}  // namespace rbx
