#include "fleet/registry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "fleet/auth.h"

namespace rbx {
namespace fleet {

std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- MemberTable -----------------------------------------------------------

void MemberTable::evict_expired(std::int64_t now_ms) {
  // Lazy eviction on every query: an expired member must be invisible to
  // the very next resolve, not to the one after a maintenance tick.
  for (auto it = members_.begin(); it != members_.end();) {
    if (now_ms - it->second.last_seen_ms >= opt_.evict_after_ms) {
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = coordinators_.begin(); it != coordinators_.end();) {
    if (now_ms - it->second.issued_ms >= opt_.lease_ttl_ms) {
      for (const std::string& ep : it->second.endpoints) {
        auto m = members_.find(ep);
        if (m != members_.end() && m->second.leases > 0) {
          --m->second.leases;
        }
      }
      it = coordinators_.erase(it);
    } else {
      ++it;
    }
  }
}

void MemberTable::join(const JoinInfo& info, std::int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  evict_expired(now_ms);
  auto it = members_.find(info.endpoint());
  if (it == members_.end()) {
    Member m;
    m.info = info;
    m.last_seen_ms = now_ms;
    m.joined_seq = next_seq_++;
    members_.emplace(info.endpoint(), std::move(m));
  } else {
    // Register-or-refresh: a restarted daemon re-joining its endpoint
    // refreshes the entry (and may change its weight) instead of
    // duplicating it; leases held on it stay attached.
    it->second.info = info;
    it->second.last_seen_ms = now_ms;
  }
}

void MemberTable::leave(const std::string& endpoint) {
  std::lock_guard<std::mutex> lock(mutex_);
  members_.erase(endpoint);
}

void MemberTable::release_leases(std::uint64_t coordinator_id) {
  auto it = coordinators_.find(coordinator_id);
  if (it == coordinators_.end()) {
    return;
  }
  for (const std::string& ep : it->second.endpoints) {
    auto m = members_.find(ep);
    if (m != members_.end() && m->second.leases > 0) {
      --m->second.leases;
    }
  }
  coordinators_.erase(it);
}

std::size_t MemberTable::live(std::int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  evict_expired(now_ms);
  return members_.size();
}

GrantResponse MemberTable::resolve(const ResolveRequest& req,
                                   std::int64_t now_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  evict_expired(now_ms);
  // A re-resolve supersedes this coordinator's previous leases - the
  // coordinator is asking for the pool as it stands now (e.g. hunting a
  // backfill candidate), not for more of it.
  release_leases(req.coordinator_id);

  GrantResponse resp;
  resp.live_members = static_cast<std::uint32_t>(members_.size());
  if (members_.empty()) {
    return resp;
  }

  // Fair share: the live weighted capacity split evenly among the
  // coordinators holding unexpired leases, this one included.  Every
  // coordinator gets at least one member - a fleet smaller than its
  // audience is shared, not rationed to zero.
  std::uint64_t total_weight = 0;
  for (const auto& entry : members_) {
    total_weight += entry.second.info.weight;
  }
  const std::uint64_t contenders = coordinators_.size() + 1;
  const std::uint64_t share_weight =
      std::max<std::uint64_t>(1, total_weight / contenders);

  // Least-leased members first, join order breaking ties, so contending
  // coordinators spread across the fleet before anyone doubles up.
  std::vector<Member*> order;
  order.reserve(members_.size());
  for (auto& entry : members_) {
    order.push_back(&entry.second);
  }
  std::sort(order.begin(), order.end(), [](const Member* a, const Member* b) {
    if (a->leases != b->leases) {
      return a->leases < b->leases;
    }
    return a->joined_seq < b->joined_seq;
  });

  CoordinatorLeases leases;
  leases.issued_ms = now_ms;
  std::uint64_t granted_weight = 0;
  for (Member* m : order) {
    if (!resp.members.empty() && granted_weight >= share_weight) {
      break;
    }
    if (req.max_workers != 0 && resp.members.size() >= req.max_workers) {
      break;
    }
    GrantedMember g;
    g.host = m->info.host;
    g.port = m->info.port;
    g.lease_token = next_token_++;
    g.lease_sig = fleet::lease_sig(opt_.auth_key, g.lease_token);
    resp.members.push_back(std::move(g));
    leases.endpoints.push_back(m->info.endpoint());
    ++m->leases;
    granted_weight += m->info.weight;
  }
  coordinators_.emplace(req.coordinator_id, std::move(leases));
  return resp;
}

// --- RegistryServer --------------------------------------------------------

namespace {

bool send_error(net::FrameConn& conn, const std::string& message) {
  wire::Writer w;
  w.str(message);
  return conn.send(kFrameError, w.data());
}

}  // namespace

RegistryServer::RegistryServer(const RegistryOptions& options)
    : options_(options), listener_(options.port), table_(options.table) {}

RegistryServer::~RegistryServer() {
  stop();
  reap_sessions(/*all=*/true);
}

void RegistryServer::stop() {
  stopping_.store(true);
  listener_.abort();
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (auto& session : sessions_) {
    session->conn.abort();
  }
}

void RegistryServer::reap_sessions(bool all) {
  std::vector<std::unique_ptr<Session>> taken;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (all || (*it)->done.load()) {
        taken.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& session : taken) {
    if (all) {
      session->conn.abort();
    }
    if (session->thread.joinable()) {
      session->thread.join();
    }
  }
}

bool RegistryServer::serve() {
  for (;;) {
    net::Socket client;
    try {
      client = listener_.accept_client();
    } catch (const net::Error&) {
      if (stopping_.load()) {
        break;
      }
      reap_sessions(/*all=*/true);
      throw;
    }
    if (stopping_.load()) {
      break;
    }
    reap_sessions(/*all=*/false);
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      std::size_t active = 0;
      for (const auto& session : sessions_) {
        if (!session->done.load()) {
          ++active;
        }
      }
      if (active >= options_.max_sessions) {
        // Membership traffic is tiny; a full registry means something is
        // leaking sessions.  Refuse loudly rather than backlogging.
        net::FrameConn conn(std::move(client));
        send_error(conn, "registry is serving " + std::to_string(active) +
                             " sessions (max " +
                             std::to_string(options_.max_sessions) + ")");
        continue;
      }
    }
    auto session = std::make_unique<Session>(std::move(client));
    Session* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw]() {
      serve_connection(raw->conn);
      raw->conn.abort();
      raw->done.store(true);
    });
  }
  reap_sessions(/*all=*/true);
  return true;
}

bool RegistryServer::serve_connection(net::FrameConn& conn) {
  bool handshaken = false;
  for (;;) {
    wire::Frame frame;
    bool got = false;
    try {
      got = conn.recv(&frame);
    } catch (const wire::Error& e) {
      send_error(conn,
                 std::string("registry: corrupt request stream: ") + e.what());
      return true;
    }
    if (!got) {
      return true;  // peer closed; soft state ages out via heartbeats
    }
    try {
      if (frame.type == net::kFrameHello) {
        wire::Reader r(frame.payload);
        const net::Hello hello = net::Hello::decode(r);
        r.expect_done();
        if (hello.protocol != net::kProtocolVersion) {
          send_error(conn, "registry speaks cluster protocol " +
                               std::to_string(net::kProtocolVersion) +
                               ", peer sent " +
                               std::to_string(hello.protocol));
          return true;
        }
        if (hello.wire_version != wire::kVersion) {
          send_error(conn, "registry encodes wire version " +
                               std::to_string(wire::kVersion) + ", peer sent " +
                               std::to_string(hello.wire_version));
          return true;
        }
        if (!options_.table.auth_key.empty()) {
          if ((hello.flags & kHelloFlagAuth) == 0) {
            send_error(conn,
                       "registry requires authentication (--auth-key-file); "
                       "peer presented no key");
            return true;
          }
          const std::string challenge = make_challenge();
          wire::Writer cw;
          cw.str(challenge);
          if (!conn.send(kFrameAuthChallenge, cw.data())) {
            return true;
          }
          wire::Frame reply;
          if (!conn.recv(&reply) || reply.type != kFrameAuthResponse) {
            send_error(conn, "registry: expected an auth response");
            return true;
          }
          wire::Reader rr(reply.payload);
          const std::string mac = rr.str();
          rr.expect_done();
          if (!mac_equal(mac, auth_mac(options_.table.auth_key, challenge))) {
            send_error(conn,
                       "registry: authentication failed (wrong --auth-key-"
                       "file?)");
            return true;
          }
        }
        wire::Writer w;
        hello.encode(w);
        if (!conn.send(net::kFrameHelloAck, w.data())) {
          return true;
        }
        handshaken = true;
      } else if (!handshaken) {
        send_error(conn,
                   "registry: frame before the Hello handshake (refusing "
                   "unversioned traffic)");
        return true;
      } else if (frame.type == kFrameFleetJoin ||
                 frame.type == kFrameFleetHeartbeat) {
        wire::Reader r(frame.payload);
        const JoinInfo info = JoinInfo::decode(r);
        r.expect_done();
        table_.join(info, steady_now_ms());
        if (frame.type == kFrameFleetJoin && !options_.quiet) {
          std::fprintf(stderr,
                       "fleet_registryd: member %s joined (weight %u)\n",
                       info.endpoint().c_str(),
                       static_cast<unsigned>(info.weight));
        }
        if (!conn.send(kFrameFleetOk, {})) {
          return true;
        }
      } else if (frame.type == kFrameFleetLeave) {
        wire::Reader r(frame.payload);
        const JoinInfo info = JoinInfo::decode(r);
        r.expect_done();
        table_.leave(info.endpoint());
        if (!options_.quiet) {
          std::fprintf(stderr, "fleet_registryd: member %s left\n",
                       info.endpoint().c_str());
        }
        if (!conn.send(kFrameFleetOk, {})) {
          return true;
        }
      } else if (frame.type == kFrameFleetResolve) {
        wire::Reader r(frame.payload);
        const ResolveRequest req = ResolveRequest::decode(r);
        r.expect_done();
        const GrantResponse resp = table_.resolve(req, steady_now_ms());
        if (!options_.quiet) {
          std::fprintf(stderr,
                       "fleet_registryd: granted %zu of %u live member(s) "
                       "to coordinator %llu\n",
                       resp.members.size(),
                       static_cast<unsigned>(resp.live_members),
                       static_cast<unsigned long long>(req.coordinator_id));
        }
        wire::Writer w;
        resp.encode(w);
        if (!conn.send(kFrameFleetGrant, w.data())) {
          return true;
        }
      } else {
        send_error(conn, "registry: unexpected frame type " +
                             std::to_string(frame.type));
        return true;
      }
    } catch (const wire::Error& e) {
      send_error(conn,
                 std::string("registry: malformed payload: ") + e.what());
      return true;
    }
  }
}

}  // namespace fleet
}  // namespace rbx
