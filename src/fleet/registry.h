// The fleet registry: membership, liveness and fair-share leasing.
//
// MemberTable is the pure membership state machine - every operation
// takes an explicit `now_ms`, so unit tests drive heartbeat expiry and
// lease ageing deterministically without sleeping.  Liveness is soft
// state in the failure-detector style: a member that has not heartbeated
// within `evict_after_ms` is evicted lazily (checked on every resolve and
// join), so an expired member is *never* handed to a coordinator even if
// no maintenance tick ran.
//
// Fair scheduling: each resolve() is a coordinator asking for workers.
// Coordinators whose leases have not yet expired (lease_ttl_ms) count as
// contenders; the live weighted capacity is split evenly among them and
// each coordinator is granted the least-leased members first, so two
// sweeps arriving together get disjoint halves of the fleet while a lone
// sweep gets all of it.  A re-resolve from the same coordinator releases
// its old leases first - re-resolving (e.g. to find a backfill candidate
// mid-sweep) never double-counts a coordinator.
//
// Every granted member carries a lease token signed with the pre-shared
// key (fleet/auth.h); workers verify the signature in the Hello
// handshake without talking to the registry.
//
// RegistryServer wraps the table in a loopback-testable TCP server with
// the same session discipline as net::WorkerServer: versioned Hello
// handshake first (HMAC challenge/response when a key is set), then
// Join/Heartbeat/Leave/Resolve frames until EOF.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fleet/proto.h"
#include "net/frame.h"
#include "net/socket.h"

namespace rbx {
namespace fleet {

struct MemberTableOptions {
  std::int64_t evict_after_ms = 10000;  // heartbeat silence before eviction
  std::int64_t lease_ttl_ms = 60000;    // how long a coordinator counts as
                                        // a contender after its last resolve
  std::string auth_key;                 // signs lease tokens; empty = open
};

class MemberTable {
 public:
  explicit MemberTable(const MemberTableOptions& options) : opt_(options) {}

  // Join and heartbeat are the same transition (register-or-refresh),
  // keyed by the advertised endpoint: a restarted daemon re-joining its
  // old endpoint refreshes the entry instead of duplicating it.
  void join(const JoinInfo& info, std::int64_t now_ms);
  void heartbeat(const JoinInfo& info, std::int64_t now_ms) {
    join(info, now_ms);
  }
  // Orderly departure; unknown endpoints are ignored.
  void leave(const std::string& endpoint);

  // Lease a fair share of the live members to this coordinator.  Expired
  // members are evicted first and never granted.  Returns an empty grant
  // when no member is live.
  GrantResponse resolve(const ResolveRequest& req, std::int64_t now_ms);

  // Live member count after lazy eviction at `now_ms`.
  std::size_t live(std::int64_t now_ms);

 private:
  struct Member {
    JoinInfo info;
    std::int64_t last_seen_ms = 0;
    std::size_t leases = 0;  // active leases held on this member
    std::uint64_t joined_seq = 0;  // stable grant ordering
  };
  struct CoordinatorLeases {
    std::int64_t issued_ms = 0;
    std::vector<std::string> endpoints;
  };

  void evict_expired(std::int64_t now_ms);
  void release_leases(std::uint64_t coordinator_id);

  MemberTableOptions opt_;
  std::mutex mutex_;
  std::map<std::string, Member> members_;  // by endpoint
  std::map<std::uint64_t, CoordinatorLeases> coordinators_;
  std::uint64_t next_token_ = 1;
  std::uint64_t next_seq_ = 1;
};

struct RegistryOptions {
  std::uint16_t port = 0;  // 0 = ephemeral; port() has the truth
  bool quiet = false;
  std::size_t max_sessions = 16;
  MemberTableOptions table;
};

class RegistryServer {
 public:
  // Binds and listens immediately (throws net::Error on failure).
  explicit RegistryServer(const RegistryOptions& options);
  ~RegistryServer();

  std::uint16_t port() const { return listener_.port(); }

  // Accept-and-serve loop until stop().  Always returns true (the
  // registry has no fail hook); signature matches WorkerServer::serve so
  // the daemons' main()s stay parallel.
  bool serve();
  void stop();

 private:
  bool serve_connection(net::FrameConn& conn);

  struct Session {
    explicit Session(net::Socket sock) : conn(std::move(sock)) {}
    net::FrameConn conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  void reap_sessions(bool all);

  RegistryOptions options_;
  net::Listener listener_;
  MemberTable table_;
  std::atomic<bool> stopping_{false};
  std::mutex sessions_mutex_;
  std::list<std::unique_ptr<Session>> sessions_;
};

// Milliseconds on the monotonic clock - the `now_ms` feed for the live
// daemons (tests feed MemberTable explicit values instead).
std::int64_t steady_now_ms();

}  // namespace fleet
}  // namespace rbx
