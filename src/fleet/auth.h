// Pre-shared-key authentication for the worker fleet.
//
// A fleet that sits on an untrusted network must not hand cells to - or
// take answers from - a peer that merely knows the port number.  The
// trust anchor is one pre-shared key file (--auth-key-file on the
// registry, every daemon and every coordinator); possession is proven
// with an HMAC-SHA256 challenge/response folded into the Hello handshake
// (core/lane.h):
//
//   coordinator -> worker   Hello with the kHelloFlagAuth bit set
//   worker -> coordinator   kFrameAuthChallenge  fresh random nonce
//   coordinator -> worker   kFrameAuthResponse   HMAC(key, nonce)
//   worker -> coordinator   kFrameHelloAck (or kFrameError, loudly)
//
// A Hello without the auth bit against a keyed worker is refused with an
// error frame immediately - never a silent hang - and a wrong response is
// refused the same way.  The registry runs the identical exchange for its
// sessions, and additionally *signs* the lease tokens it grants
// (lease_sig, an HMAC-SHA256 truncated to 64 bits over the token), so a
// worker can verify that a coordinator's lease really came from the
// registry without talking to it.
//
// SHA-256 is implemented here (FIPS 180-4, ~60 lines) because the
// container must not grow a crypto dependency; it is used only for
// authentication MACs, never on a per-cell hot path.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace rbx {
namespace fleet {

// FIPS 180-4 SHA-256 of `size` bytes at `data`.
std::array<std::uint8_t, 32> sha256(const void* data, std::size_t size);

// RFC 2104 HMAC-SHA256; key and message are arbitrary byte strings.
std::array<std::uint8_t, 32> hmac_sha256(const std::string& key,
                                         const std::string& message);

// The challenge/response MAC as raw bytes (what kFrameAuthResponse
// carries): HMAC(key, challenge).
std::string auth_mac(const std::string& key, const std::string& challenge);

// Constant-time equality so a response check cannot leak a prefix match
// through timing.  False for mismatched lengths.
bool mac_equal(const std::string& a, const std::string& b);

// Lease signature: the first 8 bytes (little-endian) of
// HMAC(key, "rbx-fleet-lease" || token_le) - small enough to ride in the
// Hello flags extension, strong enough that a coordinator cannot forge a
// grant it never received.  0 when key is empty (open fleet).
std::uint64_t lease_sig(const std::string& key, std::uint64_t token);

// Loads a pre-shared key file: the whole file with one trailing newline
// (if any) stripped.  Throws std::runtime_error on an unreadable or empty
// file - an empty key would silently authenticate everyone.
std::string load_auth_key(const std::string& path);

// A fresh random challenge nonce (16 bytes from std::random_device).
std::string make_challenge();

}  // namespace fleet
}  // namespace rbx
