// Fleet membership frames: the registry conversation.
//
// A registry session opens with the same versioned Hello/HelloAck
// handshake a sweep session does (fingerprint and total_cells are 0 -
// there is no grid yet), then speaks these frames:
//
//   daemon      -> registry   kFrameFleetJoin       advertise host:port
//   daemon      -> registry   kFrameFleetHeartbeat  still alive (periodic)
//   daemon      -> registry   kFrameFleetLeave      orderly departure
//   registry    -> daemon     kFrameFleetOk         ack (join/heartbeat)
//   coordinator -> registry   kFrameFleetResolve    request the live set
//   registry    -> coordinator kFrameFleetGrant     leased members
//
// Membership is soft state in the style of a failure detector: a daemon
// that stops heartbeating is evicted after `evict_after_ms` and a Resolve
// never returns it - a dead daemon disappears from the pool without
// operator action.  A Grant carries one signed lease per member
// (token + HMAC signature, fleet/auth.h) so the workers themselves can
// check that a coordinator was really admitted by the registry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/wire.h"

namespace rbx {
namespace fleet {

// Frame type tags (16/17/18 are the Hello handshake in core/lane.h,
// 19/20 the auth challenge/response, 32..35 the recovery journal).
inline constexpr std::uint16_t kFrameFleetJoin = 48;
inline constexpr std::uint16_t kFrameFleetHeartbeat = 49;
inline constexpr std::uint16_t kFrameFleetOk = 50;
inline constexpr std::uint16_t kFrameFleetLeave = 51;
inline constexpr std::uint16_t kFrameFleetResolve = 52;
inline constexpr std::uint16_t kFrameFleetGrant = 53;

// Join / Heartbeat / Leave all carry the daemon's advertised endpoint.
// Weight biases fair scheduling: a daemon advertising weight 2 counts as
// two single-weight daemons when member shares are computed.
struct JoinInfo {
  std::string host;
  std::uint16_t port = 0;
  std::uint32_t weight = 1;

  std::string endpoint() const;

  void encode(wire::Writer& w) const;
  static JoinInfo decode(wire::Reader& r);
};

// Resolve: a coordinator asks for up to `max_workers` members (0 = no
// cap).  coordinator_id distinguishes contending coordinators for the
// fair-share accounting; a re-resolve with the same id supersedes the
// coordinator's previous leases instead of double-counting it.
struct ResolveRequest {
  std::uint64_t coordinator_id = 0;
  std::uint32_t max_workers = 0;

  void encode(wire::Writer& w) const;
  static ResolveRequest decode(wire::Reader& r);
};

// One granted member: where to connect plus the signed lease the worker
// will verify in the Hello handshake.
struct GrantedMember {
  std::string host;
  std::uint16_t port = 0;
  std::uint64_t lease_token = 0;
  std::uint64_t lease_sig = 0;

  std::string endpoint() const;
};

// Grant: the registry's answer to a Resolve.  live_members is the total
// live population (before the fair-share cap) so a coordinator can report
// how contended the fleet is.
struct GrantResponse {
  std::vector<GrantedMember> members;
  std::uint32_t live_members = 0;

  void encode(wire::Writer& w) const;
  static GrantResponse decode(wire::Reader& r);
};

}  // namespace fleet
}  // namespace rbx
