#include "fleet/lane.h"

#include <unistd.h>

#include <cstdio>
#include <utility>

#include "fleet/auth.h"

namespace rbx {
namespace fleet {

struct FleetLane::FleetWorker final : LaneWorker {
  FleetWorker(FleetLane* lane, const GrantedMember& grant)
      : lane_(lane) { set_grant(grant); }

  void set_grant(const GrantedMember& grant) {
    endpoint_.host = grant.host;
    endpoint_.port = grant.port;
    lease_token_ = grant.lease_token;
    lease_sig_ = grant.lease_sig;
  }

  std::string describe() const override {
    return endpoint_.to_string() + " (fleet)";
  }
  FrameChannel* channel() override { return &channel_; }
  bool needs_plan() const override { return true; }
  bool needs_handshake() const override { return true; }
  void retire() override { channel_.close(); }

  void prepare_hello(Hello& hello) const override {
    if (!lane_->options_.auth_key.empty()) {
      hello.flags |= kHelloFlagAuth;
    }
    hello.flags |= kHelloFlagLease;
    hello.lease_token = lease_token_;
    hello.lease_sig = lease_sig_;
  }
  std::string auth_response(const std::string& challenge) const override {
    if (lane_->options_.auth_key.empty()) {
      return {};
    }
    return auth_mac(lane_->options_.auth_key, challenge);
  }

  // Unlike a TcpLane endpoint, a fleet worker is always worth reviving:
  // even if *this* daemon is gone for good, the registry may hand us a
  // different member to take its place.
  bool can_revive() const override { return true; }
  int revive_delay_ms() const override {
    return lane_->options_.readmit_delay_ms;
  }

  Revive revive() override {
    if (!lane_->retarget(this)) {
      return Revive::kFailed;
    }
    bool in_progress = false;
    std::string err;
    net::Socket sock = net::start_connect(endpoint_, &in_progress, &err);
    if (!sock.valid()) {
      return Revive::kFailed;
    }
    channel_ = FrameChannel(sock.release());
    return in_progress ? Revive::kPending : Revive::kReady;
  }

  bool revive_finish() override {
    std::string err;
    if (!net::finish_connect(channel_.fd(), &err) ||
        !net::set_blocking(channel_.fd(), true)) {
      channel_.close();
      return false;
    }
    return true;
  }

  FleetLane* lane_;
  net::Endpoint endpoint_;
  std::uint64_t lease_token_ = 0;
  std::uint64_t lease_sig_ = 0;
  FrameChannel channel_;
};

FleetLane::FleetLane(FleetLaneOptions options)
    : options_(std::move(options)),
      client_(RegistryClientOptions{options_.registry, options_.auth_key,
                                    options_.connect_retries,
                                    options_.quiet}) {
  coordinator_id_ = options_.coordinator_id != 0
                        ? options_.coordinator_id
                        : static_cast<std::uint64_t>(::getpid());
}

FleetLane::~FleetLane() = default;

std::size_t FleetLane::live() const {
  std::size_t n = 0;
  for (const auto& worker : workers_) {
    if (worker->channel_.open()) {
      ++n;
    }
  }
  return n;
}

void FleetLane::start(std::size_t cell_count, const CellFn& cell_fn,
                      std::size_t eval_threads,
                      std::vector<LaneWorker*>* out) {
  (void)cell_count;
  (void)cell_fn;  // fleet daemons evaluate plans, never local closures
  (void)eval_threads;  // each daemon owns its budget (--eval-threads)
  if (!resolved_) {
    resolved_ = true;
    GrantResponse grant;
    try {
      ResolveRequest req;
      req.coordinator_id = coordinator_id_;
      req.max_workers = options_.max_workers;
      grant = client_.resolve(req);
    } catch (const net::Error& e) {
      // A --fleet-only run must fail loudly; a hybrid run degrades to its
      // local lanes (the registry stays out of reach for this process).
      if (options_.required) {
        throw;
      }
      if (!options_.quiet) {
        std::fprintf(stderr, "fleet: %s (continuing without the fleet)\n",
                     e.what());
      }
      return;
    }
    if (!options_.quiet) {
      std::fprintf(stderr,
                   "fleet: registry %s granted %zu of %u live member(s)\n",
                   options_.registry.to_string().c_str(),
                   grant.members.size(),
                   static_cast<unsigned>(grant.live_members));
    }
    if (grant.members.empty() && options_.required) {
      throw net::Error("fleet: registry " +
                       options_.registry.to_string() +
                       " has no live members to grant (no daemon joined, "
                       "or all heartbeats expired)");
    }
    for (const GrantedMember& member : grant.members) {
      auto worker = std::make_unique<FleetWorker>(this, member);
      try {
        net::Socket sock =
            net::connect_to(worker->endpoint_, options_.connect_retries);
        worker->channel_ = FrameChannel(sock.release());
      } catch (const net::Error& e) {
        if (!options_.quiet) {
          std::fprintf(stderr,
                       "fleet: %s (leaving this member to the backfill "
                       "timer)\n",
                       e.what());
        }
      }
      workers_.push_back(std::move(worker));
    }
    if (live() == 0 && options_.required) {
      throw net::Error("fleet: none of the " +
                       std::to_string(workers_.size()) +
                       " granted members are reachable");
    }
  }
  for (const auto& worker : workers_) {
    out->push_back(worker.get());
  }
}

void FleetLane::finish() {
  // Persistent lane: connections and leases survive into the next sweep.
}

bool FleetLane::retarget(FleetWorker* worker) {
  // Ask the registry for the pool as it stands *now* - eviction has
  // already removed anything heartbeat-expired, and a member that joined
  // after the sweep started is in the grant like any other.
  GrantResponse grant;
  try {
    ResolveRequest req;
    req.coordinator_id = coordinator_id_;
    req.max_workers = options_.max_workers;
    grant = client_.resolve(req);
  } catch (const net::Error& e) {
    if (!options_.quiet) {
      std::fprintf(stderr, "fleet: re-resolve failed (%s); will retry\n",
                   e.what());
    }
    return false;
  }
  const auto in_use = [&](const std::string& host, std::uint16_t port) {
    for (const auto& other : workers_) {
      if (other.get() == worker) {
        continue;
      }
      if (other->channel_.open() && other->endpoint_.host == host &&
          other->endpoint_.port == port) {
        return true;
      }
    }
    return false;
  };
  // Prefer a member this sweep is not already using and that is not the
  // endpoint we just lost (a fresh joiner backfilling the loss); fall
  // back to the lost endpoint itself if the registry still vouches for
  // it - the daemon may simply have restarted.
  const GrantedMember* fresh = nullptr;
  const GrantedMember* same = nullptr;
  for (const GrantedMember& member : grant.members) {
    if (in_use(member.host, member.port)) {
      continue;
    }
    const bool is_old = member.host == worker->endpoint_.host &&
                        member.port == worker->endpoint_.port;
    if (is_old) {
      same = &member;
    } else if (fresh == nullptr) {
      fresh = &member;
    }
  }
  const GrantedMember* pick = fresh != nullptr ? fresh : same;
  if (pick == nullptr) {
    return false;
  }
  if (fresh != nullptr) {
    ++backfills_;
    if (!options_.quiet) {
      std::fprintf(stderr,
                   "fleet: backfilling lost worker %s with registry member "
                   "%s\n",
                   worker->endpoint_.to_string().c_str(),
                   pick->endpoint().c_str());
    }
  }
  worker->set_grant(*pick);
  return true;
}

}  // namespace fleet
}  // namespace rbx
