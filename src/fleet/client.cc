#include "fleet/client.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "fleet/auth.h"

namespace rbx {
namespace fleet {

// --- RegistryClient --------------------------------------------------------

RegistryClient::RegistryClient(RegistryClientOptions options)
    : options_(std::move(options)) {}

RegistryClient::~RegistryClient() { close(); }

void RegistryClient::close() { conn_.reset(); }

void RegistryClient::connect() {
  if (connected()) {
    return;
  }
  conn_.reset();
  net::Socket sock =
      net::connect_to(options_.registry, options_.connect_retries);
  auto conn = std::make_unique<net::FrameConn>(std::move(sock));

  Hello hello;  // fingerprint/total_cells stay 0: no grid, just membership
  if (!options_.auth_key.empty()) {
    hello.flags |= kHelloFlagAuth;
  }
  wire::Writer w;
  hello.encode(w);
  if (!conn->send(kFrameHello, w.data())) {
    throw net::Error("fleet: registry " + options_.registry.to_string() +
                     " hung up during the handshake");
  }
  for (;;) {
    wire::Frame frame;
    if (!conn->recv(&frame)) {
      throw net::Error("fleet: registry " + options_.registry.to_string() +
                       " closed the connection before acking the handshake");
    }
    if (frame.type == kFrameError) {
      wire::Reader r(frame.payload);
      throw net::Error("fleet: registry refused the handshake: " + r.str());
    }
    if (frame.type == kFrameAuthChallenge) {
      wire::Reader r(frame.payload);
      const std::string challenge = r.str();
      r.expect_done();
      wire::Writer cw;
      cw.str(auth_mac(options_.auth_key, challenge));
      if (!conn->send(kFrameAuthResponse, cw.data())) {
        throw net::Error("fleet: registry hung up during authentication");
      }
      continue;
    }
    if (frame.type == kFrameHelloAck) {
      break;
    }
    throw net::Error("fleet: registry sent unexpected frame type " +
                     std::to_string(frame.type) + " during the handshake");
  }
  conn_ = std::move(conn);
}

wire::Frame RegistryClient::roundtrip(std::uint16_t type,
                                      const std::vector<std::byte>& payload,
                                      std::uint16_t expect) {
  connect();
  if (!conn_->send(type, payload)) {
    conn_.reset();
    throw net::Error("fleet: lost the registry connection mid-request");
  }
  wire::Frame frame;
  bool got = false;
  try {
    got = conn_->recv(&frame);
  } catch (const wire::Error& e) {
    conn_.reset();
    throw net::Error(std::string("fleet: corrupt registry reply: ") +
                     e.what());
  }
  if (!got) {
    conn_.reset();
    throw net::Error("fleet: registry closed the connection mid-request");
  }
  if (frame.type == kFrameError) {
    conn_.reset();
    wire::Reader r(frame.payload);
    throw net::Error("fleet: registry refused the request: " + r.str());
  }
  if (frame.type != expect) {
    conn_.reset();
    throw net::Error("fleet: registry answered with unexpected frame type " +
                     std::to_string(frame.type));
  }
  return frame;
}

void RegistryClient::join(const JoinInfo& info) {
  wire::Writer w;
  info.encode(w);
  roundtrip(kFrameFleetJoin, w.data(), kFrameFleetOk);
}

void RegistryClient::heartbeat(const JoinInfo& info) {
  wire::Writer w;
  info.encode(w);
  roundtrip(kFrameFleetHeartbeat, w.data(), kFrameFleetOk);
}

void RegistryClient::leave(const JoinInfo& info) {
  wire::Writer w;
  info.encode(w);
  roundtrip(kFrameFleetLeave, w.data(), kFrameFleetOk);
}

GrantResponse RegistryClient::resolve(const ResolveRequest& req) {
  wire::Writer w;
  req.encode(w);
  const wire::Frame frame =
      roundtrip(kFrameFleetResolve, w.data(), kFrameFleetGrant);
  wire::Reader r(frame.payload);
  GrantResponse resp = GrantResponse::decode(r);
  r.expect_done();
  return resp;
}

// --- FleetMembership -------------------------------------------------------

FleetMembership::FleetMembership(MembershipOptions options)
    : options_(options),
      client_(RegistryClientOptions{options.registry, options.auth_key,
                                    /*connect_retries=*/10, options.quiet}) {}

FleetMembership::~FleetMembership() { stop(); }

void FleetMembership::start() {
  client_.join(options_.self);
  if (!options_.quiet) {
    std::fprintf(stderr,
                 "sweep_workerd: joined fleet registry %s as %s "
                 "(heartbeat every %d ms)\n",
                 options_.registry.to_string().c_str(),
                 options_.self.endpoint().c_str(), options_.heartbeat_ms);
  }
  started_ = true;
  stopping_.store(false);
  thread_ = std::thread([this]() { heartbeat_loop(); });
}

void FleetMembership::heartbeat_loop() {
  // Sleep in short slices so stop() never waits a full heartbeat; a lost
  // registry turns the next heartbeat into a reconnect + re-join (the
  // Join/Heartbeat transition is the same register-or-refresh).
  const auto slice = std::chrono::milliseconds(50);
  auto remaining = std::chrono::milliseconds(options_.heartbeat_ms);
  while (!stopping_.load()) {
    if (remaining.count() > 0) {
      std::this_thread::sleep_for(std::min(slice, remaining));
      remaining -= slice;
      continue;
    }
    remaining = std::chrono::milliseconds(options_.heartbeat_ms);
    try {
      client_.heartbeat(options_.self);
    } catch (const net::Error& e) {
      if (!options_.quiet) {
        std::fprintf(stderr,
                     "sweep_workerd: fleet heartbeat failed (%s); will "
                     "retry\n",
                     e.what());
      }
      client_.close();
    }
  }
}

void FleetMembership::stop() {
  if (!started_) {
    return;
  }
  abandon();
  try {
    client_.leave(options_.self);
  } catch (const net::Error&) {
    // The registry is gone; our entry ages out via the eviction timer.
  }
  client_.close();
}

void FleetMembership::abandon() {
  if (!started_) {
    return;
  }
  started_ = false;
  stopping_.store(true);
  if (thread_.joinable()) {
    thread_.join();
  }
}

}  // namespace fleet
}  // namespace rbx
