// Client sides of the fleet registry conversation.
//
// RegistryClient is the blocking request/reply client both roles share:
// it opens a framed connection, runs the versioned Hello handshake
// (answering the HMAC challenge when a key is set), and then speaks
// Join/Heartbeat/Leave/Resolve.  Refusals arrive as kFrameError frames
// and are rethrown as net::Error with the registry's message - a
// mis-keyed peer fails loudly and immediately, never hangs.
//
// FleetMembership is what a sweep_workerd daemon runs alongside its
// serve() loop: join the registry at startup, heartbeat on a timer from
// a background thread, leave on orderly shutdown.  A lost registry is
// retried on the heartbeat cadence (re-join on reconnect), so a
// restarted registry re-learns the fleet within one heartbeat interval
// without any daemon restarts.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "fleet/proto.h"
#include "net/frame.h"
#include "net/socket.h"

namespace rbx {
namespace fleet {

struct RegistryClientOptions {
  net::Endpoint registry;
  std::string auth_key;     // empty = unauthenticated
  int connect_retries = 10;  // 200 ms apart, riding out a starting registry
  bool quiet = true;
};

class RegistryClient {
 public:
  explicit RegistryClient(RegistryClientOptions options);
  ~RegistryClient();

  // Connects and handshakes; throws net::Error on an unreachable registry
  // or a refused handshake (wrong key, version skew).  Reconnecting an
  // already-connected client is a no-op.
  void connect();
  bool connected() const { return conn_ != nullptr && conn_->open(); }
  void close();

  // Membership verbs; each connects on demand and throws net::Error on
  // refusal or a lost registry.
  void join(const JoinInfo& info);
  void heartbeat(const JoinInfo& info);
  void leave(const JoinInfo& info);
  GrantResponse resolve(const ResolveRequest& req);

 private:
  // One request/reply exchange; drops the connection on any error so the
  // next verb reconnects cleanly.
  wire::Frame roundtrip(std::uint16_t type,
                        const std::vector<std::byte>& payload,
                        std::uint16_t expect);

  RegistryClientOptions options_;
  std::unique_ptr<net::FrameConn> conn_;
};

struct MembershipOptions {
  net::Endpoint registry;
  JoinInfo self;            // the endpoint this daemon advertises
  std::string auth_key;
  int heartbeat_ms = 2000;  // must be well under the registry's
                            // evict_after_ms or the daemon flaps
  bool quiet = false;
};

// The daemon's registry presence: join now, heartbeat forever, leave on
// stop().  Heartbeats run on their own thread so the serve() loop never
// blocks on registry I/O.
class FleetMembership {
 public:
  explicit FleetMembership(MembershipOptions options);
  ~FleetMembership();

  // Joins the registry (throws net::Error if it is unreachable or
  // refuses - a daemon that cannot join should fail loudly at startup,
  // not serve invisibly) and starts the heartbeat thread.
  void start();

  // Best-effort Leave, then stops the heartbeat thread.  Idempotent.
  void stop();

  // Stops heartbeating WITHOUT leaving - crash semantics: the daemon's
  // entry lingers in the registry until its heartbeats expire, exactly as
  // if the process had been SIGKILLed.  The fail-after test hook uses
  // this so a simulated kill exercises the same eviction path a real one
  // does.
  void abandon();

 private:
  void heartbeat_loop();

  MembershipOptions options_;
  RegistryClient client_;
  std::thread thread_;
  std::atomic<bool> stopping_{false};
  bool started_ = false;
};

}  // namespace fleet
}  // namespace rbx
