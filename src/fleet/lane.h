// FleetLane: the --fleet=host:port lane of the dispatch layer.
//
// Where TcpLane is told its daemons on the command line, FleetLane asks
// the registry: at sweep start it resolves the live member set (a
// fair-share grant when other coordinators contend) and raises one
// worker per granted member - each carrying its signed lease into the
// Hello handshake, each speaking the same framed protocol as a --connect
// worker, so the sweep's bytes are identical either way.
//
// The lane generalizes DispatchCore's re-admission seam from "the same
// endpoint reconnects" to "any registry member backfills the loss": when
// a worker dies mid-sweep, its revive() re-resolves the pool and prefers
// a granted member this sweep is not already using - a daemon that
// joined the registry *after* the sweep started is a perfectly good
// replacement.  Only if no fresh member exists does it retry its old
// endpoint (the daemon may simply have restarted).  Heartbeat-expired
// members are evicted registry-side before every grant, so a dead daemon
// is never handed out.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/lane.h"
#include "fleet/client.h"
#include "fleet/proto.h"
#include "net/socket.h"

namespace rbx {
namespace fleet {

struct FleetLaneOptions {
  net::Endpoint registry;
  std::string auth_key;          // pre-shared key (daemons + registry)
  std::uint64_t coordinator_id = 0;  // 0 = derived from the pid; tests pin
                                     // it to make fair-share grants exact
  std::uint32_t max_workers = 0;     // cap on granted members; 0 = share
  int connect_retries = 10;
  bool quiet = false;
  // Whether an empty grant at sweep start is fatal (a --fleet-only run
  // must fail loudly) or survivable (hybrid runs fall back to local
  // lanes).
  bool required = true;
  // Base backoff before a lost worker hunts for a replacement; doubled
  // per consecutive failure by the dispatch loop.
  int readmit_delay_ms = 500;
};

class FleetLane final : public Lane {
 public:
  explicit FleetLane(FleetLaneOptions options);
  ~FleetLane() override;

  std::string name() const override { return "fleet"; }

  // Workers with an open connection right now.
  std::size_t live() const;
  // Mid-sweep losses replaced by a *different* registry member (the
  // fresh-joiner backfill path; same-endpoint re-admissions count in
  // DispatchCore's readmitted counters instead).
  std::size_t backfills() const { return backfills_; }

  // First call: resolves the member grant from the registry (throws
  // net::Error if the registry is unreachable, refuses the key, or - with
  // options.required - grants nothing) and connects every member.  Later
  // calls reuse the persistent connections.
  void start(std::size_t cell_count, const CellFn& cell_fn,
             std::size_t eval_threads,
             std::vector<LaneWorker*>* out) override;
  void finish() override;  // keeps connections (persistent lane)

 private:
  struct FleetWorker;

  // Re-resolves the pool for a lost worker and retargets it: a granted
  // member no other worker of this lane is using, preferring one that is
  // not the lost endpoint.  False = nothing suitable right now (retry on
  // the next revive tick).
  bool retarget(FleetWorker* worker);

  FleetLaneOptions options_;
  RegistryClient client_;
  std::uint64_t coordinator_id_ = 0;
  bool resolved_ = false;
  std::size_t backfills_ = 0;
  std::vector<std::unique_ptr<FleetWorker>> workers_;
};

}  // namespace fleet
}  // namespace rbx
