#include "recov/resume.h"

#include <string>

namespace rbx {
namespace recov {

ResumePlan plan_resume(const SweepState& state, std::size_t total_cells,
                       std::uint64_t fingerprint) {
  if (state.fingerprint != fingerprint) {
    throw wire::Error(
        "the journal was written by a different sweep (grid "
        "fingerprint mismatch - different --samples/--seed/--nmax, or a "
        "different bench; journal options were '" +
        state.options + "')");
  }
  if (state.total_cells != total_cells) {
    throw wire::Error("the journal's sweep has " +
                      std::to_string(state.total_cells) +
                      " cells, this sweep has " +
                      std::to_string(total_cells));
  }
  ResumePlan plan;
  plan.committed.assign(total_cells, 0);
  plan.results.assign(total_cells, ResultSet());
  for (const auto& [cell, result] : state.committed) {
    plan.committed[cell] = 1;
    plan.results[cell] = result;
  }
  plan.lost.reserve(total_cells - state.committed.size());
  for (std::size_t i = 0; i < total_cells; ++i) {
    if (plan.committed[i] == 0) {
      plan.lost.push_back(i);
    }
  }
  return plan;
}

}  // namespace recov
}  // namespace rbx
