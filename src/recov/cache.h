// ResultCache: a worker-side, disk-backed cache of evaluated cells.
//
// A sweep cell is a pure function of its wire form: the Scenario carries
// every knob including the per-cell seed, and the EvalPlan names the
// backends and merge prefixes - so (scenario bytes, plan bytes) uniquely
// determines the ResultSet, bit for bit.  The cache exploits that:
// sweep_workerd (--cache-dir=DIR) remembers every cell it evaluates, and
// a repeated or overlapping sweep - same grid re-run after a crash, the
// same cells inside a larger grid, another coordinator sweeping the same
// figure - is answered from the cache without re-evaluating anything.
// Because a hit returns the exact bytes an evaluation would produce, a
// cached sweep is bitwise identical to a fresh one; only the wall-clock
// changes.  Coordinators that want fresh evaluation anyway (--no-cache)
// set a Hello flag and the daemon bypasses lookups for that session.
//
// Keying: entries hash by FNV-1a over (scenario encoding || plan
// encoding) - finer than (grid fingerprint, cell index), so overlapping
// grids hit on their shared cells - and a lookup confirms the full
// encodings, so a 64-bit hash collision degrades to a miss, never to a
// wrong result.
//
// Persistence reuses the journal record format (recov/journal.h): the
// cache file is a sequence of CRC'd kRecordCacheEntry records, appended
// as cells are evaluated and replayed through the same
// torn-tail-tolerant analysis scan on startup - killing a daemon
// mid-append costs at most the torn record.
//
// Thread-safe: sweep_workerd serves sessions concurrently, so lookup and
// insert take an internal mutex (the disk append happens under it too,
// keeping records whole).
//
// Compaction: the file is append-only while the daemon runs, so it only
// ever grows - including duplicate records from crash overlap and entries
// nobody will ask for again.  Options::max_bytes (sweep_workerd
// --cache-max-bytes=N) bounds it: at startup, when the surviving records
// exceed the cap, the *oldest* entries are dropped until the newest fit
// and the file is atomically rewritten with exactly the retained records
// (which also sheds duplicates and the torn tail).  Retained entries
// still hit afterwards - pinned by tests/recov/cache_compaction_test.cc.
// Runtime appends are not re-checked against the cap; the bound is
// enforced at every daemon start, which is when the file is reread
// anyway.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/backend.h"
#include "core/result.h"
#include "core/scenario.h"

namespace rbx {
namespace recov {

// FNV-1a over the cell's full wire form (scenario + plan).
std::uint64_t cell_key(const Scenario& scenario, const EvalPlan& plan);

class ResultCache {
 public:
  struct Options {
    std::size_t sync_every = 32;  // entries per fsync batch
    // Startup size cap in bytes (0 = unlimited): when the cache file's
    // surviving records exceed this, oldest entries are dropped and the
    // file is compacted before appending resumes.
    std::size_t max_bytes = 0;
  };

  // Loads DIR/cache.rbxj (tolerating a torn tail) and opens it for
  // appending.  Throws wire::Error when the directory does not exist or
  // the file cannot be opened/scanned.
  explicit ResultCache(const std::string& dir) : ResultCache(dir, Options()) {}
  ResultCache(const std::string& dir, Options options);
  ~ResultCache();

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  // True (and *out filled) when the exact cell is cached.
  bool lookup(const Scenario& scenario, const EvalPlan& plan,
              ResultSet* out);

  // Remembers an evaluation, appending it to the cache file.  A cell
  // already present is ignored (the evaluations are bitwise identical).
  void insert(const Scenario& scenario, const EvalPlan& plan,
              const ResultSet& result);

  std::size_t entries() const;
  std::size_t hits() const;
  std::size_t misses() const;

  const std::string& path() const { return path_; }

 private:
  struct Entry {
    std::vector<std::byte> scenario_bytes;
    std::vector<std::byte> plan_bytes;
    ResultSet result;
  };

  bool find_locked(std::uint64_t key,
                   const std::vector<std::byte>& scenario_bytes,
                   const std::vector<std::byte>& plan_bytes,
                   const Entry** out) const;
  void append_locked(std::uint64_t key, const Entry& entry);

  std::string path_;
  Options options_;
  int fd_ = -1;
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::vector<Entry>> map_;
  std::size_t count_ = 0;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
  std::size_t unsynced_ = 0;
};

}  // namespace recov
}  // namespace rbx
