// Resume planning: turn a recovered journal into "done" and "lost" cells.
//
// Given the SweepState the analysis pass (recov/journal.h) recovered for
// one sweep, plan_resume() partitions the grid: committed cells carry
// their journaled ResultSets (the winners), everything else is a loser to
// re-evaluate.  The plan feeds DispatchCore's pre-committed seam
// (core/dispatch.h): the scheduler seeds its committed mask and result
// vector from the plan and enqueues only the losers, so a resumed run
// evaluates exactly the uncommitted cells yet merges into a result vector
// bitwise identical to an uninterrupted run - per-cell seeds make a
// journaled result and a fresh evaluation of the same cell the same
// bytes, so where a cell's result came from cannot show in a table.
//
// Safety: a journal only ever resumes the grid that wrote it.  The
// caller passes the *current* invocation's cell count and fingerprint;
// a mismatch (different --samples/--seed/--nmax, or a different bench)
// throws instead of mixing two experiments into silently wrong tables -
// SweepRunner turns that into the exit-2 refusal the flag matrix
// promises.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/result.h"
#include "recov/journal.h"

namespace rbx {
namespace recov {

struct ResumePlan {
  // committed[i] != 0  =>  results[i] holds cell i's journaled result.
  std::vector<std::uint8_t> committed;
  std::vector<ResultSet> results;
  // Cell indices still to evaluate, ascending.
  std::vector<std::size_t> lost;

  std::size_t committed_cells() const {
    return committed.size() - lost.size();
  }
  bool complete() const { return lost.empty(); }
};

// Builds the done/lost partition for a sweep of `total_cells` cells with
// grid fingerprint `fingerprint` from the recovered state.  Throws
// wire::Error when the journal belongs to a different grid (fingerprint
// or cell-count mismatch).
ResumePlan plan_resume(const SweepState& state, std::size_t total_cells,
                       std::uint64_t fingerprint);

}  // namespace recov
}  // namespace rbx
