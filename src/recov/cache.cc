#include "recov/cache.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "recov/journal.h"
#include "support/io.h"

namespace rbx {
namespace recov {

namespace {

std::vector<std::byte> encode_scenario(const Scenario& scenario) {
  wire::Writer w;
  scenario.encode(w);
  return w.data();
}

std::vector<std::byte> encode_plan(const EvalPlan& plan) {
  wire::Writer w;
  plan.encode(w);
  return w.data();
}

std::uint64_t fnv1a(std::uint64_t h, const std::vector<std::byte>& data) {
  for (std::byte b : data) {
    h ^= static_cast<std::uint8_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// A length-prefixed blob (the wire format has str() for strings; blobs
// reuse the same u32-length framing for raw bytes).
void put_blob(wire::Writer& w, const std::vector<std::byte>& data) {
  w.u32(static_cast<std::uint32_t>(data.size()));
  w.bytes(data.data(), data.size());
}

std::vector<std::byte> get_blob(wire::Reader& r) {
  const std::uint32_t size = r.u32();
  std::vector<std::byte> out;
  out.reserve(size);
  for (std::uint32_t i = 0; i < size; ++i) {
    out.push_back(static_cast<std::byte>(r.u8()));
  }
  return out;
}

// On-disk size of one sealed record: frame header + payload + CRC trailer
// (seal_record's layout).
std::size_t record_size(const std::vector<std::byte>& payload) {
  return wire::kFrameHeaderSize + payload.size() + 4;
}

}  // namespace

std::uint64_t cell_key(const Scenario& scenario, const EvalPlan& plan) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(h, encode_scenario(scenario));
  h = fnv1a(h, encode_plan(plan));
  return h;
}

ResultCache::ResultCache(const std::string& dir, Options options)
    : path_(dir + "/cache.rbxj"), options_(options) {
  // Replay whatever a previous daemon left behind; a missing file is a
  // fresh cache, a torn tail is the record a kill interrupted.
  std::vector<std::byte> data;
  try {
    data = read_file_bytes(path_, "cache");
  } catch (const wire::Error&) {
    // Distinguish "no cache yet" from "unusable directory" below, when
    // the append open fails too.
  }
  const RecordScan scan = scan_records(data.data(), data.size());
  // Unique record payloads in append order (oldest first): the map
  // answers lookups; `unique` preserves the age order compaction drops
  // from.
  std::vector<const std::vector<std::byte>*> unique;
  for (const wire::Frame& frame : scan.records) {
    if (frame.type != kRecordCacheEntry) {
      throw wire::Error("cache: unexpected record type " +
                        std::to_string(frame.type) + " in '" + path_ +
                        "' (not a result cache?)");
    }
    wire::Reader r(frame.payload);
    const std::uint64_t key = r.u64();
    Entry entry;
    entry.scenario_bytes = get_blob(r);
    entry.plan_bytes = get_blob(r);
    entry.result = ResultSet::decode(r);
    r.expect_done();
    const Entry* existing = nullptr;
    if (!find_locked(key, entry.scenario_bytes, entry.plan_bytes,
                     &existing)) {
      unique.push_back(&frame.payload);
      map_[key].push_back(std::move(entry));
      ++count_;
    }
  }

  // Size cap: when the file outgrew max_bytes (duplicates, torn bytes, or
  // simply too many entries), drop the oldest unique entries until the
  // rest fit and rewrite the file with exactly the retained records.
  bool rewritten = false;
  if (options_.max_bytes > 0 && data.size() > options_.max_bytes) {
    std::size_t retained_bytes = 0;
    for (const std::vector<std::byte>* payload : unique) {
      retained_bytes += record_size(*payload);
    }
    std::size_t first = 0;
    while (retained_bytes > options_.max_bytes && first < unique.size()) {
      retained_bytes -= record_size(*unique[first]);
      ++first;
    }
    for (std::size_t i = 0; i < first; ++i) {
      // Evict the dropped entry from the map (key + encodings identify it;
      // the ResultSet does not need re-decoding).
      wire::Reader r(*unique[i]);
      const std::uint64_t key = r.u64();
      const std::vector<std::byte> scenario_bytes = get_blob(r);
      const std::vector<std::byte> plan_bytes = get_blob(r);
      auto it = map_.find(key);
      for (auto e = it->second.begin(); e != it->second.end(); ++e) {
        if (e->scenario_bytes == scenario_bytes &&
            e->plan_bytes == plan_bytes) {
          it->second.erase(e);
          break;
        }
      }
      if (it->second.empty()) {
        map_.erase(it);
      }
      --count_;
    }
    std::vector<std::byte> compacted;
    compacted.reserve(retained_bytes);
    for (std::size_t i = first; i < unique.size(); ++i) {
      const std::vector<std::byte> record =
          seal_record(kRecordCacheEntry, *unique[i]);
      compacted.insert(compacted.end(), record.begin(), record.end());
    }
    wire::write_file_atomic(path_, compacted);
    rewritten = true;
  }

  do {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  } while (fd_ < 0 && errno == EINTR);
  if (fd_ < 0) {
    throw wire::Error("cache: cannot open '" + path_ + "' for appending: " +
                      std::strerror(errno) +
                      " (does the --cache-dir directory exist?)");
  }
  if (scan.torn_tail && !rewritten) {
    // Physically drop the record the kill tore: O_APPEND writes at the end
    // of the file, and a record appended after torn bytes would be
    // unreachable (the next load's scan stops at the tear).
    if (::ftruncate(fd_, static_cast<off_t>(scan.valid_bytes)) != 0) {
      throw wire::Error("cache: cannot drop the torn tail of '" + path_ +
                        "': " + std::strerror(errno));
    }
  }
}

ResultCache::~ResultCache() {
  if (fd_ >= 0) {
    if (unsynced_ > 0) {
      ::fsync(fd_);
    }
    ::close(fd_);
  }
}

bool ResultCache::find_locked(std::uint64_t key,
                              const std::vector<std::byte>& scenario_bytes,
                              const std::vector<std::byte>& plan_bytes,
                              const Entry** out) const {
  const auto it = map_.find(key);
  if (it == map_.end()) {
    return false;
  }
  for (const Entry& entry : it->second) {
    // Confirm the full encodings: a 64-bit hash collision must degrade to
    // a miss, never to a wrong result.
    if (entry.scenario_bytes == scenario_bytes &&
        entry.plan_bytes == plan_bytes) {
      *out = &entry;
      return true;
    }
  }
  return false;
}

bool ResultCache::lookup(const Scenario& scenario, const EvalPlan& plan,
                         ResultSet* out) {
  const std::vector<std::byte> scenario_bytes = encode_scenario(scenario);
  const std::vector<std::byte> plan_bytes = encode_plan(plan);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(fnv1a(h, scenario_bytes), plan_bytes);

  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = nullptr;
  if (find_locked(h, scenario_bytes, plan_bytes, &entry)) {
    *out = entry->result;
    ++hits_;
    return true;
  }
  ++misses_;
  return false;
}

void ResultCache::append_locked(std::uint64_t key, const Entry& entry) {
  wire::Writer w;
  w.u64(key);
  put_blob(w, entry.scenario_bytes);
  put_blob(w, entry.plan_bytes);
  entry.result.encode(w);
  const std::vector<std::byte> record =
      seal_record(kRecordCacheEntry, w.data());
  if (!io::write_all(fd_, record)) {
    throw wire::Error("cache: append to '" + path_ + "' failed");
  }
  if (++unsynced_ >= options_.sync_every) {
    ::fsync(fd_);
    unsynced_ = 0;
  }
}

void ResultCache::insert(const Scenario& scenario, const EvalPlan& plan,
                         const ResultSet& result) {
  Entry entry;
  entry.scenario_bytes = encode_scenario(scenario);
  entry.plan_bytes = encode_plan(plan);
  entry.result = result;
  std::uint64_t h = 0xcbf29ce484222325ULL;
  h = fnv1a(fnv1a(h, entry.scenario_bytes), entry.plan_bytes);

  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* existing = nullptr;
  if (find_locked(h, entry.scenario_bytes, entry.plan_bytes, &existing)) {
    return;  // already cached; the evaluations are bitwise identical
  }
  append_locked(h, entry);
  map_[h].push_back(std::move(entry));
  ++count_;
}

std::size_t ResultCache::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

std::size_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::size_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

}  // namespace recov
}  // namespace rbx
