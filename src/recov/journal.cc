#include "recov/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "support/io.h"

namespace rbx {
namespace recov {

namespace {

// Reflected CRC-32 table for polynomial 0xEDB88320, built once.
struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

std::uint32_t read_crc_le(const std::byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size) {
  static const Crc32Table table;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = table.entries[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::byte> seal_record(std::uint16_t type,
                                   const std::vector<std::byte>& payload) {
  std::vector<std::byte> record = wire::seal_frame(type, payload);
  const std::uint32_t crc = crc32(record.data(), record.size());
  record.push_back(static_cast<std::byte>(crc & 0xFFu));
  record.push_back(static_cast<std::byte>((crc >> 8) & 0xFFu));
  record.push_back(static_cast<std::byte>((crc >> 16) & 0xFFu));
  record.push_back(static_cast<std::byte>((crc >> 24) & 0xFFu));
  return record;
}

bool SweepState::has_cell(std::size_t index) const {
  for (const auto& [cell, result] : committed) {
    if (cell == index) {
      return true;
    }
  }
  return false;
}

std::size_t JournalAnalysis::committed_cells() const {
  std::size_t total = 0;
  for (const SweepState& sweep : sweeps) {
    total += sweep.committed.size();
  }
  return total;
}

RecordScan scan_records(const std::byte* data, std::size_t size) {
  RecordScan scan;
  std::size_t pos = 0;
  while (pos < size) {
    wire::Frame frame;
    std::size_t consumed = 0;
    bool parsed = false;
    try {
      parsed = wire::parse_frame(data + pos, size - pos, &frame, &consumed);
    } catch (const wire::Error&) {
      break;  // bad magic/version/length: a torn or foreign tail
    }
    if (!parsed || size - pos - consumed < 4) {
      break;  // truncated mid-record
    }
    const std::uint32_t want = read_crc_le(data + pos + consumed);
    if (crc32(data + pos, consumed) != want) {
      break;  // torn write or bit rot inside the record
    }
    scan.records.push_back(std::move(frame));
    pos += consumed + 4;
    scan.valid_bytes = pos;
  }
  scan.torn_tail = scan.valid_bytes < size;
  return scan;
}

std::vector<std::byte> read_file_bytes(const std::string& path,
                                       const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw wire::Error(std::string(what) + ": cannot open '" + path +
                      "' for reading");
  }
  std::vector<std::byte> data;
  std::byte chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.insert(data.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw wire::Error(std::string(what) + ": read error on '" + path + "'");
  }
  return data;
}

JournalAnalysis analyze_journal_bytes(const std::byte* data,
                                      std::size_t size) {
  JournalAnalysis analysis;
  const RecordScan scan = scan_records(data, size);
  analysis.valid_bytes = scan.valid_bytes;
  analysis.dropped_bytes = size - scan.valid_bytes;
  analysis.torn_tail = scan.torn_tail;
  // One committed-mask per sweep for O(1) duplicate detection (a resumed
  // run that crashed may have re-committed cells an earlier run logged).
  std::vector<std::vector<std::uint8_t>> seen;
  for (const wire::Frame& frame : scan.records) {
    // Each record is CRC-authentic; semantic violations from here on are
    // real corruption (or a foreign file), not tail damage - throw.
    wire::Reader r(frame.payload);
    if (frame.type == kRecordSweepBegin) {
      const std::uint64_t sweep = r.u64();
      const std::uint64_t fingerprint = r.u64();
      const std::uint64_t total_cells = r.u64();
      const std::string options = r.str();
      r.expect_done();
      if (sweep > analysis.sweeps.size()) {
        throw wire::Error("journal: sweep " + std::to_string(sweep) +
                          " begins before sweep " +
                          std::to_string(analysis.sweeps.size()) +
                          " (records out of order)");
      }
      if (sweep == analysis.sweeps.size()) {
        SweepState state;
        state.fingerprint = fingerprint;
        state.total_cells = total_cells;
        state.options = options;
        analysis.sweeps.push_back(std::move(state));
        seen.emplace_back(total_cells, 0);
      } else {
        // A resumed run re-begins the sweep; the repeat must describe the
        // same grid or the journal mixes two different runs.
        const SweepState& state = analysis.sweeps[sweep];
        if (state.fingerprint != fingerprint ||
            state.total_cells != total_cells) {
          throw wire::Error(
              "journal: sweep " + std::to_string(sweep) +
              " re-begins with a different grid (fingerprint/total "
              "mismatch - two different runs wrote this journal?)");
        }
      }
    } else if (frame.type == kRecordCellCommitted) {
      const std::uint64_t sweep = r.u64();
      const std::uint64_t cell = r.u64();
      ResultSet result = ResultSet::decode(r);
      r.expect_done();
      if (sweep >= analysis.sweeps.size()) {
        throw wire::Error("journal: cell commit for sweep " +
                          std::to_string(sweep) + " before its begin");
      }
      SweepState& state = analysis.sweeps[sweep];
      if (cell >= state.total_cells) {
        throw wire::Error("journal: sweep " + std::to_string(sweep) +
                          " commits cell " + std::to_string(cell) +
                          " beyond its " +
                          std::to_string(state.total_cells) + " cells");
      }
      if (seen[sweep][cell] == 0) {
        seen[sweep][cell] = 1;
        state.committed.emplace_back(static_cast<std::size_t>(cell),
                                     std::move(result));
      }
    } else if (frame.type == kRecordSweepEnd) {
      const std::uint64_t sweep = r.u64();
      SweepEndStats stats;
      stats.committed_cells = r.u64();
      stats.evaluated_cells = r.u64();
      stats.wall_ms = r.u64();
      stats.cells_per_sec = r.f64();
      r.expect_done();
      if (sweep >= analysis.sweeps.size()) {
        throw wire::Error("journal: sweep end for sweep " +
                          std::to_string(sweep) + " before its begin");
      }
      analysis.sweeps[sweep].ended = true;
      analysis.sweeps[sweep].end_stats = stats;
    } else {
      throw wire::Error("journal: unexpected record type " +
                        std::to_string(frame.type) +
                        " (not a sweep journal?)");
    }
  }
  return analysis;
}

JournalAnalysis analyze_journal(const std::string& path) {
  const std::vector<std::byte> data = read_file_bytes(path, "journal");
  return analyze_journal_bytes(data.data(), data.size());
}

JournalWriter::JournalWriter(std::string path, Options options)
    : path_(std::move(path)), options_(options) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (options_.truncate) {
    flags |= O_TRUNC;
  }
  do {
    fd_ = ::open(path_.c_str(), flags, 0644);
  } while (fd_ < 0 && errno == EINTR);
  if (fd_ < 0) {
    throw wire::Error("journal: cannot open '" + path_ + "' for appending: " +
                      std::strerror(errno));
  }
  if (!options_.truncate &&
      options_.truncate_at != static_cast<std::size_t>(-1)) {
    // Drop a torn tail the analysis pass found: O_APPEND writes at the
    // end of the file, so appending behind torn bytes would hide the new
    // records from every later scan.
    if (::ftruncate(fd_, static_cast<off_t>(options_.truncate_at)) != 0) {
      throw wire::Error("journal: cannot drop the torn tail of '" + path_ +
                        "': " + std::strerror(errno));
    }
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) {
    if (unsynced_ > 0) {
      ::fsync(fd_);
    }
    ::close(fd_);
  }
}

void JournalWriter::sync() {
  if (fd_ >= 0 && ::fsync(fd_) != 0) {
    throw wire::Error("journal: fsync of '" + path_ + "' failed: " +
                      std::strerror(errno));
  }
  unsynced_ = 0;
}

void JournalWriter::append(std::uint16_t type,
                           const std::vector<std::byte>& payload,
                           bool force_sync) {
  const std::vector<std::byte> record = seal_record(type, payload);
  // O_APPEND makes each write land at the current end even if another
  // process appends too; write_all retries EINTR and short writes.
  if (!io::write_all(fd_, record)) {
    throw wire::Error("journal: append to '" + path_ + "' failed");
  }
  ++unsynced_;
  if (force_sync || unsynced_ >= options_.sync_every) {
    sync();
  }
}

void JournalWriter::sweep_begin(std::uint64_t sweep,
                                std::uint64_t fingerprint,
                                std::uint64_t total_cells,
                                const std::string& options) {
  wire::Writer w;
  w.u64(sweep);
  w.u64(fingerprint);
  w.u64(total_cells);
  w.str(options);
  append(kRecordSweepBegin, w.data(), /*force_sync=*/true);
}

void JournalWriter::cell_committed(std::uint64_t sweep, std::uint64_t cell,
                                   const ResultSet& result) {
  wire::Writer w;
  w.u64(sweep);
  w.u64(cell);
  result.encode(w);
  append(kRecordCellCommitted, w.data(), /*force_sync=*/false);
}

void JournalWriter::sweep_end(std::uint64_t sweep,
                              const SweepEndStats& stats) {
  wire::Writer w;
  w.u64(sweep);
  w.u64(stats.committed_cells);
  w.u64(stats.evaluated_cells);
  w.u64(stats.wall_ms);
  w.f64(stats.cells_per_sec);
  append(kRecordSweepEnd, w.data(), /*force_sync=*/true);
}

}  // namespace recov
}  // namespace rbx
