// SweepJournal: an append-only write-ahead log that makes sweeps
// crash-durable.
//
// The paper's whole subject is backward error recovery - checkpoint,
// detect, roll back, retry - and this subsystem applies that discipline to
// the sweep harness itself.  A coordinator that journals its sweep can be
// SIGKILLed at 99% and restarted with `--resume=LOG`: the committed cells
// are recovered from the log and only the losers are re-evaluated, with
// output bitwise identical to an uninterrupted run (per-cell seeds pin
// every evaluation, so a recovered result and a re-evaluated one are the
// same bytes).
//
// On disk a journal is a sequence of records; each record is a standard
// wire frame (support/wire.h: magic | version | type | length | payload)
// followed by a CRC-32 of the frame bytes:
//
//   record  := frame | crc32 u32
//   journal := record*
//
//   kRecordSweepBegin      sweep index, grid fingerprint, total cells,
//                          options digest - appended before any cell of a
//                          sweep commits; re-appended (idempotently) by a
//                          resumed run, so a journal may carry several
//                          begins for one sweep and the analysis pass
//                          treats later ones as consistency checks;
//   kRecordCellCommitted   sweep index, cell index, encoded ResultSet -
//                          appended the moment a cell's outcome becomes
//                          final in the dispatch loop;
//   kRecordSweepEnd        sweep index + SweepEndStats (cells evaluated,
//                          wall-clock, cells/sec) - the sweep completed;
//                          the stats seed the repo's perf trajectory.
//
// Reading is an ARIES-style *analysis pass* (the shape of SNIPPETS.md's
// recov.cc: scan the log once, classify winners and losers): records are
// accepted while framing and CRC hold, and the scan stops at the first
// truncated, torn or corrupt record - a journal cut at any byte boundary
// yields the longest valid prefix, never garbage and never an exception
// for tail damage (tests/recov/journal_test.cc truncates at every byte).
// The "redo pass" is trivial by construction: committed results are
// final-state (full ResultSets, not deltas), so redo = copy them into the
// result vector; the "undo pass" is the re-evaluation of the losers.
//
// Writes batch their fsyncs: cell records are flushed in groups of
// `sync_every` (a crash loses at most that many commits - they are simply
// re-evaluated on resume), while sweep boundaries always sync.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/result.h"
#include "support/wire.h"

namespace rbx {
namespace recov {

// Journal record frame types (disjoint from the executor data frames 1..3
// and the cluster control frames 16..18, so a journal fed to a frame
// stream - or vice versa - is rejected by type, not misread).
inline constexpr std::uint16_t kRecordSweepBegin = 32;
inline constexpr std::uint16_t kRecordCellCommitted = 33;
inline constexpr std::uint16_t kRecordSweepEnd = 34;
inline constexpr std::uint16_t kRecordCacheEntry = 35;  // recov/cache.h

// CRC-32 (IEEE 802.3, reflected) over `size` bytes.
std::uint32_t crc32(const void* data, std::size_t size);

// One record sealed for appending: frame + CRC trailer.
std::vector<std::byte> seal_record(std::uint16_t type,
                                   const std::vector<std::byte>& payload);

// The raw record scan shared by the sweep journal and the result cache:
// accepts records while framing and CRC hold, stops at the first
// truncated, torn or corrupt one.  Never throws - tail damage just ends
// the scan at the last valid boundary.
struct RecordScan {
  std::vector<wire::Frame> records;
  std::size_t valid_bytes = 0;
  bool torn_tail = false;
};
RecordScan scan_records(const std::byte* data, std::size_t size);

// Reads a whole file into memory; throws wire::Error naming `what` when
// it cannot be opened or read.
std::vector<std::byte> read_file_bytes(const std::string& path,
                                       const char* what);

// Perf counters of one completed sweep, carried in kRecordSweepEnd.
struct SweepEndStats {
  std::uint64_t committed_cells = 0;  // final committed count of the sweep
  std::uint64_t evaluated_cells = 0;  // evaluated by *this* run (a resumed
                                      // run evaluates only the losers)
  std::uint64_t wall_ms = 0;          // this run's evaluation wall-clock
  double cells_per_sec = 0.0;         // evaluated_cells over wall_ms
};

// What the analysis pass recovered about one sweep.
struct SweepState {
  std::uint64_t fingerprint = 0;   // grid_fingerprint of the sweep
  std::uint64_t total_cells = 0;
  std::string options;             // human-readable digest (error messages)
  bool ended = false;              // a kRecordSweepEnd was recovered
  SweepEndStats end_stats;
  // Committed (cell index, result) pairs in commit order; duplicates from
  // crash/resume overlap keep the first occurrence (per-cell seeds make
  // them bitwise identical anyway).
  std::vector<std::pair<std::size_t, ResultSet>> committed;

  bool has_cell(std::size_t index) const;
};

// The analysis pass over a whole journal.
struct JournalAnalysis {
  // Sweeps in bench order: sweeps[s] is the bench's s-th SweepRunner::run.
  std::vector<SweepState> sweeps;
  std::size_t valid_bytes = 0;    // longest valid record prefix
  std::size_t dropped_bytes = 0;  // torn/corrupt tail bytes ignored
  bool torn_tail = false;         // the scan stopped before end of input

  std::size_t committed_cells() const;
};

// Scans `size` bytes of journal and returns everything recoverable.
// Never throws for tail damage - a truncated, torn or CRC-corrupt record
// ends the scan at the last valid boundary.  Throws wire::Error only for
// *semantic* corruption inside a CRC-valid record (a record type no
// journal writer emits, a cell index beyond the sweep's total, a begin
// that contradicts an earlier begin of the same sweep) - that is not tail
// damage but evidence the file is not this sweep's journal.
JournalAnalysis analyze_journal_bytes(const std::byte* data,
                                      std::size_t size);

// Reads and analyzes a journal file.  Throws wire::Error if the file
// cannot be read at all; tail damage is tolerated as above.
JournalAnalysis analyze_journal(const std::string& path);

// Append-only journal writer.  Not thread-safe: the dispatch loop commits
// cells from one thread.
class JournalWriter {
 public:
  struct Options {
    // Cell records per fsync batch; boundary records always sync.
    std::size_t sync_every = 32;
    bool truncate = false;  // start a fresh journal (--journal) instead of
                            // appending to a recovered one (--resume)
    // When resuming a journal whose analysis found a torn tail, the torn
    // bytes must be physically dropped before appending: O_APPEND writes
    // at the end of the file, and a record behind torn bytes would be
    // unreachable (the analysis scan stops at the tear).  Set this to the
    // analysis' valid_bytes to cut the file there; SIZE_MAX keeps it.
    std::size_t truncate_at = static_cast<std::size_t>(-1);
  };

  // Opens (creating if missing) for appending.  Throws wire::Error on
  // open failure.
  JournalWriter(std::string path, Options options);
  ~JournalWriter();  // flushes; best-effort sync

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  const std::string& path() const { return path_; }

  void sweep_begin(std::uint64_t sweep, std::uint64_t fingerprint,
                   std::uint64_t total_cells, const std::string& options);
  void cell_committed(std::uint64_t sweep, std::uint64_t cell,
                      const ResultSet& result);
  void sweep_end(std::uint64_t sweep, const SweepEndStats& stats);

  // fsync now (boundary records call this themselves).
  void sync();

 private:
  void append(std::uint16_t type, const std::vector<std::byte>& payload,
              bool force_sync);

  std::string path_;
  Options options_;
  int fd_ = -1;
  std::size_t unsynced_ = 0;
};

}  // namespace recov
}  // namespace rbx
