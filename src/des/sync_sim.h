// Monte-Carlo simulation of synchronized recovery blocks (paper Section 3).
//
// Synchronization requests are issued under one of the paper's three
// strategies:
//   1. kConstantInterval - on a fixed wall-clock timer, oblivious to the
//      execution state (simple but can fire right after a line formed);
//   2. kElapsedTime     - when the time since the previous recovery line
//      exceeds a threshold;
//   3. kSavedStates     - when the number of states saved since the
//      previous line exceeds a threshold.
//
// On a request every process runs to its next acceptance test (time
// y_i ~ Exp(mu_i) by memorylessness), broadcasts ready, and waits; the line
// forms at Z = max y_i and the computation power lost is sum_i (Z - y_i).
// Between lines processes keep establishing ordinary RPs at rate mu_i
// (these are the "states saved" counted by strategy 3).  Optionally errors
// are injected at a Poisson rate; under synchronized RBs recovery is always
// to the last line, so the rollback distance is the age of that line.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"
#include "support/stats.h"

namespace rbx {

enum class SyncStrategy { kConstantInterval, kElapsedTime, kSavedStates };

struct SyncSimParams {
  std::vector<double> mu;          // acceptance-test rates per process
  SyncStrategy strategy = SyncStrategy::kElapsedTime;
  double interval = 1.0;           // strategy 1: timer period
  double elapsed_threshold = 1.0;  // strategy 2: max line age before request
  std::size_t saved_threshold = 8; // strategy 3: states saved before request
  double error_rate = 0.0;         // total Poisson error rate (0 = off)
};

struct SyncSimResult {
  SampleSet max_wait;           // Z per synchronization
  SampleSet loss;               // sum_i (Z - y_i) per synchronization
  SampleSet line_spacing;       // time between successive recovery lines
  SampleSet states_per_line;    // RPs recorded between lines (+ n at line)
  SampleSet rollback_distance;  // per injected error (empty if rate 0)

  // Loss per unit time: total loss / total simulated time.
  double loss_rate = 0.0;
  // The raw totals behind loss_rate, kept so partial results can merge
  // exactly: the combined rate is sum(loss) / sum(time), not an average
  // of the per-partial rates.
  double total_loss = 0.0;
  double total_time = 0.0;

  // Merges another run's result into this one (sample-parallel streams):
  // sample accumulators combine via Chan et al., and loss_rate is
  // recomputed from the summed raw totals.
  void merge(const SyncSimResult& other);
};

class SyncRbSimulator {
 public:
  SyncRbSimulator(SyncSimParams params, std::uint64_t seed);

  // Resets the RNG to a fresh seed, keeping the commit scratch: a stream
  // pool reuses one simulator per worker thread.  reseed(s) + run is
  // bitwise identical to a new simulator constructed with seed s.
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  SyncSimResult run(std::size_t lines);

 private:
  SyncSimParams params_;
  Rng rng_;
  // Per-commit scratch (one slot per process), reused across lines and
  // runs instead of allocating inside the commit loop; every element is
  // overwritten before use, so reuse cannot change a sampled value.
  std::vector<double> y_scratch_;
};

}  // namespace rbx
