// Monte-Carlo simulation of asynchronous recovery blocks.
//
// Replays the stochastic process of paper Section 2.1 exactly: recovery
// points of P_i form a Poisson process with rate mu_i and each pair (i, j)
// interacts after Exp(lambda_ij) intervals.  Two observers run on the event
// stream:
//
//  * the *model observer* tracks the paper's Markov state (the last-action
//    bit per process) and samples the interval X between returns to the
//    all-ones state plus the per-process state-saving counts L_i - this is
//    the "computer simulation" behind the paper's Table 1 and validates the
//    analytic chain;
//  * the *exact observer* maintains the full history and the maximal
//    recovery line under the paper's pairwise definition, sampling how
//    often the true line advances - the model is conservative (it misses
//    lines whose combinations mix old and new RPs), and this observer
//    quantifies the gap (ablation ABL-LINE in DESIGN.md).
#pragma once

#include <cstdint>
#include <vector>

#include "model/params.h"
#include "support/rng.h"
#include "support/stats.h"

namespace rbx {

struct AsyncSimResult {
  SampleSet interval;                        // X samples (model semantics)
  // L_i under the three counting conventions of AsyncRbModel::RpCounts.
  std::vector<RunningStats> rp_incl_final;   // convention (a)
  std::vector<RunningStats> rp_excl_final;   // convention (b)
  std::vector<RunningStats> rp_state_changing;  // convention (c)
  // Age of the newest recovery line at Poisson-sampled error instants
  // (only populated by run_lines(lines, error_rate) with a positive rate);
  // its mean converges to E[X^2] / (2 E[X]) - the stationary rollback
  // distance to the model's last line.
  SampleSet line_age;

  // Merges another run's result into this one (sample-parallel streams,
  // core/monte_carlo_backend.cc): every accumulator is a SampleSet or
  // RunningStats, so the merge is the Chan et al. combine throughout.
  // Both results must come from the same process count (RBX_CHECKed).
  void merge(const AsyncSimResult& other);
};

struct ExactLineResult {
  // Interval between successive advancements of the maximal recovery line
  // (any component moves).
  SampleSet any_advance;
  // Interval between "full refreshes": every component strictly newer than
  // at the previous full refresh.
  SampleSet full_refresh;
  // Model-semantics X measured on the same trajectory (paired comparison).
  SampleSet model_interval;
};

class AsyncRbSimulator {
 public:
  AsyncRbSimulator(ProcessSetParams params, std::uint64_t seed);

  // Resets the RNG to a fresh seed while keeping the event tables and
  // per-line scratch: a stream pool reuses one simulator instance per
  // worker thread across streams.  reseed(s) followed by run_lines is
  // bitwise identical to constructing a new simulator with seed s.
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  // Simulates until `lines` recovery lines have formed (model semantics).
  // With error_rate > 0, errors arrive as an independent Poisson process
  // and the age of the newest line is sampled at each arrival.
  AsyncSimResult run_lines(std::size_t lines, double error_rate = 0.0);

  // Simulates `events` RP/interaction events, tracking both observers.
  ExactLineResult run_exact(std::size_t events);

 private:
  struct EventDraw {
    double dt;
    bool is_rp;
    std::size_t a;  // process (RP) or first party (interaction)
    std::size_t b;  // second party (interaction only)
  };
  EventDraw next_event();

  ProcessSetParams params_;
  Rng rng_;
  std::vector<double> weights_;   // categorical weights: n RPs then pairs
  std::vector<std::pair<std::size_t, std::size_t>> pairs_;
  double total_rate_;
  // Per-line RP counters, reused across run_lines calls (reset at every
  // line) instead of allocating per run.
  std::vector<std::size_t> incl_scratch_;
  std::vector<std::size_t> state_changing_scratch_;
};

}  // namespace rbx
