#include "des/prp_sim.h"

#include <limits>

#include "support/check.h"
#include "trace/history.h"
#include "trace/prp_plan.h"
#include "trace/rollback.h"

namespace rbx {

namespace {
constexpr double kClean = std::numeric_limits<double>::infinity();

// Horizon-weighted recombination of a per-unit-time rate.  Each rate is
// count / horizon (times a seed-independent constant), so
// (r1*h1 + r2*h2) / (h1+h2) == (count1 + count2) / (h1+h2) exactly.
double merge_rate(double r1, double h1, double r2, double h2) {
  const double h = h1 + h2;
  return h > 0.0 ? (r1 * h1 + r2 * h2) / h : 0.0;
}
}  // namespace

void PrpSimResult::merge(const PrpSimResult& other) {
  prp_distance.merge(other.prp_distance);
  prp_affected.merge(other.prp_affected);
  prp_iterations.merge(other.prp_iterations);
  async_distance.merge(other.async_distance);
  async_affected.merge(other.async_affected);
  async_domino_count += other.async_domino_count;
  failures += other.failures;
  contaminated_restarts += other.contaminated_restarts;
  snapshots_per_unit_time = merge_rate(snapshots_per_unit_time, horizon,
                                       other.snapshots_per_unit_time,
                                       other.horizon);
  rp_per_unit_time = merge_rate(rp_per_unit_time, horizon,
                                other.rp_per_unit_time, other.horizon);
  recording_time_fraction = merge_rate(recording_time_fraction, horizon,
                                       other.recording_time_fraction,
                                       other.horizon);
  horizon += other.horizon;
  hybrid_distance.merge(other.hybrid_distance);
  hybrid_sync_restores += other.hybrid_sync_restores;
  sync_lines_established += other.sync_lines_established;
}

PrpSimulator::PrpSimulator(ProcessSetParams params, PrpSimParams sim,
                           std::uint64_t seed)
    : params_(std::move(params)), sim_(sim), rng_(seed) {
  RBX_CHECK(sim_.t_record >= 0.0);
  RBX_CHECK(sim_.error_rate > 0.0);
  // Event categories: n RPs, the positive-rate pairs, then the error source.
  const std::size_t n = params_.n();
  for (std::size_t i = 0; i < n; ++i) {
    weights_.push_back(params_.mu(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (params_.lambda(i, j) > 0.0) {
        weights_.push_back(params_.lambda(i, j));
        pairs_.push_back({i, j});
      }
    }
  }
  error_category_ = weights_.size();
  weights_.push_back(sim_.error_rate);
  total_rate_ = 0.0;
  for (double w : weights_) {
    total_rate_ += w;
  }
}

PrpSimResult PrpSimulator::run(std::size_t failures) {
  const std::size_t n = params_.n();
  const std::vector<double>& weights = weights_;
  const std::vector<std::pair<std::size_t, std::size_t>>& pairs = pairs_;
  const std::size_t error_category = error_category_;
  const double total_rate = total_rate_;

  PrpSimResult result;
  History history(n);
  PrpRollbackPlanner planner(history, sim_.affects_everyone);
  RollbackAnalyzer async_analyzer(history);

  double t = 0.0;
  double cursor = 0.0;
  auto clamp = [&cursor](double time) {
    cursor = std::max(cursor, time);
    return cursor;
  };

  std::vector<double> contaminated_at(n, kClean);
  bool error_outstanding = false;
  std::size_t error_origin = 0;
  std::size_t rp_count = 0;

  // Hybrid scheme state: the newest clean synchronized line.
  double last_sync = 0.0;
  double next_sync = sim_.sync_period > 0.0
                         ? sim_.sync_period
                         : std::numeric_limits<double>::infinity();

  while (result.failures < failures) {
    t += rng_.exponential(total_rate);
    // Establish periodic synchronized lines (hybrid scheme); commits with
    // a latent error abort (their acceptance tests detect it), so those
    // sync instants are skipped.
    while (next_sync <= t) {
      if (!error_outstanding) {
        last_sync = next_sync;
        ++result.sync_lines_established;
      }
      next_sync += sim_.sync_period;
    }
    const std::size_t k = rng_.categorical(weights.data(), weights.size());

    if (k == error_category) {
      // One outstanding error at a time keeps local/propagated ground truth
      // unambiguous; a second fault before recovery is dropped.
      if (!error_outstanding) {
        error_outstanding = true;
        error_origin = rng_.uniform_index(n);
        contaminated_at[error_origin] = t;
      }
      continue;
    }

    if (k >= n) {
      // Interaction: record it and propagate contamination both ways.
      const auto [a, b] = pairs[k - n];
      history.add_interaction(a, b, clamp(t));
      if (contaminated_at[a] <= t && contaminated_at[b] > t) {
        contaminated_at[b] = t;
      } else if (contaminated_at[b] <= t && contaminated_at[a] > t) {
        contaminated_at[a] = t;
      }
      continue;
    }

    // Recovery point attempt of process k: the acceptance test runs first.
    const std::size_t p = k;
    if (contaminated_at[p] <= t) {
      // Detection: the AT fails; no RP is recorded.
      ++result.failures;
      const ErrorScope scope =
          p == error_origin ? ErrorScope::kLocal : ErrorScope::kPropagated;

      const PrpRollbackResult plan = planner.plan(p, t, scope);
      result.prp_distance.add(plan.rollback_distance);
      result.prp_affected.add(static_cast<double>(plan.affected_count));
      result.prp_iterations.add(static_cast<double>(plan.iterations));
      if (sim_.sync_period > 0.0) {
        // Hybrid cap: if the pointer loop would cross the newest clean
        // synchronized line, everyone restores that line instead.
        if (plan.rollback_distance > t - last_sync) {
          result.hybrid_distance.add(t - last_sync);
          ++result.hybrid_sync_restores;
        } else {
          result.hybrid_distance.add(plan.rollback_distance);
        }
      }
      for (std::size_t q = 0; q < n; ++q) {
        if (plan.affected[q] && contaminated_at[q] <= plan.restart[q].time) {
          ++result.contaminated_restarts;
        }
      }

      const RollbackResult async = async_analyzer.analyze_failure(p, t);
      result.async_distance.add(async.rollback_distance);
      result.async_affected.add(static_cast<double>(async.affected_count));
      if (async.domino_to_start) {
        ++result.async_domino_count;
      }

      // Instantaneous repair: the error is gone, execution continues (the
      // renewal shortcut; see the header).
      contaminated_at.assign(n, kClean);
      error_outstanding = false;
      continue;
    }

    // AT passes: RP recorded, implantation requests broadcast, every other
    // process snapshots a PRP after its recording delay.
    history.add_recovery_point(p, clamp(t));
    ++rp_count;
    const std::size_t seq = history.rp_count(p);
    for (std::size_t q = 0; q < n; ++q) {
      if (q != p) {
        history.add_pseudo_recovery_point(q, clamp(t + sim_.t_record), p,
                                          seq);
      }
    }
  }

  result.horizon = t;
  if (t > 0.0) {
    result.snapshots_per_unit_time =
        static_cast<double>(rp_count) * static_cast<double>(n) / t;
    result.rp_per_unit_time = static_cast<double>(rp_count) / t;
    result.recording_time_fraction =
        static_cast<double>(rp_count) * static_cast<double>(n - 1) *
        sim_.t_record / (static_cast<double>(n) * t);
  }
  return result;
}

}  // namespace rbx
