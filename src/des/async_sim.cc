#include "des/async_sim.h"

#include <limits>

#include "support/check.h"
#include "trace/history.h"
#include "trace/recovery_line.h"

namespace rbx {

void AsyncSimResult::merge(const AsyncSimResult& other) {
  RBX_CHECK_MSG(rp_incl_final.size() == other.rp_incl_final.size(),
                "AsyncSimResult::merge needs matching process counts");
  interval.merge(other.interval);
  for (std::size_t i = 0; i < rp_incl_final.size(); ++i) {
    rp_incl_final[i].merge(other.rp_incl_final[i]);
    rp_excl_final[i].merge(other.rp_excl_final[i]);
    rp_state_changing[i].merge(other.rp_state_changing[i]);
  }
  line_age.merge(other.line_age);
}

AsyncRbSimulator::AsyncRbSimulator(ProcessSetParams params, std::uint64_t seed)
    : params_(std::move(params)), rng_(seed) {
  const std::size_t n = params_.n();
  for (std::size_t i = 0; i < n; ++i) {
    weights_.push_back(params_.mu(i));
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (params_.lambda(i, j) > 0.0) {
        weights_.push_back(params_.lambda(i, j));
        pairs_.push_back({i, j});
      }
    }
  }
  total_rate_ = 0.0;
  for (double w : weights_) {
    total_rate_ += w;
  }
  RBX_CHECK(total_rate_ > 0.0);
}

AsyncRbSimulator::EventDraw AsyncRbSimulator::next_event() {
  EventDraw draw;
  draw.dt = rng_.exponential(total_rate_);
  const std::size_t k = rng_.categorical(weights_.data(), weights_.size());
  if (k < params_.n()) {
    draw.is_rp = true;
    draw.a = k;
    draw.b = k;
  } else {
    draw.is_rp = false;
    draw.a = pairs_[k - params_.n()].first;
    draw.b = pairs_[k - params_.n()].second;
  }
  return draw;
}

AsyncSimResult AsyncRbSimulator::run_lines(std::size_t lines,
                                           double error_rate) {
  const std::size_t n = params_.n();
  AsyncSimResult result;
  result.rp_incl_final.resize(n);
  result.rp_excl_final.resize(n);
  result.rp_state_changing.resize(n);

  const std::size_t full = (std::size_t{1} << n) - 1;
  double t = 0.0;
  double line_start = 0.0;
  double next_error = error_rate > 0.0
                          ? rng_.exponential(error_rate)
                          : std::numeric_limits<double>::infinity();
  bool at_entry = true;  // logically all-ones, with rule R4 active
  std::size_t mask = full;
  incl_scratch_.assign(n, 0);
  state_changing_scratch_.assign(n, 0);
  std::vector<std::size_t>& incl = incl_scratch_;
  std::vector<std::size_t>& state_changing = state_changing_scratch_;

  std::size_t formed = 0;
  while (formed < lines) {
    const EventDraw ev = next_event();
    t += ev.dt;
    // Sample the line age at every error instant passed by this event (the
    // error process is independent of RPs and interactions).
    while (next_error <= t) {
      result.line_age.add(next_error - line_start);
      next_error += rng_.exponential(error_rate);
    }
    if (!ev.is_rp) {
      // Interaction clears the pair's bits (rules R2 / R3).
      const std::size_t bits =
          (std::size_t{1} << ev.a) | (std::size_t{1} << ev.b);
      if (at_entry || (mask & bits) != 0) {
        mask = (at_entry ? full : mask) & ~bits;
        at_entry = false;
      }
      continue;
    }

    // Recovery point of process a.
    const std::size_t bit = std::size_t{1} << ev.a;
    ++incl[ev.a];
    bool absorbed = false;
    if (at_entry) {
      // Rule R4: a fresh RP on the line re-forms a line immediately.
      ++state_changing[ev.a];
      absorbed = true;
    } else if (!(mask & bit)) {
      ++state_changing[ev.a];
      mask |= bit;
      absorbed = mask == full;
    }
    // An RP while x_a = 1 (intermediate) is invisible to the chain: it is
    // counted in incl/excl only.

    if (absorbed) {
      ++formed;
      result.interval.add(t - line_start);
      for (std::size_t i = 0; i < n; ++i) {
        result.rp_incl_final[i].add(static_cast<double>(incl[i]));
        // The line-forming RP (this one, owned by ev.a) is excluded from
        // convention (b).
        const std::size_t e = incl[i] - (i == ev.a ? 1 : 0);
        result.rp_excl_final[i].add(static_cast<double>(e));
        result.rp_state_changing[i].add(static_cast<double>(state_changing[i]));
        incl[i] = state_changing[i] = 0;
      }
      line_start = t;
      at_entry = true;
      mask = full;
    }
  }
  return result;
}

ExactLineResult AsyncRbSimulator::run_exact(std::size_t events) {
  const std::size_t n = params_.n();
  ExactLineResult result;

  History history(n);
  RecoveryLineFinder finder(history);

  const std::size_t full = (std::size_t{1} << n) - 1;
  double t = 0.0;
  bool at_entry = true;
  std::size_t mask = full;
  double model_line_start = 0.0;

  // Exact observer state: current maximal line M, last-advance time, and
  // the baseline of the last full refresh.
  std::vector<double> max_line(n, 0.0);
  std::vector<double> refresh_base(n, 0.0);
  double last_advance = 0.0;
  double last_refresh = 0.0;

  for (std::size_t e = 0; e < events; ++e) {
    const EventDraw ev = next_event();
    t += ev.dt;

    if (!ev.is_rp) {
      history.add_interaction(ev.a, ev.b, t);
      const std::size_t bits =
          (std::size_t{1} << ev.a) | (std::size_t{1} << ev.b);
      if (at_entry || (mask & bits) != 0) {
        mask = (at_entry ? full : mask) & ~bits;
        at_entry = false;
      }
      continue;
    }

    history.add_recovery_point(ev.a, t);

    // Model observer.
    const std::size_t bit = std::size_t{1} << ev.a;
    bool absorbed = false;
    if (at_entry) {
      absorbed = true;
    } else if (!(mask & bit)) {
      mask |= bit;
      absorbed = mask == full;
    }
    if (absorbed) {
      result.model_interval.add(t - model_line_start);
      model_line_start = t;
      at_entry = true;
      mask = full;
    }

    // Exact observer: only an RP can advance the maximal line.
    const RecoveryLine line = finder.latest_line(t);
    bool advanced = false;
    bool all_newer = true;
    for (std::size_t p = 0; p < n; ++p) {
      const double lt = line.points[p].is_initial ? 0.0 : line.points[p].time;
      if (lt > max_line[p]) {
        max_line[p] = lt;
        advanced = true;
      }
      if (max_line[p] <= refresh_base[p]) {
        all_newer = false;
      }
    }
    if (advanced) {
      result.any_advance.add(t - last_advance);
      last_advance = t;
    }
    if (all_newer) {
      result.full_refresh.add(t - last_refresh);
      last_refresh = t;
      refresh_base = max_line;
    }
  }
  return result;
}

}  // namespace rbx
