#include "des/sync_sim.h"

#include <algorithm>

#include "support/check.h"

namespace rbx {

void SyncSimResult::merge(const SyncSimResult& other) {
  max_wait.merge(other.max_wait);
  loss.merge(other.loss);
  line_spacing.merge(other.line_spacing);
  states_per_line.merge(other.states_per_line);
  rollback_distance.merge(other.rollback_distance);
  total_loss += other.total_loss;
  total_time += other.total_time;
  loss_rate = total_time > 0.0 ? total_loss / total_time : 0.0;
}

SyncRbSimulator::SyncRbSimulator(SyncSimParams params, std::uint64_t seed)
    : params_(std::move(params)), rng_(seed) {
  RBX_CHECK(!params_.mu.empty());
  for (double m : params_.mu) {
    RBX_CHECK(m > 0.0);
  }
  RBX_CHECK(params_.interval > 0.0);
  RBX_CHECK(params_.elapsed_threshold > 0.0);
  RBX_CHECK(params_.saved_threshold > 0);
  RBX_CHECK(params_.error_rate >= 0.0);
}

SyncSimResult SyncRbSimulator::run(std::size_t lines) {
  const std::size_t n = params_.mu.size();
  double total_mu = 0.0;
  for (double m : params_.mu) {
    total_mu += m;
  }

  SyncSimResult result;
  double t = 0.0;
  double last_line = 0.0;
  double next_timer = params_.interval;  // strategy 1 wall-clock timer
  double total_loss = 0.0;

  for (std::size_t formed = 0; formed < lines; ++formed) {
    // --- decide when the synchronization request fires ---
    double request = 0.0;
    std::size_t states_between = 0;
    switch (params_.strategy) {
      case SyncStrategy::kConstantInterval: {
        // Next timer tick after the current time; ticks that fell inside
        // the previous commit window fire immediately (the inefficiency the
        // paper calls out for this strategy).
        while (next_timer < t) {
          next_timer += params_.interval;
        }
        request = next_timer;
        next_timer += params_.interval;
        // Count ordinary RPs recorded meanwhile (Poisson thinning).
        std::size_t count = 0;
        double s = t;
        for (;;) {
          s += rng_.exponential(total_mu);
          if (s >= request) {
            break;
          }
          ++count;
        }
        states_between = count;
        break;
      }
      case SyncStrategy::kElapsedTime: {
        request = last_line + params_.elapsed_threshold;
        if (request < t) {
          request = t;  // commit window outlasted the threshold
        }
        std::size_t count = 0;
        double s = t;
        for (;;) {
          s += rng_.exponential(total_mu);
          if (s >= request) {
            break;
          }
          ++count;
        }
        states_between = count;
        break;
      }
      case SyncStrategy::kSavedStates: {
        // The request fires at the RP event that exceeds the threshold.
        double s = t;
        for (std::size_t count = 0; count < params_.saved_threshold;
             ++count) {
          s += rng_.exponential(total_mu);
        }
        request = s;
        states_between = params_.saved_threshold;
        break;
      }
    }

    // --- commit: every process runs to its next acceptance test ---
    double z = 0.0;
    double loss = 0.0;
    std::vector<double>& y = y_scratch_;
    y.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] = rng_.exponential(params_.mu[i]);
      z = std::max(z, y[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      loss += z - y[i];
    }
    const double line_time = request + z;

    // --- errors since the previous line roll back to it ---
    if (params_.error_rate > 0.0) {
      double e = last_line;
      for (;;) {
        e += rng_.exponential(params_.error_rate);
        if (e >= line_time) {
          break;
        }
        result.rollback_distance.add(e - last_line);
      }
    }

    result.max_wait.add(z);
    result.loss.add(loss);
    result.line_spacing.add(line_time - last_line);
    result.states_per_line.add(static_cast<double>(states_between + n));
    total_loss += loss;

    last_line = line_time;
    t = line_time;
  }

  result.loss_rate = t > 0.0 ? total_loss / t : 0.0;
  result.total_loss = total_loss;
  result.total_time = t;
  return result;
}

}  // namespace rbx
