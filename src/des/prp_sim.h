// Monte-Carlo simulation of pseudo recovery points (paper Section 4), with
// a paired asynchronous-RB comparison.
//
// The simulator generates the Section 2.1 stochastic process (RPs at mu_i,
// pairwise interactions at lambda_ij), implants a PRP in every other
// process after each RP (the paper's implantation algorithm, with recording
// time t_r), and injects errors at a Poisson rate.  Error semantics:
//
//  * an error arises in one process and contaminates it from that moment;
//  * every interaction involving a contaminated party contaminates the
//    other party (error propagation);
//  * a contaminated process detects the error at its next acceptance test
//    (perfect local AT, assumption A2); the failed AT does not establish
//    an RP.
//
// On detection the Section 4 rollback algorithm runs (PrpRollbackPlanner);
// the same failure is also analyzed under plain asynchronous RBs
// (RollbackAnalyzer) on the same history, giving a paired comparison of
// rollback distances, affected-set sizes and domino frequency.  The
// simulator verifies ground-truth cleanliness of every PRP restart line:
// each restored state must predate the contamination of its process.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "model/params.h"
#include "support/rng.h"
#include "support/stats.h"

namespace rbx {

struct PrpSimParams {
  double t_record = 1e-4;      // state-recording time t_r
  double error_rate = 0.05;    // system-wide Poisson error rate
  // When false, PRP restores only pull in processes that interacted with
  // the rollback pointer (scoped variant; see PrpRollbackPlanner).
  bool affects_everyone = true;
  // Hybrid scheme (the paper's conclusion: "optimal solutions may be a
  // combination of these three categories"): a synchronized recovery line
  // is additionally established every sync_period time units (0 = off).
  // Syncs while an error is latent are skipped - their acceptance tests
  // would abort the commit - so established sync lines are always clean.
  // If the Section 4 pointer loop would roll any process past the newest
  // sync line, the whole system restores that line instead (the Section 3
  // semantics), capping the rollback distance.
  double sync_period = 0.0;
};

struct PrpSimResult {
  // Pseudo-recovery-point scheme.
  SampleSet prp_distance;        // sup rollback distance per failure
  SampleSet prp_affected;        // processes rolled back per failure
  SampleSet prp_iterations;      // pointer-loop iterations per failure
  // Plain asynchronous RBs on the same failures.
  SampleSet async_distance;
  SampleSet async_affected;
  std::size_t async_domino_count = 0;   // failures that reached t = 0
  std::size_t failures = 0;
  // Every PRP restart line was verified clean against ground truth.
  std::size_t contaminated_restarts = 0;
  // Storage/time accounting.
  double snapshots_per_unit_time = 0.0;  // system-wide, includes PRPs
  double rp_per_unit_time = 0.0;         // RPs only (the async baseline)
  double recording_time_fraction = 0.0;  // (n-1) t_r per RP, amortized
  double horizon = 0.0;
  // Hybrid scheme (sync_period > 0): the distance with the sync-line cap
  // applied, the number of failures that fell back to the sync line, and
  // the number of sync lines established (for loss-rate accounting).
  SampleSet hybrid_distance;
  std::size_t hybrid_sync_restores = 0;
  std::size_t sync_lines_established = 0;

  // Merges another run's result into this one (sample-parallel streams):
  // sample accumulators combine via Chan et al., counters sum, and the
  // per-unit-time rates recombine horizon-weighted - algebraically the
  // same as recomputing them from the summed RP counts over the summed
  // horizon, since each rate is (count * constant) / horizon.
  void merge(const PrpSimResult& other);
};

class PrpSimulator {
 public:
  PrpSimulator(ProcessSetParams params, PrpSimParams sim,
               std::uint64_t seed);

  // Resets the RNG to a fresh seed, keeping the event-draw tables: a
  // stream pool reuses one simulator per worker thread.  reseed(s) + run
  // is bitwise identical to a new simulator constructed with seed s.
  void reseed(std::uint64_t seed) { rng_ = Rng(seed); }

  // Runs until `failures` errors have been detected and recovered.
  PrpSimResult run(std::size_t failures);

 private:
  ProcessSetParams params_;
  PrpSimParams sim_;
  Rng rng_;
  // Event-draw tables (n RPs, the positive-rate pairs, then the error
  // source), built once here instead of at every run() call.
  std::vector<double> weights_;
  std::vector<std::pair<std::size_t, std::size_t>> pairs_;
  std::size_t error_category_ = 0;
  double total_rate_ = 0.0;
};

}  // namespace rbx
