// The sequential recovery block of Horning/Randell (paper Section 1).
//
//   ensure   <acceptance test>
//   by       <primary alternative>
//   else by  <alternative 2> ... <alternative k>
//   else error
//
// The process state is saved at the recovery point on entry; each
// alternative runs against the saved state (a failed attempt is rolled
// back before the next alternative runs); the acceptance test validates
// the result.  If every alternative fails the block reports failure and
// the caller escalates (in concurrent settings this is where rollback
// propagation begins).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "runtime/serializable.h"

namespace rbx {

class RecoveryBlock {
 public:
  // The alternative mutates the state; the acceptance test inspects it.
  using Alternative = std::function<void(Serializable&)>;
  using AcceptanceTest = std::function<bool(const Serializable&)>;

  explicit RecoveryBlock(AcceptanceTest test);

  RecoveryBlock& add_alternative(Alternative alt);

  std::size_t alternatives() const { return alternatives_.size(); }

  struct Outcome {
    // Index of the alternative whose result passed the acceptance test.
    std::size_t accepted_alternative = 0;
    // Number of failed attempts rolled back before acceptance.
    std::size_t rollbacks = 0;
  };

  // Executes the block against `state`.  On success the state holds the
  // accepted result; on failure (nullopt) the state is restored to the
  // recovery point taken on entry.
  std::optional<Outcome> execute(Serializable& state) const;

 private:
  AcceptanceTest test_;
  std::vector<Alternative> alternatives_;
};

}  // namespace rbx
