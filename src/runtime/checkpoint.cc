#include "runtime/checkpoint.h"

#include <algorithm>

#include "support/check.h"

namespace rbx {

void CheckpointStore::save(Snapshot snapshot) {
  RBX_CHECK_MSG(snapshots_.empty() ||
                    snapshot.ticket >= snapshots_.back().ticket,
                "snapshots must be recorded in ticket order");
  snapshots_.push_back(std::move(snapshot));
}

const Snapshot* CheckpointStore::latest_rp() const {
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (it->kind == SnapshotKind::kRecoveryPoint) {
      return &*it;
    }
  }
  return nullptr;
}

const Snapshot* CheckpointStore::rp_before(std::uint64_t ticket) const {
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (it->kind == SnapshotKind::kRecoveryPoint && it->ticket < ticket) {
      return &*it;
    }
  }
  return nullptr;
}

const Snapshot* CheckpointStore::prp_for(ProcessId owner,
                                         std::uint64_t seq) const {
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (it->kind == SnapshotKind::kPseudoRecoveryPoint &&
        it->rp_owner == owner && it->rp_seq == seq) {
      return &*it;
    }
  }
  return nullptr;
}

const Snapshot* CheckpointStore::by_ticket(std::uint64_t ticket) const {
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (it->ticket == ticket) {
      return &*it;
    }
  }
  return nullptr;
}

std::size_t CheckpointStore::purge() {
  // Keep the two newest own RPs and, per foreign owner, the two newest
  // PRPs.  (The paper purges down to the newest pseudo recovery lines; one
  // generation of slack is kept because a failure detected at the very
  // next acceptance test may need to step past the newest RP - the
  // Section 4 pointer loop occasionally reaches the previous line.)
  constexpr std::size_t kGenerations = 2;
  std::vector<std::uint64_t> kept_rp_tickets;
  std::vector<std::pair<ProcessId, std::uint64_t>> kept_prp_keys;
  std::vector<std::size_t> prp_count_per_owner;
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (it->kind == SnapshotKind::kRecoveryPoint) {
      if (kept_rp_tickets.size() < kGenerations) {
        kept_rp_tickets.push_back(it->ticket);
      }
      continue;
    }
    std::size_t owner_kept = 0;
    for (const auto& key : kept_prp_keys) {
      if (key.first == it->rp_owner) {
        ++owner_kept;
      }
    }
    if (owner_kept < kGenerations) {
      kept_prp_keys.push_back({it->rp_owner, it->rp_seq});
    }
  }

  const std::size_t before = snapshots_.size();
  std::vector<Snapshot> kept;
  for (const Snapshot& s : snapshots_) {
    bool keep = false;
    if (s.kind == SnapshotKind::kRecoveryPoint) {
      for (std::uint64_t ticket : kept_rp_tickets) {
        if (s.ticket == ticket) {
          keep = true;
          break;
        }
      }
    } else {
      for (const auto& key : kept_prp_keys) {
        if (key.first == s.rp_owner && key.second == s.rp_seq) {
          keep = true;
          break;
        }
      }
    }
    if (keep) {
      kept.push_back(s);
    }
  }
  snapshots_ = std::move(kept);
  return before - snapshots_.size();
}

std::size_t CheckpointStore::total_bytes() const {
  std::size_t bytes = 0;
  for (const Snapshot& s : snapshots_) {
    bytes += s.state.size() + s.retained_inbox.size() * sizeof(Message);
  }
  return bytes;
}

}  // namespace rbx
