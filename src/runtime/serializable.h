// Process-state serialization for checkpointing.
//
// The recovery block structure (paper Section 1) is "a state saving"
// followed by alternatives and an acceptance test; the state saved must be
// restorable bit-exactly.  User states implement Serializable; WorkState is
// the synthetic workload used by the runtime experiments - a deterministic
// accumulator whose value depends on every work step and every message
// applied, so an incorrect rollback is observable as a checksum mismatch.
//
// States encode through the shared wire layer (support/wire.h), the same
// endian-stable encoding the sweep executors use to ship Scenarios and
// ResultSets between processes - a checkpoint taken on one host is
// restorable on another.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/wire.h"

namespace rbx {

class Serializable {
 public:
  virtual ~Serializable() = default;
  virtual std::vector<std::byte> serialize() const = 0;
  virtual void deserialize(const std::vector<std::byte>& bytes) = 0;
};

// The synthetic workload state: a step counter and a mixing accumulator.
struct WorkState final : Serializable {
  std::uint64_t steps = 0;
  std::uint64_t accumulator = 0;
  std::uint64_t messages_applied = 0;

  // One unit of deterministic work.
  void step(std::uint64_t pid) {
    ++steps;
    accumulator = mix(accumulator ^ (pid * 0x9e3779b97f4a7c15ULL + steps));
  }

  // Applies an application message payload.
  void apply_message(std::int64_t payload) {
    ++messages_applied;
    accumulator = mix(accumulator + static_cast<std::uint64_t>(payload));
  }

  std::int64_t digest() const {
    return static_cast<std::int64_t>(mix(accumulator));
  }

  std::vector<std::byte> serialize() const override {
    wire::Writer w;
    w.u64(steps);
    w.u64(accumulator);
    w.u64(messages_applied);
    return w.data();
  }

  void deserialize(const std::vector<std::byte>& bytes) override {
    // Tolerant like the original POD decode: a wrong-sized blob leaves the
    // state untouched (restore verification then reports the mismatch).
    if (bytes.size() != 3 * sizeof(std::uint64_t)) {
      return;
    }
    wire::Reader r(bytes);
    steps = r.u64();
    accumulator = r.u64();
    messages_applied = r.u64();
  }

  bool operator==(const WorkState& other) const {
    return steps == other.steps && accumulator == other.accumulator &&
           messages_applied == other.messages_applied;
  }

 private:
  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

}  // namespace rbx
