// Process-state serialization for checkpointing.
//
// The recovery block structure (paper Section 1) is "a state saving"
// followed by alternatives and an acceptance test; the state saved must be
// restorable bit-exactly.  User states implement Serializable; WorkState is
// the synthetic workload used by the runtime experiments - a deterministic
// accumulator whose value depends on every work step and every message
// applied, so an incorrect rollback is observable as a checksum mismatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

namespace rbx {

class Serializable {
 public:
  virtual ~Serializable() = default;
  virtual std::vector<std::byte> serialize() const = 0;
  virtual void deserialize(const std::vector<std::byte>& bytes) = 0;
};

// The synthetic workload state: a step counter and a mixing accumulator.
struct WorkState final : Serializable {
  std::uint64_t steps = 0;
  std::uint64_t accumulator = 0;
  std::uint64_t messages_applied = 0;

  // One unit of deterministic work.
  void step(std::uint64_t pid) {
    ++steps;
    accumulator = mix(accumulator ^ (pid * 0x9e3779b97f4a7c15ULL + steps));
  }

  // Applies an application message payload.
  void apply_message(std::int64_t payload) {
    ++messages_applied;
    accumulator = mix(accumulator + static_cast<std::uint64_t>(payload));
  }

  std::int64_t digest() const {
    return static_cast<std::int64_t>(mix(accumulator));
  }

  std::vector<std::byte> serialize() const override {
    std::vector<std::byte> out(sizeof(WorkStatePod));
    const WorkStatePod pod{steps, accumulator, messages_applied};
    std::memcpy(out.data(), &pod, sizeof(pod));
    return out;
  }

  void deserialize(const std::vector<std::byte>& bytes) override {
    WorkStatePod pod{};
    if (bytes.size() == sizeof(pod)) {
      std::memcpy(&pod, bytes.data(), sizeof(pod));
      steps = pod.steps;
      accumulator = pod.accumulator;
      messages_applied = pod.messages_applied;
    }
  }

  bool operator==(const WorkState& other) const {
    return steps == other.steps && accumulator == other.accumulator &&
           messages_applied == other.messages_applied;
  }

 private:
  struct WorkStatePod {
    std::uint64_t steps;
    std::uint64_t accumulator;
    std::uint64_t messages_applied;
  };

  static std::uint64_t mix(std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

}  // namespace rbx
