// Thread-based execution of concurrent processes under the three recovery
// schemes of the paper.
//
// Each process is a std::jthread owning a WorkState, a Mailbox and a
// CheckpointStore.  Processes do deterministic work, exchange application
// messages (the paper's interactions) and checkpoint according to the
// configured scheme:
//
//  * kAsynchronous       - independent recovery points; on an acceptance
//                          test failure the failing thread coordinates a
//                          stop-the-world rollback to the maximal
//                          consistent recovery line (RollbackAnalyzer) -
//                          rollback propagation and domino effects are real
//                          and measured;
//  * kSynchronized       - Section 3's message-based commit: a designated
//                          process periodically broadcasts a request, every
//                          process runs to its next acceptance test,
//                          broadcasts P_ii-ready, records application
//                          messages that arrive while waiting, and
//                          establishes the line when all flags are in; a
//                          failed test at the line aborts the commit and
//                          everyone restores the previous line;
//  * kPseudoRecoveryPoints - Section 4's implantation: every RP broadcasts
//                          an implant request, peers snapshot a PRP "upon
//                          completion of the current instruction" and
//                          answer with a commitment; failures run the
//                          pointer-loop rollback (PrpRollbackPlanner).
//
// Orphan messages (sent after the sender's restart point) are filtered from
// every mailbox during recovery; snapshots retain their pending inbox so
// restored processes replay exactly the messages the paper's Section 4
// step 3 requires.  The report carries protocol counters plus two verified
// invariants: every restart line passed the exact consistency check, and
// every restored state matched its snapshot bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>

#include "support/stats.h"

namespace rbx {

enum class SchemeKind { kAsynchronous, kSynchronized, kPseudoRecoveryPoints };

struct RuntimeConfig {
  std::size_t num_processes = 3;
  SchemeKind scheme = SchemeKind::kAsynchronous;
  std::uint64_t seed = 1;
  // Work steps each process performs before an orderly shutdown.
  std::size_t steps = 400;
  // Per-step probability of sending an application message to a random
  // peer (the interaction rate of the paper, in step units).
  double message_probability = 0.25;
  // Per-step probability of attempting a recovery point (async / PRP).
  double rp_probability = 0.08;
  // Probability that the acceptance test at an RP (or at a sync line)
  // fails, triggering global recovery - the fault injection knob.
  double at_failure_probability = 0.0;
  // Probability that a single alternative inside the local recovery block
  // produces a rejected result (exercises the sequential RB structure).
  double alternate_failure_probability = 0.0;
  // Number of alternatives in each recovery block.
  std::size_t rb_alternates = 2;
  // Synchronized scheme: process 0 issues a request every this many of its
  // own work steps.
  std::size_t sync_period_steps = 50;
  // PRP scheme: restrict rollback to processes that interacted with the
  // pointer (see PrpRollbackPlanner).
  bool scoped_prp = false;
};

struct RuntimeReport {
  // Traffic.
  std::size_t messages_sent = 0;
  std::size_t messages_applied = 0;
  std::size_t fifo_violations = 0;
  // Checkpointing.
  std::size_t rps = 0;
  std::size_t prps = 0;
  std::size_t implant_commits = 0;
  std::size_t snapshots_retained = 0;
  std::size_t snapshot_bytes = 0;
  std::size_t purged_snapshots = 0;
  // Recovery blocks (local alternates).
  std::size_t rb_executions = 0;
  std::size_t rb_local_rollbacks = 0;
  // Global recovery.
  std::size_t at_failures = 0;
  std::size_t recoveries = 0;
  std::size_t orphan_messages_dropped = 0;
  std::size_t domino_restarts = 0;
  RunningStats rollback_tickets;     // sup rollback distance in ticket units
  RunningStats affected_processes;   // per recovery
  // Synchronized scheme.
  std::size_t sync_lines = 0;
  std::size_t sync_aborts = 0;
  RunningStats sync_wait_polls;      // waiting effort per commit
  // Verified invariants.
  bool line_consistency_verified = true;
  bool restore_verified = true;
  bool completed = true;             // run finished without hangs
};

class RecoverySystem {
 public:
  explicit RecoverySystem(RuntimeConfig config);
  ~RecoverySystem();

  RecoverySystem(const RecoverySystem&) = delete;
  RecoverySystem& operator=(const RecoverySystem&) = delete;

  // Runs the configured workload to completion and returns the report.
  // Blocking; spawns num_processes worker threads internally.
  RuntimeReport run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace rbx
