// Bounded-latency MPSC mailbox with FIFO delivery.
//
// Each runtime process owns one mailbox; any thread may push.  A single
// mutex guards the queue (the data and its lock live together, Core
// Guidelines CP.50), and consumers wait on a condition variable with a
// predicate (CP.42).  Delivery preserves global arrival order, which
// implies per-sender FIFO - the paper's consistent-communication
// assumption; receivers can additionally verify it through the per-sender
// sequence numbers.
//
// Recovery needs two privileged operations: `filter` drops queued messages
// that a rollback orphaned, and `drain_all` empties the queue for restores.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>

#include "runtime/message.h"

namespace rbx {

class Mailbox {
 public:
  Mailbox() = default;
  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  void push(Message m);

  // Non-blocking receive.
  std::optional<Message> try_pop();

  // Blocking receive with timeout; nullopt on timeout.
  std::optional<Message> pop_wait(std::chrono::milliseconds timeout);

  // Removes every queued message for which `drop` returns true; returns the
  // number removed.
  std::size_t filter(const std::function<bool(const Message&)>& drop);

  // Empties the queue, returning the content in order.
  std::vector<Message> drain_all();

  // Pushes a batch to the front (restored retained messages are re-queued
  // ahead of newer traffic so replay order matches the original order).
  void push_front_batch(const std::vector<Message>& batch);

  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

}  // namespace rbx
