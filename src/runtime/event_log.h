// Thread-safe global event log for the runtime.
//
// Recovery analysis needs a totally ordered view of RPs, PRPs and message
// deliveries across all threads.  The log hands out monotonically
// increasing tickets under its lock, so the order the events carry is
// exactly the order they were appended - a linearization of the concurrent
// execution.  snapshot() materializes the trace History consumed by the
// rollback analyzers.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "trace/history.h"

namespace rbx {

class EventLog {
 public:
  explicit EventLog(std::size_t num_processes)
      : n_(num_processes), rp_counts_(num_processes, 0) {}

  // Each method returns the ticket assigned to the event.
  std::uint64_t log_recovery_point(ProcessId p, std::uint64_t* rp_seq_out);
  std::uint64_t log_prp(ProcessId p, ProcessId owner, std::uint64_t owner_seq);
  std::uint64_t log_interaction(ProcessId a, ProcessId b);

  // A ticket without an event (used to timestamp failures).
  std::uint64_t now();

  // Materializes the history recorded so far (events get time = ticket).
  History snapshot() const;

  std::uint64_t last_ticket() const;

 private:
  struct Entry {
    EventKind kind;
    std::uint64_t ticket;
    ProcessId process;
    ProcessId peer;
    std::uint64_t rp_seq;
  };

  mutable std::mutex mu_;
  std::size_t n_;
  std::uint64_t next_ticket_ = 1;
  std::vector<std::uint64_t> rp_counts_;
  std::vector<Entry> entries_;
};

}  // namespace rbx
