// Messages exchanged by runtime processes.
//
// One message type serves both application traffic and the control traffic
// of the recovery protocols (sync ready-flags per Section 3, PRP
// implantation requests/commitments per Section 4).  Messages are passed by
// value through the channels (Core Guidelines CP.31).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/history.h"

namespace rbx {

enum class MessageType : std::uint8_t {
  kApp,             // application payload (an "interaction" in the paper)
  kSyncRequest,     // synchronization request (Section 3)
  kSyncReady,       // P_ii-ready broadcast (Section 3 step 2)
  kSyncFailed,      // acceptance test failed at the test line: abort commit
  kImplantRequest,  // PRP implantation request (Section 4 step 1)
  kImplantCommit,   // commitment C_i' (Section 4 step 2)
  kShutdown,        // orderly termination
};

struct Message {
  MessageType type = MessageType::kApp;
  ProcessId sender = 0;
  // Per-sender sequence number; receivers verify FIFO delivery with it
  // (consistent-communication assumption A4).
  std::uint64_t seq = 0;
  // Global event ticket at send time; recovery uses it to identify orphan
  // messages (sent after the sender's restart point).
  std::uint64_t send_ticket = 0;
  // Protocol data: sync line id, RP sequence number, etc.
  std::uint64_t tag = 0;
  // Application payload.
  std::int64_t payload = 0;
};

}  // namespace rbx
