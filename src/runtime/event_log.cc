#include "runtime/event_log.h"

#include "support/check.h"

namespace rbx {

std::uint64_t EventLog::log_recovery_point(ProcessId p,
                                           std::uint64_t* rp_seq_out) {
  const std::scoped_lock lock(mu_);
  RBX_CHECK(p < n_);
  const std::uint64_t ticket = next_ticket_++;
  const std::uint64_t seq = ++rp_counts_[p];
  entries_.push_back({EventKind::kRecoveryPoint, ticket, p, p, seq});
  if (rp_seq_out != nullptr) {
    *rp_seq_out = seq;
  }
  return ticket;
}

std::uint64_t EventLog::log_prp(ProcessId p, ProcessId owner,
                                std::uint64_t owner_seq) {
  const std::scoped_lock lock(mu_);
  RBX_CHECK(p < n_ && owner < n_ && p != owner);
  const std::uint64_t ticket = next_ticket_++;
  entries_.push_back(
      {EventKind::kPseudoRecoveryPoint, ticket, p, owner, owner_seq});
  return ticket;
}

std::uint64_t EventLog::log_interaction(ProcessId a, ProcessId b) {
  const std::scoped_lock lock(mu_);
  RBX_CHECK(a < n_ && b < n_ && a != b);
  const std::uint64_t ticket = next_ticket_++;
  entries_.push_back({EventKind::kInteraction, ticket, a, b, 0});
  return ticket;
}

std::uint64_t EventLog::now() {
  const std::scoped_lock lock(mu_);
  return next_ticket_++;
}

History EventLog::snapshot() const {
  const std::scoped_lock lock(mu_);
  History h(n_);
  for (const Entry& e : entries_) {
    const auto t = static_cast<double>(e.ticket);
    switch (e.kind) {
      case EventKind::kRecoveryPoint:
        h.add_recovery_point(e.process, t);
        break;
      case EventKind::kPseudoRecoveryPoint:
        h.add_pseudo_recovery_point(e.process, t, e.peer, e.rp_seq);
        break;
      case EventKind::kInteraction:
        h.add_interaction(e.process, e.peer, t);
        break;
    }
  }
  return h;
}

std::uint64_t EventLog::last_ticket() const {
  const std::scoped_lock lock(mu_);
  return next_ticket_ - 1;
}

}  // namespace rbx
