// Checkpoint storage for one runtime process.
//
// Holds recovery points (established after a passed acceptance test) and
// pseudo recovery points (implanted on another process's behalf, paper
// Section 4), together with the retained inbox messages - "the messages
// sent to a process by P_i' prior to C_i' have to be retained in the state
// saved" (Section 4 step 3); we retain the entire pending inbox, which
// covers the paper's requirement.
//
// The purge rule follows the paper: "all old RP's and PRP's except those in
// the pseudo recovery lines {PRL_j} ... can be purged when a new recovery
// point is established", i.e. a process keeps its newest RP and, per other
// process, the newest PRP.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "runtime/message.h"
#include "trace/history.h"

namespace rbx {

enum class SnapshotKind { kRecoveryPoint, kPseudoRecoveryPoint };

struct Snapshot {
  SnapshotKind kind = SnapshotKind::kRecoveryPoint;
  // RP: the owning process itself.  PRP: the process whose RP triggered it.
  ProcessId rp_owner = 0;
  std::uint64_t rp_seq = 0;        // owner's RP sequence number
  std::uint64_t ticket = 0;        // global event ticket when recorded
  std::vector<std::byte> state;
  std::vector<Message> retained_inbox;
};

class CheckpointStore {
 public:
  explicit CheckpointStore(ProcessId self) : self_(self) {}

  void save(Snapshot snapshot);

  // Newest own recovery point; nullptr when none.
  const Snapshot* latest_rp() const;
  // Newest own RP recorded strictly before the ticket.
  const Snapshot* rp_before(std::uint64_t ticket) const;
  // PRP implanted for (owner, seq); nullptr when absent (purged).
  const Snapshot* prp_for(ProcessId owner, std::uint64_t seq) const;
  // Any snapshot (RP or PRP) with the exact ticket.
  const Snapshot* by_ticket(std::uint64_t ticket) const;

  // Applies the paper's purge rule.  Returns the number of snapshots freed.
  std::size_t purge();

  std::size_t count() const { return snapshots_.size(); }
  std::size_t total_bytes() const;

 private:
  ProcessId self_;
  std::vector<Snapshot> snapshots_;  // in recording order
};

}  // namespace rbx
