#include "runtime/system.h"

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "runtime/channel.h"
#include "runtime/checkpoint.h"
#include "runtime/event_log.h"
#include "runtime/recovery_block.h"
#include "runtime/serializable.h"
#include "support/check.h"
#include "support/rng.h"
#include "trace/prp_plan.h"
#include "trace/recovery_line.h"
#include "trace/rollback.h"

namespace rbx {

namespace {

// Generous bound on commit-wait polling (1 ms each): a healthy commit
// completes in a few polls; hitting the bound marks the run incomplete
// instead of hanging the test suite.
constexpr std::size_t kMaxCommitPolls = 30000;

// Per-worker counters, merged into the report after the join.
struct WorkerStats {
  std::size_t messages_sent = 0;
  std::size_t messages_applied = 0;
  std::size_t fifo_violations = 0;
  std::size_t rps = 0;
  std::size_t prps = 0;
  std::size_t implant_commits = 0;
  std::size_t rb_executions = 0;
  std::size_t rb_local_rollbacks = 0;
  std::size_t at_failures = 0;
  std::size_t purged = 0;
  std::size_t sync_lines = 0;
  std::size_t sync_aborts = 0;
  std::size_t recoveries_started = 0;
  RunningStats sync_wait_polls;
};

}  // namespace

struct RecoverySystem::Impl {
  explicit Impl(RuntimeConfig config)
      : cfg(config), log(config.num_processes) {
    RBX_CHECK(cfg.num_processes >= 2);
    RBX_CHECK(cfg.rp_probability > 0.0 && cfg.rp_probability <= 1.0);
    Rng master(cfg.seed);
    workers.reserve(cfg.num_processes);
    for (ProcessId p = 0; p < cfg.num_processes; ++p) {
      workers.push_back(std::make_unique<Worker>(p, master.split(),
                                                 cfg.num_processes));
    }
  }

  struct Worker {
    Worker(ProcessId pid, Rng r, std::size_t n)
        : id(pid), rng(r), store(pid), send_seq(n, 0), last_seen_seq(n, 0) {}

    ProcessId id;
    Rng rng;
    WorkState state;
    CheckpointStore store;
    Mailbox inbox;
    std::vector<std::uint64_t> send_seq;       // per destination
    std::vector<std::uint64_t> last_seen_seq;  // per sender (FIFO check)
    std::size_t steps_done = 0;
    bool alternate_bad = false;  // acceptance-test channel for the local RB
    // Synchronized scheme state.
    std::vector<std::uint64_t> pending_lines;
    std::map<std::uint64_t, std::uint64_t> ready_mask;  // line -> sender bits
    std::set<std::uint64_t> failed_lines;
    std::atomic<std::uint64_t> last_line_ticket{0};
    WorkerStats stats;
  };

  RuntimeConfig cfg;
  EventLog log;
  std::vector<std::unique_ptr<Worker>> workers;

  // --- pause / park control (asynchronous and PRP schemes) ---
  std::mutex control_mu;
  std::condition_variable control_cv;
  bool pause = false;                    // guarded by control_mu
  std::size_t parked = 0;                // guarded by control_mu
  std::uint64_t resume_gen = 0;          // guarded by control_mu
  std::atomic<bool> pause_hint{false};   // lock-free fast path
  std::mutex recovery_mu;                // serializes coordinators

  std::atomic<std::size_t> done_count{0};
  std::atomic<bool> shutdown{false};
  std::atomic<std::uint64_t> next_line_id{1};

  // Report fields shared across threads.
  std::atomic<bool> line_consistency_ok{true};
  std::atomic<bool> restore_ok{true};
  std::atomic<bool> completed_ok{true};
  std::atomic<std::size_t> orphans_dropped{0};
  std::atomic<std::size_t> domino_restarts{0};
  std::mutex recovery_stats_mu;
  RunningStats rollback_tickets;        // guarded by recovery_stats_mu
  RunningStats affected_processes;      // guarded by recovery_stats_mu
  std::size_t recoveries = 0;           // guarded by recovery_stats_mu

  // ------------------------------------------------------------------
  // Common helpers
  // ------------------------------------------------------------------

  void broadcast(Worker& w, MessageType type, std::uint64_t tag) {
    for (auto& peer : workers) {
      if (peer->id == w.id) {
        continue;
      }
      Message m;
      m.type = type;
      m.sender = w.id;
      m.tag = tag;
      m.send_ticket = 0;  // control traffic is never orphan-filtered
      peer->inbox.push(m);
    }
  }

  void send_app_message(Worker& w) {
    ProcessId peer = w.rng.uniform_index(cfg.num_processes - 1);
    if (peer >= w.id) {
      ++peer;
    }
    Message m;
    m.type = MessageType::kApp;
    m.sender = w.id;
    m.seq = ++w.send_seq[peer];
    m.send_ticket = log.now();
    m.payload = w.state.digest();
    workers[peer]->inbox.push(m);
    ++w.stats.messages_sent;
  }

  void apply_app_message(Worker& w, const Message& m) {
    // FIFO verification (consistent-communication assumption A4).  A
    // rollback legitimately rewinds the expectation, so the counter is
    // reset on restore; anything else must be monotone.
    if (m.seq <= w.last_seen_seq[m.sender]) {
      ++w.stats.fifo_violations;
    }
    w.last_seen_seq[m.sender] = m.seq;
    w.state.apply_message(m.payload);
    log.log_interaction(w.id, m.sender);
    ++w.stats.messages_applied;
  }

  // Copies the pending inbox without consuming it (single-consumer safe:
  // only the owner thread calls this).
  std::vector<Message> peek_inbox(Worker& w) {
    std::vector<Message> batch = w.inbox.drain_all();
    w.inbox.push_front_batch(batch);
    return batch;
  }

  void record_prp(Worker& w, ProcessId owner, std::uint64_t owner_seq) {
    Snapshot snap;
    snap.kind = SnapshotKind::kPseudoRecoveryPoint;
    snap.rp_owner = owner;
    snap.rp_seq = owner_seq;
    snap.state = w.state.serialize();
    snap.retained_inbox = peek_inbox(w);
    snap.ticket = log.log_prp(w.id, owner, owner_seq);
    w.store.save(std::move(snap));
    w.stats.purged += w.store.purge();
    ++w.stats.prps;
    // Commitment C_i' back to the RP's owner (Section 4 step 2).
    Message c;
    c.type = MessageType::kImplantCommit;
    c.sender = w.id;
    c.tag = owner_seq;
    workers[owner]->inbox.push(c);
  }

  // Establishes a recovery point for w (acceptance test already passed).
  std::uint64_t record_rp(Worker& w, std::vector<Message> retained) {
    std::uint64_t seq = 0;
    Snapshot snap;
    snap.kind = SnapshotKind::kRecoveryPoint;
    snap.rp_owner = w.id;
    snap.state = w.state.serialize();
    snap.retained_inbox = std::move(retained);
    snap.ticket = log.log_recovery_point(w.id, &seq);
    snap.rp_seq = seq;
    w.store.save(std::move(snap));
    ++w.stats.rps;
    if (cfg.scheme == SchemeKind::kPseudoRecoveryPoints) {
      broadcast(w, MessageType::kImplantRequest, seq);
      w.stats.purged += w.store.purge();
    }
    return seq;
  }

  // The local sequential recovery block (primary + alternates).  Returns
  // false when every alternative failed its acceptance test.
  bool run_recovery_block(Worker& w) {
    ++w.stats.rb_executions;
    RecoveryBlock rb([&w](const Serializable&) { return !w.alternate_bad; });
    for (std::size_t a = 0; a < cfg.rb_alternates; ++a) {
      rb.add_alternative([this, &w, a](Serializable& s) {
        auto& ws = static_cast<WorkState&>(s);
        ws.step(w.id + 1000 * (a + 1));
        w.alternate_bad =
            w.rng.bernoulli(cfg.alternate_failure_probability);
      });
    }
    const auto outcome = rb.execute(w.state);
    if (outcome) {
      w.stats.rb_local_rollbacks += outcome->rollbacks;
      return true;
    }
    w.stats.rb_local_rollbacks += cfg.rb_alternates;
    return false;
  }

  // ------------------------------------------------------------------
  // Pause / park machinery (async + PRP recovery)
  // ------------------------------------------------------------------

  void maybe_park(Worker& w) {
    if (!pause_hint.load(std::memory_order_relaxed)) {
      return;
    }
    std::unique_lock lock(control_mu);
    if (!pause) {
      return;
    }
    ++parked;
    control_cv.notify_all();
    const std::uint64_t gen = resume_gen;
    control_cv.wait(lock, [this, gen] { return resume_gen != gen; });
    --parked;
    static_cast<void>(w);
  }

  // ------------------------------------------------------------------
  // Global recovery (asynchronous and PRP schemes)
  // ------------------------------------------------------------------

  // Rebuilds w's inbox from the retained messages of the restored snapshot
  // followed by the traffic queued at recovery time.  Retained entries are
  // *copies* of messages that may still sit in the queue (or may have been
  // superseded by later recoveries), so delivery is re-sequenced: per
  // sender, only monotonically increasing sequence numbers survive -
  // duplicates and stale replays are dropped and counted with the orphans.
  void rebuild_inbox(Worker& w, const Snapshot* snap,
                     std::vector<Message> current_inbox) {
    std::vector<Message> merged;
    if (snap != nullptr) {
      merged.insert(merged.end(), snap->retained_inbox.begin(),
                    snap->retained_inbox.end());
    }
    merged.insert(merged.end(), current_inbox.begin(), current_inbox.end());

    std::vector<std::uint64_t> emitted(cfg.num_processes, 0);
    std::size_t dropped = 0;
    for (const Message& m : merged) {
      if (m.type == MessageType::kApp) {
        if (m.seq <= emitted[m.sender]) {
          ++dropped;
          continue;
        }
        emitted[m.sender] = m.seq;
      }
      w.inbox.push(m);
    }
    orphans_dropped.fetch_add(dropped);
    // Rollback rewinds message streams: reset the FIFO expectations.
    for (auto& s : w.last_seen_seq) {
      s = 0;
    }
  }

  void restore_worker(Worker& w, const Snapshot* snap,
                      std::vector<Message> current_inbox) {
    if (snap != nullptr) {
      w.state.deserialize(snap->state);
      if (w.state.serialize() != snap->state) {
        restore_ok.store(false);
      }
    } else {
      w.state = WorkState{};
      domino_restarts.fetch_add(1);
    }
    rebuild_inbox(w, snap, std::move(current_inbox));
  }

  void handle_global_failure(Worker& w) {
    ++w.stats.at_failures;
    if (recovery_mu.try_lock()) {
      coordinate_recovery(w);
      recovery_mu.unlock();
    } else {
      // Another thread is coordinating; park and let it restore us.
      maybe_park(w);
    }
  }

  void coordinate_recovery(Worker& w) {
    ++w.stats.recoveries_started;
    const std::uint64_t t_f = log.now();
    {
      const std::scoped_lock lock(control_mu);
      pause = true;
      pause_hint.store(true, std::memory_order_relaxed);
    }
    control_cv.notify_all();
    {
      std::unique_lock lock(control_mu);
      control_cv.wait(lock, [this] {
        return parked == cfg.num_processes - 1;
      });
    }
    // Every other worker is parked: their state, stores and mailboxes are
    // safe to touch until resume.
    const History history = log.snapshot();
    const std::size_t n = cfg.num_processes;
    std::vector<const Snapshot*> restore_to(n, nullptr);
    std::vector<bool> affected(n, false);
    std::vector<std::uint64_t> restart_ticket(n, t_f);
    double sup_distance = 0.0;
    std::size_t affected_count = 0;

    auto resolve = [&](ProcessId q, const RestartPoint& pt) {
      affected[q] = true;
      ++affected_count;
      if (pt.is_initial) {
        restore_to[q] = nullptr;
        restart_ticket[q] = 0;
      } else {
        const auto ticket = static_cast<std::uint64_t>(pt.time);
        const Snapshot* snap = workers[q]->store.by_ticket(ticket);
        if (snap == nullptr) {
          // Purged beyond reach (possible in deep PRP pointer loops):
          // restart from scratch, loudly counted as a domino restart.
          restore_to[q] = nullptr;
          restart_ticket[q] = 0;
        } else {
          restore_to[q] = snap;
          restart_ticket[q] = ticket;
        }
      }
      sup_distance = std::max(
          sup_distance, static_cast<double>(t_f) -
                            static_cast<double>(restart_ticket[q]));
    };

    if (cfg.scheme == SchemeKind::kAsynchronous) {
      RollbackAnalyzer analyzer(history);
      const RollbackResult plan =
          analyzer.analyze_failure(w.id, static_cast<double>(t_f));
      if (!RecoveryLineFinder(history).is_consistent(plan.line)) {
        line_consistency_ok.store(false);
      }
      for (ProcessId q = 0; q < n; ++q) {
        if (plan.affected[q]) {
          resolve(q, plan.line.points[q]);
        }
      }
    } else {
      PrpRollbackPlanner planner(history, !cfg.scoped_prp);
      // The runtime cannot know whether the error was local; it runs the
      // paper's general pointer loop.
      const PrpRollbackResult plan =
          planner.plan(w.id, static_cast<double>(t_f));
      for (ProcessId q = 0; q < n; ++q) {
        if (plan.affected[q]) {
          resolve(q, plan.restart[q]);
        }
      }
    }

    // Apply restores, then filter orphan messages everywhere: a message is
    // an orphan when its send postdates the sender's restart point.
    for (ProcessId q = 0; q < n; ++q) {
      if (affected[q]) {
        std::vector<Message> current = workers[q]->inbox.drain_all();
        restore_worker(*workers[q], restore_to[q], std::move(current));
      }
    }
    for (ProcessId q = 0; q < n; ++q) {
      const std::size_t dropped = workers[q]->inbox.filter(
          [&restart_ticket](const Message& m) {
            return m.type == MessageType::kApp &&
                   m.send_ticket > restart_ticket[m.sender];
          });
      orphans_dropped.fetch_add(dropped);
    }

    {
      const std::scoped_lock lock(recovery_stats_mu);
      ++recoveries;
      rollback_tickets.add(sup_distance);
      affected_processes.add(static_cast<double>(affected_count));
    }

    {
      const std::scoped_lock lock(control_mu);
      pause = false;
      pause_hint.store(false, std::memory_order_relaxed);
      ++resume_gen;
    }
    control_cv.notify_all();
  }

  // ------------------------------------------------------------------
  // Asynchronous / PRP worker
  // ------------------------------------------------------------------

  void drain_inbox_async(Worker& w) {
    while (auto m = w.inbox.try_pop()) {
      switch (m->type) {
        case MessageType::kApp:
          apply_app_message(w, *m);
          break;
        case MessageType::kImplantRequest:
          record_prp(w, m->sender, m->tag);
          break;
        case MessageType::kImplantCommit:
          ++w.stats.implant_commits;
          break;
        default:
          break;  // control messages of other schemes: ignore
      }
    }
  }

  void async_worker_main(Worker& w) {
    while (w.steps_done < cfg.steps &&
           !shutdown.load(std::memory_order_relaxed)) {
      maybe_park(w);
      drain_inbox_async(w);
      w.state.step(w.id);
      ++w.steps_done;
      if (w.rng.bernoulli(cfg.message_probability)) {
        send_app_message(w);
      }
      if (w.rng.bernoulli(cfg.rp_probability)) {
        const bool rb_ok = run_recovery_block(w);
        const bool at_fails =
            !rb_ok || w.rng.bernoulli(cfg.at_failure_probability);
        if (at_fails) {
          handle_global_failure(w);
        } else {
          record_rp(w, peek_inbox(w));
        }
      }
    }
    if (done_count.fetch_add(1) + 1 == cfg.num_processes) {
      shutdown.store(true);
    }
    while (!shutdown.load(std::memory_order_relaxed)) {
      maybe_park(w);
      drain_inbox_async(w);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    // Shutdown implies every worker finished its steps, so no further
    // sends: one final drain delivers everything still queued.
    drain_inbox_async(w);
  }

  // ------------------------------------------------------------------
  // Synchronized worker (Section 3 commit protocol)
  // ------------------------------------------------------------------

  void service_messages_sync(Worker& w) {
    while (auto m = w.inbox.try_pop()) {
      switch (m->type) {
        case MessageType::kApp:
          apply_app_message(w, *m);
          break;
        case MessageType::kSyncRequest:
          w.pending_lines.push_back(m->tag);
          break;
        case MessageType::kSyncReady:
          w.ready_mask[m->tag] |= std::uint64_t{1} << m->sender;
          break;
        case MessageType::kSyncFailed:
          w.failed_lines.insert(m->tag);
          break;
        default:
          break;
      }
    }
  }

  void abort_line(Worker& w, std::uint64_t line,
                  std::vector<Message> recorded) {
    static_cast<void>(line);
    ++w.stats.sync_aborts;
    // Restore the previous recovery line's snapshot (or the initial state),
    // replaying its retained messages ahead of the traffic recorded during
    // the aborted commit and whatever else is queued.
    const Snapshot* snap = w.store.latest_rp();
    if (snap != nullptr) {
      w.state.deserialize(snap->state);
      if (w.state.serialize() != snap->state) {
        restore_ok.store(false);
      }
    } else {
      w.state = WorkState{};
      domino_restarts.fetch_add(1);
    }
    std::vector<Message> current = std::move(recorded);
    const std::vector<Message> rest = w.inbox.drain_all();
    current.insert(current.end(), rest.begin(), rest.end());
    rebuild_inbox(w, snap, std::move(current));
    // Orphan filtering uses the committed line tickets of every sender.
    const std::size_t dropped =
        w.inbox.filter([this](const Message& m) {
          return m.type == MessageType::kApp &&
                 m.send_ticket >
                     workers[m.sender]->last_line_ticket.load(
                         std::memory_order_relaxed);
        });
    orphans_dropped.fetch_add(dropped);
  }

  void commit_line(Worker& w, std::uint64_t line) {
    // Step 1: execute the normal process until the next acceptance test.
    // The number of extra work steps is geometric in rp_probability, the
    // discrete analogue of the exponential y_i of the model.
    while (!w.rng.bernoulli(cfg.rp_probability)) {
      w.state.step(w.id);
      if (w.rng.bernoulli(cfg.message_probability)) {
        send_app_message(w);
      }
    }

    // The acceptance test at the test line.
    const bool rb_ok = run_recovery_block(w);
    if (!rb_ok || w.rng.bernoulli(cfg.at_failure_probability)) {
      ++w.stats.at_failures;
      ++w.stats.recoveries_started;
      broadcast(w, MessageType::kSyncFailed, line);
      abort_line(w, line, {});
      return;
    }

    // Step 2: set and broadcast P_ii-ready.
    std::uint64_t mask = w.ready_mask[line] | (std::uint64_t{1} << w.id);
    broadcast(w, MessageType::kSyncReady, line);

    // Step 3: wait for all commitments, recording application messages.
    const std::uint64_t all_mask =
        (std::uint64_t{1} << cfg.num_processes) - 1;
    std::vector<Message> recorded;
    std::size_t polls = 0;
    while (mask != all_mask && w.failed_lines.count(line) == 0) {
      const auto m = w.inbox.pop_wait(std::chrono::milliseconds(1));
      ++polls;
      if (polls > kMaxCommitPolls) {
        completed_ok.store(false);
        break;
      }
      if (!m) {
        continue;
      }
      switch (m->type) {
        case MessageType::kApp:
          recorded.push_back(*m);  // record, do not process (paper step 3)
          break;
        case MessageType::kSyncReady:
          if (m->tag == line) {
            mask |= std::uint64_t{1} << m->sender;
          } else {
            w.ready_mask[m->tag] |= std::uint64_t{1} << m->sender;
          }
          break;
        case MessageType::kSyncFailed:
          w.failed_lines.insert(m->tag);
          break;
        case MessageType::kSyncRequest:
          w.pending_lines.push_back(m->tag);
          break;
        default:
          break;
      }
    }
    w.stats.sync_wait_polls.add(static_cast<double>(polls));
    w.ready_mask.erase(line);

    if (w.failed_lines.count(line) != 0) {
      abort_line(w, line, std::move(recorded));
      return;
    }
    if (mask != all_mask) {
      return;  // poll bound hit; run marked incomplete
    }

    // Step 4: acceptance passed everywhere - record the process state.
    // The recorded messages are retained in the saved state.
    std::uint64_t seq = 0;
    Snapshot snap;
    snap.kind = SnapshotKind::kRecoveryPoint;
    snap.rp_owner = w.id;
    snap.state = w.state.serialize();
    snap.retained_inbox = recorded;
    snap.ticket = log.log_recovery_point(w.id, &seq);
    snap.rp_seq = seq;
    w.last_line_ticket.store(snap.ticket, std::memory_order_relaxed);
    w.store.save(std::move(snap));
    w.stats.purged += w.store.purge();
    ++w.stats.rps;
    if (w.id == 0) {
      ++w.stats.sync_lines;
    }

    // Now process what was recorded during the wait.
    for (const Message& m : recorded) {
      apply_app_message(w, m);
    }
  }

  void sync_worker_main(Worker& w) {
    while (w.steps_done < cfg.steps &&
           !shutdown.load(std::memory_order_relaxed)) {
      service_messages_sync(w);
      if (!w.pending_lines.empty()) {
        const std::uint64_t line = w.pending_lines.front();
        w.pending_lines.erase(w.pending_lines.begin());
        commit_line(w, line);
        continue;
      }
      w.state.step(w.id);
      ++w.steps_done;
      if (w.rng.bernoulli(cfg.message_probability)) {
        send_app_message(w);
      }
      if (w.id == 0 && w.steps_done % cfg.sync_period_steps == 0) {
        const std::uint64_t line = next_line_id.fetch_add(1);
        broadcast(w, MessageType::kSyncRequest, line);
        w.pending_lines.push_back(line);
      }
    }
    done_count.fetch_add(1);
    if (w.id == 0) {
      // The request issuer drains its own pending commits, waits for
      // everyone to finish, then declares shutdown (no new requests can
      // exist afterwards - only P0 creates them).
      while (!w.pending_lines.empty() ||
             done_count.load() < cfg.num_processes) {
        service_messages_sync(w);
        if (!w.pending_lines.empty()) {
          const std::uint64_t line = w.pending_lines.front();
          w.pending_lines.erase(w.pending_lines.begin());
          commit_line(w, line);
          continue;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
      shutdown.store(true);
    } else {
      while (!shutdown.load(std::memory_order_relaxed)) {
        service_messages_sync(w);
        if (!w.pending_lines.empty()) {
          const std::uint64_t line = w.pending_lines.front();
          w.pending_lines.erase(w.pending_lines.begin());
          commit_line(w, line);
          continue;
        }
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    // No sends can follow shutdown: deliver the stragglers.
    service_messages_sync(w);
  }

  // ------------------------------------------------------------------

  RuntimeReport run() {
    {
      std::vector<std::jthread> threads;
      threads.reserve(cfg.num_processes);
      for (auto& worker : workers) {
        Worker* w = worker.get();
        if (cfg.scheme == SchemeKind::kSynchronized) {
          threads.emplace_back([this, w] { sync_worker_main(*w); });
        } else {
          threads.emplace_back([this, w] { async_worker_main(*w); });
        }
      }
      // jthread joins on scope exit.
    }

    RuntimeReport report;
    for (const auto& worker : workers) {
      const WorkerStats& s = worker->stats;
      report.messages_sent += s.messages_sent;
      report.messages_applied += s.messages_applied;
      report.fifo_violations += s.fifo_violations;
      report.rps += s.rps;
      report.prps += s.prps;
      report.implant_commits += s.implant_commits;
      report.rb_executions += s.rb_executions;
      report.rb_local_rollbacks += s.rb_local_rollbacks;
      report.at_failures += s.at_failures;
      report.purged_snapshots += s.purged;
      report.sync_lines += s.sync_lines;
      report.sync_aborts += s.sync_aborts;
      report.sync_wait_polls.merge(s.sync_wait_polls);
      report.snapshots_retained += worker->store.count();
      report.snapshot_bytes += worker->store.total_bytes();
    }
    {
      const std::scoped_lock lock(recovery_stats_mu);
      report.recoveries = recoveries;
      report.rollback_tickets = rollback_tickets;
      report.affected_processes = affected_processes;
    }
    if (cfg.scheme == SchemeKind::kSynchronized) {
      // Sync recoveries are distributed aborts: count each aborted line
      // once, at the process whose acceptance test failed.
      std::size_t aborted_lines = 0;
      for (const auto& worker : workers) {
        aborted_lines += worker->stats.recoveries_started;
      }
      report.recoveries = aborted_lines;
    }
    report.orphan_messages_dropped = orphans_dropped.load();
    report.domino_restarts = domino_restarts.load();
    report.line_consistency_verified = line_consistency_ok.load();
    report.restore_verified = restore_ok.load();
    report.completed = completed_ok.load();
    return report;
  }
};

RecoverySystem::RecoverySystem(RuntimeConfig config)
    : impl_(std::make_unique<Impl>(config)) {}

RecoverySystem::~RecoverySystem() = default;

RuntimeReport RecoverySystem::run() { return impl_->run(); }

}  // namespace rbx
