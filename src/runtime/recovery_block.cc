#include "runtime/recovery_block.h"

#include "support/check.h"

namespace rbx {

RecoveryBlock::RecoveryBlock(AcceptanceTest test) : test_(std::move(test)) {
  RBX_CHECK_MSG(test_ != nullptr, "a recovery block needs an acceptance test");
}

RecoveryBlock& RecoveryBlock::add_alternative(Alternative alt) {
  RBX_CHECK(alt != nullptr);
  alternatives_.push_back(std::move(alt));
  return *this;
}

std::optional<RecoveryBlock::Outcome> RecoveryBlock::execute(
    Serializable& state) const {
  RBX_CHECK_MSG(!alternatives_.empty(),
                "a recovery block needs at least a primary alternative");
  // The recovery point: state saved on entry.
  const std::vector<std::byte> recovery_point = state.serialize();

  Outcome outcome;
  for (std::size_t i = 0; i < alternatives_.size(); ++i) {
    alternatives_[i](state);
    if (test_(state)) {
      outcome.accepted_alternative = i;
      return outcome;
    }
    // Roll back to the recovery point and try the next alternative.
    state.deserialize(recovery_point);
    ++outcome.rollbacks;
  }
  return std::nullopt;
}

}  // namespace rbx
