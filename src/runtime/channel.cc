#include "runtime/channel.h"

namespace rbx {

void Mailbox::push(Message m) {
  {
    const std::scoped_lock lock(mu_);
    queue_.push_back(m);
  }
  cv_.notify_one();
}

std::optional<Message> Mailbox::try_pop() {
  const std::scoped_lock lock(mu_);
  if (queue_.empty()) {
    return std::nullopt;
  }
  Message m = queue_.front();
  queue_.pop_front();
  return m;
}

std::optional<Message> Mailbox::pop_wait(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  if (!cv_.wait_for(lock, timeout, [this] { return !queue_.empty(); })) {
    return std::nullopt;
  }
  Message m = queue_.front();
  queue_.pop_front();
  return m;
}

std::size_t Mailbox::filter(const std::function<bool(const Message&)>& drop) {
  const std::scoped_lock lock(mu_);
  const std::size_t before = queue_.size();
  std::deque<Message> kept;
  for (const Message& m : queue_) {
    if (!drop(m)) {
      kept.push_back(m);
    }
  }
  queue_ = std::move(kept);
  return before - queue_.size();
}

std::vector<Message> Mailbox::drain_all() {
  const std::scoped_lock lock(mu_);
  std::vector<Message> out(queue_.begin(), queue_.end());
  queue_.clear();
  return out;
}

void Mailbox::push_front_batch(const std::vector<Message>& batch) {
  {
    const std::scoped_lock lock(mu_);
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
      queue_.push_front(*it);
    }
  }
  cv_.notify_one();
}

std::size_t Mailbox::size() const {
  const std::scoped_lock lock(mu_);
  return queue_.size();
}

}  // namespace rbx
