// Low-level fd I/O helpers shared by the executor and net layers.
//
// Every process- or host-crossing path in the library (forked workers on
// socketpairs, the TCP cluster transport) needs the same three loops:
// write a whole buffer, read a chunk, and poll a set of fds - each
// retrying EINTR, and each turning "peer went away" into a value instead
// of a signal or an exception.  They used to be copied per call site in
// core/executor.cc; this header is the single implementation.
//
// Error conventions:
//  * send_all returns false when the peer is gone (any write error after
//    EINTR retries; SIGPIPE is suppressed with MSG_NOSIGNAL so a dead
//    peer never kills the caller);
//  * read_some returns the byte count, 0 on EOF, -1 on a non-EINTR error
//    (both mean "this connection is finished" to every caller);
//  * poll_retry returns poll()'s result, retrying EINTR only.
#pragma once

#include <poll.h>

#include <cstddef>
#include <vector>

#include <sys/types.h>

namespace rbx {
namespace io {

// Writes the whole buffer to a socket fd, retrying EINTR and short writes.
// Returns false if the peer is gone (the caller decides whether that is a
// crash or a clean shutdown).
bool send_all(int fd, const void* data, std::size_t size);
bool send_all(int fd, const std::vector<std::byte>& data);

// Same loop over write() for non-socket fds (journal and cache files in
// recov/ append through this).  Returns false on any non-EINTR error.
bool write_all(int fd, const void* data, std::size_t size);
bool write_all(int fd, const std::vector<std::byte>& data);

// One read() of up to `cap` bytes, retrying EINTR.  Returns the byte
// count, 0 on EOF, -1 on error.
ssize_t read_some(int fd, void* buf, std::size_t cap);

// poll() retrying EINTR; timeout_ms as in poll (-1 = block forever).
int poll_retry(pollfd* fds, std::size_t count, int timeout_ms);

}  // namespace io
}  // namespace rbx
