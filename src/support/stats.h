// Statistics accumulators used by the simulators and benches.
//
// RunningStats uses Welford's algorithm (numerically stable single-pass mean
// and variance).  SampleSet retains all samples for exact quantiles and
// two-sided confidence intervals; the reproduction experiments use sample
// counts small enough (<= 10^7 doubles) that retention is the simplest
// correct choice.  Histogram supports both the density plot of Figure 6
// (fixed-width bins) and diagnostics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace rbx {

// Single-pass mean / variance / min / max accumulator.
class RunningStats {
 public:
  void add(double x);

  // Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const;
  // Unbiased sample variance; zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  // Half-width of the normal-approximation confidence interval at the given
  // z value (1.96 ~ 95%).  Zero for fewer than two samples.
  double ci_half_width(double z = 1.96) const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Retains samples; supports exact order statistics.
class SampleSet {
 public:
  void add(double x);
  void reserve(std::size_t n) { samples_.reserve(n); }

  // Merges another set into this one (parallel reduction): samples are
  // appended in the other set's order and the moment accumulators combine
  // via the pairwise Chan et al. update (RunningStats::merge), so the
  // merged mean/variance are numerically stable regardless of how the
  // samples were partitioned.  Order statistics are exact either way -
  // quantile() sorts the union.
  void merge(const SampleSet& other);

  std::size_t count() const { return samples_.size(); }
  double mean() const { return stats_.mean(); }
  double variance() const { return stats_.variance(); }
  double stddev() const { return stats_.stddev(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double ci_half_width(double z = 1.96) const {
    return stats_.ci_half_width(z);
  }

  // Exact sample quantile (linear interpolation between order statistics);
  // q in [0, 1].  Requires at least one sample.
  double quantile(double q) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  RunningStats stats_;
};

// Fixed-width histogram over [lo, hi); samples outside the range land in the
// two overflow counters.  density(i) integrates to ~1 when overflow is empty.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  // Merges another histogram into this one; both must have been built
  // with the same [lo, hi) range and bin count (RBX_CHECKed).  Counts are
  // pure sums, so merging K partial histograms in any order equals
  // filling one histogram with all the samples.
  void merge(const Histogram& other);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }
  double bin_center(std::size_t i) const;
  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t total() const { return total_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }

  // Empirical density estimate at bin i: count / (total * width).
  double density(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

// Relative-error comparison helper used by tests and EXPERIMENTS reporting.
// Returns |a - b| / max(|a|, |b|, floor).
double relative_error(double a, double b, double floor = 1e-12);

}  // namespace rbx
