#include "support/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace rbx {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof(body), fmt, args);
  va_end(args);

  char line[1100];
  const int len =
      std::snprintf(line, sizeof(line), "[%s] %s\n", level_tag(level), body);
  if (len > 0) {
    std::fwrite(line, 1, static_cast<std::size_t>(len), stderr);
  }
}

}  // namespace rbx
