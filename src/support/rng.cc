#include "support/rng.h"

#include <cmath>

#include "support/check.h"

namespace rbx {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) {
    word = sm.next();
  }
  // All-zero state is the one invalid state; splitmix64 cannot produce four
  // consecutive zero outputs, but keep the guard for clarity.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) {
    s_[0] = 0x853c49e6748fea9bULL;
  }
}

std::uint64_t Xoshiro256StarStar::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256StarStar::long_jump() {
  static constexpr std::uint64_t kLongJump[] = {
      0x76e15d3efefdcbbfULL, 0xc5004e441c522fb3ULL, 0x77710069854ee241ULL,
      0x39109bb02acbe635ULL};

  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kLongJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

double Rng::uniform() {
  return static_cast<double>(engine_.next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  RBX_DCHECK(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  RBX_CHECK(n > 0);
  // Lemire-style rejection: accept when the 128-bit product's low half is
  // outside the biased region.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t x = engine_.next();
    const unsigned __int128 m =
        static_cast<unsigned __int128>(x) * static_cast<unsigned __int128>(n);
    const auto low = static_cast<std::uint64_t>(m);
    if (low >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

double Rng::exponential(double rate) {
  RBX_CHECK(rate > 0.0);
  // Inverse transform on (0, 1]; 1 - uniform() is in (0, 1] so log() is
  // finite.
  return -std::log1p(-uniform()) / rate;
}

bool Rng::bernoulli(double p) {
  RBX_DCHECK(p >= 0.0 && p <= 1.0);
  return uniform() < p;
}

std::size_t Rng::categorical(const double* weights, std::size_t count) {
  RBX_CHECK(count > 0);
  double total = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    RBX_DCHECK(weights[i] >= 0.0);
    total += weights[i];
  }
  RBX_CHECK(total > 0.0);
  double u = uniform() * total;
  for (std::size_t i = 0; i < count; ++i) {
    u -= weights[i];
    if (u < 0.0) {
      return i;
    }
  }
  // Floating-point slack: fall back to the last positive weight.
  for (std::size_t i = count; i-- > 0;) {
    if (weights[i] > 0.0) {
      return i;
    }
  }
  return count - 1;
}

Rng Rng::split() {
  Rng child = *this;
  child.engine_.long_jump();
  // Advance the parent as well so successive split() calls differ.
  engine_.next();
  return child;
}

}  // namespace rbx
