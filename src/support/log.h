// Minimal leveled logger.
//
// The runtime substrate uses this for protocol tracing; tests keep it at
// kWarn to stay quiet.  The logger is process-global and thread-safe (each
// message is formatted into one buffer and written with a single fwrite).
#pragma once

#include <string>

namespace rbx {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void set_log_level(LogLevel level);
LogLevel log_level();

// printf-style logging.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace rbx

#define RBX_LOG_DEBUG(...) ::rbx::log_message(::rbx::LogLevel::kDebug, __VA_ARGS__)
#define RBX_LOG_INFO(...) ::rbx::log_message(::rbx::LogLevel::kInfo, __VA_ARGS__)
#define RBX_LOG_WARN(...) ::rbx::log_message(::rbx::LogLevel::kWarn, __VA_ARGS__)
#define RBX_LOG_ERROR(...) ::rbx::log_message(::rbx::LogLevel::kError, __VA_ARGS__)
