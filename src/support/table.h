// Plain-text table rendering for bench output.
//
// Every bench binary reproduces a table or figure from the paper as rows on
// stdout; TextTable keeps that output aligned and greppable, and can also
// emit CSV for downstream plotting.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rbx {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  // Adds a row; the number of cells must match the header count.
  void add_row(std::vector<std::string> cells);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt_int(long long v);

  std::size_t rows() const { return rows_.size(); }

  // Renders with column alignment, a header underline and a title line.
  std::string render(const std::string& title = "") const;

  // RFC-4180-ish CSV (no quoting needed for our numeric content).
  std::string to_csv() const;

  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rbx
