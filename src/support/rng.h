// Deterministic pseudo-random number generation for simulations.
//
// All stochastic components of the library take explicit 64-bit seeds so that
// every experiment in the paper reproduction is replayable bit-for-bit.  The
// core generator is xoshiro256** (Blackman & Vigna), seeded through
// splitmix64; both are tiny, fast and of far higher quality than
// std::minstd_rand while avoiding the platform-dependent behaviour of
// std::default_random_engine.  Distribution sampling is implemented here by
// inverse transform, again to be bit-reproducible across standard libraries
// (std::exponential_distribution is not guaranteed to produce identical
// streams on different implementations).
#pragma once

#include <array>
#include <cstdint>

namespace rbx {

// splitmix64: used to expand a single 64-bit seed into generator state.
// Passes through every 64-bit value exactly once over its period.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// Counter-based split of a cell seed into per-stream seeds: stream k of a
// Monte-Carlo cell simulates with derive_stream_seed(cell_seed, k).  The
// stream index is folded in through an odd multiplier before a full
// splitmix64 round, so streams of one cell - and equal stream indices of
// different cells - land in unrelated regions of the seed space.  A pure
// function of (cell_seed, stream): no shared RNG state, which is what
// keeps a streamed evaluation independent of how many threads ran it.
inline std::uint64_t derive_stream_seed(std::uint64_t cell_seed,
                                        std::uint64_t stream) {
  return SplitMix64(cell_seed ^
                    (0xa0761d6478bd642fULL * (stream + 1)))
      .next();
}

// xoshiro256**: general-purpose 64-bit generator, period 2^256 - 1.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256StarStar(std::uint64_t seed);

  std::uint64_t next();

  // UniformRandomBitGenerator interface so the engine can also feed
  // std::shuffle and friends.
  std::uint64_t operator()() { return next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() { return ~0ULL; }

  // Advances the stream by 2^128 steps; used to derive independent
  // per-process streams from one master seed.
  void long_jump();

 private:
  std::array<std::uint64_t, 4> s_;
};

// Convenience façade bundling the engine with the distribution samplers the
// library needs.  Copyable; copies continue independent deterministic
// streams only if the caller re-seeds, so prefer passing by reference.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9b174a7c15ULL) : engine_(seed) {}

  std::uint64_t next_u64() { return engine_.next(); }

  // Uniform double in [0, 1).  53-bit mantissa construction.
  double uniform();

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  // Uniform integer in [0, n).  n must be positive.  Uses rejection to avoid
  // modulo bias.
  std::uint64_t uniform_index(std::uint64_t n);

  // Exponential with given rate (mean 1/rate).  rate must be positive.
  double exponential(double rate);

  // Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Weights must be non-negative with a positive sum.
  std::size_t categorical(const double* weights, std::size_t count);

  // Derives an independent generator for a sub-component (e.g. a per-process
  // stream) without disturbing this stream's reproducibility contract.
  Rng split();

  Xoshiro256StarStar& engine() { return engine_; }

 private:
  Xoshiro256StarStar engine_;
};

}  // namespace rbx
