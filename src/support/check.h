// Lightweight invariant checking used throughout the library.
//
// RBX_CHECK is always on (it guards library invariants whose violation means
// a programming error; analyses built on a corrupted model would silently
// produce wrong numbers, which is worse than termination).  RBX_DCHECK
// compiles out in release builds and is meant for hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rbx {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "RBX_CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " - " : "", msg);
  std::abort();
}

}  // namespace rbx

#define RBX_CHECK(expr)                                    \
  do {                                                     \
    if (!(expr)) {                                         \
      ::rbx::check_failed(#expr, __FILE__, __LINE__, "");  \
    }                                                      \
  } while (false)

#define RBX_CHECK_MSG(expr, msg)                            \
  do {                                                      \
    if (!(expr)) {                                          \
      ::rbx::check_failed(#expr, __FILE__, __LINE__, msg);  \
    }                                                       \
  } while (false)

#ifdef NDEBUG
#define RBX_DCHECK(expr) \
  do {                   \
  } while (false)
#else
#define RBX_DCHECK(expr) RBX_CHECK(expr)
#endif
