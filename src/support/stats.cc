#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace rbx {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  RBX_CHECK(count_ > 0);
  return min_;
}

double RunningStats::max() const {
  RBX_CHECK(count_ > 0);
  return max_;
}

double RunningStats::ci_half_width(double z) const {
  if (count_ < 2) {
    return 0.0;
  }
  return z * stddev() / std::sqrt(static_cast<double>(count_));
}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  stats_.add(x);
}

void SampleSet::merge(const SampleSet& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  if (!other.samples_.empty()) {
    sorted_ = false;
  }
  stats_.merge(other.stats_);
}

double SampleSet::quantile(double q) const {
  RBX_CHECK(!samples_.empty());
  RBX_CHECK(q >= 0.0 && q <= 1.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  if (samples_.size() == 1) {
    return samples_[0];
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= samples_.size()) {
    return samples_.back();
  }
  const double frac = pos - static_cast<double>(idx);
  return samples_[idx] * (1.0 - frac) + samples_[idx + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  RBX_CHECK(hi > lo);
  RBX_CHECK(bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / width_);
  if (idx >= counts_.size()) {  // numeric edge at hi_
    idx = counts_.size() - 1;
  }
  ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
  RBX_CHECK_MSG(lo_ == other.lo_ && hi_ == other.hi_ &&
                    counts_.size() == other.counts_.size(),
                "Histogram::merge needs identical ranges and bin counts");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  total_ += other.total_;
}

double Histogram::bin_center(std::size_t i) const {
  RBX_CHECK(i < counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double Histogram::density(std::size_t i) const {
  RBX_CHECK(i < counts_.size());
  if (total_ == 0) {
    return 0.0;
  }
  return static_cast<double>(counts_[i]) /
         (static_cast<double>(total_) * width_);
}

double relative_error(double a, double b, double floor) {
  const double scale = std::max({std::fabs(a), std::fabs(b), floor});
  return std::fabs(a - b) / scale;
}

}  // namespace rbx
