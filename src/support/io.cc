#include "support/io.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace rbx {
namespace io {

bool send_all(int fd, const void* data, std::size_t size) {
  const std::byte* p = static_cast<const std::byte*>(data);
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::send(fd, p + off, size - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_all(int fd, const std::vector<std::byte>& data) {
  return send_all(fd, data.data(), data.size());
}

bool write_all(int fd, const void* data, std::size_t size) {
  const std::byte* p = static_cast<const std::byte*>(data);
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, p + off, size - off);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_all(int fd, const std::vector<std::byte>& data) {
  return write_all(fd, data.data(), data.size());
}

ssize_t read_some(int fd, void* buf, std::size_t cap) {
  for (;;) {
    const ssize_t n = ::read(fd, buf, cap);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return n;
  }
}

int poll_retry(pollfd* fds, std::size_t count, int timeout_ms) {
  for (;;) {
    const int ready = ::poll(fds, static_cast<nfds_t>(count), timeout_ms);
    if (ready < 0 && errno == EINTR) {
      continue;
    }
    return ready;
  }
}

}  // namespace io
}  // namespace rbx
