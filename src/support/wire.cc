#include "support/wire.h"

#include <fcntl.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>

namespace rbx {
namespace wire {

// Multi-byte values land with one resize and direct byte stores instead of
// chaining through per-byte push_back - the encode paths (Scenario,
// ResultSet, cell batches) are sequences of these, so the per-call
// overhead is the wire layer's hot loop.
namespace {

inline std::byte* grow(std::vector<std::byte>& buf, std::size_t n) {
  const std::size_t at = buf.size();
  buf.resize(at + n);
  return buf.data() + at;
}

inline void store_le(std::byte* p, std::uint64_t v, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::byte>(v >> (8 * i));
  }
}

}  // namespace

void Writer::u16(std::uint16_t v) { store_le(grow(buf_, 2), v, 2); }

void Writer::u32(std::uint32_t v) { store_le(grow(buf_, 4), v, 4); }

void Writer::u64(std::uint64_t v) { store_le(grow(buf_, 8), v, 8); }

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(const std::string& s) {
  if (s.size() > UINT32_MAX) {
    throw Error("wire: string too long to encode");
  }
  u32(static_cast<std::uint32_t>(s.size()));
  bytes(s.data(), s.size());
}

void Writer::bytes(const void* data, std::size_t size) {
  const std::byte* p = static_cast<const std::byte*>(data);
  buf_.insert(buf_.end(), p, p + size);
}

void Writer::f64_vec(const std::vector<double>& v) {
  if (v.size() > UINT32_MAX) {
    throw Error("wire: vector too long to encode");
  }
  u32(static_cast<std::uint32_t>(v.size()));
  std::byte* p = grow(buf_, v.size() * 8);
  for (double x : v) {
    store_le(p, std::bit_cast<std::uint64_t>(x), 8);
    p += 8;
  }
}

std::size_t Writer::begin_frame(std::uint16_t type) {
  u32(kMagic);
  u16(kVersion);
  u16(type);
  u64(0);  // patched by end_frame
  return buf_.size();
}

void Writer::end_frame(std::size_t mark) {
  if (mark < kFrameHeaderSize || mark > buf_.size()) {
    throw Error("wire: end_frame mark does not match a begin_frame");
  }
  store_le(buf_.data() + mark - 8, buf_.size() - mark, 8);
}

const std::byte* Reader::need(std::size_t n) {
  if (size_ - pos_ < n) {
    throw Error("wire: truncated data (wanted " + std::to_string(n) +
                " bytes, " + std::to_string(size_ - pos_) + " left)");
  }
  const std::byte* p = data_ + pos_;
  pos_ += n;
  return p;
}

std::uint8_t Reader::u8() {
  return static_cast<std::uint8_t>(*need(1));
}

std::uint16_t Reader::u16() {
  const std::byte* p = need(2);
  return static_cast<std::uint16_t>(static_cast<std::uint8_t>(p[0]) |
                                    (static_cast<std::uint8_t>(p[1]) << 8));
}

std::uint32_t Reader::u32() {
  const std::byte* p = need(4);
  std::uint32_t v = 0;
  for (std::size_t i = 4; i-- > 0;) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

std::uint64_t Reader::u64() {
  const std::byte* p = need(8);
  std::uint64_t v = 0;
  for (std::size_t i = 8; i-- > 0;) {
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  }
  return v;
}

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t n = u32();
  const std::byte* p = need(n);
  return std::string(reinterpret_cast<const char*>(p), n);
}

std::vector<double> Reader::f64_vec() {
  const std::uint32_t n = u32();
  // Each element needs 8 bytes; check up front so a corrupt count fails
  // with a truncation error instead of a huge allocation.
  if (remaining() / 8 < n) {
    throw Error("wire: truncated vector (claims " + std::to_string(n) +
                " doubles, " + std::to_string(remaining()) + " bytes left)");
  }
  const std::byte* p = need(std::size_t{n} * 8);
  std::vector<double> out(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint64_t v = 0;
    for (std::size_t b = 8; b-- > 0;) {
      v = (v << 8) | static_cast<std::uint8_t>(p[i * 8 + b]);
    }
    out[i] = std::bit_cast<double>(v);
  }
  return out;
}

void Reader::expect_done() const {
  if (pos_ != size_) {
    throw Error("wire: " + std::to_string(size_ - pos_) +
                " trailing bytes after payload");
  }
}

std::vector<std::byte> seal_frame(std::uint16_t type,
                                  const std::vector<std::byte>& payload) {
  Writer w;
  w.reserve(kFrameHeaderSize + payload.size());
  const std::size_t mark = w.begin_frame(type);
  w.bytes(payload.data(), payload.size());
  w.end_frame(mark);
  return w.take();
}

bool parse_frame(const std::byte* data, std::size_t size, Frame* out,
                 std::size_t* consumed) {
  if (size < kFrameHeaderSize) {
    return false;
  }
  Reader header(data, kFrameHeaderSize);
  if (header.u32() != kMagic) {
    throw Error("wire: bad frame magic (not RBXW data?)");
  }
  const std::uint16_t version = header.u16();
  if (version != kVersion) {
    throw Error("wire: frame version " + std::to_string(version) +
                " (this build reads version " + std::to_string(kVersion) +
                ")");
  }
  const std::uint16_t type = header.u16();
  const std::uint64_t payload_size = header.u64();
  if (payload_size > kMaxFramePayload) {
    throw Error("wire: frame payload length " + std::to_string(payload_size) +
                " exceeds the 1 GiB cap (corrupt length field?)");
  }
  if (size - kFrameHeaderSize < payload_size) {
    return false;
  }
  out->type = type;
  out->payload.assign(data + kFrameHeaderSize,
                      data + kFrameHeaderSize + payload_size);
  *consumed = kFrameHeaderSize + static_cast<std::size_t>(payload_size);
  return true;
}

void write_file(const std::string& path, const std::vector<std::byte>& data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw Error("wire: cannot open '" + path + "' for writing");
  }
  const std::size_t written = std::fwrite(data.data(), 1, data.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != data.size() || !closed) {
    throw Error("wire: short write to '" + path + "'");
  }
}

void write_file_atomic(const std::string& path,
                       const std::vector<std::byte>& data) {
  // Full write to a sibling temp file, fsync, then rename over the
  // target: a reader (or a crash) sees either the old complete file or
  // the new complete file, never a torn one.
  const std::string tmp = path + ".tmp";
  int fd = -1;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    throw Error("wire: cannot open '" + tmp + "' for writing");
  }
  const std::byte* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      ::close(fd);
      ::unlink(tmp.c_str());
      throw Error("wire: short write to '" + tmp + "'");
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  const bool synced = ::fsync(fd) == 0;
  ::close(fd);
  if (!synced || ::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw Error("wire: cannot replace '" + path + "' atomically");
  }
}

std::vector<Frame> read_frames(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw Error("wire: cannot open '" + path + "' for reading");
  }
  std::vector<std::byte> data;
  std::byte chunk[1 << 16];
  std::size_t got = 0;
  while ((got = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    data.insert(data.end(), chunk, chunk + got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw Error("wire: read error on '" + path + "'");
  }
  std::vector<Frame> frames;
  std::size_t pos = 0;
  while (pos < data.size()) {
    Frame frame;
    std::size_t consumed = 0;
    if (!parse_frame(data.data() + pos, data.size() - pos, &frame,
                     &consumed)) {
      throw Error("wire: truncated frame at end of '" + path + "'");
    }
    frames.push_back(std::move(frame));
    pos += consumed;
  }
  return frames;
}

}  // namespace wire
}  // namespace rbx
