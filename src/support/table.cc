#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace rbx {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  RBX_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  RBX_CHECK_MSG(cells.size() == headers_.size(),
                "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TextTable::render(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  if (!title.empty()) {
    out << title << '\n';
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << cells[c];
      out << std::string(widths[c] - cells[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) {
        out << ',';
      }
      out << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

void TextTable::print(std::ostream& os, const std::string& title) const {
  os << render(title);
}

}  // namespace rbx
