// Wire format: the library's one binary encoding.
//
// Sharding a sweep across processes and hosts needs a stable wire form for
// both the experiment definition (Scenario) and its results (ResultSet) -
// the executors in core/executor.h ship cell batches to forked workers and
// collect result frames back, and `--shard=i/k` runs exchange partial
// result files between hosts.  Like the checkpoint state of the recovery
// blocks themselves (runtime/serializable.h), everything on the wire must
// round-trip bit-exactly: a double that changes in the last ulp would break
// the sweep determinism contract (bitwise-identical tables for any
// threads/workers/shards split).
//
// Encoding rules:
//  * all integers little-endian, fixed width (explicit byte shifts - the
//    encoding does not depend on host endianness or struct layout);
//  * doubles as their IEEE-754 bit pattern in a u64 (NaN payloads, signed
//    zeros, infinities and denormals are preserved exactly);
//  * strings and blobs length-prefixed with a u32;
//  * a frame wraps a payload with magic, format version, a type tag and a
//    u64 payload length, so a stream reader can find frame boundaries and
//    reject foreign or truncated data with a clear error.
//
// Decoding is strict: reading past the end, bad magic, an unknown version
// or an over-long length all throw wire::Error (never UB, never a partial
// object).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace rbx {
namespace wire {

// Malformed, truncated or version-incompatible wire data.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Format version of every frame produced by this build.  Bump when the
// payload encodings change incompatibly; readers reject other versions.
inline constexpr std::uint16_t kVersion = 1;

// "RBXW" in little-endian byte order.
inline constexpr std::uint32_t kMagic = 0x57584252u;

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  // IEEE-754 bit pattern; exact for NaN/inf/denormals/signed zero.
  void f64(double v);
  void str(const std::string& s);
  void bytes(const void* data, std::size_t size);
  void f64_vec(const std::vector<double>& v);

  // Pre-sizes the buffer; encode paths that know their payload size call
  // this once instead of growing through reallocations.
  void reserve(std::size_t bytes) { buf_.reserve(bytes); }

  // In-place framing: begin_frame writes a frame header with a zero
  // payload length and returns a mark; end_frame patches the length to
  // everything written since.  Byte-identical to seal_frame() around the
  // same payload, without building the payload in a second buffer.
  std::size_t begin_frame(std::uint16_t type);
  void end_frame(std::size_t mark);

  const std::vector<std::byte>& data() const { return buf_; }
  std::size_t size() const { return buf_.size(); }
  // Moves the buffer out (the writer is empty afterwards); spares the
  // copy when the caller owns the result anyway.
  std::vector<std::byte> take() { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  Reader(const std::byte* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::byte>& data)
      : Reader(data.data(), data.size()) {}
  // The reader only borrows the buffer; binding a temporary would dangle.
  explicit Reader(std::vector<std::byte>&&) = delete;

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  std::string str();
  std::vector<double> f64_vec();

  std::size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  // Throws wire::Error unless the whole buffer was consumed (catches
  // payloads with trailing garbage).
  void expect_done() const;

 private:
  const std::byte* need(std::size_t n);

  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- framing -------------------------------------------------------------
//
// frame := magic u32 | version u16 | type u16 | payload_size u64 | payload

// Header size in bytes.
inline constexpr std::size_t kFrameHeaderSize = 4 + 2 + 2 + 8;

// Sanity cap on a single frame payload (1 GiB); a corrupt length field
// fails fast instead of attempting a huge allocation.
inline constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

struct Frame {
  std::uint16_t type = 0;
  std::vector<std::byte> payload;
};

// Wraps a payload into a full frame.
std::vector<std::byte> seal_frame(std::uint16_t type,
                                  const std::vector<std::byte>& payload);

// Attempts to parse one frame from the front of `data`.  Returns true and
// sets *out and *consumed on success; returns false if more bytes are
// needed; throws wire::Error on bad magic, unknown version or an over-long
// payload length.
bool parse_frame(const std::byte* data, std::size_t size, Frame* out,
                 std::size_t* consumed);

// File helpers for shard partial exchange: a file is a plain sequence of
// frames.  read_frames throws wire::Error on trailing garbage or truncation
// and on I/O failure.
void write_file(const std::string& path, const std::vector<std::byte>& data);
// Crash-safe variant: writes to path + ".tmp", fsyncs, then renames over
// `path` - a crash mid-write leaves the previous complete file (or no
// file), never a torn one.  Throws wire::Error on any failure.
void write_file_atomic(const std::string& path,
                       const std::vector<std::byte>& data);
std::vector<Frame> read_frames(const std::string& path);

}  // namespace wire
}  // namespace rbx
