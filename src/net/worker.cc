#include "net/worker.h"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdio>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "core/backend.h"
#include "core/eval_context.h"
#include "core/executor.h"
#include "fleet/auth.h"
#include "support/io.h"

namespace rbx {
namespace net {

namespace {

bool send_error(FrameConn& conn, const std::string& message) {
  wire::Writer w;
  w.str(message);
  return conn.send(kFrameError, w.data());
}

// Half-close, then drain until the peer hangs up (bounded).  Used when
// refusing a coordinator whose frames may still be unread - it pipelines
// its Hello right after connect, and a close() with unread data makes
// the kernel send RST, which can destroy the refusal frame before the
// coordinator reads it; the "loud" refusal would arrive as a bare
// connection reset.
void linger_close(FrameConn& conn) {
  if (!conn.open()) {
    return;
  }
  ::shutdown(conn.fd(), SHUT_WR);
  std::byte sink[1024];
  for (int i = 0; i < 20; ++i) {  // at most ~2 s for a wedged peer
    pollfd pfd{conn.fd(), POLLIN, 0};
    const int ready = io::poll_retry(&pfd, 1, 100);
    if (ready < 0) {
      break;
    }
    if (ready == 0) {
      continue;
    }
    if (io::read_some(conn.fd(), sink, sizeof(sink)) <= 0) {
      break;  // peer read the error and closed (or died)
    }
  }
}

CellOutcome evaluate_batch_cell(const BatchCell& cell) {
  CellOutcome out;
  if (!cell.has_plan) {
    out.error = "cell carries no evaluation plan (local-only cell_fn?)";
    return out;
  }
  try {
    out.result = evaluate_plan(cell.plan, cell.scenario);
  } catch (const std::exception& e) {
    out.error = e.what();
    if (out.error.empty()) {
      out.error = "cell evaluation threw an exception";
    }
  } catch (...) {
    out.error = "cell evaluation threw a non-standard exception";
  }
  return out;
}

}  // namespace

WorkerServer::WorkerServer(const WorkerOptions& options)
    : options_(options), listener_(options.port) {
  if (!options_.cache_dir.empty()) {
    recov::ResultCache::Options cache_options;
    cache_options.max_bytes = options_.cache_max_bytes;
    cache_ = std::make_unique<recov::ResultCache>(options_.cache_dir,
                                                  cache_options);
    if (!options_.quiet) {
      std::fprintf(stderr,
                   "sweep_workerd: result cache at %s (%zu entries "
                   "recovered)\n",
                   cache_->path().c_str(), cache_->entries());
    }
  }
}

WorkerServer::~WorkerServer() {
  stop();
  reap_sessions(/*all=*/true);
}

void WorkerServer::stop() {
  stopping_.store(true);
  listener_.abort();
  std::lock_guard<std::mutex> lock(sessions_mutex_);
  for (auto& session : sessions_) {
    session->conn.abort();
  }
  if (once_conn_ != nullptr) {
    once_conn_->abort();
  }
}

void WorkerServer::reap_sessions(bool all) {
  std::vector<std::unique_ptr<Session>> taken;
  {
    std::lock_guard<std::mutex> lock(sessions_mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (all || (*it)->done.load()) {
        taken.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: a session in its fail_after path takes the
  // lock to abort its peers, and must never wait on a holder that is
  // itself blocked joining a thread.
  for (auto& session : taken) {
    if (all) {
      session->conn.abort();
    }
    if (session->thread.joinable()) {
      session->thread.join();
    }
  }
}

bool WorkerServer::serve() {
  for (;;) {
    Socket client;
    try {
      client = listener_.accept_client();
    } catch (const Error&) {
      if (stopping_.load() || failed_.load()) {
        break;  // abort()ed listener, not an infrastructure failure
      }
      reap_sessions(/*all=*/true);
      throw;
    }
    if (stopping_.load() || failed_.load()) {
      break;
    }
    if (options_.once) {
      FrameConn conn(std::move(client));
      // Register so stop() can abort a session blocked in recv(); the
      // re-check below closes the register-after-stop race.
      {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        once_conn_ = &conn;
      }
      if (stopping_.load()) {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        once_conn_ = nullptr;
        break;
      }
      if (!options_.quiet) {
        std::fprintf(stderr, "sweep_workerd: coordinator connected\n");
      }
      const bool keep_going = serve_connection(conn);
      if (!options_.quiet) {
        std::fprintf(stderr, "sweep_workerd: coordinator disconnected\n");
      }
      {
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        once_conn_ = nullptr;
      }
      return keep_going;
    }
    reap_sessions(/*all=*/false);
    std::size_t active = 0;
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      for (const auto& session : sessions_) {
        if (!session->done.load()) {
          ++active;
        }
      }
    }
    if (active >= options_.max_coordinators) {
      // Refuse loudly instead of queueing: a silently backlogged
      // coordinator looks exactly like a wedged daemon.  (A coordinator
      // that connects in the instant between a peer's disconnect and
      // its session thread retiring can be refused spuriously - that
      // window is a few instructions wide and indistinguishable from
      // connecting a moment earlier, while the pool really was full.)
      if (!options_.quiet) {
        std::fprintf(stderr,
                     "sweep_workerd: refused a coordinator (at the "
                     "--max-coordinators=%zu cap)\n",
                     options_.max_coordinators);
      }
      // Refuse on a detached thread: the coordinator pipelines its
      // Hello right behind connect(), and closing with it unread would
      // RST the refusal frame away, so the refusal must linger until
      // the peer reads it - but that drain (bounded at ~2 s against a
      // wedged peer) must never stall the accept loop, or refusals
      // would re-create the very backlog they exist to avoid.  The
      // thread owns nothing but the socket, so it may safely outlive
      // the server.
      std::thread([conn = FrameConn(std::move(client)), active,
                   cap = options_.max_coordinators]() mutable {
        send_error(conn, "worker is already serving " +
                             std::to_string(active) +
                             " coordinators (--max-coordinators=" +
                             std::to_string(cap) + ")");
        linger_close(conn);
      }).detach();
      continue;
    }
    auto session = std::make_unique<Session>(std::move(client));
    Session* raw = session.get();
    {
      std::lock_guard<std::mutex> lock(sessions_mutex_);
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw]() {
      if (!options_.quiet) {
        std::fprintf(stderr, "sweep_workerd: coordinator connected\n");
      }
      const bool keep_going = serve_connection(raw->conn);
      // Hang up now - a refused peer waiting for EOF must see it when
      // the session ends, not when the next accept happens to reap this
      // Session.  abort(), which leaves the fd owned, is the call that
      // is safe against a concurrent stop(); the fd itself is released
      // when the session is reaped.
      raw->conn.abort();
      // Retire from the max-coordinators head count the moment the
      // session's work is over (reap_sessions join-blocks until the
      // thread truly exits, so the early store is safe).
      raw->done.store(true);
      if (!options_.quiet) {
        std::fprintf(stderr, "sweep_workerd: coordinator disconnected\n");
      }
      if (!keep_going) {
        // Simulated kill (fail_after): the whole worker counts as dead,
        // so every session - and the accept loop - goes down with it.
        failed_.store(true);
        listener_.abort();
        std::lock_guard<std::mutex> lock(sessions_mutex_);
        for (auto& other : sessions_) {
          if (other.get() != raw) {
            other->conn.abort();
          }
        }
      }
    });
  }
  reap_sessions(/*all=*/true);
  return !failed_.load();
}

bool WorkerServer::serve_connection(FrameConn& conn) {
  // The session thread's intra-cell thread budget: every evaluate_plan
  // below runs under this daemon's configured stream-pool width.
  EvalContextScope eval_scope(
      EvalContext{std::max<std::size_t>(options_.eval_threads, 1)});
  // Per-session state: the handshake, the fail_after counter and the
  // cache opt-out belong to this coordinator's session, not to the
  // daemon - concurrent sessions must not see each other's progress.
  bool handshaken = false;
  bool session_no_cache = false;
  std::size_t batches_served = 0;
  std::size_t cells_evaluated = 0;
  std::size_t cells_cached = 0;
  // The session summary line CI's cache-smoke greps for ("evaluated=0"
  // proves the second run came entirely from the cache); printed on every
  // exit path of a session that served cells.
  struct SessionSummary {
    const std::size_t& evaluated;
    const std::size_t& cached;
    bool quiet;
    ~SessionSummary() {
      if (!quiet && evaluated + cached > 0) {
        std::fprintf(stderr,
                     "sweep_workerd: session done: cells=%zu evaluated=%zu "
                     "cached=%zu\n",
                     evaluated + cached, evaluated, cached);
      }
    }
  } summary{cells_evaluated, cells_cached, options_.quiet};
  for (;;) {
    wire::Frame frame;
    bool got = false;
    try {
      got = conn.recv(&frame);
    } catch (const wire::Error& e) {
      // Corrupt framing: tell the coordinator why, then hang up.  It will
      // re-queue whatever it had in flight with us.
      send_error(conn, std::string("worker: corrupt request stream: ") +
                           e.what());
      return true;
    }
    if (!got) {
      return true;  // coordinator closed the connection
    }
    try {
      if (frame.type == kFrameHello) {
        wire::Reader r(frame.payload);
        const Hello hello = Hello::decode(r);
        r.expect_done();
        if (hello.protocol != kProtocolVersion) {
          send_error(conn, "worker speaks cluster protocol " +
                               std::to_string(kProtocolVersion) +
                               ", coordinator sent " +
                               std::to_string(hello.protocol));
          return true;
        }
        if (hello.wire_version != wire::kVersion) {
          send_error(conn, "worker encodes wire version " +
                               std::to_string(wire::kVersion) +
                               ", coordinator sent " +
                               std::to_string(hello.wire_version));
          return true;
        }
        if (!options_.auth_key.empty()) {
          // Key possession first: the refusal must be a loud error frame
          // (the dispatch loop prints it and gives up), never a hang.
          if ((hello.flags & kHelloFlagAuth) == 0) {
            send_error(conn,
                       "worker requires authentication (--auth-key-file); "
                       "coordinator presented no key");
            return true;
          }
          const std::string challenge = fleet::make_challenge();
          wire::Writer cw;
          cw.str(challenge);
          if (!conn.send(kFrameAuthChallenge, cw.data())) {
            return true;
          }
          wire::Frame reply;
          if (!conn.recv(&reply) || reply.type != kFrameAuthResponse) {
            send_error(conn, "worker: expected an auth response");
            return true;
          }
          wire::Reader rr(reply.payload);
          const std::string mac = rr.str();
          rr.expect_done();
          if (!fleet::mac_equal(
                  mac, fleet::auth_mac(options_.auth_key, challenge))) {
            send_error(conn,
                       "worker: authentication failed (wrong "
                       "--auth-key-file?)");
            return true;
          }
        }
        if ((hello.flags & kHelloFlagLease) != 0 &&
            hello.lease_sig !=
                fleet::lease_sig(options_.auth_key, hello.lease_token)) {
          // A forged (or mis-keyed) registry grant: refuse even though the
          // coordinator holds the transport key - admission is the
          // registry's call, and its signature is the proof.
          send_error(conn,
                     "worker: fleet lease signature is invalid (not issued "
                     "by this fleet's registry?)");
          return true;
        }
        wire::Writer w;
        hello.encode(w);  // echo, fingerprint and flags included
        if (!conn.send(kFrameHelloAck, w.data())) {
          return true;
        }
        handshaken = true;
        session_no_cache = (hello.flags & kHelloFlagNoCache) != 0;
        if (session_no_cache && cache_ != nullptr && !options_.quiet) {
          std::fprintf(stderr,
                       "sweep_workerd: coordinator asked for --no-cache; "
                       "bypassing the result cache this session\n");
        }
      } else if (frame.type == kFrameCellBatch) {
        if (!handshaken) {
          // Work before the handshake would bypass the protocol/wire
          // version and fingerprint checks; refuse and hang up.
          send_error(conn,
                     "worker: cell batch before the Hello handshake "
                     "(refusing unversioned work)");
          return true;
        }
        if (options_.fail_after != 0 &&
            batches_served >= options_.fail_after) {
          // Simulated kill: a batch is in flight and never answered.
          // abort(), not close(): stop() or another failing session may
          // concurrently abort() this FrameConn, and only abort() leaves
          // the fd owned (close() racing abort() could shutdown() a
          // recycled fd).  The fd itself is released when the session is
          // reaped.
          if (!options_.quiet) {
            std::fprintf(stderr,
                         "sweep_workerd: dropping connection after %zu "
                         "batches (--fail-after)\n",
                         batches_served);
          }
          conn.abort();
          return false;
        }
        if (options_.delay_ms != 0) {
          // Deterministic straggler: hold the batch, as a busy or
          // overloaded host would, so steal tests and CI can rely on
          // this worker losing its tail.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(options_.delay_ms));
        }
        wire::Reader r(frame.payload);
        const CellBatch batch = CellBatch::decode(r);
        r.expect_done();
        ResultBatch response;
        response.entries.reserve(batch.cells.size());
        const bool use_cache = cache_ != nullptr && !session_no_cache;
        for (const BatchCell& cell : batch.cells) {
          CellOutcome outcome;
          if (use_cache && cell.has_plan &&
              cache_->lookup(cell.scenario, cell.plan, &outcome.result)) {
            // A hit is the exact bytes an evaluation would produce (the
            // scenario carries the per-cell seed), so the answer is
            // bitwise identical - only faster.
            ++cells_cached;
          } else {
            outcome = evaluate_batch_cell(cell);
            ++cells_evaluated;
            if (use_cache && cell.has_plan && outcome.ok()) {
              cache_->insert(cell.scenario, cell.plan, outcome.result);
            }
          }
          response.entries.push_back({cell.index, std::move(outcome)});
        }
        wire::Writer w;
        response.encode(w);
        if (!conn.send(kFrameResultBatch, w.data())) {
          return true;  // coordinator went away mid-answer
        }
        ++batches_served;
      } else {
        send_error(conn, "worker: unexpected frame type " +
                             std::to_string(frame.type));
        return true;
      }
    } catch (const wire::Error& e) {
      send_error(conn,
                 std::string("worker: malformed payload: ") + e.what());
      return true;
    }
  }
}

}  // namespace net
}  // namespace rbx
