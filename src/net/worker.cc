#include "net/worker.h"

#include <cstdio>
#include <exception>
#include <string>

#include "core/backend.h"
#include "core/executor.h"

namespace rbx {
namespace net {

namespace {

bool send_error(FrameConn& conn, const std::string& message) {
  wire::Writer w;
  w.str(message);
  return conn.send(kFrameError, w.data());
}

CellOutcome evaluate_batch_cell(const BatchCell& cell) {
  CellOutcome out;
  if (!cell.has_plan) {
    out.error = "cell carries no evaluation plan (local-only cell_fn?)";
    return out;
  }
  try {
    out.result = evaluate_plan(cell.plan, cell.scenario);
  } catch (const std::exception& e) {
    out.error = e.what();
    if (out.error.empty()) {
      out.error = "cell evaluation threw an exception";
    }
  } catch (...) {
    out.error = "cell evaluation threw a non-standard exception";
  }
  return out;
}

}  // namespace

WorkerServer::WorkerServer(const WorkerOptions& options)
    : options_(options), listener_(options.port) {}

bool WorkerServer::serve() {
  for (;;) {
    FrameConn conn(listener_.accept_client());
    if (!options_.quiet) {
      std::fprintf(stderr, "sweep_workerd: coordinator connected\n");
    }
    const bool keep_going = serve_connection(conn);
    if (!options_.quiet) {
      std::fprintf(stderr, "sweep_workerd: coordinator disconnected\n");
    }
    if (!keep_going) {
      return false;  // fail_after tripped: this worker is "killed"
    }
    if (options_.once) {
      return true;
    }
  }
}

bool WorkerServer::serve_connection(FrameConn& conn) {
  for (;;) {
    wire::Frame frame;
    bool got = false;
    try {
      got = conn.recv(&frame);
    } catch (const wire::Error& e) {
      // Corrupt framing: tell the coordinator why, then hang up.  It will
      // re-queue whatever it had in flight with us.
      send_error(conn, std::string("worker: corrupt request stream: ") +
                           e.what());
      return true;
    }
    if (!got) {
      return true;  // coordinator closed the connection
    }
    try {
      if (frame.type == kFrameHello) {
        wire::Reader r(frame.payload);
        const Hello hello = Hello::decode(r);
        r.expect_done();
        if (hello.protocol != kProtocolVersion) {
          send_error(conn, "worker speaks cluster protocol " +
                               std::to_string(kProtocolVersion) +
                               ", coordinator sent " +
                               std::to_string(hello.protocol));
          return true;
        }
        if (hello.wire_version != wire::kVersion) {
          send_error(conn, "worker encodes wire version " +
                               std::to_string(wire::kVersion) +
                               ", coordinator sent " +
                               std::to_string(hello.wire_version));
          return true;
        }
        wire::Writer w;
        hello.encode(w);  // echo, fingerprint included
        if (!conn.send(kFrameHelloAck, w.data())) {
          return true;
        }
      } else if (frame.type == kFrameCellBatch) {
        if (options_.fail_after != 0 &&
            batches_served_ >= options_.fail_after) {
          // Simulated kill: a batch is in flight and never answered.
          if (!options_.quiet) {
            std::fprintf(stderr,
                         "sweep_workerd: dropping connection after %zu "
                         "batches (--fail-after)\n",
                         batches_served_);
          }
          conn.close();
          return false;
        }
        wire::Reader r(frame.payload);
        const CellBatch batch = CellBatch::decode(r);
        r.expect_done();
        ResultBatch response;
        response.entries.reserve(batch.cells.size());
        for (const BatchCell& cell : batch.cells) {
          response.entries.push_back(
              {cell.index, evaluate_batch_cell(cell)});
        }
        wire::Writer w;
        response.encode(w);
        if (!conn.send(kFrameResultBatch, w.data())) {
          return true;  // coordinator went away mid-answer
        }
        ++batches_served_;
      } else {
        send_error(conn, "worker: unexpected frame type " +
                             std::to_string(frame.type));
        return true;
      }
    } catch (const wire::Error& e) {
      send_error(conn,
                 std::string("worker: malformed payload: ") + e.what());
      return true;
    }
  }
}

}  // namespace net
}  // namespace rbx
