// The worker side of the cluster transport: a server that evaluates cell
// batches for a remote coordinator.
//
// One WorkerServer owns one listening TCP port and serves coordinators
// one connection at a time (a sweep coordinator holds its connection for
// the whole bench run, sending one Hello per sweep).  Cells arrive as
// kFrameCellBatch frames carrying EvalPlans - the worker has no access to
// bench code, so a cell without a plan is answered with a per-cell error
// - and every batch is answered with one kFrameResultBatch frame.
//
// The logic lives in the library (not in tools/sweep_workerd.cc) so tests
// can run a real worker on a loopback socket inside a thread, including
// the loss path: `fail_after` makes the worker drop its connection with a
// batch in flight after serving N batches, which is how both
// tests/net/cluster_test.cc and the CI smoke job exercise the
// coordinator's re-queue recovery deterministically.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/frame.h"
#include "net/socket.h"

namespace rbx {
namespace net {

struct WorkerOptions {
  std::uint16_t port = 0;      // 0 = ephemeral (tests); port() has the truth
  bool once = false;           // serve one connection, then return
  std::size_t fail_after = 0;  // drop the connection instead of serving
                               // batch N+1 (simulated worker loss); 0 = off
  bool quiet = false;          // no stderr notes
};

class WorkerServer {
 public:
  // Binds and listens immediately (throws net::Error on failure), so the
  // port is known - and connectable - before serve() is entered.
  explicit WorkerServer(const WorkerOptions& options);

  std::uint16_t port() const { return listener_.port(); }

  // Accept-and-serve loop.  Returns false as soon as the fail_after hook
  // trips (the daemon exits non-zero: this worker counts as killed);
  // returns true after one connection with options.once; otherwise loops
  // forever.
  bool serve();

 private:
  // One coordinator connection until EOF; false = fail_after tripped.
  bool serve_connection(FrameConn& conn);

  WorkerOptions options_;
  Listener listener_;
  std::size_t batches_served_ = 0;
};

}  // namespace net
}  // namespace rbx
