// The worker side of the cluster transport: a server that evaluates cell
// batches for remote coordinators.
//
// One WorkerServer owns one listening TCP port and serves coordinators
// *concurrently*: each accepted connection becomes a session on its own
// thread, so a second coordinator no longer wedges in the accept backlog
// while the first one holds its sweep.  Sessions are independent - each
// keeps its own handshake state and batch counter - and cap at
// `max_coordinators`; a coordinator beyond the cap is refused with a
// kFrameError instead of being silently queued.
//
// Cells arrive as kFrameCellBatch frames carrying EvalPlans - the worker
// has no access to bench code, so a cell without a plan is answered with
// a per-cell error - and every batch is answered with one
// kFrameResultBatch frame.  A session must complete the versioned Hello
// handshake before any batch; work sent first is refused with
// kFrameError and the session is hung up (it would bypass the
// protocol/wire-version/fingerprint checks).  Backends are stateless
// singletons (core/backend.h), so sessions evaluate concurrently without
// shared state.
//
// The logic lives in the library (not in tools/sweep_workerd.cc) so tests
// can run a real worker on a loopback socket inside a thread, including
// the loss path: `fail_after` makes the worker drop a session with a
// batch in flight after serving N batches on it, which is how both
// tests/net/cluster_test.cc and the CI smoke job exercise the
// coordinator's re-queue recovery deterministically; `delay_ms` stalls
// every batch, the deterministic "straggler" for work-stealing tests.
//
// A daemon needs no special support for mid-sweep re-admission: a
// coordinator that lost this worker and reconnects is just a new session
// that must complete the same Hello handshake (the coordinator refuses
// its own reconnect if the fingerprint no longer matches its sweep) -
// which is why killing a daemon and restarting it, even mid-sweep, is an
// operation the fleet absorbs (tests/net/hybrid_test.cc and the CI
// re-admission smoke restart one deterministically).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/frame.h"
#include "net/socket.h"
#include "recov/cache.h"

namespace rbx {
namespace net {

struct WorkerOptions {
  std::uint16_t port = 0;      // 0 = ephemeral (tests); port() has the truth
  bool once = false;           // serve one connection, then return
  std::size_t fail_after = 0;  // drop the session instead of serving its
                               // batch N+1 (simulated worker loss); 0 = off
  bool quiet = false;          // no stderr notes
  std::size_t max_coordinators = 4;  // concurrent sessions; beyond this a
                                     // coordinator is refused, not queued
  std::size_t delay_ms = 0;    // artificial stall before each batch - a
                               // deterministic straggler for steal tests
  std::string cache_dir;       // non-empty: remember every evaluated cell
                               // in DIR/cache.rbxj and answer repeats from
                               // it (recov/cache.h); coordinators opt out
                               // per session with the no-cache Hello flag
  std::size_t cache_max_bytes = 0;  // startup size cap for the cache file
                                    // (oldest entries dropped, file
                                    // compacted); 0 = unlimited
  std::string auth_key;        // non-empty: every session must prove key
                               // possession in an HMAC challenge/response
                               // during the Hello handshake, and any lease
                               // it presents must carry a valid signature
                               // under the same key (fleet/auth.h); a
                               // keyless or wrong-keyed coordinator is
                               // refused with a kFrameError, never hung
  std::size_t eval_threads = 1;  // intra-cell thread budget per session
                                 // (the Monte-Carlo stream pool of
                                 // core/eval_context.h); results are
                                 // identical for any value - this daemon
                                 // owns the knob, --eval-threads=N
};

class WorkerServer {
 public:
  // Binds and listens immediately (throws net::Error on failure), so the
  // port is known - and connectable - before serve() is entered.
  explicit WorkerServer(const WorkerOptions& options);
  ~WorkerServer();  // stops and joins any remaining session threads

  std::uint16_t port() const { return listener_.port(); }

  // Accept-and-serve loop.  Returns false as soon as the fail_after hook
  // trips on any session (the daemon exits non-zero: this worker counts
  // as killed, and every other session is dropped with it); returns true
  // after one connection with options.once or after stop(); otherwise
  // loops forever, serving up to max_coordinators sessions at a time.
  bool serve();

  // Thread-safe shutdown: unblocks the accept loop and every session so
  // serve() returns.  Tests use this to stop a serve-forever daemon.
  void stop();

 private:
  // One coordinator session until EOF; false = fail_after tripped.
  bool serve_connection(FrameConn& conn);

  struct Session {
    explicit Session(Socket sock) : conn(std::move(sock)) {}
    FrameConn conn;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  // Joins sessions whose threads have finished; with `all`, aborts and
  // joins every session (shutdown).
  void reap_sessions(bool all);

  WorkerOptions options_;
  Listener listener_;
  // The shared result cache (--cache-dir); sessions consult and fill it
  // concurrently (ResultCache is internally locked).  Null = no cache.
  std::unique_ptr<recov::ResultCache> cache_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> failed_{false};
  std::mutex sessions_mutex_;
  std::list<std::unique_ptr<Session>> sessions_;
  // The once-mode connection, served inline by serve() rather than as a
  // Session; registered here (under sessions_mutex_) so stop() can
  // abort a recv() blocked on it.  Null outside a once-mode session.
  FrameConn* once_conn_ = nullptr;
};

}  // namespace net
}  // namespace rbx
