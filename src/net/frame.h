// Framed traffic over a TCP socket, and the cluster control frames.
//
// The transport carries exactly the wire frames of support/wire.h - magic,
// version, type, length-prefixed payload - so the bytes a coordinator
// sends over TCP are the same bytes MultiProcessExecutor sends over a
// socketpair.  FrameConn adds the two things a stream socket needs:
// buffered reassembly of frames that arrive split across reads, and
// poll-friendly non-greedy fills for the coordinator's multiplexed event
// loop.
//
// On top of the executor-layer frames (kFrameCellBatch / kFrameResultBatch
// / kFrameShardPartial) the cluster protocol adds a handshake:
//
//   coordinator -> worker   kFrameHello    protocol version, wire version,
//                                          grid fingerprint, cell total
//   worker -> coordinator   kFrameHelloAck the same fields echoed back
//   worker -> coordinator   kFrameError    refusal with a message
//
// A Hello opens every sweep (one connection serves many sweeps, each with
// its own grid).  The worker refuses a protocol or wire version it does
// not speak - two builds that would decode each other's doubles
// differently must fail the handshake, not produce wrong tables - and
// echoes the grid fingerprint so the coordinator can detect a worker that
// somehow acked a different sweep.
//
// Each coordinator connection is one *session* with its own state: a
// daemon serving several coordinators at once (net/worker.h) keeps a
// per-session handshake flag and batch counter, and a kFrameCellBatch on
// a session that has not completed a Hello is refused with kFrameError -
// work must never bypass the version/fingerprint checks.  Frames on one
// session stay strictly ordered (one TCP stream), which is what lets a
// coordinator flush a straggler's stale kFrameResultBatch answers while
// waiting for the next sweep's ack: anything the worker still owed from
// the previous sweep arrives before the new HelloAck.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/socket.h"
#include "support/wire.h"

namespace rbx {
namespace net {

// Cluster control frame types (the executor data frames are 1..3).
inline constexpr std::uint16_t kFrameHello = 16;
inline constexpr std::uint16_t kFrameHelloAck = 17;
inline constexpr std::uint16_t kFrameError = 18;

// Version of the cluster conversation itself (handshake, batching rules).
// Bump on incompatible protocol changes; both sides refuse a mismatch.
inline constexpr std::uint32_t kProtocolVersion = 1;

struct Hello {
  std::uint32_t protocol = kProtocolVersion;
  std::uint16_t wire_version = wire::kVersion;
  std::uint64_t fingerprint = 0;  // grid_fingerprint of the sweep
  std::uint64_t total_cells = 0;

  void encode(wire::Writer& w) const;
  static Hello decode(wire::Reader& r);
};

// Framed connection over one TCP socket.
class FrameConn {
 public:
  explicit FrameConn(Socket sock) : sock_(std::move(sock)) {}

  int fd() const { return sock_.fd(); }
  bool open() const { return sock_.valid(); }
  void close() { sock_.close(); }

  // Wakes a recv() blocked in another thread by shutting the socket down
  // (both directions); the blocked call sees EOF and returns false.  The
  // fd itself stays owned by this FrameConn - safe to call while a
  // session thread is inside recv(), unlike close().
  void abort();

  // Seals and writes one frame; false if the peer is gone.
  bool send(std::uint16_t type, const std::vector<std::byte>& payload);

  // Reads once from the socket into the reassembly buffer (use after
  // poll() said the fd is readable).  False on EOF or error - the
  // connection is finished; frames already buffered can still be popped.
  bool fill();

  // Pops the next complete frame out of the buffer.  Throws wire::Error
  // on corrupt framing (bad magic / version / length).
  bool pop(wire::Frame* out);

  // Blocking receive: fill until one frame is complete.  False on EOF
  // before a full frame; throws wire::Error on corrupt framing.
  bool recv(wire::Frame* out);

 private:
  Socket sock_;
  std::vector<std::byte> buf_;
};

}  // namespace net
}  // namespace rbx
