// Framed traffic over a TCP socket, and the cluster control frames.
//
// The transport carries exactly the wire frames of support/wire.h - magic,
// version, type, length-prefixed payload - so the bytes a coordinator
// sends over TCP are the same bytes a ThreadLane or ForkLane worker sees
// on its socketpair.  Since the dispatch refactor the buffered framing
// itself lives in core (rbx::FrameChannel, core/lane.h): FrameConn is that
// class adopting a net::Socket's fd, and the handshake frames (Hello /
// HelloAck / Error) are re-exported here from core for the worker daemon
// and its tests.
//
// On top of the executor-layer frames (kFrameCellBatch / kFrameResultBatch
// / kFrameShardPartial) the cluster protocol adds a handshake:
//
//   coordinator -> worker   kFrameHello    protocol version, wire version,
//                                          grid fingerprint, cell total
//   worker -> coordinator   kFrameHelloAck the same fields echoed back
//   worker -> coordinator   kFrameError    refusal with a message
//
// A Hello opens every sweep (one connection serves many sweeps, each with
// its own grid).  The worker refuses a protocol or wire version it does
// not speak - two builds that would decode each other's doubles
// differently must fail the handshake, not produce wrong tables - and
// echoes the grid fingerprint so the coordinator can detect a worker that
// somehow acked a different sweep.  A re-admitted worker (one that died
// or hung and reconnected mid-sweep) re-runs exactly this handshake
// against the same fingerprint before it may take work again.
//
// Each coordinator connection is one *session* with its own state: a
// daemon serving several coordinators at once (net/worker.h) keeps a
// per-session handshake flag and batch counter, and a kFrameCellBatch on
// a session that has not completed a Hello is refused with kFrameError -
// work must never bypass the version/fingerprint checks.  Frames on one
// session stay strictly ordered (one TCP stream), which is what lets a
// coordinator flush a straggler's stale kFrameResultBatch answers while
// waiting for the next sweep's ack: anything the worker still owed from
// the previous sweep arrives before the new HelloAck.
#pragma once

#include <utility>

#include "core/lane.h"
#include "net/socket.h"

namespace rbx {
namespace net {

// Re-exported cluster control frames and versions (core/lane.h).
using rbx::Hello;
using rbx::kFrameError;
using rbx::kFrameHello;
using rbx::kFrameHelloAck;
using rbx::kProtocolVersion;

// Framed connection over one TCP socket: the shared FrameChannel adopting
// the socket's fd.
class FrameConn : public FrameChannel {
 public:
  explicit FrameConn(Socket sock) : FrameChannel(sock.release()) {}
};

}  // namespace net
}  // namespace rbx
