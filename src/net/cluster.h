// The TCP lane of the dispatch layer, and ClusterExecutor - one sweep
// spanning many hosts.
//
// TcpLane turns remote sweep_workerd daemons into dispatch workers
// (core/lane.h): each endpoint is one LaneWorker whose FrameChannel is a
// TCP connection, cells ship with EvalPlans (a daemon cannot execute the
// sweep's local closures), and every sweep opens with the versioned Hello
// handshake.  The lane is *persistent*: connections survive across run()
// calls, so a bench with several sweeps handshakes each sweep (fresh grid
// fingerprint) over the same connections.
//
// All scheduling - adaptive batch sizing that shrinks toward the tail,
// streaming merge of kResultBatch frames as they arrive, worker-loss
// recovery that re-queues in-flight cells to the survivors, straggler
// work stealing, the parallel deadline handshake - lives in the shared
// core::DispatchCore; this file only supplies the workers.  What the TCP
// lane adds on top is *re-admission*, the paper's backward error recovery
// applied to the pool itself: a lost endpoint (dead socket, hung
// handshake, demoted mid-sweep) is reconnected on a doubling backoff
// timer without ever blocking the live sweep (non-blocking connect,
// finished in the dispatch poll loop), re-handshaken against the same
// grid fingerprint, and rejoins the live pool, taking queue or stolen
// work.  Per-cell seeds make recovery, stealing and re-admission all
// invisible in the printed tables.
//
// ClusterExecutor is the --connect=host:port,... lane configuration: one
// TcpLane over a DispatchCore behind the plain Executor interface.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/dispatch.h"
#include "core/executor.h"
#include "core/lane.h"
#include "net/frame.h"
#include "net/socket.h"

namespace rbx {
namespace net {

struct TcpLaneOptions {
  std::vector<Endpoint> endpoints;  // one per worker daemon
  // Extra connect attempts (200 ms apart) per endpoint on the first
  // sweep, riding out workers that are still starting up.
  int connect_retries = 10;
  bool quiet = false;  // no stderr note on an unreachable endpoint
  // Whether an entirely unreachable pool is fatal (a --connect-only run
  // must fail loudly) or survivable (a hybrid run falls back to its
  // local lanes).
  bool required = true;
  // Base backoff before re-admitting a lost endpoint; doubled per
  // consecutive failed attempt by the dispatch loop.
  int readmit_delay_ms = 500;
  // Pre-shared key for daemons running with --auth-key-file: the Hello
  // goes out auth-flagged and the workers' HMAC challenges are answered
  // (fleet/auth.h).  Empty = unauthenticated handshake.
  std::string auth_key;
};

// Remote sweep_workerd daemons as dispatch workers.
class TcpLane final : public Lane {
 public:
  explicit TcpLane(TcpLaneOptions options);
  ~TcpLane() override;

  std::string name() const override { return "tcp"; }

  // Workers with an open connection right now (before the first start():
  // the configured endpoint count).
  std::size_t live() const;

  // First call: blocking connect to every endpoint (unreachable ones are
  // noted on stderr and left to the re-admission timer; if *all* are
  // unreachable and options.required, throws net::Error).  Later calls
  // reuse the persistent connections.
  void start(std::size_t cell_count, const CellFn& cell_fn,
             std::size_t eval_threads,
             std::vector<LaneWorker*>* out) override;
  void finish() override;  // keeps connections (persistent lane)

 private:
  struct Remote;

  TcpLaneOptions options_;
  bool connected_ = false;
  std::vector<std::unique_ptr<Remote>> remotes_;
};

struct ClusterOptions {
  std::vector<Endpoint> endpoints;  // one per worker daemon
  std::size_t batch_size = 0;       // cells per batch; 0 = adaptive
  // Extra connect attempts (200 ms apart) per endpoint, riding out
  // workers that are still starting up.
  int connect_retries = 10;
  bool quiet = false;  // no stderr notes on worker loss
  // Re-dispatch a straggler's unanswered tail to idle workers once the
  // queue is empty (duplicate answers are deduped; output is unchanged).
  bool steal = false;
  // How long the per-sweep Hello may go unanswered before the worker is
  // demoted to "lost" (it accepted TCP but never spoke the protocol).
  // Must comfortably exceed a straggler's worst batch time, since a
  // stolen-from worker flushes its stale answers ahead of the ack.
  int handshake_timeout_ms = 10000;
  // Mid-sweep re-admission of lost workers (see TcpLaneOptions).
  bool readmit = true;
  int readmit_delay_ms = 500;
  int readmit_max_attempts = 5;
  // Pre-shared key for authenticated daemons (see TcpLaneOptions).
  std::string auth_key;
};

// The --connect lane configuration: one TcpLane over a DispatchCore.
class ClusterExecutor final : public Executor {
 public:
  explicit ClusterExecutor(ClusterOptions options);
  ~ClusterExecutor() override;

  std::string name() const override { return "cluster"; }

  // How remote workers evaluate cells.  Must be set before run() - the
  // cell_fn passed to run() is a local closure the remote side cannot
  // execute, so evaluation goes through serializable plans instead
  // (core/backend.h); SweepRunner sets this per sweep.
  void set_plan_fn(PlanFn plan_fn) { core_.set_plan_fn(std::move(plan_fn)); }

  // Workers still connected (before the first run: endpoints configured).
  std::size_t live_workers() const { return lane_->live(); }

  // Cells ever re-dispatched from a straggler to an idle worker: the
  // lifetime total across run() calls, and the last run() alone (tests
  // and smoke scripts assert the steal path actually fired; duplicated
  // evaluation never shows in the output).
  std::size_t stolen_cells() const { return core_.stolen_cells(); }
  std::size_t stolen_cells_last_run() const {
    return core_.stolen_cells_last_run();
  }

  // Lost workers revived and re-admitted mid-sweep, same split.
  std::size_t readmitted_workers() const {
    return core_.readmitted_workers();
  }
  std::size_t readmitted_workers_last_run() const {
    return core_.readmitted_workers_last_run();
  }

  // Evaluates every cell on the remote workers; outcomes in cell order,
  // bitwise identical to InProcessExecutor running the same plans.  The
  // cell_fn argument is unused (see set_plan_fn).  Throws net::Error if
  // no worker is reachable and std::runtime_error if no plan function is
  // set; worker loss mid-sweep is recovered - and the worker re-admitted
  // when it comes back - not thrown.
  std::vector<CellOutcome> run(const std::vector<Scenario>& cells,
                               const CellFn& cell_fn) const override;

 private:
  std::unique_ptr<TcpLane> lane_;
  mutable DispatchCore core_;
};

}  // namespace net
}  // namespace rbx
