// ClusterExecutor: one sweep spanning many hosts over TCP.
//
// The coordinator side of the cluster transport, and the third Executor
// (after the thread pool and the forked workers): cells are dealt to
// remote sweep_workerd daemons as kFrameCellBatch frames, each cell
// carrying its Scenario and an EvalPlan, and the kResultBatch answers are
// merged into the outcome vector as they stream in - the merge never
// waits for the slowest worker.
//
// Scheduling is adaptive: each idle worker gets a batch sized to roughly
// a quarter of the remaining work per live worker (capped, floor 1), so
// batches start large to amortize round-trips and shrink toward single
// cells as the tail nears - a straggling worker near the end holds at
// most a sliver of the grid.
//
// Worker loss is the distributed analogue of the paper's backward error
// recovery: when a connection drops with a batch in flight, the
// coordinator rolls those cells back to "unevaluated" and re-queues them
// for the surviving workers.  Per-cell seeds make the rerun bitwise
// identical, so a sweep that lost a worker prints the same bytes as one
// that did not.  A cell that was in flight on two lost workers is treated
// as poisonous (it may be what kills them) and fails as a per-cell error
// instead of cascading; if every worker is gone, the remaining cells fail
// the same way - a crashed, disconnected or vanished worker never hangs
// the sweep (hosts that disappear without a FIN/RST are detected by TCP
// keepalive within about a minute).  A worker that is alive but stalled
// is waited on indefinitely, like a slow cell on a local executor.
//
// One ClusterExecutor holds its connections across run() calls: a bench
// with several sweeps handshakes each sweep (fresh grid fingerprint) over
// the same connections.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/executor.h"
#include "net/frame.h"
#include "net/socket.h"

namespace rbx {
namespace net {

struct ClusterOptions {
  std::vector<Endpoint> endpoints;  // one per worker daemon
  std::size_t batch_size = 0;       // cells per batch; 0 = adaptive
  // Extra connect attempts (200 ms apart) per endpoint, riding out
  // workers that are still starting up.
  int connect_retries = 10;
  bool quiet = false;  // no stderr notes on worker loss
};

class ClusterExecutor final : public Executor {
 public:
  explicit ClusterExecutor(ClusterOptions options);
  ~ClusterExecutor() override;

  std::string name() const override { return "cluster"; }

  // How remote workers evaluate cells.  Must be set before run() - the
  // cell_fn passed to run() is a local closure the remote side cannot
  // execute, so evaluation goes through serializable plans instead
  // (core/backend.h); SweepRunner sets this per sweep.
  void set_plan_fn(PlanFn plan_fn) { plan_fn_ = std::move(plan_fn); }

  // Workers still connected (before the first run: endpoints configured).
  std::size_t live_workers() const;

  // Evaluates every cell on the remote workers; outcomes in cell order,
  // bitwise identical to InProcessExecutor running the same plans.  The
  // cell_fn argument is unused (see set_plan_fn).  Throws net::Error if
  // no worker is reachable and std::runtime_error if no plan function is
  // set; worker loss mid-sweep is recovered, not thrown.
  std::vector<CellOutcome> run(const std::vector<Scenario>& cells,
                               const CellFn& cell_fn) const override;

 private:
  struct Remote;

  void ensure_connected() const;

  ClusterOptions options_;
  PlanFn plan_fn_;
  mutable bool connected_ = false;
  mutable std::vector<std::unique_ptr<Remote>> remotes_;
};

}  // namespace net
}  // namespace rbx
