// ClusterExecutor: one sweep spanning many hosts over TCP.
//
// The coordinator side of the cluster transport, and the third Executor
// (after the thread pool and the forked workers): cells are dealt to
// remote sweep_workerd daemons as kFrameCellBatch frames, each cell
// carrying its Scenario and an EvalPlan, and the kResultBatch answers are
// merged into the outcome vector as they stream in - the merge never
// waits for the slowest worker.
//
// Scheduling is adaptive: each idle worker gets a batch sized to roughly
// a quarter of the remaining work per live worker (capped, floor 1), so
// batches start large to amortize round-trips and shrink toward single
// cells as the tail nears - a straggling worker near the end holds at
// most a sliver of the grid.
//
// Worker loss is the distributed analogue of the paper's backward error
// recovery: when a connection drops with a batch in flight, the
// coordinator rolls those cells back to "unevaluated" and re-queues them
// for the surviving workers.  Per-cell seeds make the rerun bitwise
// identical, so a sweep that lost a worker prints the same bytes as one
// that did not.  A cell that was in flight on two lost workers is treated
// as poisonous (it may be what kills them) and fails as a per-cell error
// instead of cascading; if every worker is gone, the remaining cells fail
// the same way - a crashed, disconnected or vanished worker never hangs
// the sweep (hosts that disappear without a FIN/RST are detected by TCP
// keepalive within about a minute).
//
// A worker that is alive but merely *slow* is handled by work stealing
// (options.steal): once the queue is empty, a straggler's unanswered tail
// is re-dispatched to idle workers - rollback-and-retry on an alternate
// executor, the recovery-block pattern again - and whichever answer
// arrives first is committed; the loser's late duplicate is recognized by
// per-cell in-flight accounting and ignored.  Because per-cell seeds make
// both evaluations bitwise identical, stealing can never change the
// printed tables, only the wall-clock.  The handshake is equally
// stall-proof: Hellos go out to every worker at once and the acks are
// collected in parallel under a deadline (options.handshake_timeout_ms);
// a worker that accepts TCP but never answers is demoted to "lost"
// instead of hanging the sweep.
//
// One ClusterExecutor holds its connections across run() calls: a bench
// with several sweeps handshakes each sweep (fresh grid fingerprint) over
// the same connections.  A straggler that still owes a stolen-from batch
// when a sweep completes keeps its connection; its stale answers are
// flushed while waiting for the next sweep's ack (frames on one session
// are strictly ordered, so everything it owed precedes the new HelloAck).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/executor.h"
#include "net/frame.h"
#include "net/socket.h"

namespace rbx {
namespace net {

struct ClusterOptions {
  std::vector<Endpoint> endpoints;  // one per worker daemon
  std::size_t batch_size = 0;       // cells per batch; 0 = adaptive
  // Extra connect attempts (200 ms apart) per endpoint, riding out
  // workers that are still starting up.
  int connect_retries = 10;
  bool quiet = false;  // no stderr notes on worker loss
  // Re-dispatch a straggler's unanswered tail to idle workers once the
  // queue is empty (duplicate answers are deduped; output is unchanged).
  bool steal = false;
  // How long the per-sweep Hello may go unanswered before the worker is
  // demoted to "lost" (it accepted TCP but never spoke the protocol).
  // Must comfortably exceed a straggler's worst batch time, since a
  // stolen-from worker flushes its stale answers ahead of the ack.
  int handshake_timeout_ms = 10000;
};

class ClusterExecutor final : public Executor {
 public:
  explicit ClusterExecutor(ClusterOptions options);
  ~ClusterExecutor() override;

  std::string name() const override { return "cluster"; }

  // How remote workers evaluate cells.  Must be set before run() - the
  // cell_fn passed to run() is a local closure the remote side cannot
  // execute, so evaluation goes through serializable plans instead
  // (core/backend.h); SweepRunner sets this per sweep.
  void set_plan_fn(PlanFn plan_fn) { plan_fn_ = std::move(plan_fn); }

  // Workers still connected (before the first run: endpoints configured).
  std::size_t live_workers() const;

  // Cells ever re-dispatched from a straggler to an idle worker, summed
  // across run() calls (tests and smoke scripts assert the steal path
  // actually fired; duplicated evaluation never shows in the output).
  std::size_t stolen_cells() const { return stolen_cells_; }

  // Evaluates every cell on the remote workers; outcomes in cell order,
  // bitwise identical to InProcessExecutor running the same plans.  The
  // cell_fn argument is unused (see set_plan_fn).  Throws net::Error if
  // no worker is reachable and std::runtime_error if no plan function is
  // set; worker loss mid-sweep is recovered, not thrown.
  std::vector<CellOutcome> run(const std::vector<Scenario>& cells,
                               const CellFn& cell_fn) const override;

 private:
  struct Remote;

  void ensure_connected() const;

  ClusterOptions options_;
  PlanFn plan_fn_;
  mutable bool connected_ = false;
  mutable std::size_t stolen_cells_ = 0;
  mutable std::vector<std::unique_ptr<Remote>> remotes_;
};

}  // namespace net
}  // namespace rbx
