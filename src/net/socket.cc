#include "net/socket.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "support/io.h"

namespace rbx {
namespace net {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Endpoint::to_string() const {
  return host + ":" + std::to_string(port);
}

bool parse_endpoint(const std::string& text, Endpoint* out,
                    std::string* why) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    *why = "expected host:port";
    return false;
  }
  const std::string host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  if (host.empty()) {
    *why = "empty host";
    return false;
  }
  if (port_text.empty()) {
    *why = "empty port";
    return false;
  }
  unsigned long port = 0;
  for (char c : port_text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      *why = "port must be a plain integer";
      return false;
    }
    port = port * 10 + static_cast<unsigned long>(c - '0');
    if (port > 65535) {
      *why = "port must be in 1..65535";
      return false;
    }
  }
  if (port == 0) {
    *why = "port must be in 1..65535";
    return false;
  }
  out->host = host;
  out->port = static_cast<std::uint16_t>(port);
  return true;
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw Error("net: socket() failed: " + std::string(std::strerror(errno)));
  }
  sock_ = Socket(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw Error("net: cannot bind port " + std::to_string(port) + ": " +
                std::strerror(errno));
  }
  if (::listen(fd, 16) != 0) {
    throw Error("net: listen() failed: " + std::string(std::strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw Error("net: getsockname() failed: " +
                std::string(std::strerror(errno)));
  }
  port_ = ntohs(bound.sin_port);
}

namespace {

// Low-latency frames, and keepalive probes so a host that vanishes
// without a FIN/RST (power loss, network partition) surfaces as a dead
// connection within about a minute instead of never.  A peer that is
// alive but stalled still answers probes and is waited on - same
// semantics as a slow local worker.
void tune_conn(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  ::setsockopt(fd, SOL_SOCKET, SO_KEEPALIVE, &one, sizeof(one));
#ifdef TCP_KEEPIDLE
  const int idle = 30;
  const int interval = 10;
  const int count = 3;
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPIDLE, &idle, sizeof(idle));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPINTVL, &interval, sizeof(interval));
  ::setsockopt(fd, IPPROTO_TCP, TCP_KEEPCNT, &count, sizeof(count));
#endif
}

}  // namespace

Socket Listener::accept_client() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      tune_conn(fd);
      return Socket(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    throw Error("net: accept() failed: " +
                std::string(std::strerror(errno)));
  }
}

void Listener::abort() {
  if (!sock_.valid()) {
    return;
  }
  ::shutdown(sock_.fd(), SHUT_RDWR);
  // shutdown() wakes a blocked accept() on Linux, but BSDs return
  // ENOTCONN from it and leave the accept blocked; a best-effort
  // loopback self-connect kicks the loop on every platform (the caller
  // sets its stop flag before abort(), so the woken loop exits whether
  // accept fails or hands back this throwaway connection).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd >= 0) {
    sockaddr_in self{};
    self.sin_family = AF_INET;
    self.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    self.sin_port = htons(port_);
    (void)::connect(fd, reinterpret_cast<const sockaddr*>(&self),
                    sizeof(self));
    ::close(fd);
  }
}

bool finish_connect(int fd, std::string* err) {
  pollfd pfd{fd, POLLOUT, 0};
  if (io::poll_retry(&pfd, 1, -1) < 0) {
    *err = std::strerror(errno);
    return false;
  }
  int soerr = 0;
  socklen_t len = sizeof(soerr);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0) {
    *err = std::strerror(errno);
    return false;
  }
  if (soerr != 0) {
    *err = std::strerror(soerr);
    return false;
  }
  return true;
}

namespace {

// One resolve + connect attempt; returns an invalid Socket and sets *err
// on failure.
Socket try_connect(const Endpoint& endpoint, std::string* err) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  const std::string port_text = std::to_string(endpoint.port);
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(endpoint.host.c_str(), port_text.c_str(), &hints, &res);
  if (rc != 0) {
    *err = "cannot resolve '" + endpoint.host + "': " + gai_strerror(rc);
    return Socket();
  }
  std::string last = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = std::strerror(errno);
      continue;
    }
    // A connect() interrupted by a signal keeps establishing the
    // connection asynchronously; retrying it would get EALREADY (or
    // EISCONN once established) and misreport a successful connect as a
    // failure.  Finish the interrupted attempt with poll + SO_ERROR.
    int connected = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (connected != 0 && errno == EINTR) {
      connected = finish_connect(fd, &last) ? 0 : -1;
    } else if (connected != 0) {
      last = std::strerror(errno);
    }
    if (connected == 0) {
      tune_conn(fd);
      ::freeaddrinfo(res);
      return Socket(fd);
    }
    ::close(fd);
  }
  ::freeaddrinfo(res);
  *err = last;
  return Socket();
}

}  // namespace

bool set_blocking(int fd, bool blocking) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) {
    return false;
  }
  const int want = blocking ? (flags & ~O_NONBLOCK) : (flags | O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

Socket start_connect(const Endpoint& endpoint, bool* in_progress,
                     std::string* err) {
  *in_progress = false;
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  const std::string port_text = std::to_string(endpoint.port);
  addrinfo* res = nullptr;
  const int rc =
      ::getaddrinfo(endpoint.host.c_str(), port_text.c_str(), &hints, &res);
  if (rc != 0) {
    *err = "cannot resolve '" + endpoint.host + "': " + gai_strerror(rc);
    return Socket();
  }
  std::string last = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = std::strerror(errno);
      continue;
    }
    tune_conn(fd);
    if (!set_blocking(fd, false)) {
      last = std::strerror(errno);
      ::close(fd);
      continue;
    }
    const int connected = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (connected == 0) {
      ::freeaddrinfo(res);
      set_blocking(fd, true);
      return Socket(fd);
    }
    if (errno == EINPROGRESS || errno == EINTR) {
      // Establishing asynchronously; the caller polls for writability and
      // finishes with finish_connect().
      ::freeaddrinfo(res);
      *in_progress = true;
      return Socket(fd);
    }
    last = std::strerror(errno);
    ::close(fd);
  }
  ::freeaddrinfo(res);
  *err = last;
  return Socket();
}

Socket connect_to(const Endpoint& endpoint, int retries,
                  int retry_delay_ms) {
  std::string err;
  for (int attempt = 0;; ++attempt) {
    Socket sock = try_connect(endpoint, &err);
    if (sock.valid()) {
      return sock;
    }
    if (attempt >= retries) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(retry_delay_ms));
  }
  throw Error("net: cannot connect to " + endpoint.to_string() + ": " + err);
}

}  // namespace net
}  // namespace rbx
