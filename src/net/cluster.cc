#include "net/cluster.h"

#include <cstdio>
#include <utility>

#include "fleet/auth.h"

namespace rbx {
namespace net {

// --- TcpLane ---------------------------------------------------------------

struct TcpLane::Remote final : LaneWorker {
  Remote(TcpLane* lane, Endpoint ep)
      : lane_(lane), endpoint_(std::move(ep)) {}

  std::string describe() const override { return endpoint_.to_string(); }
  FrameChannel* channel() override { return &channel_; }
  bool needs_plan() const override { return true; }
  bool needs_handshake() const override { return true; }
  void retire() override { channel_.close(); }

  void prepare_hello(Hello& hello) const override {
    if (!lane_->options_.auth_key.empty()) {
      hello.flags |= kHelloFlagAuth;
    }
  }
  std::string auth_response(const std::string& challenge) const override {
    if (lane_->options_.auth_key.empty()) {
      return {};
    }
    return fleet::auth_mac(lane_->options_.auth_key, challenge);
  }

  // Re-admission: only an endpoint that has spoken to us before is worth
  // the backoff timer - one that was never reachable keeps its one
  // blocking chance per process, exactly as before the refactor.
  bool can_revive() const override { return ever_connected_; }
  int revive_delay_ms() const override {
    return lane_->options_.readmit_delay_ms;
  }

  Revive revive() override {
    bool in_progress = false;
    std::string err;
    Socket sock = start_connect(endpoint_, &in_progress, &err);
    if (!sock.valid()) {
      return Revive::kFailed;
    }
    channel_ = FrameChannel(sock.release());
    return in_progress ? Revive::kPending : Revive::kReady;
  }

  bool revive_finish() override {
    std::string err;
    if (!finish_connect(channel_.fd(), &err) ||
        !set_blocking(channel_.fd(), true)) {
      channel_.close();
      return false;
    }
    return true;
  }

  TcpLane* lane_;
  Endpoint endpoint_;
  FrameChannel channel_;
  bool ever_connected_ = false;
};

TcpLane::TcpLane(TcpLaneOptions options) : options_(std::move(options)) {}

TcpLane::~TcpLane() = default;

std::size_t TcpLane::live() const {
  if (!connected_) {
    return options_.endpoints.size();
  }
  std::size_t n = 0;
  for (const auto& remote : remotes_) {
    if (remote->channel_.open()) {
      ++n;
    }
  }
  return n;
}

void TcpLane::start(std::size_t cell_count, const CellFn& cell_fn,
                    std::size_t eval_threads,
                    std::vector<LaneWorker*>* out) {
  (void)cell_count;
  (void)cell_fn;  // remote daemons evaluate plans, never local closures
  (void)eval_threads;  // each daemon owns its budget (--eval-threads)
  if (!connected_) {
    connected_ = true;
    for (const Endpoint& endpoint : options_.endpoints) {
      auto remote = std::make_unique<Remote>(this, endpoint);
      try {
        Socket sock = connect_to(endpoint, options_.connect_retries);
        remote->channel_ = FrameChannel(sock.release());
        remote->ever_connected_ = true;
      } catch (const Error& e) {
        if (!options_.quiet) {
          std::fprintf(stderr,
                       "cluster: %s (continuing without this worker)\n",
                       e.what());
        }
      }
      remotes_.push_back(std::move(remote));
    }
    if (live() == 0 && options_.required) {
      throw Error("cluster: none of the " +
                  std::to_string(options_.endpoints.size()) +
                  " configured workers are reachable");
    }
  }
  for (const auto& remote : remotes_) {
    out->push_back(remote.get());
  }
}

void TcpLane::finish() {
  // Persistent lane: connections (and the knowledge of which endpoints
  // have died) survive into the next sweep.
}

// --- ClusterExecutor -------------------------------------------------------

namespace {

TcpLaneOptions lane_options(const ClusterOptions& options) {
  TcpLaneOptions out;
  out.endpoints = options.endpoints;
  out.connect_retries = options.connect_retries;
  out.quiet = options.quiet;
  out.required = true;
  out.readmit_delay_ms = options.readmit_delay_ms;
  out.auth_key = options.auth_key;
  return out;
}

DispatchOptions core_options(const ClusterOptions& options) {
  DispatchOptions out;
  out.batch_size = options.batch_size;
  out.steal = options.steal;
  out.handshake_timeout_ms = options.handshake_timeout_ms;
  out.quiet = options.quiet;
  out.readmit = options.readmit;
  out.readmit_max_attempts = options.readmit_max_attempts;
  return out;
}

}  // namespace

ClusterExecutor::ClusterExecutor(ClusterOptions options)
    : lane_(std::make_unique<TcpLane>(lane_options(options))),
      core_({lane_.get()}, core_options(options)) {}

ClusterExecutor::~ClusterExecutor() = default;

std::vector<CellOutcome> ClusterExecutor::run(
    const std::vector<Scenario>& cells, const CellFn& cell_fn) const {
  return core_.run(cells, cell_fn);
}

}  // namespace net
}  // namespace rbx
