#include "net/cluster.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <stdexcept>
#include <utility>

#include "support/io.h"

namespace rbx {
namespace net {

struct ClusterExecutor::Remote {
  Endpoint endpoint;
  std::unique_ptr<FrameConn> conn;  // null = lost
  std::vector<std::size_t> outstanding;  // batch in flight, empty = idle

  bool alive() const { return conn != nullptr && conn->open(); }
};

ClusterExecutor::ClusterExecutor(ClusterOptions options)
    : options_(std::move(options)) {}

ClusterExecutor::~ClusterExecutor() = default;

std::size_t ClusterExecutor::live_workers() const {
  if (!connected_) {
    return options_.endpoints.size();
  }
  std::size_t n = 0;
  for (const auto& remote : remotes_) {
    if (remote->alive()) {
      ++n;
    }
  }
  return n;
}

void ClusterExecutor::ensure_connected() const {
  if (connected_) {
    return;
  }
  connected_ = true;
  for (const Endpoint& endpoint : options_.endpoints) {
    auto remote = std::make_unique<Remote>();
    remote->endpoint = endpoint;
    try {
      remote->conn = std::make_unique<FrameConn>(
          connect_to(endpoint, options_.connect_retries));
    } catch (const Error& e) {
      std::fprintf(stderr, "cluster: %s (continuing without this worker)\n",
                   e.what());
    }
    remotes_.push_back(std::move(remote));
  }
  if (live_workers() == 0) {
    throw Error("cluster: none of the " +
                std::to_string(options_.endpoints.size()) +
                " configured workers are reachable");
  }
}

std::vector<CellOutcome> ClusterExecutor::run(
    const std::vector<Scenario>& cells, const CellFn& cell_fn) const {
  (void)cell_fn;  // remote workers evaluate plans, not local closures
  if (!plan_fn_) {
    throw std::runtime_error(
        "ClusterExecutor: no plan function set (this sweep is local-only)");
  }
  std::vector<CellOutcome> outcomes(cells.size());
  if (cells.empty()) {
    return outcomes;
  }
  ensure_connected();

  const auto refuse = [&](Remote& remote, const std::string& why) {
    if (!options_.quiet) {
      std::fprintf(stderr, "cluster: worker %s refused the handshake: %s\n",
                   remote.endpoint.to_string().c_str(), why.c_str());
    }
    remote.conn.reset();
  };

  // --- handshake: one Hello per sweep, sent to every surviving worker at
  // once, acks collected in parallel under a deadline.  A worker that
  // accepted TCP but never answers is demoted to "lost" instead of
  // blocking the sweep, and the sequential Hello round-trip per worker is
  // gone - every worker handshakes in the slowest one's single RTT.
  const std::uint64_t fingerprint = grid_fingerprint(cells);
  Hello hello;
  hello.fingerprint = fingerprint;
  hello.total_cells = cells.size();

  std::vector<Remote*> awaiting;
  for (auto& remote : remotes_) {
    if (!remote->alive()) {
      continue;
    }
    // Stale bookkeeping from a previous sweep that ended with this worker
    // still owing a stolen-from batch; the answers themselves are flushed
    // below, ahead of the ack (one TCP stream keeps frames ordered).
    remote->outstanding.clear();
    wire::Writer w;
    hello.encode(w);
    if (!remote->conn->send(kFrameHello, w.data())) {
      refuse(*remote, "connection lost");
      continue;
    }
    awaiting.push_back(remote.get());
  }

  // Drains buffered frames on an awaiting worker.  True = this worker is
  // settled (acked, or refused and reset); false = still awaiting bytes.
  const auto check_ack = [&](Remote& remote) -> bool {
    for (;;) {
      wire::Frame ack;
      try {
        if (!remote.conn->pop(&ack)) {
          return false;
        }
        if (ack.type == kFrameResultBatch) {
          // A stale answer from the previous sweep (this straggler's tail
          // was stolen and committed elsewhere); discard and keep going.
          continue;
        }
        if (ack.type == kFrameError) {
          wire::Reader r(ack.payload);
          refuse(remote, r.str());
          return true;
        }
        if (ack.type != kFrameHelloAck) {
          refuse(remote,
                 "unexpected frame type " + std::to_string(ack.type));
          return true;
        }
        wire::Reader r(ack.payload);
        const Hello echo = Hello::decode(r);
        r.expect_done();
        if (echo.protocol != hello.protocol ||
            echo.wire_version != hello.wire_version ||
            echo.fingerprint != fingerprint) {
          refuse(remote, "ack does not echo this sweep's handshake");
        }
        return true;
      } catch (const wire::Error& e) {
        refuse(remote, std::string("malformed ack: ") + e.what());
        return true;
      }
    }
  };

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.handshake_timeout_ms);
  // Acks may already sit in the buffers (arrived with earlier traffic).
  awaiting.erase(std::remove_if(awaiting.begin(), awaiting.end(),
                                [&](Remote* r) { return check_ack(*r); }),
                 awaiting.end());
  while (!awaiting.empty()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      for (Remote* remote : awaiting) {
        refuse(*remote,
               "no handshake answer within " +
                   std::to_string(options_.handshake_timeout_ms) +
                   " ms (worker hung, or not speaking the protocol)");
      }
      break;
    }
    const int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() +
        1);
    std::vector<pollfd> fds;
    fds.reserve(awaiting.size());
    for (Remote* remote : awaiting) {
      fds.push_back(pollfd{remote->conn->fd(), POLLIN, 0});
    }
    const int ready = io::poll_retry(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      for (auto& remote : remotes_) {
        remote->conn.reset();
      }
      throw Error("cluster: poll() failed");
    }
    if (ready == 0) {
      continue;  // deadline check at the top of the loop demotes them
    }
    std::vector<Remote*> still;
    for (std::size_t k = 0; k < fds.size(); ++k) {
      Remote& remote = *awaiting[k];
      if (fds[k].revents == 0) {
        still.push_back(&remote);
        continue;
      }
      if (!remote.conn->fill()) {
        // EOF; the ack may still be whole in the buffer.
        if (!check_ack(remote) && remote.alive()) {
          refuse(remote, "connection closed before the ack");
        }
        continue;
      }
      if (!check_ack(remote)) {
        still.push_back(&remote);
      }
    }
    awaiting = std::move(still);
  }
  if (live_workers() == 0) {
    throw Error("cluster: no worker accepted the handshake");
  }

  // --- deal, stream, steal, recover ---
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    queue.push_back(i);
  }
  // Cells already re-run once because a worker died holding them; a
  // second loss marks the cell itself as the problem.
  std::vector<std::uint8_t> requeued(cells.size(), 0);
  // Per-cell in-flight accounting: how many workers currently hold a
  // copy of the cell (stealing replicates it), and whether its outcome
  // is final (first answer wins; late duplicates are ignored).
  std::vector<std::uint8_t> inflight(cells.size(), 0);
  std::vector<std::uint8_t> committed(cells.size(), 0);
  std::size_t resolved = 0;  // committed outcomes, answers and errors alike

  const auto live_count = [&]() { return live_workers(); };

  // Rolls a lost worker's in-flight cells back into the queue (backward
  // error recovery: per-cell seeds make the rerun bitwise identical).  A
  // cell another worker still holds - its thief, or the straggler it was
  // stolen from - needs nothing: the surviving copy answers for it.
  const auto lose = [&](Remote& remote, const std::string& why) {
    if (!options_.quiet) {
      std::fprintf(
          stderr,
          "cluster: lost worker %s (%s); re-queueing %zu in-flight cells\n",
          remote.endpoint.to_string().c_str(), why.c_str(),
          remote.outstanding.size());
    }
    for (std::size_t k = remote.outstanding.size(); k-- > 0;) {
      const std::size_t index = remote.outstanding[k];
      if (inflight[index] > 0) {
        --inflight[index];
      }
      if (committed[index] != 0 || inflight[index] > 0) {
        continue;
      }
      if (requeued[index] != 0) {
        outcomes[index].error =
            "cell was in flight on two lost cluster workers";
        committed[index] = 1;
        ++resolved;
      } else {
        requeued[index] = 1;
        queue.push_front(index);
      }
    }
    remote.outstanding.clear();
    remote.conn.reset();
  };

  // Ships `indices` to a worker as one batch; on success the worker owns
  // them (outstanding + in-flight counts).  False = the send failed and
  // nothing was recorded.
  const auto send_batch = [&](Remote& remote,
                              const std::vector<std::size_t>& indices) {
    CellBatch batch;
    batch.cells.reserve(indices.size());
    for (const std::size_t index : indices) {
      batch.cells.push_back(BatchCell{index, cells[index], true,
                                      plan_fn_(cells[index], index)});
    }
    wire::Writer w;
    batch.encode(w);
    if (!remote.conn->send(kFrameCellBatch, w.data())) {
      return false;
    }
    for (const std::size_t index : indices) {
      ++inflight[index];
    }
    remote.outstanding = indices;
    return true;
  };

  const auto dispatch = [&](Remote& remote) {
    if (queue.empty() || !remote.alive() || !remote.outstanding.empty()) {
      return;
    }
    std::size_t want = options_.batch_size;
    if (want == 0) {
      // Adaptive: about four batches per live worker of what remains,
      // shrinking to single cells at the tail.
      want = std::max<std::size_t>(1, queue.size() / (live_count() * 4));
      want = std::min<std::size_t>(want, 64);
    }
    want = std::min(want, queue.size());
    std::vector<std::size_t> indices;
    indices.reserve(want);
    for (std::size_t k = 0; k < want; ++k) {
      indices.push_back(queue.front());
      queue.pop_front();
    }
    if (!send_batch(remote, indices)) {
      // Died before accepting: the batch was never in flight, put it
      // back in order for someone else.
      for (std::size_t k = indices.size(); k-- > 0;) {
        queue.push_front(indices[k]);
      }
      lose(remote, "send failed");
    }
  };

  // The stall fix: an idle worker with an empty queue takes the back half
  // of the biggest straggler's unanswered tail instead of watching it.
  // Only sole-copy, uncommitted cells qualify (at most two workers ever
  // hold a cell at once); repeated halving covers the whole tail if the
  // straggler never wakes, so one wedged-but-connected host can no longer
  // set the sweep's wall-clock.  The straggler is not written off: it
  // answers its whole batch whenever it recovers, and whichever answer
  // lands first is committed - the duplicate is ignored, so the printed
  // bytes cannot change, only the finish time.
  const auto steal_for = [&](Remote& thief) {
    if (!options_.steal || !queue.empty() || !thief.alive() ||
        !thief.outstanding.empty()) {
      return;
    }
    Remote* victim = nullptr;
    std::vector<std::size_t> best;
    for (auto& remote : remotes_) {
      if (remote.get() == &thief || !remote->alive() ||
          remote->outstanding.empty()) {
        continue;
      }
      std::vector<std::size_t> stealable;
      for (const std::size_t index : remote->outstanding) {
        if (committed[index] == 0 && inflight[index] == 1) {
          stealable.push_back(index);
        }
      }
      if (stealable.size() > best.size()) {
        victim = remote.get();
        best = std::move(stealable);
      }
    }
    if (victim == nullptr || best.empty()) {
      return;
    }
    const std::size_t take = (best.size() + 1) / 2;
    const std::vector<std::size_t> stolen(best.end() -
                                              static_cast<std::ptrdiff_t>(take),
                                          best.end());
    if (!send_batch(thief, stolen)) {
      lose(thief, "send failed");
      return;
    }
    stolen_cells_ += take;
    if (!options_.quiet) {
      std::fprintf(stderr,
                   "cluster: stole %zu tail cell(s) from straggler %s for "
                   "idle worker %s\n",
                   take, victim->endpoint.to_string().c_str(),
                   thief.endpoint.to_string().c_str());
    }
  };

  // Drains complete frames from a worker; false = the worker was lost.
  const auto process_frames = [&](Remote& remote) {
    for (;;) {
      if (!remote.alive()) {
        return false;
      }
      wire::Frame frame;
      try {
        if (!remote.conn->pop(&frame)) {
          return true;
        }
        if (frame.type == kFrameError) {
          wire::Reader r(frame.payload);
          lose(remote, "worker error: " + r.str());
          return false;
        }
        if (frame.type != kFrameResultBatch) {
          lose(remote, "unexpected frame type " + std::to_string(frame.type));
          return false;
        }
        wire::Reader r(frame.payload);
        const ResultBatch batch = ResultBatch::decode(r);
        r.expect_done();
        // Streaming merge with dedup: outcomes land the moment this batch
        // arrives - unless a thief's copy of a cell already did.
        resolved +=
            apply_result_batch(batch, remote.outstanding, outcomes,
                               &committed);
        for (const std::size_t index : remote.outstanding) {
          if (inflight[index] > 0) {
            --inflight[index];
          }
        }
      } catch (const wire::Error& e) {
        // apply_result_batch applies atomically - a throwing batch
        // committed nothing, so every outstanding cell re-queues.
        lose(remote, std::string("malformed results: ") + e.what());
        return false;
      }
      remote.outstanding.clear();
      dispatch(remote);
    }
  };

  for (auto& remote : remotes_) {
    dispatch(*remote);
  }
  for (auto& remote : remotes_) {
    steal_for(*remote);  // more workers than batches: duplicate up front
  }

  for (;;) {
    if (resolved == cells.size()) {
      // Every outcome is final.  A straggler may still owe a batch whose
      // cells a thief answered; its stale frames are flushed while
      // waiting for the next sweep's ack.
      break;
    }
    std::vector<pollfd> fds;
    std::vector<Remote*> fd_remote;
    for (auto& remote : remotes_) {
      if (remote->alive() && !remote->outstanding.empty()) {
        fds.push_back(pollfd{remote->conn->fd(), POLLIN, 0});
        fd_remote.push_back(remote.get());
      }
    }
    if (fds.empty()) {
      break;  // nothing in flight anywhere
    }
    if (io::poll_retry(fds.data(), fds.size(), -1) < 0) {
      // Infrastructure failure: drop every connection before throwing so
      // a catching caller is not left with half a sweep wedged remotely.
      for (auto& remote : remotes_) {
        remote->conn.reset();
      }
      throw Error("cluster: poll() failed");
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) {
        continue;
      }
      Remote& remote = *fd_remote[k];
      if (!remote.alive()) {
        continue;  // lost while handling an earlier fd this round
      }
      if (!remote.conn->fill()) {
        // EOF or read error.  Frames may still be whole in the buffer
        // (answered, then died): apply them before declaring the loss.
        if (process_frames(remote) && remote.alive()) {
          if (remote.outstanding.empty()) {
            remote.conn.reset();  // clean EOF between batches
          } else {
            lose(remote, "connection closed");
          }
        }
        continue;
      }
      process_frames(remote);
    }
    // A loss above may have re-queued cells while other workers sit
    // idle; hand the rolled-back work out again, then let anyone still
    // idle steal a straggler's tail.
    for (auto& remote : remotes_) {
      if (remote->alive() && remote->outstanding.empty()) {
        dispatch(*remote);
      }
    }
    for (auto& remote : remotes_) {
      steal_for(*remote);
    }
  }

  // Anything still queued could not be placed (every worker is gone).
  while (!queue.empty()) {
    outcomes[queue.front()].error =
        "no cluster worker remaining to evaluate this cell";
    queue.pop_front();
  }
  return outcomes;
}

}  // namespace net
}  // namespace rbx
