#include "net/cluster.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <stdexcept>
#include <utility>

#include "support/io.h"

namespace rbx {
namespace net {

struct ClusterExecutor::Remote {
  Endpoint endpoint;
  std::unique_ptr<FrameConn> conn;  // null = lost
  std::vector<std::size_t> outstanding;  // batch in flight, empty = idle

  bool alive() const { return conn != nullptr && conn->open(); }
};

ClusterExecutor::ClusterExecutor(ClusterOptions options)
    : options_(std::move(options)) {}

ClusterExecutor::~ClusterExecutor() = default;

std::size_t ClusterExecutor::live_workers() const {
  if (!connected_) {
    return options_.endpoints.size();
  }
  std::size_t n = 0;
  for (const auto& remote : remotes_) {
    if (remote->alive()) {
      ++n;
    }
  }
  return n;
}

void ClusterExecutor::ensure_connected() const {
  if (connected_) {
    return;
  }
  connected_ = true;
  for (const Endpoint& endpoint : options_.endpoints) {
    auto remote = std::make_unique<Remote>();
    remote->endpoint = endpoint;
    try {
      remote->conn = std::make_unique<FrameConn>(
          connect_to(endpoint, options_.connect_retries));
    } catch (const Error& e) {
      std::fprintf(stderr, "cluster: %s (continuing without this worker)\n",
                   e.what());
    }
    remotes_.push_back(std::move(remote));
  }
  if (live_workers() == 0) {
    throw Error("cluster: none of the " +
                std::to_string(options_.endpoints.size()) +
                " configured workers are reachable");
  }
}

std::vector<CellOutcome> ClusterExecutor::run(
    const std::vector<Scenario>& cells, const CellFn& cell_fn) const {
  (void)cell_fn;  // remote workers evaluate plans, not local closures
  if (!plan_fn_) {
    throw std::runtime_error(
        "ClusterExecutor: no plan function set (this sweep is local-only)");
  }
  std::vector<CellOutcome> outcomes(cells.size());
  if (cells.empty()) {
    return outcomes;
  }
  ensure_connected();

  // --- handshake: one Hello per sweep on every surviving connection ---
  const std::uint64_t fingerprint = grid_fingerprint(cells);
  Hello hello;
  hello.fingerprint = fingerprint;
  hello.total_cells = cells.size();
  for (auto& remote : remotes_) {
    if (!remote->alive()) {
      continue;
    }
    const auto refuse = [&](const std::string& why) {
      if (!options_.quiet) {
        std::fprintf(stderr, "cluster: worker %s refused the handshake: %s\n",
                     remote->endpoint.to_string().c_str(), why.c_str());
      }
      remote->conn.reset();
    };
    wire::Writer w;
    hello.encode(w);
    if (!remote->conn->send(kFrameHello, w.data())) {
      refuse("connection lost");
      continue;
    }
    try {
      wire::Frame ack;
      if (!remote->conn->recv(&ack)) {
        refuse("connection closed before the ack");
      } else if (ack.type == kFrameError) {
        wire::Reader r(ack.payload);
        refuse(r.str());
      } else if (ack.type != kFrameHelloAck) {
        refuse("unexpected frame type " + std::to_string(ack.type));
      } else {
        wire::Reader r(ack.payload);
        const Hello echo = Hello::decode(r);
        r.expect_done();
        if (echo.protocol != hello.protocol ||
            echo.wire_version != hello.wire_version ||
            echo.fingerprint != fingerprint) {
          refuse("ack does not echo this sweep's handshake");
        }
      }
    } catch (const wire::Error& e) {
      refuse(std::string("malformed ack: ") + e.what());
    }
  }
  if (live_workers() == 0) {
    throw Error("cluster: no worker accepted the handshake");
  }

  // --- deal, stream, recover ---
  std::deque<std::size_t> queue;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    queue.push_back(i);
  }
  // Cells already re-run once because a worker died holding them; a
  // second loss marks the cell itself as the problem.
  std::vector<std::uint8_t> requeued(cells.size(), 0);

  const auto live_count = [&]() { return live_workers(); };

  // Rolls a lost worker's in-flight cells back into the queue (backward
  // error recovery: per-cell seeds make the rerun bitwise identical).
  const auto lose = [&](Remote& remote, const std::string& why) {
    if (!options_.quiet) {
      std::fprintf(
          stderr,
          "cluster: lost worker %s (%s); re-queueing %zu in-flight cells\n",
          remote.endpoint.to_string().c_str(), why.c_str(),
          remote.outstanding.size());
    }
    for (std::size_t k = remote.outstanding.size(); k-- > 0;) {
      const std::size_t index = remote.outstanding[k];
      if (requeued[index] != 0) {
        outcomes[index].error =
            "cell was in flight on two lost cluster workers";
      } else {
        requeued[index] = 1;
        queue.push_front(index);
      }
    }
    remote.outstanding.clear();
    remote.conn.reset();
  };

  const auto dispatch = [&](Remote& remote) {
    if (queue.empty() || !remote.alive()) {
      return;
    }
    std::size_t want = options_.batch_size;
    if (want == 0) {
      // Adaptive: about four batches per live worker of what remains,
      // shrinking to single cells at the tail.
      want = std::max<std::size_t>(1, queue.size() / (live_count() * 4));
      want = std::min<std::size_t>(want, 64);
    }
    want = std::min(want, queue.size());
    CellBatch batch;
    batch.cells.reserve(want);
    std::vector<std::size_t> indices;
    indices.reserve(want);
    for (std::size_t k = 0; k < want; ++k) {
      const std::size_t index = queue.front();
      queue.pop_front();
      batch.cells.push_back(BatchCell{index, cells[index], true,
                                      plan_fn_(cells[index], index)});
      indices.push_back(index);
    }
    wire::Writer w;
    batch.encode(w);
    if (!remote.conn->send(kFrameCellBatch, w.data())) {
      // Died before accepting: the batch was never in flight, put it
      // back in order for someone else.
      for (std::size_t k = indices.size(); k-- > 0;) {
        queue.push_front(indices[k]);
      }
      lose(remote, "send failed");
      return;
    }
    remote.outstanding = std::move(indices);
  };

  // Drains complete frames from a worker; false = the worker was lost.
  const auto process_frames = [&](Remote& remote) {
    for (;;) {
      if (!remote.alive()) {
        return false;
      }
      wire::Frame frame;
      try {
        if (!remote.conn->pop(&frame)) {
          return true;
        }
        if (frame.type == kFrameError) {
          wire::Reader r(frame.payload);
          lose(remote, "worker error: " + r.str());
          return false;
        }
        if (frame.type != kFrameResultBatch) {
          lose(remote, "unexpected frame type " + std::to_string(frame.type));
          return false;
        }
        wire::Reader r(frame.payload);
        const ResultBatch batch = ResultBatch::decode(r);
        r.expect_done();
        // Streaming merge: outcomes land the moment this batch arrives,
        // while other workers are still computing theirs.
        apply_result_batch(batch, remote.outstanding, outcomes);
      } catch (const wire::Error& e) {
        lose(remote, std::string("malformed results: ") + e.what());
        return false;
      }
      remote.outstanding.clear();
      dispatch(remote);
    }
  };

  for (auto& remote : remotes_) {
    dispatch(*remote);
  }

  for (;;) {
    std::vector<pollfd> fds;
    std::vector<Remote*> fd_remote;
    for (auto& remote : remotes_) {
      if (remote->alive() && !remote->outstanding.empty()) {
        fds.push_back(pollfd{remote->conn->fd(), POLLIN, 0});
        fd_remote.push_back(remote.get());
      }
    }
    if (fds.empty()) {
      break;  // nothing in flight anywhere
    }
    if (io::poll_retry(fds.data(), fds.size(), -1) < 0) {
      // Infrastructure failure: drop every connection before throwing so
      // a catching caller is not left with half a sweep wedged remotely.
      for (auto& remote : remotes_) {
        remote->conn.reset();
      }
      throw Error("cluster: poll() failed");
    }
    for (std::size_t k = 0; k < fds.size(); ++k) {
      if (fds[k].revents == 0) {
        continue;
      }
      Remote& remote = *fd_remote[k];
      if (!remote.alive()) {
        continue;  // lost while handling an earlier fd this round
      }
      if (!remote.conn->fill()) {
        // EOF or read error.  Frames may still be whole in the buffer
        // (answered, then died): apply them before declaring the loss.
        if (process_frames(remote) && remote.alive()) {
          if (remote.outstanding.empty()) {
            remote.conn.reset();  // clean EOF between batches
          } else {
            lose(remote, "connection closed");
          }
        }
        continue;
      }
      process_frames(remote);
    }
    // A loss above may have re-queued cells while other workers sit
    // idle; hand the rolled-back work out again.
    for (auto& remote : remotes_) {
      if (remote->alive() && remote->outstanding.empty()) {
        dispatch(*remote);
      }
    }
  }

  // Anything still queued could not be placed (every worker is gone).
  while (!queue.empty()) {
    outcomes[queue.front()].error =
        "no cluster worker remaining to evaluate this cell";
    queue.pop_front();
  }
  return outcomes;
}

}  // namespace net
}  // namespace rbx
