// TCP plumbing for the cluster transport: RAII sockets, endpoint parsing,
// listeners and connectors.
//
// Everything here is deliberately boring POSIX: blocking sockets, IPv4/
// IPv6 via getaddrinfo, EINTR handled by support/io.h.  The interesting
// protocol lives one layer up in net/frame.h (framed wire traffic) and
// net/cluster.h / net/worker.h (coordinator and worker roles).
//
// Errors are net::Error (a std::runtime_error): a refused connection, an
// unresolvable host or a failed bind are infrastructure failures the
// caller decides how to survive - the ClusterExecutor skips dead
// endpoints, the worker daemon exits.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace rbx {
namespace net {

class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Owns one socket fd; move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void close();
  // Hands ownership of the fd to the caller (e.g. a core FrameChannel);
  // this Socket becomes invalid.
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

// "host:port" as named on a --connect list.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const;
};

// Strict "host:port" parse: non-empty host, port a plain integer in
// 1..65535.  Returns false and sets *why on malformed input (the bench
// flag parser turns that into an exit-2 usage error).
bool parse_endpoint(const std::string& text, Endpoint* out,
                    std::string* why);

// Listening TCP socket.  Port 0 binds an ephemeral port; port() reports
// the actual one (tests use this to avoid collisions).  Binds all
// interfaces - workers are meant to be reachable from other hosts.
class Listener {
 public:
  explicit Listener(std::uint16_t port);

  std::uint16_t port() const { return port_; }
  // Blocks until a client connects; throws net::Error on failure (and
  // after abort(), which is how a stopping daemon reports "no more
  // clients" rather than a real infrastructure error).
  Socket accept_client();

  // Wakes a blocked accept_client() in another thread: shuts the
  // listening socket down and nudges it with a throwaway loopback
  // connect (shutdown alone only wakes accept on Linux).  The woken
  // accept either fails or returns the throwaway connection, so callers
  // must set their stop flag *before* abort() and re-check it after
  // every accept.  The WorkerServer stop path and the fail_after kill
  // hook use this to get the accept loop out of its blocking accept.
  void abort();

 private:
  Socket sock_;
  std::uint16_t port_ = 0;
};

// Completes a connect() that did not finish synchronously - interrupted
// by a signal (EINTR) or started non-blocking (EINPROGRESS).  POSIX
// continues establishing the connection asynchronously in both cases, so
// re-calling connect() is wrong (it reports EALREADY/EISCONN and a
// *successful* connect looks like a failure); instead this polls the fd
// for writability and reads SO_ERROR.  Returns true once the connection
// is established; on failure sets *err and returns false.  try_connect
// uses it on EINTR; exposed so tests can drive it through the
// EINPROGRESS path, which exercises the identical kernel state.
bool finish_connect(int fd, std::string* err);

// Blocking connect; throws net::Error if the endpoint cannot be resolved
// or reached.  `retries` extra attempts are spaced `retry_delay_ms` apart
// for connection-refused/unreachable errors - enough to ride out a worker
// daemon that is still starting up.
Socket connect_to(const Endpoint& endpoint, int retries = 0,
                  int retry_delay_ms = 200);

// Non-blocking connect for event loops (the re-admission timer in
// core/dispatch.cc must never block a live sweep on a dead host).  On
// immediate success returns a connected blocking socket with *in_progress
// = false.  If the connect is still establishing, returns the (still
// non-blocking) socket with *in_progress = true: poll its fd for
// writability, call finish_connect(), then set_blocking(fd, true).  On
// failure returns an invalid Socket and sets *err.
Socket start_connect(const Endpoint& endpoint, bool* in_progress,
                     std::string* err);

// Sets or clears O_NONBLOCK; false on fcntl failure.
bool set_blocking(int fd, bool blocking);

}  // namespace net
}  // namespace rbx
