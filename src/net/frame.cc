#include "net/frame.h"

#include <sys/socket.h>

#include <utility>

#include "support/io.h"

namespace rbx {
namespace net {

void Hello::encode(wire::Writer& w) const {
  w.u32(protocol);
  w.u16(wire_version);
  w.u64(fingerprint);
  w.u64(total_cells);
}

Hello Hello::decode(wire::Reader& r) {
  Hello out;
  out.protocol = r.u32();
  out.wire_version = r.u16();
  out.fingerprint = r.u64();
  out.total_cells = r.u64();
  return out;
}

void FrameConn::abort() {
  if (sock_.valid()) {
    ::shutdown(sock_.fd(), SHUT_RDWR);
  }
}

bool FrameConn::send(std::uint16_t type,
                     const std::vector<std::byte>& payload) {
  if (!sock_.valid()) {
    return false;
  }
  return io::send_all(sock_.fd(), wire::seal_frame(type, payload));
}

bool FrameConn::fill() {
  if (!sock_.valid()) {
    return false;
  }
  std::byte chunk[1 << 16];
  const ssize_t got = io::read_some(sock_.fd(), chunk, sizeof(chunk));
  if (got <= 0) {
    return false;
  }
  buf_.insert(buf_.end(), chunk, chunk + got);
  return true;
}

bool FrameConn::pop(wire::Frame* out) {
  std::size_t consumed = 0;
  if (!wire::parse_frame(buf_.data(), buf_.size(), out, &consumed)) {
    return false;
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
  return true;
}

bool FrameConn::recv(wire::Frame* out) {
  for (;;) {
    if (pop(out)) {
      return true;
    }
    if (!fill()) {
      return false;
    }
  }
}

}  // namespace net
}  // namespace rbx
