#include "numerics/poisson.h"

#include <cmath>

#include "support/check.h"

namespace rbx {

namespace {

// ln k! via lgamma.
double log_factorial(std::size_t k) {
  return std::lgamma(static_cast<double>(k) + 1.0);
}

double log_pmf(std::size_t k, double mean) {
  if (mean == 0.0) {
    return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  }
  return static_cast<double>(k) * std::log(mean) - mean - log_factorial(k);
}

}  // namespace

double poisson_pmf(std::size_t k, double mean) {
  RBX_CHECK(mean >= 0.0);
  return std::exp(log_pmf(k, mean));
}

PoissonWindow poisson_window(double mean, double epsilon) {
  RBX_CHECK(mean >= 0.0);
  RBX_CHECK(epsilon > 0.0 && epsilon < 1.0);

  PoissonWindow w;
  if (mean == 0.0) {
    w.k_lo = 0;
    w.weights = {1.0};
    return w;
  }

  // Expand symmetrically (in probability) from the mode until the captured
  // mass exceeds 1 - epsilon.  The pmf is unimodal, so marching outwards from
  // the mode adds monotonically decreasing terms on each side.
  const auto mode = static_cast<std::size_t>(mean);
  double mass = poisson_pmf(mode, mean);
  std::size_t lo = mode;
  std::size_t hi = mode;
  double p_lo = mass;  // pmf at lo
  double p_hi = mass;  // pmf at hi
  while (mass < 1.0 - epsilon) {
    // Candidate extensions.
    const double next_lo =
        lo > 0 ? p_lo * static_cast<double>(lo) / mean : 0.0;
    const double next_hi = p_hi * mean / static_cast<double>(hi + 1);
    // Once both frontier terms fall below double precision relative to the
    // captured mass, further expansion cannot move `mass`; the window is as
    // complete as floating point permits (renormalization below absorbs the
    // remaining epsilon).
    if (next_lo < 1e-18 * mass && next_hi < 1e-18 * mass) {
      break;
    }
    if (next_lo >= next_hi && lo > 0) {
      --lo;
      p_lo = next_lo;
      mass += p_lo;
    } else {
      ++hi;
      p_hi = next_hi;
      mass += p_hi;
      RBX_CHECK_MSG(hi < 100000000, "poisson window failed to converge");
    }
  }

  w.k_lo = lo;
  w.weights.resize(hi - lo + 1);
  // Recompute stably from the mode outward.
  w.weights[mode - lo] = poisson_pmf(mode, mean);
  for (std::size_t k = mode; k-- > lo;) {
    w.weights[k - lo] =
        w.weights[k + 1 - lo] * static_cast<double>(k + 1) / mean;
  }
  for (std::size_t k = mode + 1; k <= hi; ++k) {
    w.weights[k - lo] =
        w.weights[k - 1 - lo] * mean / static_cast<double>(k);
  }

  double total = 0.0;
  for (double v : w.weights) {
    total += v;
  }
  w.tail_mass = 1.0 - total;
  // Renormalize so downstream probability vectors stay stochastic.
  for (double& v : w.weights) {
    v /= total;
  }
  return w;
}

}  // namespace rbx
