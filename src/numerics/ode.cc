#include "numerics/ode.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace rbx {

void rk4_integrate(const OdeRhs& rhs, double t0, double t1, std::size_t steps,
                   std::vector<double>& y) {
  RBX_CHECK(steps > 0);
  RBX_CHECK(t1 >= t0);
  const double h = (t1 - t0) / static_cast<double>(steps);
  const std::size_t n = y.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);
  double t = t0;
  for (std::size_t s = 0; s < steps; ++s) {
    rhs(t, y, k1);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + 0.5 * h * k1[i];
    }
    rhs(t + 0.5 * h, tmp, k2);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + 0.5 * h * k2[i];
    }
    rhs(t + 0.5 * h, tmp, k3);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * k3[i];
    }
    rhs(t + h, tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    }
    t = t0 + static_cast<double>(s + 1) * h;
  }
}

AdaptiveResult rkf45_integrate(const OdeRhs& rhs, double t0, double t1,
                               std::vector<double>& y,
                               const AdaptiveOptions& opts) {
  RBX_CHECK(t1 >= t0);
  AdaptiveResult result;
  if (t1 == t0) {
    return result;
  }

  // Fehlberg coefficients.
  static constexpr double a2 = 1.0 / 4, a3 = 3.0 / 8, a4 = 12.0 / 13, a5 = 1.0,
                          a6 = 1.0 / 2;
  static constexpr double b21 = 1.0 / 4;
  static constexpr double b31 = 3.0 / 32, b32 = 9.0 / 32;
  static constexpr double b41 = 1932.0 / 2197, b42 = -7200.0 / 2197,
                          b43 = 7296.0 / 2197;
  static constexpr double b51 = 439.0 / 216, b52 = -8.0, b53 = 3680.0 / 513,
                          b54 = -845.0 / 4104;
  static constexpr double b61 = -8.0 / 27, b62 = 2.0, b63 = -3544.0 / 2565,
                          b64 = 1859.0 / 4104, b65 = -11.0 / 40;
  // 5th-order solution weights.
  static constexpr double c1 = 16.0 / 135, c3 = 6656.0 / 12825,
                          c4 = 28561.0 / 56430, c5 = -9.0 / 50, c6 = 2.0 / 55;
  // 4th-order solution weights (for the error estimate).
  static constexpr double d1 = 25.0 / 216, d3 = 1408.0 / 2565,
                          d4 = 2197.0 / 4104, d5 = -1.0 / 5;

  const std::size_t n = y.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), tmp(n),
      y5(n);

  double t = t0;
  double h = std::min(opts.initial_step, t1 - t0);
  while (t < t1) {
    RBX_CHECK_MSG(result.steps_taken + result.steps_rejected < opts.max_steps,
                  "rkf45 exceeded max_steps");
    h = std::min(h, t1 - t);

    rhs(t, y, k1);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * b21 * k1[i];
    }
    rhs(t + a2 * h, tmp, k2);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (b31 * k1[i] + b32 * k2[i]);
    }
    rhs(t + a3 * h, tmp, k3);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (b41 * k1[i] + b42 * k2[i] + b43 * k3[i]);
    }
    rhs(t + a4 * h, tmp, k4);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] =
          y[i] + h * (b51 * k1[i] + b52 * k2[i] + b53 * k3[i] + b54 * k4[i]);
    }
    rhs(t + a5 * h, tmp, k5);
    for (std::size_t i = 0; i < n; ++i) {
      tmp[i] = y[i] + h * (b61 * k1[i] + b62 * k2[i] + b63 * k3[i] +
                           b64 * k4[i] + b65 * k5[i]);
    }
    rhs(t + a6 * h, tmp, k6);

    double err = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y5[i] = y[i] + h * (c1 * k1[i] + c3 * k3[i] + c4 * k4[i] + c5 * k5[i] +
                          c6 * k6[i]);
      const double y4 =
          y[i] + h * (d1 * k1[i] + d3 * k3[i] + d4 * k4[i] + d5 * k5[i]);
      const double scale =
          opts.abs_tol + opts.rel_tol * std::max(std::fabs(y[i]), std::fabs(y5[i]));
      err = std::max(err, std::fabs(y5[i] - y4) / scale);
    }

    if (err <= 1.0 || h <= opts.min_step) {
      t += h;
      y = y5;
      ++result.steps_taken;
    } else {
      ++result.steps_rejected;
    }
    // Standard step-size update with safety factor and clamping.
    const double factor =
        err > 0.0 ? 0.9 * std::pow(err, -0.2) : 5.0;
    h *= std::clamp(factor, 0.2, 5.0);
    h = std::max(h, opts.min_step);
  }
  return result;
}

}  // namespace rbx
