// Compressed sparse row matrix for CTMC generators.
//
// The asynchronous-RB chain over 2^n + 1 states has only O(n^2) transitions
// per state, so uniformization's repeated vector-matrix products run on a CSR
// matrix.  The builder accumulates (row, col, value) triplets (summing
// duplicates) and freezes into CSR.
//
// Layout notes (the SpMV loops are the hottest numerics in the repo):
//  * indices are stored as u32 - the chains cap out near 2^12 states, and
//    halving the index bytes measurably speeds the memory-bound SpMV loops
//    (perf_bench kernels sparse_spmv_*) and the builder's triplet sort;
//  * build() sorts the triplet list in place (consuming the builder's
//    insertion order) instead of copying it;
//  * the multiply routines write into a caller-owned buffer and never
//    allocate after the first call on a given buffer; right_multiply sizes
//    the output without zero-filling (every element is overwritten).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rbx {

class SparseMatrixBuilder;

class SparseMatrix {
 public:
  SparseMatrix() = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  // y = x^T A (row vector through the matrix); the natural direction for
  // probability-vector propagation.  Writes into the caller's buffer
  // (resized and zeroed; zeroing is required because the loop accumulates).
  void left_multiply(const std::vector<double>& x,
                     std::vector<double>& y) const;

  // y = A x.  Writes into the caller's buffer (resized, not zero-filled:
  // every element is overwritten).
  void right_multiply(const std::vector<double>& x,
                      std::vector<double>& y) const;

  // Element lookup (binary search within the row); zero when absent.
  double at(std::size_t r, std::size_t c) const;

  // Sum of entries in a row.
  double row_sum(std::size_t r) const;

  // Dense copy (small matrices / tests).
  std::vector<std::vector<double>> to_dense() const;

  // Iteration support: for row r, entries are [row_begin(r), row_end(r)).
  struct Entry {
    std::size_t col;
    double value;
  };
  std::size_t row_begin(std::size_t r) const { return row_ptr_[r]; }
  std::size_t row_end(std::size_t r) const { return row_ptr_[r + 1]; }
  std::size_t entry_col(std::size_t k) const { return col_idx_[k]; }
  double entry_value(std::size_t k) const { return values_[k]; }

 private:
  friend class SparseMatrixBuilder;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;
};

class SparseMatrixBuilder {
 public:
  // Dimensions and the nonzero count must fit in u32 (checked); the
  // library's chains are orders of magnitude below that.
  SparseMatrixBuilder(std::size_t rows, std::size_t cols);

  // Accumulates value at (r, c); duplicate coordinates sum.
  void add(std::size_t r, std::size_t c, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  // Freezes into CSR.  Sorts the triplet list in place, so insertion order
  // is consumed - the builder stays valid for further add() + build()
  // rounds, but this is not const.
  SparseMatrix build();

 private:
  struct Triplet {
    std::uint32_t row;
    std::uint32_t col;
    double value;
  };
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

}  // namespace rbx
