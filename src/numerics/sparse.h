// Compressed sparse row matrix for CTMC generators.
//
// The asynchronous-RB chain over 2^n + 1 states has only O(n^2) transitions
// per state, so uniformization's repeated vector-matrix products run on a CSR
// matrix.  The builder accumulates (row, col, value) triplets (summing
// duplicates) and freezes into CSR.
#pragma once

#include <cstddef>
#include <vector>

namespace rbx {

class SparseMatrixBuilder;

class SparseMatrix {
 public:
  SparseMatrix() = default;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  // y = x^T A (row vector through the matrix); the natural direction for
  // probability-vector propagation.
  void left_multiply(const std::vector<double>& x,
                     std::vector<double>& y) const;

  // y = A x.
  void right_multiply(const std::vector<double>& x,
                      std::vector<double>& y) const;

  // Element lookup (binary search within the row); zero when absent.
  double at(std::size_t r, std::size_t c) const;

  // Sum of entries in a row.
  double row_sum(std::size_t r) const;

  // Dense copy (small matrices / tests).
  std::vector<std::vector<double>> to_dense() const;

  // Iteration support: for row r, entries are [row_begin(r), row_end(r)).
  struct Entry {
    std::size_t col;
    double value;
  };
  std::size_t row_begin(std::size_t r) const { return row_ptr_[r]; }
  std::size_t row_end(std::size_t r) const { return row_ptr_[r + 1]; }
  std::size_t entry_col(std::size_t k) const { return col_idx_[k]; }
  double entry_value(std::size_t k) const { return values_[k]; }

 private:
  friend class SparseMatrixBuilder;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

class SparseMatrixBuilder {
 public:
  SparseMatrixBuilder(std::size_t rows, std::size_t cols);

  // Accumulates value at (r, c); duplicate coordinates sum.
  void add(std::size_t r, std::size_t c, double value);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  SparseMatrix build() const;

 private:
  struct Triplet {
    std::size_t row;
    std::size_t col;
    double value;
  };
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> triplets_;
};

}  // namespace rbx
