#include "numerics/quadrature.h"

#include <cmath>

#include "support/check.h"

namespace rbx {

namespace {

struct SimpsonCtx {
  const std::function<double(double)>* f;
  double tol;
  int max_depth;
  std::size_t evals;
  double error;
};

double simpson(double fa, double fm, double fb, double a, double b) {
  return (b - a) / 6.0 * (fa + 4.0 * fm + fb);
}

double adaptive(SimpsonCtx& ctx, double a, double b, double fa, double fm,
                double fb, double whole, double tol, int depth) {
  const double m = 0.5 * (a + b);
  const double lm = 0.5 * (a + m);
  const double rm = 0.5 * (m + b);
  const double flm = (*ctx.f)(lm);
  const double frm = (*ctx.f)(rm);
  ctx.evals += 2;
  const double left = simpson(fa, flm, fm, a, m);
  const double right = simpson(fm, frm, fb, m, b);
  const double delta = left + right - whole;
  if (depth >= ctx.max_depth || std::fabs(delta) <= 15.0 * tol) {
    ctx.error += std::fabs(delta) / 15.0;
    return left + right + delta / 15.0;
  }
  return adaptive(ctx, a, m, fa, flm, fm, left, 0.5 * tol, depth + 1) +
         adaptive(ctx, m, b, fm, frm, fb, right, 0.5 * tol, depth + 1);
}

}  // namespace

QuadratureResult integrate(const std::function<double(double)>& f, double a,
                           double b, double tol, int max_depth) {
  RBX_CHECK(b >= a);
  QuadratureResult out;
  if (a == b) {
    return out;
  }
  SimpsonCtx ctx{&f, tol, max_depth, 0, 0.0};
  const double fa = f(a);
  const double m = 0.5 * (a + b);
  const double fm = f(m);
  const double fb = f(b);
  ctx.evals = 3;
  const double whole = simpson(fa, fm, fb, a, b);
  out.value = adaptive(ctx, a, b, fa, fm, fb, whole, tol, 0);
  out.error_estimate = ctx.error;
  out.evaluations = ctx.evals;
  return out;
}

QuadratureResult integrate_to_infinity(const std::function<double(double)>& f,
                                       double a, double panel, double tol,
                                       double tail_tol,
                                       std::size_t max_panels) {
  RBX_CHECK(panel > 0.0);
  QuadratureResult out;
  double lo = a;
  std::size_t consecutive_small = 0;
  for (std::size_t i = 0; i < max_panels; ++i) {
    const QuadratureResult part = integrate(f, lo, lo + panel, tol);
    out.value += part.value;
    out.error_estimate += part.error_estimate;
    out.evaluations += part.evaluations;
    lo += panel;
    if (std::fabs(part.value) < tail_tol) {
      // Two consecutive negligible panels guard against integrands with a
      // zero crossing inside a single panel.
      if (++consecutive_small >= 2) {
        return out;
      }
    } else {
      consecutive_small = 0;
    }
  }
  RBX_CHECK_MSG(false, "integrate_to_infinity did not converge");
  return out;
}

}  // namespace rbx
