// Poisson probability weights for uniformization.
//
// Uniformization expresses exp(Qt) through powers of a DTMC weighted by
// Poisson(Lambda * t) probabilities.  For large Lambda*t the individual terms
// underflow in naive form, so weights are computed in log space around the
// mode and the truncation window [k_lo, k_hi] is chosen so the neglected tail
// mass is below `epsilon` (simple and robust variant of Fox-Glynn).
#pragma once

#include <cstddef>
#include <vector>

namespace rbx {

struct PoissonWindow {
  std::size_t k_lo = 0;           // first retained term
  std::vector<double> weights;    // weights[k - k_lo] = P(N = k), renormalized
  double tail_mass = 0.0;         // mass outside the window before renorm
};

// Computes the truncated Poisson(mean) pmf window covering all but epsilon of
// the mass.  mean must be non-negative; epsilon in (0, 1).
PoissonWindow poisson_window(double mean, double epsilon);

// Exact-ish single pmf value via log-space evaluation (used in tests).
double poisson_pmf(std::size_t k, double mean);

}  // namespace rbx
