#include "numerics/matrix.h"

#include <cmath>

#include "support/check.h"

namespace rbx {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    RBX_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) = 1.0;
  }
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  RBX_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  RBX_DCHECK(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double* Matrix::row_data(std::size_t r) {
  RBX_DCHECK(r < rows_);
  return data_.data() + r * cols_;
}

const double* Matrix::row_data(std::size_t r) const {
  RBX_DCHECK(r < rows_);
  return data_.data() + r * cols_;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  RBX_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* arow = row_data(i);
    double* orow = out.row_data(i);
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) {
        continue;
      }
      const double* brow = other.row_data(k);
      for (std::size_t j = 0; j < other.cols_; ++j) {
        orow[j] += aik * brow[j];
      }
    }
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) {
    sum += v * v;
  }
  return std::sqrt(sum);
}

double Matrix::inf_norm() const {
  double best = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) {
    double row_sum = 0.0;
    const double* row = row_data(r);
    for (std::size_t c = 0; c < cols_; ++c) {
      row_sum += std::fabs(row[c]);
    }
    best = std::max(best, row_sum);
  }
  return best;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  RBX_CHECK(rows_ == other.rows_ && cols_ == other.cols_);
  double best = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::fabs(data_[i] - other.data_[i]));
  }
  return best;
}

void mat_vec(const Matrix& a, const std::vector<double>& x,
             std::vector<double>& y) {
  RBX_CHECK(a.cols() == x.size());
  y.assign(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* row = a.row_data(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
      sum += row[c] * x[c];
    }
    y[r] = sum;
  }
}

void vec_mat(const std::vector<double>& x, const Matrix& a,
             std::vector<double>& y) {
  RBX_CHECK(a.rows() == x.size());
  y.assign(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) {
      continue;
    }
    const double* row = a.row_data(r);
    for (std::size_t c = 0; c < a.cols(); ++c) {
      y[c] += xr * row[c];
    }
  }
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  RBX_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    sum += a[i] * b[i];
  }
  return sum;
}

void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y) {
  RBX_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] += alpha * x[i];
  }
}

double vec_sum(const std::vector<double>& v) {
  double sum = 0.0;
  for (double x : v) {
    sum += x;
  }
  return sum;
}

double vec_inf_norm(const std::vector<double>& v) {
  double best = 0.0;
  for (double x : v) {
    best = std::max(best, std::fabs(x));
  }
  return best;
}

}  // namespace rbx
