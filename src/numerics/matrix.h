// Dense row-major matrix and vector helpers.
//
// The Markov engine needs only real dense linear algebra of modest size
// (transient submatrices up to ~2^10 states for the full asynchronous-RB
// model), so a plain contiguous row-major matrix with explicit loops is both
// the simplest and, at these sizes, an efficient choice (no expression
// templates, no allocation churn inside kernels).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace rbx {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  // Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool square() const { return rows_ == cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  double* row_data(std::size_t r);
  const double* row_data(std::size_t r) const;

  Matrix transposed() const;

  // this * other
  Matrix multiply(const Matrix& other) const;

  // Frobenius and infinity norms.
  double frobenius_norm() const;
  double inf_norm() const;

  // Maximum absolute element difference; both matrices must share shape.
  double max_abs_diff(const Matrix& other) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// y = A x  (A: m x n, x: n, y: m)
void mat_vec(const Matrix& a, const std::vector<double>& x,
             std::vector<double>& y);

// y = x^T A  (row vector times matrix; x: m, y: n)
void vec_mat(const std::vector<double>& x, const Matrix& a,
             std::vector<double>& y);

// Dot product.
double dot(const std::vector<double>& a, const std::vector<double>& b);

// y += alpha * x
void axpy(double alpha, const std::vector<double>& x, std::vector<double>& y);

// Sum of components.
double vec_sum(const std::vector<double>& v);

// Infinity norm.
double vec_inf_norm(const std::vector<double>& v);

}  // namespace rbx
