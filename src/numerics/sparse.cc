#include "numerics/sparse.h"

#include <algorithm>

#include "support/check.h"

namespace rbx {

void SparseMatrix::left_multiply(const std::vector<double>& x,
                                 std::vector<double>& y) const {
  RBX_CHECK(x.size() == rows_);
  y.assign(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) {
      continue;
    }
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      y[col_idx_[k]] += xr * values_[k];
    }
  }
}

void SparseMatrix::right_multiply(const std::vector<double>& x,
                                  std::vector<double>& y) const {
  RBX_CHECK(x.size() == cols_);
  y.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[r] = sum;
  }
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  RBX_CHECK(r < rows_ && c < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) {
    return 0.0;
  }
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

double SparseMatrix::row_sum(std::size_t r) const {
  RBX_CHECK(r < rows_);
  double sum = 0.0;
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    sum += values_[k];
  }
  return sum;
}

std::vector<std::vector<double>> SparseMatrix::to_dense() const {
  std::vector<std::vector<double>> dense(rows_,
                                         std::vector<double>(cols_, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      dense[r][col_idx_[k]] = values_[k];
    }
  }
  return dense;
}

SparseMatrixBuilder::SparseMatrixBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void SparseMatrixBuilder::add(std::size_t r, std::size_t c, double value) {
  RBX_CHECK(r < rows_ && c < cols_);
  if (value == 0.0) {
    return;
  }
  triplets_.push_back({r, c, value});
}

SparseMatrix SparseMatrixBuilder::build() const {
  std::vector<Triplet> sorted = triplets_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) {
                return a.row < b.row;
              }
              return a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(rows_ + 1, 0);
  m.col_idx_.reserve(sorted.size());
  m.values_.reserve(sorted.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    m.row_ptr_[r] = m.values_.size();
    while (i < sorted.size() && sorted[i].row == r) {
      const std::size_t col = sorted[i].col;
      double sum = 0.0;
      while (i < sorted.size() && sorted[i].row == r && sorted[i].col == col) {
        sum += sorted[i].value;
        ++i;
      }
      if (sum != 0.0) {
        m.col_idx_.push_back(col);
        m.values_.push_back(sum);
      }
    }
  }
  m.row_ptr_[rows_] = m.values_.size();
  return m;
}

}  // namespace rbx
