#include "numerics/sparse.h"

#include <algorithm>
#include <limits>

#include "support/check.h"

namespace rbx {

void SparseMatrix::left_multiply(const std::vector<double>& x,
                                 std::vector<double>& y) const {
  RBX_CHECK(x.size() == rows_);
  y.assign(cols_, 0.0);
  const std::uint32_t* cols = col_idx_.data();
  const double* vals = values_.data();
  double* out = y.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) {
      continue;
    }
    const std::uint32_t end = row_ptr_[r + 1];
    for (std::uint32_t k = row_ptr_[r]; k < end; ++k) {
      out[cols[k]] += xr * vals[k];
    }
  }
}

void SparseMatrix::right_multiply(const std::vector<double>& x,
                                  std::vector<double>& y) const {
  RBX_CHECK(x.size() == cols_);
  // Every element is overwritten below, so size without zero-filling.
  y.resize(rows_);
  const std::uint32_t* cols = col_idx_.data();
  const double* vals = values_.data();
  const double* in = x.data();
  double* out = y.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    const std::uint32_t end = row_ptr_[r + 1];
    for (std::uint32_t k = row_ptr_[r]; k < end; ++k) {
      sum += vals[k] * in[cols[k]];
    }
    out[r] = sum;
  }
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  RBX_CHECK(r < rows_ && c < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, static_cast<std::uint32_t>(c));
  if (it == end || *it != c) {
    return 0.0;
  }
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

double SparseMatrix::row_sum(std::size_t r) const {
  RBX_CHECK(r < rows_);
  double sum = 0.0;
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
    sum += values_[k];
  }
  return sum;
}

std::vector<std::vector<double>> SparseMatrix::to_dense() const {
  std::vector<std::vector<double>> dense(rows_,
                                         std::vector<double>(cols_, 0.0));
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      dense[r][col_idx_[k]] = values_[k];
    }
  }
  return dense;
}

SparseMatrixBuilder::SparseMatrixBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  RBX_CHECK(rows <= std::numeric_limits<std::uint32_t>::max() &&
            cols <= std::numeric_limits<std::uint32_t>::max());
}

void SparseMatrixBuilder::add(std::size_t r, std::size_t c, double value) {
  RBX_CHECK(r < rows_ && c < cols_);
  if (value == 0.0) {
    return;
  }
  triplets_.push_back({static_cast<std::uint32_t>(r),
                       static_cast<std::uint32_t>(c), value});
}

SparseMatrix SparseMatrixBuilder::build() {
  RBX_CHECK_MSG(
      triplets_.size() < std::numeric_limits<std::uint32_t>::max(),
      "sparse matrix nonzero count exceeds the u32 index space");
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) {
                return a.row < b.row;
              }
              return a.col < b.col;
            });

  SparseMatrix m;
  m.rows_ = rows_;
  m.cols_ = cols_;
  m.row_ptr_.assign(rows_ + 1, 0);
  m.col_idx_.reserve(triplets_.size());
  m.values_.reserve(triplets_.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    m.row_ptr_[r] = static_cast<std::uint32_t>(m.values_.size());
    while (i < triplets_.size() && triplets_[i].row == r) {
      const std::uint32_t col = triplets_[i].col;
      double sum = 0.0;
      while (i < triplets_.size() && triplets_[i].row == r &&
             triplets_[i].col == col) {
        sum += triplets_[i].value;
        ++i;
      }
      if (sum != 0.0) {
        m.col_idx_.push_back(col);
        m.values_.push_back(sum);
      }
    }
  }
  m.row_ptr_[rows_] = static_cast<std::uint32_t>(m.values_.size());
  return m;
}

}  // namespace rbx
