// Adaptive Simpson quadrature.
//
// Used for the synchronized-RB loss integral n * Int_0^inf (1 - G(t)) dt of
// Section 3 (cross-checking the inclusion-exclusion closed form) and for
// verifying that phase-type densities integrate to one.
#pragma once

#include <functional>

namespace rbx {

struct QuadratureResult {
  double value = 0.0;
  double error_estimate = 0.0;
  std::size_t evaluations = 0;
};

// Integrates f over [a, b] with adaptive Simpson subdivision until the local
// error estimate is below tol (absolute).
QuadratureResult integrate(const std::function<double(double)>& f, double a,
                           double b, double tol = 1e-10,
                           int max_depth = 60);

// Integrates f over [a, infinity) for integrands with (at least) exponential
// decay, by integrating successive unit-scale panels until a panel
// contributes less than tail_tol.
QuadratureResult integrate_to_infinity(const std::function<double(double)>& f,
                                       double a, double panel = 1.0,
                                       double tol = 1e-10,
                                       double tail_tol = 1e-12,
                                       std::size_t max_panels = 100000);

}  // namespace rbx
