// ODE integration for the Chapman-Kolmogorov forward equations.
//
// The paper solves d/dt pi(t) = pi(t) H.  Uniformization (markov/ctmc.h) is
// the production path; the fixed-step RK4 and adaptive RKF45 integrators here
// provide an independent numerical method used to cross-validate the
// uniformization results in tests and the MICRO bench.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace rbx {

// dy/dt = f(t, y) -> writes dy.
using OdeRhs = std::function<void(double t, const std::vector<double>& y,
                                  std::vector<double>& dy)>;

// Classic fixed-step 4th-order Runge-Kutta from t0 to t1 in `steps` steps.
// y is updated in place.
void rk4_integrate(const OdeRhs& rhs, double t0, double t1, std::size_t steps,
                   std::vector<double>& y);

struct AdaptiveOptions {
  double abs_tol = 1e-10;
  double rel_tol = 1e-8;
  double initial_step = 1e-3;
  double min_step = 1e-12;
  std::size_t max_steps = 10'000'000;
};

struct AdaptiveResult {
  std::size_t steps_taken = 0;
  std::size_t steps_rejected = 0;
};

// Runge-Kutta-Fehlberg 4(5) with step-size control.  y is updated in place.
AdaptiveResult rkf45_integrate(const OdeRhs& rhs, double t0, double t1,
                               std::vector<double>& y,
                               const AdaptiveOptions& opts = {});

}  // namespace rbx
