// LU factorization with partial pivoting and the linear solves built on it.
//
// Used by the Markov engine for mean first-passage times (solve
// (-Q_TT) tau = 1), expected total sojourn times (solve nu (-Q_TT) = alpha)
// and DTMC fundamental-matrix visit counts (solve (I - P_TT)^T x = e_s).
#pragma once

#include <vector>

#include "numerics/matrix.h"

namespace rbx {

class LuDecomposition {
 public:
  // Factors a copy of the square matrix.  singular() reports failure instead
  // of throwing so callers can give model-level diagnostics.
  explicit LuDecomposition(const Matrix& a);

  bool singular() const { return singular_; }

  // Solves A x = b.  Requires !singular().
  std::vector<double> solve(const std::vector<double>& b) const;

  // Solves x A = b (i.e. A^T x = b).  Requires !singular().
  std::vector<double> solve_transposed(const std::vector<double>& b) const;

  // Determinant (product of pivots with sign).
  double determinant() const;

  std::size_t size() const { return n_; }

 private:
  std::size_t n_;
  Matrix lu_;
  std::vector<std::size_t> perm_;
  bool singular_ = false;
  int perm_sign_ = 1;
};

// One-shot convenience wrappers.
std::vector<double> solve_linear(const Matrix& a, const std::vector<double>& b);
Matrix invert(const Matrix& a);

}  // namespace rbx
