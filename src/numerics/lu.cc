#include "numerics/lu.h"

#include <cmath>

#include "support/check.h"

namespace rbx {

LuDecomposition::LuDecomposition(const Matrix& a)
    : n_(a.rows()), lu_(a), perm_(a.rows()) {
  RBX_CHECK_MSG(a.square(), "LU requires a square matrix");
  for (std::size_t i = 0; i < n_; ++i) {
    perm_[i] = i;
  }
  for (std::size_t col = 0; col < n_; ++col) {
    // Partial pivot: pick the largest magnitude entry on/below the diagonal.
    std::size_t pivot = col;
    double best = std::fabs(lu_(col, col));
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double v = std::fabs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0) {
      singular_ = true;
      return;
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n_; ++c) {
        std::swap(lu_(pivot, c), lu_(col, c));
      }
      std::swap(perm_[pivot], perm_[col]);
      perm_sign_ = -perm_sign_;
    }
    const double diag = lu_(col, col);
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double factor = lu_(r, col) / diag;
      lu_(r, col) = factor;
      if (factor == 0.0) {
        continue;
      }
      double* rrow = lu_.row_data(r);
      const double* crow = lu_.row_data(col);
      for (std::size_t c = col + 1; c < n_; ++c) {
        rrow[c] -= factor * crow[c];
      }
    }
  }
}

std::vector<double> LuDecomposition::solve(const std::vector<double>& b) const {
  RBX_CHECK(!singular_);
  RBX_CHECK(b.size() == n_);
  std::vector<double> x(n_);
  // Apply permutation, then forward substitution (unit lower triangle).
  for (std::size_t i = 0; i < n_; ++i) {
    x[i] = b[perm_[i]];
  }
  for (std::size_t i = 0; i < n_; ++i) {
    const double* row = lu_.row_data(i);
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) {
      sum -= row[j] * x[j];
    }
    x[i] = sum;
  }
  // Backward substitution.
  for (std::size_t ii = n_; ii-- > 0;) {
    const double* row = lu_.row_data(ii);
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) {
      sum -= row[j] * x[j];
    }
    x[ii] = sum / row[ii];
  }
  return x;
}

std::vector<double> LuDecomposition::solve_transposed(
    const std::vector<double>& b) const {
  RBX_CHECK(!singular_);
  RBX_CHECK(b.size() == n_);
  // A = P^-1 L U  =>  A^T x = b  <=>  U^T L^T P x = b.
  std::vector<double> y(b);
  // Forward substitution with U^T (U is upper triangular, so U^T is lower
  // with the diagonal of U).
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = y[i];
    for (std::size_t j = 0; j < i; ++j) {
      sum -= lu_(j, i) * y[j];
    }
    y[i] = sum / lu_(i, i);
  }
  // Backward substitution with L^T (unit diagonal).
  for (std::size_t ii = n_; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) {
      sum -= lu_(j, ii) * y[j];
    }
    y[ii] = sum;
  }
  // Undo the permutation: (Px)_i = x_{perm_i}.
  std::vector<double> x(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    x[perm_[i]] = y[i];
  }
  return x;
}

double LuDecomposition::determinant() const {
  if (singular_) {
    return 0.0;
  }
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < n_; ++i) {
    det *= lu_(i, i);
  }
  return det;
}

std::vector<double> solve_linear(const Matrix& a,
                                 const std::vector<double>& b) {
  LuDecomposition lu(a);
  RBX_CHECK_MSG(!lu.singular(), "singular system in solve_linear");
  return lu.solve(b);
}

Matrix invert(const Matrix& a) {
  LuDecomposition lu(a);
  RBX_CHECK_MSG(!lu.singular(), "cannot invert a singular matrix");
  const std::size_t n = a.rows();
  Matrix inv(n, n);
  std::vector<double> e(n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    e[c] = 1.0;
    std::vector<double> col = lu.solve(e);
    e[c] = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      inv(r, c) = col[r];
    }
  }
  return inv;
}

}  // namespace rbx
