// Structured results of evaluating a Scenario on an EvalBackend.
//
// Every backend - analytic, Monte-Carlo or thread runtime - reports its
// output as a flat list of named metrics.  A metric carries the point value,
// the half-width of its 95% confidence interval (zero for closed-form
// results) and the number of samples behind the estimate (zero when exact).
// Shared metric names across backends (e.g. "mean_interval_x" from both the
// phase-type chain and the DES) are what make cross-backend validation a
// simple join instead of bespoke glue code per experiment.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/wire.h"

namespace rbx {

// 1-based per-process metric name, the cross-backend naming convention:
// indexed_metric("rp_count_", 0) == "rp_count_1".  Analytic and Monte-Carlo
// results for process i join on this name.
std::string indexed_metric(const char* stem, std::size_t i);

struct Metric {
  std::string name;
  double value = 0.0;
  double half_width = 0.0;  // 95% CI half-width; 0 for exact results
  std::size_t count = 0;    // samples behind the estimate; 0 = closed form

  bool exact() const { return count == 0; }
};

class ResultSet {
 public:
  ResultSet() = default;
  ResultSet(std::string backend, std::string scenario);

  const std::string& backend() const { return backend_; }
  const std::string& scenario() const { return scenario_; }

  // Upserts a metric, preserving first-insertion order.
  void set(const std::string& name, double value, double half_width = 0.0,
           std::size_t count = 0);

  bool has(const std::string& name) const;
  // Point value of a metric; RBX_CHECKs that the metric exists.
  double value(const std::string& name) const;
  double value_or(const std::string& name, double fallback) const;
  const Metric& metric(const std::string& name) const;
  const std::vector<Metric>& metrics() const { return metrics_; }

  // Appends every metric of `other`, prefixing its names (e.g. "mc_").
  // Lets one sweep cell combine several backend evaluations.
  void merge(const ResultSet& other, const std::string& prefix = "");

  // One metric per line: "name = value [+- hw (count samples)]".
  std::string to_string() const;

  // --- wire form ---
  // Exact binary round-trip (support/wire.h): metric order, names, values,
  // half-widths and counts, with doubles bit-preserved (including NaN
  // payloads and infinities).  decode throws wire::Error on malformed data.
  void encode(wire::Writer& w) const;
  static ResultSet decode(wire::Reader& r);

  // Exact (bitwise) equality of all metric names, values, half-widths and
  // counts - the determinism contract checked by the SweepEngine tests.
  friend bool operator==(const ResultSet& a, const ResultSet& b);
  friend bool operator!=(const ResultSet& a, const ResultSet& b) {
    return !(a == b);
  }

 private:
  const Metric* find(const std::string& name) const;

  std::string backend_;
  std::string scenario_;
  std::vector<Metric> metrics_;
};

}  // namespace rbx
