// Shared plumbing for the bench binaries that regenerate the paper's
// tables and figures.
//
// Every bench runs with no arguments and prints the paper's rows to stdout;
// the flags below let a user trade precision for time and pick where the
// sweep cells execute.  Execution lanes *compose*: any mix of --threads,
// --workers and --connect runs as one sweep over the shared dispatch core
// (core/dispatch.h), byte-identical to a single-threaded run.
//   --samples=N    Monte-Carlo sample count (lines / failures / commits)
//   --streams=K    partition every cell's Monte-Carlo budget into K
//                  deterministic RNG sub-streams (Scenario::streams),
//                  evaluated sample-parallel on each worker's intra-cell
//                  thread budget and merged in fixed stream order.  For a
//                  given K the output is bitwise identical on any lane and
//                  any thread count; K=1 (the default) is bitwise
//                  identical to earlier releases.  Different K are
//                  different (equally valid) sample partitions
//   --nmax=N       largest process count in sweeps
//   --seed=N       master RNG seed
//   --threads=N    a lane of N in-process worker threads (the default
//                  lane, at hardware concurrency, when no lane flag is
//                  given)
//   --workers=N    a lane of N forked worker processes (crashed workers
//                  are respawned and their cells re-run)
//   --connect=HOST:PORT,...
//                  a lane of remote sweep_workerd daemons over TCP; a
//                  lost daemon is re-admitted mid-sweep when it comes
//                  back (reconnect + re-handshake on a backoff timer)
//   --fleet=HOST:PORT
//                  like --connect, but the daemons are resolved from a
//                  fleet registry (tools/fleet_registryd) at sweep start:
//                  the coordinator is granted a fair share of the live
//                  members (heartbeat-expired daemons are never granted)
//                  and a daemon lost mid-sweep is backfilled by any other
//                  registry member - including one that joined after the
//                  sweep began.  Mutually exclusive with --connect; output
//                  is byte-identical to the equivalent --connect list
//   --fleet-workers=N
//                  with --fleet: cap the grant at N members (default: the
//                  registry's fair share)
//   --auth-key-file=PATH
//                  pre-shared key for authenticated fleets: the Hello
//                  handshake to every daemon (and the registry) carries an
//                  HMAC challenge/response proving key possession.  Works
//                  with --fleet and with plain --connect against daemons
//                  running --auth-key-file
//   --batch=N      cells per worker batch frame (0 = adaptive, the
//                  default); needs a --workers or --connect lane
//   --steal        once the queue is empty, re-dispatch a straggler's
//                  unanswered cells to idle workers (first answer wins,
//                  duplicates are deduped; output unchanged); needs a
//                  --workers or --connect lane - a pure --threads run
//                  has no stragglers worth stealing from
//   --handshake-timeout-ms=N
//                  with --connect: how long a worker's per-sweep Hello may
//                  go unanswered before it is demoted to "lost" (default
//                  10000; raise it when stolen-from stragglers need longer
//                  than that to flush a batch between sweeps)
//   --shard=i/k    evaluate only shard i of a k-way split of every sweep
//                  and write the results as a wire partial file instead of
//                  printing tables
//   --shard-out=F  where --shard writes the partial (default
//                  shard-<i>-of-<k>.rbxw)
//   --shard-serve=PORT
//                  with --shard: instead of a file, listen on PORT and
//                  stream each sweep's ShardPartial frame to the one
//                  --merge peer that connects (0 = ephemeral, printed on
//                  stderr)
//   --merge=SRC1,SRC2,...
//                  print the tables from k partial sources instead of
//                  evaluating; a source is a partial file path or a
//                  HOST:PORT of a --shard-serve run, and socket sources
//                  are merged as the shards stream in.  Byte-identical to
//                  an unsharded run; partials from a different grid
//                  (fingerprint mismatch) are refused loudly
//   --journal=FILE start a fresh crash-durable sweep journal at FILE
//                  (recov/journal.h): every committed cell is logged the
//                  moment its outcome is final, so a killed run can be
//                  picked up with --resume
//   --resume=FILE  recover the committed cells from a journal a killed
//                  run left behind, evaluate only the losers, and keep
//                  appending to the same journal; output is bitwise
//                  identical to an uninterrupted run.  A journal written
//                  by a different sweep (grid fingerprint mismatch, e.g.
//                  other --samples/--seed) is refused loudly with exit 2
//   --no-cache     ask --connect daemons to bypass their --cache-dir
//                  result cache for this run's sessions (fresh
//                  evaluations; the answers are bitwise identical either
//                  way)
//
// Parsing is strict: an unknown flag, a malformed number, a negative value,
// --threads=0, --streams=0, --shard=3/2, --connect=host (no port), --steal without a
// worker lane, --journal together with --resume, either with --shard or
// --merge (they evaluate elsewhere or not at all), or --no-cache without a
// --connect lane prints a usage message to stderr and exits with status 2
// (a typo'd flag silently falling back to defaults once cost a day of
// benchmarking against the wrong sample count).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/executor.h"
#include "core/result.h"
#include "net/socket.h"

namespace rbx {

class HybridExecutor;  // core/dispatch.h; kept out of every bench TU

namespace net {
class FrameConn;  // net/frame.h
}

namespace recov {
class JournalWriter;      // recov/journal.h; kept out of every bench TU
struct JournalAnalysis;
}

// Strict non-negative integer parse shared by the bench flags and
// tools/sweep_workerd: rejects empty strings, signs, whitespace, non-digit
// suffixes and out-of-range values.
bool parse_strict_u64(const char* text, std::uint64_t* out);

struct ExperimentOptions {
  std::size_t samples = 20000;
  std::size_t streams = 1;   // RNG sub-streams per cell (--streams=K)
  std::size_t nmax = 0;      // 0 = bench default
  std::uint64_t seed = 20260610;
  std::size_t threads = 0;   // 0 = hardware concurrency
  bool threads_given = false;  // --threads named explicitly: add the lane
                               // even when --workers/--connect are present
  std::size_t workers = 0;   // forked-worker lane size; 0 = no fork lane
  std::size_t batch = 0;     // cells per worker batch; 0 = adaptive
  std::vector<net::Endpoint> connect;  // non-empty = TCP lane
  bool fleet_given = false;  // --fleet named: registry-resolved TCP lane
  net::Endpoint fleet;       // the registry endpoint
  std::size_t fleet_workers = 0;  // --fleet-workers: grant cap; 0 = share
  std::string auth_key_file;  // --auth-key-file: pre-shared key path
  bool steal = false;        // steal stragglers' tails (multi-lane runs)
  std::size_t handshake_timeout_ms = 10000;  // --connect: Hello deadline
  bool shard_mode = false;   // --shard given (covers the 0/1 degenerate)
  ShardSpec shard;           // {0, 1} = unsharded
  std::string shard_out;     // partial file path; set for file-mode shards
  bool shard_serve = false;  // stream partials to a --merge peer instead
  std::uint16_t shard_serve_port = 0;
  std::vector<std::string> merge_inputs;  // non-empty = merge mode; each a
                                          // file path or HOST:PORT source
  std::string journal;       // --journal: start a fresh sweep journal here
  std::string resume;        // --resume: recover + append to this journal
  bool no_cache = false;     // --no-cache: bypass worker result caches

  static ExperimentOptions parse(int argc, char** argv,
                                 std::size_t default_samples,
                                 std::size_t default_nmax);
};

// Drives every sweep of one bench invocation under the execution mode the
// flags selected:
//
//   normal      evaluate all cells on the composed lanes (threads by
//               default; forked workers with --workers; remote daemons
//               with --connect; any mix of the three at once) and hand
//               the results back;
//   --shard=i/k evaluate only the owned cells of each sweep, append one
//               ShardPartial section per run() call to the partial file
//               (or stream it to the --merge peer with --shard-serve),
//               and return std::nullopt - the bench skips its printing
//               and exits after its last sweep;
//   --merge     evaluate nothing; take the next ShardPartial section from
//               every input source - a file, or a socket streaming shards
//               as they finish - and return the merged full result vector.
//
// Benches call run() once per grid, in a fixed order, so section s of every
// partial source corresponds to the bench's s-th sweep.  A failed cell (a
// throwing cell_fn or a crashed worker) prints the per-cell errors and
// exits 1 - a bench table with silently missing rows would be worse.
//
// The PlanFn overload is the preferred one: a plan (core/backend.h) is the
// sweep's evaluation recipe as data, which is what lets --connect ship
// cells to sweep_workerd daemons that have no access to the bench binary.
// The CellFn overload stays for local-only sweeps (arbitrary closures) and
// exits 2 under --connect.
//
//   SweepRunner runner(opts);
//   const auto results = runner.run(cells, plan_fn);
//   if (!results) return 0;            // --shard: partial written
//   ... print tables from *results ...
class SweepRunner {
 public:
  // default_threads replaces opts.threads when that is 0 (e.g. the runtime
  // bench defaults to 1 in-process worker because each cell spawns its own
  // process threads); 0 keeps the hardware-concurrency default.
  explicit SweepRunner(const ExperimentOptions& opts,
                       std::size_t default_threads = 0);
  ~SweepRunner();  // out of line: HybridExecutor is forward-declared here

  // Local-only: cells evaluate through an arbitrary closure.
  std::optional<std::vector<ResultSet>> run(
      const std::vector<Scenario>& cells, const CellFn& cell_fn);
  // Cluster-capable: cells evaluate through serializable plans - locally
  // via evaluate_plan, remotely on sweep_workerd workers - with bitwise
  // identical results.
  std::optional<std::vector<ResultSet>> run(
      const std::vector<Scenario>& cells, const PlanFn& plan_fn);
  // Shorthand for the one-step plan "evaluate on this backend".
  std::optional<std::vector<ResultSet>> run(
      const std::vector<Scenario>& cells, const EvalBackend& backend);

  // The port a --shard-serve run is listening on (0 when not serving);
  // useful with --shard-serve=0 (ephemeral).
  std::uint16_t shard_serve_port() const;

 private:
  struct MergeSource;  // a partial file, or a socket streaming partials

  std::optional<std::vector<ResultSet>> run_impl(
      const std::vector<Scenario>& cells, const CellFn& cell_fn,
      const PlanFn* plan_fn);
  std::vector<CellOutcome> evaluate(const std::vector<Scenario>& cells,
                                    const CellFn& cell_fn,
                                    const PlanFn* plan_fn) const;

  ExperimentOptions opts_;
  std::size_t sweep_index_ = 0;
  std::vector<std::byte> partial_bytes_;           // shard-to-file mode
  std::unique_ptr<net::Listener> shard_listener_;  // --shard-serve
  std::unique_ptr<net::FrameConn> shard_conn_;     // the one merge peer
  std::vector<std::unique_ptr<MergeSource>> merge_sources_;
  // One executor for the whole bench run: its lanes (and a TCP lane's
  // worker connections) persist across sweeps.  Null in merge mode.
  std::unique_ptr<HybridExecutor> executor_;
  bool remote_lanes_ = false;  // a --connect lane exists: plans required
  // Crash durability (--journal / --resume): the writer appends a record
  // per committed cell; the recovered analysis seeds resumed sweeps.
  std::unique_ptr<recov::JournalWriter> journal_;
  std::unique_ptr<recov::JournalAnalysis> resume_state_;
};

// "value +- half_width" with sensible precision.
std::string fmt_ci(double value, double half_width, int precision = 4);

// Percentage-formatted relative deviation of measured from reference.
std::string fmt_dev(double measured, double reference);

// Standard header naming the paper and the experiment (keeps bench output
// self-describing when tee'd into logs).
void print_banner(const std::string& experiment_id,
                  const std::string& description);

// Three-line digest of one scenario's analytic evaluation under each scheme
// (async E[X]/sd/E[L], sync E[Z]/CL, PRP overheads/rollback bound); the
// shared opening block of quickstart and scheme_comparison.
std::string scheme_summary(const ResultSet& async_exact,
                           const ResultSet& sync_exact,
                           const ResultSet& prp_exact);

}  // namespace rbx
