// Shared plumbing for the bench binaries that regenerate the paper's
// tables and figures.
//
// Every bench runs with no arguments and prints the paper's rows to stdout;
// the flags below let a user trade precision for time and pick where the
// sweep cells execute:
//   --samples=N    Monte-Carlo sample count (lines / failures / commits)
//   --nmax=N       largest process count in sweeps
//   --seed=N       master RNG seed
//   --threads=N    in-process worker threads (default: hardware concurrency)
//   --workers=N    evaluate cells on N forked worker processes instead of
//                  threads (MultiProcessExecutor)
//   --batch=N      cells per worker batch frame for --workers/--connect
//                  (0 = adaptive, the default)
//   --connect=HOST:PORT,...
//                  evaluate cells on remote sweep_workerd daemons over TCP
//                  (net/cluster.h ClusterExecutor)
//   --steal        with --connect: once the queue is empty, re-dispatch a
//                  straggler's unanswered cells to idle workers (first
//                  answer wins, duplicates are deduped; output unchanged)
//   --handshake-timeout-ms=N
//                  with --connect: how long a worker's per-sweep Hello may
//                  go unanswered before it is demoted to "lost" (default
//                  10000; raise it when stolen-from stragglers need longer
//                  than that to flush a batch between sweeps)
//   --shard=i/k    evaluate only shard i of a k-way split of every sweep
//                  and write the results as a wire partial file instead of
//                  printing tables
//   --shard-out=F  where --shard writes the partial (default
//                  shard-<i>-of-<k>.rbxw)
//   --merge=F1,F2,...
//                  print the tables from k partial files instead of
//                  evaluating; byte-identical to an unsharded run
//
// Parsing is strict: an unknown flag, a malformed number, a negative value,
// --threads=0, --shard=3/2 or --connect=host (no port) prints a usage
// message to stderr and exits with status 2 (a typo'd flag silently
// falling back to defaults once cost a day of benchmarking against the
// wrong sample count).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/executor.h"
#include "core/result.h"
#include "net/socket.h"

namespace rbx {

namespace net {
class ClusterExecutor;  // net/cluster.h; kept out of every bench TU
}

// Strict non-negative integer parse shared by the bench flags and
// tools/sweep_workerd: rejects empty strings, signs, whitespace, non-digit
// suffixes and out-of-range values.
bool parse_strict_u64(const char* text, std::uint64_t* out);

struct ExperimentOptions {
  std::size_t samples = 20000;
  std::size_t nmax = 0;      // 0 = bench default
  std::uint64_t seed = 20260610;
  std::size_t threads = 0;   // 0 = hardware concurrency (SweepEngine default)
  std::size_t workers = 0;   // 0 = in-process threads; N = forked processes
  std::size_t batch = 0;     // cells per worker batch; 0 = adaptive
  std::vector<net::Endpoint> connect;  // non-empty = cluster execution
  bool steal = false;        // --connect: steal stragglers' tails
  std::size_t handshake_timeout_ms = 10000;  // --connect: Hello deadline
  ShardSpec shard;           // {0, 1} = unsharded
  std::string shard_out;     // partial file path; set when shard.active()
  std::vector<std::string> merge_inputs;  // non-empty = merge mode

  static ExperimentOptions parse(int argc, char** argv,
                                 std::size_t default_samples,
                                 std::size_t default_nmax);
};

// Drives every sweep of one bench invocation under the execution mode the
// flags selected:
//
//   normal      evaluate all cells (threads; worker processes with
//               --workers; remote daemons with --connect) and hand the
//               results back;
//   --shard=i/k evaluate only the owned cells of each sweep, append one
//               ShardPartial section per run() call to the partial file,
//               and return std::nullopt - the bench skips its printing and
//               exits after its last sweep;
//   --merge     evaluate nothing; pop the next ShardPartial section from
//               every input file and return the merged full result vector.
//
// Benches call run() once per grid, in a fixed order, so section s of every
// partial file corresponds to the bench's s-th sweep.  A failed cell (a
// throwing cell_fn or a crashed worker) prints the per-cell errors and
// exits 1 - a bench table with silently missing rows would be worse.
//
// The PlanFn overload is the preferred one: a plan (core/backend.h) is the
// sweep's evaluation recipe as data, which is what lets --connect ship
// cells to sweep_workerd daemons that have no access to the bench binary.
// The CellFn overload stays for local-only sweeps (arbitrary closures) and
// exits 2 under --connect.
//
//   SweepRunner runner(opts);
//   const auto results = runner.run(cells, plan_fn);
//   if (!results) return 0;            // --shard: partial written
//   ... print tables from *results ...
class SweepRunner {
 public:
  // default_threads replaces opts.threads when that is 0 (e.g. the runtime
  // bench defaults to 1 in-process worker because each cell spawns its own
  // process threads); 0 keeps the hardware-concurrency default.
  explicit SweepRunner(const ExperimentOptions& opts,
                       std::size_t default_threads = 0);
  ~SweepRunner();  // out of line: ClusterExecutor is forward-declared here

  // Local-only: cells evaluate through an arbitrary closure.
  std::optional<std::vector<ResultSet>> run(
      const std::vector<Scenario>& cells, const CellFn& cell_fn);
  // Cluster-capable: cells evaluate through serializable plans - locally
  // via evaluate_plan, remotely on sweep_workerd workers - with bitwise
  // identical results.
  std::optional<std::vector<ResultSet>> run(
      const std::vector<Scenario>& cells, const PlanFn& plan_fn);
  // Shorthand for the one-step plan "evaluate on this backend".
  std::optional<std::vector<ResultSet>> run(
      const std::vector<Scenario>& cells, const EvalBackend& backend);

 private:
  std::optional<std::vector<ResultSet>> run_impl(
      const std::vector<Scenario>& cells, const CellFn& cell_fn,
      const PlanFn* plan_fn);
  std::vector<CellOutcome> evaluate(const std::vector<Scenario>& cells,
                                    const CellFn& cell_fn,
                                    const PlanFn* plan_fn) const;

  ExperimentOptions opts_;
  std::size_t sweep_index_ = 0;
  std::vector<std::byte> partial_bytes_;           // shard mode accumulator
  std::vector<std::vector<wire::Frame>> merge_frames_;  // one per input file
  std::unique_ptr<net::ClusterExecutor> cluster_;  // --connect, else null
};

// "value +- half_width" with sensible precision.
std::string fmt_ci(double value, double half_width, int precision = 4);

// Percentage-formatted relative deviation of measured from reference.
std::string fmt_dev(double measured, double reference);

// Standard header naming the paper and the experiment (keeps bench output
// self-describing when tee'd into logs).
void print_banner(const std::string& experiment_id,
                  const std::string& description);

// Three-line digest of one scenario's analytic evaluation under each scheme
// (async E[X]/sd/E[L], sync E[Z]/CL, PRP overheads/rollback bound); the
// shared opening block of quickstart and scheme_comparison.
std::string scheme_summary(const ResultSet& async_exact,
                           const ResultSet& sync_exact,
                           const ResultSet& prp_exact);

}  // namespace rbx
