// Shared plumbing for the bench binaries that regenerate the paper's
// tables and figures.
//
// Every bench runs with no arguments and prints the paper's rows to stdout;
// the flags below let a user trade precision for time:
//   --samples=N   Monte-Carlo sample count (lines / failures / commits)
//   --nmax=N      largest process count in sweeps
//   --seed=N      master RNG seed
//   --threads=N   SweepEngine worker threads (default: hardware concurrency)
//
// Parsing is strict: an unknown flag, a malformed number, a negative value
// or --threads=0 prints a usage message to stderr and exits with status 2
// (a typo'd flag silently falling back to defaults once cost a day of
// benchmarking against the wrong sample count).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/result.h"

namespace rbx {

struct ExperimentOptions {
  std::size_t samples = 20000;
  std::size_t nmax = 0;      // 0 = bench default
  std::uint64_t seed = 20260610;
  std::size_t threads = 0;   // 0 = hardware concurrency (SweepEngine default)

  static ExperimentOptions parse(int argc, char** argv,
                                 std::size_t default_samples,
                                 std::size_t default_nmax);
};

// "value +- half_width" with sensible precision.
std::string fmt_ci(double value, double half_width, int precision = 4);

// Percentage-formatted relative deviation of measured from reference.
std::string fmt_dev(double measured, double reference);

// Standard header naming the paper and the experiment (keeps bench output
// self-describing when tee'd into logs).
void print_banner(const std::string& experiment_id,
                  const std::string& description);

// Three-line digest of one scenario's analytic evaluation under each scheme
// (async E[X]/sd/E[L], sync E[Z]/CL, PRP overheads/rollback bound); the
// shared opening block of quickstart and scheme_comparison.
std::string scheme_summary(const ResultSet& async_exact,
                           const ResultSet& sync_exact,
                           const ResultSet& prp_exact);

}  // namespace rbx
