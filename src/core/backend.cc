#include "core/backend.h"

#include <stdexcept>

#include "core/ablation_backend.h"
#include "core/analytic_backend.h"
#include "core/density_backend.h"
#include "core/monte_carlo_backend.h"
#include "core/runtime_backend.h"
#include "core/structure_backend.h"
#include "perf/micro_backend.h"

namespace rbx {

bool EvalBackend::supports(const Scenario& scenario) const {
  (void)scenario;
  return true;
}

const EvalBackend& analytic_backend() {
  static const AnalyticBackend backend;
  return backend;
}

const EvalBackend& monte_carlo_backend() {
  static const MonteCarloBackend backend;
  return backend;
}

const EvalBackend& runtime_backend() {
  static const RuntimeBackend backend;
  return backend;
}

const EvalBackend& density_analytic_backend() {
  static const DensityAnalyticBackend backend;
  return backend;
}

const EvalBackend& density_monte_carlo_backend() {
  static const DensityMonteCarloBackend backend;
  return backend;
}

const EvalBackend& exact_line_backend() {
  static const ExactLineBackend backend;
  return backend;
}

const EvalBackend& hybrid_scheme_backend() {
  static const HybridSchemeBackend backend;
  return backend;
}

const EvalBackend& markov_structure_backend() {
  static const MarkovStructureBackend backend;
  return backend;
}

const EvalBackend& markov_micro_backend() {
  static const MarkovMicroBackend backend;
  return backend;
}

std::vector<const EvalBackend*> all_backends() {
  return {&analytic_backend(),         &monte_carlo_backend(),
          &runtime_backend(),          &density_analytic_backend(),
          &density_monte_carlo_backend(), &exact_line_backend(),
          &hybrid_scheme_backend(),    &markov_structure_backend(),
          &markov_micro_backend()};
}

const EvalBackend* find_backend(const std::string& name) {
  for (const EvalBackend* b : all_backends()) {
    if (b->name() == name) {
      return b;
    }
  }
  return nullptr;
}

// Far above any real plan (plans are 1-3 steps); a corrupt count field
// fails here instead of as a huge allocation.
static constexpr std::uint32_t kMaxPlanSteps = 64;

void EvalPlan::encode(wire::Writer& w) const {
  if (steps.empty() || steps.size() > kMaxPlanSteps) {
    throw wire::Error("eval plan: " + std::to_string(steps.size()) +
                      " steps is not encodable (want 1.." +
                      std::to_string(kMaxPlanSteps) + ")");
  }
  w.u32(static_cast<std::uint32_t>(steps.size()));
  for (const EvalStep& step : steps) {
    w.str(step.backend);
    w.str(step.prefix);
  }
}

EvalPlan EvalPlan::decode(wire::Reader& r) {
  const std::uint32_t count = r.u32();
  if (count == 0 || count > kMaxPlanSteps) {
    throw wire::Error("eval plan: invalid step count " +
                      std::to_string(count));
  }
  EvalPlan plan;
  plan.steps.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    EvalStep step;
    step.backend = r.str();
    step.prefix = r.str();
    plan.steps.push_back(std::move(step));
  }
  return plan;
}

EvalPlan plan_for(const EvalBackend& backend) {
  return EvalPlan{{EvalStep{backend.name(), ""}}};
}

ResultSet evaluate_plan(const EvalPlan& plan, const Scenario& scenario) {
  if (plan.steps.empty()) {
    throw std::runtime_error("eval plan: no steps");
  }
  ResultSet out;
  for (std::size_t i = 0; i < plan.steps.size(); ++i) {
    const EvalStep& step = plan.steps[i];
    const EvalBackend* backend = find_backend(step.backend);
    if (backend == nullptr) {
      throw std::runtime_error("eval plan: unknown backend '" +
                               step.backend + "'");
    }
    if (i == 0) {
      out = backend->evaluate(scenario);
    } else {
      out.merge(backend->evaluate(scenario), step.prefix);
    }
  }
  return out;
}

}  // namespace rbx
