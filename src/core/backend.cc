#include "core/backend.h"

#include "core/analytic_backend.h"
#include "core/monte_carlo_backend.h"
#include "core/runtime_backend.h"

namespace rbx {

bool EvalBackend::supports(const Scenario& scenario) const {
  (void)scenario;
  return true;
}

const EvalBackend& analytic_backend() {
  static const AnalyticBackend backend;
  return backend;
}

const EvalBackend& monte_carlo_backend() {
  static const MonteCarloBackend backend;
  return backend;
}

const EvalBackend& runtime_backend() {
  static const RuntimeBackend backend;
  return backend;
}

std::vector<const EvalBackend*> all_backends() {
  return {&analytic_backend(), &monte_carlo_backend(), &runtime_backend()};
}

const EvalBackend* find_backend(const std::string& name) {
  for (const EvalBackend* b : all_backends()) {
    if (b->name() == name) {
      return b;
    }
  }
  return nullptr;
}

}  // namespace rbx
