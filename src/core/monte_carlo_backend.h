// Monte-Carlo (discrete-event) evaluation of a Scenario via des/.
//
// Dispatches on the scenario's scheme:
//
//  * kAsynchronous - AsyncRbSimulator::run_lines(samples, error_rate):
//    "mean_interval_x" with its CI, per-process "rp_count_i" under the
//    three counting conventions, and "line_age" when errors are injected.
//  * kSynchronized - SyncRbSimulator under the scenario's SyncPolicy:
//    "sync_mean_max_wait", "sync_mean_loss", "sync_loss_rate",
//    "sync_line_spacing", "sync_states_per_line" (+ its "_sd" spread),
//    and "sync_rollback_distance" (+ p95) when errors are injected.
//  * kPseudoRecoveryPoints - PrpSimulator until `samples` failures:
//    "prp_distance" (+ p95), the paired "async_distance" (+ p95),
//    affected-set sizes, domino counts, storage accounting, and the
//    hybrid-scheme metrics when prp_sync_period > 0.  Needs a positive
//    error rate.
//
// Sample-parallel: when the scenario's streams() > 1 the sample budget
// is partitioned into that many independent RNG sub-streams (seeds from
// derive_stream_seed), evaluated on up to current_eval_context()
// .thread_budget intra-cell threads and merged in fixed stream order.
// streams() == 1 is the exact historical sequential path.
//
// Deterministic: the same scenario (seed, streams included) produces
// bitwise identical results on any thread count of any machine - the
// property the SweepEngine determinism and stream tests pin down.
#pragma once

#include "core/backend.h"
#include "des/async_sim.h"

namespace rbx {

class MonteCarloBackend : public EvalBackend {
 public:
  std::string name() const override { return "monte-carlo"; }
  bool supports(const Scenario& scenario) const override;
  ResultSet evaluate(const Scenario& scenario) const override;
};

// Runs the asynchronous-RB simulator over the scenario's full sample
// budget, honoring the streams() axis and the ambient thread budget.
// Shared by MonteCarloBackend and DensityMonteCarloBackend so the two
// agree bitwise on the underlying sample stream.
AsyncSimResult run_async_monte_carlo(const Scenario& scenario);

}  // namespace rbx
