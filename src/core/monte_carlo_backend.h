// Monte-Carlo (discrete-event) evaluation of a Scenario via des/.
//
// Dispatches on the scenario's scheme:
//
//  * kAsynchronous - AsyncRbSimulator::run_lines(samples, error_rate):
//    "mean_interval_x" with its CI, per-process "rp_count_i" under the
//    three counting conventions, and "line_age" when errors are injected.
//  * kSynchronized - SyncRbSimulator under the scenario's SyncPolicy:
//    "sync_mean_max_wait", "sync_mean_loss", "sync_loss_rate",
//    "sync_line_spacing", "sync_states_per_line" (+ its "_sd" spread),
//    and "sync_rollback_distance" (+ p95) when errors are injected.
//  * kPseudoRecoveryPoints - PrpSimulator until `samples` failures:
//    "prp_distance" (+ p95), the paired "async_distance" (+ p95),
//    affected-set sizes, domino counts, storage accounting, and the
//    hybrid-scheme metrics when prp_sync_period > 0.  Needs a positive
//    error rate.
//
// Deterministic: the same scenario (seed included) produces bitwise
// identical results on any thread of any machine - the property the
// SweepEngine determinism tests pin down.
#pragma once

#include "core/backend.h"

namespace rbx {

class MonteCarloBackend : public EvalBackend {
 public:
  std::string name() const override { return "monte-carlo"; }
  bool supports(const Scenario& scenario) const override;
  ResultSet evaluate(const Scenario& scenario) const override;
};

}  // namespace rbx
