#include "core/scenario.h"

#include <sstream>
#include <utility>

#include "support/check.h"

namespace rbx {

namespace {

const char* scheme_tag(SchemeKind scheme) {
  switch (scheme) {
    case SchemeKind::kAsynchronous:
      return "async";
    case SchemeKind::kSynchronized:
      return "sync";
    case SchemeKind::kPseudoRecoveryPoints:
      return "prp";
  }
  return "?";
}

// Enum decode helpers: a corrupt tag byte must surface as wire::Error, not
// as an out-of-range enum value propagating into switches.
SchemeKind decode_scheme(std::uint8_t tag) {
  switch (tag) {
    case 0:
      return SchemeKind::kAsynchronous;
    case 1:
      return SchemeKind::kSynchronized;
    case 2:
      return SchemeKind::kPseudoRecoveryPoints;
  }
  throw wire::Error("scenario: unknown scheme tag " + std::to_string(tag));
}

SyncStrategy decode_strategy(std::uint8_t tag) {
  switch (tag) {
    case 0:
      return SyncStrategy::kConstantInterval;
    case 1:
      return SyncStrategy::kElapsedTime;
    case 2:
      return SyncStrategy::kSavedStates;
  }
  throw wire::Error("scenario: unknown sync strategy tag " +
                    std::to_string(tag));
}

// Range checks mirroring the fluent setters' RBX_CHECKs; on the decode
// path a violation means corrupt wire data and must throw, not abort.
double require_non_negative(double v, const char* what) {
  if (!(v >= 0.0)) {
    throw wire::Error(std::string("scenario: ") + what +
                      " must be non-negative");
  }
  return v;
}

}  // namespace

Scenario::Scenario(ProcessSetParams params) : params_(std::move(params)) {}

Scenario Scenario::symmetric(std::size_t n, double mu, double lambda) {
  return Scenario(ProcessSetParams::symmetric(n, mu, lambda));
}

Scenario Scenario::from_mu(std::vector<double> mu) {
  const std::size_t n = mu.size();
  return Scenario(
      ProcessSetParams(std::move(mu), std::vector<double>(n * n, 0.0)));
}

Scenario& Scenario::params(ProcessSetParams p) {
  params_ = std::move(p);
  return *this;
}

Scenario& Scenario::scheme(SchemeKind s) {
  scheme_ = s;
  return *this;
}

Scenario& Scenario::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}

Scenario& Scenario::error_rate(double rate) {
  RBX_CHECK_MSG(rate >= 0.0, "error rate must be non-negative");
  error_rate_ = rate;
  return *this;
}

Scenario& Scenario::at_failure_probability(double p) {
  RBX_CHECK_MSG(p >= 0.0 && p <= 1.0,
                "AT failure probability must be in [0, 1]");
  at_failure_probability_ = p;
  return *this;
}

Scenario& Scenario::t_record(double t) {
  RBX_CHECK_MSG(t >= 0.0, "state-recording time must be non-negative");
  t_record_ = t;
  return *this;
}

Scenario& Scenario::sync_policy(SyncPolicy policy) {
  sync_policy_ = policy;
  return *this;
}

Scenario& Scenario::scoped_prp(bool scoped) {
  scoped_prp_ = scoped;
  return *this;
}

Scenario& Scenario::prp_sync_period(double period) {
  RBX_CHECK_MSG(period >= 0.0, "sync period must be non-negative");
  prp_sync_period_ = period;
  return *this;
}

Scenario& Scenario::samples(std::size_t s) {
  RBX_CHECK_MSG(s > 0, "sample budget must be positive");
  samples_ = s;
  return *this;
}

Scenario& Scenario::streams(std::size_t k) {
  RBX_CHECK_MSG(k > 0, "stream count must be positive");
  streams_ = k;
  return *this;
}

Scenario& Scenario::workload(RuntimeWorkload w) {
  workload_ = w;
  return *this;
}

std::string Scenario::label() const {
  std::ostringstream os;
  os << scheme_tag(scheme_) << " " << params_.describe() << " seed=" << seed_;
  // streams=1 is the implicit default; omitting it keeps every
  // pre-stream label (and thus golden output) byte-identical.
  if (streams_ > 1) {
    os << " streams=" << streams_;
  }
  return os.str();
}

RuntimeConfig Scenario::runtime_config() const {
  RuntimeConfig cfg;
  cfg.num_processes = params_.n();
  cfg.scheme = scheme_;
  cfg.seed = seed_;
  cfg.steps = workload_.steps;
  cfg.message_probability = workload_.message_probability;
  cfg.rp_probability = workload_.rp_probability;
  cfg.at_failure_probability = at_failure_probability_;
  cfg.alternate_failure_probability = workload_.alternate_failure_probability;
  cfg.rb_alternates = workload_.rb_alternates;
  cfg.sync_period_steps = workload_.sync_period_steps;
  cfg.scoped_prp = scoped_prp_;
  return cfg;
}

SyncSimParams Scenario::sync_sim_params() const {
  SyncSimParams sp;
  sp.mu = params_.mu();
  sp.strategy = sync_policy_.strategy;
  sp.interval = sync_policy_.interval;
  sp.elapsed_threshold = sync_policy_.elapsed_threshold;
  sp.saved_threshold = sync_policy_.saved_threshold;
  sp.error_rate = error_rate_;
  return sp;
}

void Scenario::encode(wire::Writer& w) const {
  w.f64_vec(params_.mu());
  w.f64_vec(params_.lambda_flat());
  w.u8(static_cast<std::uint8_t>(scheme_));
  w.u64(seed_);
  w.f64(error_rate_);
  w.f64(at_failure_probability_);
  w.f64(t_record_);
  w.u8(static_cast<std::uint8_t>(sync_policy_.strategy));
  w.f64(sync_policy_.interval);
  w.f64(sync_policy_.elapsed_threshold);
  w.u64(sync_policy_.saved_threshold);
  w.u8(scoped_prp_ ? 1 : 0);
  w.f64(prp_sync_period_);
  w.u64(samples_);
  w.u64(workload_.steps);
  w.f64(workload_.message_probability);
  w.f64(workload_.rp_probability);
  w.f64(workload_.alternate_failure_probability);
  w.u64(workload_.rb_alternates);
  w.u64(workload_.sync_period_steps);
  w.u64(streams_);
}

Scenario Scenario::decode(wire::Reader& r) {
  std::vector<double> mu = r.f64_vec();
  std::vector<double> lambda = r.f64_vec();
  // Validate the rate set here: ProcessSetParams RBX_CHECKs the same
  // invariants, but on the decode path a violation is corrupt wire data
  // and must throw a catchable error instead of aborting.
  const std::size_t n = mu.size();
  if (n == 0) {
    throw wire::Error("scenario: empty mu vector");
  }
  if (lambda.size() != n * n) {
    throw wire::Error("scenario: lambda matrix is not n x n");
  }
  for (double m : mu) {
    if (!(m > 0.0)) {
      throw wire::Error("scenario: mu rates must be positive");
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (lambda[i * n + i] != 0.0) {
      throw wire::Error("scenario: lambda diagonal must be zero");
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (!(lambda[i * n + j] >= 0.0) ||
          lambda[i * n + j] != lambda[j * n + i]) {
        throw wire::Error("scenario: lambda must be symmetric non-negative");
      }
    }
  }
  Scenario s(ProcessSetParams(std::move(mu), std::move(lambda)));
  s.scheme_ = decode_scheme(r.u8());
  s.seed_ = r.u64();
  s.error_rate_ = require_non_negative(r.f64(), "error rate");
  const double at_p = r.f64();
  if (!(at_p >= 0.0 && at_p <= 1.0)) {
    throw wire::Error("scenario: AT failure probability outside [0, 1]");
  }
  s.at_failure_probability_ = at_p;
  s.t_record_ = require_non_negative(r.f64(), "state-recording time");
  s.sync_policy_.strategy = decode_strategy(r.u8());
  s.sync_policy_.interval = r.f64();
  s.sync_policy_.elapsed_threshold = r.f64();
  s.sync_policy_.saved_threshold = static_cast<std::size_t>(r.u64());
  s.scoped_prp_ = r.u8() != 0;
  s.prp_sync_period_ = require_non_negative(r.f64(), "sync period");
  const std::uint64_t samples = r.u64();
  if (samples == 0) {
    throw wire::Error("scenario: sample budget must be positive");
  }
  s.samples_ = static_cast<std::size_t>(samples);
  s.workload_.steps = static_cast<std::size_t>(r.u64());
  s.workload_.message_probability = r.f64();
  s.workload_.rp_probability = r.f64();
  s.workload_.alternate_failure_probability = r.f64();
  s.workload_.rb_alternates = static_cast<std::size_t>(r.u64());
  s.workload_.sync_period_steps = static_cast<std::size_t>(r.u64());
  const std::uint64_t streams = r.u64();
  if (streams == 0) {
    throw wire::Error("scenario: stream count must be positive");
  }
  s.streams_ = static_cast<std::size_t>(streams);
  return s;
}

PrpSimParams Scenario::prp_sim_params() const {
  RBX_CHECK_MSG(error_rate_ > 0.0,
                "PRP simulation needs a positive error rate (it runs until "
                "a failure count is reached)");
  PrpSimParams sp;
  sp.t_record = t_record_;
  sp.error_rate = error_rate_;
  sp.affects_everyone = !scoped_prp_;
  sp.sync_period = prp_sync_period_;
  return sp;
}

}  // namespace rbx
