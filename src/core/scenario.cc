#include "core/scenario.h"

#include <sstream>
#include <utility>

#include "support/check.h"

namespace rbx {

namespace {

const char* scheme_tag(SchemeKind scheme) {
  switch (scheme) {
    case SchemeKind::kAsynchronous:
      return "async";
    case SchemeKind::kSynchronized:
      return "sync";
    case SchemeKind::kPseudoRecoveryPoints:
      return "prp";
  }
  return "?";
}

}  // namespace

Scenario::Scenario(ProcessSetParams params) : params_(std::move(params)) {}

Scenario Scenario::symmetric(std::size_t n, double mu, double lambda) {
  return Scenario(ProcessSetParams::symmetric(n, mu, lambda));
}

Scenario Scenario::from_mu(std::vector<double> mu) {
  const std::size_t n = mu.size();
  return Scenario(
      ProcessSetParams(std::move(mu), std::vector<double>(n * n, 0.0)));
}

Scenario& Scenario::params(ProcessSetParams p) {
  params_ = std::move(p);
  return *this;
}

Scenario& Scenario::scheme(SchemeKind s) {
  scheme_ = s;
  return *this;
}

Scenario& Scenario::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}

Scenario& Scenario::error_rate(double rate) {
  RBX_CHECK_MSG(rate >= 0.0, "error rate must be non-negative");
  error_rate_ = rate;
  return *this;
}

Scenario& Scenario::at_failure_probability(double p) {
  RBX_CHECK_MSG(p >= 0.0 && p <= 1.0,
                "AT failure probability must be in [0, 1]");
  at_failure_probability_ = p;
  return *this;
}

Scenario& Scenario::t_record(double t) {
  RBX_CHECK_MSG(t >= 0.0, "state-recording time must be non-negative");
  t_record_ = t;
  return *this;
}

Scenario& Scenario::sync_policy(SyncPolicy policy) {
  sync_policy_ = policy;
  return *this;
}

Scenario& Scenario::scoped_prp(bool scoped) {
  scoped_prp_ = scoped;
  return *this;
}

Scenario& Scenario::prp_sync_period(double period) {
  RBX_CHECK_MSG(period >= 0.0, "sync period must be non-negative");
  prp_sync_period_ = period;
  return *this;
}

Scenario& Scenario::samples(std::size_t s) {
  RBX_CHECK_MSG(s > 0, "sample budget must be positive");
  samples_ = s;
  return *this;
}

Scenario& Scenario::workload(RuntimeWorkload w) {
  workload_ = w;
  return *this;
}

std::string Scenario::label() const {
  std::ostringstream os;
  os << scheme_tag(scheme_) << " " << params_.describe() << " seed=" << seed_;
  return os.str();
}

RuntimeConfig Scenario::runtime_config() const {
  RuntimeConfig cfg;
  cfg.num_processes = params_.n();
  cfg.scheme = scheme_;
  cfg.seed = seed_;
  cfg.steps = workload_.steps;
  cfg.message_probability = workload_.message_probability;
  cfg.rp_probability = workload_.rp_probability;
  cfg.at_failure_probability = at_failure_probability_;
  cfg.alternate_failure_probability = workload_.alternate_failure_probability;
  cfg.rb_alternates = workload_.rb_alternates;
  cfg.sync_period_steps = workload_.sync_period_steps;
  cfg.scoped_prp = scoped_prp_;
  return cfg;
}

SyncSimParams Scenario::sync_sim_params() const {
  SyncSimParams sp;
  sp.mu = params_.mu();
  sp.strategy = sync_policy_.strategy;
  sp.interval = sync_policy_.interval;
  sp.elapsed_threshold = sync_policy_.elapsed_threshold;
  sp.saved_threshold = sync_policy_.saved_threshold;
  sp.error_rate = error_rate_;
  return sp;
}

PrpSimParams Scenario::prp_sim_params() const {
  RBX_CHECK_MSG(error_rate_ > 0.0,
                "PRP simulation needs a positive error rate (it runs until "
                "a failure count is reached)");
  PrpSimParams sp;
  sp.t_record = t_record_;
  sp.error_rate = error_rate_;
  sp.affects_everyone = !scoped_prp_;
  sp.sync_period = prp_sync_period_;
  return sp;
}

}  // namespace rbx
