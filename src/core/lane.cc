#include "core/lane.h"

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/eval_context.h"
#include "support/io.h"

namespace rbx {

std::size_t default_parallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// --- cluster control frames ------------------------------------------------

void Hello::encode(wire::Writer& w) const {
  w.u32(protocol);
  w.u16(wire_version);
  w.u64(fingerprint);
  w.u64(total_cells);
  w.u32(flags);
  w.u64(lease_token);
  w.u64(lease_sig);
}

Hello Hello::decode(wire::Reader& r) {
  Hello out;
  out.protocol = r.u32();
  out.wire_version = r.u16();
  out.fingerprint = r.u64();
  out.total_cells = r.u64();
  out.flags = r.u32();
  // The lease fields are v3 additions; decoding them only when the peer
  // claims v3 lets an older peer's Hello reach the version check and be
  // refused with the clear mismatch message, not a framing error.
  if (out.protocol >= 3) {
    out.lease_token = r.u64();
    out.lease_sig = r.u64();
  }
  return out;
}

// --- FrameChannel ------------------------------------------------------------

FrameChannel::FrameChannel(FrameChannel&& other) noexcept
    : fd_(other.fd_), buf_(std::move(other.buf_)) {
  other.fd_ = -1;
}

FrameChannel& FrameChannel::operator=(FrameChannel&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buf_ = std::move(other.buf_);
    other.fd_ = -1;
  }
  return *this;
}

void FrameChannel::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

void FrameChannel::abort() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

bool FrameChannel::send(std::uint16_t type,
                        const std::vector<std::byte>& payload) {
  if (fd_ < 0) {
    return false;
  }
  return io::send_all(fd_, wire::seal_frame(type, payload));
}

bool FrameChannel::send_frame(const std::vector<std::byte>& framed) {
  if (fd_ < 0) {
    return false;
  }
  return io::send_all(fd_, framed);
}

bool FrameChannel::fill() {
  if (fd_ < 0) {
    return false;
  }
  std::byte chunk[1 << 16];
  const ssize_t got = io::read_some(fd_, chunk, sizeof(chunk));
  if (got <= 0) {
    return false;
  }
  buf_.insert(buf_.end(), chunk, chunk + got);
  return true;
}

bool FrameChannel::pop(wire::Frame* out) {
  std::size_t consumed = 0;
  if (!wire::parse_frame(buf_.data(), buf_.size(), out, &consumed)) {
    return false;
  }
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
  return true;
}

bool FrameChannel::recv(wire::Frame* out) {
  for (;;) {
    if (pop(out)) {
      return true;
    }
    if (!fill()) {
      return false;
    }
  }
}

// --- the worker-side serve loop --------------------------------------------

namespace {

// Serves kFrameCellBatch requests on `ch` until the peer hangs up: decode
// the batch, evaluate every cell through cell_fn, answer with one
// kFrameResultBatch.  Exactly this loop runs inside a ThreadLane worker
// thread and inside a ForkLane child process - from the dispatch loop's
// point of view the two are indistinguishable.  eval_threads is installed
// as the worker's ambient EvalContext for the whole session, so every
// cell_fn invocation sees the lane's intra-cell thread budget.  Returns
// true on clean EOF, false on a corrupt or out-of-protocol request
// stream.
bool serve_cells(FrameChannel& ch, const CellFn& cell_fn,
                 std::size_t eval_threads) {
  EvalContextScope scope(EvalContext{std::max<std::size_t>(eval_threads, 1)});
  for (;;) {
    wire::Frame frame;
    try {
      if (!ch.recv(&frame)) {
        return true;  // coordinator closed the channel: done
      }
    } catch (const wire::Error&) {
      return false;
    }
    if (frame.type != kFrameCellBatch) {
      return false;
    }
    ResultBatch response;
    try {
      wire::Reader r(frame.payload);
      const CellBatch batch = CellBatch::decode(r);
      r.expect_done();
      response.entries.reserve(batch.cells.size());
      for (const BatchCell& cell : batch.cells) {
        response.entries.push_back(
            {cell.index,
             evaluate_cell(cell_fn, cell.scenario,
                           static_cast<std::size_t>(cell.index))});
      }
    } catch (const wire::Error&) {
      return false;
    }
    if (!ch.send_frame(response.seal())) {
      return true;  // coordinator went away mid-answer
    }
  }
}

// How many workers a lane actually raises for a sweep of `cell_count`
// cells: never more workers than cells, never zero.
std::size_t clamp_workers(std::size_t configured, std::size_t cell_count) {
  return std::min(configured, std::max<std::size_t>(cell_count, 1));
}

// The per-worker intra-cell thread budget.  requested != 0 is an explicit
// budget passed through verbatim; 0 is adaptive - redistribute the lane's
// configured parallelism over the workers actually raised, so clamping
// the worker count to a small cell count hands the freed threads to the
// surviving workers' stream pools instead of idling them.
std::size_t worker_eval_threads(std::size_t requested, std::size_t configured,
                                std::size_t raised) {
  if (requested != 0) {
    return requested;
  }
  return std::max<std::size_t>(configured / std::max<std::size_t>(raised, 1),
                               1);
}

}  // namespace

// --- ThreadLane --------------------------------------------------------------

struct ThreadLane::Worker final : LaneWorker {
  explicit Worker(std::size_t id) : id_(id) {}

  std::string describe() const override {
    return "thread#" + std::to_string(id_);
  }
  FrameChannel* channel() override { return &channel_; }
  void retire() override { channel_.close(); }

  std::size_t id_;
  FrameChannel channel_;
  std::thread thread_;
};

ThreadLane::ThreadLane(std::size_t threads)
    : threads_(threads != 0 ? threads : default_parallelism()) {}

ThreadLane::~ThreadLane() { finish(); }

void ThreadLane::start(std::size_t cell_count, const CellFn& cell_fn,
                       std::size_t eval_threads,
                       std::vector<LaneWorker*>* out) {
  finish();
  const std::size_t count = clamp_workers(threads_, cell_count);
  const std::size_t budget = worker_eval_threads(eval_threads, threads_, count);
  for (std::size_t i = 0; i < count; ++i) {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      finish();
      throw std::runtime_error("ThreadLane: socketpair() failed");
    }
    auto worker = std::make_unique<Worker>(i);
    worker->channel_ = FrameChannel(sv[0]);
    const int serve_fd = sv[1];
    worker->thread_ = std::thread([serve_fd, &cell_fn, budget]() {
      FrameChannel ch(serve_fd);
      serve_cells(ch, cell_fn, budget);
    });
    out->push_back(worker.get());
    workers_.push_back(std::move(worker));
  }
}

void ThreadLane::finish() {
  for (auto& worker : workers_) {
    // Closing the coordinator end EOFs the serve loop; the thread exits.
    worker->channel_.close();
    if (worker->thread_.joinable()) {
      worker->thread_.join();
    }
  }
  workers_.clear();
}

// --- ForkLane ----------------------------------------------------------------

namespace {

// Close every inherited fd but `keep` (and the standard streams) in a
// fresh fork child.  A child that kept a copy of another worker's
// socketpair - or of a TCP connection in a hybrid sweep - would stop that
// channel from ever reading EOF when the coordinator closes it.
void close_other_fds(int keep) {
  long cap = ::sysconf(_SC_OPEN_MAX);
  if (cap < 0 || cap > 4096) {
    cap = 4096;  // we open a handful of fds; anything higher is noise
  }
  for (int fd = 3; fd < static_cast<int>(cap); ++fd) {
    if (fd != keep) {
      ::close(fd);
    }
  }
}

}  // namespace

struct ForkLane::Worker final : LaneWorker {
  Worker(ForkLane* lane, std::size_t id) : lane_(lane), id_(id) {}

  std::string describe() const override {
    return "fork#" + std::to_string(id_);
  }
  FrameChannel* channel() override { return &channel_; }
  void retire() override { channel_.close(); }

  bool can_revive() const override { return true; }
  Revive revive() override {
    reap();
    return lane_->spawn(*this) ? Revive::kReady : Revive::kFailed;
  }
  int revive_delay_ms() const override { return 0; }  // respawn immediately

  void reap() {
    if (pid_ > 0) {
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
  }

  ForkLane* lane_;
  std::size_t id_;
  pid_t pid_ = -1;
  FrameChannel channel_;
};

ForkLane::ForkLane(std::size_t workers)
    : count_(workers != 0 ? workers : default_parallelism()) {}

ForkLane::~ForkLane() { finish(); }

bool ForkLane::spawn(Worker& worker) {
  // A mid-sweep respawn forks while other lanes' threads are running, so
  // the child may only rely on facilities fork() re-initializes for the
  // child of a multithreaded parent: glibc releases the malloc arena and
  // stdio locks across fork, and everything else on the child's path to
  // its first cell (FrameChannel, the wire codecs, io::*) is plain
  // malloc + raw syscalls.  SweepRunner additionally orders the fork
  // lane before the thread lane so the *initial* spawns happen before
  // any lane thread exists.
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    return false;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    close_other_fds(sv[1]);
    FrameChannel ch(sv[1]);
    const bool clean = serve_cells(ch, *cell_fn_, worker_eval_threads_);
    ::_exit(clean ? 0 : 1);
  }
  ::close(sv[1]);
  worker.pid_ = pid;
  worker.channel_ = FrameChannel(sv[0]);
  return true;
}

void ForkLane::start(std::size_t cell_count, const CellFn& cell_fn,
                     std::size_t eval_threads,
                     std::vector<LaneWorker*>* out) {
  finish();
  cell_fn_ = &cell_fn;
  const std::size_t count = clamp_workers(count_, cell_count);
  // Stored on the lane (not a start() local) because mid-sweep revives
  // re-enter spawn() long after start() returned.
  worker_eval_threads_ = worker_eval_threads(eval_threads, count_, count);
  std::size_t spawned = 0;
  for (std::size_t i = 0; i < count; ++i) {
    auto worker = std::make_unique<Worker>(this, i);
    if (spawn(*worker)) {
      ++spawned;
    }
    // A failed spawn leaves the worker lost; the dispatch loop retries it
    // on the revive timer.
    out->push_back(worker.get());
    workers_.push_back(std::move(worker));
  }
  if (spawned == 0) {
    finish();
    throw std::runtime_error("ForkLane: fork() failed for every worker");
  }
}

void ForkLane::finish() {
  for (auto& worker : workers_) {
    worker->channel_.close();  // EOF: the child's serve loop exits
    worker->reap();
  }
  workers_.clear();
  cell_fn_ = nullptr;
}

}  // namespace rbx
