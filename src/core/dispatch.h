// DispatchCore: the one scheduler every executor shares.
//
// InProcessExecutor, MultiProcessExecutor and net::ClusterExecutor used to
// each reimplement the same machinery - a cell queue, adaptive batch
// sizing, per-cell in-flight accounting under a committed mask, straggler
// work stealing, loss reconciliation and a streaming result merge.  All of
// that now lives here once, driving pluggable Lanes (core/lane.h): a
// worker is a framed channel, whether a thread, a forked child or a TCP
// daemon on another host, and one poll loop feeds them all.  The three
// executors are thin lane configurations; HybridExecutor runs any mix of
// lanes in a single sweep (`--threads=8 --workers=4 --connect=a:1,b:2`),
// and because per-cell seeds pin every evaluation, the output is byte-
// identical to a single-threaded run no matter how the cells were dealt.
//
// The scheduler applies the paper's backward error recovery to the worker
// pool itself:
//
//   loss       a worker that dies with a batch in flight has those cells
//              rolled back to the queue and re-run elsewhere (a cell that
//              is in flight on two lost workers is declared poisonous and
//              becomes a per-cell error instead of cascading);
//   stealing   with options.steal, an idle worker takes the back half of
//              the biggest straggler's unanswered sole-copy tail once the
//              queue is dry; first answer commits, late duplicates are
//              recognized by the committed mask and dropped;
//   re-admission
//              a lost worker whose lane can revive it (a ForkLane child
//              is respawned; a TcpLane endpoint is reconnected) is
//              retried on a doubling backoff timer, re-handshaken
//              against the same grid fingerprint, and rejoins the live
//              pool mid-sweep, taking queue or stolen work.
//
// None of loss, stealing or re-admission can change a printed table -
// only the wall-clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/backend.h"
#include "core/executor.h"
#include "core/lane.h"

namespace rbx {

struct DispatchOptions {
  std::size_t batch_size = 0;  // cells per batch frame; 0 = adaptive
  // Re-dispatch a straggler's unanswered tail to idle workers once the
  // queue is empty (duplicate answers are deduped; output is unchanged).
  bool steal = false;
  // How long a worker's per-sweep Hello may go unanswered before it is
  // demoted to "lost" (it accepted TCP but never spoke the protocol).
  int handshake_timeout_ms = 10000;
  bool quiet = false;  // no stderr notes on loss/steal/re-admission
  // Mid-sweep re-admission: a lost worker that can_revive() is retried on
  // a backoff timer (base = the worker's revive_delay_ms, doubled per
  // consecutive failure), up to readmit_max_attempts tries per loss.
  bool readmit = true;
  int readmit_max_attempts = 5;
  // Ask remote daemons to bypass their result cache (--no-cache): set the
  // kHelloFlagNoCache bit in this sweep's handshake.
  bool no_cache = false;
  // Intra-cell thread budget handed to every lane's workers (the
  // Monte-Carlo stream pool; see Lane::start).  0 = adaptive: each lane
  // redistributes its configured parallelism over the workers it raises.
  std::size_t eval_threads = 0;
};

class DispatchCore {
 public:
  DispatchCore(std::vector<Lane*> lanes, DispatchOptions options);

  // How workers that need_plan() (remote daemons) evaluate cells; local
  // thread/fork workers always run cell_fn.  Must be set before run()
  // whenever a plan-needing lane is configured.
  void set_plan_fn(PlanFn plan_fn) { plan_fn_ = std::move(plan_fn); }

  // Fired once per cell the moment its outcome becomes final - the commit
  // point a sweep journal (recov/journal.h) hangs off.  Called from the
  // dispatch thread, in commit order (not cell order).  Cells the run
  // never commits (no worker remaining) do not fire.
  using CommitHook = std::function<void(std::size_t, const CellOutcome&)>;
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  // Seeds the NEXT run() with already-final outcomes (the redo pass of a
  // resumed sweep): cells with mask[i] != 0 take outcomes[i] verbatim,
  // are never enqueued and never reach a worker; only the losers are
  // evaluated.  One-shot - consumed by that run, later runs start clean.
  // The commit hook does not fire for pre-committed cells (they are
  // already in the journal).  mask and outcomes must match the grid the
  // next run() receives; run() throws std::runtime_error otherwise.
  void set_precommitted(std::vector<std::uint8_t> mask,
                        std::vector<CellOutcome> outcomes);

  // Evaluates every cell across the lanes; outcomes in cell order,
  // bitwise identical to a serial run of the same cell_fn.  Throws
  // std::runtime_error only for infrastructure failures (no usable
  // workers, poll failure, a plan-needing lane without a plan function);
  // worker loss is recovered, not thrown.
  std::vector<CellOutcome> run(const std::vector<Scenario>& cells,
                               const CellFn& cell_fn);

  // Cells re-dispatched from stragglers to idle workers - lifetime total
  // and the last run() alone (duplicated evaluation never shows in the
  // output, only in these counters).
  std::size_t stolen_cells() const { return stolen_total_; }
  std::size_t stolen_cells_last_run() const { return stolen_last_run_; }

  // Lost workers revived and re-admitted into the pool, same split.
  std::size_t readmitted_workers() const { return readmitted_total_; }
  std::size_t readmitted_workers_last_run() const {
    return readmitted_last_run_;
  }

 private:
  std::vector<Lane*> lanes_;
  DispatchOptions options_;
  PlanFn plan_fn_;
  CommitHook commit_hook_;
  bool have_precommitted_ = false;
  std::vector<std::uint8_t> precommitted_mask_;
  std::vector<CellOutcome> precommitted_outcomes_;
  std::size_t stolen_total_ = 0;
  std::size_t stolen_last_run_ = 0;
  std::size_t readmitted_total_ = 0;
  std::size_t readmitted_last_run_ = 0;
};

// Any mix of lanes behind the plain Executor interface - the executor
// behind `--threads=8 --workers=4 --connect=hostA:9000,hostB:9000`.
// Owns its lanes; per-sweep lanes (threads, forks) are raised and reaped
// per run() while persistent lanes (TCP) keep their connections across
// runs, so one HybridExecutor serves every sweep of a bench.
class HybridExecutor final : public Executor {
 public:
  explicit HybridExecutor(std::vector<std::unique_ptr<Lane>> lanes,
                          DispatchOptions options = DispatchOptions());
  ~HybridExecutor() override;

  std::string name() const override { return "hybrid"; }

  void set_plan_fn(PlanFn plan_fn) { core_.set_plan_fn(std::move(plan_fn)); }
  void set_commit_hook(DispatchCore::CommitHook hook) {
    core_.set_commit_hook(std::move(hook));
  }
  void set_precommitted(std::vector<std::uint8_t> mask,
                        std::vector<CellOutcome> outcomes) {
    core_.set_precommitted(std::move(mask), std::move(outcomes));
  }

  std::size_t stolen_cells() const { return core_.stolen_cells(); }
  std::size_t stolen_cells_last_run() const {
    return core_.stolen_cells_last_run();
  }
  std::size_t readmitted_workers() const {
    return core_.readmitted_workers();
  }
  std::size_t readmitted_workers_last_run() const {
    return core_.readmitted_workers_last_run();
  }

  std::vector<CellOutcome> run(const std::vector<Scenario>& cells,
                               const CellFn& cell_fn) const override;

 private:
  static std::vector<Lane*> raw_lanes(
      const std::vector<std::unique_ptr<Lane>>& lanes);

  std::vector<std::unique_ptr<Lane>> lanes_;
  mutable DispatchCore core_;
};

}  // namespace rbx
