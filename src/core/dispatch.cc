#include "core/dispatch.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <deque>
#include <stdexcept>
#include <utility>

#include "support/io.h"

namespace rbx {

namespace {

using Clock = std::chrono::steady_clock;

// Milliseconds until `when`, rounded up, clamped into poll()'s int range.
int ms_until(Clock::time_point now, Clock::time_point when) {
  if (when <= now) {
    return 0;
  }
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(when - now)
          .count() +
      1;
  return ms > 2147483647 ? 2147483647 : static_cast<int>(ms);
}

// Per-run scheduling state of one LaneWorker.
struct Slot {
  LaneWorker* worker = nullptr;
  std::vector<std::size_t> outstanding;  // batch in flight, empty = idle
  bool acked = false;         // ready for work (handshake done / not needed)
  bool awaiting_ack = false;  // Hello sent, HelloAck pending
  Clock::time_point ack_deadline{};
  bool connecting = false;  // revive connect in flight (poll for POLLOUT)
  bool revive_scheduled = false;
  Clock::time_point revive_at{};
  int failed_revives = 0;   // consecutive failed revive attempts
  bool revived = false;     // current incarnation came from a revive

  bool alive() const {
    FrameChannel* ch = worker->channel();
    return ch != nullptr && ch->open();
  }
};

}  // namespace

DispatchCore::DispatchCore(std::vector<Lane*> lanes, DispatchOptions options)
    : lanes_(std::move(lanes)), options_(std::move(options)) {}

void DispatchCore::set_precommitted(std::vector<std::uint8_t> mask,
                                    std::vector<CellOutcome> outcomes) {
  have_precommitted_ = true;
  precommitted_mask_ = std::move(mask);
  precommitted_outcomes_ = std::move(outcomes);
}

std::vector<CellOutcome> DispatchCore::run(const std::vector<Scenario>& cells,
                                           const CellFn& cell_fn) {
  stolen_last_run_ = 0;
  readmitted_last_run_ = 0;
  std::vector<CellOutcome> outcomes(cells.size());

  // Consume the one-shot resume seed (the journal's redo pass): these
  // outcomes are final before any worker starts.
  std::vector<std::uint8_t> pre;
  if (have_precommitted_) {
    have_precommitted_ = false;
    std::vector<std::uint8_t> mask = std::move(precommitted_mask_);
    std::vector<CellOutcome> seeded = std::move(precommitted_outcomes_);
    precommitted_mask_.clear();
    precommitted_outcomes_.clear();
    if (mask.size() != cells.size() || seeded.size() != cells.size()) {
      throw std::runtime_error(
          "dispatch: pre-committed mask does not match the grid (" +
          std::to_string(mask.size()) + " entries, " +
          std::to_string(cells.size()) + " cells)");
    }
    pre = std::move(mask);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (pre[i] != 0) {
        outcomes[i] = std::move(seeded[i]);
      }
    }
  }

  if (cells.empty()) {
    return outcomes;
  }

  // A fully pre-committed sweep (resuming a journal that already ended) is
  // done before any worker starts - don't raise lanes just to idle them.
  if (!pre.empty()) {
    bool all_committed = true;
    for (std::size_t i = 0; i < cells.size() && all_committed; ++i) {
      all_committed = pre[i] != 0;
    }
    if (all_committed) {
      return outcomes;
    }
  }

  std::vector<LaneWorker*> workers;
  for (Lane* lane : lanes_) {
    try {
      lane->start(cells.size(), cell_fn, options_.eval_threads, &workers);
    } catch (...) {
      for (Lane* started : lanes_) {
        started->finish();
      }
      throw;
    }
  }

  try {
    if (workers.empty()) {
      throw std::runtime_error("dispatch: no lane produced any workers");
    }
    bool any_needs_plan = false;
    for (LaneWorker* worker : workers) {
      any_needs_plan = any_needs_plan || worker->needs_plan();
    }
    if (any_needs_plan && !plan_fn_) {
      throw std::runtime_error(
          "dispatch: a lane requires evaluation plans but no plan function "
          "is set (this sweep is local-only)");
    }

    const std::uint64_t total = cells.size();
    const std::uint64_t fingerprint = grid_fingerprint(cells);
    Hello hello;
    hello.fingerprint = fingerprint;
    hello.total_cells = total;
    if (options_.no_cache) {
      hello.flags |= kHelloFlagNoCache;
    }

    std::vector<Slot> slots(workers.size());
    for (std::size_t i = 0; i < workers.size(); ++i) {
      slots[i].worker = workers[i];
    }

    // --- shared per-cell bookkeeping ---
    // Pre-committed cells (a resumed sweep's winners) enter already final:
    // committed up front, never enqueued, invisible to the workers.
    std::deque<std::size_t> queue;
    std::vector<std::uint8_t> committed(total, 0);
    std::size_t resolved = 0;  // final outcomes, answers and errors alike
    for (std::size_t i = 0; i < total; ++i) {
      if (!pre.empty() && pre[i] != 0) {
        committed[i] = 1;
        ++resolved;
      } else {
        queue.push_back(i);
      }
    }
    // Cells already re-run once because a worker died holding them; a
    // second loss marks the cell itself as the problem.
    std::vector<std::uint8_t> requeued(total, 0);
    // How many workers currently hold a copy of the cell (stealing
    // replicates it), and whether its outcome is final (first answer
    // wins; late duplicates are ignored).
    std::vector<std::uint8_t> inflight(total, 0);

    const auto ready_count = [&]() {
      std::size_t n = 0;
      for (const Slot& slot : slots) {
        if (slot.acked && slot.alive()) {
          ++n;
        }
      }
      return n;
    };

    // Schedules the next revival attempt of a lost worker, or gives up
    // once the lane cannot revive it / the attempt budget is spent.
    const auto schedule_revive = [&](Slot& slot) {
      slot.revive_scheduled = false;
      if (!options_.readmit || !slot.worker->can_revive() ||
          slot.failed_revives >= options_.readmit_max_attempts) {
        return;
      }
      const long long base =
          std::max(0, slot.worker->revive_delay_ms());
      const long long delay = base << std::min(slot.failed_revives, 20);
      slot.revive_scheduled = true;
      slot.revive_at = Clock::now() + std::chrono::milliseconds(delay);
    };

    const auto retire_slot = [&](Slot& slot) {
      slot.worker->retire();
      slot.acked = false;
      slot.awaiting_ack = false;
      slot.connecting = false;
    };

    // Rolls a lost worker's in-flight cells back into the queue (backward
    // error recovery: per-cell seeds make the rerun bitwise identical).
    // A cell another worker still holds - its thief, or the straggler it
    // was stolen from - needs nothing: the surviving copy answers for it.
    const auto lose = [&](Slot& slot, const std::string& why) {
      if (!options_.quiet) {
        std::fprintf(
            stderr,
            "sweep: lost worker %s (%s); re-queueing %zu in-flight cells\n",
            slot.worker->describe().c_str(), why.c_str(),
            slot.outstanding.size());
      }
      for (std::size_t k = slot.outstanding.size(); k-- > 0;) {
        const std::size_t index = slot.outstanding[k];
        if (inflight[index] > 0) {
          --inflight[index];
        }
        if (committed[index] != 0 || inflight[index] > 0) {
          continue;
        }
        if (requeued[index] != 0) {
          outcomes[index].error = "cell was in flight on two lost workers";
          committed[index] = 1;
          ++resolved;
          if (commit_hook_) {
            commit_hook_(index, outcomes[index]);
          }
        } else {
          requeued[index] = 1;
          queue.push_front(index);
        }
      }
      slot.outstanding.clear();
      retire_slot(slot);
      schedule_revive(slot);
    };

    // Ships `indices` to a worker as one batch; on success the worker
    // owns them.  False = the send failed and nothing was recorded.
    const auto send_batch = [&](Slot& slot,
                                const std::vector<std::size_t>& indices) {
      CellBatch batch;
      batch.cells.reserve(indices.size());
      const bool with_plan = slot.worker->needs_plan();
      for (const std::size_t index : indices) {
        batch.cells.push_back(
            BatchCell{index, cells[index], with_plan,
                      with_plan ? plan_fn_(cells[index], index) : EvalPlan{}});
      }
      if (!slot.worker->channel()->send_frame(batch.seal())) {
        return false;
      }
      for (const std::size_t index : indices) {
        ++inflight[index];
      }
      slot.outstanding = indices;
      return true;
    };

    const auto dispatch = [&](Slot& slot) {
      if (queue.empty() || !slot.acked || !slot.alive() ||
          !slot.outstanding.empty()) {
        return;
      }
      std::size_t want = options_.batch_size;
      if (want == 0) {
        // Adaptive: about four batches per ready worker of what remains,
        // shrinking to single cells at the tail.
        const std::size_t ready = std::max<std::size_t>(1, ready_count());
        want = std::max<std::size_t>(1, queue.size() / (ready * 4));
        want = std::min<std::size_t>(want, 64);
      }
      want = std::min(want, queue.size());
      std::vector<std::size_t> indices;
      indices.reserve(want);
      for (std::size_t k = 0; k < want; ++k) {
        indices.push_back(queue.front());
        queue.pop_front();
      }
      if (!send_batch(slot, indices)) {
        // Died before accepting: the batch was never in flight, put it
        // back in order for someone else.
        for (std::size_t k = indices.size(); k-- > 0;) {
          queue.push_front(indices[k]);
        }
        lose(slot, "send failed");
      }
    };

    // An idle worker with an empty queue takes the back half of the
    // biggest straggler's unanswered tail instead of watching it.  Only
    // sole-copy, uncommitted cells qualify (at most two workers ever hold
    // a cell at once); repeated halving covers the whole tail if the
    // straggler never wakes.  Whichever answer lands first is committed -
    // the duplicate is ignored, so the printed bytes cannot change, only
    // the finish time.
    const auto steal_for = [&](Slot& thief) {
      if (!options_.steal || !queue.empty() || !thief.acked ||
          !thief.alive() || !thief.outstanding.empty()) {
        return;
      }
      Slot* victim = nullptr;
      std::vector<std::size_t> best;
      for (Slot& other : slots) {
        if (&other == &thief || !other.alive() ||
            other.outstanding.empty()) {
          continue;
        }
        std::vector<std::size_t> stealable;
        for (const std::size_t index : other.outstanding) {
          if (committed[index] == 0 && inflight[index] == 1) {
            stealable.push_back(index);
          }
        }
        if (stealable.size() > best.size()) {
          victim = &other;
          best = std::move(stealable);
        }
      }
      if (victim == nullptr || best.empty()) {
        return;
      }
      const std::size_t take = (best.size() + 1) / 2;
      const std::vector<std::size_t> stolen(
          best.end() - static_cast<std::ptrdiff_t>(take), best.end());
      if (!send_batch(thief, stolen)) {
        lose(thief, "send failed");
        return;
      }
      stolen_last_run_ += take;
      stolen_total_ += take;
      if (!options_.quiet) {
        std::fprintf(stderr,
                     "sweep: stole %zu tail cell(s) from straggler %s for "
                     "idle worker %s\n",
                     take, victim->worker->describe().c_str(),
                     thief.worker->describe().c_str());
      }
    };

    const auto refuse = [&](Slot& slot, const std::string& why,
                            bool revivable) {
      if (!options_.quiet) {
        std::fprintf(stderr, "sweep: worker %s refused the handshake: %s\n",
                     slot.worker->describe().c_str(), why.c_str());
      }
      retire_slot(slot);
      if (revivable) {
        schedule_revive(slot);
      }
    };

    // Marks a worker ready for work.  The next dispatch/steal pass of the
    // main loop hands it queue or stolen work - deferring that keeps the
    // adaptive batch sizing fair while the pool is still filling up.
    const auto admitted = [&](Slot& slot) {
      slot.acked = true;
      slot.failed_revives = 0;
      if (slot.revived) {
        ++readmitted_last_run_;
        ++readmitted_total_;
        if (!options_.quiet) {
          std::fprintf(stderr,
                       "sweep: re-admitted worker %s (rejoined the live "
                       "pool mid-sweep)\n",
                       slot.worker->describe().c_str());
        }
      }
    };

    // Drains buffered frames on a worker awaiting its ack.  True = this
    // worker is settled (acked, or refused); false = still awaiting bytes.
    const auto check_ack = [&](Slot& slot) -> bool {
      for (;;) {
        wire::Frame ack;
        try {
          if (!slot.worker->channel()->pop(&ack)) {
            return false;
          }
          if (ack.type == kFrameResultBatch) {
            // A stale answer from the previous sweep (this straggler's
            // tail was stolen and committed elsewhere); discard.
            continue;
          }
          if (ack.type == kFrameError) {
            wire::Reader r(ack.payload);
            refuse(slot, r.str(), /*revivable=*/false);
            return true;
          }
          if (ack.type == kFrameAuthChallenge) {
            // The worker wants proof of the pre-shared key before acking.
            wire::Reader r(ack.payload);
            const std::string challenge = r.str();
            r.expect_done();
            const std::string mac = slot.worker->auth_response(challenge);
            if (mac.empty()) {
              refuse(slot,
                     "worker demands authentication but this coordinator "
                     "holds no key (--auth-key-file)",
                     /*revivable=*/false);
              return true;
            }
            wire::Writer w;
            w.str(mac);
            if (!slot.worker->channel()->send(kFrameAuthResponse, w.data())) {
              refuse(slot, "connection lost during authentication",
                     /*revivable=*/true);
              return true;
            }
            continue;  // the ack (or a refusal) follows
          }
          if (ack.type != kFrameHelloAck) {
            refuse(slot, "unexpected frame type " + std::to_string(ack.type),
                   /*revivable=*/false);
            return true;
          }
          wire::Reader r(ack.payload);
          const Hello echo = Hello::decode(r);
          r.expect_done();
          if (echo.protocol != hello.protocol ||
              echo.wire_version != hello.wire_version ||
              echo.fingerprint != fingerprint) {
            refuse(slot, "ack does not echo this sweep's handshake",
                   /*revivable=*/false);
            return true;
          }
          slot.awaiting_ack = false;
          admitted(slot);
          return true;
        } catch (const wire::Error& e) {
          refuse(slot, std::string("malformed ack: ") + e.what(),
                 /*revivable=*/false);
          return true;
        }
      }
    };

    const auto send_hello = [&](Slot& slot) {
      // Per-worker amendments: an authenticated worker flags the auth
      // exchange, a fleet-leased worker attaches its registry grant.
      Hello worker_hello = hello;
      slot.worker->prepare_hello(worker_hello);
      wire::Writer w;
      worker_hello.encode(w);
      if (!slot.worker->channel()->send(kFrameHello, w.data())) {
        refuse(slot, "connection lost", /*revivable=*/true);
        return;
      }
      slot.awaiting_ack = true;
      slot.ack_deadline =
          Clock::now() +
          std::chrono::milliseconds(options_.handshake_timeout_ms);
      // The ack (or stale frames ahead of it) may already sit in the
      // channel buffer from earlier traffic.
      check_ack(slot);
    };

    // A revived (or freshly started) worker with an open channel enters
    // the pool: remote daemons re-handshake first, local workers are
    // ready at once.
    const auto admit = [&](Slot& slot) {
      if (slot.worker->needs_handshake()) {
        send_hello(slot);
      } else {
        admitted(slot);
      }
    };

    const auto attempt_revive = [&](Slot& slot) {
      slot.revive_scheduled = false;
      // Spend one attempt up front: a cycle that connects but then fails
      // the handshake (or loses the connection again before admission)
      // must burn budget too, or a dead-but-listening endpoint would be
      // retried forever.  admitted() resets the count.
      ++slot.failed_revives;
      switch (slot.worker->revive()) {
        case LaneWorker::Revive::kReady:
          slot.revived = true;
          admit(slot);
          return;
        case LaneWorker::Revive::kPending:
          slot.connecting = true;
          return;
        case LaneWorker::Revive::kFailed:
          break;
      }
      schedule_revive(slot);
    };

    const auto finish_revive = [&](Slot& slot) {
      slot.connecting = false;
      if (slot.worker->revive_finish()) {
        slot.revived = true;
        admit(slot);
        return;
      }
      schedule_revive(slot);
    };

    // Drains complete result frames from a busy worker; false = lost.
    const auto process_frames = [&](Slot& slot) -> bool {
      for (;;) {
        if (!slot.alive()) {
          return false;
        }
        wire::Frame frame;
        try {
          if (!slot.worker->channel()->pop(&frame)) {
            return true;
          }
          if (frame.type == kFrameError) {
            wire::Reader r(frame.payload);
            lose(slot, "worker error: " + r.str());
            return false;
          }
          if (frame.type != kFrameResultBatch) {
            lose(slot,
                 "unexpected frame type " + std::to_string(frame.type));
            return false;
          }
          wire::Reader r(frame.payload);
          const ResultBatch batch = ResultBatch::decode(r);
          r.expect_done();
          // Streaming merge with dedup: outcomes land the moment this
          // batch arrives - unless a thief's copy of a cell already did.
          // The commit hook fires exactly for the 0->1 transitions of the
          // committed mask (a duplicate answer must not re-journal).
          std::vector<std::size_t> fresh;
          if (commit_hook_) {
            for (const std::size_t index : slot.outstanding) {
              if (committed[index] == 0) {
                fresh.push_back(index);
              }
            }
          }
          resolved +=
              apply_result_batch(batch, slot.outstanding, outcomes,
                                 &committed);
          if (commit_hook_) {
            for (const std::size_t index : fresh) {
              if (committed[index] != 0) {
                commit_hook_(index, outcomes[index]);
              }
            }
          }
          for (const std::size_t index : slot.outstanding) {
            if (inflight[index] > 0) {
              --inflight[index];
            }
          }
        } catch (const wire::Error& e) {
          // apply_result_batch applies atomically - a throwing batch
          // committed nothing, so every outstanding cell re-queues.
          lose(slot, std::string("malformed results: ") + e.what());
          return false;
        }
        slot.outstanding.clear();
        dispatch(slot);
      }
    };

    // --- bring the pool up ---
    for (Slot& slot : slots) {
      if (slot.alive()) {
        admit(slot);
      } else {
        // Lost before the sweep began: a failed fork, or a TCP endpoint
        // that died in an earlier sweep.  The revive timer gives it the
        // same re-admission path as a mid-sweep loss.
        schedule_revive(slot);
      }
    }

    // --- deal, stream, steal, recover, re-admit ---
    for (;;) {
      if (resolved == total) {
        // Every outcome is final.  A straggler may still owe a batch
        // whose cells a thief answered; its stale frames are flushed
        // while waiting for the next sweep's ack.
        break;
      }
      bool pending = false;
      for (const Slot& slot : slots) {
        if (slot.alive() || slot.connecting || slot.revive_scheduled) {
          pending = true;
          break;
        }
      }
      if (!pending) {
        break;  // nothing can ever change: fail the leftovers below
      }

      // Hand out work (a loss above may have re-queued cells while other
      // workers sat idle), then let anyone still idle steal a tail.
      for (Slot& slot : slots) {
        dispatch(slot);
      }
      for (Slot& slot : slots) {
        steal_for(slot);
      }

      std::vector<pollfd> fds;
      std::vector<Slot*> fd_slot;
      for (Slot& slot : slots) {
        if (slot.connecting) {
          fds.push_back(pollfd{slot.worker->channel()->fd(), POLLOUT, 0});
          fd_slot.push_back(&slot);
        } else if (slot.alive() &&
                   (slot.awaiting_ack || !slot.outstanding.empty())) {
          fds.push_back(pollfd{slot.worker->channel()->fd(), POLLIN, 0});
          fd_slot.push_back(&slot);
        }
      }

      // Sleep until traffic, the nearest handshake deadline, or the
      // nearest revive timer.
      const auto now = Clock::now();
      int timeout_ms = -1;
      for (const Slot& slot : slots) {
        if (slot.awaiting_ack) {
          const int t = ms_until(now, slot.ack_deadline);
          timeout_ms = timeout_ms < 0 ? t : std::min(timeout_ms, t);
        }
        if (slot.revive_scheduled) {
          const int t = ms_until(now, slot.revive_at);
          timeout_ms = timeout_ms < 0 ? t : std::min(timeout_ms, t);
        }
      }
      if (fds.empty() && timeout_ms < 0) {
        break;  // defensive: nothing to wait on
      }

      if (io::poll_retry(fds.data(), fds.size(), timeout_ms) < 0) {
        for (Slot& slot : slots) {
          retire_slot(slot);
        }
        throw std::runtime_error("dispatch: poll() failed");
      }

      for (std::size_t k = 0; k < fds.size(); ++k) {
        if (fds[k].revents == 0) {
          continue;
        }
        Slot& slot = *fd_slot[k];
        if (slot.connecting) {
          finish_revive(slot);
          continue;
        }
        if (!slot.alive()) {
          continue;  // lost while handling an earlier fd this round
        }
        if (slot.awaiting_ack) {
          if (!slot.worker->channel()->fill()) {
            // EOF; the ack may still be whole in the buffer.
            if (!check_ack(slot) && slot.awaiting_ack) {
              refuse(slot, "connection closed before the ack",
                     /*revivable=*/true);
            }
            continue;
          }
          check_ack(slot);
          continue;
        }
        if (!slot.worker->channel()->fill()) {
          // EOF or read error.  Frames may still be whole in the buffer
          // (answered, then died): apply them before declaring the loss.
          if (process_frames(slot) && slot.alive()) {
            if (slot.outstanding.empty()) {
              // Clean EOF between batches.
              retire_slot(slot);
              schedule_revive(slot);
            } else {
              lose(slot, "connection closed");
            }
          }
          continue;
        }
        process_frames(slot);
      }

      const auto tick = Clock::now();
      for (Slot& slot : slots) {
        if (slot.awaiting_ack && tick >= slot.ack_deadline) {
          refuse(slot,
                 "no handshake answer within " +
                     std::to_string(options_.handshake_timeout_ms) +
                     " ms (worker hung, or not speaking the protocol)",
                 /*revivable=*/true);
        }
      }
      for (Slot& slot : slots) {
        if (slot.revive_scheduled && tick >= slot.revive_at) {
          attempt_revive(slot);
        }
      }
    }

    // Anything still queued could not be placed (every worker is gone and
    // none could be revived).
    while (!queue.empty()) {
      outcomes[queue.front()].error =
          "no worker remaining to evaluate this cell";
      queue.pop_front();
    }
    // Abandon half-finished revives and half-done handshakes: an
    // unanswered Hello would leave the connection in an indeterminate
    // protocol state (its late ack would shadow the next sweep's), so
    // close it - a persistent lane re-admits the worker next run with a
    // clean reconnect.
    for (Slot& slot : slots) {
      if (slot.connecting || slot.awaiting_ack) {
        retire_slot(slot);
      }
    }
  } catch (...) {
    for (Lane* lane : lanes_) {
      lane->finish();
    }
    throw;
  }

  for (Lane* lane : lanes_) {
    lane->finish();
  }
  return outcomes;
}

// --- HybridExecutor ----------------------------------------------------------

std::vector<Lane*> HybridExecutor::raw_lanes(
    const std::vector<std::unique_ptr<Lane>>& lanes) {
  std::vector<Lane*> out;
  out.reserve(lanes.size());
  for (const auto& lane : lanes) {
    out.push_back(lane.get());
  }
  return out;
}

HybridExecutor::HybridExecutor(std::vector<std::unique_ptr<Lane>> lanes,
                               DispatchOptions options)
    : lanes_(std::move(lanes)),
      core_(raw_lanes(lanes_), std::move(options)) {}

HybridExecutor::~HybridExecutor() = default;

std::vector<CellOutcome> HybridExecutor::run(
    const std::vector<Scenario>& cells, const CellFn& cell_fn) const {
  return core_.run(cells, cell_fn);
}

}  // namespace rbx
