// Ablation backends: the ABL-LINE and ABL-HYBRID evaluations as
// registered EvalBackends.
//
// The two ablation benches historically called the simulator and model
// layers directly, which kept them off the Scenario/EvalPlan seam - they
// could not run on --workers, --connect or --fleet.  These backends put
// the same evaluations behind registered names so an ablation sweep ships
// to any executor (including a sweep_workerd daemon that never saw the
// bench binary) like every other cell:
//
//   line-exact  the paired recovery-line criterion comparison of
//               AsyncRbSimulator::run_exact on `samples` events: the
//               model's all-ones criterion ("model_interval"), the exact
//               pairwise any-advance interval ("any_advance"), the
//               full-refresh interval ("full_refresh"), the conservatism
//               ratio model/any-advance ("line_conservatism"), and the
//               lumped analytic E[X] of the same rates
//               ("model_interval_analytic") for the paired table column
//   hybrid      the PRP + periodic-synchronization combination (paper
//               Section 5), keyed off Scenario::prp_sync_period: the
//               hybrid recovery-distance distribution (mean/p95/max),
//               sync-line restore and loss-rate accounting
//               ("hybrid_sync_loss_rate" = lines established per unit
//               time x CL), the pure-PRP comparison columns, and the
//               analytic header quantities (async E[X] and stationary
//               line age, E[sup y], CL per synchronization)
//
// Both are deterministic in the scenario seed, so every execution mode
// reproduces the bytes - the property the ported benches' golden-diff
// and cross-mode CI pins rely on.
#pragma once

#include <string>

#include "core/backend.h"

namespace rbx {

class ExactLineBackend : public EvalBackend {
 public:
  std::string name() const override { return "line-exact"; }
  bool supports(const Scenario& scenario) const override;
  ResultSet evaluate(const Scenario& scenario) const override;
};

class HybridSchemeBackend : public EvalBackend {
 public:
  std::string name() const override { return "hybrid"; }
  bool supports(const Scenario& scenario) const override;
  ResultSet evaluate(const Scenario& scenario) const override;
};

}  // namespace rbx
