#include "core/monte_carlo_backend.h"

#include <algorithm>
#include <cstdint>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "core/eval_context.h"
#include "des/async_sim.h"
#include "des/prp_sim.h"
#include "des/sync_sim.h"
#include "support/rng.h"
#include "support/stats.h"

namespace rbx {

namespace {

// Stream k's share of the sample budget: samples/streams, with the
// remainder spread over the first samples % streams streams.  The sum
// over k is exactly `samples` and the split depends only on (samples,
// streams), never on thread count.
std::size_t stream_chunk(std::size_t samples, std::size_t streams,
                         std::size_t k) {
  return samples / streams + (k < samples % streams ? 1 : 0);
}

// Sample-parallel evaluation core: partitions the scenario's sample
// budget into streams() independent RNG sub-streams, runs each under
// derive_stream_seed(s.seed(), k), and merges the partial results in
// ascending stream order on the calling thread.
//
// Determinism contract: the result is a pure function of (scenario,
// streams()).  Worker threads only decide *which thread* runs a stream
// (stream k is owned by worker k % workers and each worker reseeds its
// simulator per stream), never what the stream computes; the merge order
// is fixed, so any thread budget - including 1 - yields bitwise
// identical results.  Callers short-circuit streams() == 1 to the
// seed()-seeded sequential path, which this function must not receive.
//
// MakeSim(seed) builds a simulator; RunOne(sim, chunk) runs one stream's
// chunk.  Each worker constructs a single simulator and reseeds it per
// stream, reusing the event tables and scratch buffers across streams.
template <typename Result, typename MakeSim, typename RunOne>
Result run_streams(const Scenario& s, MakeSim make_sim, RunOne run_one) {
  const std::size_t streams = s.streams();
  const std::size_t budget =
      std::max<std::size_t>(current_eval_context().thread_budget, 1);
  const std::size_t workers = std::min(streams, budget);

  std::vector<Result> parts(streams);
  auto work = [&](std::size_t w) {
    auto sim = make_sim(derive_stream_seed(s.seed(), w));
    for (std::size_t k = w; k < streams; k += workers) {
      sim.reseed(derive_stream_seed(s.seed(), k));
      parts[k] = run_one(sim, stream_chunk(s.samples(), streams, k));
    }
  };

  if (workers <= 1) {
    work(0);
  } else {
    std::vector<std::thread> pool;
    std::vector<std::exception_ptr> errors(workers);
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&work, &errors, w] {
        try {
          work(w);
        } catch (...) {
          errors[w] = std::current_exception();
        }
      });
    }
    for (std::thread& t : pool) {
      t.join();
    }
    for (const std::exception_ptr& e : errors) {
      if (e) {
        std::rethrow_exception(e);
      }
    }
  }

  Result merged = std::move(parts[0]);
  for (std::size_t k = 1; k < streams; ++k) {
    merged.merge(parts[k]);
  }
  return merged;
}

void set_sample(ResultSet& out, const std::string& name, const SampleSet& s) {
  out.set(name, s.mean(), s.ci_half_width(), s.count());
}

void set_stats(ResultSet& out, const std::string& name,
               const RunningStats& s) {
  out.set(name, s.mean(), s.ci_half_width(), s.count());
}

void evaluate_async(const Scenario& s, ResultSet& out) {
  const AsyncSimResult r = run_async_monte_carlo(s);
  set_sample(out, "mean_interval_x", r.interval);
  out.set("stddev_interval_x", r.interval.stddev(), 0.0, r.interval.count());
  for (std::size_t i = 0; i < s.n(); ++i) {
    set_stats(out, indexed_metric("rp_count_", i), r.rp_incl_final[i]);
    set_stats(out, indexed_metric("rp_count_excl_", i), r.rp_excl_final[i]);
    set_stats(out, indexed_metric("rp_count_statechg_", i),
              r.rp_state_changing[i]);
  }
  if (s.error_rate() > 0.0) {
    set_sample(out, "line_age", r.line_age);
  }
}

SyncSimResult run_sync(const Scenario& s) {
  if (s.streams() <= 1) {
    SyncRbSimulator sim(s.sync_sim_params(), s.seed());
    return sim.run(s.samples());
  }
  return run_streams<SyncSimResult>(
      s,
      [&s](std::uint64_t seed) {
        return SyncRbSimulator(s.sync_sim_params(), seed);
      },
      [](SyncRbSimulator& sim, std::size_t chunk) { return sim.run(chunk); });
}

void evaluate_sync(const Scenario& s, ResultSet& out) {
  const SyncSimResult r = run_sync(s);
  set_sample(out, "sync_mean_max_wait", r.max_wait);
  set_sample(out, "sync_mean_loss", r.loss);
  set_sample(out, "sync_line_spacing", r.line_spacing);
  set_sample(out, "sync_states_per_line", r.states_per_line);
  out.set("sync_states_per_line_sd", r.states_per_line.stddev());
  out.set("sync_loss_rate", r.loss_rate);
  if (s.error_rate() > 0.0) {
    set_sample(out, "sync_rollback_distance", r.rollback_distance);
    out.set("sync_rollback_distance_p95",
            r.rollback_distance.quantile(0.95));
  }
}

PrpSimResult run_prp(const Scenario& s) {
  if (s.streams() <= 1) {
    PrpSimulator sim(s.params(), s.prp_sim_params(), s.seed());
    return sim.run(s.samples());
  }
  return run_streams<PrpSimResult>(
      s,
      [&s](std::uint64_t seed) {
        return PrpSimulator(s.params(), s.prp_sim_params(), seed);
      },
      [](PrpSimulator& sim, std::size_t chunk) { return sim.run(chunk); });
}

void evaluate_prp(const Scenario& s, ResultSet& out) {
  const PrpSimResult r = run_prp(s);
  set_sample(out, "prp_distance", r.prp_distance);
  out.set("prp_distance_p95", r.prp_distance.quantile(0.95));
  set_sample(out, "prp_affected", r.prp_affected);
  set_sample(out, "prp_iterations", r.prp_iterations);
  out.set("prp_iterations_max", r.prp_iterations.max());
  set_sample(out, "async_distance", r.async_distance);
  out.set("async_distance_p95", r.async_distance.quantile(0.95));
  set_sample(out, "async_affected", r.async_affected);
  out.set("async_domino_count", static_cast<double>(r.async_domino_count));
  out.set("failures", static_cast<double>(r.failures));
  out.set("contaminated_restarts",
          static_cast<double>(r.contaminated_restarts));
  out.set("snapshots_per_unit_time", r.snapshots_per_unit_time);
  out.set("rp_per_unit_time", r.rp_per_unit_time);
  out.set("recording_time_fraction", r.recording_time_fraction);
  out.set("horizon", r.horizon);
  if (s.prp_sync_period() > 0.0) {
    set_sample(out, "hybrid_distance", r.hybrid_distance);
    out.set("hybrid_sync_restores",
            static_cast<double>(r.hybrid_sync_restores));
    out.set("sync_lines_established",
            static_cast<double>(r.sync_lines_established));
  }
}

}  // namespace

// Runs the scheme's simulator over the full budget.  streams() == 1 is
// the exact historical path (one simulator seeded with s.seed());
// streams() > 1 fans out through run_streams.
AsyncSimResult run_async_monte_carlo(const Scenario& s) {
  if (s.streams() <= 1) {
    AsyncRbSimulator sim(s.params(), s.seed());
    return sim.run_lines(s.samples(), s.error_rate());
  }
  return run_streams<AsyncSimResult>(
      s,
      [&s](std::uint64_t seed) { return AsyncRbSimulator(s.params(), seed); },
      [&s](AsyncRbSimulator& sim, std::size_t chunk) {
        return sim.run_lines(chunk, s.error_rate());
      });
}

bool MonteCarloBackend::supports(const Scenario& scenario) const {
  if (scenario.scheme() == SchemeKind::kPseudoRecoveryPoints) {
    return scenario.error_rate() > 0.0;
  }
  return true;
}

ResultSet MonteCarloBackend::evaluate(const Scenario& scenario) const {
  ResultSet out(name(), scenario.label());
  switch (scenario.scheme()) {
    case SchemeKind::kAsynchronous:
      evaluate_async(scenario, out);
      break;
    case SchemeKind::kSynchronized:
      evaluate_sync(scenario, out);
      break;
    case SchemeKind::kPseudoRecoveryPoints:
      evaluate_prp(scenario, out);
      break;
  }
  return out;
}

}  // namespace rbx
