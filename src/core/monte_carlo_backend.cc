#include "core/monte_carlo_backend.h"

#include <string>

#include "des/async_sim.h"
#include "des/prp_sim.h"
#include "des/sync_sim.h"
#include "support/stats.h"

namespace rbx {

namespace {

void set_sample(ResultSet& out, const std::string& name, const SampleSet& s) {
  out.set(name, s.mean(), s.ci_half_width(), s.count());
}

void set_stats(ResultSet& out, const std::string& name,
               const RunningStats& s) {
  out.set(name, s.mean(), s.ci_half_width(), s.count());
}

void evaluate_async(const Scenario& s, ResultSet& out) {
  AsyncRbSimulator sim(s.params(), s.seed());
  const AsyncSimResult r = sim.run_lines(s.samples(), s.error_rate());
  set_sample(out, "mean_interval_x", r.interval);
  out.set("stddev_interval_x", r.interval.stddev(), 0.0, r.interval.count());
  for (std::size_t i = 0; i < s.n(); ++i) {
    set_stats(out, indexed_metric("rp_count_", i), r.rp_incl_final[i]);
    set_stats(out, indexed_metric("rp_count_excl_", i), r.rp_excl_final[i]);
    set_stats(out, indexed_metric("rp_count_statechg_", i),
              r.rp_state_changing[i]);
  }
  if (s.error_rate() > 0.0) {
    set_sample(out, "line_age", r.line_age);
  }
}

void evaluate_sync(const Scenario& s, ResultSet& out) {
  SyncRbSimulator sim(s.sync_sim_params(), s.seed());
  const SyncSimResult r = sim.run(s.samples());
  set_sample(out, "sync_mean_max_wait", r.max_wait);
  set_sample(out, "sync_mean_loss", r.loss);
  set_sample(out, "sync_line_spacing", r.line_spacing);
  set_sample(out, "sync_states_per_line", r.states_per_line);
  out.set("sync_states_per_line_sd", r.states_per_line.stddev());
  out.set("sync_loss_rate", r.loss_rate);
  if (s.error_rate() > 0.0) {
    set_sample(out, "sync_rollback_distance", r.rollback_distance);
    out.set("sync_rollback_distance_p95",
            r.rollback_distance.quantile(0.95));
  }
}

void evaluate_prp(const Scenario& s, ResultSet& out) {
  PrpSimulator sim(s.params(), s.prp_sim_params(), s.seed());
  const PrpSimResult r = sim.run(s.samples());
  set_sample(out, "prp_distance", r.prp_distance);
  out.set("prp_distance_p95", r.prp_distance.quantile(0.95));
  set_sample(out, "prp_affected", r.prp_affected);
  set_sample(out, "prp_iterations", r.prp_iterations);
  out.set("prp_iterations_max", r.prp_iterations.max());
  set_sample(out, "async_distance", r.async_distance);
  out.set("async_distance_p95", r.async_distance.quantile(0.95));
  set_sample(out, "async_affected", r.async_affected);
  out.set("async_domino_count", static_cast<double>(r.async_domino_count));
  out.set("failures", static_cast<double>(r.failures));
  out.set("contaminated_restarts",
          static_cast<double>(r.contaminated_restarts));
  out.set("snapshots_per_unit_time", r.snapshots_per_unit_time);
  out.set("rp_per_unit_time", r.rp_per_unit_time);
  out.set("recording_time_fraction", r.recording_time_fraction);
  out.set("horizon", r.horizon);
  if (s.prp_sync_period() > 0.0) {
    set_sample(out, "hybrid_distance", r.hybrid_distance);
    out.set("hybrid_sync_restores",
            static_cast<double>(r.hybrid_sync_restores));
    out.set("sync_lines_established",
            static_cast<double>(r.sync_lines_established));
  }
}

}  // namespace

bool MonteCarloBackend::supports(const Scenario& scenario) const {
  if (scenario.scheme() == SchemeKind::kPseudoRecoveryPoints) {
    return scenario.error_rate() > 0.0;
  }
  return true;
}

ResultSet MonteCarloBackend::evaluate(const Scenario& scenario) const {
  ResultSet out(name(), scenario.label());
  switch (scenario.scheme()) {
    case SchemeKind::kAsynchronous:
      evaluate_async(scenario, out);
      break;
    case SchemeKind::kSynchronized:
      evaluate_sync(scenario, out);
      break;
    case SchemeKind::kPseudoRecoveryPoints:
      evaluate_prp(scenario, out);
      break;
  }
  return out;
}

}  // namespace rbx
