#include "core/sweep.h"

#include <stdexcept>
#include <thread>
#include <utility>

#include "support/check.h"
#include "support/rng.h"

namespace rbx {

std::uint64_t derive_cell_seed(std::uint64_t master_seed,
                               std::uint64_t cell_index) {
  // The i-th splitmix64 output for seed s is mix(s + (i + 1) * golden);
  // seeding a fresh SplitMix64 at s + i * golden and drawing once computes
  // it in O(1) without materializing the stream.
  constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  SplitMix64 stream(master_seed + cell_index * kGolden);
  return stream.next();
}

SweepEngine::SweepEngine(Options options) : threads_(options.threads) {
  if (threads_ == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads_ = hw > 0 ? hw : 1;
  }
}

std::vector<ResultSet> SweepEngine::run(const std::vector<Scenario>& cells,
                                        const CellFn& cell_fn) const {
  std::vector<CellOutcome> outcomes =
      InProcessExecutor({threads_}).run(cells, cell_fn);
  std::vector<ResultSet> results;
  results.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (!outcomes[i].ok()) {
      throw std::runtime_error("sweep cell " + std::to_string(i) +
                               " failed: " + outcomes[i].error);
    }
    results.push_back(std::move(outcomes[i].result));
  }
  return results;
}

std::vector<ResultSet> SweepEngine::run(const std::vector<Scenario>& cells,
                                        const EvalBackend& backend) const {
  return run(cells, [&backend](const Scenario& s, std::size_t) {
    return backend.evaluate(s);
  });
}

SweepGrid::SweepGrid(Scenario base) : base_(std::move(base)) {}

SweepGrid& SweepGrid::axis(std::vector<double> values, Apply apply) {
  RBX_CHECK_MSG(!values.empty(), "sweep axis needs at least one value");
  RBX_CHECK_MSG(apply != nullptr, "sweep axis needs an apply function");
  axes_.push_back(Axis{std::move(values), std::move(apply)});
  return *this;
}

SweepGrid& SweepGrid::schemes(std::vector<SchemeKind> schemes) {
  RBX_CHECK_MSG(!schemes.empty(), "scheme axis needs at least one scheme");
  schemes_ = std::move(schemes);
  return *this;
}

std::size_t SweepGrid::cells() const {
  std::size_t total = schemes_.empty() ? 1 : schemes_.size();
  for (const Axis& axis : axes_) {
    total *= axis.values.size();
  }
  return total;
}

std::vector<Scenario> SweepGrid::expand(std::uint64_t master_seed) const {
  std::vector<Scenario> out;
  out.reserve(cells());
  // Row-major: odometer over axis value indices, schemes innermost.
  std::vector<std::size_t> idx(axes_.size(), 0);
  const std::size_t scheme_count = schemes_.empty() ? 1 : schemes_.size();
  bool done = false;
  while (!done) {
    for (std::size_t sk = 0; sk < scheme_count; ++sk) {
      Scenario cell = base_;
      for (std::size_t a = 0; a < axes_.size(); ++a) {
        axes_[a].apply(cell, axes_[a].values[idx[a]]);
      }
      if (!schemes_.empty()) {
        cell.scheme(schemes_[sk]);
      }
      cell.seed(derive_cell_seed(master_seed, out.size()));
      out.push_back(std::move(cell));
    }
    done = true;
    for (std::size_t a = axes_.size(); a-- > 0;) {
      if (++idx[a] < axes_[a].values.size()) {
        done = false;
        break;
      }
      idx[a] = 0;
    }
    if (axes_.empty()) {
      break;
    }
  }
  return out;
}

}  // namespace rbx
