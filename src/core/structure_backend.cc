#include "core/structure_backend.h"

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "model/async_model.h"
#include "model/async_symmetric.h"
#include "support/check.h"
#include "support/wire.h"
#include "trace/dot.h"

namespace rbx {

// The full chain has 2^n + 1 states; beyond n = 7 the inventory stops
// being printable (the legacy bench capped its loop there too).
static constexpr std::size_t kStructureMaxN = 7;

bool MarkovStructureBackend::supports(const Scenario& scenario) const {
  return scenario.scheme() == SchemeKind::kAsynchronous &&
         scenario.params().is_symmetric_rates() && scenario.n() >= 2 &&
         scenario.n() <= kStructureMaxN;
}

ResultSet MarkovStructureBackend::evaluate(const Scenario& scenario) const {
  RBX_CHECK_MSG(supports(scenario),
                "markov-structure needs an asynchronous scenario with "
                "homogeneous rates and 2 <= n <= 7");
  ResultSet out(name(), scenario.label());
  const ProcessSetParams& p = scenario.params();
  AsyncRbModel full(p);
  SymmetricAsyncModel lumped(p.n(), p.mu(0), p.lambda(0, 1));
  // Off-diagonal generator entries: the generator stores one diagonal
  // entry per non-absorbing state alongside the transitions.
  const std::size_t lumped_transitions =
      lumped.chain().generator().nonzeros() - (lumped.num_states() - 1);
  out.set("full_states", static_cast<double>(full.num_states()));
  out.set("full_transitions", static_cast<double>(full.transition_count()));
  out.set("lumped_states", static_cast<double>(lumped.num_states()));
  out.set("lumped_transitions", static_cast<double>(lumped_transitions));
  // Lumping exactness, printable side by side (pinned exactly in
  // tests/model/async_symmetric_test.cc).
  out.set("mean_interval_full", full.mean_interval());
  out.set("mean_interval_lumped", lumped.mean_interval());
  return out;
}

std::string simplified_chain_dot(std::size_t n, double mu, double lambda) {
  SymmetricAsyncModel model(n, mu, lambda);
  return ctmc_to_dot(
      model.chain(),
      [&model](std::size_t s) {
        if (s == model.entry_state()) {
          return std::string("S_r");
        }
        if (s == model.absorbing_state()) {
          return std::string("S_r+1");
        }
        return "S~" + std::to_string(s - 1);
      },
      "figure3_simplified_n" + std::to_string(n));
}

std::string full_chain_dot(std::size_t n, double mu, double lambda) {
  AsyncRbModel model(ProcessSetParams::symmetric(n, mu, lambda));
  return ctmc_to_dot(
      model.chain(),
      [&model, n](std::size_t s) {
        if (s == model.entry_state()) {
          return std::string("S_r");
        }
        if (s == model.absorbing_state()) {
          return std::string("S_r+1");
        }
        const std::size_t mask = model.mask_of_state(s);
        std::string name = "(";
        for (std::size_t i = 0; i < n; ++i) {
          name += (mask >> i) & 1 ? '1' : '0';
          if (i + 1 < n) {
            name += ',';
          }
        }
        return name + ")";
      },
      "figure2_full_n" + std::to_string(n));
}

void write_chain_dot(const std::string& path, const std::string& dot) {
  std::vector<std::byte> bytes(dot.size());
  if (!dot.empty()) {
    std::memcpy(bytes.data(), dot.data(), dot.size());
  }
  wire::write_file_atomic(path, bytes);
}

}  // namespace rbx
