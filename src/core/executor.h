// Executor: how a batch of sweep cells gets evaluated.
//
// SweepEngine (core/sweep.h) expands grids and owns the determinism
// contract - per-cell seeds depend only on (master_seed, cell_index), and
// results land in input order.  Executor is the seam below it that decides
// *where* the cells run.  Every executor is a lane configuration over the
// one shared scheduler, core::DispatchCore (core/dispatch.h):
//
//   InProcessExecutor     one ThreadLane - worker threads inside this
//                         process, each serving framed cell batches over
//                         a socketpair;
//   MultiProcessExecutor  one ForkLane - forked worker processes
//                         (process isolation: an aborting cell cannot
//                         take the sweep down), respawned on crash;
//   net::ClusterExecutor  one TcpLane - remote sweep_workerd daemons
//                         (net/cluster.h);
//   HybridExecutor        any mix of the above in a single sweep
//                         (core/dispatch.h).
//
// Every executor returns one CellOutcome per cell, in cell order: either a
// ResultSet or a per-cell error string (a thrown cell_fn, or a cell that
// was in flight on two workers that died).  Because the cells carry their
// seeds and the wire codec round-trips doubles bit-exactly, the outcomes
// are bitwise identical across executors - the contract
// tests/core/executor_test.cc pins down.
//
// ShardSpec extends the same idea across hosts: shard i of k owns the
// cells with index % k == i, evaluates only those, and writes a partial
// result file; merge_shard_partials() reassembles the full result vector
// bitwise identical to an unsharded run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/backend.h"
#include "core/result.h"
#include "core/scenario.h"

namespace rbx {

// Evaluates one cell; must be safe to call concurrently (pure backends
// are).  The index is the cell's position in the expanded grid.
using CellFn = std::function<ResultSet(const Scenario&, std::size_t)>;

// Result of one cell: a ResultSet, or the error that prevented one.
struct CellOutcome {
  ResultSet result;
  std::string error;  // empty = success

  bool ok() const { return error.empty(); }
};

// Evaluates one cell, catching anything cell_fn throws into a per-cell
// error.  The one call every worker kind (thread, forked child, remote
// daemon via plans) funnels through.
CellOutcome evaluate_cell(const CellFn& cell_fn, const Scenario& cell,
                          std::size_t index);

class Executor {
 public:
  virtual ~Executor() = default;

  virtual std::string name() const = 0;

  // Evaluates cell i as cell_fn(cells[i], i); outcomes in input order.
  // Never throws for cell-level failures - those come back as per-cell
  // errors; only infrastructure failures (fork/pipe) throw.
  virtual std::vector<CellOutcome> run(const std::vector<Scenario>& cells,
                                       const CellFn& cell_fn) const = 0;
};

// Worker threads inside the calling process (a DispatchCore over one
// ThreadLane).
class InProcessExecutor final : public Executor {
 public:
  struct Options {
    // Worker threads; 0 = std::thread::hardware_concurrency().
    std::size_t threads = 0;
  };

  InProcessExecutor() : InProcessExecutor(Options()) {}
  explicit InProcessExecutor(Options options);

  std::string name() const override { return "in-process"; }
  std::size_t threads() const { return threads_; }

  std::vector<CellOutcome> run(const std::vector<Scenario>& cells,
                               const CellFn& cell_fn) const override;

 private:
  std::size_t threads_;
};

// Forked worker processes fed cell batches over socketpairs (a
// DispatchCore over one ForkLane).
//
// Work is dealt as kCellBatch frames (cell index + wire-encoded
// Scenario); a child decodes each cell, evaluates it and answers with one
// kResultBatch frame (index + ResultSet, or index + error string for a
// throwing cell_fn), then blocks on the next request.  A child that
// crashes mid-batch is respawned and its cells re-queued; a cell that
// kills two workers in a row is declared poisonous and becomes a
// per-cell error - never a hung sweep, never a shrinking pool.
class MultiProcessExecutor final : public Executor {
 public:
  struct Options {
    // Worker processes; 0 = std::thread::hardware_concurrency().
    std::size_t workers = 0;
    // Cells per batch frame; 0 = automatic (roughly 4 batches per worker).
    std::size_t batch_size = 0;
  };

  MultiProcessExecutor() : MultiProcessExecutor(Options()) {}
  explicit MultiProcessExecutor(Options options);

  std::string name() const override { return "multi-process"; }
  std::size_t workers() const { return workers_; }

  std::vector<CellOutcome> run(const std::vector<Scenario>& cells,
                               const CellFn& cell_fn) const override;

 private:
  std::size_t workers_;
  std::size_t batch_size_;
};

// --- batch payloads ------------------------------------------------------
//
// The request/response currency between a coordinator and its workers -
// forked children on socketpairs (MultiProcessExecutor) and remote daemons
// on TCP (net/cluster.h) exchange the same kCellBatch / kResultBatch
// frames, encoded by the codecs below.  A cell optionally carries an
// EvalPlan: forked children inherit the sweep's cell_fn closure and need
// none, while a remote daemon has no access to bench code and evaluates
// the plan instead.

struct BatchCell {
  std::uint64_t index;  // position in the expanded grid
  Scenario scenario;
  bool has_plan;
  EvalPlan plan;  // meaningful only when has_plan
};

struct CellBatch {
  std::vector<BatchCell> cells;

  void encode(wire::Writer& w) const;
  static CellBatch decode(wire::Reader& r);
  // The payload wrapped as a complete kFrameCellBatch frame.
  std::vector<std::byte> seal() const;
};

struct ResultBatch {
  struct Entry {
    std::uint64_t index;
    CellOutcome outcome;
  };
  std::vector<Entry> entries;

  void encode(wire::Writer& w) const;
  static ResultBatch decode(wire::Reader& r);
  // The payload wrapped as a complete kFrameResultBatch frame.
  std::vector<std::byte> seal() const;
};

// Checks that `batch` answers exactly the cells in `outstanding` - no
// missing, duplicated or foreign indices (a short response would otherwise
// leave empty-but-ok outcomes that only blow up much later) - and writes
// each outcome into outcomes[index].  Throws wire::Error on any mismatch,
// in which case nothing was written: the batch applies atomically, so a
// protocol-violating worker contributes no results and callers can re-run
// its whole batch elsewhere.
//
// `committed` is the per-cell in-flight bookkeeping a coordinator that
// replicates cells needs (work stealing in net/cluster.cc dispatches a
// straggler's unanswered tail to a second worker, so the same cell can be
// answered twice): when non-null, an entry whose cell already has
// committed[index] set is a late duplicate and is ignored - the first
// answer won, and per-cell seeds make both answers bitwise identical
// anyway - while a first answer is written and marks committed[index].
// Returns how many outcomes were newly committed (== batch size when
// committed is null, where every answer is a first answer).
std::size_t apply_result_batch(const ResultBatch& batch,
                               const std::vector<std::size_t>& outstanding,
                               std::vector<CellOutcome>& outcomes,
                               std::vector<std::uint8_t>* committed = nullptr);

// --- sharding ------------------------------------------------------------

// Shard i of k: owns the expanded-grid cells with index % count == index.
// Round-robin (not contiguous blocks) so heterogeneous grids - e.g. cost
// growing with n along an axis - stay balanced across shards.
struct ShardSpec {
  std::size_t index = 0;
  std::size_t count = 1;

  bool active() const { return count > 1; }
  bool owns(std::size_t cell_index) const {
    return cell_index % count == index;
  }
};

// The (sorted) cell indices shard `spec` owns out of `total_cells`.
std::vector<std::size_t> shard_cell_indices(std::size_t total_cells,
                                            const ShardSpec& spec);

// Order-sensitive digest of a grid's wire encoding.  Cells carry their
// rates, knobs, budgets and seeds, so any option change that alters the
// experiment (--samples, --seed, a different bench) changes the
// fingerprint - which is how a merge refuses partials produced by a
// different run instead of mixing them into silently wrong tables.
std::uint64_t grid_fingerprint(const std::vector<Scenario>& cells);

// One shard's evaluated cells, the unit exchanged between hosts as a wire
// frame (kShardPartial).
struct ShardPartial {
  ShardSpec shard;
  std::size_t total_cells = 0;
  std::uint64_t fingerprint = 0;  // grid_fingerprint of the full grid
  // (cell index, result) pairs for every owned cell, in index order.
  std::vector<std::pair<std::size_t, ResultSet>> results;

  void encode(wire::Writer& w) const;
  static ShardPartial decode(wire::Reader& r);
};

// Incremental (streaming) merge of shard partials: fix the split up
// front, then apply() each partial as it arrives - from a file, or from a
// worker that just finished - instead of buffering all of them for one
// final merge.  take() hands out the full result vector once every cell
// is covered; the result is bitwise identical to an unsharded run.
class PartialMerger {
 public:
  // The split every partial must match: `shard_count` shards of a grid of
  // `total_cells` cells with this fingerprint.
  PartialMerger(std::size_t total_cells, std::size_t shard_count,
                std::uint64_t fingerprint);

  // Applies one shard's results.  Throws wire::Error if the partial
  // belongs to a different split or grid, repeats a shard, or re-covers a
  // cell; the merger is unchanged in that case.
  void apply(const ShardPartial& partial);

  std::size_t applied_shards() const { return shards_applied_; }
  bool complete() const { return cells_applied_ == results_.size(); }

  // The full result vector; throws wire::Error naming a missing cell if
  // any shard has not arrived.  Leaves the merger empty.
  std::vector<ResultSet> take();

 private:
  std::size_t shard_count_;
  std::uint64_t fingerprint_;
  std::vector<bool> shard_seen_;
  std::vector<bool> cell_seen_;
  std::vector<ResultSet> results_;
  std::size_t shards_applied_ = 0;
  std::size_t cells_applied_ = 0;
};

// Reassembles the full result vector from one partial per shard (a
// PartialMerger fed everything at once).  Throws wire::Error unless the
// partials are exactly shards 0..k-1 of the same k-way split of the same
// grid (size and fingerprint), together covering every cell exactly once
// - the merged vector is then bitwise identical to an unsharded run.
std::vector<ResultSet> merge_shard_partials(
    const std::vector<ShardPartial>& partials);

// Wire frame types used by the executor layer and shard files.
inline constexpr std::uint16_t kFrameCellBatch = 1;
inline constexpr std::uint16_t kFrameResultBatch = 2;
inline constexpr std::uint16_t kFrameShardPartial = 3;

}  // namespace rbx
