// Markov chain-structure inventories as a registered EvalBackend, plus the
// Figure 2/3 DOT regeneration helpers.
//
// FIG2/3 historically built the full and lumped chains in its main() to
// count states and transitions; this backend exposes the same inventory as
// named metrics so the sweep ships to any executor:
//
//   markov-structure  per scenario (asynchronous, homogeneous rates,
//                     n <= 7): "full_states" (2^n + 1),
//                     "full_transitions", "lumped_states" (n + 2),
//                     "lumped_transitions" (off-diagonal generator
//                     entries), and the lumping-exactness pair
//                     "mean_interval_full" / "mean_interval_lumped"
//
// The DOT emitters regenerate the paper's Figure 3 (simplified chain) and
// Figure 2 (full chain, states named by their last-action bit vector) for
// any n, using the legacy benches' exact labels; write_chain_dot routes a
// dump through wire::write_file_atomic so a crash mid-write never leaves a
// torn .dot file.
#pragma once

#include <cstddef>
#include <string>

#include "core/backend.h"

namespace rbx {

class MarkovStructureBackend : public EvalBackend {
 public:
  std::string name() const override { return "markov-structure"; }
  bool supports(const Scenario& scenario) const override;
  ResultSet evaluate(const Scenario& scenario) const override;
};

// Figure 3: the simplified (lumped) chain for n homogeneous processes as
// GraphViz DOT - entry "S_r", absorbing "S_r+1", intermediates "S~k".
std::string simplified_chain_dot(std::size_t n, double mu, double lambda);

// Figure 2: the full 2^n + 1 state chain, states labelled by their
// last-action bit vector "(b,b,...,b)".
std::string full_chain_dot(std::size_t n, double mu, double lambda);

// Atomic DOT dump: tmp + fsync + rename via wire::write_file_atomic.
// Throws wire::Error on I/O failure.
void write_chain_dot(const std::string& path, const std::string& dot);

}  // namespace rbx
