#include "core/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rbx {

ExperimentOptions ExperimentOptions::parse(int argc, char** argv,
                                           std::size_t default_samples,
                                           std::size_t default_nmax) {
  ExperimentOptions opts;
  opts.samples = default_samples;
  opts.nmax = default_nmax;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--samples=", 10) == 0) {
      opts.samples = static_cast<std::size_t>(std::strtoull(arg + 10,
                                                            nullptr, 10));
    } else if (std::strncmp(arg, "--nmax=", 7) == 0) {
      opts.nmax = static_cast<std::size_t>(std::strtoull(arg + 7, nullptr,
                                                         10));
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      opts.seed = std::strtoull(arg + 7, nullptr, 10);
    }
  }
  if (opts.samples == 0) {
    opts.samples = default_samples;
  }
  if (opts.nmax == 0) {
    opts.nmax = default_nmax;
  }
  return opts;
}

std::string fmt_ci(double value, double half_width, int precision) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%.*f +- %.*f", precision, value, precision,
                half_width);
  return buf;
}

std::string fmt_dev(double measured, double reference) {
  if (reference == 0.0) {
    return "n/a";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%+.2f%%",
                100.0 * (measured - reference) / reference);
  return buf;
}

void print_banner(const std::string& experiment_id,
                  const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s - Shin & Lee, 'Analysis of Backward Error Recovery for\n",
              experiment_id.c_str());
  std::printf("Concurrent Processes with Recovery Blocks' (ICPP 1983)\n");
  std::printf("%s\n", description.c_str());
  std::printf("================================================================\n");
}

}  // namespace rbx
